package iupdater

import (
	"strings"
	"testing"
	"time"
)

// updateAt runs one testbed-driven Update at the given deployment age.
func updateAt(t *testing.T, d *Deployment, tb *Testbed, at time.Duration) *Snapshot {
	t.Helper()
	refs, err := d.ReferenceLocations()
	if err != nil {
		t.Fatal(err)
	}
	cols, _ := tb.ReferenceMatrix(at, refs)
	snap, err := d.Update(tb.NoDecreaseMatrix(at), tb.Mask(), cols)
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

func matricesEqual(a, b Matrix) bool {
	if a.Rows() != b.Rows() || a.Cols() != b.Cols() {
		return false
	}
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < a.Cols(); j++ {
			if a.At(i, j) != b.At(i, j) {
				return false
			}
		}
	}
	return true
}

// TestStoreRestartRoundTrip is the kill-and-restart durability proof:
// publish through a store, reopen the directory as a fresh process
// would, and demand bit-identical localization from the warm-started
// deployment.
func TestStoreRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	tb := NewTestbed(Office(), 1)
	d, _, err := tb.Deploy(0, 20, WithStore(st))
	if err != nil {
		t.Fatal(err)
	}
	if d.Store() != st {
		t.Fatal("Store() does not return the attached store")
	}
	snap := updateAt(t, d, tb, 30*day)
	if snap.Version() != 2 {
		t.Fatalf("post-update version %d, want 2", snap.Version())
	}
	// Tack a delta chain onto the tail: two publishes that each tweak a
	// handful of columns persist as delta records, so the restart below
	// has to materialize a chain, not just read back one full record.
	for n := 1; n <= 2; n++ {
		fp := d.Snapshot().Fingerprints()
		for k := 0; k < 5; k++ {
			j := (7*n + k*11) % fp.Cols()
			for i := 0; i < fp.Rows(); i++ {
				fp.Set(i, j, fp.At(i, j)+0.1*float64(n))
			}
		}
		if _, err := d.Install(fp); err != nil {
			t.Fatal(err)
		}
	}
	if v := d.Version(); v != 4 {
		t.Fatalf("post-install version %d, want 4", v)
	}
	recs := st.Records()
	if len(recs) != 4 || recs[2].Kind != "delta" || recs[3].Kind != "delta" {
		t.Fatalf("stored records %+v, want a delta tail at v3 and v4", recs)
	}

	probes := make([][]float64, 5)
	before := make([]Position, len(probes))
	for k := range probes {
		cx, cy := tb.CellCenter((k * 17) % tb.NumCells())
		probes[k] = tb.MeasureOnline(cx, cy, 30*day+time.Duration(k+1)*time.Minute)
		if before[k], err = d.Locate(probes[k]); err != nil {
			t.Fatal(err)
		}
	}
	fpBefore := d.Snapshot().Fingerprints()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh store handle and a fresh deployment, nothing
	// shared with the first life but the directory.
	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	d2, err := OpenDeployment(st2)
	if err != nil {
		t.Fatal(err)
	}
	if v := d2.Version(); v != 4 {
		t.Fatalf("warm-started version %d, want 4", v)
	}
	if g := d2.Geometry(); g != tb.Geometry() {
		t.Fatalf("warm-started geometry %+v, want %+v", g, tb.Geometry())
	}
	if !matricesEqual(d2.Snapshot().Fingerprints(), fpBefore) {
		t.Fatal("fingerprints differ after restart")
	}
	for k, rss := range probes {
		after, err := d2.Locate(rss)
		if err != nil {
			t.Fatal(err)
		}
		if after != before[k] {
			t.Fatalf("probe %d: position (%v) != pre-restart (%v) — not bit-identical", k, after, before[k])
		}
	}
	// The warm-started deployment keeps publishing into the same store.
	snap5 := updateAt(t, d2, tb, 60*day)
	if snap5.Version() != 5 {
		t.Fatalf("post-restart update version %d, want 5", snap5.Version())
	}
	vs := st2.Versions()
	if len(vs) != 5 || vs[0] != 1 || vs[4] != 5 {
		t.Fatalf("stored versions %v, want [1 2 3 4 5]", vs)
	}
}

// TestStoreDeltaPersistsFewerBytes is the low-cost durability claim on
// the office testbed geometry: a publish in which at most 10% of the
// reference columns changed must hit the disk as a delta record at
// least 5x smaller than a full snapshot record, while reading the
// version back stays bit-exact.
func TestStoreDeltaPersistsFewerBytes(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	tb := NewTestbed(Office(), 6)
	d, _, err := tb.Deploy(0, 20, WithStore(st))
	if err != nil {
		t.Fatal(err)
	}
	// Change 9 of the 96 columns (<= 10%) and republish.
	fp := d.Snapshot().Fingerprints()
	if fp.Cols() != 96 {
		t.Fatalf("office geometry has %d cells, want 96", fp.Cols())
	}
	for k := 0; k < 9; k++ {
		j := k * 10
		for i := 0; i < fp.Rows(); i++ {
			fp.Set(i, j, fp.At(i, j)+0.25)
		}
	}
	if _, err := d.Install(fp); err != nil {
		t.Fatal(err)
	}
	recs := st.Records()
	if len(recs) != 2 {
		t.Fatalf("stored records %+v, want 2", recs)
	}
	if recs[0].Kind != "full" || recs[1].Kind != "delta" {
		t.Fatalf("record kinds %+v, want [full delta]", recs)
	}
	if 5*recs[1].Bytes > recs[0].Bytes {
		t.Errorf("delta record is %d bytes vs %d for the full snapshot: want >= 5x smaller for a <= 10%% column change",
			recs[1].Bytes, recs[0].Bytes)
	}
	// The delta-stored version reads back bit-exactly...
	got, _, err := st.SnapshotAt(2)
	if err != nil {
		t.Fatal(err)
	}
	if !matricesEqual(got, fp) {
		t.Fatal("delta-stored snapshot did not materialize bit-identically")
	}
	// ...and still does after a reopen recovers the chain from disk.
	dir := st.Dir()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	got2, _, err := st2.SnapshotAt(2)
	if err != nil {
		t.Fatal(err)
	}
	if !matricesEqual(got2, fp) {
		t.Fatal("reopened delta-stored snapshot did not materialize bit-identically")
	}
}

// TestStoreMaxChainDisabledForcesFullRecords: WithMaxChain(0) opts a
// store out of delta encoding entirely.
func TestStoreMaxChainDisabledForcesFullRecords(t *testing.T) {
	st, err := OpenStore(t.TempDir(), WithMaxChain(0))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	tb := NewTestbed(Office(), 6)
	d, _, err := tb.Deploy(0, 20, WithStore(st))
	if err != nil {
		t.Fatal(err)
	}
	fp := d.Snapshot().Fingerprints()
	for i := 0; i < fp.Rows(); i++ {
		fp.Set(i, 3, fp.At(i, 3)+0.5)
	}
	if _, err := d.Install(fp); err != nil {
		t.Fatal(err)
	}
	for _, rec := range st.Records() {
		if rec.Kind != "full" {
			t.Fatalf("record %+v with WithMaxChain(0), want full", rec)
		}
	}
}

func TestRollbackThenUpdateVersionMonotonicity(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	tb := NewTestbed(Office(), 2)
	d, _, err := tb.Deploy(0, 20, WithStore(st))
	if err != nil {
		t.Fatal(err)
	}
	v1fp := d.Snapshot().Fingerprints()
	updateAt(t, d, tb, 30*day)

	snap, err := d.Rollback(1)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version() != 3 {
		t.Fatalf("rollback published v%d, want v3 (history is append-only)", snap.Version())
	}
	if !matricesEqual(snap.Fingerprints(), v1fp) {
		t.Fatal("rollback did not restore v1's fingerprints")
	}
	// Updates after a rollback keep the version line monotonic.
	snap4 := updateAt(t, d, tb, 45*day)
	if snap4.Version() != 4 {
		t.Fatalf("post-rollback update version %d, want 4", snap4.Version())
	}
	vs := st.Versions()
	want := []uint64{1, 2, 3, 4}
	if len(vs) != len(want) {
		t.Fatalf("stored versions %v, want %v", vs, want)
	}
	for i := range want {
		if vs[i] != want[i] {
			t.Fatalf("stored versions %v, want %v", vs, want)
		}
	}
	// A version that never existed is a clean error.
	if _, err := d.Rollback(99); err == nil {
		t.Error("Rollback(99) should fail")
	}
}

func TestRollbackRequiresStore(t *testing.T) {
	tb := NewTestbed(Office(), 1)
	d, _, err := tb.Deploy(0, 20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Rollback(1); err == nil || !strings.Contains(err.Error(), "store") {
		t.Fatalf("Rollback without a store: %v", err)
	}
}

func TestNewDeploymentContinuesStoreVersions(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	tb := NewTestbed(Office(), 1)
	d, _, err := tb.Deploy(0, 20, WithStore(st))
	if err != nil {
		t.Fatal(err)
	}
	updateAt(t, d, tb, 20*day)
	st.Close()

	// A fresh full survey over the same store (a new deployment life)
	// must not rewind the version line.
	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	d2, _, err := tb.Deploy(0, 20, WithStore(st2))
	if err != nil {
		t.Fatal(err)
	}
	if v := d2.Version(); v != 3 {
		t.Fatalf("re-survey over existing history published v%d, want v3", v)
	}
}

func TestStoreRetentionLimitsRollback(t *testing.T) {
	st, err := OpenStore(t.TempDir(), WithRetention(2))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	tb := NewTestbed(Office(), 1)
	d, _, err := tb.Deploy(0, 20, WithStore(st))
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 4; k++ {
		updateAt(t, d, tb, time.Duration(k)*10*day)
	}
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	vs := st.Versions()
	if len(vs) != 2 || vs[1] != 5 {
		t.Fatalf("retained versions %v, want the newest 2 of 5", vs)
	}
	if _, err := d.Rollback(1); err == nil {
		t.Error("Rollback to a compacted-away version should fail")
	}
	if _, err := d.Rollback(vs[0]); err != nil {
		t.Errorf("Rollback to a retained version: %v", err)
	}
}

// TestMonitorResumeAfterRestart proves the ROADMAP's open item: a
// monitor restarted from the store resumes — cumulative counters
// continue and the calibrated detector floor is re-installed — instead
// of re-running the calibration window.
func TestMonitorResumeAfterRestart(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	tb := NewTestbed(Office(), 3)
	d, _, err := tb.Deploy(0, 20, WithStore(st))
	if err != nil {
		t.Fatal(err)
	}
	const calibration = 60
	newDetector := func() DriftDetector { return NewMeanShiftDetector(calibration, 16, 3) }
	mon, err := NewMonitor(d, nil, WithDriftDetector(newDetector()), WithDriftHysteresis(2))
	if err != nil {
		t.Fatal(err)
	}
	// A comfortably stationary stretch: calibration completes and the
	// floor is checkpointed.
	const served = 150
	for q := 0; q < served; q++ {
		cx, cy := tb.CellCenter((q * 7) % tb.NumCells())
		if err := mon.Observe(tb.MeasureOnline(cx, cy, time.Hour+time.Duration(q)*time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	s1 := mon.Stats()
	if s1.Queries != served || s1.Detections != 0 {
		t.Fatalf("pre-restart stats %+v", s1)
	}
	mon.Close()
	st.Close()

	// Restart: fresh store handle, warm deployment, fresh monitor.
	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	d2, err := OpenDeployment(st2)
	if err != nil {
		t.Fatal(err)
	}
	mon2, err := NewMonitor(d2, nil, WithDriftDetector(newDetector()), WithDriftHysteresis(2))
	if err != nil {
		t.Fatal(err)
	}
	defer mon2.Close()
	if s := mon2.Stats(); s.Queries != served {
		t.Fatalf("restarted monitor starts at %d queries, want %d (resumed, not reset)", s.Queries, served)
	}

	// The environment has drifted while the process was down. A resumed
	// monitor detects within roughly a window + hysteresis; a reset one
	// would first burn the full calibration window learning the drifted
	// stream as its floor and never flag at all.
	detectedAt := -1
	for q := 0; q < 2*calibration; q++ {
		cx, cy := tb.CellCenter((q * 5) % tb.NumCells())
		if err := mon2.Observe(tb.MeasureOnline(cx, cy, 45*day+time.Duration(q)*time.Second)); err != nil {
			t.Fatal(err)
		}
		if mon2.Stats().Detections > 0 {
			detectedAt = q
			break
		}
	}
	if detectedAt < 0 {
		t.Fatal("restarted monitor never detected the drift — it must have re-calibrated from scratch")
	}
	if detectedAt >= calibration {
		t.Fatalf("detection took %d queries, want < the %d-query calibration window (resume, not recalibrate)", detectedAt, calibration)
	}
	s2 := mon2.Stats()
	if s2.Queries <= served {
		t.Fatalf("queries counter did not continue: %d", s2.Queries)
	}
}

// TestMonitorStateIgnoredAfterDatabaseChange: a persisted floor from
// version N must not be installed when the store has moved on to N+1 —
// the residual baseline belongs to a specific snapshot.
func TestMonitorStateIgnoredAfterDatabaseChange(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	tb := NewTestbed(Office(), 4)
	d, _, err := tb.Deploy(0, 20, WithStore(st))
	if err != nil {
		t.Fatal(err)
	}
	mon, err := NewMonitor(d, nil, WithDriftDetector(NewMeanShiftDetector(40, 16, 3)))
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 80; q++ {
		cx, cy := tb.CellCenter(q % tb.NumCells())
		if err := mon.Observe(tb.MeasureOnline(cx, cy, time.Hour)); err != nil {
			t.Fatal(err)
		}
	}
	mon.Close()
	// The database changes while the monitor is down.
	updateAt(t, d, tb, 30*day)
	st.Close()

	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	d2, err := OpenDeployment(st2)
	if err != nil {
		t.Fatal(err)
	}
	mon2, err := NewMonitor(d2, nil, WithDriftDetector(NewMeanShiftDetector(40, 16, 3)))
	if err != nil {
		t.Fatal(err)
	}
	defer mon2.Close()
	// Counters still resume...
	if s := mon2.Stats(); s.Queries != 80 {
		t.Fatalf("queries = %d, want 80", s.Queries)
	}
	// ...but the stale floor is discarded: the detector re-calibrates,
	// so nothing can flag inside the fresh calibration window even on
	// wildly different traffic.
	for q := 0; q < 39; q++ {
		cx, cy := tb.CellCenter(q % tb.NumCells())
		if err := mon2.Observe(tb.MeasureOnline(cx, cy, 90*day)); err != nil {
			t.Fatal(err)
		}
	}
	if s := mon2.Stats(); s.Detections != 0 {
		t.Fatalf("detector flagged during re-calibration: %+v — the stale floor must not survive a version change", s)
	}
}
