package iupdater

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// addMemorySite registers one durable site backed by an in-memory
// store Backend: full store semantics (delta records, recovery,
// rehydration) without touching disk, which keeps hundreds of sites
// cheap under -race. Publishes versions-1 perturbed snapshots past the
// initial install and returns the site plus the fingerprints the final
// version must rehydrate to, bit-identical.
func addMemorySite(t testing.TB, f *Fleet, name string, seed, versions int) (*Site, Matrix) {
	t.Helper()
	st, err := OpenStore("", WithBackend(NewMemoryBackend()), WithoutSync())
	if err != nil {
		t.Fatal(err)
	}
	fp := replicaMatrix(seed)
	d, err := NewDeployment(fp, replicaGeometry, WithStore(st))
	if err != nil {
		t.Fatal(err)
	}
	for v := 2; v <= versions; v++ {
		fp = perturbColumn(fp, (seed*7+v*11)%replicaGeometry.NumCells(), 0.25)
		if _, err := d.Install(fp); err != nil {
			t.Fatal(err)
		}
	}
	site, err := f.AddSite(name, SiteConfig{Deployment: d})
	if err != nil {
		t.Fatal(err)
	}
	return site, fp
}

// TestFleetResidentLimitParksAndRehydrates: adding past the resident
// limit parks the least-recently-used durable site — deployment and
// index released, store retained — and the parked site's next query
// re-materializes the exact published fingerprints through the store's
// delta-chain resolution.
func TestFleetResidentLimitParksAndRehydrates(t *testing.T) {
	f := NewFleet(WithResidentLimit(2))
	defer f.Close()
	siteA, fpA := addMemorySite(t, f, "a", 1, 3)
	siteB, fpB := addMemorySite(t, f, "b", 2, 2)
	siteC, _ := addMemorySite(t, f, "c", 3, 2)

	// "a" was touched first, so registering "c" must have parked it.
	if siteA.Hydrated() {
		t.Fatal("LRU site still hydrated past the resident limit")
	}
	if !siteB.Hydrated() || !siteC.Hydrated() {
		t.Fatal("recently touched sites were parked")
	}
	stats := f.Stats()
	if stats.Sites != 3 || stats.Resident != 2 || stats.Evictions != 1 || stats.Rehydrations != 0 {
		t.Fatalf("stats %+v, want 3 sites, 2 resident, 1 eviction", stats)
	}

	// A parked site still summarizes from its store — version, records,
	// horizon — without rehydrating.
	sums := f.Summaries()
	if sums[0].Name != "a" || sums[0].Hydrated || sums[0].Version != 3 || !sums[0].Durable {
		t.Fatalf("parked summary %+v, want !hydrated v3 durable", sums[0])
	}
	if sums[0].Search != nil || sums[0].Drift != nil {
		t.Fatalf("parked summary %+v carries materialized-only state", sums[0])
	}
	if sums[0].OldestVersion != 1 || len(sums[0].StoredVersions) != 3 {
		t.Fatalf("parked summary store state %+v", sums[0])
	}
	if siteA.Hydrated() {
		t.Fatal("Summaries rehydrated a parked site")
	}

	// First query pays the rehydration and gets the exact fingerprints
	// back; the limit then parks the new LRU ("b").
	d, mon, err := siteA.Hydrate()
	if err != nil {
		t.Fatal(err)
	}
	if mon != nil {
		t.Fatal("unmonitored site rehydrated with a monitor")
	}
	if d.Version() != 3 || !matricesEqual(d.Snapshot().Fingerprints(), fpA) {
		t.Fatal("rehydrated fingerprints are not bit-identical to the published version")
	}
	if _, err := d.Snapshot().Locate(nil); err == nil {
		t.Fatal("rehydrated snapshot accepted an empty measurement")
	}
	stats = f.Stats()
	if stats.Resident != 2 || stats.Rehydrations != 1 || stats.Evictions != 2 {
		t.Fatalf("post-rehydration stats %+v", stats)
	}
	if siteB.Hydrated() {
		t.Fatal("rehydrating a parked b's eviction victim mismatch: b still resident")
	}
	if hs := f.RehydrationLatency().Snapshot(); hs.Count != 1 {
		t.Fatalf("rehydration latency count %d, want 1", hs.Count)
	}

	// And b rehydrates bit-identically too.
	db, _, err := siteB.Hydrate()
	if err != nil {
		t.Fatal(err)
	}
	if !matricesEqual(db.Snapshot().Fingerprints(), fpB) {
		t.Fatal("site b rehydrated to different fingerprints")
	}

	// A removed site's handle fails to hydrate instead of resurrecting
	// a closed store.
	if err := f.RemoveSite("a"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := siteA.Hydrate(); err == nil {
		t.Fatal("Hydrate succeeded on a removed site")
	}
}

// TestFleetResidentLimitSkipsUnparkables: in-memory sites (no store to
// rehydrate from) and monitored sites without a MonitorFactory stay
// resident no matter the pressure — parking either would lose state the
// fleet cannot restore.
func TestFleetResidentLimitSkipsUnparkables(t *testing.T) {
	f := NewFleet(WithResidentLimit(1))
	defer f.Close()
	dMem, err := NewDeployment(replicaMatrix(9), replicaGeometry)
	if err != nil {
		t.Fatal(err)
	}
	memSite, err := f.AddSite("volatile", SiteConfig{Deployment: dMem})
	if err != nil {
		t.Fatal(err)
	}

	stMon, err := OpenStore("", WithBackend(NewMemoryBackend()), WithoutSync())
	if err != nil {
		t.Fatal(err)
	}
	dMon, err := NewDeployment(replicaMatrix(10), replicaGeometry, WithStore(stMon))
	if err != nil {
		t.Fatal(err)
	}
	mon, err := NewMonitor(dMon, nil)
	if err != nil {
		t.Fatal(err)
	}
	monSite, err := f.AddSite("pinned-monitor", SiteConfig{Deployment: dMon, Monitor: mon})
	if err != nil {
		t.Fatal(err)
	}

	// The site being added is exempt from its own eviction pass, so the
	// first parkable site stays resident until a second one shows up.
	parkable, _ := addMemorySite(t, f, "parkable", 11, 2)
	parkable2, _ := addMemorySite(t, f, "parkable2", 13, 2)
	if !memSite.Hydrated() || !monSite.Hydrated() {
		t.Fatal("unparkable site was parked")
	}
	if parkable.Hydrated() {
		t.Fatal("LRU parkable site survived over-limit pressure")
	}
	if !parkable2.Hydrated() {
		t.Fatal("just-added site was parked by its own eviction pass")
	}

	// A monitored site added with a factory is parkable, and parking +
	// rehydration rebuilds its monitor.
	stF, err := OpenStore("", WithBackend(NewMemoryBackend()), WithoutSync())
	if err != nil {
		t.Fatal(err)
	}
	dF, err := NewDeployment(replicaMatrix(12), replicaGeometry, WithStore(stF))
	if err != nil {
		t.Fatal(err)
	}
	factorySite, err := f.AddSite("factory", SiteConfig{
		Deployment:     dF,
		MonitorFactory: func(d *Deployment) (*Monitor, error) { return NewMonitor(d, nil) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if factorySite.Monitor() == nil {
		t.Fatal("factory did not build the initial monitor")
	}
	if !factorySite.park() {
		t.Fatal("factory-monitored site refused to park")
	}
	d2, mon2, err := factorySite.Hydrate()
	if err != nil {
		t.Fatal(err)
	}
	if d2 == dF {
		t.Fatal("rehydration returned the parked deployment instead of re-materializing")
	}
	if mon2 == nil {
		t.Fatal("rehydration did not rebuild the monitor")
	}
	if err := mon2.Observe(make([]float64, replicaGeometry.Links)); err != nil {
		t.Fatalf("rebuilt monitor rejects observations: %v", err)
	}
}

// TestFleetHydrateHotPathZeroAlloc: on a hydrated site the query path —
// Hydrate plus the snapshot read — must not allocate; the LRU touch is
// two atomic integer ops.
func TestFleetHydrateHotPathZeroAlloc(t *testing.T) {
	f := NewFleet(WithResidentLimit(4))
	defer f.Close()
	site, _ := addMemorySite(t, f, "hot", 1, 2)
	if allocs := testing.AllocsPerRun(1000, func() {
		d, _, err := site.Hydrate()
		if err != nil {
			t.Fatal(err)
		}
		if d.Snapshot().Version() != 2 {
			t.Fatal("wrong version")
		}
	}); allocs != 0 {
		t.Fatalf("hydrated hot path allocates %.1f/op, want 0", allocs)
	}
}

// TestFleetLRUHammer300Sites registers a 300-site fleet over in-memory
// store backends with a 32-site resident budget and hammers it with a
// mixed workload under -race: a hot set served lock-free, a rotating
// cold scan forcing continuous evict/rehydrate churn, lifecycle churn
// (AddSite/RemoveSite) racing it all, and dashboard readers
// (Summaries/Stats) scraping throughout. Afterwards every surviving
// site must rehydrate to bit-identical fingerprints and the resident
// count must respect the budget.
func TestFleetLRUHammer300Sites(t *testing.T) {
	if testing.Short() {
		t.Skip("300-site hammer is not a -short test")
	}
	const (
		sites    = 300
		limit    = 32
		hotSet   = 8
		readers  = 4
		coldScan = 4
	)
	f := NewFleet(WithResidentLimit(limit))
	defer f.Close()

	handles := make([]*Site, sites)
	want := make([]Matrix, sites)
	for i := 0; i < sites; i++ {
		handles[i], want[i] = addMemorySite(t, f, fmt.Sprintf("site-%03d", i), i+1, 2+i%3)
	}
	if got := f.Stats(); got.Resident > limit {
		t.Fatalf("resident %d after registration, limit %d", got.Resident, limit)
	}

	probe := replicaMatrix(1).Col(0) // any link-length vector localizes
	var stop atomic.Bool
	var wg sync.WaitGroup
	errc := make(chan error, readers+coldScan+3)

	// Hot readers: pinned to the hot set, expecting the lock-free path.
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				s := handles[(r+i)%hotSet]
				d, _, err := s.Hydrate()
				if err != nil {
					errc <- fmt.Errorf("hot %s: %w", s.Name(), err)
					return
				}
				p, err := d.Snapshot().Locate(probe)
				if err != nil {
					errc <- fmt.Errorf("hot %s: %w", s.Name(), err)
					return
				}
				if math.IsNaN(p.X) || math.IsNaN(p.Y) {
					errc <- fmt.Errorf("hot %s: NaN estimate", s.Name())
					return
				}
			}
		}(r)
	}
	// Cold scans: strided walks over the long tail, every hit likely a
	// rehydration that evicts someone else mid-locate.
	for c := 0; c < coldScan; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				idx := hotSet + (c*61+i*97)%(sites-hotSet)
				s := handles[idx]
				d, _, err := s.Hydrate()
				if err != nil {
					errc <- fmt.Errorf("cold %s: %w", s.Name(), err)
					return
				}
				if _, err := d.Snapshot().Locate(probe); err != nil {
					errc <- fmt.Errorf("cold %s: %w", s.Name(), err)
					return
				}
			}
		}(c)
	}
	// Lifecycle churn racing the scans: transient sites come and go.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			name := fmt.Sprintf("churn-%d", i%4)
			st, err := OpenStore("", WithBackend(NewMemoryBackend()), WithoutSync())
			if err != nil {
				errc <- err
				return
			}
			d, err := NewDeployment(replicaMatrix(1000+i), replicaGeometry, WithStore(st))
			if err != nil {
				errc <- err
				return
			}
			if _, err := f.AddSite(name, SiteConfig{Deployment: d}); err != nil {
				errc <- err
				return
			}
			if err := f.RemoveSite(name); err != nil {
				errc <- err
				return
			}
		}
	}()
	// Dashboard readers: Summaries and Stats must stay consistent and
	// never rehydrate parked sites.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			resident := 0
			for _, sum := range f.Summaries() {
				if sum.Hydrated {
					resident++
				}
				if sum.Version == 0 && sum.Replica == nil && sum.Durable {
					errc <- fmt.Errorf("%s: durable summary lost its version", sum.Name)
					return
				}
			}
			_ = f.Stats()
		}
	}()

	time.Sleep(500 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	stats := f.Stats()
	if stats.Resident > limit {
		t.Errorf("resident %d at quiescence exceeds limit %d", stats.Resident, limit)
	}
	if stats.Evictions == 0 || stats.Rehydrations == 0 {
		t.Errorf("hammer exercised no LRU churn: %+v", stats)
	}
	// Every site — parked or resident — rehydrates to the exact
	// fingerprints it published, through whatever delta chain its store
	// holds.
	for i, s := range handles {
		d, _, err := s.Hydrate()
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if !matricesEqual(d.Snapshot().Fingerprints(), want[i]) {
			t.Fatalf("%s: fingerprints diverged after LRU churn", s.Name())
		}
	}
	if got := f.Stats(); got.Resident > limit {
		t.Errorf("resident %d after verification sweep, limit %d", got.Resident, limit)
	}
}
