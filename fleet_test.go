package iupdater

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestFleetRegistry(t *testing.T) {
	f := NewFleet()
	tb := NewTestbed(Office(), 1)
	d1, _, err := tb.Deploy(0, 20)
	if err != nil {
		t.Fatal(err)
	}
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tb2 := NewTestbed(Office(), 2)
	d2, _, err := tb2.Deploy(0, 20, WithStore(st))
	if err != nil {
		t.Fatal(err)
	}
	mon, err := NewMonitor(d2, nil)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := f.Add("hq", d1, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Add("annex", d2, mon); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Add("hq", d1, nil); err == nil {
		t.Error("duplicate site name accepted")
	}
	if _, err := f.Add("bad/name", d1, nil); err == nil {
		t.Error("slash in site name accepted")
	}
	if _, err := f.Add("", d1, nil); err == nil {
		t.Error("empty site name accepted")
	}
	if _, err := f.Add("nil", nil, nil); err == nil {
		t.Error("nil deployment accepted")
	}

	if names := f.Names(); len(names) != 2 || names[0] != "annex" || names[1] != "hq" {
		t.Fatalf("Names = %v, want [annex hq]", names)
	}
	site, ok := f.Site("annex")
	if !ok || site.Name() != "annex" || site.Deployment() != d2 || site.Monitor() != mon {
		t.Fatalf("Site(annex) = %+v, ok=%v", site, ok)
	}
	if _, ok := f.Site("nowhere"); ok {
		t.Error("lookup of unknown site succeeded")
	}

	sums := f.Summaries()
	if len(sums) != 2 || sums[0].Name != "annex" || sums[1].Name != "hq" {
		t.Fatalf("Summaries = %+v", sums)
	}
	annex, hq := sums[0], sums[1]
	if !annex.Durable || annex.Drift == nil || len(annex.StoredVersions) != 1 {
		t.Errorf("annex summary %+v: want durable, monitored, 1 stored version", annex)
	}
	if hq.Durable || hq.Drift != nil || hq.StoredVersions != nil {
		t.Errorf("hq summary %+v: want in-memory, unmonitored", hq)
	}
	if annex.Version != 1 || annex.Links != 8 || annex.Cells != 96 {
		t.Errorf("annex summary %+v", annex)
	}

	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// Close released the monitor and the store.
	if err := mon.Observe(make([]float64, 8)); err == nil {
		t.Error("monitor still accepts observations after fleet Close")
	}
	if _, err := d2.Install(d2.Snapshot().Fingerprints()); err == nil {
		t.Error("publish into a closed store succeeded")
	}
	if names := f.Names(); len(names) != 0 {
		t.Errorf("sites survive Close: %v", names)
	}
}

// TestFleetClosedLifecycle: Close is terminal — a second Close is a
// no-op, and Add on a closed fleet fails instead of silently
// registering a site whose monitor and store would never be closed.
func TestFleetClosedLifecycle(t *testing.T) {
	f := NewFleet()
	tb := NewTestbed(Office(), 1)
	d, _, err := tb.Deploy(0, 20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Add("a", d, nil); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Errorf("second Close: %v, want no-op nil", err)
	}
	if _, err := f.Add("b", d, nil); err == nil {
		t.Error("Add on a closed fleet succeeded — the site's lifecycle would leak")
	}
	if names := f.Names(); len(names) != 0 {
		t.Errorf("Names after Close: %v", names)
	}
	if sums := f.Summaries(); len(sums) != 0 {
		t.Errorf("Summaries after Close: %v", sums)
	}
}

var errInjectedClose = errors.New("injected store close failure")

// TestFleetCloseContinuesPastFailingStore: one site's store failing to
// close must neither stop the remaining sites from closing nor erase
// the error value — callers must reach it with errors.Is through the
// joined error.
func TestFleetCloseContinuesPastFailingStore(t *testing.T) {
	f := NewFleet()
	stBad, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tbBad := NewTestbed(Office(), 1)
	dBad, _, err := tbBad.Deploy(0, 20, WithStore(stBad))
	if err != nil {
		t.Fatal(err)
	}
	stBad.closeErr = errInjectedClose
	stGood, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tbGood := NewTestbed(Office(), 2)
	dGood, _, err := tbGood.Deploy(0, 20, WithStore(stGood))
	if err != nil {
		t.Fatal(err)
	}
	// "bad" sorts before "good", so the failure hits first and the good
	// site's close must still run after it.
	if _, err := f.Add("bad", dBad, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Add("good", dGood, nil); err != nil {
		t.Fatal(err)
	}
	err = f.Close()
	if err == nil {
		t.Fatal("Close swallowed the store failure")
	}
	if !errors.Is(err, errInjectedClose) {
		t.Errorf("errors.Is cannot reach the store error through %v", err)
	}
	if !strings.Contains(err.Error(), "bad") {
		t.Errorf("close error %v does not name the failing site", err)
	}
	// The good site's store really was closed despite the earlier
	// failure: a publish into it must now fail.
	if _, err := dGood.Install(dGood.Snapshot().Fingerprints()); err == nil {
		t.Error("good site's store still open after fleet Close")
	}
}

// TestFleetSummariesRaceClose: the dashboard racing the lifecycle must
// be -race-clean and never observe a half-closed registry.
func TestFleetSummariesRaceClose(t *testing.T) {
	f := NewFleet()
	for i, name := range []string{"one", "two"} {
		tb := NewTestbed(Office(), uint64(20+i))
		d, _, err := tb.Deploy(0, 20)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Add(name, d, nil); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, sum := range f.Summaries() {
				if sum.Name == "" {
					t.Error("summary with empty name")
					return
				}
			}
			_ = f.Names()
		}
	}()
	time.Sleep(2 * time.Millisecond) // let the reader spin up
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if sums := f.Summaries(); len(sums) != 0 {
		t.Errorf("Summaries after Close: %+v", sums)
	}
}

// TestSiteSummaryDoesNotAliasStoreState: mutating a returned summary
// must never write through into the store's internal index.
func TestSiteSummaryDoesNotAliasStoreState(t *testing.T) {
	f := NewFleet()
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tb := NewTestbed(Office(), 3)
	d, _, err := tb.Deploy(0, 20, WithStore(st))
	if err != nil {
		t.Fatal(err)
	}
	site, err := f.Add("solo", d, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sum := site.Summary()
	if len(sum.StoredVersions) != 1 || len(sum.StoredRecords) != 1 {
		t.Fatalf("summary %+v, want 1 stored version/record", sum)
	}
	sum.StoredVersions[0] = 999
	sum.StoredRecords[0].Version = 999
	if v := st.Versions()[0]; v != 1 {
		t.Errorf("store versions mutated through the summary: %d", v)
	}
	if r := st.Records()[0]; r.Version != 1 {
		t.Errorf("store records mutated through the summary: %+v", r)
	}
}

// TestFleetTwoSitesConcurrentHammer serves two independent durable
// sites concurrently under the update-while-locate pattern: per site,
// readers localize lock-free while the writer publishes updates, and
// (under -race) nothing tears across sites — each site's version line
// advances independently and every estimate stays finite.
func TestFleetTwoSitesConcurrentHammer(t *testing.T) {
	f := NewFleet()
	type siteCtx struct {
		name string
		tb   *Testbed
		d    *Deployment
	}
	var sites []siteCtx
	for i, name := range []string{"east", "west"} {
		st, err := OpenStore(t.TempDir(), WithoutSync())
		if err != nil {
			t.Fatal(err)
		}
		tb := NewTestbed(Office(), uint64(10+i))
		d, _, err := tb.Deploy(0, 20, WithStore(st))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Add(name, d, nil); err != nil {
			t.Fatal(err)
		}
		sites = append(sites, siteCtx{name: name, tb: tb, d: d})
	}
	defer f.Close()

	const updates = 3
	const readers = 3
	var stop atomic.Bool
	var wg sync.WaitGroup
	errc := make(chan error, 2*(readers+1))
	for _, sc := range sites {
		refs, err := sc.d.ReferenceLocations()
		if err != nil {
			t.Fatal(err)
		}
		cx, cy := sc.tb.CellCenter(13)
		probe := sc.tb.MeasureOnline(cx, cy, time.Hour)
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func(sc siteCtx) {
				defer wg.Done()
				var last uint64
				for !stop.Load() {
					snap := sc.d.Snapshot()
					if v := snap.Version(); v < last {
						errc <- fmt.Errorf("%s: version went backwards: %d after %d", sc.name, v, last)
						return
					} else {
						last = v
					}
					p, err := snap.Locate(probe)
					if err != nil {
						errc <- fmt.Errorf("%s: %w", sc.name, err)
						return
					}
					if math.IsNaN(p.X) || math.IsNaN(p.Y) {
						errc <- fmt.Errorf("%s: NaN estimate", sc.name)
						return
					}
				}
			}(sc)
		}
		wg.Add(1)
		go func(sc siteCtx, refs []int) {
			defer wg.Done()
			for u := 1; u <= updates; u++ {
				at := time.Duration(u) * 10 * day
				cols, _ := sc.tb.ReferenceMatrix(at, refs)
				if _, err := sc.d.Update(sc.tb.NoDecreaseMatrix(at), sc.tb.Mask(), cols); err != nil {
					errc <- fmt.Errorf("%s: %w", sc.name, err)
					return
				}
			}
		}(sc, refs)
	}
	// Summaries concurrently with traffic: the dashboard must never
	// block or tear either.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			for _, sum := range f.Summaries() {
				if sum.Version == 0 {
					errc <- fmt.Errorf("%s: summary saw version 0", sum.Name)
					return
				}
			}
		}
	}()

	// Let the writers finish, then stop the readers.
	deadline := time.After(30 * time.Second)
	for {
		done := true
		for _, sc := range sites {
			if sc.d.Version() != 1+updates {
				done = false
			}
		}
		if done {
			break
		}
		select {
		case <-deadline:
			t.Fatal("writers did not finish in time")
		case <-time.After(10 * time.Millisecond):
		}
	}
	stop.Store(true)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	for _, sc := range sites {
		if v := sc.d.Version(); v != 1+updates {
			t.Errorf("%s: final version %d, want %d", sc.name, v, 1+updates)
		}
		if vs := sc.d.Store().Versions(); len(vs) != 1+updates {
			t.Errorf("%s: %d stored versions, want %d", sc.name, len(vs), 1+updates)
		}
	}
}
