package iupdater_test

import (
	"fmt"
	"time"

	"iupdater"
)

// ExamplePipeline shows the full update-and-localize cycle on the
// simulated office testbed. The simulation is deterministic for a given
// seed, so the output is reproducible.
func ExamplePipeline() {
	tb := iupdater.NewTestbed(iupdater.Office(), 1)

	// Day 0: original site survey.
	original, _ := tb.Survey(0, 50)
	pipeline, err := iupdater.NewPipeline(original, tb.Links(), tb.PerStrip())
	if err != nil {
		panic(err)
	}
	fmt.Println("reference locations:", pipeline.ReferenceLocations())

	// Day 45: refresh from the no-decrease scan + 8 reference columns.
	at := 45 * 24 * time.Hour
	columns, labor := tb.MeasureColumnsLabor(at, pipeline.ReferenceLocations())
	fresh, err := pipeline.Update(tb.NoDecreaseScan(at), tb.KnownMask(), columns)
	if err != nil {
		panic(err)
	}
	fmt.Printf("update labor: %s for %d locations\n",
		labor.Duration.Round(time.Second), labor.Locations)

	// Localize a target standing at the center of grid cell 42.
	localizer, err := iupdater.NewLocalizer(fresh, tb.Geometry())
	if err != nil {
		panic(err)
	}
	cx, cy := tb.CellCenter(42)
	cell, err := localizer.LocateCell(tb.MeasureOnline(cx, cy, at+time.Hour))
	if err != nil {
		panic(err)
	}
	fmt.Println("target located at cell:", cell)
	// Output:
	// reference locations: [11 23 35 47 59 71 83 95]
	// update labor: 55s for 8 locations
	// target located at cell: 42
}
