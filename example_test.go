package iupdater_test

import (
	"context"
	"fmt"
	"time"

	"iupdater"
)

// ExampleDeployment shows the serving API: a long-lived Deployment that
// refreshes its fingerprint database in place (publishing versioned
// snapshots) while answering localization queries. The simulation is
// deterministic for a given seed, so the output is reproducible.
func ExampleDeployment() {
	tb := iupdater.NewTestbed(iupdater.Office(), 1)

	// Day 0: original site survey, served as snapshot v1.
	dep, _, err := tb.Deploy(0, 50)
	if err != nil {
		panic(err)
	}
	refs, err := dep.ReferenceLocations()
	if err != nil {
		panic(err)
	}
	fmt.Println("reference locations:", refs)

	// Day 45: refresh from the no-decrease scan + 8 reference columns.
	at := 45 * 24 * time.Hour
	columns, labor := tb.ReferenceMatrix(at, refs)
	snap, err := dep.Update(tb.NoDecreaseMatrix(at), tb.Mask(), columns)
	if err != nil {
		panic(err)
	}
	fmt.Printf("snapshot v%d published after %s of labor\n",
		snap.Version(), labor.Duration.Round(time.Second))

	// Localize a batch of online measurements against the new snapshot.
	cx, cy := tb.CellCenter(42)
	batch := [][]float64{
		tb.MeasureOnline(cx, cy, at+time.Hour),
		tb.MeasureOnline(cx, cy, at+2*time.Hour),
	}
	positions, err := dep.LocateBatch(context.Background(), batch)
	if err != nil {
		panic(err)
	}
	for _, p := range positions {
		cell, err := dep.LocateCell(tb.MeasureOnline(p.X, p.Y, at+3*time.Hour))
		if err != nil {
			panic(err)
		}
		fmt.Println("target located at cell:", cell)
	}
	// Output:
	// reference locations: [11 23 35 47 59 71 83 95]
	// snapshot v2 published after 55s of labor
	// target located at cell: 42
	// target located at cell: 42
}

// ExamplePipeline shows the full update-and-localize cycle on the
// simulated office testbed. The simulation is deterministic for a given
// seed, so the output is reproducible.
func ExamplePipeline() {
	tb := iupdater.NewTestbed(iupdater.Office(), 1)

	// Day 0: original site survey.
	original, _ := tb.Survey(0, 50)
	pipeline, err := iupdater.NewPipeline(original, tb.Links(), tb.PerStrip())
	if err != nil {
		panic(err)
	}
	fmt.Println("reference locations:", pipeline.ReferenceLocations())

	// Day 45: refresh from the no-decrease scan + 8 reference columns.
	at := 45 * 24 * time.Hour
	columns, labor := tb.MeasureColumnsLabor(at, pipeline.ReferenceLocations())
	fresh, err := pipeline.Update(tb.NoDecreaseScan(at), tb.KnownMask(), columns)
	if err != nil {
		panic(err)
	}
	fmt.Printf("update labor: %s for %d locations\n",
		labor.Duration.Round(time.Second), labor.Locations)

	// Localize a target standing at the center of grid cell 42.
	localizer, err := iupdater.NewLocalizer(fresh, tb.Geometry())
	if err != nil {
		panic(err)
	}
	cx, cy := tb.CellCenter(42)
	cell, err := localizer.LocateCell(tb.MeasureOnline(cx, cy, at+time.Hour))
	if err != nil {
		panic(err)
	}
	fmt.Println("target located at cell:", cell)
	// Output:
	// reference locations: [11 23 35 47 59 71 83 95]
	// update labor: 55s for 8 locations
	// target located at cell: 42
}
