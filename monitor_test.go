package iupdater

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"iupdater/internal/trace"
)

// scriptedDetector flags according to a caller-controlled schedule.
type scriptedDetector struct {
	flag   bool
	resets int
}

func (d *scriptedDetector) Observe(float64) bool { return d.flag }
func (d *scriptedDetector) Score() float64 {
	if d.flag {
		return 2
	}
	return 0
}
func (d *scriptedDetector) Reset() { d.resets++ }

// monitorFixture deploys a small office testbed and returns query
// vectors measured at the given elapsed time.
func monitorFixture(t testing.TB, seed uint64, opts ...Option) (*Testbed, *Deployment, func(q int, at time.Duration) []float64) {
	t.Helper()
	tb := NewTestbed(Office(), seed)
	d, _, err := tb.Deploy(0, 20, opts...)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(int64(seed)))
	query := func(q int, at time.Duration) []float64 {
		cell := rng.Intn(tb.NumCells())
		x, y := tb.CellCenter(cell)
		x += (rng.Float64()*2 - 1) * 0.2
		y += (rng.Float64()*2 - 1) * 0.2
		return tb.MeasureOnline(x, y, at+time.Duration(q)*500*time.Millisecond)
	}
	return tb, d, query
}

func TestMonitorValidation(t *testing.T) {
	if _, err := NewMonitor(nil, nil); err == nil {
		t.Fatal("nil deployment accepted")
	}
	_, d, _ := monitorFixture(t, 1)
	m, err := NewMonitor(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Observe([]float64{1, 2}); err == nil {
		t.Error("short measurement accepted")
	}
	m.Close()
	if err := m.Observe(make([]float64, d.Geometry().Links)); err == nil {
		t.Error("Observe after Close accepted")
	}
}

func TestMonitorHysteresisAndDetectionCounting(t *testing.T) {
	_, d, query := monitorFixture(t, 1)
	det := &scriptedDetector{}
	m, err := NewMonitor(d, nil, WithDriftDetector(det), WithDriftHysteresis(3))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	observe := func(n int) {
		for i := 0; i < n; i++ {
			if err := m.Observe(query(i, time.Hour)); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Two flags then a gap: below hysteresis, no detection.
	det.flag = true
	observe(2)
	det.flag = false
	observe(1)
	if s := m.Stats(); s.Detections != 0 {
		t.Fatalf("detections %d after sub-hysteresis flags", s.Detections)
	}
	// A sustained episode counts exactly one detection, however long.
	det.flag = true
	observe(10)
	if s := m.Stats(); s.Detections != 1 {
		t.Fatalf("detections %d after one sustained episode, want 1", s.Detections)
	}
	// With no sampler the detection is suppressed, not acted on.
	if s := m.Stats(); s.Suppressed != 1 || s.UpdatesTriggered != 0 {
		t.Fatalf("stats %+v: want 1 suppressed, 0 triggered", s)
	}
	// A new episode after the signal clears counts again.
	det.flag = false
	observe(1)
	det.flag = true
	observe(3)
	if s := m.Stats(); s.Detections != 2 {
		t.Fatalf("detections %d after second episode, want 2", s.Detections)
	}
}

func TestMonitorTriggersUpdateAndCooldown(t *testing.T) {
	tb, d, query := monitorFixture(t, 1)
	det := &scriptedDetector{}
	var clock time.Duration = 45 * 24 * time.Hour
	sampler := tb.Sampler(func() time.Duration { return clock })
	m, err := NewMonitor(d, sampler,
		WithDriftDetector(det),
		WithDriftHysteresis(2),
		WithUpdateCooldown(50),
		WithSynchronousUpdates())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	det.flag = true
	for i := 0; i < 2; i++ {
		if err := m.Observe(query(i, clock)); err != nil {
			t.Fatal(err)
		}
	}
	s := m.Stats()
	if s.UpdatesTriggered != 1 || s.UpdatesCompleted != 1 || s.UpdateErrors != 0 {
		t.Fatalf("after detection: %+v", s)
	}
	if s.SnapshotVersion != 2 {
		t.Fatalf("snapshot version %d after auto-update, want 2", s.SnapshotVersion)
	}
	if s.CooldownRemaining != 50 {
		t.Fatalf("cooldown %d, want 50", s.CooldownRemaining)
	}
	if det.resets == 0 {
		t.Fatal("detector not re-calibrated after the published update")
	}

	// Keep flagging through the cooldown: the new episode is detected
	// and suppressed, with no second update.
	for i := 0; i < 40; i++ {
		if err := m.Observe(query(100+i, clock)); err != nil {
			t.Fatal(err)
		}
	}
	s = m.Stats()
	if s.UpdatesTriggered != 1 {
		t.Fatalf("updates triggered %d during cooldown, want 1", s.UpdatesTriggered)
	}
	if s.Suppressed == 0 {
		t.Fatal("no suppressed detection recorded during cooldown")
	}
	// Once the cooldown expires, a persisting episode triggers again.
	for i := 0; i < 30; i++ {
		if err := m.Observe(query(200+i, clock)); err != nil {
			t.Fatal(err)
		}
	}
	s = m.Stats()
	if s.UpdatesTriggered != 2 || s.SnapshotVersion != 3 {
		t.Fatalf("after cooldown expiry: %+v", s)
	}
}

func TestMonitorAsyncUpdateCompletes(t *testing.T) {
	tb, d, query := monitorFixture(t, 1)
	det := &scriptedDetector{}
	var mu sync.Mutex
	clock := 45 * 24 * time.Hour
	sampler := SamplerFunc(func(refs []int) (UpdateInputs, error) {
		// Serialize testbed access: the monitor samples from its update
		// goroutine while the test keeps observing.
		mu.Lock()
		defer mu.Unlock()
		xr, _ := tb.ReferenceMatrix(clock, refs)
		return UpdateInputs{NoDecrease: tb.NoDecreaseMatrix(clock), Known: tb.Mask(), References: xr}, nil
	})
	m, err := NewMonitor(d, sampler, WithDriftDetector(det), WithDriftHysteresis(2))
	if err != nil {
		t.Fatal(err)
	}

	det.flag = true
	queries := make([][]float64, 8)
	for i := range queries {
		mu.Lock()
		queries[i] = query(i, clock)
		mu.Unlock()
	}
	for _, q := range queries {
		if err := m.Observe(q); err != nil {
			t.Fatal(err)
		}
	}
	if s := m.Stats(); s.UpdatesTriggered != 1 {
		t.Fatalf("updates triggered %d, want 1", s.UpdatesTriggered)
	}
	m.Close() // waits for the in-flight update
	s := m.Stats()
	if s.UpdatesCompleted != 1 || s.UpdateErrors != 0 {
		t.Fatalf("after Close: %+v", s)
	}
	if v := d.Version(); v != 2 {
		t.Fatalf("deployment version %d after async auto-update, want 2", v)
	}
}

func TestMonitorRecordsSamplerErrors(t *testing.T) {
	_, d, query := monitorFixture(t, 1)
	det := &scriptedDetector{}
	boom := fmt.Errorf("radio frontend offline")
	sampler := SamplerFunc(func([]int) (UpdateInputs, error) { return UpdateInputs{}, boom })
	m, err := NewMonitor(d, sampler,
		WithDriftDetector(det), WithDriftHysteresis(1), WithSynchronousUpdates())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	det.flag = true
	if err := m.Observe(query(0, time.Hour)); err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if s.UpdateErrors != 1 || s.UpdatesCompleted != 0 {
		t.Fatalf("stats %+v: want 1 update error", s)
	}
	if s.LastError == "" {
		t.Fatal("LastError empty after failed update")
	}
	if d.Version() != 1 {
		t.Fatal("failed update must not publish")
	}
}

func TestMatrixSampler(t *testing.T) {
	var s MatrixSampler
	if _, err := s.SampleReferences([]int{1, 2}); err == nil {
		t.Fatal("empty MatrixSampler sampled successfully")
	}
	refM, _ := NewMatrix(2, 3)
	nd, _ := NewMatrix(2, 6)
	mask, _ := MaskFromRows([][]bool{{true, false, true, true, false, true}, {true, true, false, true, true, false}})
	s.Store(UpdateInputs{NoDecrease: nd, Known: mask, References: refM})
	if _, err := s.SampleReferences([]int{1, 2}); err == nil {
		t.Fatal("reference-count mismatch accepted")
	}
	in, err := s.SampleReferences([]int{0, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if in.References.Cols() != 3 {
		t.Fatalf("got %d reference columns", in.References.Cols())
	}
}

// TestMonitorObserveAllocBudget enforces the steady-state allocation
// budget of the observe path: at most 2 allocs per observed query (the
// measured value is 0 — residual scan, detector and counters all run on
// preallocated state).
func TestMonitorObserveAllocBudget(t *testing.T) {
	_, d, query := monitorFixture(t, 1)
	m, err := NewMonitor(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	// Warm past calibration so the steady-state path is measured.
	queries := make([][]float64, 512)
	for i := range queries {
		queries[i] = query(i, time.Hour)
	}
	for _, q := range queries {
		if err := m.Observe(q); err != nil {
			t.Fatal(err)
		}
	}
	var i int
	if allocs := testing.AllocsPerRun(400, func() {
		m.Observe(queries[i&511])
		i++
	}); allocs > 2 {
		t.Errorf("Observe allocates %.1f per query in steady state, budget is 2", allocs)
	}
}

// TestInstrumentedHotPathsAllocFree pins the observability cost of the
// query path at zero: Locate (timing every call into the latency
// histogram) and Monitor.Observe (folding per-link attribution into the
// EWMA tracker) must stay allocation-free in steady state — with a
// tracer attached. Every query records a full span tree into pooled
// scratch; as long as the trace is not retained (no head sampling, no
// slow threshold hit), the scratch goes straight back to the pool.
func TestInstrumentedHotPathsAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("-race makes sync.Pool drop items, so pooled paths allocate")
	}
	tracer := trace.New(trace.Config{DefaultSlow: -1})
	_, d, query := monitorFixture(t, 1, WithTracer(tracer, "hot"))
	m, err := NewMonitor(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	queries := make([][]float64, 512)
	for i := range queries {
		queries[i] = query(i, time.Hour)
	}
	// Warm both paths past calibration and scratch-pool setup.
	for _, q := range queries {
		if _, err := d.Locate(q); err != nil {
			t.Fatal(err)
		}
		if err := m.Observe(q); err != nil {
			t.Fatal(err)
		}
	}
	var i int
	if allocs := testing.AllocsPerRun(400, func() {
		d.Locate(queries[i&511])
		i++
	}); allocs > 0 {
		t.Errorf("instrumented Locate allocates %.1f per query, want 0", allocs)
	}
	i = 0
	if allocs := testing.AllocsPerRun(400, func() {
		m.Observe(queries[i&511])
		i++
	}); allocs > 0 {
		t.Errorf("instrumented Observe allocates %.1f per query, want 0", allocs)
	}
	if n := d.LocateLatency().Snapshot().Count; n == 0 {
		t.Error("latency histogram observed nothing")
	}
	// The zero-alloc result must not come from tracing being bypassed:
	// every query above started (and discarded) a trace.
	if st := tracer.Stats(); st.Started == 0 {
		t.Error("tracer saw no traces: the hot paths bypassed tracing")
	} else if st.Retained != 0 {
		t.Errorf("%d traces retained; the unsampled path should discard all", st.Retained)
	}
}

// baselineScripted is a scriptedDetector that also carries a calibrated
// baseline, so tests can steer the adaptive cooldown's excess term.
type baselineScripted struct {
	scriptedDetector
	mu, sigma float64
	ok        bool
}

func (d *baselineScripted) Baseline() (float64, float64, bool) { return d.mu, d.sigma, d.ok }
func (d *baselineScripted) SetBaseline(mu, sigma float64)      { d.mu, d.sigma, d.ok = mu, sigma, true }

func TestMonitorAdaptiveCooldown(t *testing.T) {
	trigger := func(t *testing.T, det DriftDetector, opts ...MonitorOption) MonitorStats {
		t.Helper()
		tb, d, query := monitorFixture(t, 1)
		clock := 45 * 24 * time.Hour
		sampler := tb.Sampler(func() time.Duration { return clock })
		opts = append([]MonitorOption{
			WithDriftDetector(det),
			WithDriftHysteresis(2),
			WithSynchronousUpdates(),
		}, opts...)
		m, err := NewMonitor(d, sampler, opts...)
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		for i := 0; i < 2; i++ {
			if err := m.Observe(query(i, clock)); err != nil {
				t.Fatal(err)
			}
		}
		s := m.Stats()
		if s.UpdatesTriggered != 1 {
			t.Fatalf("updates triggered %d, want 1 (%+v)", s.UpdatesTriggered, s)
		}
		return s
	}

	t.Run("mild drift waits the ceiling", func(t *testing.T) {
		// Baseline mean far above any real residual: excess clamps to 0.
		det := &baselineScripted{mu: 1e6, sigma: 1, ok: true}
		det.flag = true
		s := trigger(t, det, WithAdaptiveCooldown(20, 200, 1))
		if s.CooldownRemaining != 200 {
			t.Fatalf("cooldown %d, want the 200 ceiling", s.CooldownRemaining)
		}
	})
	t.Run("violent drift shrinks to the floor", func(t *testing.T) {
		// Baseline mean far below the residual with a tiny sigma: the
		// excess is enormous, so the cooldown clamps to the floor.
		det := &baselineScripted{mu: -1e6, sigma: 1e-3, ok: true}
		det.flag = true
		s := trigger(t, det, WithAdaptiveCooldown(20, 200, 1))
		if s.CooldownRemaining != 20 {
			t.Fatalf("cooldown %d, want the 20 floor", s.CooldownRemaining)
		}
	})
	t.Run("no baseline waits the ceiling", func(t *testing.T) {
		det := &scriptedDetector{flag: true}
		s := trigger(t, det, WithAdaptiveCooldown(20, 200, 1))
		if s.CooldownRemaining != 200 {
			t.Fatalf("cooldown %d, want the 200 ceiling", s.CooldownRemaining)
		}
	})
	t.Run("WithUpdateCooldown restores the fixed policy", func(t *testing.T) {
		det := &baselineScripted{mu: -1e6, sigma: 1e-3, ok: true}
		det.flag = true
		s := trigger(t, det, WithUpdateCooldown(77))
		if s.CooldownRemaining != 77 {
			t.Fatalf("cooldown %d, want the fixed 77", s.CooldownRemaining)
		}
	})
}

func TestMonitorStatsTopLinks(t *testing.T) {
	_, d, query := monitorFixture(t, 1)
	m, err := NewMonitor(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if s := m.Stats(); len(s.TopLinks) != 0 {
		t.Fatalf("TopLinks before any observation: %v", s.TopLinks)
	}
	for i := 0; i < 64; i++ {
		if err := m.Observe(query(i, time.Hour)); err != nil {
			t.Fatal(err)
		}
	}
	s := m.Stats()
	links := d.Geometry().Links
	wantK := 3
	if links < wantK {
		wantK = links
	}
	if len(s.TopLinks) != wantK {
		t.Fatalf("TopLinks %v, want %d entries", s.TopLinks, wantK)
	}
	seen := map[int]bool{}
	for i, ld := range s.TopLinks {
		if ld.Link < 0 || ld.Link >= links || seen[ld.Link] {
			t.Fatalf("bad/duplicate link in %v", s.TopLinks)
		}
		seen[ld.Link] = true
		if ld.ErrDB < 0 {
			t.Fatalf("negative attributed error in %v", s.TopLinks)
		}
		if i > 0 && s.TopLinks[i-1].ErrDB < ld.ErrDB {
			t.Fatalf("TopLinks not descending: %v", s.TopLinks)
		}
	}
	// The allocation-free accessor agrees with the Stats view.
	outL := make([]int, wantK)
	outE := make([]float64, wantK)
	if n := m.TopLinksInto(outL, outE); n != wantK {
		t.Fatalf("TopLinksInto filled %d, want %d", n, wantK)
	}
	for i := 0; i < wantK; i++ {
		if outL[i] != s.TopLinks[i].Link {
			t.Fatalf("TopLinksInto %v disagrees with Stats %v", outL, s.TopLinks)
		}
	}
}

func TestMonitorConcurrentObserve(t *testing.T) {
	// Observe must be safe under concurrent callers (the serve mode
	// feeds it from HTTP handler goroutines).
	_, d, query := monitorFixture(t, 1)
	m, err := NewMonitor(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	queries := make([][]float64, 64)
	for i := range queries {
		queries[i] = query(i, time.Hour)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				m.Observe(queries[(w*131+i)&63])
			}
		}(w)
	}
	wg.Wait()
	if s := m.Stats(); s.Queries != 2000 {
		t.Fatalf("queries %d, want 2000", s.Queries)
	}
	m.Close()
}
