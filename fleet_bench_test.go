package iupdater_test

import (
	"fmt"
	"testing"

	"iupdater"
)

// benchFleetSite builds one durable site over an in-memory store
// backend with a smooth synthetic fingerprint map, mirroring the
// root-package fleet tests but from the external bench package.
func benchFleetSite(b *testing.B, f *iupdater.Fleet, name string, seed int) *iupdater.Site {
	b.Helper()
	geo := iupdater.Geometry{WidthM: 8, HeightM: 4, Links: 4, PerStrip: 24}
	rows := make([][]float64, geo.Links)
	for i := range rows {
		rows[i] = make([]float64, geo.NumCells())
		for j := range rows[i] {
			rows[i][j] = -40 - float64((i*31+j*7+seed*13)%200)/10
		}
	}
	fp, err := iupdater.MatrixFromRows(rows)
	if err != nil {
		b.Fatal(err)
	}
	st, err := iupdater.OpenStore("", iupdater.WithBackend(iupdater.NewMemoryBackend()), iupdater.WithoutSync())
	if err != nil {
		b.Fatal(err)
	}
	d, err := iupdater.NewDeployment(fp, geo, iupdater.WithStore(st))
	if err != nil {
		b.Fatal(err)
	}
	site, err := f.AddSite(name, iupdater.SiteConfig{Deployment: d})
	if err != nil {
		b.Fatal(err)
	}
	return site
}

// BenchmarkFleetHotQuery measures the resident-site query path through
// the fleet: Site.Hydrate (one atomic load plus an LRU touch) followed
// by Snapshot and Locate. The whole chain must stay on the lock-free
// path — allocs/op budget <= 2 (0 measured; the Locate scratch is
// pooled), enforced by scripts/bench.sh.
func BenchmarkFleetHotQuery(b *testing.B) {
	f := iupdater.NewFleet(iupdater.WithResidentLimit(4))
	defer f.Close()
	var hot *iupdater.Site
	for i := 0; i < 4; i++ {
		s := benchFleetSite(b, f, fmt.Sprintf("site-%d", i), i+1)
		if i == 0 {
			hot = s
		}
	}
	probe := []float64{-41, -43.5, -47, -52}
	// Warm the locate scratch pool (per-P) so b.N measures the steady
	// state even at -benchtime 1x.
	for i := 0; i < 64; i++ {
		d, _, err := hot.Hydrate()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := d.Snapshot().Locate(probe); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, _, err := hot.Hydrate()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := d.Snapshot().Locate(probe); err != nil {
			b.Fatal(err)
		}
	}
	// Stop before the deferred fleet teardown, which would otherwise be
	// timed (and billed) against the final iteration.
	b.StopTimer()
}

// BenchmarkFleetColdQuery measures the park/rehydrate cycle end to end:
// with a resident budget of one, two sites queried alternately evict
// each other every iteration, so each op pays a full store read, delta
// resolution, snapshot materialization and index build. This is the
// latency a cold site's first query sees (also exported live as the
// iupdater_site_rehydration_seconds histogram).
func BenchmarkFleetColdQuery(b *testing.B) {
	f := iupdater.NewFleet(iupdater.WithResidentLimit(1))
	defer f.Close()
	pair := []*iupdater.Site{
		benchFleetSite(b, f, "even", 1),
		benchFleetSite(b, f, "odd", 2),
	}
	probe := []float64{-41, -43.5, -47, -52}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, _, err := pair[i%2].Hydrate()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := d.Snapshot().Locate(probe); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if st := f.Stats(); st.Rehydrations == 0 {
		b.Fatal("cold bench never rehydrated")
	}
}
