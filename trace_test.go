package iupdater

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"iupdater/internal/trace"
)

// spanByName finds a span in a retained trace by name.
func spanByName(td *trace.TraceData, name string) (trace.SpanData, bool) {
	for _, sp := range td.Spans {
		if sp.Name == name {
			return sp, true
		}
	}
	return trace.SpanData{}, false
}

func attrOf(sp trace.SpanData, key string) (trace.Attr, bool) {
	for _, a := range sp.Attrs {
		if a.Key == key {
			return a, true
		}
	}
	return trace.Attr{}, false
}

// TestUpdateTraceTree publishes a manual update on a durable deployment
// and asserts the retained trace covers the whole pipeline:
// reconstruct → snapshot.build → persist → swap, all with non-zero
// durations, and that the stage histograms saw the same stages.
func TestUpdateTraceTree(t *testing.T) {
	tracer := trace.New(trace.Config{HeadEvery: 1})
	st, err := OpenStore(t.TempDir(), WithoutSync())
	if err != nil {
		t.Fatal(err)
	}
	tb := NewTestbed(Office(), 1)
	d, _, err := tb.Deploy(0, 20, WithStore(st), WithTracer(tracer, "office"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	at := 45 * 24 * time.Hour
	refs, err := d.ReferenceLocations()
	if err != nil {
		t.Fatal(err)
	}
	xr, _ := tb.ReferenceMatrix(at, refs)
	snap, err := d.Update(tb.NoDecreaseMatrix(at), tb.Mask(), xr)
	if err != nil {
		t.Fatal(err)
	}

	// The update trace is head-sampled (1 in 1); find it in the ring.
	var td *trace.TraceData
	for _, cand := range tracer.Recent() {
		if cand.Path == "update" {
			td = cand
		}
	}
	if td == nil {
		t.Fatalf("no update trace retained; recent = %+v", tracer.Recent())
	}
	if td.Site != "office" {
		t.Errorf("trace site %q, want office", td.Site)
	}
	if td.Duration <= 0 {
		t.Errorf("trace duration %v, want > 0", td.Duration)
	}
	for _, name := range []string{StageReconstruct, "snapshot.build", StagePersist, StageSwap} {
		sp, ok := spanByName(td, name)
		if !ok {
			t.Errorf("span %q missing from update trace %+v", name, td.Spans)
			continue
		}
		if sp.Duration <= 0 {
			t.Errorf("span %q duration %v, want > 0", name, sp.Duration)
		}
		if sp.ParentID != td.Spans[0].ID {
			t.Errorf("span %q parent %d, want root %d", name, sp.ParentID, td.Spans[0].ID)
		}
	}
	if sp, ok := spanByName(td, StagePersist); ok {
		if a, ok := attrOf(sp, "record_kind"); !ok || (a.Str != "full" && a.Str != "delta") {
			t.Errorf("persist span record_kind = %+v, want full or delta", sp.Attrs)
		}
	}

	// The publish trace registry links the published version back to
	// this trace — the hook ServeRecords uses for follower linkage.
	if id, ok := d.PublishTraceID(snap.Version()); !ok || id != td.ID {
		t.Errorf("PublishTraceID(%d) = %v, %v; want %v, true", snap.Version(), id, ok, td.ID)
	}

	// "Fed from the same spans": every traced stage must have exactly
	// one observation in its latency histogram, and the histogram sum
	// must equal the span duration (the identical measured value).
	for _, stage := range UpdateStages() {
		if stage == StageSample {
			continue // manual updates have no sampling stage
		}
		hs := d.UpdateStageLatency(stage).Snapshot()
		if hs.Count != 1 {
			t.Errorf("stage %q histogram count %d, want 1", stage, hs.Count)
			continue
		}
		sp, _ := spanByName(td, stage)
		if want := sp.Duration.Seconds(); hs.Sum != want {
			t.Errorf("stage %q histogram sum %v != span duration %v", stage, hs.Sum, want)
		}
	}
	if d.Publishes() != 1 {
		t.Errorf("publishes %d, want 1", d.Publishes())
	}
}

// TestAutoUpdateTraceTree drives a drift-triggered auto-update and
// asserts the forced trace is retrievable by the ID the monitor
// reports, covering detect → sample → reconstruct → persist → swap.
// The detect span must span the hysteresis window (both flagged
// observations), so its duration is non-zero by construction.
func TestAutoUpdateTraceTree(t *testing.T) {
	tracer := trace.New(trace.Config{DefaultSlow: -1}) // forced-only retention
	st, err := OpenStore(t.TempDir(), WithoutSync())
	if err != nil {
		t.Fatal(err)
	}
	tb := NewTestbed(Office(), 1)
	d, _, err := tb.Deploy(0, 20, WithStore(st), WithTracer(tracer, "office"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	clock := 45 * 24 * time.Hour
	det := &scriptedDetector{flag: true}
	m, err := NewMonitor(d, tb.Sampler(func() time.Duration { return clock }),
		WithDriftDetector(det), WithDriftHysteresis(2), WithSynchronousUpdates())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for i := 0; i < 2; i++ {
		if err := m.Observe(tb.MeasureOnline(2, 2, clock)); err != nil {
			t.Fatal(err)
		}
	}
	stats := m.Stats()
	if stats.UpdatesCompleted != 1 {
		t.Fatalf("updates completed %d, want 1 (%+v)", stats.UpdatesCompleted, stats)
	}
	if stats.LastUpdateTraceID == "" {
		t.Fatal("no LastUpdateTraceID after auto-update")
	}
	id, ok := trace.ParseID(stats.LastUpdateTraceID)
	if !ok {
		t.Fatalf("LastUpdateTraceID %q is not a trace ID", stats.LastUpdateTraceID)
	}
	td, ok := tracer.Get(id)
	if !ok {
		t.Fatalf("trace %s not retained (auto-update traces must be forced)", id)
	}
	if !td.Forced {
		t.Error("auto-update trace not marked forced")
	}
	for _, name := range []string{"detect", StageSample, StageReconstruct, StagePersist, StageSwap} {
		sp, ok := spanByName(td, name)
		if !ok {
			t.Errorf("span %q missing from auto-update trace %+v", name, td.Spans)
			continue
		}
		if sp.Duration <= 0 {
			t.Errorf("span %q duration %v, want > 0", name, sp.Duration)
		}
	}
	// Sample-stage histogram fed from the same span duration.
	if hs := d.UpdateStageLatency(StageSample).Snapshot(); hs.Count != 1 {
		t.Errorf("sample stage histogram count %d, want 1", hs.Count)
	}
}

// TestReplicaPollTraceLinksLeaderPublish replicates one published
// update and asserts the follower's forced replica.poll trace carries
// the leader's publish trace ID (propagated via the Iupdater-Trace-Id
// header on /records) plus validate and apply spans per frame.
func TestReplicaPollTraceLinksLeaderPublish(t *testing.T) {
	leaderTr := trace.New(trace.Config{HeadEvery: 1})
	st, err := OpenStore(t.TempDir(), WithoutSync())
	if err != nil {
		t.Fatal(err)
	}
	tb := NewTestbed(Office(), 1)
	d, _, err := tb.Deploy(0, 20, WithStore(st), WithTracer(leaderTr, "leader"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	at := 45 * 24 * time.Hour
	refs, err := d.ReferenceLocations()
	if err != nil {
		t.Fatal(err)
	}
	xr, _ := tb.ReferenceMatrix(at, refs)
	snap, err := d.Update(tb.NoDecreaseMatrix(at), tb.Mask(), xr)
	if err != nil {
		t.Fatal(err)
	}
	wantID, ok := d.PublishTraceID(snap.Version())
	if !ok {
		t.Fatal("leader recorded no publish trace ID")
	}

	srv := httptest.NewServer(d.ServeRecords())
	defer srv.Close()
	followerTr := trace.New(trace.Config{DefaultSlow: -1})
	rep, err := OpenReplica(srv.URL,
		WithReplicaTracer(followerTr, "branch"),
		WithReplicaWait(100*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := rep.WaitVersion(ctx, snap.Version()); err != nil {
		t.Fatal(err)
	}

	// The poll that streamed frames is forced; it must link the leader
	// publish trace and carry validate/apply spans.
	var linked *trace.TraceData
	deadline := time.Now().Add(5 * time.Second)
	for linked == nil && time.Now().Before(deadline) {
		for _, td := range followerTr.Recent() {
			if td.Path != "replica.poll" || !td.Forced {
				continue
			}
			if a, ok := attrOf(td.Spans[0], "leader_trace_id"); ok && a.Str == wantID.String() {
				linked = td
				break
			}
		}
		if linked == nil {
			time.Sleep(10 * time.Millisecond)
		}
	}
	if linked == nil {
		t.Fatalf("no replica.poll trace linking leader publish %s; recent = %+v", wantID, followerTr.Recent())
	}
	for _, name := range []string{"longpoll", "validate", "apply"} {
		sp, ok := spanByName(linked, name)
		if !ok {
			t.Errorf("span %q missing from replica.poll trace %+v", name, linked.Spans)
			continue
		}
		if name != "longpoll" && sp.Duration < 0 {
			t.Errorf("span %q duration %v negative", name, sp.Duration)
		}
	}
	if sp, ok := spanByName(linked, "apply"); ok {
		if a, ok := attrOf(sp, "version"); !ok || a.Int < 1 {
			t.Errorf("apply span version attr = %+v, want >= 1", sp.Attrs)
		}
	}
}
