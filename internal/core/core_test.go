package core

import (
	"math"
	"math/rand"
	"testing"

	"iupdater/internal/fingerprint"
	"iupdater/internal/mat"
	"iupdater/internal/testbed"
)

func TestMICSelectsIndependentColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	base := mat.RandomNormal(6, 4, rng)
	coef := mat.RandomNormal(4, 20, rng)
	x := mat.Mul(base, coef) // rank 4
	for _, method := range []MICMethod{MICQRCP, MICRREF} {
		idx, err := MIC(x, 4, method)
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		if len(idx) != 4 {
			t.Fatalf("%v: %d columns", method, len(idx))
		}
		sel := x.SelectCols(idx)
		if got := mat.Rank(sel, 1e-8); got != 4 {
			t.Errorf("%v: selected columns have rank %d, want 4", method, got)
		}
		// Ascending order.
		for k := 1; k < len(idx); k++ {
			if idx[k] <= idx[k-1] {
				t.Errorf("%v: indices not ascending: %v", method, idx)
			}
		}
	}
}

func TestMICSpansMatrix(t *testing.T) {
	// The selected columns must reproduce the whole matrix by least
	// squares — the defining property of maximum independent columns.
	rng := rand.New(rand.NewSource(52))
	x := mat.Mul(mat.RandomNormal(8, 8, rng), mat.RandomNormal(8, 40, rng))
	idx, err := MIC(x, 8, MICQRCP)
	if err != nil {
		t.Fatal(err)
	}
	sel := x.SelectCols(idx)
	for j := 0; j < 40; j++ {
		z, err := mat.LeastSquares(sel, x.Col(j))
		if err != nil {
			t.Fatal(err)
		}
		recon := mat.MulVec(sel, z)
		for i, v := range x.Col(j) {
			if math.Abs(v-recon[i]) > 1e-7 {
				t.Fatalf("column %d not spanned (entry %d off by %v)", j, i, v-recon[i])
			}
		}
	}
}

func TestMICOnFingerprintPicksSpreadLocations(t *testing.T) {
	// On a simulated fingerprint matrix the 8 reference locations should
	// cover many distinct strips: each link's dip pattern is the
	// independent structure.
	s := testbed.NewSurveyor(testbed.Office(), 3)
	fp, _ := s.FullSurvey(0, testbed.TraditionalSamples)
	idx, err := MIC(fp.X, 8, MICQRCP)
	if err != nil {
		t.Fatal(err)
	}
	strips := make(map[int]bool)
	for _, j := range idx {
		strips[j/fp.PerStrip] = true
	}
	if len(strips) < 5 {
		t.Errorf("reference locations cover only %d strips: %v", len(strips), idx)
	}
}

func TestMICErrors(t *testing.T) {
	x := mat.New(4, 10)
	if _, err := MIC(x, 0, MICQRCP); err == nil {
		t.Error("r=0 accepted")
	}
	if _, err := MIC(x, 5, MICQRCP); err == nil {
		t.Error("r>rows accepted")
	}
	if _, err := MIC(x, 2, MICMethod(99)); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestLRRReconstructsCleanMatrix(t *testing.T) {
	s := testbed.NewSurveyor(testbed.Office(), 5)
	fp, _ := s.FullSurvey(0, testbed.TraditionalSamples)
	refs, err := MIC(fp.X, 8, MICQRCP)
	if err != nil {
		t.Fatal(err)
	}
	xmic := fp.X.SelectCols(refs)
	res, err := LRR(fp.X, xmic, DefaultLRRConfig())
	if err != nil {
		t.Fatal(err)
	}
	recon := mat.AddM(mat.Mul(xmic, res.Z), res.E)
	diff := mat.SubM(fp.X, recon)
	rel := mat.FrobeniusNorm(diff) / mat.FrobeniusNorm(fp.X)
	if rel > 1e-3 {
		t.Errorf("LRR residual %.2e, want < 1e-3", rel)
	}
}

func TestLRRCorrelationTransfersAcrossDrift(t *testing.T) {
	// The key enabler of the whole system: Z learned at t=0 must predict
	// the matrix at t=45 days from fresh reference columns far better
	// than the stale matrix does.
	s := testbed.NewSurveyor(testbed.Office(), 6)
	fp0, _ := s.FullSurvey(0, testbed.TraditionalSamples)
	refs, err := MIC(fp0.X, 8, MICQRCP)
	if err != nil {
		t.Fatal(err)
	}
	xmic := fp0.X.SelectCols(refs)
	lrr, err := LRR(fp0.X, xmic, DefaultLRRConfig())
	if err != nil {
		t.Fatal(err)
	}

	const t45 = 45 * testbed.Day
	truth := s.TrueFingerprint(t45)
	xr, _ := s.ReferenceSurvey(t45, refs, testbed.IUpdaterSamples)
	pred := mat.Mul(xr, lrr.Z)

	errPred := meanAbsDiff(pred, truth.X)
	errStale := meanAbsDiff(fp0.X, truth.X)
	if errPred >= errStale {
		t.Errorf("LRR prediction error %.2f dB not below stale error %.2f dB", errPred, errStale)
	}
	if errPred > 3.5 {
		t.Errorf("LRR prediction error %.2f dB too large", errPred)
	}
}

func TestLRRErrors(t *testing.T) {
	if _, err := LRR(mat.New(4, 10), mat.New(3, 2), DefaultLRRConfig()); err == nil {
		t.Error("row mismatch accepted")
	}
	bad := DefaultLRRConfig()
	bad.Epsilon = 0
	if _, err := LRR(mat.New(4, 10), mat.New(4, 2), bad); err == nil {
		t.Error("zero epsilon accepted")
	}
}

func TestBasicRSVDCompletesLowRankMatrix(t *testing.T) {
	// Sanity: on an exactly low-rank matrix with a random 40% mask and a
	// dense observation pattern, masked ALS must fill the holes well.
	rng := rand.New(rand.NewSource(61))
	x := mat.Mul(mat.RandomNormal(8, 3, rng), mat.RandomNormal(3, 48, rng))
	b := mat.New(8, 48)
	xb := mat.New(8, 48)
	for i := 0; i < 8; i++ {
		for j := 0; j < 48; j++ {
			if rng.Float64() < 0.6 {
				b.Set(i, j, 1)
				xb.Set(i, j, x.At(i, j))
			}
		}
	}
	res, err := BasicRSVD(xb, b, 8, 6, WithRank(3), WithLambda(1e-6), WithMaxIter(200), WithTol(1e-12),
		WithWarmStart(true))
	if err != nil {
		t.Fatal(err)
	}
	if got := meanAbsDiff(res.X, x); got > 0.05 {
		t.Errorf("completion mean error %.4f, want < 0.05", got)
	}
}

func TestReconstructValidation(t *testing.T) {
	rc := NewReconstructor()
	if _, err := rc.Reconstruct(Input{}); err == nil {
		t.Error("nil XB accepted")
	}
	if _, err := rc.Reconstruct(Input{XB: mat.New(4, 12), B: mat.New(4, 10)}); err == nil {
		t.Error("mismatched B accepted")
	}
	if _, err := rc.Reconstruct(Input{XB: mat.New(4, 12), B: mat.New(4, 12), Links: 3, PerStrip: 3}); err == nil {
		t.Error("bad strip structure accepted")
	}
	if _, err := rc.Reconstruct(Input{XB: mat.New(4, 12), B: mat.New(4, 12), Links: 4, PerStrip: 3,
		XR: mat.New(4, 2), Z: mat.New(3, 12)}); err == nil {
		t.Error("inconsistent XR/Z accepted")
	}
}

// reconstructionScenario builds the standard update scenario: original
// survey at t=0, update at tUpdate with the given options; returns the
// reconstruction and the measured ground truth at tUpdate.
func reconstructionScenario(t *testing.T, seed uint64, tUpdate float64, opts ...Option) (*Result, fingerprint.Matrix, fingerprint.Mask) {
	t.Helper()
	s := testbed.NewSurveyor(testbed.Office(), seed)
	fp0, _ := s.FullSurvey(0, testbed.TraditionalSamples)
	cfg := DefaultUpdaterConfig()
	cfg.Reconstruction = append(cfg.Reconstruction, opts...)
	up, err := NewUpdater(fp0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mask := s.Mask()
	xb := s.NoDecreaseScan(tUpdate, testbed.IUpdaterSamples)
	xr, _ := s.ReferenceSurvey(tUpdate, up.ReferenceLocations(), testbed.IUpdaterSamples)
	_, res, err := up.Update(xb, mask, xr, tUpdate)
	if err != nil {
		t.Fatal(err)
	}
	truth := s.TrueFingerprint(tUpdate)
	return res, truth, mask
}

func TestSelfAugmentedReconstructionAccuracy(t *testing.T) {
	// The headline behavior (Fig 18): after 45 days of drift the
	// reconstructed matrix is close to the current truth on the affected
	// (labor-cost) entries, which a stale database misses by ~6 dB.
	res, truth, mask := reconstructionScenario(t, 7, 45*testbed.Day)
	errAffected := maskedMeanAbs(res.X, truth.X, mask, false)
	if errAffected > 4.0 {
		t.Errorf("affected-entry reconstruction error %.2f dB, want < 4", errAffected)
	}
	errKnown := maskedMeanAbs(res.X, truth.X, mask, true)
	if errKnown > 1.5 {
		t.Errorf("known-entry reconstruction error %.2f dB, want < 1.5", errKnown)
	}
}

func TestReconstructionBeatsStaleDatabase(t *testing.T) {
	s := testbed.NewSurveyor(testbed.Office(), 8)
	fp0, _ := s.FullSurvey(0, testbed.TraditionalSamples)
	res, truth, mask := reconstructionScenario(t, 8, 45*testbed.Day)
	errRecon := maskedMeanAbs(res.X, truth.X, mask, false)
	errStale := maskedMeanAbs(fp0.X, truth.X, mask, false)
	if errRecon >= errStale {
		t.Errorf("reconstruction %.2f dB not better than stale %.2f dB", errRecon, errStale)
	}
}

func TestConstraintAblationOrdering(t *testing.T) {
	// Fig 16: error(RSVD) > error(RSVD+C1) > error(RSVD+C1+C2). The
	// ablation evaluates Algorithm 1 as printed, i.e. from the random
	// initialization it prescribes (with the SVD warm start of the
	// production pipeline, Constraint 1 alone already reaches the noise
	// floor and C2's contribution vanishes — see the init ablation
	// benchmark).
	const tU = 45 * testbed.Day
	cold := WithWarmStart(false)
	basic, truth, mask := reconstructionScenario(t, 9, tU,
		cold, WithConstraint1(false), WithConstraint2(false))
	c1, _, _ := reconstructionScenario(t, 9, tU,
		cold, WithConstraint1(true), WithConstraint2(false))
	c12, _, _ := reconstructionScenario(t, 9, tU,
		cold, WithConstraint1(true), WithConstraint2(true))

	eBasic := maskedMeanAbs(basic.X, truth.X, mask, false)
	eC1 := maskedMeanAbs(c1.X, truth.X, mask, false)
	eC12 := maskedMeanAbs(c12.X, truth.X, mask, false)
	if !(eBasic > eC1) {
		t.Errorf("C1 did not help: basic %.2f vs +C1 %.2f", eBasic, eC1)
	}
	if !(eC1 > eC12) {
		t.Errorf("C2 did not help under cold start: +C1 %.2f vs +C1+C2 %.2f", eC1, eC12)
	}
}

func TestVariantsBothConverge(t *testing.T) {
	for _, v := range []Variant{VariantGaussSeidel, VariantPaper} {
		res, truth, mask := reconstructionScenario(t, 10, 15*testbed.Day, WithVariant(v))
		e := maskedMeanAbs(res.X, truth.X, mask, false)
		if e > 6 {
			t.Errorf("%v: error %.2f dB, want < 6", v, e)
		}
		if !res.X.IsFinite() {
			t.Errorf("%v: non-finite output", v)
		}
	}
}

func TestReconstructionDeterminism(t *testing.T) {
	a, _, _ := reconstructionScenario(t, 11, 5*testbed.Day)
	b, _, _ := reconstructionScenario(t, 11, 5*testbed.Day)
	if !a.X.Equal(b.X) {
		t.Error("identical scenarios produced different reconstructions")
	}
}

func TestUpdaterReferenceCount(t *testing.T) {
	s := testbed.NewSurveyor(testbed.Office(), 12)
	fp0, _ := s.FullSurvey(0, testbed.TraditionalSamples)
	up, err := NewUpdater(fp0, DefaultUpdaterConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Claim 1: the number of reference locations equals the rank bound M,
	// far below N.
	if got := len(up.ReferenceLocations()); got != 8 {
		t.Errorf("reference count = %d, want 8", got)
	}
	cfg := DefaultUpdaterConfig()
	cfg.NumReferences = 5
	up5, err := NewUpdater(fp0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(up5.ReferenceLocations()); got != 5 {
		t.Errorf("reference count = %d, want 5", got)
	}
}

func TestUpdaterRejectsWrongReferenceMatrix(t *testing.T) {
	s := testbed.NewSurveyor(testbed.Office(), 13)
	fp0, _ := s.FullSurvey(0, testbed.TraditionalSamples)
	up, err := NewUpdater(fp0, DefaultUpdaterConfig())
	if err != nil {
		t.Fatal(err)
	}
	xb := s.NoDecreaseScan(0, 5)
	_, _, err = up.Update(xb, s.Mask(), mat.New(8, 3), 0)
	if err == nil {
		t.Error("wrong reference column count accepted")
	}
}

func TestUpdaterRefresh(t *testing.T) {
	s := testbed.NewSurveyor(testbed.Office(), 14)
	fp0, _ := s.FullSurvey(0, testbed.TraditionalSamples)
	up, err := NewUpdater(fp0, DefaultUpdaterConfig())
	if err != nil {
		t.Fatal(err)
	}
	mask := s.Mask()
	xb := s.NoDecreaseScan(15*testbed.Day, 5)
	xr, _ := s.ReferenceSurvey(15*testbed.Day, up.ReferenceLocations(), 5)
	updated, _, err := up.Update(xb, mask, xr, 15*testbed.Day)
	if err != nil {
		t.Fatal(err)
	}
	if err := up.Refresh(updated); err != nil {
		t.Fatalf("Refresh: %v", err)
	}
	if got := len(up.ReferenceLocations()); got != 8 {
		t.Errorf("reference count after refresh = %d", got)
	}
}

func meanAbsDiff(a, b *mat.Dense) float64 {
	d := mat.SubM(a, b)
	var sum float64
	m, n := d.Dims()
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			sum += math.Abs(d.At(i, j))
		}
	}
	return sum / float64(m*n)
}

// maskedMeanAbs returns the mean |a-b| over the known (known=true) or
// affected (known=false) entries.
func maskedMeanAbs(a, b *mat.Dense, mask fingerprint.Mask, known bool) float64 {
	var sum float64
	var cnt int
	m, n := a.Dims()
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if mask.Known(i, j) == known {
				sum += math.Abs(a.At(i, j) - b.At(i, j))
				cnt++
			}
		}
	}
	if cnt == 0 {
		return 0
	}
	return sum / float64(cnt)
}
