package core

import (
	"math"
	"math/rand"
	"testing"

	"iupdater/internal/mat"
	"iupdater/internal/testbed"
)

// Failure-injection tests: the update pipeline must degrade gracefully
// when field measurements go wrong, not explode.

func TestReconstructRejectsNonFiniteInput(t *testing.T) {
	s := testbed.NewSurveyor(testbed.Office(), 31)
	fp0, _ := s.FullSurvey(0, testbed.TraditionalSamples)
	up, err := NewUpdater(fp0, DefaultUpdaterConfig())
	if err != nil {
		t.Fatal(err)
	}
	mask := s.Mask()
	xb := s.NoDecreaseScan(5*testbed.Day, 5)
	xr, _ := s.ReferenceSurvey(5*testbed.Day, up.ReferenceLocations(), 5)

	tests := []struct {
		name    string
		corrupt func()
		restore func()
	}{
		{
			"NaN in no-decrease scan",
			func() { xb.Set(2, 3, math.NaN()) },
			func() { xb.Set(2, 3, 0) },
		},
		{
			"Inf in reference matrix",
			func() { xr.Set(1, 1, math.Inf(1)) },
			func() { xr.Set(1, 1, -70) },
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			tt.corrupt()
			defer tt.restore()
			if _, _, err := up.Update(xb, mask, xr, 5*testbed.Day); err == nil {
				t.Error("corrupted input accepted")
			}
		})
	}
}

func TestReconstructSurvivesDeadLink(t *testing.T) {
	// A link whose radio died between surveys reports a floor value
	// everywhere. The reconstruction must stay finite and the healthy
	// links' entries must stay accurate.
	const tU = 15 * testbed.Day
	s := testbed.NewSurveyor(testbed.Office(), 32)
	fp0, _ := s.FullSurvey(0, testbed.TraditionalSamples)
	up, err := NewUpdater(fp0, DefaultUpdaterConfig())
	if err != nil {
		t.Fatal(err)
	}
	mask := s.Mask()
	xb := s.NoDecreaseScan(tU, 5)
	xr, _ := s.ReferenceSurvey(tU, up.ReferenceLocations(), 5)

	const dead = 3
	_, n := xb.Dims()
	for j := 0; j < n; j++ {
		if mask.Known(dead, j) {
			xb.Set(dead, j, -100)
		}
	}
	for k := 0; k < len(up.ReferenceLocations()); k++ {
		xr.Set(dead, k, -100)
	}

	updated, res, err := up.Update(xb, mask, xr, tU)
	if err != nil {
		t.Fatalf("dead link broke the update: %v", err)
	}
	if !res.X.IsFinite() {
		t.Fatal("non-finite reconstruction")
	}
	truth := s.TrueFingerprint(tU)
	var healthyErr float64
	var cnt int
	for i := 0; i < 8; i++ {
		if i == dead {
			continue
		}
		for j := 0; j < n; j++ {
			if !mask.Known(i, j) {
				healthyErr += math.Abs(updated.X.At(i, j) - truth.X.At(i, j))
				cnt++
			}
		}
	}
	if mean := healthyErr / float64(cnt); mean > 4 {
		t.Errorf("healthy links' error %.2f dB after dead-link injection", mean)
	}
}

func TestReconstructBoundedUnderCorruptReference(t *testing.T) {
	// One reference column measured while a truck parked outside: +8 dB
	// bias on every link. The global error must stay bounded (the other
	// references and the constraints contain the damage).
	const tU = 15 * testbed.Day
	s := testbed.NewSurveyor(testbed.Office(), 33)
	fp0, _ := s.FullSurvey(0, testbed.TraditionalSamples)
	up, err := NewUpdater(fp0, DefaultUpdaterConfig())
	if err != nil {
		t.Fatal(err)
	}
	mask := s.Mask()
	xb := s.NoDecreaseScan(tU, 5)

	clean, _ := s.ReferenceSurvey(tU, up.ReferenceLocations(), 5)
	corrupt := clean.Clone()
	for i := 0; i < 8; i++ {
		corrupt.Add(i, 2, 8)
	}

	_, resClean, err := up.Update(xb, mask, clean, tU)
	if err != nil {
		t.Fatal(err)
	}
	_, resCorrupt, err := up.Update(xb, mask, corrupt, tU)
	if err != nil {
		t.Fatal(err)
	}
	truth := s.TrueFingerprint(tU)
	eClean := meanAbsDiff(resClean.X, truth.X)
	eCorrupt := meanAbsDiff(resCorrupt.X, truth.X)
	if eCorrupt > eClean+3 {
		t.Errorf("corrupt reference blew up the error: %.2f vs %.2f dB", eCorrupt, eClean)
	}
}

func TestChainedUpdatesStayBounded(t *testing.T) {
	// Fig 10's feedback loop: each update feeds the next correlation
	// acquisition. Five chained updates over three months must not
	// accumulate error.
	s := testbed.NewSurveyor(testbed.Office(), 34)
	fp0, _ := s.FullSurvey(0, testbed.TraditionalSamples)
	up, err := NewUpdater(fp0, DefaultUpdaterConfig())
	if err != nil {
		t.Fatal(err)
	}
	mask := s.Mask()
	var prevErr float64
	for k, tU := range testbed.UpdateTimestamps() {
		xb := s.NoDecreaseScan(tU, 5)
		xr, _ := s.ReferenceSurvey(tU, up.ReferenceLocations(), 5)
		updated, res, err := up.Update(xb, mask, xr, tU)
		if err != nil {
			t.Fatalf("update %d: %v", k, err)
		}
		truth := s.TrueFingerprint(tU)
		e := maskedMeanAbs(res.X, truth.X, mask, false)
		if e > 3.5 {
			t.Errorf("update %d (t=%.0f d): error %.2f dB", k, tU/testbed.Day, e)
		}
		if k > 0 && e > prevErr*4+1 {
			t.Errorf("update %d error %.2f dB ballooned from %.2f", k, e, prevErr)
		}
		prevErr = e
		if err := up.Refresh(updated); err != nil {
			t.Fatalf("refresh %d: %v", k, err)
		}
	}
}

func TestReconstructAllMaskedKnown(t *testing.T) {
	// Degenerate but legal: everything known (no affected entries). The
	// solver must reproduce the measurements.
	rng := mat.RandomNormal(4, 12, newTestRand())
	b := mat.New(4, 12)
	for i := 0; i < 4; i++ {
		for j := 0; j < 12; j++ {
			b.Set(i, j, 1)
		}
	}
	rc := NewReconstructor(WithWarmStart(true), WithConstraint1(false), WithConstraint2(false))
	res, err := rc.Reconstruct(Input{XB: rng, B: b, Links: 4, PerStrip: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := meanAbsDiff(res.X, rng); got > 0.05 {
		t.Errorf("fully observed reconstruction off by %.3f", got)
	}
}

func newTestRand() *rand.Rand { return rand.New(rand.NewSource(99)) }
