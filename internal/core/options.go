package core

import (
	"fmt"
	"runtime"
)

// Variant selects how the per-column closed-form solves of Algorithm 1
// treat the cross-entry couplings of Constraint 2.
type Variant int

const (
	// VariantGaussSeidel keeps the couplings between an entry of X_D and
	// its strip/link neighbors on the right-hand side using the current
	// iterate (a block Gauss-Seidel sweep). The default: it is what the
	// constraints mean mathematically.
	VariantGaussSeidel Variant = iota
	// VariantPaper reproduces Algorithm 1 exactly as printed: the
	// quadratic (Q4, Q5) parts of Constraint 2 are kept but the coupling
	// constants are zeroed (C4 = C5 = O, line 21). Available for the
	// ablation benchmark.
	VariantPaper
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case VariantGaussSeidel:
		return "gauss-seidel"
	case VariantPaper:
		return "paper"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// options holds the reconstruction configuration.
type options struct {
	rank        int // 0 = number of links
	lambda      float64
	maxIter     int
	tol         float64
	vth         float64
	variant     Variant
	seed        uint64
	useC1       bool
	useC2       bool
	c1Weight    float64 // strength multiplier on the auto-scaled weight
	c2GWeight   float64
	c2HWeight   float64
	autoScale   bool
	warmStart   bool
	restarts    int
	concurrency int // 1 = sequential, <=0 = GOMAXPROCS
}

// workers resolves the configured concurrency to an effective worker
// count.
func (o *options) workers() int {
	if o.concurrency == 1 {
		return 1
	}
	if o.concurrency > 1 {
		return o.concurrency
	}
	return runtime.GOMAXPROCS(0)
}

func defaultOptions() options {
	return options{
		rank:      0,
		lambda:    1e-3,
		maxIter:   40,
		tol:       1e-6,
		vth:       0,
		variant:   VariantGaussSeidel,
		seed:      1,
		useC1:     true,
		useC2:     true,
		c1Weight:  1,
		c2GWeight: 1,
		c2HWeight: 1,
		autoScale: true,
		// Algorithm 1 initializes L̂ randomly; the SVD warm start is our
		// extension (see the initialization ablation benchmark) and is
		// opt-in via WithWarmStart(true).
		warmStart: false,
		restarts:  3,
		// Sequential by default: the sequential Gauss-Seidel sweep is
		// the bit-exact reference; see WithConcurrency.
		concurrency: 1,
	}
}

// Option configures a Reconstructor.
type Option func(*options)

// WithRank bounds the factorization rank r; 0 (default) uses the number
// of links M, the paper's choice (Fig 5 shows r = M).
func WithRank(r int) Option { return func(o *options) { o.rank = r } }

// WithLambda sets the Lagrange/ridge coefficient λ of Eqn 11.
func WithLambda(l float64) Option { return func(o *options) { o.lambda = l } }

// WithMaxIter bounds the alternating iterations (the paper's t).
func WithMaxIter(n int) Option { return func(o *options) { o.maxIter = n } }

// WithTol sets the relative objective-change convergence tolerance.
func WithTol(tol float64) Option { return func(o *options) { o.tol = tol } }

// WithThreshold sets the absolute objective threshold v_th below which
// iteration stops (Algorithm 1's v_th guard).
func WithThreshold(vth float64) Option { return func(o *options) { o.vth = vth } }

// WithVariant selects the per-column solve variant.
func WithVariant(v Variant) Option { return func(o *options) { o.variant = v } }

// WithSeed seeds the random initialization of L̂ (Algorithm 1 line 1).
func WithSeed(s uint64) Option { return func(o *options) { o.seed = s } }

// WithConstraint1 toggles the reference-correlation constraint
// ||LRᵀ - X_R*Z||²F (Constraint 1 of Eqn 18).
func WithConstraint1(on bool) Option { return func(o *options) { o.useC1 = on } }

// WithConstraint2 toggles the continuity and similarity constraints
// ||X_D*G||²F + ||H*X_D||²F (Constraint 2 of Eqn 18).
func WithConstraint2(on bool) Option { return func(o *options) { o.useC2 = on } }

// WithConstraint1Weight scales Constraint 1 relative to the auto-scaled
// baseline (1 = same order of magnitude as the data term, §IV-E).
func WithConstraint1Weight(w float64) Option { return func(o *options) { o.c1Weight = w } }

// WithConstraint2Weight scales both Constraint 2 terms relative to the
// auto-scaled baseline.
func WithConstraint2Weight(w float64) Option {
	return func(o *options) { o.c2GWeight, o.c2HWeight = w, w }
}

// WithContinuityWeight scales only the neighboring-location continuity
// term ||X_D*G||²F.
func WithContinuityWeight(w float64) Option { return func(o *options) { o.c2GWeight = w } }

// WithSimilarityWeight scales only the adjacent-link similarity term
// ||H*X_D||²F.
func WithSimilarityWeight(w float64) Option { return func(o *options) { o.c2HWeight = w } }

// WithAutoScale toggles the §IV-E magnitude equalization of the objective
// terms. When off, the raw weights are used directly.
func WithAutoScale(on bool) Option { return func(o *options) { o.autoScale = on } }

// WithWarmStart toggles the truncated-SVD warm start of the factors.
// When on, L̂ starts from a rank-r truncated SVD of the mask-filled data
// instead of Algorithm 1's random L0; it converges faster and to better
// optima — measured in the initialization ablation benchmark.
func WithWarmStart(on bool) Option { return func(o *options) { o.warmStart = on } }

// WithRestarts sets the number of random restarts for the cold-started
// alternating solve; the run with the lowest objective wins. Ignored with
// a warm start. Values below 1 are treated as 1.
func WithRestarts(n int) Option { return func(o *options) { o.restarts = n } }

// WithConcurrency shards each ALS sweep's independent row/column solves
// over n workers (n <= 0 selects GOMAXPROCS; the default 1 runs
// sequentially). Without Constraint 2 couplings (VariantPaper, or
// Constraint 2 disabled) the parallel sweep is bit-identical to the
// sequential one. Under VariantGaussSeidel the couplings are read from
// a pre-sweep snapshot of X_D (block Jacobi), which keeps the sweep
// deterministic for every worker count but follows a slightly
// different — still convergent — iteration than the sequential
// Gauss-Seidel order.
func WithConcurrency(n int) Option { return func(o *options) { o.concurrency = n } }
