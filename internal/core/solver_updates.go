package core

import (
	"sync"
	"sync/atomic"

	"iupdater/internal/mat"
)

// The ALS sweeps below are the numeric hot path of the whole system:
// one closed-form ridge solve per column of R and per row of L, every
// iteration. They run against per-call scratch (solveCtx) borrowed from
// the solver's Workspace, so a full Reconstruct performs no per-column
// or per-iteration allocation.
//
// With WithConcurrency(n>1) the independent solves of one sweep are
// sharded over a bounded worker pool. The solves are only truly
// independent when Constraint 2's cross-entry couplings are absent
// (VariantPaper, or Constraint 2 disabled), where the parallel sweep is
// bit-identical to the sequential one. Under VariantGaussSeidel the
// couplings read the in-sweep iterate; the parallel sweep instead reads
// them from a snapshot of X_D taken at sweep start (a block-Jacobi
// coupling), which keeps the sweep race-free and bit-deterministic for
// every worker count, at the cost of a slightly different — still
// convergent — iteration than the sequential Gauss-Seidel order.

// solveCtx is the per-worker scratch of the closed-form solves: the
// r x r normal-equation matrix, right-hand side, gather buffers, and
// the reusable Cholesky storage of the SPD solver.
type solveCtx struct {
	a   *mat.Dense // r x r normal matrix (lower triangle + diagonal)
	rhs []float64
	sol []float64
	w   *mat.Dense // r x K continuity workspace (Gauss-Seidel updateL)
	wwt *mat.Dense // r x r (ThetaG)(ThetaG)T
	spd mat.SPDSolver
}

// newSolveCtx borrows a solve context from the solver's workspace.
// Contexts are created single-threaded (before any sweep goroutine
// starts) and each is owned by exactly one worker.
func (st *solverState) newSolveCtx() *solveCtx {
	cx := &solveCtx{
		a:   st.ws.Dense(st.r, st.r),
		rhs: st.ws.Vec(st.r),
		sol: st.ws.Vec(st.r),
	}
	if st.o.useC2 && st.o.variant == VariantGaussSeidel {
		cx.w = st.ws.Dense(st.r, st.k)
		cx.wwt = st.ws.Dense(st.r, st.r)
	}
	return cx
}

// free returns the context's buffers to the workspace.
func (cx *solveCtx) free(ws *mat.Workspace) {
	ws.Free(cx.a)
	ws.FreeVec(cx.rhs)
	ws.FreeVec(cx.sol)
	if cx.w != nil {
		ws.Free(cx.w)
		ws.Free(cx.wwt)
	}
}

// updateR performs one sweep of per-column closed-form solves for
// Θ = R̂ᵀ (Algorithm 1 line 3 / Eqn 24), holding L fixed. Sequential
// columns are solved in place, so later columns see earlier updates
// (Gauss-Seidel); with VariantPaper the coupling constants are zero and
// the sweep matches the paper's Jacobi-style closed form exactly.
func (st *solverState) updateR() {
	if st.p != nil {
		mat.MulTAInto(st.ltl, st.l, st.l) // Q3 of Algorithm 1
	}
	if len(st.par) > 0 {
		st.runSweep(st.n, st.solveColumnR)
		return
	}
	for j := 0; j < st.n; j++ {
		st.solveColumnR(j, st.seq, nil)
	}
}

// solveColumnR solves for column j of R. xd is nil for sequential
// (live Gauss-Seidel) sweeps, or the pre-sweep X_D snapshot for
// parallel sweeps.
func (st *solverState) solveColumnR(j int, cx *solveCtx, xd *mat.Dense) {
	r := st.r
	ii := j / st.k // owner link of column j
	jj := j % st.k // position along the strip

	ad := cx.a.RawData()
	for i := range ad {
		ad[i] = 0
	}
	for c := 0; c < r; c++ {
		ad[c*r+c] = st.o.lambda // Q1
	}
	rhs := cx.rhs
	for c := range rhs {
		rhs[c] = 0
	}

	n := st.n
	bd := st.in.B.RawData()
	xbd := st.in.XB.RawData()
	ld := st.l.RawData()

	// Data term: Q2 = (Diag(B(:,j))L)ᵀ(Diag(B(:,j))L),
	// C2 = (Diag(B(:,j))L)ᵀ XB(:,j).
	for i := 0; i < st.m; i++ {
		if bd[i*n+j] != 1 {
			continue
		}
		lrow := ld[i*r : (i+1)*r]
		addScaledOuter(cx.a, st.wData, lrow)
		xb := xbd[i*n+j]
		for c := 0; c < r; c++ {
			rhs[c] += st.wData * xb * lrow[c]
		}
	}

	// Constraint 1: Q3 = LᵀL, C3 = Lᵀ P(:,j). Like addScaledOuter, the
	// symmetric Gram is added to the lower triangle only.
	if st.p != nil {
		ltl := st.ltl.RawData()
		for c := 0; c < r; c++ {
			row := ad[c*r : c*r+c+1]
			for d, v := range ltl[c*r : c*r+c+1] {
				row[d] += st.wC1 * v
			}
		}
		pd := st.p.RawData()
		for i := 0; i < st.m; i++ {
			pij := pd[i*n+j]
			if pij == 0 {
				continue
			}
			lrow := ld[i*r : (i+1)*r]
			for c := 0; c < r; c++ {
				rhs[c] += st.wC1 * pij * lrow[c]
			}
		}
	}

	// Constraint 2: Q4/Q5 quadratic terms on the owner link's row of
	// L; couplings on the RHS for the Gauss-Seidel variant.
	if st.o.useC2 {
		li := ld[ii*r : (ii+1)*r]
		gw := st.ggt.At(jj, jj)
		hw := st.hth.At(ii, ii)
		addScaledOuter(cx.a, st.wC2G*gw+st.wC2H*hw, li)

		if st.o.variant == VariantGaussSeidel {
			// C4: continuity coupling along the strip.
			var crossG float64
			for q := 0; q < st.k; q++ {
				if q == jj {
					continue
				}
				if w := st.ggt.At(q, jj); w != 0 {
					crossG += w * st.xdAt(ii, q, xd)
				}
			}
			// C5: similarity coupling across links, with hardware
			// offsets calibrated out.
			crossH := -hw * st.offsets[ii]
			for mIdx := 0; mIdx < st.m; mIdx++ {
				if mIdx == ii {
					continue
				}
				if w := st.hth.At(ii, mIdx); w != 0 {
					crossH += w * (st.xdAt(mIdx, jj, xd) - st.offsets[mIdx])
				}
			}
			for c := 0; c < r; c++ {
				rhs[c] -= (st.wC2G*crossG + st.wC2H*crossH) * li[c]
			}
		}
	}

	st.solveInto(cx, st.rm, j)
}

// updateL performs one sweep of per-row closed-form solves for L̂
// (Algorithm 1 line 4), holding R fixed.
func (st *solverState) updateL() {
	if st.p != nil {
		mat.MulTAInto(st.rtr, st.rm, st.rm)
	}
	if len(st.par) > 0 {
		st.runSweep(st.m, st.solveRowL)
		return
	}
	for i := 0; i < st.m; i++ {
		st.solveRowL(i, st.seq, nil)
	}
}

// solveRowL solves for row i of L. xd is nil for sequential sweeps, or
// the pre-sweep X_D snapshot for parallel sweeps.
func (st *solverState) solveRowL(i int, cx *solveCtx, xd *mat.Dense) {
	r := st.r

	ad := cx.a.RawData()
	for idx := range ad {
		ad[idx] = 0
	}
	for c := 0; c < r; c++ {
		ad[c*r+c] = st.o.lambda
	}
	rhs := cx.rhs
	for c := range rhs {
		rhs[c] = 0
	}

	n := st.n
	bd := st.in.B.RawData()
	xbd := st.in.XB.RawData()
	rmd := st.rm.RawData()

	// Data term over known entries of row i.
	for j := 0; j < n; j++ {
		if bd[i*n+j] != 1 {
			continue
		}
		theta := rmd[j*r : (j+1)*r]
		addScaledOuter(cx.a, st.wData, theta)
		xb := xbd[i*n+j]
		for c := 0; c < r; c++ {
			rhs[c] += st.wData * xb * theta[c]
		}
	}

	// Constraint 1 (lower triangle only, as in solveColumnR).
	if st.p != nil {
		rtr := st.rtr.RawData()
		for c := 0; c < r; c++ {
			row := ad[c*r : c*r+c+1]
			for d, v := range rtr[c*r : c*r+c+1] {
				row[d] += st.wC1 * v
			}
		}
		pd := st.p.RawData()
		for j := 0; j < n; j++ {
			pij := pd[i*n+j]
			if pij == 0 {
				continue
			}
			rrow := rmd[j*r : (j+1)*r]
			for c := 0; c < r; c++ {
				rhs[c] += st.wC1 * pij * rrow[c]
			}
		}
	}

	// Constraint 2 on strip i: Θ_i is the r x K block of R-rows
	// belonging to link i's strip.
	if st.o.useC2 {
		switch st.o.variant {
		case VariantGaussSeidel:
			// Exact continuity quadratic: (Θ_i G)(Θ_i G)ᵀ, built in the
			// per-context workspace (hoisted out of the row loop).
			w := cx.w
			wd := w.RawData()
			gd := st.g.RawData()
			for c := 0; c < r; c++ {
				for q := 0; q < st.k; q++ {
					var s float64
					for u := 0; u < st.k; u++ {
						if g := gd[u*st.k+q]; g != 0 {
							s += rmd[(i*st.k+u)*r+c] * g
						}
					}
					wd[c*st.k+q] = s
				}
			}
			mat.MulTBInto(cx.wwt, w, w)
			wwt := cx.wwt.RawData()
			for c := 0; c < r; c++ {
				row := ad[c*r : c*r+c+1]
				for d, v := range wwt[c*r : c*r+c+1] {
					row[d] += st.wC2G * v
				}
			}
			// Similarity: quadratic hth(i,i)·Θ_iΘ_iᵀ plus RHS
			// coupling to the other links' calibrated rows.
			hw := st.hth.At(i, i)
			for u := 0; u < st.k; u++ {
				theta := rmd[(i*st.k+u)*r : (i*st.k+u+1)*r]
				addScaledOuter(cx.a, st.wC2H*hw, theta)
				cross := -hw * st.offsets[i]
				for mIdx := 0; mIdx < st.m; mIdx++ {
					if mIdx == i {
						continue
					}
					if wgt := st.hth.At(i, mIdx); wgt != 0 {
						cross += wgt * (st.xdAt(mIdx, u, xd) - st.offsets[mIdx])
					}
				}
				for c := 0; c < r; c++ {
					rhs[c] -= st.wC2H * cross * theta[c]
				}
			}
		case VariantPaper:
			// Diagonal-only quadratic terms, zero couplings — the
			// transposed MyInverse call of Algorithm 1 line 4.
			hw := st.hth.At(i, i)
			for u := 0; u < st.k; u++ {
				theta := rmd[(i*st.k+u)*r : (i*st.k+u+1)*r]
				addScaledOuter(cx.a, st.wC2G*st.ggt.At(u, u)+st.wC2H*hw, theta)
			}
		}
	}

	st.solveInto(cx, st.l, i)
}

// runSweep shards the independent solves of one sweep over the
// parallel solve contexts. When Gauss-Seidel couplings are active they
// are read from a pre-sweep X_D snapshot, so the result is deterministic
// for every worker count and the sweep is race-free: workers write
// disjoint rows of the destination factor and read only matrices fixed
// for the duration of the sweep.
func (st *solverState) runSweep(n int, solve func(int, *solveCtx, *mat.Dense)) {
	workers := len(st.par)
	if workers > n {
		workers = n
	}
	var snap *mat.Dense
	if st.xdSnap != nil {
		st.fillXD(st.xdSnap)
		snap = st.xdSnap
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		cx := st.par[w]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := int(next.Add(1)) - 1
				if k >= n {
					return
				}
				solve(k, cx, snap)
			}
		}()
	}
	wg.Wait()
}

// xdAt returns X_D(i, u) = (LRᵀ)(i, i*K+u): live from the current
// factors during sequential Gauss-Seidel sweeps, or from the per-sweep
// snapshot during parallel sweeps.
func (st *solverState) xdAt(i, u int, snap *mat.Dense) float64 {
	if snap != nil {
		return snap.At(i, u)
	}
	return st.entry(i, i*st.k+u)
}

// solveInto solves cx.a*x = cx.rhs and writes x into row `row` of dst,
// leaving the row unchanged if the system is numerically singular (the
// ridge term makes that effectively unreachable).
func (st *solverState) solveInto(cx *solveCtx, dst *mat.Dense, row int) {
	if err := cx.spd.SolveSymVecInto(cx.sol, cx.a, cx.rhs); err != nil {
		return
	}
	copy(dst.RawData()[row*st.r:(row+1)*st.r], cx.sol)
}

// addScaledOuter adds the lower triangle of w * v vᵀ to a in place. The
// upper triangle is left untouched: the normal matrices built here go
// straight into SolveSymVecInto, whose Cholesky path reads only the
// lower triangle (and whose rare LU fallback mirrors it up first).
func addScaledOuter(a *mat.Dense, w float64, v []float64) {
	if w == 0 {
		return
	}
	ad := a.RawData()
	n := len(v)
	for c := 0; c < n; c++ {
		if v[c] == 0 {
			continue
		}
		wc := w * v[c]
		row := ad[c*n : c*n+c+1]
		for d, vd := range v[:c+1] {
			row[d] += wc * vd
		}
	}
}
