package core

import "iupdater/internal/mat"

// updateR performs one sweep of per-column closed-form solves for
// Θ = R̂ᵀ (Algorithm 1 line 3 / Eqn 24), holding L fixed. Columns are
// solved in place, so later columns see earlier updates (Gauss-Seidel);
// with VariantPaper the coupling constants are zero and the sweep matches
// the paper's Jacobi-style closed form exactly.
func (st *solverState) updateR() {
	var ltl *mat.Dense
	if st.p != nil {
		ltl = mat.MulTA(st.l, st.l) // Q3 of Algorithm 1
	}
	li := make([]float64, st.r)

	for j := 0; j < st.n; j++ {
		ii := j / st.k // owner link of column j
		jj := j % st.k // position along the strip

		a := mat.Scale(st.o.lambda, mat.Identity(st.r)) // Q1
		rhs := make([]float64, st.r)

		// Data term: Q2 = (Diag(B(:,j))L)ᵀ(Diag(B(:,j))L),
		// C2 = (Diag(B(:,j))L)ᵀ XB(:,j).
		for i := 0; i < st.m; i++ {
			if st.in.B.At(i, j) != 1 {
				continue
			}
			for c := 0; c < st.r; c++ {
				li[c] = st.l.At(i, c)
			}
			addScaledOuter(a, st.wData, li)
			xb := st.in.XB.At(i, j)
			for c := 0; c < st.r; c++ {
				rhs[c] += st.wData * xb * li[c]
			}
		}

		// Constraint 1: Q3 = LᵀL, C3 = Lᵀ P(:,j).
		if st.p != nil {
			for c := 0; c < st.r; c++ {
				for d := 0; d < st.r; d++ {
					a.Add(c, d, st.wC1*ltl.At(c, d))
				}
			}
			for i := 0; i < st.m; i++ {
				pij := st.p.At(i, j)
				if pij == 0 {
					continue
				}
				for c := 0; c < st.r; c++ {
					rhs[c] += st.wC1 * pij * st.l.At(i, c)
				}
			}
		}

		// Constraint 2: Q4/Q5 quadratic terms on the owner link's row of
		// L; couplings on the RHS for the Gauss-Seidel variant.
		if st.o.useC2 {
			for c := 0; c < st.r; c++ {
				li[c] = st.l.At(ii, c)
			}
			gw := st.ggt.At(jj, jj)
			hw := st.hth.At(ii, ii)
			addScaledOuter(a, st.wC2G*gw+st.wC2H*hw, li)

			if st.o.variant == VariantGaussSeidel {
				// C4: continuity coupling along the strip.
				var crossG float64
				for q := 0; q < st.k; q++ {
					if q == jj {
						continue
					}
					if w := st.ggt.At(q, jj); w != 0 {
						crossG += w * st.entry(ii, ii*st.k+q)
					}
				}
				// C5: similarity coupling across links, with hardware
				// offsets calibrated out.
				crossH := -hw * st.offsets[ii]
				for mIdx := 0; mIdx < st.m; mIdx++ {
					if mIdx == ii {
						continue
					}
					if w := st.hth.At(ii, mIdx); w != 0 {
						crossH += w * (st.entry(mIdx, mIdx*st.k+jj) - st.offsets[mIdx])
					}
				}
				for c := 0; c < st.r; c++ {
					rhs[c] -= (st.wC2G*crossG + st.wC2H*crossH) * li[c]
				}
			}
		}

		st.solveInto(a, rhs, st.rm, j)
	}
}

// updateL performs one sweep of per-row closed-form solves for L̂
// (Algorithm 1 line 4), holding R fixed.
func (st *solverState) updateL() {
	var rtr *mat.Dense
	if st.p != nil {
		rtr = mat.MulTA(st.rm, st.rm)
	}
	theta := make([]float64, st.r)

	for i := 0; i < st.m; i++ {
		a := mat.Scale(st.o.lambda, mat.Identity(st.r))
		rhs := make([]float64, st.r)

		// Data term over known entries of row i.
		for j := 0; j < st.n; j++ {
			if st.in.B.At(i, j) != 1 {
				continue
			}
			for c := 0; c < st.r; c++ {
				theta[c] = st.rm.At(j, c)
			}
			addScaledOuter(a, st.wData, theta)
			xb := st.in.XB.At(i, j)
			for c := 0; c < st.r; c++ {
				rhs[c] += st.wData * xb * theta[c]
			}
		}

		// Constraint 1.
		if st.p != nil {
			for c := 0; c < st.r; c++ {
				for d := 0; d < st.r; d++ {
					a.Add(c, d, st.wC1*rtr.At(c, d))
				}
			}
			for j := 0; j < st.n; j++ {
				pij := st.p.At(i, j)
				if pij == 0 {
					continue
				}
				for c := 0; c < st.r; c++ {
					rhs[c] += st.wC1 * pij * st.rm.At(j, c)
				}
			}
		}

		// Constraint 2 on strip i: Θ_i is the r x K block of R-rows
		// belonging to link i's strip.
		if st.o.useC2 {
			switch st.o.variant {
			case VariantGaussSeidel:
				// Exact continuity quadratic: (Θ_i G)(Θ_i G)ᵀ.
				w := mat.New(st.r, st.k)
				for c := 0; c < st.r; c++ {
					for q := 0; q < st.k; q++ {
						var s float64
						for u := 0; u < st.k; u++ {
							if g := st.g.At(u, q); g != 0 {
								s += st.rm.At(i*st.k+u, c) * g
							}
						}
						w.Set(c, q, s)
					}
				}
				wwt := mat.MulTB(w, w)
				for c := 0; c < st.r; c++ {
					for d := 0; d < st.r; d++ {
						a.Add(c, d, st.wC2G*wwt.At(c, d))
					}
				}
				// Similarity: quadratic hth(i,i)·Θ_iΘ_iᵀ plus RHS
				// coupling to the other links' calibrated rows.
				hw := st.hth.At(i, i)
				for u := 0; u < st.k; u++ {
					for c := 0; c < st.r; c++ {
						theta[c] = st.rm.At(i*st.k+u, c)
					}
					addScaledOuter(a, st.wC2H*hw, theta)
					cross := -hw * st.offsets[i]
					for mIdx := 0; mIdx < st.m; mIdx++ {
						if mIdx == i {
							continue
						}
						if wgt := st.hth.At(i, mIdx); wgt != 0 {
							cross += wgt * (st.entry(mIdx, mIdx*st.k+u) - st.offsets[mIdx])
						}
					}
					for c := 0; c < st.r; c++ {
						rhs[c] -= st.wC2H * cross * theta[c]
					}
				}
			case VariantPaper:
				// Diagonal-only quadratic terms, zero couplings — the
				// transposed MyInverse call of Algorithm 1 line 4.
				hw := st.hth.At(i, i)
				for u := 0; u < st.k; u++ {
					for c := 0; c < st.r; c++ {
						theta[c] = st.rm.At(i*st.k+u, c)
					}
					addScaledOuter(a, st.wC2G*st.ggt.At(u, u)+st.wC2H*hw, theta)
				}
			}
		}

		st.solveInto(a, rhs, st.l, i)
	}
}

// solveInto solves a*x = rhs and writes x into row `row` of dst, leaving
// the row unchanged if the system is numerically singular (the ridge term
// makes that effectively unreachable).
func (st *solverState) solveInto(a *mat.Dense, rhs []float64, dst *mat.Dense, row int) {
	x, err := mat.SolveSPD(a, rhs)
	if err != nil {
		return
	}
	dst.SetRow(row, x)
}

// addScaledOuter adds w * v vᵀ to a in place.
func addScaledOuter(a *mat.Dense, w float64, v []float64) {
	if w == 0 {
		return
	}
	for c := range v {
		if v[c] == 0 {
			continue
		}
		wc := w * v[c]
		for d := range v {
			a.Add(c, d, wc*v[d])
		}
	}
}
