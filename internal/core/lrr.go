package core

import (
	"errors"
	"fmt"
	"math"

	"iupdater/internal/mat"
)

// LRRConfig tunes the inexact augmented-Lagrange-multiplier solver for the
// low-rank representation problem of Eqn 12:
//
//	min_{Z,E} ||Z||_* + eps*||E||_{2,1}   s.t.  X = X_MIC * Z + E
type LRRConfig struct {
	// Epsilon weighs the corruption term (the paper's ε).
	Epsilon float64
	// MaxIter bounds the ALM iterations.
	MaxIter int
	// Tol is the convergence tolerance on the constraint residuals,
	// relative to ||X||_F.
	Tol float64
	// Mu0 is the initial penalty parameter; Rho its growth factor;
	// MuMax its cap.
	Mu0, Rho, MuMax float64
}

// DefaultLRRConfig returns the solver settings used throughout the
// reproduction (standard inexact-ALM constants from Liu-Lin-Yu).
func DefaultLRRConfig() LRRConfig {
	return LRRConfig{
		Epsilon: 2.0,
		MaxIter: 500,
		Tol:     1e-7,
		Mu0:     1e-4,
		Rho:     1.2,
		MuMax:   1e10,
	}
}

// LRRResult holds the correlation matrix Z and the column-sparse
// corruption E recovered by LRR, with X ≈ X_MIC*Z + E.
type LRRResult struct {
	Z          *mat.Dense
	E          *mat.Dense
	Iterations int
	// Residual is ||X - X_MIC*Z - E||_F / ||X||_F at termination.
	Residual float64
}

// LRR solves Eqn 12 by inexact ALM, returning the inherent correlation
// matrix Z between the MIC reference columns and the whole fingerprint
// matrix. Z is the quantity the Inherent Correlation Acquisition module
// of Fig 10 stores for future updates: a fresh reference matrix X_R then
// predicts the whole fresh fingerprint matrix as X_R*Z.
func LRR(x, xmic *mat.Dense, cfg LRRConfig) (*LRRResult, error) {
	m, n := x.Dims()
	mm, r := xmic.Dims()
	if mm != m {
		return nil, fmt.Errorf("core: LRR row mismatch: X is %dx%d, X_MIC is %dx%d", m, n, mm, r)
	}
	if cfg.Epsilon <= 0 || cfg.MaxIter <= 0 {
		return nil, errors.New("core: LRR requires positive Epsilon and MaxIter")
	}

	normX := mat.FrobeniusNorm(x)
	if normX == 0 {
		return &LRRResult{Z: mat.New(r, n), E: mat.New(m, n)}, nil
	}

	// Precompute the Cholesky factor of (I + AᵀA) for the Z update.
	ata := mat.MulTA(xmic, xmic)
	reg := mat.AddM(ata, mat.Identity(r))
	chol, err := mat.FactorCholesky(reg)
	if err != nil {
		return nil, fmt.Errorf("core: LRR normal equations not SPD: %w", err)
	}

	z := mat.New(r, n)
	j := mat.New(r, n)
	e := mat.New(m, n)
	y1 := mat.New(m, n) // multiplier for X = AZ + E
	y2 := mat.New(r, n) // multiplier for Z = J
	mu := cfg.Mu0

	var res1, res2 float64
	iter := 0
	for ; iter < cfg.MaxIter; iter++ {
		// J update: SVT of Z + Y2/mu at threshold 1/mu.
		j = mat.SVT(mat.AddM(z, mat.Scale(1/mu, y2)), 1/mu)

		// Z update: (I + AᵀA)⁻¹ (Aᵀ(X-E) + J + (AᵀY1 - Y2)/mu).
		rhs := mat.AddM(
			mat.AddM(mat.MulTA(xmic, mat.SubM(x, e)), j),
			mat.Scale(1/mu, mat.SubM(mat.MulTA(xmic, y1), y2)),
		)
		z = chol.Solve(rhs)

		// E update: column-wise shrinkage at eps/mu.
		az := mat.Mul(xmic, z)
		e = mat.ShrinkColumns21(
			mat.AddM(mat.SubM(x, az), mat.Scale(1/mu, y1)),
			cfg.Epsilon/mu,
		)

		// Multiplier and penalty updates.
		r1 := mat.SubM(mat.SubM(x, az), e) // X - AZ - E
		r2 := mat.SubM(z, j)               // Z - J
		y1 = mat.AddM(y1, mat.Scale(mu, r1))
		y2 = mat.AddM(y2, mat.Scale(mu, r2))
		mu = math.Min(mu*cfg.Rho, cfg.MuMax)

		res1 = mat.FrobeniusNorm(r1) / normX
		res2 = mat.FrobeniusNorm(r2) / normX
		if res1 < cfg.Tol && res2 < cfg.Tol {
			iter++
			break
		}
	}
	return &LRRResult{Z: z, E: e, Iterations: iter, Residual: res1}, nil
}
