package core

import (
	"errors"
	"fmt"
	"math"

	"iupdater/internal/mat"
)

// LRRConfig tunes the inexact augmented-Lagrange-multiplier solver for the
// low-rank representation problem of Eqn 12:
//
//	min_{Z,E} ||Z||_* + eps*||E||_{2,1}   s.t.  X = X_MIC * Z + E
type LRRConfig struct {
	// Epsilon weighs the corruption term (the paper's ε).
	Epsilon float64
	// MaxIter bounds the ALM iterations.
	MaxIter int
	// Tol is the convergence tolerance on the constraint residuals,
	// relative to ||X||_F.
	Tol float64
	// Mu0 is the initial penalty parameter; Rho its growth factor;
	// MuMax its cap.
	Mu0, Rho, MuMax float64
}

// DefaultLRRConfig returns the solver settings used throughout the
// reproduction (standard inexact-ALM constants from Liu-Lin-Yu).
func DefaultLRRConfig() LRRConfig {
	return LRRConfig{
		Epsilon: 2.0,
		MaxIter: 500,
		Tol:     1e-7,
		Mu0:     1e-4,
		Rho:     1.2,
		MuMax:   1e10,
	}
}

// LRRResult holds the correlation matrix Z and the column-sparse
// corruption E recovered by LRR, with X ≈ X_MIC*Z + E.
type LRRResult struct {
	Z          *mat.Dense
	E          *mat.Dense
	Iterations int
	// Residual is ||X - X_MIC*Z - E||_F / ||X||_F at termination.
	Residual float64
}

// LRR solves Eqn 12 by inexact ALM, returning the inherent correlation
// matrix Z between the MIC reference columns and the whole fingerprint
// matrix. Z is the quantity the Inherent Correlation Acquisition module
// of Fig 10 stores for future updates: a fresh reference matrix X_R then
// predicts the whole fresh fingerprint matrix as X_R*Z.
func LRR(x, xmic *mat.Dense, cfg LRRConfig) (*LRRResult, error) {
	ws := mat.GetWorkspace()
	defer ws.Release()
	return lrrWith(ws, x, xmic, cfg)
}

// lrrWith is LRR running its iteration entirely against ws-borrowed
// buffers and the in-place kernel layer: only the returned Z and E (and
// the SVT's internal SVD) allocate.
func lrrWith(ws *mat.Workspace, x, xmic *mat.Dense, cfg LRRConfig) (*LRRResult, error) {
	m, n := x.Dims()
	mm, r := xmic.Dims()
	if mm != m {
		return nil, fmt.Errorf("core: LRR row mismatch: X is %dx%d, X_MIC is %dx%d", m, n, mm, r)
	}
	if cfg.Epsilon <= 0 || cfg.MaxIter <= 0 {
		return nil, errors.New("core: LRR requires positive Epsilon and MaxIter")
	}

	normX := mat.FrobeniusNorm(x)
	if normX == 0 {
		return &LRRResult{Z: mat.New(r, n), E: mat.New(m, n)}, nil
	}

	// Precompute the Cholesky factor of (I + AᵀA) for the Z update.
	ata := ws.Dense(r, r)
	mat.MulTAInto(ata, xmic, xmic)
	for i := 0; i < r; i++ {
		ata.Add(i, i, 1)
	}
	var chol mat.Cholesky
	if err := chol.Factor(ata); err != nil {
		ws.Free(ata)
		return nil, fmt.Errorf("core: LRR normal equations not SPD: %w", err)
	}
	ws.Free(ata)

	z := mat.New(r, n)  // returned
	e := mat.New(m, n)  // returned
	jm := ws.Dense(r, n)
	y1 := ws.Dense(m, n) // multiplier for X = AZ + E
	y2 := ws.Dense(r, n) // multiplier for Z = J
	tr := ws.Dense(r, n) // r x n scratch
	rhs := ws.Dense(r, n)
	az := ws.Dense(m, n)
	xe := ws.Dense(m, n) // m x n scratch
	r1 := ws.Dense(m, n)
	r2 := ws.Dense(r, n)
	defer func() {
		for _, b := range []*mat.Dense{jm, y1, y2, tr, rhs, az, xe, r1, r2} {
			ws.Free(b)
		}
	}()
	mu := cfg.Mu0

	var res1, res2 float64
	iter := 0
	for ; iter < cfg.MaxIter; iter++ {
		// J update: SVT of Z + Y2/mu at threshold 1/mu.
		mat.CopyInto(tr, z)
		mat.AddScaledInto(tr, 1/mu, y2)
		mat.SVTInto(jm, tr, 1/mu)

		// Z update: (I + AᵀA)⁻¹ (Aᵀ(X-E) + J + (AᵀY1 - Y2)/mu).
		mat.SubInto(xe, x, e)
		mat.MulTAInto(rhs, xmic, xe)
		mat.AddInto(rhs, rhs, jm)
		mat.MulTAInto(tr, xmic, y1)
		mat.SubInto(tr, tr, y2)
		mat.AddScaledInto(rhs, 1/mu, tr)
		chol.SolveInto(z, rhs)

		// E update: column-wise shrinkage at eps/mu.
		mat.MulInto(az, xmic, z)
		mat.SubInto(xe, x, az)
		mat.AddScaledInto(xe, 1/mu, y1)
		mat.ShrinkColumns21Into(e, xe, cfg.Epsilon/mu)

		// Multiplier and penalty updates.
		mat.SubInto(r1, x, az)
		mat.SubInto(r1, r1, e) // X - AZ - E
		mat.SubInto(r2, z, jm) // Z - J
		mat.AddScaledInto(y1, mu, r1)
		mat.AddScaledInto(y2, mu, r2)
		mu = math.Min(mu*cfg.Rho, cfg.MuMax)

		res1 = mat.FrobeniusNorm(r1) / normX
		res2 = mat.FrobeniusNorm(r2) / normX
		if res1 < cfg.Tol && res2 < cfg.Tol {
			iter++
			break
		}
	}
	return &LRRResult{Z: z, E: e, Iterations: iter, Residual: res1}, nil
}
