// Package core implements the paper's contribution: maximum-independent-
// column (MIC) reference selection, the low-rank representation (LRR)
// correlation matrix, the basic regularized-SVD matrix completion and the
// self-augmented RSVD reconstruction of Algorithm 1, plus the update
// pipeline of Fig 10 that ties them together.
package core

import (
	"fmt"
	"sort"

	"iupdater/internal/mat"
)

// MICMethod selects how the maximum independent columns are found.
type MICMethod int

const (
	// MICQRCP uses rank-revealing QR with column pivoting: the robust
	// default for noisy matrices (every column of a noisy matrix is
	// technically independent; pivoting picks the most independent set).
	MICQRCP MICMethod = iota
	// MICRREF follows the paper literally: elementary transformations to
	// echelon form; the columns holding each row's first non-zero element
	// are the MIC vectors. Equivalent to QRCP on exact-rank matrices but
	// noise-sensitive, because it keeps the first acceptable column
	// instead of the best one.
	MICRREF
)

// String implements fmt.Stringer.
func (m MICMethod) String() string {
	switch m {
	case MICQRCP:
		return "qrcp"
	case MICRREF:
		return "rref"
	default:
		return fmt.Sprintf("MICMethod(%d)", int(m))
	}
}

// MIC returns the column indices of r maximum independent columns of x —
// the reference locations where fresh measurements uniquely pin down the
// reconstruction (§IV-B). The indices are returned in ascending order
// (the surveyor's walking order).
//
// r must be between 1 and min(rows, cols); the paper uses r = rank(X) = M.
func MIC(x *mat.Dense, r int, method MICMethod) ([]int, error) {
	return micWith(nil, x, r, method)
}

// micWith is MIC with the factorization scratch borrowed from ws (nil
// allocates).
func micWith(ws *mat.Workspace, x *mat.Dense, r int, method MICMethod) ([]int, error) {
	rows, cols := x.Dims()
	if r < 1 || r > rows || r > cols {
		return nil, fmt.Errorf("core: MIC rank %d out of range for %dx%d matrix", r, rows, cols)
	}
	var idx []int
	switch method {
	case MICQRCP:
		f := mat.FactorQRCPWorkspace(ws, x)
		idx = f.IndependentCols(r)
	case MICRREF:
		// Column selection via row echelon: pivot columns of the RREF.
		res := mat.RREF(x, 0)
		if len(res.Pivots) >= r {
			idx = append(idx, res.Pivots[:r]...)
		} else {
			// Numerically rank-deficient: take all pivots and pad with
			// QRCP picks not already chosen.
			idx = append(idx, res.Pivots...)
			chosen := make(map[int]bool, len(idx))
			for _, j := range idx {
				chosen[j] = true
			}
			for _, j := range mat.FactorQRCP(x).Perm {
				if len(idx) == r {
					break
				}
				if !chosen[j] {
					idx = append(idx, j)
					chosen[j] = true
				}
			}
		}
	default:
		return nil, fmt.Errorf("core: unknown MIC method %d", method)
	}
	sort.Ints(idx)
	return idx, nil
}
