package core

import (
	"errors"
	"fmt"
	"math"

	"iupdater/internal/fingerprint"
	"iupdater/internal/mat"
)

// Input bundles the data the Fingerprint Matrix Reconstruction module of
// Fig 10 consumes.
type Input struct {
	// XB is the no-decrease matrix: fresh target-free measurements on the
	// known entries, zero elsewhere (M x N).
	XB *mat.Dense
	// B is the 0/1 index matrix of Eqn 8 (M x N).
	B *mat.Dense
	// XR is the fresh reference matrix of Eqn 13 (M x n); nil disables
	// Constraint 1.
	XR *mat.Dense
	// Z is the inherent correlation matrix from LRR (n x N); nil disables
	// Constraint 1.
	Z *mat.Dense
	// Links is M; PerStrip is K = N/M: the strip structure defining X_D.
	Links, PerStrip int
	// LinkOffsets holds per-link hardware levels o_i used to calibrate
	// the adjacent-link similarity term (footnote 3 of the paper:
	// similarity improves when RF-gain differences are calibrated out).
	// nil derives offsets from the row means of the known XB entries.
	LinkOffsets []float64
}

// TermValues reports the final value of each objective term of Eqn 18.
type TermValues struct {
	Ridge      float64 // λ(||L||²F + ||R||²F)
	Data       float64 // ||B∘(LRᵀ) - XB||²F
	Reference  float64 // ||LRᵀ - XR*Z||²F (Constraint 1)
	Continuity float64 // ||XD*G||²F (Constraint 2)
	Similarity float64 // ||H*XD||²F (Constraint 2)
}

// Total returns the weighted objective (weights already applied).
func (t TermValues) Total() float64 {
	return t.Ridge + t.Data + t.Reference + t.Continuity + t.Similarity
}

// Result is a reconstruction outcome.
type Result struct {
	// X is the reconstructed fingerprint matrix L̂R̂ᵀ.
	X *mat.Dense
	// Objective is the final weighted objective value.
	Objective float64
	// Iterations actually performed.
	Iterations int
	// Terms is the weighted per-term breakdown at termination.
	Terms TermValues
	// Weights records the auto-scaled weights used (data, c1, c2g, c2h).
	Weights [4]float64
}

// Reconstructor runs the self-augmented RSVD method (Eqn 18/Algorithm 1).
// The zero value is not usable; construct with NewReconstructor.
type Reconstructor struct {
	opts options
}

// NewReconstructor builds a Reconstructor with the given options.
func NewReconstructor(opts ...Option) *Reconstructor {
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	return &Reconstructor{opts: o}
}

// solverState carries the per-call working set: the problem data, the
// factors, and a Workspace-backed scratch pool owned for the lifetime
// of one Reconstruct call so the ALS sweeps and objective evaluation
// allocate nothing per iteration.
type solverState struct {
	in                     Input
	o                      options
	m, n, r                int
	k                      int        // per strip
	g                      *mat.Dense // K x K continuity matrix
	hth                    *mat.Dense // M x M HᵀH for the similarity term
	ggt                    *mat.Dense // K x K GGᵀ for the continuity term
	h                      *mat.Dense // M x M similarity matrix (hoisted)
	p                      *mat.Dense // XR*Z, or nil
	offsets                []float64
	wData, wC1, wC2G, wC2H float64
	l, rm                  *mat.Dense // L (M x r) and R (N x r)

	// Per-call scratch, borrowed from ws in prepare and returned by
	// close. All of it is reused across sweeps and iterations.
	ws       *mat.Workspace
	ltl, rtr *mat.Dense // r x r factor Grams, hoisted once per sweep
	xhat     *mat.Dense // m x n current LRᵀ (objective evaluation)
	xdBuf    *mat.Dense // m x K X_D block
	calBuf   *mat.Dense // m x K offset-calibrated X_D
	xdgBuf   *mat.Dense // m x K X_D*G
	hxdBuf   *mat.Dense // m x K H*X_D
	xdSnap   *mat.Dense // m x K coupling snapshot for parallel sweeps
	seq      *solveCtx  // sequential solve context
	par      []*solveCtx
}

// Reconstruct solves Eqn 18 and returns the reconstructed fingerprint
// matrix. Cold starts run the configured number of random restarts and
// keep the solution with the lowest objective; warm starts are
// deterministic and run once.
func (rc *Reconstructor) Reconstruct(in Input) (*Result, error) {
	restarts := rc.opts.restarts
	if restarts < 1 || rc.opts.warmStart {
		restarts = 1
	}
	var best *Result
	var sharedWeights *[4]float64
	for k := 0; k < restarts; k++ {
		sub := *rc
		sub.opts.seed = rc.opts.seed + uint64(k)*0x9e37
		res, err := sub.reconstructOnce(in, sharedWeights)
		if err != nil {
			if best != nil {
				continue // keep the successful runs
			}
			if k == restarts-1 {
				return nil, err
			}
			continue
		}
		if sharedWeights == nil {
			// Objectives are only comparable under identical term
			// weights; all restarts reuse the first run's scaling.
			w := res.Weights
			sharedWeights = &w
		}
		if best == nil || res.Objective < best.Objective {
			best = res
		}
	}
	return best, nil
}

func (rc *Reconstructor) reconstructOnce(in Input, fixedWeights *[4]float64) (*Result, error) {
	st, err := rc.prepare(in)
	if err != nil {
		return nil, err
	}
	defer st.close()
	if fixedWeights != nil {
		st.wData = fixedWeights[0]
		st.wC1 = fixedWeights[1]
		st.wC2G = fixedWeights[2]
		st.wC2H = fixedWeights[3]
	}

	prev := math.Inf(1)
	iters := 0
	for t := 0; t < st.o.maxIter; t++ {
		st.updateR()
		st.updateL()
		iters = t + 1
		v := st.objective().Total()
		if !math.IsInf(prev, 1) {
			rel := math.Abs(prev-v) / math.Max(v, 1e-12)
			if rel < st.o.tol {
				break
			}
		}
		if v <= st.o.vth {
			// Algorithm 1's v_th guard: once the objective is below the
			// threshold, further refinement is noise-fitting.
			break
		}
		prev = v
	}

	terms := st.objective()
	x := mat.MulTB(st.l, st.rm)
	if !x.IsFinite() {
		return nil, errors.New("core: reconstruction diverged to non-finite values")
	}
	return &Result{
		X:          x,
		Objective:  terms.Total(),
		Iterations: iters,
		Terms:      terms,
		Weights:    [4]float64{st.wData, st.wC1, st.wC2G, st.wC2H},
	}, nil
}

func (rc *Reconstructor) prepare(in Input) (*solverState, error) {
	if in.XB == nil || in.B == nil {
		return nil, errors.New("core: Input requires XB and B")
	}
	if !in.XB.IsFinite() || !in.B.IsFinite() ||
		(in.XR != nil && !in.XR.IsFinite()) || (in.Z != nil && !in.Z.IsFinite()) {
		return nil, errors.New("core: input contains NaN or Inf values")
	}
	m, n := in.XB.Dims()
	if bm, bn := in.B.Dims(); bm != m || bn != n {
		return nil, fmt.Errorf("core: B is %dx%d, want %dx%d", bm, bn, m, n)
	}
	if in.Links != m {
		return nil, fmt.Errorf("core: Links=%d does not match XB rows %d", in.Links, m)
	}
	if in.PerStrip*in.Links != n {
		return nil, fmt.Errorf("core: Links*PerStrip=%d does not match XB cols %d", in.Links*in.PerStrip, n)
	}
	o := rc.opts
	useC1 := o.useC1 && in.XR != nil && in.Z != nil
	if o.useC1 && !useC1 && (in.XR != nil) != (in.Z != nil) {
		return nil, errors.New("core: Constraint 1 requires both XR and Z")
	}
	r := o.rank
	if r <= 0 {
		r = m
	}
	if r > m {
		return nil, fmt.Errorf("core: rank %d exceeds link count %d", r, m)
	}

	st := &solverState{in: in, o: o, m: m, n: n, r: r, k: in.PerStrip}

	if useC1 {
		zr, zn := in.Z.Dims()
		xm, xn := in.XR.Dims()
		if xm != m || xn != zr || zn != n {
			return nil, fmt.Errorf("core: XR (%dx%d) and Z (%dx%d) inconsistent with X (%dx%d)",
				xm, xn, zr, zn, m, n)
		}
		st.p = mat.Mul(in.XR, in.Z)
	}
	if o.useC2 {
		st.g = fingerprint.Continuity(st.k)
		st.ggt = mat.MulTB(st.g, st.g)
		st.h = fingerprint.Similarity(m)
		st.hth = mat.MulTA(st.h, st.h)
		st.offsets = in.LinkOffsets
		if st.offsets == nil {
			st.offsets = rowMeansOverMask(in.XB, in.B)
		}
		if len(st.offsets) != m {
			return nil, fmt.Errorf("core: %d link offsets for %d links", len(st.offsets), m)
		}
		if o.variant == VariantPaper {
			// Algorithm 1 as printed has no hardware calibration
			// (footnote 3 leaves it as an improvement); zero offsets keep
			// the paper variant faithful and the objective consistent.
			st.offsets = make([]float64, m)
		}
	}

	// All validation has passed: borrow the per-call scratch. close()
	// returns it.
	st.ws = mat.GetWorkspace()
	st.xhat = st.ws.Dense(m, n)
	if st.p != nil {
		st.ltl = st.ws.Dense(r, r)
		st.rtr = st.ws.Dense(r, r)
	}
	if o.useC2 {
		st.xdBuf = st.ws.Dense(m, st.k)
		st.calBuf = st.ws.Dense(m, st.k)
		st.xdgBuf = st.ws.Dense(m, st.k)
		st.hxdBuf = st.ws.Dense(m, st.k)
	}
	// Any non-default concurrency setting — even one that resolves to a
	// single worker on this machine — routes through the sharded sweep,
	// so a given configuration produces bit-identical results on every
	// host regardless of its core count.
	if o.concurrency != 1 {
		st.par = make([]*solveCtx, o.workers())
		for w := range st.par {
			st.par[w] = st.newSolveCtx()
		}
		if o.useC2 && o.variant == VariantGaussSeidel {
			st.xdSnap = st.ws.Dense(m, st.k)
		}
	} else {
		st.seq = st.newSolveCtx()
	}

	st.initFactors()
	if !o.warmStart {
		// With a random L0 and zero R the objective terms are
		// meaningless; run one data-only sweep before equalizing the term
		// magnitudes.
		st.wData = 1
		st.updateR()
	}
	st.scaleWeights()
	return st, nil
}

// rowMeansOverMask estimates per-link hardware levels from the known
// (no-decrease) entries: those read the link's unobstructed level.
func rowMeansOverMask(xb, b *mat.Dense) []float64 {
	m, n := xb.Dims()
	out := make([]float64, m)
	for i := 0; i < m; i++ {
		var sum, cnt float64
		for j := 0; j < n; j++ {
			if b.At(i, j) == 1 {
				sum += xb.At(i, j)
				cnt++
			}
		}
		if cnt > 0 {
			out[i] = sum / cnt
		}
	}
	return out
}

// initFactors warm-starts L and R. The completion seed fills unknown
// entries with the Constraint-1 prediction when available (else the
// link's known-entry mean) and factorizes the fill by truncated SVD. A
// small seeded perturbation breaks symmetry, standing in for Algorithm
// 1's random L0 while keeping runs reproducible.
func (st *solverState) initFactors() {
	if !st.o.warmStart {
		// Algorithm 1 line 1: L̂ <- L0, randomly initialized. R starts at
		// zero; the first updateR sweep computes it from L0.
		st.l = mat.New(st.m, st.r)
		for i := 0; i < st.m; i++ {
			for c := 0; c < st.r; c++ {
				st.l.Set(i, c, hashSignal(st.o.seed, uint64(i*st.r+c)))
			}
		}
		st.rm = mat.New(st.n, st.r)
		return
	}
	fill := st.in.XB.Clone()
	means := rowMeansOverMask(st.in.XB, st.in.B)
	for i := 0; i < st.m; i++ {
		for j := 0; j < st.n; j++ {
			if st.in.B.At(i, j) != 1 {
				if st.p != nil {
					fill.Set(i, j, st.p.At(i, j))
				} else {
					fill.Set(i, j, means[i])
				}
			}
		}
	}
	svd := mat.FactorSVD(fill)
	l := mat.New(st.m, st.r)
	rm := mat.New(st.n, st.r)
	for c := 0; c < st.r && c < len(svd.S); c++ {
		s := math.Sqrt(svd.S[c])
		for i := 0; i < st.m; i++ {
			l.Set(i, c, svd.U.At(i, c)*s)
		}
		for j := 0; j < st.n; j++ {
			rm.Set(j, c, svd.V.At(j, c)*s)
		}
	}
	// Symmetry-breaking perturbation (deterministic in the seed).
	scale := 0.01 * (1 + mat.FrobeniusNorm(l)/float64(st.m*st.r))
	for i := 0; i < st.m; i++ {
		for c := 0; c < st.r; c++ {
			l.Add(i, c, scale*hashSignal(st.o.seed, uint64(i*st.r+c)))
		}
	}
	st.l, st.rm = l, rm
}

// hashSignal returns a deterministic value in [-1, 1).
func hashSignal(seed, idx uint64) float64 {
	x := seed ^ (idx+1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11)/(1<<52) - 1
}

// scaleWeights implements the §IV-E magnitude equalization: each
// constraint term is scaled so its initial value matches the data term,
// then multiplied by the configured strength.
func (st *solverState) scaleWeights() {
	st.wData = 1
	st.wC1, st.wC2G, st.wC2H = 0, 0, 0
	raw := st.rawTerms()
	base := math.Max(raw.Data, 1e-9)
	if st.p != nil {
		st.wC1 = st.o.c1Weight
		if st.o.autoScale && raw.Reference > 1e-12 {
			st.wC1 = st.o.c1Weight * math.Min(base/raw.Reference, 1e3)
		}
	}
	if st.o.useC2 {
		st.wC2G = st.o.c2GWeight
		st.wC2H = st.o.c2HWeight
		if st.o.autoScale {
			if raw.Continuity > 1e-12 {
				st.wC2G = st.o.c2GWeight * math.Min(base/raw.Continuity, 1e3)
			}
			if raw.Similarity > 1e-12 {
				st.wC2H = st.o.c2HWeight * math.Min(base/raw.Similarity, 1e3)
			}
		}
		if st.o.variant == VariantPaper {
			// With the couplings zeroed (C4 = C5 = O), the Q4/Q5 terms
			// reduce to shrinkage of the raw dBm values toward zero: at
			// data-term magnitude the bias wrecks the reconstruction
			// (~20 dB). The printed algorithm is only stable when these
			// terms stay two orders of magnitude below the data term —
			// measured in the solver-variant ablation benchmark.
			st.wC2G *= 0.01
			st.wC2H *= 0.01
		}
	}
}

// close returns the per-call scratch to the workspace and the
// workspace to the process pool. The state must not be used afterwards.
func (st *solverState) close() {
	ws := st.ws
	if ws == nil {
		return
	}
	for _, m := range []*mat.Dense{st.xhat, st.ltl, st.rtr, st.xdBuf, st.calBuf, st.xdgBuf, st.hxdBuf, st.xdSnap} {
		if m != nil {
			ws.Free(m)
		}
	}
	if st.seq != nil {
		st.seq.free(ws)
	}
	for _, cx := range st.par {
		cx.free(ws)
	}
	st.ws = nil
	ws.Release()
}

// fillXD extracts the largely-decrease matrix from the current iterate
// into dst: XD(i, u) = (LRᵀ)(i, i*K+u).
func (st *solverState) fillXD(dst *mat.Dense) {
	d := dst.RawData()
	for i := 0; i < st.m; i++ {
		for u := 0; u < st.k; u++ {
			d[i*st.k+u] = st.entry(i, i*st.k+u)
		}
	}
}

// entry returns (LRᵀ)(i, j) from the current factors.
func (st *solverState) entry(i, j int) float64 {
	lrow := st.l.RawData()[i*st.r : (i+1)*st.r]
	rrow := st.rm.RawData()[j*st.r : (j+1)*st.r]
	var s float64
	for c, lv := range lrow {
		s += lv * rrow[c]
	}
	return s
}

// rawTerms evaluates the unweighted objective terms at the current
// iterate, entirely in per-call scratch.
func (st *solverState) rawTerms() TermValues {
	var tv TermValues
	tv.Ridge = st.o.lambda * (mat.FrobeniusNormSq(st.l) + mat.FrobeniusNormSq(st.rm))
	mat.MulTBInto(st.xhat, st.l, st.rm)
	xh := st.xhat.RawData()
	bd := st.in.B.RawData()
	xbd := st.in.XB.RawData()
	var data float64
	for i, v := range xh {
		d := bd[i]*v - xbd[i]
		data += d * d
	}
	tv.Data = data
	if st.p != nil {
		pd := st.p.RawData()
		var ref float64
		for i, v := range xh {
			d := v - pd[i]
			ref += d * d
		}
		tv.Reference = ref
	}
	if st.o.useC2 {
		st.fillXD(st.xdBuf)
		tv.Continuity = mat.FrobeniusNormSq(mat.MulInto(st.xdgBuf, st.xdBuf, st.g))
		// Similarity on offset-calibrated rows (footnote 3). H is
		// banded, so the masked multiply kernel applies.
		xd := st.xdBuf.RawData()
		cal := st.calBuf.RawData()
		for i := 0; i < st.m; i++ {
			off := st.offsets[i]
			for u := 0; u < st.k; u++ {
				cal[i*st.k+u] = xd[i*st.k+u] - off
			}
		}
		tv.Similarity = mat.FrobeniusNormSq(mat.MulSparseInto(st.hxdBuf, st.h, st.calBuf))
	}
	return tv
}

// objective evaluates the weighted objective of Eqn 18.
func (st *solverState) objective() TermValues {
	tv := st.rawTerms()
	tv.Data *= st.wData
	tv.Reference *= st.wC1
	tv.Continuity *= st.wC2G
	tv.Similarity *= st.wC2H
	return tv
}
