package core

import (
	"fmt"

	"iupdater/internal/fingerprint"
	"iupdater/internal/mat"
)

// UpdaterConfig tunes the update pipeline of Fig 10.
type UpdaterConfig struct {
	// MICMethod selects the reference-location picker.
	MICMethod MICMethod
	// NumReferences is the number of reference locations; 0 uses the
	// matrix rank bound M (the paper's minimal choice, Claim 1).
	NumReferences int
	// LRR tunes the correlation solver.
	LRR LRRConfig
	// Reconstruction options are passed to the solver.
	Reconstruction []Option
}

// DefaultUpdaterConfig returns the production pipeline settings: the
// paper's method with the truncated-SVD warm start enabled. (The bare
// Reconstructor defaults to Algorithm 1's random initialization; the
// warm start converges to better optima — see the initialization
// ablation benchmark.)
func DefaultUpdaterConfig() UpdaterConfig {
	return UpdaterConfig{
		MICMethod:      MICQRCP,
		LRR:            DefaultLRRConfig(),
		Reconstruction: []Option{WithWarmStart(true)},
	}
}

// Updater is the persistent update pipeline: it holds the reference
// locations (MIC of the latest fingerprint matrix) and the inherent
// correlation matrix Z, and reconstructs fresh fingerprint matrices from
// no-decrease scans plus reference measurements.
type Updater struct {
	cfg      UpdaterConfig
	links    int
	perStrip int
	refs     []int
	z        *mat.Dense
}

// NewUpdater runs the Inherent Correlation Acquisition module on the
// latest (original or previously updated) fingerprint matrix: it extracts
// the MIC reference locations and solves LRR for Z. One Workspace is
// threaded through reference selection and the correlation solve, so the
// whole acquisition is allocation-lean.
func NewUpdater(latest fingerprint.Matrix, cfg UpdaterConfig) (*Updater, error) {
	if cfg.LRR.MaxIter == 0 {
		cfg.LRR = DefaultLRRConfig()
	}
	numRefs := cfg.NumReferences
	if numRefs <= 0 {
		numRefs = latest.Links
	}
	ws := mat.GetWorkspace()
	defer ws.Release()
	refs, err := micWith(ws, latest.X, numRefs, cfg.MICMethod)
	if err != nil {
		return nil, fmt.Errorf("core: selecting reference locations: %w", err)
	}
	xmic := ws.Dense(latest.X.Rows(), len(refs))
	mat.SelectColsInto(xmic, latest.X, refs)
	lrr, err := lrrWith(ws, latest.X, xmic, cfg.LRR)
	ws.Free(xmic)
	if err != nil {
		return nil, fmt.Errorf("core: acquiring correlation matrix: %w", err)
	}
	return &Updater{
		cfg:      cfg,
		links:    latest.Links,
		perStrip: latest.PerStrip,
		refs:     refs,
		z:        lrr.Z,
	}, nil
}

// ReferenceLocations returns the grid cells (ascending) where fresh
// measurements must be taken for the next update.
func (u *Updater) ReferenceLocations() []int {
	out := make([]int, len(u.refs))
	copy(out, u.refs)
	return out
}

// Correlation returns a copy of the inherent correlation matrix Z.
func (u *Updater) Correlation() *mat.Dense { return u.z.Clone() }

// Update reconstructs the fingerprint matrix at time t from the
// no-decrease scan (xb, mask) and the fresh reference matrix xr whose
// columns correspond to ReferenceLocations() in order.
func (u *Updater) Update(xb *mat.Dense, mask fingerprint.Mask, xr *mat.Dense, t float64) (fingerprint.Matrix, *Result, error) {
	if xr != nil {
		if _, cols := xr.Dims(); cols != len(u.refs) {
			return fingerprint.Matrix{}, nil, fmt.Errorf(
				"core: reference matrix has %d columns, want %d", cols, len(u.refs))
		}
	}
	rc := NewReconstructor(u.cfg.Reconstruction...)
	res, err := rc.Reconstruct(Input{
		XB:       xb,
		B:        mask.B,
		XR:       xr,
		Z:        u.z,
		Links:    u.links,
		PerStrip: u.perStrip,
	})
	if err != nil {
		return fingerprint.Matrix{}, nil, err
	}
	return fingerprint.New(res.X, t), res, nil
}

// Refresh re-runs correlation acquisition on a newly reconstructed (or
// freshly surveyed) matrix so subsequent updates track the latest
// database state, as Fig 10's feedback loop prescribes.
func (u *Updater) Refresh(latest fingerprint.Matrix) error {
	nu, err := NewUpdater(latest, u.cfg)
	if err != nil {
		return err
	}
	*u = *nu
	return nil
}
