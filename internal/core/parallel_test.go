package core

import (
	"testing"

	"iupdater/internal/mat"
	"iupdater/internal/testbed"
)

// parallelInput builds one realistic reconstruction input (45-day drift
// on the office testbed) for the parallel-sweep tests.
func parallelInput(t *testing.T) Input {
	t.Helper()
	s := testbed.NewSurveyor(testbed.Office(), 11)
	fp0, _ := s.FullSurvey(0, testbed.TraditionalSamples)
	up, err := NewUpdater(fp0, DefaultUpdaterConfig())
	if err != nil {
		t.Fatal(err)
	}
	const tU = 45 * testbed.Day
	mask := s.Mask()
	xb := s.NoDecreaseScan(tU, testbed.IUpdaterSamples)
	xr, _ := s.ReferenceSurvey(tU, up.ReferenceLocations(), testbed.IUpdaterSamples)
	return Input{
		XB:       xb,
		B:        mask.B,
		XR:       xr,
		Z:        up.Correlation(),
		Links:    fp0.Links,
		PerStrip: fp0.PerStrip,
	}
}

func reconstructWith(t *testing.T, in Input, opts ...Option) *mat.Dense {
	t.Helper()
	res, err := NewReconstructor(opts...).Reconstruct(in)
	if err != nil {
		t.Fatal(err)
	}
	return res.X
}

func TestParallelSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	// The parallel Gauss-Seidel sweep reads its couplings from a
	// pre-sweep snapshot, so the result must be bit-identical for every
	// worker count.
	// Concurrency 0 (GOMAXPROCS) must match too, whatever it resolves
	// to on this machine — even a single worker routes through the
	// snapshot path.
	in := parallelInput(t)
	base := reconstructWith(t, in, WithWarmStart(true), WithConcurrency(2))
	for _, c := range []int{0, 3, 5, 8} {
		if x := reconstructWith(t, in, WithWarmStart(true), WithConcurrency(c)); !x.Equal(base) {
			t.Errorf("concurrency %d produced a different reconstruction than concurrency 2", c)
		}
	}
}

func TestParallelWithoutCouplingsMatchesSequential(t *testing.T) {
	// Without cross-solve couplings the row/column solves are fully
	// independent and the parallel sweep must match the sequential one
	// bit-for-bit.
	in := parallelInput(t)
	cases := []struct {
		name string
		opts []Option
	}{
		{"paper-variant", []Option{WithWarmStart(true), WithVariant(VariantPaper)}},
		{"no-constraint2", []Option{WithWarmStart(true), WithConstraint2(false)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seq := reconstructWith(t, in, tc.opts...)
			par := reconstructWith(t, in, append(append([]Option{}, tc.opts...), WithConcurrency(4))...)
			if !par.Equal(seq) {
				t.Error("parallel sweep differs from sequential without couplings")
			}
		})
	}
}

func TestParallelGaussSeidelStaysAccurate(t *testing.T) {
	// The snapshot (block-Jacobi) couplings follow a different iteration
	// order than sequential Gauss-Seidel but share its fixed point: the
	// converged reconstructions must agree to solver tolerance.
	in := parallelInput(t)
	seq := reconstructWith(t, in, WithWarmStart(true))
	par := reconstructWith(t, in, WithWarmStart(true), WithConcurrency(4))
	m, n := seq.Dims()
	var sum float64
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			d := seq.At(i, j) - par.At(i, j)
			if d < 0 {
				d = -d
			}
			sum += d
		}
	}
	if mean := sum / float64(m*n); mean > 0.1 {
		t.Errorf("parallel reconstruction deviates %.4f dB on average from sequential, want <= 0.1", mean)
	}
}

func TestParallelSweepRace(t *testing.T) {
	// Exercises the parallel sweeps with more workers than rows under
	// the race detector (CI runs the suite with -race): workers write
	// disjoint factor rows and read only sweep-invariant state.
	in := parallelInput(t)
	for _, opts := range [][]Option{
		{WithWarmStart(true), WithConcurrency(8)},
		{WithWarmStart(false), WithMaxIter(5), WithConcurrency(8)},
		{WithWarmStart(true), WithVariant(VariantPaper), WithConcurrency(8)},
	} {
		if x := reconstructWith(t, in, opts...); !x.IsFinite() {
			t.Fatal("parallel reconstruction produced non-finite values")
		}
	}
}
