package core

import "iupdater/internal/mat"

// BasicRSVD solves the plain regularized-SVD completion of Eqn 11:
//
//	min λ(||L||²F + ||R||²F) + ||B∘(LRᵀ) - XB||²F
//
// without either constraint. As §IV-B observes, this problem does not
// have a unique solution over the unknown entries — which is exactly why
// iUpdater adds the reference-correlation constraint. Exposed separately
// for the Fig 16 ablation.
func BasicRSVD(xb, b *mat.Dense, links, perStrip int, opts ...Option) (*Result, error) {
	all := make([]Option, 0, len(opts)+2)
	all = append(all, opts...)
	all = append(all, WithConstraint1(false), WithConstraint2(false))
	rc := NewReconstructor(all...)
	return rc.Reconstruct(Input{
		XB:       xb,
		B:        b,
		Links:    links,
		PerStrip: perStrip,
	})
}
