// Package geom provides the planar geometry used by the testbed simulator:
// points, wireless links between transceivers, first-Fresnel-zone tests and
// the strip-major location grid assumed by the paper's fingerprint matrix
// (Definition 2: location j = (i-1)*N/M + u lies on link i's strip).
package geom

import (
	"fmt"
	"math"
)

// Point is a position in the monitoring plane, in meters.
type Point struct {
	X, Y float64
}

// Distance returns the Euclidean distance between p and q.
func (p Point) Distance(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Lerp returns the point p + t*(q-p).
func (p Point) Lerp(q Point, t float64) Point {
	return Point{X: p.X + t*(q.X-p.X), Y: p.Y + t*(q.Y-p.Y)}
}

// Link is a wireless link between a transmitter and a receiver.
type Link struct {
	TX, RX Point
}

// Length returns the TX-RX distance in meters.
func (l Link) Length() float64 { return l.TX.Distance(l.RX) }

// Project returns the normalized projection parameter t of p onto the
// TX->RX segment (t=0 at TX, t=1 at RX), clamped to [0, 1], and the
// perpendicular distance from p to the (unclamped) line.
func (l Link) Project(p Point) (t, perp float64) {
	dx := l.RX.X - l.TX.X
	dy := l.RX.Y - l.TX.Y
	len2 := dx*dx + dy*dy
	if len2 == 0 {
		return 0, l.TX.Distance(p)
	}
	t = ((p.X-l.TX.X)*dx + (p.Y-l.TX.Y)*dy) / len2
	// Perpendicular distance from the infinite line.
	perp = math.Abs((p.X-l.TX.X)*dy-(p.Y-l.TX.Y)*dx) / math.Sqrt(len2)
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return t, perp
}

// ExcessPathLength returns d(TX,p) + d(p,RX) - d(TX,RX): how much longer
// the path through p is than the direct path. It is the quantity that
// determines Fresnel zone membership.
func (l Link) ExcessPathLength(p Point) float64 {
	return l.TX.Distance(p) + p.Distance(l.RX) - l.Length()
}

// FresnelRadius returns the radius of the n-th Fresnel zone at a point
// located d1 from TX and d2 from RX, for the given wavelength (meters).
func FresnelRadius(n int, wavelength, d1, d2 float64) float64 {
	if d1 <= 0 || d2 <= 0 {
		return 0
	}
	return math.Sqrt(float64(n) * wavelength * d1 * d2 / (d1 + d2))
}

// InFirstFresnelZone reports whether p lies inside the first Fresnel zone
// of the link: the ellipse of points whose excess path length is below
// half a wavelength.
func (l Link) InFirstFresnelZone(p Point, wavelength float64) bool {
	return l.ExcessPathLength(p) < wavelength/2
}

// ClearanceRatio returns the Fresnel-Kirchhoff diffraction parameter v for
// an obstruction at p relative to the link. Positive v means the direct
// path is blocked (obstruction reaches past the line of sight); the more
// positive, the deeper the shadow. v <= -1 means essentially clear.
//
// v = h * sqrt(2*(d1+d2) / (lambda*d1*d2)), where h is the signed
// clearance: positive when the obstruction crosses the direct path. For a
// device-free target we treat the target's effective radius as how far it
// protrudes toward the line of sight, so h = radius - perpendicular
// distance.
func (l Link) ClearanceRatio(p Point, wavelength, targetRadius float64) float64 {
	t, perp := l.Project(p)
	d := l.Length()
	d1 := t * d
	d2 := (1 - t) * d
	if d1 < 1e-9 || d2 < 1e-9 {
		// Standing on top of a transceiver: total obstruction.
		return 4
	}
	h := targetRadius - perp
	return h * math.Sqrt(2*(d1+d2)/(wavelength*d1*d2))
}

// Grid is the strip-major division of the monitoring area into N = M*K
// cells: one strip of K cells along each of the M parallel links, cells
// ordered TX->RX within a strip. Location index j (0-based here; the paper
// is 1-based) belongs to strip j/K, position j%K.
type Grid struct {
	// Width is the extent along the link direction (TX->RX), meters.
	Width float64
	// Height is the extent across the links, meters.
	Height float64
	// Links is the number of parallel links M (= number of strips).
	Links int
	// PerStrip is the number of cells along each strip (K = N/M).
	PerStrip int
}

// NewGrid builds a strip-major grid. Width and height are the area
// dimensions in meters; links is M; perStrip is K.
func NewGrid(width, height float64, links, perStrip int) Grid {
	if width <= 0 || height <= 0 {
		panic(fmt.Sprintf("geom: non-positive grid dimensions %vx%v", width, height))
	}
	if links <= 0 || perStrip <= 0 {
		panic(fmt.Sprintf("geom: non-positive grid shape M=%d K=%d", links, perStrip))
	}
	return Grid{Width: width, Height: height, Links: links, PerStrip: perStrip}
}

// NumCells returns N = M*K.
func (g Grid) NumCells() int { return g.Links * g.PerStrip }

// CellSize returns the (along, across) dimensions of one cell in meters.
func (g Grid) CellSize() (along, across float64) {
	return g.Width / float64(g.PerStrip), g.Height / float64(g.Links)
}

// Center returns the center point of cell j (0-based, strip-major).
func (g Grid) Center(j int) Point {
	g.checkCell(j)
	strip := j / g.PerStrip
	pos := j % g.PerStrip
	along, across := g.CellSize()
	return Point{
		X: (float64(pos) + 0.5) * along,
		Y: (float64(strip) + 0.5) * across,
	}
}

// Strip returns the strip (link) index owning cell j.
func (g Grid) Strip(j int) int {
	g.checkCell(j)
	return j / g.PerStrip
}

// PosInStrip returns the position of cell j along its strip (0-based,
// TX side first).
func (g Grid) PosInStrip(j int) int {
	g.checkCell(j)
	return j % g.PerStrip
}

// CellIndex returns the strip-major index of the cell at (strip, pos).
func (g Grid) CellIndex(strip, pos int) int {
	if strip < 0 || strip >= g.Links || pos < 0 || pos >= g.PerStrip {
		panic(fmt.Sprintf("geom: cell (%d,%d) out of range %dx%d", strip, pos, g.Links, g.PerStrip))
	}
	return strip*g.PerStrip + pos
}

// CellAt returns the index of the cell containing p, or -1 when p is
// outside the area.
func (g Grid) CellAt(p Point) int {
	if p.X < 0 || p.X >= g.Width || p.Y < 0 || p.Y >= g.Height {
		return -1
	}
	along, across := g.CellSize()
	pos := int(p.X / along)
	strip := int(p.Y / across)
	if pos >= g.PerStrip {
		pos = g.PerStrip - 1
	}
	if strip >= g.Links {
		strip = g.Links - 1
	}
	return g.CellIndex(strip, pos)
}

// LinkLine returns the geometry of link i: TX at the left edge, RX at the
// right edge, running along the center line of strip i.
func (g Grid) LinkLine(i int) Link {
	if i < 0 || i >= g.Links {
		panic(fmt.Sprintf("geom: link %d out of range %d", i, g.Links))
	}
	_, across := g.CellSize()
	y := (float64(i) + 0.5) * across
	return Link{TX: Point{X: 0, Y: y}, RX: Point{X: g.Width, Y: y}}
}

// NeighborsInStrip returns the indices (within-strip positions) of the
// neighbors of position u along a strip: {u-1, u+1} clipped to bounds.
// This is the neighboring relationship encoded by the paper's T matrix
// (Eqn 4).
func (g Grid) NeighborsInStrip(u int) []int {
	if u < 0 || u >= g.PerStrip {
		panic(fmt.Sprintf("geom: strip position %d out of range %d", u, g.PerStrip))
	}
	out := make([]int, 0, 2)
	if u > 0 {
		out = append(out, u-1)
	}
	if u < g.PerStrip-1 {
		out = append(out, u+1)
	}
	return out
}

func (g Grid) checkCell(j int) {
	if j < 0 || j >= g.NumCells() {
		panic(fmt.Sprintf("geom: cell %d out of range %d", j, g.NumCells()))
	}
}
