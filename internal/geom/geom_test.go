package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointDistance(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{"same point", Point{1, 1}, Point{1, 1}, 0},
		{"unit x", Point{0, 0}, Point{1, 0}, 1},
		{"3-4-5", Point{0, 0}, Point{3, 4}, 5},
		{"negative coords", Point{-1, -1}, Point{2, 3}, 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.Distance(tt.q); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Distance = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestLerp(t *testing.T) {
	p := Point{0, 0}
	q := Point{10, 20}
	mid := p.Lerp(q, 0.5)
	if mid.X != 5 || mid.Y != 10 {
		t.Errorf("Lerp(0.5) = %v", mid)
	}
	if got := p.Lerp(q, 0); got != p {
		t.Errorf("Lerp(0) = %v, want %v", got, p)
	}
	if got := p.Lerp(q, 1); got != q {
		t.Errorf("Lerp(1) = %v, want %v", got, q)
	}
}

func TestLinkProject(t *testing.T) {
	l := Link{TX: Point{0, 0}, RX: Point{10, 0}}
	tests := []struct {
		name     string
		p        Point
		wantT    float64
		wantPerp float64
	}{
		{"midpoint above", Point{5, 2}, 0.5, 2},
		{"at TX", Point{0, 0}, 0, 0},
		{"at RX", Point{10, 0}, 1, 0},
		{"beyond RX clamps", Point{15, 3}, 1, 3},
		{"before TX clamps", Point{-5, 1}, 0, 1},
		{"on the line", Point{3, 0}, 0.3, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			gotT, gotPerp := l.Project(tt.p)
			if math.Abs(gotT-tt.wantT) > 1e-12 {
				t.Errorf("t = %v, want %v", gotT, tt.wantT)
			}
			if math.Abs(gotPerp-tt.wantPerp) > 1e-12 {
				t.Errorf("perp = %v, want %v", gotPerp, tt.wantPerp)
			}
		})
	}
}

func TestExcessPathLength(t *testing.T) {
	l := Link{TX: Point{0, 0}, RX: Point{10, 0}}
	if got := l.ExcessPathLength(Point{5, 0}); math.Abs(got) > 1e-12 {
		t.Errorf("on-path excess = %v, want 0", got)
	}
	// Off-path point: excess must be positive and grow with distance.
	e1 := l.ExcessPathLength(Point{5, 1})
	e2 := l.ExcessPathLength(Point{5, 2})
	if e1 <= 0 || e2 <= e1 {
		t.Errorf("excess not monotone: %v, %v", e1, e2)
	}
}

func TestFresnelRadius(t *testing.T) {
	// At midpoint of a 10 m link at 2.4 GHz (lambda=0.125 m):
	// r = sqrt(lambda*d1*d2/d) = sqrt(0.125*25/10) = 0.559 m.
	got := FresnelRadius(1, 0.125, 5, 5)
	if math.Abs(got-math.Sqrt(0.125*2.5)) > 1e-12 {
		t.Errorf("FresnelRadius = %v", got)
	}
	if FresnelRadius(1, 0.125, 0, 5) != 0 {
		t.Error("zero d1 should give zero radius")
	}
}

func TestInFirstFresnelZone(t *testing.T) {
	l := Link{TX: Point{0, 0}, RX: Point{10, 0}}
	const lambda = 0.125
	tests := []struct {
		name string
		p    Point
		want bool
	}{
		{"on direct path", Point{5, 0}, true},
		{"just off path", Point{5, 0.3}, true},
		{"at FFZ boundary radius", Point{5, 0.558}, true},
		{"outside FFZ", Point{5, 0.7}, false},
		{"far away", Point{5, 3}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := l.InFirstFresnelZone(tt.p, lambda); got != tt.want {
				t.Errorf("InFirstFresnelZone(%v) = %v, want %v", tt.p, got, tt.want)
			}
		})
	}
}

func TestClearanceRatioRegimes(t *testing.T) {
	l := Link{TX: Point{0, 0}, RX: Point{12, 0}}
	const (
		lambda = 0.125
		radius = 0.26 // human torso effective radius
	)
	// Blocking the path: v > 0.
	if v := l.ClearanceRatio(Point{6, 0}, lambda, radius); v <= 0 {
		t.Errorf("blocking v = %v, want > 0", v)
	}
	// Near but not blocking: -1 < v < small.
	vNear := l.ClearanceRatio(Point{6, 0.5}, lambda, radius)
	if vNear >= 0 {
		t.Errorf("near-path v = %v, want < 0", vNear)
	}
	// Far: strongly negative.
	vFar := l.ClearanceRatio(Point{6, 3}, lambda, radius)
	if vFar >= vNear {
		t.Errorf("far v = %v should be below near v = %v", vFar, vNear)
	}
	// Monotone decrease as the target moves away laterally.
	prev := math.Inf(1)
	for _, y := range []float64{0, 0.2, 0.4, 0.8, 1.6, 3.2} {
		v := l.ClearanceRatio(Point{6, y}, lambda, radius)
		if v >= prev {
			t.Errorf("v not monotone at y=%v: %v >= %v", y, v, prev)
		}
		prev = v
	}
}

func TestClearanceRatioAtTransceiver(t *testing.T) {
	l := Link{TX: Point{0, 0}, RX: Point{12, 0}}
	if v := l.ClearanceRatio(Point{0, 0}, 0.125, 0.26); v < 3 {
		t.Errorf("standing on TX should be deep shadow, v = %v", v)
	}
}

func TestGridShape(t *testing.T) {
	g := NewGrid(12, 9, 8, 12) // office: 8 links, 12 cells per strip
	if got := g.NumCells(); got != 96 {
		t.Errorf("NumCells = %d, want 96", got)
	}
	along, across := g.CellSize()
	if math.Abs(along-1.0) > 1e-12 || math.Abs(across-1.125) > 1e-12 {
		t.Errorf("CellSize = %v, %v", along, across)
	}
}

func TestGridStripMajorIndexing(t *testing.T) {
	g := NewGrid(12, 9, 8, 12)
	tests := []struct {
		j          int
		strip, pos int
	}{
		{0, 0, 0},
		{11, 0, 11},
		{12, 1, 0},
		{95, 7, 11},
		{50, 4, 2},
	}
	for _, tt := range tests {
		if got := g.Strip(tt.j); got != tt.strip {
			t.Errorf("Strip(%d) = %d, want %d", tt.j, got, tt.strip)
		}
		if got := g.PosInStrip(tt.j); got != tt.pos {
			t.Errorf("PosInStrip(%d) = %d, want %d", tt.j, got, tt.pos)
		}
		if got := g.CellIndex(tt.strip, tt.pos); got != tt.j {
			t.Errorf("CellIndex(%d,%d) = %d, want %d", tt.strip, tt.pos, got, tt.j)
		}
	}
}

func TestGridCenterRoundTrip(t *testing.T) {
	g := NewGrid(12, 9, 8, 12)
	for j := 0; j < g.NumCells(); j++ {
		if got := g.CellAt(g.Center(j)); got != j {
			t.Errorf("CellAt(Center(%d)) = %d", j, got)
		}
	}
}

func TestGridCellAtOutside(t *testing.T) {
	g := NewGrid(12, 9, 8, 12)
	outside := []Point{{-1, 3}, {3, -1}, {13, 3}, {3, 10}}
	for _, p := range outside {
		if got := g.CellAt(p); got != -1 {
			t.Errorf("CellAt(%v) = %d, want -1", p, got)
		}
	}
}

func TestLinkLineGeometry(t *testing.T) {
	g := NewGrid(12, 9, 8, 12)
	for i := 0; i < g.Links; i++ {
		l := g.LinkLine(i)
		if l.TX.X != 0 || l.RX.X != 12 {
			t.Errorf("link %d spans %v..%v, want 0..12", i, l.TX.X, l.RX.X)
		}
		if l.TX.Y != l.RX.Y {
			t.Errorf("link %d not horizontal", i)
		}
		// Link i runs along the center of strip i: every cell of strip i
		// is closer to link i than to any other link.
		for pos := 0; pos < g.PerStrip; pos++ {
			c := g.Center(g.CellIndex(i, pos))
			_, dOwn := l.Project(c)
			for k := 0; k < g.Links; k++ {
				if k == i {
					continue
				}
				if _, dOther := g.LinkLine(k).Project(c); dOther < dOwn {
					t.Fatalf("cell (%d,%d) closer to link %d than its own", i, pos, k)
				}
			}
		}
	}
}

func TestNeighborsInStrip(t *testing.T) {
	g := NewGrid(12, 9, 8, 12)
	tests := []struct {
		u    int
		want []int
	}{
		{0, []int{1}},
		{5, []int{4, 6}},
		{11, []int{10}},
	}
	for _, tt := range tests {
		got := g.NeighborsInStrip(tt.u)
		if len(got) != len(tt.want) {
			t.Errorf("NeighborsInStrip(%d) = %v, want %v", tt.u, got, tt.want)
			continue
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("NeighborsInStrip(%d) = %v, want %v", tt.u, got, tt.want)
			}
		}
	}
}

func TestGridPanics(t *testing.T) {
	g := NewGrid(12, 9, 8, 12)
	tests := []struct {
		name string
		f    func()
	}{
		{"bad dims", func() { NewGrid(0, 9, 8, 12) }},
		{"bad shape", func() { NewGrid(12, 9, 0, 12) }},
		{"center out of range", func() { g.Center(96) }},
		{"link out of range", func() { g.LinkLine(8) }},
		{"neighbor out of range", func() { g.NeighborsInStrip(12) }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			tt.f()
		})
	}
}

func TestQuickProjectClamped(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := Link{
			TX: Point{rng.Float64() * 10, rng.Float64() * 10},
			RX: Point{rng.Float64() * 10, rng.Float64() * 10},
		}
		p := Point{rng.Float64()*20 - 5, rng.Float64()*20 - 5}
		tt, perp := l.Project(p)
		return tt >= 0 && tt <= 1 && perp >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickExcessPathNonNegative(t *testing.T) {
	// Triangle inequality: the detour through any point is never shorter.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := Link{
			TX: Point{rng.Float64() * 10, rng.Float64() * 10},
			RX: Point{rng.Float64() * 10, rng.Float64() * 10},
		}
		p := Point{rng.Float64()*20 - 5, rng.Float64()*20 - 5}
		return l.ExcessPathLength(p) >= -1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickCellAtCenterIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(10)
		k := 1 + rng.Intn(20)
		g := NewGrid(1+rng.Float64()*20, 1+rng.Float64()*20, m, k)
		j := rng.Intn(g.NumCells())
		return g.CellAt(g.Center(j)) == j
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
