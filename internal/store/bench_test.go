package store

import (
	"encoding/binary"
	"testing"
)

// BenchmarkStoreAppendLoad measures one durable publish + warm-load
// round trip: Append of an office-sized snapshot payload (8 links x 96
// cells of float64, ~6 KiB) followed by Latest. fsync dominates the
// wall time; the regression metric is allocs/op — the documented budget
// is <= 12 allocs per round trip (one record buffer and one payload
// read buffer, plus fixed fsync/index overhead), enforced by
// scripts/bench.sh.
func BenchmarkStoreAppendLoad(b *testing.B) {
	s, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	payload := make([]byte, 8*96*8)
	for i := 0; i < len(payload); i += 8 {
		binary.LittleEndian.PutUint64(payload[i:], uint64(i)*0x9E3779B97F4A7C15)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Append(uint64(i+1), payload); err != nil {
			b.Fatal(err)
		}
		if _, p, err := s.Latest(); err != nil || len(p) != len(payload) {
			b.Fatalf("Latest: %v", err)
		}
	}
}

// BenchmarkStoreAppendDelta measures one durable low-cost publish: an
// office-sized snapshot (33-byte header + 96 columns of 64 bytes) in
// which ~10% of the columns changed versus the previous version,
// appended through the delta path. Most iterations write a ~700-byte
// iUPD record instead of the ~6 KiB full payload (every MaxChain-th
// append re-anchors with a full record). fsync dominates wall time; the
// regression metric is allocs/op — budget <= 8 (~1-3 measured
// depending on iteration count: the framed record plus changed-index
// scratch, with cache/index growth amortizing), enforced by
// scripts/bench.sh.
func BenchmarkStoreAppendDelta(b *testing.B) {
	s, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	layout := Layout{HeaderLen: 33, ChunkSize: 8 * 8}
	payload := make([]byte, layout.HeaderLen+96*layout.ChunkSize)
	for i := 0; i+8 <= len(payload); i += 8 {
		binary.LittleEndian.PutUint64(payload[i:], uint64(i)*0x9E3779B97F4A7C15)
	}
	if _, err := s.AppendDelta(1, payload, layout); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Perturb ~10% of the columns (a different set each round).
		for c := 0; c < 9; c++ {
			off := layout.HeaderLen + ((i*9+c)%96)*layout.ChunkSize
			binary.LittleEndian.PutUint64(payload[off:], uint64(i+c)|1)
		}
		if _, err := s.AppendDelta(uint64(i+2), payload, layout); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	// Sanity: the run must actually have exercised the delta path.
	var deltas int
	for _, r := range s.Records() {
		if r.Kind == KindDelta {
			deltas++
		}
	}
	if b.N > 1 && deltas == 0 {
		b.Fatal("no delta records were written")
	}
}

// BenchmarkReplicaApply measures the follower side of replication:
// applying a pre-framed delta record (office-sized snapshot, ~10% of
// columns changed) to a Replay. The delta patches the materialized
// payload in place, so the steady state allocates nothing — the
// regression metric is allocs/op with a budget of <= 4 (headroom for
// the occasional map/slice growth inside the CRC table lookup paths),
// enforced by scripts/bench.sh.
func BenchmarkReplicaApply(b *testing.B) {
	layout := Layout{HeaderLen: 33, ChunkSize: 8 * 8}
	base := make([]byte, layout.HeaderLen+96*layout.ChunkSize)
	for i := 0; i+8 <= len(base); i += 8 {
		binary.LittleEndian.PutUint64(base[i:], uint64(i)*0x9E3779B97F4A7C15)
	}
	// A ring of delta frames, each chaining onto the previous: frame k
	// carries version k+2 over base version k+1. The ring is rebuilt
	// from the same starting payload, so after the last frame the
	// payload returns to a state from which frame 0's base re-applies —
	// we instead reset the Replay each cycle outside the timer.
	const ring = 256
	frames := make([][]byte, 0, ring)
	cur := append([]byte(nil), base...)
	prev := append([]byte(nil), base...)
	for k := 0; k < ring; k++ {
		for c := 0; c < 9; c++ {
			off := layout.HeaderLen + ((k*9+c)%96)*layout.ChunkSize
			binary.LittleEndian.PutUint64(cur[off:], uint64(k+c)|1)
		}
		frame := encodeDeltaRecord(uint64(k+2), cur, prev, uint64(k+1), layout)
		if frame == nil {
			b.Fatal("delta encoding fell back to full")
		}
		frames = append(frames, frame)
		copy(prev, cur)
	}
	full := frameRecord(recordMagic, 1, base)
	r := &Replay{}
	if _, _, err := r.Apply(full); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i % ring
		if k == 0 && i > 0 {
			b.StopTimer()
			r = &Replay{}
			if _, _, err := r.Apply(full); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
		if _, _, err := r.Apply(frames[k]); err != nil {
			b.Fatal(err)
		}
	}
}
