package store

import (
	"encoding/binary"
	"testing"
)

// BenchmarkStoreAppendLoad measures one durable publish + warm-load
// round trip: Append of an office-sized snapshot payload (8 links x 96
// cells of float64, ~6 KiB) followed by Latest. fsync dominates the
// wall time; the regression metric is allocs/op — the documented budget
// is <= 12 allocs per round trip (one record buffer and one payload
// read buffer, plus fixed fsync/index overhead), enforced by
// scripts/bench.sh.
func BenchmarkStoreAppendLoad(b *testing.B) {
	s, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	payload := make([]byte, 8*96*8)
	for i := 0; i < len(payload); i += 8 {
		binary.LittleEndian.PutUint64(payload[i:], uint64(i)*0x9E3779B97F4A7C15)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Append(uint64(i+1), payload); err != nil {
			b.Fatal(err)
		}
		if _, p, err := s.Latest(); err != nil || len(p) != len(payload) {
			b.Fatalf("Latest: %v", err)
		}
	}
}
