package store

import (
	"bytes"
	"errors"
	"io"
	"io/fs"
	"testing"
)

// backends returns one fresh instance of every Backend implementation,
// keyed by name, for contract tests that must hold across all of them.
func backends(t *testing.T) map[string]Backend {
	t.Helper()
	return map[string]Backend{
		"dir":    NewDir(t.TempDir()),
		"memory": NewMemory(),
	}
}

// TestBackendContract drives the raw Backend surface through the
// operations the store depends on: open-or-create, positioned IO,
// truncate, inode-style rename, ReadFile's fs.ErrNotExist, and List.
func TestBackendContract(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			if _, err := b.ReadFile("absent"); !errors.Is(err, fs.ErrNotExist) {
				t.Fatalf("ReadFile(absent) = %v, want fs.ErrNotExist", err)
			}
			f, err := b.Open("log")
			if err != nil {
				t.Fatal(err)
			}
			if n, err := f.WriteAt([]byte("hello world"), 0); err != nil || n != 11 {
				t.Fatalf("WriteAt = %d, %v", n, err)
			}
			// Sparse write past the end zero-fills the gap.
			if _, err := f.WriteAt([]byte("X"), 16); err != nil {
				t.Fatal(err)
			}
			if size, err := f.Size(); err != nil || size != 17 {
				t.Fatalf("Size = %d, %v, want 17", size, err)
			}
			buf := make([]byte, 17)
			if _, err := f.ReadAt(buf, 0); err != nil {
				t.Fatal(err)
			}
			if want := "hello world\x00\x00\x00\x00\x00X"; string(buf) != want {
				t.Fatalf("content %q, want %q", buf, want)
			}
			// Short read at the tail reports io.EOF with the bytes read.
			short := make([]byte, 4)
			if n, err := f.ReadAt(short, 15); n != 2 || err != io.EOF {
				t.Fatalf("tail ReadAt = %d, %v, want 2, io.EOF", n, err)
			}
			if err := f.Truncate(5); err != nil {
				t.Fatal(err)
			}
			if size, _ := f.Size(); size != 5 {
				t.Fatalf("post-truncate size %d", size)
			}
			if err := f.Sync(); err != nil {
				t.Fatal(err)
			}

			// An open handle survives being renamed over: inode semantics.
			g, err := b.Create("log2")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := g.WriteAt([]byte("second"), 0); err != nil {
				t.Fatal(err)
			}
			if err := b.Rename("log2", "log"); err != nil {
				t.Fatal(err)
			}
			old := make([]byte, 5)
			if _, err := f.ReadAt(old, 0); err != nil {
				t.Fatalf("replaced handle read: %v", err)
			}
			if string(old) != "hello" {
				t.Fatalf("replaced handle reads %q, want the pre-rename bytes", old)
			}
			if got, err := b.ReadFile("log"); err != nil || string(got) != "second" {
				t.Fatalf("post-rename ReadFile = %q, %v", got, err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}
			if _, err := f.ReadAt(old, 0); err == nil {
				t.Fatal("read through a closed handle succeeded")
			}
			if err := g.Close(); err != nil {
				t.Fatal(err)
			}

			names, err := b.List()
			if err != nil {
				t.Fatal(err)
			}
			if len(names) != 1 || names[0] != "log" {
				t.Fatalf("List = %v, want [log]", names)
			}
			if err := b.Remove("log"); err != nil {
				t.Fatal(err)
			}
			if err := b.Remove("log"); !errors.Is(err, fs.ErrNotExist) {
				t.Fatalf("double Remove = %v, want fs.ErrNotExist", err)
			}
			if err := b.Sync(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestBackendStoreParity runs a full store life — appends, deltas,
// state blobs, compaction, restart — over each backend and demands the
// same observable behavior, including bit-identical log bytes between
// the directory and memory backends.
func TestBackendStoreParity(t *testing.T) {
	layout := Layout{HeaderLen: 4, ChunkSize: 64}
	payload := func(v uint64, hot byte) []byte {
		p := make([]byte, 4+8*64)
		p[0] = byte(v)
		p[4+64] = hot // one hot chunk keeps deltas under the half-size rule
		return p
	}
	run := func(t *testing.T, b Backend) {
		s, err := OpenBackend(b, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Append(1, payload(1, 0)); err != nil {
			t.Fatal(err)
		}
		for v := uint64(2); v <= 5; v++ {
			kind, err := s.AppendDelta(v, payload(v, byte(v)), layout)
			if err != nil {
				t.Fatal(err)
			}
			if v > 1 && kind != KindDelta {
				t.Fatalf("v%d stored as %v, want delta", v, kind)
			}
		}
		if err := s.SaveState("mon", []byte("calibrated")); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}

		// Restart over the same backend: the in-memory analogue of
		// reopening the directory.
		s2, err := OpenBackend(b, Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer s2.Close()
		if got := s2.Versions(); len(got) != 5 || got[0] != 1 || got[4] != 5 {
			t.Fatalf("post-restart versions %v", got)
		}
		v, p, err := s2.Latest()
		if err != nil || v != 5 {
			t.Fatalf("Latest = v%d, %v", v, err)
		}
		if !bytes.Equal(p, payload(5, 5)) {
			t.Fatal("latest payload does not materialize bit-identically")
		}
		if blob, ok, err := s2.LoadState("mon"); err != nil || !ok || string(blob) != "calibrated" {
			t.Fatalf("LoadState = %q, %v, %v", blob, ok, err)
		}
	}
	logBytes := make(map[string][]byte)
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			run(t, b)
			raw, err := b.ReadFile(logName)
			if err != nil {
				t.Fatal(err)
			}
			logBytes[name] = raw
		})
	}
	if dir, mem := logBytes["dir"], logBytes["memory"]; !bytes.Equal(dir, mem) {
		t.Fatalf("log bytes differ between backends: dir %d bytes, memory %d bytes", len(dir), len(mem))
	}
}

// TestBackendStoreCompactionAndCorruption: retention compaction (the
// rename-over-live-log path) and corrupt-tail recovery behave the same
// through every backend.
func TestBackendStoreCompactionAndCorruption(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			s, err := OpenBackend(b, Options{Retain: 2})
			if err != nil {
				t.Fatal(err)
			}
			for v := uint64(1); v <= 4; v++ {
				if err := s.Append(v, []byte{byte(v), 1, 2, 3}); err != nil {
					t.Fatal(err)
				}
			}
			if got := s.Versions(); len(got) != 2 || got[0] != 3 {
				t.Fatalf("post-compaction versions %v", got)
			}
			if s.Compactions() == 0 {
				t.Fatal("retention never compacted")
			}
			// Reads through the post-rename handle still verify.
			if p, err := s.At(4); err != nil || p[0] != 4 {
				t.Fatalf("At(4) = %v, %v", p, err)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}

			// Flip a payload bit in the newest record: recovery must
			// truncate back to the last good record, not fail open.
			raw, err := b.ReadFile(logName)
			if err != nil {
				t.Fatal(err)
			}
			f, err := b.Open(logName)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteAt([]byte{raw[len(raw)-1] ^ 0xFF}, int64(len(raw)-1)); err != nil {
				t.Fatal(err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}
			s2, err := OpenBackend(b, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			if got := s2.Versions(); len(got) != 1 || got[0] != 3 {
				t.Fatalf("post-corruption versions %v, want [3]", got)
			}
		})
	}
}
