// Package store is a durable, versioned snapshot store: an append-only,
// checksummed record log on disk, one directory per deployment site.
//
// # On-disk format
//
// The log file (snapshots.log) is a sequence of records:
//
//	offset  size  field
//	0       4     magic "iUPS" (little-endian 0x53505569)
//	4       8     version (uint64 LE, strictly increasing within the log)
//	12      4     payload length (uint32 LE)
//	16      4     CRC32 (IEEE) over bytes [4,16) + payload
//	20      n     payload (opaque to the store)
//
// Append writes one record with a single write(2) followed by fsync, so
// a crash leaves at most one torn record at the tail. Open scans the log
// front to back, verifying magic, length bounds, CRC and version
// monotonicity per record; the first record that fails any check ends
// the scan and the file is truncated back to the last good record —
// corruption (a torn tail, a flipped bit) costs the corrupted suffix,
// never the store.
//
// Compaction (retention) rewrites the retained suffix of records to a
// temp file in the same directory, fsyncs it, and atomically renames it
// over the log, so readers of the directory never observe a partially
// compacted log.
//
// Small auxiliary state blobs (e.g. a drift monitor's calibrated
// baseline) are stored next to the log as <name>.state files, each a
// single checksummed record replaced atomically via temp-file+rename; a
// corrupt or missing state file reads as absent, never as an error.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
)

const (
	recordMagic = 0x53505569 // "iUPS" little-endian
	stateMagic  = 0x54535569 // "iUST" little-endian
	headerSize  = 20
	// maxPayload bounds a single record (1 GiB); a length field beyond it
	// is treated as corruption rather than attempted as an allocation.
	maxPayload = 1 << 30

	logName = "snapshots.log"
)

// ErrEmpty is returned by Latest on a store with no records.
var ErrEmpty = errors.New("store: no snapshots")

// Options configures a Store.
type Options struct {
	// Retain keeps only the newest Retain versions; 0 keeps every
	// version forever. Retention is enforced by compaction, triggered
	// automatically once the log holds 2*Retain records (amortizing the
	// rewrite) and on demand via Compact.
	Retain int
	// NoSync skips fsync after writes. Only for tests and benchmarks
	// that measure the in-memory path; durability requires the default.
	NoSync bool
}

type indexEntry struct {
	version uint64
	off     int64 // record start (header) offset in the log
	plen    uint32
}

// Store is an open snapshot store directory. All methods are safe for
// concurrent use: appends and compactions are serialized, reads run
// concurrently against the immutable written prefix.
type Store struct {
	dir  string
	opts Options

	mu   sync.RWMutex
	f    *os.File
	size int64
	idx  []indexEntry
}

// Open opens (creating if needed) the store directory and recovers the
// record index from the log, truncating any corrupted suffix back to
// the last good record.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, logName), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, opts: opts, f: f}
	if err := s.recover(); err != nil {
		f.Close()
		return nil, err
	}
	if !opts.NoSync {
		// Persist the directory entry of a freshly created log.
		if err := syncDir(dir); err != nil {
			f.Close()
			return nil, err
		}
	}
	return s, nil
}

// recover scans the log, building the index from the longest valid
// record prefix and truncating everything after it.
func (s *Store) recover() error {
	info, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	fileSize := info.Size()
	var (
		off  int64
		hdr  [headerSize]byte
		last uint64
	)
	for off+headerSize <= fileSize {
		if _, err := s.f.ReadAt(hdr[:], off); err != nil {
			break
		}
		magic := binary.LittleEndian.Uint32(hdr[0:4])
		version := binary.LittleEndian.Uint64(hdr[4:12])
		plen := binary.LittleEndian.Uint32(hdr[12:16])
		sum := binary.LittleEndian.Uint32(hdr[16:20])
		if magic != recordMagic || plen > maxPayload ||
			off+headerSize+int64(plen) > fileSize || version <= last {
			break
		}
		payload := make([]byte, plen)
		if _, err := s.f.ReadAt(payload, off+headerSize); err != nil {
			break
		}
		h := crc32.NewIEEE()
		h.Write(hdr[4:16])
		h.Write(payload)
		if h.Sum32() != sum {
			break
		}
		s.idx = append(s.idx, indexEntry{version: version, off: off, plen: plen})
		last = version
		off += headerSize + int64(plen)
	}
	if off < fileSize {
		if err := s.f.Truncate(off); err != nil {
			return fmt.Errorf("store: truncating corrupted tail: %w", err)
		}
		if !s.opts.NoSync {
			if err := s.f.Sync(); err != nil {
				return fmt.Errorf("store: %w", err)
			}
		}
	}
	s.size = off
	return nil
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Append durably writes one record. version must be strictly greater
// than the last stored version (the store never rewrites history). The
// record is on disk (written and fsynced) when Append returns.
func (s *Store) Append(version uint64, payload []byte) error {
	if len(payload) > maxPayload {
		return fmt.Errorf("store: payload of %d bytes exceeds the %d-byte record bound", len(payload), maxPayload)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return errors.New("store: closed")
	}
	if last := s.lastVersionLocked(); version <= last {
		return fmt.Errorf("store: version %d is not after the latest stored version %d", version, last)
	}
	rec := make([]byte, headerSize+len(payload))
	binary.LittleEndian.PutUint32(rec[0:4], recordMagic)
	binary.LittleEndian.PutUint64(rec[4:12], version)
	binary.LittleEndian.PutUint32(rec[12:16], uint32(len(payload)))
	copy(rec[headerSize:], payload)
	h := crc32.NewIEEE()
	h.Write(rec[4:16])
	h.Write(payload)
	binary.LittleEndian.PutUint32(rec[16:20], h.Sum32())
	if _, err := s.f.WriteAt(rec, s.size); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if !s.opts.NoSync {
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	s.idx = append(s.idx, indexEntry{version: version, off: s.size, plen: uint32(len(payload))})
	s.size += int64(len(rec))
	if s.opts.Retain > 0 && len(s.idx) >= 2*s.opts.Retain {
		// Best-effort: the record above is already durable, and a failed
		// append would wedge the caller's version sequence (the store
		// holds version N+1 but the caller thinks N is current, so every
		// retry is rejected as non-monotonic). A compaction failure only
		// delays retention — the log grows, appends keep working, the
		// next Append or an explicit Compact retries, and Compact
		// surfaces the error to callers who want it.
		_ = s.compactLocked()
	}
	return nil
}

// Latest returns the newest record, or ErrEmpty.
func (s *Store) Latest() (version uint64, payload []byte, err error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.idx) == 0 {
		return 0, nil, ErrEmpty
	}
	e := s.idx[len(s.idx)-1]
	payload, err = s.readLocked(e)
	return e.version, payload, err
}

// At returns the record at the given version; versions that were never
// stored or have been compacted away are an error.
func (s *Store) At(version uint64) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, e := range s.idx {
		if e.version == version {
			return s.readLocked(e)
		}
	}
	if len(s.idx) == 0 {
		return nil, fmt.Errorf("store: version %d not found (store is empty)", version)
	}
	return nil, fmt.Errorf("store: version %d not retained (have %d..%d)",
		version, s.idx[0].version, s.idx[len(s.idx)-1].version)
}

// readLocked reads and re-verifies one record's payload. Re-checking the
// CRC on every read catches bytes that rotted after Open.
func (s *Store) readLocked(e indexEntry) ([]byte, error) {
	if s.f == nil {
		return nil, errors.New("store: closed")
	}
	buf := make([]byte, headerSize+int64(e.plen))
	if _, err := s.f.ReadAt(buf, e.off); err != nil {
		return nil, fmt.Errorf("store: reading version %d: %w", e.version, err)
	}
	h := crc32.NewIEEE()
	h.Write(buf[4:16])
	h.Write(buf[headerSize:])
	if h.Sum32() != binary.LittleEndian.Uint32(buf[16:20]) {
		return nil, fmt.Errorf("store: version %d failed its checksum", e.version)
	}
	return buf[headerSize:], nil
}

// Versions returns the retained versions in ascending order.
func (s *Store) Versions() []uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]uint64, len(s.idx))
	for i, e := range s.idx {
		out[i] = e.version
	}
	return out
}

// LastVersion returns the newest stored version, 0 when empty.
func (s *Store) LastVersion() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.lastVersionLocked()
}

func (s *Store) lastVersionLocked() uint64 {
	if len(s.idx) == 0 {
		return 0
	}
	return s.idx[len(s.idx)-1].version
}

// Compact applies the retention policy now, rewriting the log to hold
// only the newest Retain versions. A no-op when Retain is 0 or nothing
// exceeds it.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return errors.New("store: closed")
	}
	return s.compactLocked()
}

// compactLocked rewrites the retained suffix to a temp file and renames
// it over the log. On any error the original log and index are kept.
func (s *Store) compactLocked() error {
	if s.opts.Retain <= 0 || len(s.idx) <= s.opts.Retain {
		return nil
	}
	keep := s.idx[len(s.idx)-s.opts.Retain:]
	logPath := filepath.Join(s.dir, logName)
	tmpPath := logPath + ".tmp"
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: compacting: %w", err)
	}
	newIdx := make([]indexEntry, 0, len(keep))
	var off int64
	var buf []byte
	for _, e := range keep {
		n := headerSize + int(e.plen)
		if len(buf) < n {
			buf = make([]byte, n)
		}
		if _, err := s.f.ReadAt(buf[:n], e.off); err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return fmt.Errorf("store: compacting: %w", err)
		}
		if _, err := tmp.WriteAt(buf[:n], off); err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return fmt.Errorf("store: compacting: %w", err)
		}
		newIdx = append(newIdx, indexEntry{version: e.version, off: off, plen: e.plen})
		off += int64(n)
	}
	if !s.opts.NoSync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return fmt.Errorf("store: compacting: %w", err)
		}
	}
	if err := os.Rename(tmpPath, logPath); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("store: compacting: %w", err)
	}
	// The rename took effect: tmp is now the log. Swap handles.
	s.f.Close()
	s.f = tmp
	s.idx = newIdx
	s.size = off
	if !s.opts.NoSync {
		if err := syncDir(s.dir); err != nil {
			return err
		}
	}
	return nil
}

// SaveState atomically replaces the named auxiliary state blob
// (temp-file write + fsync + rename). name must be a simple identifier.
func (s *Store) SaveState(name string, payload []byte) error {
	if err := checkStateName(name); err != nil {
		return err
	}
	if len(payload) > maxPayload {
		return fmt.Errorf("store: state %q of %d bytes exceeds the %d-byte bound", name, len(payload), maxPayload)
	}
	rec := make([]byte, 12+len(payload))
	binary.LittleEndian.PutUint32(rec[0:4], stateMagic)
	binary.LittleEndian.PutUint32(rec[4:8], uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[8:12], crc32.ChecksumIEEE(payload))
	copy(rec[12:], payload)

	s.mu.Lock()
	defer s.mu.Unlock()
	path := filepath.Join(s.dir, name+".state")
	tmpPath := path + ".tmp"
	tmp, err := os.OpenFile(tmpPath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := tmp.Write(rec); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("store: %w", err)
	}
	if !s.opts.NoSync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return fmt.Errorf("store: %w", err)
		}
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmpPath, path); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("store: %w", err)
	}
	if !s.opts.NoSync {
		return syncDir(s.dir)
	}
	return nil
}

// LoadState reads the named auxiliary state blob. A missing, torn or
// corrupt file reads as absent (ok=false, nil error): state blobs are
// caches a consumer can always rebuild.
func (s *Store) LoadState(name string) (payload []byte, ok bool, err error) {
	if err := checkStateName(name); err != nil {
		return nil, false, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, err := os.ReadFile(filepath.Join(s.dir, name+".state"))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("store: %w", err)
	}
	if len(b) < 12 || binary.LittleEndian.Uint32(b[0:4]) != stateMagic {
		return nil, false, nil
	}
	plen := binary.LittleEndian.Uint32(b[4:8])
	if int(plen) != len(b)-12 {
		return nil, false, nil
	}
	if crc32.ChecksumIEEE(b[12:]) != binary.LittleEndian.Uint32(b[8:12]) {
		return nil, false, nil
	}
	return b[12:], true, nil
}

func checkStateName(name string) error {
	if name == "" {
		return errors.New("store: empty state name")
	}
	for _, r := range name {
		if (r < 'a' || r > 'z') && (r < 'A' || r > 'Z') && (r < '0' || r > '9') && r != '-' && r != '_' {
			return fmt.Errorf("store: state name %q: use letters, digits, - and _", name)
		}
	}
	return nil
}

// Close releases the log handle. Further operations fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}

// syncDir fsyncs a directory so renames and creations in it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: syncing %s: %w", dir, err)
	}
	return nil
}
