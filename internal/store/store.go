// Package store is a durable, versioned snapshot store: an append-only,
// checksummed record log on disk, one directory per deployment site.
//
// # On-disk format
//
// The log file (snapshots.log) is a sequence of records:
//
//	offset  size  field
//	0       4     magic: "iUPS" (full record, little-endian 0x53505569)
//	              or "iUPD" (delta record, little-endian 0x44505569)
//	4       8     version (uint64 LE, strictly increasing within the log)
//	12      4     payload length (uint32 LE)
//	16      4     CRC32 (IEEE) over bytes [4,16) + payload
//	20      n     payload
//
// A full record's payload is the complete snapshot, opaque to the store.
// A delta record's payload encodes only the chunks (columns, for the
// fingerprint use) that changed versus the immediately preceding record:
//
//	offset  size       field
//	0       8          base version (uint64 LE; must equal the
//	                   preceding record's version)
//	8       4          materialized payload length F (uint32 LE)
//	12      4          header length H (uint32 LE)
//	16      4          chunk size S (uint32 LE, > 0; F = H + k*S)
//	20      4          changed chunk count C (uint32 LE)
//	24      H          the new leading header bytes
//	24+H    C*(4+S)    changed chunks, ascending: chunk index (uint32
//	                   LE) followed by the chunk's S bytes
//
// At and Latest materialize a delta record by resolving its chain back
// to the nearest full record and replaying the deltas in order; callers
// always see the complete payload, whichever kind is on disk. Append
// always writes a full record; AppendDelta diffs the new payload
// against the previous record under a caller-supplied chunk Layout and
// writes whichever kind is smaller — a delta is only written when the
// chain stays within Options.MaxChain records of the base full record
// and the delta is at most half the full payload, so chains stay short
// and a bounded number of reads materializes any version.
//
// Appends write one record with a single write(2) followed by fsync, so
// a crash leaves at most one torn record at the tail. Open scans the log
// front to back, verifying magic, length bounds, CRC, version
// monotonicity and — for delta records — the full structural invariants
// (base version continuity, chunk bounds, exact length) per record; the
// first record that fails any check ends the scan and the file is
// truncated back to the last good record — corruption (a torn tail, a
// flipped bit) costs the corrupted suffix, never the store. Because a
// delta is only valid over its predecessor, truncating a chain's base
// automatically drops the dependent deltas with it.
//
// Compaction (retention) rewrites the retained suffix of records to a
// temp file in the same directory, fsyncs it, and atomically renames it
// over the log, so readers of the directory never observe a partially
// compacted log. When the retained suffix would start with a delta
// record (its base about to be dropped), compaction rebases: the first
// retained version is materialized and rewritten as a fresh full
// record, and the deltas behind it continue to resolve against it.
//
// Small auxiliary state blobs (e.g. a drift monitor's calibrated
// baseline) are stored next to the log as <name>.state files, each a
// single checksummed record replaced atomically via temp-file+rename; a
// corrupt or missing state file reads as absent, never as an error.
package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"sync"
)

const (
	recordMagic = 0x53505569 // "iUPS" little-endian: full snapshot record
	deltaMagic  = 0x44505569 // "iUPD" little-endian: changed-chunks delta record
	stateMagic  = 0x54535569 // "iUST" little-endian
	headerSize  = 20
	// deltaHeaderSize is the fixed prefix of a delta payload: base
	// version, materialized length, header length, chunk size, count.
	deltaHeaderSize = 24
	// maxPayload bounds a single record (1 GiB); a length field beyond it
	// is treated as corruption rather than attempted as an allocation.
	maxPayload = 1 << 30
	// defaultMaxChain bounds how many delta records may follow a full
	// record when Options.MaxChain is zero.
	defaultMaxChain = 16

	logName = "snapshots.log"
)

// ErrEmpty is returned by Latest on a store with no records.
var ErrEmpty = errors.New("store: no snapshots")

// Kind distinguishes how a record is encoded on disk. Either way, reads
// return the complete materialized payload.
type Kind uint8

const (
	// KindFull is a complete snapshot payload.
	KindFull Kind = iota
	// KindDelta encodes only the chunks changed versus the preceding
	// record.
	KindDelta
)

// String returns "full" or "delta".
func (k Kind) String() string {
	if k == KindDelta {
		return "delta"
	}
	return "full"
}

// Layout tells AppendDelta how a payload tiles into diffable chunks: a
// fixed HeaderLen-byte prefix followed by equal ChunkSize-byte chunks
// (for fingerprint snapshots, one chunk per column). The layout must
// tile the payload exactly.
type Layout struct {
	HeaderLen int
	ChunkSize int
}

// Options configures a Store.
type Options struct {
	// Retain keeps only the newest Retain versions; 0 keeps every
	// version forever. Retention is enforced by compaction, triggered
	// automatically once the log holds 2*Retain records (amortizing the
	// rewrite) and on demand via Compact.
	Retain int
	// NoSync skips fsync after writes. Only for tests and benchmarks
	// that measure the in-memory path; durability requires the default.
	NoSync bool
	// MaxChain bounds how many consecutive delta records AppendDelta
	// may stack on one full record before forcing a full record (so
	// materializing any version reads at most MaxChain+1 records).
	// 0 selects the default (16); negative disables delta records —
	// AppendDelta then always writes full records. Recovery accepts
	// whatever chain lengths are already on disk regardless.
	MaxChain int
}

type indexEntry struct {
	version uint64
	off     int64 // record start (header) offset in the log
	plen    uint32
	kind    Kind
	mlen    uint32 // materialized payload length (== plen for full records)
}

// RecordInfo describes one retained record as it sits on disk.
type RecordInfo struct {
	Version uint64
	Kind    Kind
	// Bytes is the on-disk record size, the 20-byte header included.
	Bytes int64
}

// Store is an open snapshot store directory. All methods are safe for
// concurrent use: appends and compactions are serialized, reads run
// concurrently against the immutable written prefix.
type Store struct {
	b    Backend
	opts Options

	mu   sync.RWMutex
	f    File
	size int64
	idx  []indexEntry
	// last caches the newest record's materialized payload so
	// AppendDelta can diff without re-reading the chain. nil after Open;
	// populated lazily on the first delta-eligible append and kept
	// current by every append.
	last []byte
	// layout remembers the most recent AppendDelta layout so compaction
	// can re-delta the retained suffix with the same chunking.
	layout   Layout
	layoutOK bool
	// compactions counts log rewrites that actually dropped history
	// this store life (manual Compact and the automatic post-append
	// policy alike); no-op calls don't count.
	compactions uint64
}

// Open opens (creating if needed) the store directory and recovers the
// record index from the log, truncating any corrupted suffix back to
// the last good record.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return OpenBackend(NewDir(dir), opts)
}

// OpenBackend opens the store inside an arbitrary Backend namespace and
// recovers the record index exactly as Open does for a directory. The
// backend may hold prior store content (reopening over the same backend
// is a restart).
func OpenBackend(b Backend, opts Options) (*Store, error) {
	f, err := b.Open(logName)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{b: b, opts: opts, f: f}
	if err := s.recover(); err != nil {
		f.Close()
		return nil, err
	}
	if !opts.NoSync {
		// Persist the namespace entry of a freshly created log.
		if err := b.Sync(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return s, nil
}

// maxChain resolves the configured delta chain bound.
func (s *Store) maxChain() int {
	switch {
	case s.opts.MaxChain > 0:
		return s.opts.MaxChain
	case s.opts.MaxChain < 0:
		return 0
	default:
		return defaultMaxChain
	}
}

// recover scans the log, building the index from the longest valid
// record prefix and truncating everything after it.
func (s *Store) recover() error {
	fileSize, err := s.f.Size()
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	var (
		off  int64
		hdr  [headerSize]byte
		last uint64
	)
	for off+headerSize <= fileSize {
		if _, err := s.f.ReadAt(hdr[:], off); err != nil {
			break
		}
		magic := binary.LittleEndian.Uint32(hdr[0:4])
		version := binary.LittleEndian.Uint64(hdr[4:12])
		plen := binary.LittleEndian.Uint32(hdr[12:16])
		sum := binary.LittleEndian.Uint32(hdr[16:20])
		if (magic != recordMagic && magic != deltaMagic) || plen > maxPayload ||
			off+headerSize+int64(plen) > fileSize || version <= last {
			break
		}
		payload := make([]byte, plen)
		if _, err := s.f.ReadAt(payload, off+headerSize); err != nil {
			break
		}
		h := crc32.NewIEEE()
		h.Write(hdr[4:16])
		h.Write(payload)
		if h.Sum32() != sum {
			break
		}
		kind, mlen := KindFull, plen
		if magic == deltaMagic {
			// A delta is only valid directly over the preceding record:
			// structural damage — or a chain whose base was lost — ends
			// the good prefix here.
			if len(s.idx) == 0 {
				break
			}
			prev := s.idx[len(s.idx)-1]
			if !validDelta(payload, prev.version, prev.mlen) {
				break
			}
			kind, mlen = KindDelta, prev.mlen
		}
		s.idx = append(s.idx, indexEntry{version: version, off: off, plen: plen, kind: kind, mlen: mlen})
		last = version
		off += headerSize + int64(plen)
	}
	if off < fileSize {
		if err := s.f.Truncate(off); err != nil {
			return fmt.Errorf("store: truncating corrupted tail: %w", err)
		}
		if !s.opts.NoSync {
			if err := s.f.Sync(); err != nil {
				return fmt.Errorf("store: %w", err)
			}
		}
	}
	s.size = off
	return nil
}

// validDelta checks every structural invariant of a delta payload
// against its expected base: version continuity, exact length, chunk
// tiling, and strictly ascending in-range chunk indices. A payload that
// passes is guaranteed to materialize without bounds errors.
func validDelta(payload []byte, baseVersion uint64, baseLen uint32) bool {
	if len(payload) < deltaHeaderSize {
		return false
	}
	base := binary.LittleEndian.Uint64(payload[0:8])
	full := binary.LittleEndian.Uint32(payload[8:12])
	hlen := binary.LittleEndian.Uint32(payload[12:16])
	chunk := binary.LittleEndian.Uint32(payload[16:20])
	count := binary.LittleEndian.Uint32(payload[20:24])
	if base != baseVersion || full != baseLen || chunk == 0 || hlen > full {
		return false
	}
	rest := full - hlen
	if rest%chunk != 0 {
		return false
	}
	nchunks := rest / chunk
	if count > nchunks {
		return false
	}
	entry := int64(4) + int64(chunk)
	if int64(len(payload)) != deltaHeaderSize+int64(hlen)+int64(count)*entry {
		return false
	}
	prev := int64(-1)
	for c := int64(0); c < int64(count); c++ {
		at := deltaHeaderSize + int64(hlen) + c*entry
		k := int64(binary.LittleEndian.Uint32(payload[at:]))
		if k <= prev || k >= int64(nchunks) {
			return false
		}
		prev = k
	}
	return true
}

// applyDelta patches dst (the base's materialized payload, len == the
// delta's full length) in place. The payload must have passed validDelta.
func applyDelta(dst, payload []byte) {
	hlen := int(binary.LittleEndian.Uint32(payload[12:16]))
	chunk := int(binary.LittleEndian.Uint32(payload[16:20]))
	count := int(binary.LittleEndian.Uint32(payload[20:24]))
	copy(dst[:hlen], payload[deltaHeaderSize:deltaHeaderSize+hlen])
	p := deltaHeaderSize + hlen
	for c := 0; c < count; c++ {
		k := int(binary.LittleEndian.Uint32(payload[p:]))
		copy(dst[hlen+k*chunk:hlen+(k+1)*chunk], payload[p+4:p+4+chunk])
		p += 4 + chunk
	}
}

// Dir returns the store directory (the backend's Root; a placeholder
// for non-directory backends).
func (s *Store) Dir() string { return s.b.Root() }

// frameRecord builds one complete on-disk record: header, payload, CRC.
func frameRecord(magic uint32, version uint64, payload []byte) []byte {
	rec := make([]byte, headerSize+len(payload))
	binary.LittleEndian.PutUint32(rec[0:4], magic)
	binary.LittleEndian.PutUint64(rec[4:12], version)
	binary.LittleEndian.PutUint32(rec[12:16], uint32(len(payload)))
	copy(rec[headerSize:], payload)
	h := crc32.NewIEEE()
	h.Write(rec[4:16])
	h.Write(rec[headerSize:])
	binary.LittleEndian.PutUint32(rec[16:20], h.Sum32())
	return rec
}

// writeRecordLocked durably appends one framed record and indexes it.
// e.off is filled in here. s.mu must be held.
func (s *Store) writeRecordLocked(rec []byte, e indexEntry) error {
	if _, err := s.f.WriteAt(rec, s.size); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if !s.opts.NoSync {
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	e.off = s.size
	s.idx = append(s.idx, e)
	s.size += int64(len(rec))
	return nil
}

// appendChecksLocked validates the common append preconditions.
func (s *Store) appendChecksLocked(version uint64) error {
	if s.f == nil {
		return errors.New("store: closed")
	}
	if last := s.lastVersionLocked(); version <= last {
		return fmt.Errorf("store: version %d is not after the latest stored version %d", version, last)
	}
	return nil
}

// Append durably writes one full record. version must be strictly
// greater than the last stored version (the store never rewrites
// history). The record is on disk (written and fsynced) when Append
// returns.
func (s *Store) Append(version uint64, payload []byte) error {
	if len(payload) > maxPayload {
		return fmt.Errorf("store: payload of %d bytes exceeds the %d-byte record bound", len(payload), maxPayload)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.appendChecksLocked(version); err != nil {
		return err
	}
	err := s.writeRecordLocked(frameRecord(recordMagic, version, payload),
		indexEntry{version: version, plen: uint32(len(payload)), kind: KindFull, mlen: uint32(len(payload))})
	if err != nil {
		return err
	}
	s.cacheLastLocked(payload)
	s.maybeCompactLocked()
	return nil
}

// cacheLastLocked keeps s.last current with the newest appended payload
// so the next AppendDelta can diff in memory. With delta records
// disabled the cache would never be read, so skip the copy (and avoid
// pinning a payload-sized buffer for the store's lifetime).
func (s *Store) cacheLastLocked(payload []byte) {
	if s.maxChain() > 0 {
		s.last = append(s.last[:0], payload...)
	}
}

// AppendDelta durably writes the payload as a delta record against the
// previous retained version when that is cheaper, and as a full record
// otherwise: on the first record, when delta records are disabled, when
// the chain behind the tail has reached MaxChain, when the previous
// payload has a different length (so the layout cannot line up), or
// when the encoded delta would exceed half the full payload. Either
// way the caller's payload is what later reads return; the returned
// Kind reports what hit the disk.
func (s *Store) AppendDelta(version uint64, payload []byte, layout Layout) (Kind, error) {
	if len(payload) > maxPayload {
		return KindFull, fmt.Errorf("store: payload of %d bytes exceeds the %d-byte record bound", len(payload), maxPayload)
	}
	if layout.ChunkSize <= 0 || layout.HeaderLen < 0 || layout.HeaderLen > len(payload) ||
		(len(payload)-layout.HeaderLen)%layout.ChunkSize != 0 {
		return KindFull, fmt.Errorf("store: layout %+v does not tile a %d-byte payload", layout, len(payload))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.appendChecksLocked(version); err != nil {
		return KindFull, err
	}
	s.layout, s.layoutOK = layout, true
	kind := KindFull
	rec := s.encodeDeltaLocked(version, payload, layout)
	if rec != nil {
		kind = KindDelta
	} else {
		rec = frameRecord(recordMagic, version, payload)
	}
	err := s.writeRecordLocked(rec, indexEntry{
		version: version,
		plen:    uint32(len(rec) - headerSize),
		kind:    kind,
		mlen:    uint32(len(payload)),
	})
	if err != nil {
		return KindFull, err
	}
	s.cacheLastLocked(payload)
	s.maybeCompactLocked()
	return kind, nil
}

// encodeDeltaLocked diffs payload against the newest record and returns
// a framed delta record, or nil when a full record must be written
// instead (no predecessor, deltas disabled, chain at its bound, length
// mismatch, stale cache unrecoverable, or the delta too large).
func (s *Store) encodeDeltaLocked(version uint64, payload []byte, layout Layout) []byte {
	max := s.maxChain()
	if max <= 0 || len(s.idx) == 0 {
		return nil
	}
	chain := 0
	for i := len(s.idx) - 1; i >= 0 && s.idx[i].kind == KindDelta; i-- {
		chain++
	}
	if chain >= max {
		return nil
	}
	if s.last == nil {
		// First delta-eligible append of this store life: materialize
		// the predecessor once. If its bytes have rotted since Open, a
		// full record keeps the append safe.
		prev, err := s.readChainLocked(len(s.idx) - 1)
		if err != nil {
			return nil
		}
		s.last = prev
	}
	return encodeDeltaRecord(version, payload, s.last, s.idx[len(s.idx)-1].version, layout)
}

// encodeDeltaRecord diffs payload against prev (the materialized payload
// of baseVersion) under the layout and returns a complete framed delta
// record, or nil when a delta is not worthwhile: the lengths differ, the
// layout does not tile the payload, or the encoded delta would exceed
// half the full payload.
func encodeDeltaRecord(version uint64, payload, prev []byte, baseVersion uint64, layout Layout) []byte {
	hlen, chunk := layout.HeaderLen, layout.ChunkSize
	if len(prev) != len(payload) || chunk <= 0 || hlen < 0 || hlen > len(payload) ||
		(len(payload)-hlen)%chunk != 0 {
		return nil
	}
	nchunks := (len(payload) - hlen) / chunk
	changed := make([]int, 0, nchunks)
	for k := 0; k < nchunks; k++ {
		if !bytes.Equal(payload[hlen+k*chunk:hlen+(k+1)*chunk], prev[hlen+k*chunk:hlen+(k+1)*chunk]) {
			changed = append(changed, k)
		}
	}
	deltaLen := deltaHeaderSize + hlen + len(changed)*(4+chunk)
	if 2*deltaLen > len(payload) {
		return nil
	}
	rec := make([]byte, headerSize+deltaLen)
	buf := rec[headerSize:]
	binary.LittleEndian.PutUint64(buf[0:8], baseVersion)
	binary.LittleEndian.PutUint32(buf[8:12], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[12:16], uint32(hlen))
	binary.LittleEndian.PutUint32(buf[16:20], uint32(chunk))
	binary.LittleEndian.PutUint32(buf[20:24], uint32(len(changed)))
	copy(buf[deltaHeaderSize:], payload[:hlen])
	p := deltaHeaderSize + hlen
	for _, k := range changed {
		binary.LittleEndian.PutUint32(buf[p:], uint32(k))
		copy(buf[p+4:], payload[hlen+k*chunk:hlen+(k+1)*chunk])
		p += 4 + chunk
	}
	binary.LittleEndian.PutUint32(rec[0:4], deltaMagic)
	binary.LittleEndian.PutUint64(rec[4:12], version)
	binary.LittleEndian.PutUint32(rec[12:16], uint32(deltaLen))
	h := crc32.NewIEEE()
	h.Write(rec[4:16])
	h.Write(buf)
	binary.LittleEndian.PutUint32(rec[16:20], h.Sum32())
	return rec
}

// maybeCompactLocked runs the auto-triggered retention compaction.
func (s *Store) maybeCompactLocked() {
	if s.opts.Retain > 0 && len(s.idx) >= 2*s.opts.Retain {
		// Best-effort: the record just written is already durable, and a
		// failed append would wedge the caller's version sequence (the
		// store holds version N+1 but the caller thinks N is current, so
		// every retry is rejected as non-monotonic). A compaction failure
		// only delays retention — the log grows, appends keep working,
		// the next append or an explicit Compact retries, and Compact
		// surfaces the error to callers who want it.
		_ = s.compactLocked()
	}
}

// Latest returns the newest record's materialized payload, or ErrEmpty.
func (s *Store) Latest() (version uint64, payload []byte, err error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.idx) == 0 {
		return 0, nil, ErrEmpty
	}
	payload, err = s.readChainLocked(len(s.idx) - 1)
	return s.idx[len(s.idx)-1].version, payload, err
}

// At returns the materialized record at the given version; versions that
// were never stored or have been compacted away are an error.
func (s *Store) At(version uint64) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for i, e := range s.idx {
		if e.version == version {
			return s.readChainLocked(i)
		}
	}
	if len(s.idx) == 0 {
		return nil, fmt.Errorf("store: version %d not found (store is empty)", version)
	}
	return nil, fmt.Errorf("store: version %d not retained (have %d..%d)",
		version, s.idx[0].version, s.idx[len(s.idx)-1].version)
}

// readChainLocked materializes the record at index position i: a full
// record is read directly; a delta record resolves back to the nearest
// full record and replays the deltas forward. Every record touched is
// CRC-rechecked and every delta structurally re-validated, so bytes
// that rot after Open are caught here.
func (s *Store) readChainLocked(i int) ([]byte, error) {
	base := i
	for base >= 0 && s.idx[base].kind == KindDelta {
		base--
	}
	if base < 0 {
		// Recovery never admits a delta without its base, so this is
		// index corruption, not a reachable log state.
		return nil, fmt.Errorf("store: version %d has no base record", s.idx[i].version)
	}
	cur, err := s.readLocked(s.idx[base])
	if err != nil {
		return nil, err
	}
	for k := base + 1; k <= i; k++ {
		dp, err := s.readLocked(s.idx[k])
		if err != nil {
			return nil, err
		}
		if !validDelta(dp, s.idx[k-1].version, uint32(len(cur))) {
			return nil, fmt.Errorf("store: version %d delta record no longer matches its base", s.idx[k].version)
		}
		applyDelta(cur, dp)
	}
	return cur, nil
}

// readLocked reads and re-verifies one record's raw payload (a delta
// record's payload is the delta encoding, not the materialized
// snapshot — use readChainLocked for that). Re-checking the CRC on
// every read catches bytes that rotted after Open.
func (s *Store) readLocked(e indexEntry) ([]byte, error) {
	if s.f == nil {
		return nil, errors.New("store: closed")
	}
	buf := make([]byte, headerSize+int64(e.plen))
	if _, err := s.f.ReadAt(buf, e.off); err != nil {
		return nil, fmt.Errorf("store: reading version %d: %w", e.version, err)
	}
	h := crc32.NewIEEE()
	h.Write(buf[4:16])
	h.Write(buf[headerSize:])
	if h.Sum32() != binary.LittleEndian.Uint32(buf[16:20]) {
		return nil, fmt.Errorf("store: version %d failed its checksum", e.version)
	}
	return buf[headerSize:], nil
}

// Versions returns the retained versions in ascending order.
func (s *Store) Versions() []uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]uint64, len(s.idx))
	for i, e := range s.idx {
		out[i] = e.version
	}
	return out
}

// Records returns, per retained version in ascending order, the record
// kind and its on-disk footprint — the observable cost of each durable
// publish.
func (s *Store) Records() []RecordInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]RecordInfo, len(s.idx))
	for i, e := range s.idx {
		out[i] = RecordInfo{Version: e.version, Kind: e.kind, Bytes: headerSize + int64(e.plen)}
	}
	return out
}

// LastVersion returns the newest stored version, 0 when empty.
func (s *Store) LastVersion() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.lastVersionLocked()
}

func (s *Store) lastVersionLocked() uint64 {
	if len(s.idx) == 0 {
		return 0
	}
	return s.idx[len(s.idx)-1].version
}

// Compactions returns how many times this store life rewrote the log to
// drop history (see Compact and Options.Retain).
func (s *Store) Compactions() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.compactions
}

// Compact applies the retention policy now, rewriting the log to hold
// only the newest Retain versions. A no-op when Retain is 0 or nothing
// exceeds it.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return errors.New("store: closed")
	}
	return s.compactLocked()
}

// compactLocked rewrites the retained suffix to a temp file and renames
// it over the log. The suffix is re-encoded against its new history, not
// copied verbatim: the first retained version is always written as a
// full record (its base may be about to drop), and every later version
// is re-deltaed against its new predecessor under the usual chain-bound
// and half-size rules — so a full record that was only forced by a
// since-dropped chain shrinks back to a delta, and post-compaction disk
// stays proportional to churn rather than to compaction history. On any
// error the original log and index are kept.
func (s *Store) compactLocked() error {
	if s.opts.Retain <= 0 || len(s.idx) <= s.opts.Retain {
		return nil
	}
	first := len(s.idx) - s.opts.Retain
	keep := s.idx[first:]
	layout, layoutOK := s.compactionLayoutLocked(keep)
	tmpName := logName + ".tmp"
	tmp, err := s.b.Create(tmpName)
	if err != nil {
		return fmt.Errorf("store: compacting: %w", err)
	}
	fail := func(err error) error {
		tmp.Close()
		s.b.Remove(tmpName)
		return fmt.Errorf("store: compacting: %w", err)
	}
	newIdx := make([]indexEntry, 0, len(keep))
	var off int64
	var prev []byte
	var prevVersion uint64
	chain := 0
	for i, e := range keep {
		// Materialize this version: the first via the existing chain
		// resolution, later ones by advancing the running payload (a
		// delta patches a copy of its predecessor, a full replaces it).
		var cur []byte
		if i == 0 {
			cur, err = s.readChainLocked(first)
			if err != nil {
				return fail(err)
			}
		} else {
			raw, err := s.readLocked(e)
			if err != nil {
				return fail(err)
			}
			if e.kind == KindDelta {
				if !validDelta(raw, prevVersion, uint32(len(prev))) {
					return fail(fmt.Errorf("version %d delta record no longer matches its base", e.version))
				}
				cur = append([]byte(nil), prev...)
				applyDelta(cur, raw)
			} else {
				cur = raw
			}
		}
		// Re-encode: first record full, the rest delta when the layout is
		// known, the chain is within bound and the delta is worthwhile.
		var rec []byte
		kind := KindFull
		if i > 0 && layoutOK && chain < s.maxChain() {
			rec = encodeDeltaRecord(e.version, cur, prev, prevVersion, layout)
		}
		if rec != nil {
			kind = KindDelta
			chain++
		} else {
			rec = frameRecord(recordMagic, e.version, cur)
			chain = 0
		}
		if _, err := tmp.WriteAt(rec, off); err != nil {
			return fail(err)
		}
		newIdx = append(newIdx, indexEntry{
			version: e.version, off: off, plen: uint32(len(rec) - headerSize),
			kind: kind, mlen: uint32(len(cur)),
		})
		off += int64(len(rec))
		prev, prevVersion = cur, e.version
	}
	if !s.opts.NoSync {
		if err := tmp.Sync(); err != nil {
			return fail(err)
		}
	}
	if err := s.b.Rename(tmpName, logName); err != nil {
		return fail(err)
	}
	// The rename took effect: tmp is now the log. Swap handles.
	s.f.Close()
	s.f = tmp
	s.idx = newIdx
	s.size = off
	s.compactions++
	if !s.opts.NoSync {
		if err := s.b.Sync(); err != nil {
			return err
		}
	}
	return nil
}

// compactionLayoutLocked resolves the chunk layout compaction re-deltas
// with: the layout of the latest AppendDelta when one happened this
// store life, else the layout recorded inside a retained delta record
// (a delta payload states its own header length and chunk size). A
// store that never saw a delta has nothing to re-delta — compaction
// then writes full records only.
func (s *Store) compactionLayoutLocked(keep []indexEntry) (Layout, bool) {
	if s.layoutOK {
		return s.layout, true
	}
	for _, e := range keep {
		if e.kind != KindDelta {
			continue
		}
		raw, err := s.readLocked(e)
		if err != nil || len(raw) < deltaHeaderSize {
			continue
		}
		return Layout{
			HeaderLen: int(binary.LittleEndian.Uint32(raw[12:16])),
			ChunkSize: int(binary.LittleEndian.Uint32(raw[16:20])),
		}, true
	}
	return Layout{}, false
}

// SaveState atomically replaces the named auxiliary state blob
// (temp-file write + fsync + rename). name must be a simple identifier.
func (s *Store) SaveState(name string, payload []byte) error {
	if err := checkStateName(name); err != nil {
		return err
	}
	if len(payload) > maxPayload {
		return fmt.Errorf("store: state %q of %d bytes exceeds the %d-byte bound", name, len(payload), maxPayload)
	}
	rec := make([]byte, 12+len(payload))
	binary.LittleEndian.PutUint32(rec[0:4], stateMagic)
	binary.LittleEndian.PutUint32(rec[4:8], uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[8:12], crc32.ChecksumIEEE(payload))
	copy(rec[12:], payload)

	s.mu.Lock()
	defer s.mu.Unlock()
	stateName := name + ".state"
	tmpName := stateName + ".tmp"
	tmp, err := s.b.Create(tmpName)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := tmp.WriteAt(rec, 0); err != nil {
		tmp.Close()
		s.b.Remove(tmpName)
		return fmt.Errorf("store: %w", err)
	}
	if !s.opts.NoSync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			s.b.Remove(tmpName)
			return fmt.Errorf("store: %w", err)
		}
	}
	if err := tmp.Close(); err != nil {
		s.b.Remove(tmpName)
		return fmt.Errorf("store: %w", err)
	}
	if err := s.b.Rename(tmpName, stateName); err != nil {
		s.b.Remove(tmpName)
		return fmt.Errorf("store: %w", err)
	}
	if !s.opts.NoSync {
		return s.b.Sync()
	}
	return nil
}

// LoadState reads the named auxiliary state blob. A missing, torn or
// corrupt file reads as absent (ok=false, nil error): state blobs are
// caches a consumer can always rebuild.
func (s *Store) LoadState(name string) (payload []byte, ok bool, err error) {
	if err := checkStateName(name); err != nil {
		return nil, false, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, err := s.b.ReadFile(name + ".state")
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("store: %w", err)
	}
	if len(b) < 12 || binary.LittleEndian.Uint32(b[0:4]) != stateMagic {
		return nil, false, nil
	}
	plen := binary.LittleEndian.Uint32(b[4:8])
	if int(plen) != len(b)-12 {
		return nil, false, nil
	}
	if crc32.ChecksumIEEE(b[12:]) != binary.LittleEndian.Uint32(b[8:12]) {
		return nil, false, nil
	}
	return b[12:], true, nil
}

func checkStateName(name string) error {
	if name == "" {
		return errors.New("store: empty state name")
	}
	for _, r := range name {
		if (r < 'a' || r > 'z') && (r < 'A' || r > 'Z') && (r < '0' || r > '9') && r != '-' && r != '_' {
			return fmt.Errorf("store: state name %q: use letters, digits, - and _", name)
		}
	}
	return nil
}

// Close releases the log handle. Further operations fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	s.last = nil
	return err
}
