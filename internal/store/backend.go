package store

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// File is one open log or state file inside a Backend's namespace. The
// store only ever does positioned reads and writes plus the durability
// calls, so the surface is deliberately small; a File must allow
// concurrent ReadAt calls (the store serves readers under a shared
// lock).
type File interface {
	io.ReaderAt
	io.WriterAt
	// Truncate cuts (or zero-extends) the file to exactly size bytes.
	Truncate(size int64) error
	// Size reports the current length in bytes.
	Size() (int64, error)
	// Sync makes every completed write durable before returning. The
	// fsync-before-swap contract hangs off this call: a record is Synced
	// before the in-RAM snapshot that references it becomes visible.
	Sync() error
	Close() error
}

// Backend is the storage namespace a Store lives in: a flat set of named
// files (the record log, its compaction temp file, and <name>.state
// blobs). The directory backend is the durable default; NewMemory backs
// the same contract with RAM for tests and ephemeral sites.
//
// A Backend must guarantee, for the store's durability story to hold:
//
//   - Open is open-or-create; Create is create-or-truncate.
//   - Rename atomically replaces newname with oldname's content. Open
//     Files keep addressing the content they were opened on, exactly as
//     an inode survives a rename over its directory entry — compaction
//     renames the temp log over the live one while the old handle still
//     has readers.
//   - ReadFile on a missing name returns an error satisfying
//     errors.Is(err, fs.ErrNotExist).
//   - Sync makes the namespace itself durable (the directory fsync that
//     persists creations and renames). After File.Sync + Rename +
//     Backend.Sync, the rename survives a crash.
type Backend interface {
	Open(name string) (File, error)
	Create(name string) (File, error)
	ReadFile(name string) ([]byte, error)
	Rename(oldname, newname string) error
	Remove(name string) error
	// List returns the names in the namespace, sorted.
	List() ([]string, error)
	Sync() error
	// Root names the namespace for diagnostics: the directory path, or a
	// placeholder for non-directory backends.
	Root() string
}

// dirBackend is the durable default: a local directory of *os.File
// handles, with fsync for file durability and a directory fsync for
// namespace durability.
type dirBackend struct{ dir string }

// NewDir returns the directory Backend rooted at dir. The directory must
// already exist (Open creates it before building the backend).
func NewDir(dir string) Backend { return dirBackend{dir: dir} }

type dirFile struct{ *os.File }

func (f dirFile) Size() (int64, error) {
	info, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return info.Size(), nil
}

func (b dirBackend) Open(name string) (File, error) {
	f, err := os.OpenFile(filepath.Join(b.dir, name), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	return dirFile{f}, nil
}

func (b dirBackend) Create(name string) (File, error) {
	f, err := os.OpenFile(filepath.Join(b.dir, name), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return dirFile{f}, nil
}

func (b dirBackend) ReadFile(name string) ([]byte, error) {
	return os.ReadFile(filepath.Join(b.dir, name))
}

func (b dirBackend) Rename(oldname, newname string) error {
	return os.Rename(filepath.Join(b.dir, oldname), filepath.Join(b.dir, newname))
}

func (b dirBackend) Remove(name string) error {
	return os.Remove(filepath.Join(b.dir, name))
}

func (b dirBackend) List() ([]string, error) {
	entries, err := os.ReadDir(b.dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	return names, nil
}

func (b dirBackend) Sync() error {
	d, err := os.Open(b.dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: syncing %s: %w", b.dir, err)
	}
	return nil
}

func (b dirBackend) Root() string { return b.dir }

// memBackend keeps the namespace in RAM. It honors the full Backend
// contract — including inode-style rename semantics, where open handles
// keep addressing the content object they were opened on — so the store
// runs byte-identically over it. The backend outlives any one Store:
// reopening a store over the same memBackend is the in-memory analogue
// of a process restart over the same directory.
type memBackend struct {
	mu    sync.Mutex
	files map[string]*memData
}

// NewMemory returns an empty in-memory Backend. Durability calls are
// accepted and do nothing; the content lives exactly as long as the
// Backend value.
func NewMemory() Backend {
	return &memBackend{files: make(map[string]*memData)}
}

// memData is the "inode": the content object handles address, shared by
// every open memFile for it and by the name table until a Rename or
// Create detaches it.
type memData struct {
	mu sync.RWMutex
	b  []byte
}

type memFile struct {
	d *memData

	mu     sync.Mutex
	closed bool
}

func (b *memBackend) Open(name string) (File, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	d, ok := b.files[name]
	if !ok {
		d = &memData{}
		b.files[name] = d
	}
	return &memFile{d: d}, nil
}

func (b *memBackend) Create(name string) (File, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	d, ok := b.files[name]
	if !ok {
		d = &memData{}
		b.files[name] = d
	} else {
		// O_TRUNC semantics: the existing inode shrinks in place.
		d.mu.Lock()
		d.b = d.b[:0]
		d.mu.Unlock()
	}
	return &memFile{d: d}, nil
}

func (b *memBackend) ReadFile(name string) ([]byte, error) {
	b.mu.Lock()
	d, ok := b.files[name]
	b.mu.Unlock()
	if !ok {
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	return append([]byte(nil), d.b...), nil
}

func (b *memBackend) Rename(oldname, newname string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	d, ok := b.files[oldname]
	if !ok {
		return &fs.PathError{Op: "rename", Path: oldname, Err: fs.ErrNotExist}
	}
	// The replaced inode (if any) stays readable through handles already
	// open on it, as on a real filesystem.
	b.files[newname] = d
	delete(b.files, oldname)
	return nil
}

func (b *memBackend) Remove(name string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.files[name]; !ok {
		return &fs.PathError{Op: "remove", Path: name, Err: fs.ErrNotExist}
	}
	delete(b.files, name)
	return nil
}

func (b *memBackend) List() ([]string, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	names := make([]string, 0, len(b.files))
	for name := range b.files {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

func (b *memBackend) Sync() error { return nil }

func (b *memBackend) Root() string { return "(memory)" }

func (f *memFile) checkOpen() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return fs.ErrClosed
	}
	return nil
}

func (f *memFile) ReadAt(p []byte, off int64) (int, error) {
	if err := f.checkOpen(); err != nil {
		return 0, err
	}
	if off < 0 {
		return 0, fmt.Errorf("store: negative read offset %d", off)
	}
	f.d.mu.RLock()
	defer f.d.mu.RUnlock()
	if off >= int64(len(f.d.b)) {
		return 0, io.EOF
	}
	n := copy(p, f.d.b[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *memFile) WriteAt(p []byte, off int64) (int, error) {
	if err := f.checkOpen(); err != nil {
		return 0, err
	}
	if off < 0 {
		return 0, fmt.Errorf("store: negative write offset %d", off)
	}
	f.d.mu.Lock()
	defer f.d.mu.Unlock()
	if end := off + int64(len(p)); end > int64(len(f.d.b)) {
		grown := make([]byte, end)
		copy(grown, f.d.b)
		f.d.b = grown
	}
	copy(f.d.b[off:], p)
	return len(p), nil
}

func (f *memFile) Truncate(size int64) error {
	if err := f.checkOpen(); err != nil {
		return err
	}
	if size < 0 {
		return fmt.Errorf("store: negative truncate size %d", size)
	}
	f.d.mu.Lock()
	defer f.d.mu.Unlock()
	if size <= int64(len(f.d.b)) {
		f.d.b = f.d.b[:size]
	} else {
		grown := make([]byte, size)
		copy(grown, f.d.b)
		f.d.b = grown
	}
	return nil
}

func (f *memFile) Size() (int64, error) {
	if err := f.checkOpen(); err != nil {
		return 0, err
	}
	f.d.mu.RLock()
	defer f.d.mu.RUnlock()
	return int64(len(f.d.b)), nil
}

func (f *memFile) Sync() error { return f.checkOpen() }

func (f *memFile) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return fs.ErrClosed
	}
	f.closed = true
	return nil
}
