package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
)

// This file turns the on-disk record log into a wire protocol. The frame
// format on the wire is exactly the on-disk record framing (20-byte
// magic/version/length/CRC header + payload, full or delta kind): a
// leader streams raw frames out of its log with RecordFramesFrom, a
// follower splits the byte stream back into frames with ReadFrame and
// applies them through a Replay, which re-runs the same CRC recheck and
// delta structural validation as Open recovery before mutating any
// state — a corrupt or torn frame is rejected without effect, so the
// follower can simply re-request from its last applied version.

// ErrCompacted is returned by RecordFramesFrom when the requested resume
// version precedes the compaction horizon (the oldest retained record):
// the records needed to continue that chain are gone, and the caller
// must re-bootstrap from the newest full record instead of retrying.
var ErrCompacted = errors.New("store: version precedes the compaction horizon")

// RecordFramesFrom returns the raw on-disk frames (header + payload,
// verbatim) of every retained record with version >= from, in log order.
//
// from == 0 requests a bootstrap: the stream starts at the newest full
// record, the earliest point from which a follower with no prior state
// can materialize the latest version (every later record's delta chain
// resolves against it). from > 0 resumes an existing follower — it must
// be the version after the follower's last applied record; a from below
// the compaction horizon returns ErrCompacted so the follower knows to
// re-bootstrap rather than wait for records that will never appear.
//
// An empty store, or a from beyond the newest version, returns no frames
// and no error: there is simply nothing to send yet.
func (s *Store) RecordFramesFrom(from uint64) ([][]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.f == nil {
		return nil, errors.New("store: closed")
	}
	if len(s.idx) == 0 {
		return nil, nil
	}
	start := 0
	if from == 0 {
		// Bootstrap: the newest full record. The log always retains at
		// least one (recovery and compaction both guarantee the first
		// record is full), so this search cannot fail.
		for i := len(s.idx) - 1; i >= 0; i-- {
			if s.idx[i].kind == KindFull {
				start = i
				break
			}
		}
	} else {
		if from < s.idx[0].version {
			return nil, fmt.Errorf("%w: requested %d, oldest retained %d", ErrCompacted, from, s.idx[0].version)
		}
		start = sort.Search(len(s.idx), func(i int) bool { return s.idx[i].version >= from })
		if start == len(s.idx) {
			return nil, nil
		}
	}
	frames := make([][]byte, 0, len(s.idx)-start)
	for _, e := range s.idx[start:] {
		frame, err := s.readFrameLocked(e)
		if err != nil {
			return nil, err
		}
		frames = append(frames, frame)
	}
	return frames, nil
}

// OldestVersion returns the compaction horizon — the oldest retained
// version — or 0 when the store is empty.
func (s *Store) OldestVersion() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.idx) == 0 {
		return 0
	}
	return s.idx[0].version
}

// readFrameLocked reads one record's complete frame (header included)
// and re-verifies its CRC, catching bytes that rotted after Open.
func (s *Store) readFrameLocked(e indexEntry) ([]byte, error) {
	if s.f == nil {
		return nil, errors.New("store: closed")
	}
	buf := make([]byte, headerSize+int64(e.plen))
	if _, err := s.f.ReadAt(buf, e.off); err != nil {
		return nil, fmt.Errorf("store: reading version %d: %w", e.version, err)
	}
	h := crc32.NewIEEE()
	h.Write(buf[4:16])
	h.Write(buf[headerSize:])
	if h.Sum32() != binary.LittleEndian.Uint32(buf[16:20]) {
		return nil, fmt.Errorf("store: version %d failed its checksum", e.version)
	}
	return buf, nil
}

// ReadFrame splits one record frame off a byte stream: the fixed header
// is read first, its length field bounds the payload read. A clean end
// of stream at a frame boundary returns io.EOF; a stream that ends
// mid-frame returns io.ErrUnexpectedEOF; a header that cannot begin a
// record (bad magic, oversized length) is an error before any payload
// is read. ReadFrame validates only enough to frame the stream — CRC
// and structural checks happen in Replay.Apply.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		// io.EOF here is a clean frame boundary; a partial header is
		// already io.ErrUnexpectedEOF, and transport errors pass through.
		return nil, err
	}
	magic := binary.LittleEndian.Uint32(hdr[0:4])
	plen := binary.LittleEndian.Uint32(hdr[12:16])
	if magic != recordMagic && magic != deltaMagic {
		return nil, fmt.Errorf("store: stream frame has unknown magic %#x", magic)
	}
	if plen > maxPayload {
		return nil, fmt.Errorf("store: stream frame length %d exceeds the %d-byte record bound", plen, maxPayload)
	}
	frame := make([]byte, headerSize+int(plen))
	copy(frame, hdr[:])
	if _, err := io.ReadFull(r, frame[headerSize:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return frame, nil
}

// Replay materializes a record stream on the follower side of
// replication: it holds the latest applied version and its materialized
// payload, and Apply advances it one frame at a time under exactly the
// validation Open recovery runs — CRC recheck, version monotonicity,
// and for delta frames the full structural check against the current
// base. A frame that fails any check is rejected with no state change,
// so the caller can re-request the same version after a transient
// corruption. The zero value is an empty replay that accepts only a
// full record first (a delta has no base to resolve against).
//
// A Replay is not safe for concurrent use; replication drives one from
// a single tailer goroutine.
type Replay struct {
	version uint64
	payload []byte
}

// Version returns the latest applied version, 0 before the first Apply.
func (r *Replay) Version() uint64 { return r.version }

// Payload returns the materialized payload of the latest applied
// version. The slice is reused by subsequent Applies — callers must
// copy what they keep (decoding into an owned structure counts).
func (r *Replay) Payload() []byte { return r.payload }

// Apply validates one frame and advances the replay. Full frames
// replace the materialized payload; delta frames must chain directly
// onto the current version and are patched in place. The returned Kind
// reports how the record was encoded on the wire.
func (r *Replay) Apply(frame []byte) (uint64, Kind, error) {
	if len(frame) < headerSize {
		return 0, KindFull, fmt.Errorf("store: frame of %d bytes is shorter than a record header", len(frame))
	}
	magic := binary.LittleEndian.Uint32(frame[0:4])
	version := binary.LittleEndian.Uint64(frame[4:12])
	plen := binary.LittleEndian.Uint32(frame[12:16])
	sum := binary.LittleEndian.Uint32(frame[16:20])
	if magic != recordMagic && magic != deltaMagic {
		return 0, KindFull, fmt.Errorf("store: frame has unknown magic %#x", magic)
	}
	if plen > maxPayload || int(plen) != len(frame)-headerSize {
		return 0, KindFull, fmt.Errorf("store: frame length field %d does not match the %d payload bytes", plen, len(frame)-headerSize)
	}
	payload := frame[headerSize:]
	h := crc32.NewIEEE()
	h.Write(frame[4:16])
	h.Write(payload)
	if h.Sum32() != sum {
		return 0, KindFull, fmt.Errorf("store: version %d frame failed its checksum", version)
	}
	if version <= r.version {
		return 0, KindFull, fmt.Errorf("store: version %d is not after the replayed version %d", version, r.version)
	}
	if magic == recordMagic {
		r.payload = append(r.payload[:0], payload...)
		r.version = version
		return version, KindFull, nil
	}
	if r.version == 0 {
		return 0, KindDelta, fmt.Errorf("store: version %d delta frame has no base to resolve against", version)
	}
	if !validDelta(payload, r.version, uint32(len(r.payload))) {
		return 0, KindDelta, fmt.Errorf("store: version %d delta frame does not chain onto version %d", version, r.version)
	}
	applyDelta(r.payload, payload)
	r.version = version
	return version, KindDelta, nil
}
