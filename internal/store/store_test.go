package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func open(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func payload(version uint64, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(version + uint64(i)*7)
	}
	return b
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	if _, _, err := s.Latest(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("Latest on empty store: %v, want ErrEmpty", err)
	}
	for v := uint64(1); v <= 5; v++ {
		if err := s.Append(v, payload(v, 100+int(v))); err != nil {
			t.Fatal(err)
		}
	}
	v, p, err := s.Latest()
	if err != nil || v != 5 || !bytes.Equal(p, payload(5, 105)) {
		t.Fatalf("Latest = v%d, err %v", v, err)
	}
	for v := uint64(1); v <= 5; v++ {
		p, err := s.At(v)
		if err != nil || !bytes.Equal(p, payload(v, 100+int(v))) {
			t.Fatalf("At(%d): err %v", v, err)
		}
	}
	if _, err := s.At(99); err == nil {
		t.Error("At(99) on a store without it should fail")
	}
	want := []uint64{1, 2, 3, 4, 5}
	got := s.Versions()
	if len(got) != len(want) {
		t.Fatalf("Versions = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Versions = %v, want %v", got, want)
		}
	}
	if s.LastVersion() != 5 {
		t.Errorf("LastVersion = %d", s.LastVersion())
	}

	// Reopen: same contents survive the restart.
	s.Close()
	s2 := open(t, dir, Options{})
	if got := s2.Versions(); len(got) != 5 || got[4] != 5 {
		t.Fatalf("reopened Versions = %v", got)
	}
	p, err = s2.At(3)
	if err != nil || !bytes.Equal(p, payload(3, 103)) {
		t.Fatalf("reopened At(3): err %v", err)
	}
}

func TestStoreVersionMonotonicity(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	if err := s.Append(2, payload(2, 10)); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(2, payload(2, 10)); err == nil {
		t.Error("re-appending the same version should fail")
	}
	if err := s.Append(1, payload(1, 10)); err == nil {
		t.Error("appending a lower version should fail")
	}
	// Gaps are fine (e.g. after compaction elsewhere).
	if err := s.Append(10, payload(10, 10)); err != nil {
		t.Fatal(err)
	}
}

func TestStoreTruncatedTailRecovery(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	for v := uint64(1); v <= 3; v++ {
		if err := s.Append(v, payload(v, 64)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	logPath := filepath.Join(dir, logName)
	info, err := os.Stat(logPath)
	if err != nil {
		t.Fatal(err)
	}
	// Cut the tail record short at several depths: mid-payload,
	// header-only, and a single stray byte.
	for _, cut := range []int64{10, int64(64), headerSize + 63} {
		if err := os.Truncate(logPath, info.Size()-cut); err != nil {
			t.Fatal(err)
		}
		s2 := open(t, dir, Options{})
		got := s2.Versions()
		if len(got) != 2 || got[0] != 1 || got[1] != 2 {
			t.Fatalf("after cutting %d bytes: Versions = %v, want [1 2]", cut, got)
		}
		if v, p, err := s2.Latest(); err != nil || v != 2 || !bytes.Equal(p, payload(2, 64)) {
			t.Fatalf("after cutting %d bytes: Latest = v%d, err %v", cut, v, err)
		}
		// The store must be appendable again after recovery.
		if err := s2.Append(3, payload(3, 64)); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		s2.Close()
		info, err = os.Stat(logPath)
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestStoreFlippedByteRecovery(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	var offsets []int64
	for v := uint64(1); v <= 3; v++ {
		offsets = append(offsets, s.size)
		if err := s.Append(v, payload(v, 128)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	logPath := filepath.Join(dir, logName)

	flip := func(off int64) {
		t.Helper()
		b, err := os.ReadFile(logPath)
		if err != nil {
			t.Fatal(err)
		}
		b[off] ^= 0x40
		if err := os.WriteFile(logPath, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// A flipped payload byte in the tail record: recover to version 2.
	flip(offsets[2] + headerSize + 17)
	s2 := open(t, dir, Options{})
	if got := s2.Versions(); len(got) != 2 || got[1] != 2 {
		t.Fatalf("after tail payload flip: Versions = %v, want [1 2]", got)
	}
	s2.Close()

	// A flipped CRC byte in what is now the tail record: recover to v1.
	flip(offsets[1] + 16)
	s3 := open(t, dir, Options{})
	if got := s3.Versions(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("after CRC flip: Versions = %v, want [1]", got)
	}
	if v, p, err := s3.Latest(); err != nil || v != 1 || !bytes.Equal(p, payload(1, 128)) {
		t.Fatalf("after CRC flip: Latest = v%d, err %v", v, err)
	}
	s3.Close()

	// A flip in the first record's header leaves an empty (but usable)
	// store: recovery keeps the good prefix, which is empty.
	flip(2)
	s4 := open(t, dir, Options{})
	if got := s4.Versions(); len(got) != 0 {
		t.Fatalf("after header flip: Versions = %v, want empty", got)
	}
	if err := s4.Append(1, payload(1, 16)); err != nil {
		t.Fatalf("append after full recovery: %v", err)
	}
}

func TestStoreReadRechecksCRC(t *testing.T) {
	// Bytes that rot after Open (the index was built from a clean scan)
	// must still be caught on read.
	dir := t.TempDir()
	s := open(t, dir, Options{})
	if err := s.Append(1, payload(1, 256)); err != nil {
		t.Fatal(err)
	}
	// Corrupt behind the open handle's back.
	if _, err := s.f.WriteAt([]byte{0xFF}, int64(headerSize+100)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.At(1); err == nil {
		t.Error("At must fail its checksum after on-disk corruption")
	}
	if _, _, err := s.Latest(); err == nil {
		t.Error("Latest must fail its checksum after on-disk corruption")
	}
}

func TestStoreRetentionCompaction(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{Retain: 3})
	for v := uint64(1); v <= 10; v++ {
		if err := s.Append(v, payload(v, 512)); err != nil {
			t.Fatal(err)
		}
	}
	got := s.Versions()
	if len(got) > 2*3 {
		t.Fatalf("retention never compacted: %d versions live", len(got))
	}
	if got[len(got)-1] != 10 {
		t.Fatalf("Versions = %v, newest must be 10", got)
	}
	// Explicit compaction trims to exactly Retain.
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	got = s.Versions()
	if len(got) != 3 || got[0] != 8 || got[2] != 10 {
		t.Fatalf("after Compact: Versions = %v, want [8 9 10]", got)
	}
	if _, err := s.At(2); err == nil {
		t.Error("compacted-away version must not be readable")
	}
	for v := uint64(8); v <= 10; v++ {
		p, err := s.At(v)
		if err != nil || !bytes.Equal(p, payload(v, 512)) {
			t.Fatalf("At(%d) after compaction: err %v", v, err)
		}
	}
	// Appends keep working on the compacted log and survive a reopen.
	if err := s.Append(11, payload(11, 512)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2 := open(t, dir, Options{Retain: 3})
	got = s2.Versions()
	if len(got) != 4 || got[0] != 8 || got[3] != 11 {
		t.Fatalf("reopened after compaction: Versions = %v", got)
	}
}

func TestStoreConcurrentAppendDuringLatest(t *testing.T) {
	s := open(t, t.TempDir(), Options{NoSync: true})
	if err := s.Append(1, payload(1, 64)); err != nil {
		t.Fatal(err)
	}
	const appends = 50
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	done := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for v := uint64(2); v <= appends; v++ {
			if err := s.Append(v, payload(v, 64)); err != nil {
				errc <- err
				return
			}
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastSeen uint64
			for {
				select {
				case <-done:
					return
				default:
				}
				v, p, err := s.Latest()
				if err != nil {
					errc <- err
					return
				}
				if v < lastSeen {
					errc <- fmt.Errorf("Latest went backwards: %d after %d", v, lastSeen)
					return
				}
				lastSeen = v
				if !bytes.Equal(p, payload(v, 64)) {
					errc <- fmt.Errorf("Latest(v%d) returned torn payload", v)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if s.LastVersion() != appends {
		t.Errorf("LastVersion = %d, want %d", s.LastVersion(), appends)
	}
}

func TestStoreState(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	if _, ok, err := s.LoadState("monitor"); ok || err != nil {
		t.Fatalf("missing state: ok=%v err=%v", ok, err)
	}
	blob := []byte(`{"queries":123}`)
	if err := s.SaveState("monitor", blob); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.LoadState("monitor")
	if !ok || err != nil || !bytes.Equal(got, blob) {
		t.Fatalf("LoadState = %q ok=%v err=%v", got, ok, err)
	}
	// Overwrite is atomic-replace, not append.
	blob2 := []byte(`{"queries":456}`)
	if err := s.SaveState("monitor", blob2); err != nil {
		t.Fatal(err)
	}
	got, ok, _ = s.LoadState("monitor")
	if !ok || !bytes.Equal(got, blob2) {
		t.Fatalf("after overwrite: %q ok=%v", got, ok)
	}
	// A corrupt state file reads as absent, never an error.
	path := filepath.Join(dir, "monitor.state")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0x01
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.LoadState("monitor"); ok || err != nil {
		t.Fatalf("corrupt state: ok=%v err=%v, want absent", ok, err)
	}
	// Invalid names are rejected outright.
	if err := s.SaveState("../evil", nil); err == nil {
		t.Error("path-traversing state name accepted")
	}
	if err := s.SaveState("", nil); err == nil {
		t.Error("empty state name accepted")
	}
}

func TestStoreClosedOperationsFail(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	if err := s.Append(1, payload(1, 8)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("double Close: %v", err)
	}
	if err := s.Append(2, nil); err == nil {
		t.Error("Append after Close should fail")
	}
	if _, _, err := s.Latest(); err == nil {
		t.Error("Latest after Close should fail")
	}
}

func TestStoreAppendSurvivesCompactionFailure(t *testing.T) {
	// A failed auto-compaction must never fail the Append whose record
	// is already durable: a wedged version sequence would stop the
	// owning deployment from ever publishing again. Fault injection: a
	// directory squatting on the temp path makes the compaction rewrite
	// fail while appends (which go to the open log handle) still work.
	dir := t.TempDir()
	s := open(t, dir, Options{Retain: 2})
	if err := os.Mkdir(filepath.Join(dir, logName+".tmp"), 0o755); err != nil {
		t.Fatal(err)
	}
	for v := uint64(1); v <= 8; v++ {
		if err := s.Append(v, payload(v, 64)); err != nil {
			t.Fatalf("Append(%d) failed on compaction trouble: %v", v, err)
		}
	}
	// Retention was delayed, not enforced — and nothing was lost.
	got := s.Versions()
	if len(got) != 8 || got[7] != 8 {
		t.Fatalf("Versions = %v, want all 8 retained while compaction fails", got)
	}
	// The explicit path surfaces the error...
	if err := s.Compact(); err == nil {
		t.Fatal("Compact with a blocked temp path should fail")
	}
	// ...and once the obstruction clears, compaction recovers.
	if err := os.Remove(filepath.Join(dir, logName+".tmp")); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	got = s.Versions()
	if len(got) != 2 || got[0] != 7 || got[1] != 8 {
		t.Fatalf("after recovery: Versions = %v, want [7 8]", got)
	}
	if err := s.Append(9, payload(9, 64)); err != nil {
		t.Fatal(err)
	}
}
