package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func open(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func payload(version uint64, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(version + uint64(i)*7)
	}
	return b
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	if _, _, err := s.Latest(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("Latest on empty store: %v, want ErrEmpty", err)
	}
	for v := uint64(1); v <= 5; v++ {
		if err := s.Append(v, payload(v, 100+int(v))); err != nil {
			t.Fatal(err)
		}
	}
	v, p, err := s.Latest()
	if err != nil || v != 5 || !bytes.Equal(p, payload(5, 105)) {
		t.Fatalf("Latest = v%d, err %v", v, err)
	}
	for v := uint64(1); v <= 5; v++ {
		p, err := s.At(v)
		if err != nil || !bytes.Equal(p, payload(v, 100+int(v))) {
			t.Fatalf("At(%d): err %v", v, err)
		}
	}
	if _, err := s.At(99); err == nil {
		t.Error("At(99) on a store without it should fail")
	}
	want := []uint64{1, 2, 3, 4, 5}
	got := s.Versions()
	if len(got) != len(want) {
		t.Fatalf("Versions = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Versions = %v, want %v", got, want)
		}
	}
	if s.LastVersion() != 5 {
		t.Errorf("LastVersion = %d", s.LastVersion())
	}

	// Reopen: same contents survive the restart.
	s.Close()
	s2 := open(t, dir, Options{})
	if got := s2.Versions(); len(got) != 5 || got[4] != 5 {
		t.Fatalf("reopened Versions = %v", got)
	}
	p, err = s2.At(3)
	if err != nil || !bytes.Equal(p, payload(3, 103)) {
		t.Fatalf("reopened At(3): err %v", err)
	}
}

func TestStoreVersionMonotonicity(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	if err := s.Append(2, payload(2, 10)); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(2, payload(2, 10)); err == nil {
		t.Error("re-appending the same version should fail")
	}
	if err := s.Append(1, payload(1, 10)); err == nil {
		t.Error("appending a lower version should fail")
	}
	// Gaps are fine (e.g. after compaction elsewhere).
	if err := s.Append(10, payload(10, 10)); err != nil {
		t.Fatal(err)
	}
}

func TestStoreTruncatedTailRecovery(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	for v := uint64(1); v <= 3; v++ {
		if err := s.Append(v, payload(v, 64)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	logPath := filepath.Join(dir, logName)
	info, err := os.Stat(logPath)
	if err != nil {
		t.Fatal(err)
	}
	// Cut the tail record short at several depths: mid-payload,
	// header-only, and a single stray byte.
	for _, cut := range []int64{10, int64(64), headerSize + 63} {
		if err := os.Truncate(logPath, info.Size()-cut); err != nil {
			t.Fatal(err)
		}
		s2 := open(t, dir, Options{})
		got := s2.Versions()
		if len(got) != 2 || got[0] != 1 || got[1] != 2 {
			t.Fatalf("after cutting %d bytes: Versions = %v, want [1 2]", cut, got)
		}
		if v, p, err := s2.Latest(); err != nil || v != 2 || !bytes.Equal(p, payload(2, 64)) {
			t.Fatalf("after cutting %d bytes: Latest = v%d, err %v", cut, v, err)
		}
		// The store must be appendable again after recovery.
		if err := s2.Append(3, payload(3, 64)); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		s2.Close()
		info, err = os.Stat(logPath)
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestStoreFlippedByteRecovery(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	var offsets []int64
	for v := uint64(1); v <= 3; v++ {
		offsets = append(offsets, s.size)
		if err := s.Append(v, payload(v, 128)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	logPath := filepath.Join(dir, logName)

	flip := func(off int64) {
		t.Helper()
		b, err := os.ReadFile(logPath)
		if err != nil {
			t.Fatal(err)
		}
		b[off] ^= 0x40
		if err := os.WriteFile(logPath, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// A flipped payload byte in the tail record: recover to version 2.
	flip(offsets[2] + headerSize + 17)
	s2 := open(t, dir, Options{})
	if got := s2.Versions(); len(got) != 2 || got[1] != 2 {
		t.Fatalf("after tail payload flip: Versions = %v, want [1 2]", got)
	}
	s2.Close()

	// A flipped CRC byte in what is now the tail record: recover to v1.
	flip(offsets[1] + 16)
	s3 := open(t, dir, Options{})
	if got := s3.Versions(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("after CRC flip: Versions = %v, want [1]", got)
	}
	if v, p, err := s3.Latest(); err != nil || v != 1 || !bytes.Equal(p, payload(1, 128)) {
		t.Fatalf("after CRC flip: Latest = v%d, err %v", v, err)
	}
	s3.Close()

	// A flip in the first record's header leaves an empty (but usable)
	// store: recovery keeps the good prefix, which is empty.
	flip(2)
	s4 := open(t, dir, Options{})
	if got := s4.Versions(); len(got) != 0 {
		t.Fatalf("after header flip: Versions = %v, want empty", got)
	}
	if err := s4.Append(1, payload(1, 16)); err != nil {
		t.Fatalf("append after full recovery: %v", err)
	}
}

func TestStoreReadRechecksCRC(t *testing.T) {
	// Bytes that rot after Open (the index was built from a clean scan)
	// must still be caught on read.
	dir := t.TempDir()
	s := open(t, dir, Options{})
	if err := s.Append(1, payload(1, 256)); err != nil {
		t.Fatal(err)
	}
	// Corrupt behind the open handle's back.
	if _, err := s.f.WriteAt([]byte{0xFF}, int64(headerSize+100)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.At(1); err == nil {
		t.Error("At must fail its checksum after on-disk corruption")
	}
	if _, _, err := s.Latest(); err == nil {
		t.Error("Latest must fail its checksum after on-disk corruption")
	}
}

func TestStoreRetentionCompaction(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{Retain: 3})
	for v := uint64(1); v <= 10; v++ {
		if err := s.Append(v, payload(v, 512)); err != nil {
			t.Fatal(err)
		}
	}
	got := s.Versions()
	if len(got) > 2*3 {
		t.Fatalf("retention never compacted: %d versions live", len(got))
	}
	if got[len(got)-1] != 10 {
		t.Fatalf("Versions = %v, newest must be 10", got)
	}
	// Explicit compaction trims to exactly Retain.
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	got = s.Versions()
	if len(got) != 3 || got[0] != 8 || got[2] != 10 {
		t.Fatalf("after Compact: Versions = %v, want [8 9 10]", got)
	}
	if _, err := s.At(2); err == nil {
		t.Error("compacted-away version must not be readable")
	}
	for v := uint64(8); v <= 10; v++ {
		p, err := s.At(v)
		if err != nil || !bytes.Equal(p, payload(v, 512)) {
			t.Fatalf("At(%d) after compaction: err %v", v, err)
		}
	}
	// Appends keep working on the compacted log and survive a reopen.
	if err := s.Append(11, payload(11, 512)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2 := open(t, dir, Options{Retain: 3})
	got = s2.Versions()
	if len(got) != 4 || got[0] != 8 || got[3] != 11 {
		t.Fatalf("reopened after compaction: Versions = %v", got)
	}
}

func TestStoreConcurrentAppendDuringLatest(t *testing.T) {
	s := open(t, t.TempDir(), Options{NoSync: true})
	if err := s.Append(1, payload(1, 64)); err != nil {
		t.Fatal(err)
	}
	const appends = 50
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	done := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for v := uint64(2); v <= appends; v++ {
			if err := s.Append(v, payload(v, 64)); err != nil {
				errc <- err
				return
			}
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastSeen uint64
			for {
				select {
				case <-done:
					return
				default:
				}
				v, p, err := s.Latest()
				if err != nil {
					errc <- err
					return
				}
				if v < lastSeen {
					errc <- fmt.Errorf("Latest went backwards: %d after %d", v, lastSeen)
					return
				}
				lastSeen = v
				if !bytes.Equal(p, payload(v, 64)) {
					errc <- fmt.Errorf("Latest(v%d) returned torn payload", v)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if s.LastVersion() != appends {
		t.Errorf("LastVersion = %d, want %d", s.LastVersion(), appends)
	}
}

func TestStoreState(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	if _, ok, err := s.LoadState("monitor"); ok || err != nil {
		t.Fatalf("missing state: ok=%v err=%v", ok, err)
	}
	blob := []byte(`{"queries":123}`)
	if err := s.SaveState("monitor", blob); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.LoadState("monitor")
	if !ok || err != nil || !bytes.Equal(got, blob) {
		t.Fatalf("LoadState = %q ok=%v err=%v", got, ok, err)
	}
	// Overwrite is atomic-replace, not append.
	blob2 := []byte(`{"queries":456}`)
	if err := s.SaveState("monitor", blob2); err != nil {
		t.Fatal(err)
	}
	got, ok, _ = s.LoadState("monitor")
	if !ok || !bytes.Equal(got, blob2) {
		t.Fatalf("after overwrite: %q ok=%v", got, ok)
	}
	// A corrupt state file reads as absent, never an error.
	path := filepath.Join(dir, "monitor.state")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0x01
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.LoadState("monitor"); ok || err != nil {
		t.Fatalf("corrupt state: ok=%v err=%v, want absent", ok, err)
	}
	// Invalid names are rejected outright.
	if err := s.SaveState("../evil", nil); err == nil {
		t.Error("path-traversing state name accepted")
	}
	if err := s.SaveState("", nil); err == nil {
		t.Error("empty state name accepted")
	}
}

func TestStoreClosedOperationsFail(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	if err := s.Append(1, payload(1, 8)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("double Close: %v", err)
	}
	if err := s.Append(2, nil); err == nil {
		t.Error("Append after Close should fail")
	}
	if _, _, err := s.Latest(); err == nil {
		t.Error("Latest after Close should fail")
	}
}

func TestStoreAppendSurvivesCompactionFailure(t *testing.T) {
	// A failed auto-compaction must never fail the Append whose record
	// is already durable: a wedged version sequence would stop the
	// owning deployment from ever publishing again. Fault injection: a
	// directory squatting on the temp path makes the compaction rewrite
	// fail while appends (which go to the open log handle) still work.
	dir := t.TempDir()
	s := open(t, dir, Options{Retain: 2})
	if err := os.Mkdir(filepath.Join(dir, logName+".tmp"), 0o755); err != nil {
		t.Fatal(err)
	}
	for v := uint64(1); v <= 8; v++ {
		if err := s.Append(v, payload(v, 64)); err != nil {
			t.Fatalf("Append(%d) failed on compaction trouble: %v", v, err)
		}
	}
	// Retention was delayed, not enforced — and nothing was lost.
	got := s.Versions()
	if len(got) != 8 || got[7] != 8 {
		t.Fatalf("Versions = %v, want all 8 retained while compaction fails", got)
	}
	// The explicit path surfaces the error...
	if err := s.Compact(); err == nil {
		t.Fatal("Compact with a blocked temp path should fail")
	}
	// ...and once the obstruction clears, compaction recovers.
	if err := os.Remove(filepath.Join(dir, logName+".tmp")); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	got = s.Versions()
	if len(got) != 2 || got[0] != 7 || got[1] != 8 {
		t.Fatalf("after recovery: Versions = %v, want [7 8]", got)
	}
	if err := s.Append(9, payload(9, 64)); err != nil {
		t.Fatal(err)
	}
}

// deltaPayload builds a payload under layout {header, chunk} with the
// given header byte pattern and per-chunk fill.
func deltaPayload(layout Layout, nchunks int, header byte, fill func(chunk int) byte) []byte {
	b := make([]byte, layout.HeaderLen+nchunks*layout.ChunkSize)
	for i := 0; i < layout.HeaderLen; i++ {
		b[i] = header
	}
	for k := 0; k < nchunks; k++ {
		v := fill(k)
		chunk := b[layout.HeaderLen+k*layout.ChunkSize : layout.HeaderLen+(k+1)*layout.ChunkSize]
		for i := range chunk {
			chunk[i] = v
		}
	}
	return b
}

func TestStoreDeltaRoundTrip(t *testing.T) {
	dir := t.TempDir()
	layout := Layout{HeaderLen: 5, ChunkSize: 32}
	const nchunks = 40
	s := open(t, dir, Options{})

	base := deltaPayload(layout, nchunks, 1, func(int) byte { return 10 })
	kind, err := s.AppendDelta(1, base, layout)
	if err != nil {
		t.Fatal(err)
	}
	if kind != KindFull {
		t.Fatalf("first record kind %v, want full", kind)
	}
	// Three deltas, each changing 2 chunks over its predecessor.
	want := [][]byte{base}
	cur := base
	for v := uint64(2); v <= 4; v++ {
		next := bytes.Clone(cur)
		next[0] = byte(v) // header changes too
		for _, k := range []int{int(v), int(v) + 7} {
			chunk := next[layout.HeaderLen+k*layout.ChunkSize : layout.HeaderLen+(k+1)*layout.ChunkSize]
			for i := range chunk {
				chunk[i] = byte(100 + v)
			}
		}
		kind, err := s.AppendDelta(v, next, layout)
		if err != nil {
			t.Fatal(err)
		}
		if kind != KindDelta {
			t.Fatalf("v%d kind %v, want delta", v, kind)
		}
		want = append(want, next)
		cur = next
	}

	check := func(s *Store, stage string) {
		t.Helper()
		for v := uint64(1); v <= 4; v++ {
			got, err := s.At(v)
			if err != nil {
				t.Fatalf("%s: At(%d): %v", stage, v, err)
			}
			if !bytes.Equal(got, want[v-1]) {
				t.Fatalf("%s: At(%d) materialized wrong payload", stage, v)
			}
		}
		lv, lp, err := s.Latest()
		if err != nil || lv != 4 || !bytes.Equal(lp, want[3]) {
			t.Fatalf("%s: Latest = v%d, err %v", stage, lv, err)
		}
	}
	check(s, "live")

	recs := s.Records()
	if len(recs) != 4 {
		t.Fatalf("Records = %+v", recs)
	}
	if recs[0].Kind != KindFull || recs[1].Kind != KindDelta || recs[3].Kind != KindDelta {
		t.Fatalf("record kinds %+v", recs)
	}
	fullBytes := recs[0].Bytes
	for _, r := range recs[1:] {
		if r.Bytes*2 >= fullBytes {
			t.Errorf("delta v%d is %d bytes, not under half the %d-byte full record", r.Version, r.Bytes, fullBytes)
		}
	}

	// The chain survives a reopen bit-identically, and the reopened
	// store keeps appending deltas (lazy cache materialization).
	s.Close()
	s2 := open(t, dir, Options{})
	check(s2, "reopened")
	next := bytes.Clone(want[3])
	copy(next[layout.HeaderLen:layout.HeaderLen+layout.ChunkSize], bytes.Repeat([]byte{0xEE}, layout.ChunkSize))
	kind, err = s2.AppendDelta(5, next, layout)
	if err != nil {
		t.Fatal(err)
	}
	if kind != KindDelta {
		t.Fatalf("post-reopen append kind %v, want delta (cache rebuilt from the chain)", kind)
	}
	if got, err := s2.At(5); err != nil || !bytes.Equal(got, next) {
		t.Fatalf("At(5): %v", err)
	}
}

func TestStoreDeltaChainBound(t *testing.T) {
	layout := Layout{HeaderLen: 0, ChunkSize: 16}
	s := open(t, t.TempDir(), Options{MaxChain: 3, NoSync: true})
	cur := deltaPayload(layout, 24, 0, func(int) byte { return 1 })
	if _, err := s.AppendDelta(1, cur, layout); err != nil {
		t.Fatal(err)
	}
	var kinds []Kind
	for v := uint64(2); v <= 9; v++ {
		cur = bytes.Clone(cur)
		cur[int(v)*layout.ChunkSize] = byte(v) // one chunk changes
		kind, err := s.AppendDelta(v, cur, layout)
		if err != nil {
			t.Fatal(err)
		}
		kinds = append(kinds, kind)
	}
	// full, d, d, d, full, d, d, d, full — every 4th record re-anchors.
	want := []Kind{KindDelta, KindDelta, KindDelta, KindFull, KindDelta, KindDelta, KindDelta, KindFull}
	for i, k := range want {
		if kinds[i] != k {
			t.Fatalf("append kinds %v, want %v (chain bound 3)", kinds, want)
		}
	}
}

func TestStoreDeltaDisabled(t *testing.T) {
	layout := Layout{HeaderLen: 0, ChunkSize: 16}
	s := open(t, t.TempDir(), Options{MaxChain: -1, NoSync: true})
	cur := deltaPayload(layout, 8, 0, func(int) byte { return 1 })
	if _, err := s.AppendDelta(1, cur, layout); err != nil {
		t.Fatal(err)
	}
	cur = bytes.Clone(cur)
	cur[3] = 99
	kind, err := s.AppendDelta(2, cur, layout)
	if err != nil {
		t.Fatal(err)
	}
	if kind != KindFull {
		t.Fatalf("kind %v with MaxChain -1, want full", kind)
	}
}

func TestStoreDeltaHalfSizeRule(t *testing.T) {
	layout := Layout{HeaderLen: 0, ChunkSize: 64}
	const nchunks = 16
	s := open(t, t.TempDir(), Options{NoSync: true})
	cur := deltaPayload(layout, nchunks, 0, func(int) byte { return 1 })
	if _, err := s.AppendDelta(1, cur, layout); err != nil {
		t.Fatal(err)
	}
	// Change over half the chunks: the delta (index overhead included)
	// exceeds 50% of the payload, so a full record must be written.
	cur = bytes.Clone(cur)
	for k := 0; k < 9; k++ {
		cur[k*layout.ChunkSize] = 0xAA
	}
	kind, err := s.AppendDelta(2, cur, layout)
	if err != nil {
		t.Fatal(err)
	}
	if kind != KindFull {
		t.Fatalf("9/16 chunks changed: kind %v, want full (>50%% rule)", kind)
	}
	// A small change still goes delta.
	cur = bytes.Clone(cur)
	cur[0] = 0xBB
	if kind, err = s.AppendDelta(3, cur, layout); err != nil || kind != KindDelta {
		t.Fatalf("1/16 chunks changed: kind %v err %v, want delta", kind, err)
	}
	// A payload whose length no longer matches the predecessor falls
	// back to full (the layout cannot line up).
	grown := deltaPayload(layout, nchunks+2, 0, func(int) byte { return 7 })
	if kind, err = s.AppendDelta(4, grown, layout); err != nil || kind != KindFull {
		t.Fatalf("grown payload: kind %v err %v, want full", kind, err)
	}
	// Layouts that do not tile the payload are caller errors.
	if _, err := s.AppendDelta(5, cur[:len(cur)-3], layout); err == nil {
		t.Error("non-tiling layout accepted")
	}
	if _, err := s.AppendDelta(5, cur, Layout{HeaderLen: 0, ChunkSize: 0}); err == nil {
		t.Error("zero chunk size accepted")
	}
}

func TestStoreDeltaCompactionRebase(t *testing.T) {
	dir := t.TempDir()
	layout := Layout{HeaderLen: 4, ChunkSize: 32}
	const nchunks = 20
	s := open(t, dir, Options{Retain: 3})
	want := make(map[uint64][]byte)
	cur := deltaPayload(layout, nchunks, 0, func(int) byte { return 1 })
	if _, err := s.AppendDelta(1, cur, layout); err != nil {
		t.Fatal(err)
	}
	want[1] = cur
	for v := uint64(2); v <= 5; v++ {
		cur = bytes.Clone(cur)
		cur[layout.HeaderLen+int(v)*layout.ChunkSize] = byte(v)
		if _, err := s.AppendDelta(v, cur, layout); err != nil {
			t.Fatal(err)
		}
		want[v] = cur
	}
	// Versions 2..5 are deltas; retaining the newest 3 drops the full
	// base, so compaction must rebase v3 onto a fresh full record.
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	recs := s.Records()
	if len(recs) != 3 || recs[0].Version != 3 {
		t.Fatalf("Records after compact = %+v", recs)
	}
	if recs[0].Kind != KindFull {
		t.Fatalf("first retained record is %v, want full (rebased)", recs[0].Kind)
	}
	if recs[1].Kind != KindDelta || recs[2].Kind != KindDelta {
		t.Fatalf("suffix kinds %+v, want deltas preserved", recs)
	}
	for v := uint64(3); v <= 5; v++ {
		got, err := s.At(v)
		if err != nil || !bytes.Equal(got, want[v]) {
			t.Fatalf("At(%d) after rebase: %v", v, err)
		}
	}
	// The rebased log must also recover cleanly from disk.
	s.Close()
	s2 := open(t, dir, Options{Retain: 3})
	for v := uint64(3); v <= 5; v++ {
		got, err := s2.At(v)
		if err != nil || !bytes.Equal(got, want[v]) {
			t.Fatalf("reopened At(%d) after rebase: %v", v, err)
		}
	}
	// And appends continue, deltas included.
	cur = bytes.Clone(want[5])
	cur[layout.HeaderLen] = 0xCC
	if kind, err := s2.AppendDelta(6, cur, layout); err != nil || kind != KindDelta {
		t.Fatalf("append after rebase: kind %v err %v", kind, err)
	}
}

func TestStoreDeltaCorruptionTruncatesChainSuffix(t *testing.T) {
	dir := t.TempDir()
	layout := Layout{HeaderLen: 0, ChunkSize: 32}
	s := open(t, dir, Options{})
	cur := deltaPayload(layout, 16, 0, func(int) byte { return 1 })
	if _, err := s.AppendDelta(1, cur, layout); err != nil {
		t.Fatal(err)
	}
	var offsets []int64
	for v := uint64(2); v <= 4; v++ {
		offsets = append(offsets, s.size)
		cur = bytes.Clone(cur)
		cur[int(v)*layout.ChunkSize] = byte(v)
		if _, err := s.AppendDelta(v, cur, layout); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	// Flip a payload byte inside the middle delta (v3): recovery must
	// keep [1 2] — v4's delta depends on v3 and falls with it.
	logPath := filepath.Join(dir, logName)
	b, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	b[offsets[1]+headerSize+10] ^= 0x20
	if err := os.WriteFile(logPath, b, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := open(t, dir, Options{})
	got := s2.Versions()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("after mid-chain flip: Versions = %v, want [1 2]", got)
	}
	if _, err := s2.At(2); err != nil {
		t.Fatalf("surviving delta unreadable: %v", err)
	}
	if _, err := s2.At(3); err == nil {
		t.Error("corrupted version still readable")
	}
}

func TestStoreDeltaRecordNeverFirst(t *testing.T) {
	// A log that opens with a delta record (its base lost to some
	// external truncation) must recover to empty, not panic or index an
	// unresolvable record.
	dir := t.TempDir()
	layout := Layout{HeaderLen: 0, ChunkSize: 32}
	s := open(t, dir, Options{})
	cur := deltaPayload(layout, 16, 0, func(int) byte { return 1 })
	if _, err := s.AppendDelta(1, cur, layout); err != nil {
		t.Fatal(err)
	}
	firstLen := s.size
	cur = bytes.Clone(cur)
	cur[0] = 9
	if kind, err := s.AppendDelta(2, cur, layout); err != nil || kind != KindDelta {
		t.Fatalf("kind %v err %v", kind, err)
	}
	s.Close()
	// Drop the leading full record, leaving the delta first.
	logPath := filepath.Join(dir, logName)
	b, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(logPath, b[firstLen:], 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := open(t, dir, Options{})
	if got := s2.Versions(); len(got) != 0 {
		t.Fatalf("orphan delta survived recovery: %v", got)
	}
	if err := s2.Append(1, []byte("fresh")); err != nil {
		t.Fatalf("append after orphan-delta recovery: %v", err)
	}
}
