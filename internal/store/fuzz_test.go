package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzStoreOpen throws arbitrary bytes at the log recovery path: Open
// must never panic, must always leave a usable (appendable) store, and
// recovery must be idempotent — reopening the recovered log yields the
// same versions. The seed corpus covers the interesting shapes: a valid
// log, a torn tail, a flipped CRC, garbage, and — since delta records —
// a full+delta chain plus mutations that orphan or corrupt the chain.
func FuzzStoreOpen(f *testing.F) {
	// Build a valid two-record log to seed from.
	seedDir := f.TempDir()
	s, err := Open(seedDir, Options{NoSync: true})
	if err != nil {
		f.Fatal(err)
	}
	if err := s.Append(1, []byte("first snapshot payload")); err != nil {
		f.Fatal(err)
	}
	if err := s.Append(7, bytes.Repeat([]byte{0xAB}, 300)); err != nil {
		f.Fatal(err)
	}
	s.Close()
	valid, err := os.ReadFile(filepath.Join(seedDir, logName))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-5]) // torn tail
	torn := bytes.Clone(valid)
	torn[len(torn)-100] ^= 0x10 // flipped payload byte
	f.Add(torn)
	crcFlip := bytes.Clone(valid)
	crcFlip[16] ^= 0x01 // flipped CRC byte of record 1
	f.Add(crcFlip)
	f.Add([]byte{})
	f.Add([]byte("not a log at all"))

	// A full record anchoring a three-delta chain, and mutations of it:
	// a flipped byte inside a mid-chain delta payload, a truncated
	// chain tail, and the chain with its base cut off (orphan deltas).
	chainDir := f.TempDir()
	cs, err := Open(chainDir, Options{NoSync: true})
	if err != nil {
		f.Fatal(err)
	}
	layout := Layout{HeaderLen: 7, ChunkSize: 24}
	payload := bytes.Repeat([]byte{0x11}, layout.HeaderLen+12*layout.ChunkSize)
	if _, err := cs.AppendDelta(1, payload, layout); err != nil {
		f.Fatal(err)
	}
	var firstRecLen int64
	for v := uint64(2); v <= 4; v++ {
		if v == 2 {
			firstRecLen = cs.size
		}
		payload = bytes.Clone(payload)
		payload[layout.HeaderLen+int(v)*layout.ChunkSize] = byte(v)
		kind, err := cs.AppendDelta(v, payload, layout)
		if err != nil {
			f.Fatal(err)
		}
		if kind != KindDelta {
			f.Fatalf("seed chain record v%d is %v, want delta", v, kind)
		}
	}
	cs.Close()
	chain, err := os.ReadFile(filepath.Join(chainDir, logName))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(chain)
	midFlip := bytes.Clone(chain)
	midFlip[firstRecLen+headerSize+deltaHeaderSize+3] ^= 0x04 // inside delta v2's payload
	f.Add(midFlip)
	f.Add(chain[:len(chain)-9])    // torn delta tail
	f.Add(chain[firstRecLen:])     // orphan deltas: base record cut off
	baseFlip := bytes.Clone(chain) // corrupt base under an intact chain
	baseFlip[headerSize+1] ^= 0x80
	f.Add(baseFlip)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, logName), data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir, Options{NoSync: true})
		if err != nil {
			// Open only errors on real IO failures, never on corruption.
			t.Fatalf("Open on corrupt input: %v", err)
		}
		versions := s.Versions()
		for i := 1; i < len(versions); i++ {
			if versions[i] <= versions[i-1] {
				t.Fatalf("versions not strictly increasing: %v", versions)
			}
		}
		records := s.Records()
		if len(records) > 0 && records[0].Kind != KindFull {
			t.Fatalf("recovered log starts with a %v record", records[0].Kind)
		}
		// Every surviving record must materialize checksum-clean —
		// delta chains included.
		for _, v := range versions {
			if _, err := s.At(v); err != nil {
				t.Fatalf("At(%d) on recovered store: %v", v, err)
			}
		}
		// The recovered store accepts appends: a full record, then a
		// delta-path append (which must materialize the recovered tail
		// to diff against, whatever shape recovery left).
		next := s.LastVersion() + 1
		if err := s.Append(next, []byte("post-recovery record")); err != nil {
			t.Fatalf("Append after recovery: %v", err)
		}
		dp := bytes.Repeat([]byte{0x33}, 160)
		if _, err := s.AppendDelta(next+1, dp, Layout{HeaderLen: 0, ChunkSize: 16}); err != nil {
			t.Fatalf("AppendDelta after recovery: %v", err)
		}
		if got, err := s.At(next + 1); err != nil || !bytes.Equal(got, dp) {
			t.Fatalf("At(%d) after post-recovery delta append: %v", next+1, err)
		}
		s.Close()
		// Idempotence: a second recovery sees exactly what the first
		// left (plus the two appends).
		s2, err := Open(dir, Options{NoSync: true})
		if err != nil {
			t.Fatal(err)
		}
		defer s2.Close()
		got := s2.Versions()
		if len(got) != len(versions)+2 {
			t.Fatalf("reopen changed the version set: %v then %v", versions, got)
		}
		for i, v := range versions {
			if got[i] != v {
				t.Fatalf("reopen changed the version set: %v then %v", versions, got)
			}
		}
	})
}
