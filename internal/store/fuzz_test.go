package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzStoreOpen throws arbitrary bytes at the log recovery path: Open
// must never panic, must always leave a usable (appendable) store, and
// recovery must be idempotent — reopening the recovered log yields the
// same versions. The seed corpus covers the interesting shapes: a valid
// log, a torn tail, a flipped CRC, and garbage.
func FuzzStoreOpen(f *testing.F) {
	// Build a valid two-record log to seed from.
	seedDir := f.TempDir()
	s, err := Open(seedDir, Options{NoSync: true})
	if err != nil {
		f.Fatal(err)
	}
	if err := s.Append(1, []byte("first snapshot payload")); err != nil {
		f.Fatal(err)
	}
	if err := s.Append(7, bytes.Repeat([]byte{0xAB}, 300)); err != nil {
		f.Fatal(err)
	}
	s.Close()
	valid, err := os.ReadFile(filepath.Join(seedDir, logName))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-5]) // torn tail
	torn := bytes.Clone(valid)
	torn[len(torn)-100] ^= 0x10 // flipped payload byte
	f.Add(torn)
	crcFlip := bytes.Clone(valid)
	crcFlip[16] ^= 0x01 // flipped CRC byte of record 1
	f.Add(crcFlip)
	f.Add([]byte{})
	f.Add([]byte("not a log at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, logName), data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir, Options{NoSync: true})
		if err != nil {
			// Open only errors on real IO failures, never on corruption.
			t.Fatalf("Open on corrupt input: %v", err)
		}
		versions := s.Versions()
		for i := 1; i < len(versions); i++ {
			if versions[i] <= versions[i-1] {
				t.Fatalf("versions not strictly increasing: %v", versions)
			}
		}
		// Every surviving record must be readable and checksum-clean.
		for _, v := range versions {
			if _, err := s.At(v); err != nil {
				t.Fatalf("At(%d) on recovered store: %v", v, err)
			}
		}
		// The recovered store accepts appends.
		next := s.LastVersion() + 1
		if err := s.Append(next, []byte("post-recovery record")); err != nil {
			t.Fatalf("Append after recovery: %v", err)
		}
		s.Close()
		// Idempotence: a second recovery sees exactly what the first
		// left (plus the append).
		s2, err := Open(dir, Options{NoSync: true})
		if err != nil {
			t.Fatal(err)
		}
		defer s2.Close()
		got := s2.Versions()
		if len(got) != len(versions)+1 {
			t.Fatalf("reopen changed the version set: %v then %v", versions, got)
		}
		for i, v := range versions {
			if got[i] != v {
				t.Fatalf("reopen changed the version set: %v then %v", versions, got)
			}
		}
	})
}
