package store

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// streamAll concatenates the frames a leader would send for the store's
// whole retained history starting at from.
func streamAll(t *testing.T, s *Store, from uint64) []byte {
	t.Helper()
	frames, err := s.RecordFramesFrom(from)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, f := range frames {
		buf.Write(f)
	}
	return buf.Bytes()
}

// mixedStore builds a store whose log mixes full and delta records:
// v1 full, v2..v4 deltas, v5 full (forced by a wholesale change),
// v6 delta. Returns the store and the materialized payload per version.
func mixedStore(t *testing.T, dir string) (*Store, Layout, map[uint64][]byte) {
	t.Helper()
	layout := Layout{HeaderLen: 5, ChunkSize: 16}
	const nchunks = 24
	s := open(t, dir, Options{NoSync: true})
	want := make(map[uint64][]byte)
	cur := deltaPayload(layout, nchunks, 1, func(int) byte { return 1 })
	if _, err := s.AppendDelta(1, cur, layout); err != nil {
		t.Fatal(err)
	}
	want[1] = cur
	for v := uint64(2); v <= 4; v++ {
		cur = bytes.Clone(cur)
		cur[layout.HeaderLen+int(v)*layout.ChunkSize] = byte(0x40 + v)
		kind, err := s.AppendDelta(v, cur, layout)
		if err != nil || kind != KindDelta {
			t.Fatalf("v%d: kind %v err %v, want delta", v, kind, err)
		}
		want[v] = cur
	}
	cur = deltaPayload(layout, nchunks, 9, func(k int) byte { return byte(0x80 + k) })
	kind, err := s.AppendDelta(5, cur, layout)
	if err != nil || kind != KindFull {
		t.Fatalf("v5: kind %v err %v, want full", kind, err)
	}
	want[5] = cur
	cur = bytes.Clone(cur)
	cur[layout.HeaderLen+2*layout.ChunkSize] = 0xEE
	if kind, err = s.AppendDelta(6, cur, layout); err != nil || kind != KindDelta {
		t.Fatalf("v6: kind %v err %v, want delta", kind, err)
	}
	want[6] = cur
	return s, layout, want
}

func TestRecordFramesFromResume(t *testing.T) {
	s, _, want := mixedStore(t, t.TempDir())

	// from=0 bootstraps at the newest full record (v5 here): a follower
	// with no state can materialize everything the stream carries.
	frames, err := s.RecordFramesFrom(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 2 {
		t.Fatalf("bootstrap returned %d frames, want 2 (v5 full, v6 delta)", len(frames))
	}
	var r Replay
	for _, f := range frames {
		if _, _, err := r.Apply(f); err != nil {
			t.Fatal(err)
		}
	}
	if r.Version() != 6 || !bytes.Equal(r.Payload(), want[6]) {
		t.Fatalf("bootstrap replay ended at v%d, payload match %v", r.Version(), bytes.Equal(r.Payload(), want[6]))
	}

	// A resume from mid-history returns every record at or after the
	// requested version, applicable over the preceding materialization.
	frames, err = s.RecordFramesFrom(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 4 {
		t.Fatalf("resume from 3 returned %d frames, want 4", len(frames))
	}
	r2 := Replay{version: 2, payload: bytes.Clone(want[2])}
	for _, f := range frames {
		if _, _, err := r2.Apply(f); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(r2.Payload(), want[6]) {
		t.Fatal("resumed replay did not converge to the leader's latest payload")
	}

	// A caught-up follower gets nothing, not an error.
	if frames, err = s.RecordFramesFrom(7); err != nil || len(frames) != 0 {
		t.Fatalf("beyond-tail resume: %d frames, err %v", len(frames), err)
	}
}

func TestRecordFramesFromCompactionHorizon(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{NoSync: true, Retain: 2})
	for v := uint64(1); v <= 5; v++ {
		if err := s.Append(v, payload(v, 128)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	oldest := s.OldestVersion()
	if oldest != 4 {
		t.Fatalf("OldestVersion = %d, want 4", oldest)
	}
	if _, err := s.RecordFramesFrom(2); !errors.Is(err, ErrCompacted) {
		t.Fatalf("resume below the horizon: err %v, want ErrCompacted", err)
	}
	// The horizon itself is still streamable, and bootstrap always works.
	if frames, err := s.RecordFramesFrom(oldest); err != nil || len(frames) != 2 {
		t.Fatalf("resume at the horizon: %d frames, err %v", len(frames), err)
	}
	if frames, err := s.RecordFramesFrom(0); err != nil || len(frames) == 0 {
		t.Fatalf("bootstrap after compaction: %d frames, err %v", len(frames), err)
	}
}

func TestReadFrameSplitsStream(t *testing.T) {
	s, _, _ := mixedStore(t, t.TempDir())
	stream := streamAll(t, s, 1)
	rd := bytes.NewReader(stream)
	var versions []uint64
	var r Replay
	for {
		frame, err := ReadFrame(rd)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		v, _, err := r.Apply(frame)
		if err != nil {
			t.Fatal(err)
		}
		versions = append(versions, v)
	}
	if len(versions) != 6 || versions[0] != 1 || versions[5] != 6 {
		t.Fatalf("framed versions %v", versions)
	}

	// A stream cut mid-frame is an ErrUnexpectedEOF, not a short frame.
	rd = bytes.NewReader(stream[:len(stream)-7])
	var got error
	for {
		_, err := ReadFrame(rd)
		if err != nil {
			got = err
			break
		}
	}
	if !errors.Is(got, io.ErrUnexpectedEOF) {
		t.Fatalf("torn stream: err %v, want ErrUnexpectedEOF", got)
	}

	// Garbage where a header should be fails before any payload read.
	if _, err := ReadFrame(bytes.NewReader(bytes.Repeat([]byte{0xFF}, 64))); err == nil {
		t.Fatal("garbage header accepted")
	}
}

func TestReplayRejectsCorruptFramesWithoutStateChange(t *testing.T) {
	s, _, want := mixedStore(t, t.TempDir())
	frames, err := s.RecordFramesFrom(1)
	if err != nil {
		t.Fatal(err)
	}
	var r Replay
	for _, f := range frames[:3] { // v1 full, v2, v3 deltas applied
		if _, _, err := r.Apply(f); err != nil {
			t.Fatal(err)
		}
	}
	check := func(desc string, frame []byte) {
		t.Helper()
		before := bytes.Clone(r.Payload())
		if _, _, err := r.Apply(frame); err == nil {
			t.Fatalf("%s accepted", desc)
		}
		if r.Version() != 3 || !bytes.Equal(r.Payload(), before) {
			t.Fatalf("%s mutated replay state", desc)
		}
	}
	flip := bytes.Clone(frames[3])
	flip[headerSize+deltaHeaderSize+2] ^= 0x20
	check("flipped delta payload byte", flip)
	crcFlip := bytes.Clone(frames[3])
	crcFlip[17] ^= 0x01
	check("flipped CRC", crcFlip)
	check("truncated frame", frames[3][:len(frames[3])-3])
	check("replayed old version", frames[1])
	orphan := bytes.Clone(frames[5]) // v6 delta: base (v5) never applied here
	check("delta skipping its base", orphan)

	// The replay stays resumable: the intact v4 frame still applies.
	if _, _, err := r.Apply(frames[3]); err != nil {
		t.Fatalf("intact frame after rejections: %v", err)
	}
	if !bytes.Equal(r.Payload(), want[4]) {
		t.Fatal("resumed replay diverged")
	}
	// And a fresh replay refuses to start mid-chain.
	var fresh Replay
	if _, _, err := fresh.Apply(frames[1]); err == nil {
		t.Fatal("fresh replay accepted a delta with no base")
	}
}

// TestCompactionRedeltasRetainedSuffix pins the delta-aware compaction
// behavior: a retained full record whose bulk was only forced by the
// chain bound is re-encoded as a delta against its new predecessor, so
// post-compaction disk is proportional to churn.
func TestCompactionRedeltasRetainedSuffix(t *testing.T) {
	dir := t.TempDir()
	layout := Layout{HeaderLen: 4, ChunkSize: 64}
	const nchunks = 32
	s := open(t, dir, Options{NoSync: true, Retain: 3, MaxChain: 2})
	want := make(map[uint64][]byte)
	cur := deltaPayload(layout, nchunks, 1, func(int) byte { return 1 })
	if _, err := s.AppendDelta(1, cur, layout); err != nil {
		t.Fatal(err)
	}
	want[1] = cur
	// Single-chunk changes throughout: any full record past v1 is forced
	// by the MaxChain-2 bound, not by churn.
	for v := uint64(2); v <= 7; v++ {
		cur = bytes.Clone(cur)
		cur[layout.HeaderLen+int(v%uint64(nchunks))*layout.ChunkSize] = byte(v)
		if _, err := s.AppendDelta(v, cur, layout); err != nil {
			t.Fatal(err)
		}
		want[v] = cur
	}
	var fullBytes int64
	for _, rec := range s.Records() {
		if rec.Version == 7 {
			if rec.Kind != KindFull {
				t.Fatalf("v7 is %v before compaction, want full (chain bound)", rec.Kind)
			}
			fullBytes = rec.Bytes
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	recs := s.Records()
	if len(recs) != 3 || recs[0].Version != 5 {
		t.Fatalf("Records after compact = %+v", recs)
	}
	if recs[0].Kind != KindFull {
		t.Fatalf("first retained record is %v, want full", recs[0].Kind)
	}
	// v7 was a chain-bound full record; against its new, shorter history
	// it must have been re-deltaed down to its single changed chunk.
	for _, rec := range recs[1:] {
		if rec.Kind != KindDelta {
			t.Fatalf("retained v%d is %v after compaction, want delta", rec.Version, rec.Kind)
		}
		if rec.Bytes >= fullBytes/2 {
			t.Fatalf("retained v%d still costs %d bytes (full was %d)", rec.Version, rec.Bytes, fullBytes)
		}
	}
	// Bit-identical materialization, surviving a reopen.
	for v := uint64(5); v <= 7; v++ {
		if got, err := s.At(v); err != nil || !bytes.Equal(got, want[v]) {
			t.Fatalf("At(%d) after re-delta compaction: %v", v, err)
		}
	}
	s.Close()

	// A reopened store has seen no AppendDelta this life; compaction
	// still re-deltas by recovering the layout from a retained delta
	// record's own header.
	s2 := open(t, dir, Options{NoSync: true, Retain: 2, MaxChain: 2})
	for v := uint64(5); v <= 7; v++ {
		if got, err := s2.At(v); err != nil || !bytes.Equal(got, want[v]) {
			t.Fatalf("reopened At(%d): %v", v, err)
		}
	}
	if err := s2.Compact(); err != nil {
		t.Fatal(err)
	}
	recs = s2.Records()
	if len(recs) != 2 || recs[0].Version != 6 {
		t.Fatalf("Records after layout-recovered compact = %+v", recs)
	}
	if recs[0].Kind != KindFull || recs[1].Kind != KindDelta {
		t.Fatalf("layout-recovered compaction kinds = %+v, want [full delta]", recs)
	}
	for v := uint64(6); v <= 7; v++ {
		if got, err := s2.At(v); err != nil || !bytes.Equal(got, want[v]) {
			t.Fatalf("At(%d) after layout-recovered compaction: %v", v, err)
		}
	}
}

// FuzzReplayApply extends FuzzStoreOpen's corpus approach to the
// replica apply path: arbitrary bytes are framed off a stream and fed
// through a Replay. Whatever the input, the replay must never panic,
// must only ever hold payloads that a leader actually framed (applied
// versions strictly increase and every applied frame passed CRC +
// structural validation), and must remain resumable — after the fuzz
// stream, a valid full frame must still apply.
func FuzzReplayApply(f *testing.F) {
	seedDir := f.TempDir()
	s, err := Open(seedDir, Options{NoSync: true})
	if err != nil {
		f.Fatal(err)
	}
	layout := Layout{HeaderLen: 5, ChunkSize: 16}
	cur := bytes.Repeat([]byte{0x11}, layout.HeaderLen+24*layout.ChunkSize)
	if _, err := s.AppendDelta(1, cur, layout); err != nil {
		f.Fatal(err)
	}
	var chainStart int64
	for v := uint64(2); v <= 4; v++ {
		if v == 2 {
			chainStart = s.size
		}
		cur = bytes.Clone(cur)
		cur[layout.HeaderLen+int(v)*layout.ChunkSize] = byte(v)
		if _, err := s.AppendDelta(v, cur, layout); err != nil {
			f.Fatal(err)
		}
	}
	frames, err := s.RecordFramesFrom(1)
	if err != nil {
		f.Fatal(err)
	}
	s.Close()
	var stream []byte
	for _, fr := range frames {
		stream = append(stream, fr...)
	}
	f.Add(stream)
	f.Add(stream[:len(stream)-9]) // torn mid-frame
	midFlip := bytes.Clone(stream)
	midFlip[chainStart+headerSize+deltaHeaderSize+1] ^= 0x08 // inside delta v2
	f.Add(midFlip)
	f.Add(stream[chainStart:]) // orphan deltas, no base
	f.Add([]byte{})
	f.Add([]byte("not a stream"))

	f.Fuzz(func(t *testing.T, data []byte) {
		var r Replay
		rd := bytes.NewReader(data)
		last := uint64(0)
		for {
			frame, err := ReadFrame(rd)
			if err != nil {
				break // torn or garbage stream: framing stops, no state harm
			}
			v, _, err := r.Apply(frame)
			if err != nil {
				continue // rejected frame must leave the replay usable
			}
			if v <= last {
				t.Fatalf("applied versions not increasing: %d then %d", last, v)
			}
			last = v
			if r.Version() != v {
				t.Fatalf("Version() %d after applying %d", r.Version(), v)
			}
		}
		// Never publish garbage: whatever the replay holds now, it must
		// be internally consistent (version 0 iff no payload ever set).
		if (r.Version() == 0) != (r.Payload() == nil) {
			t.Fatalf("replay state torn: version %d with payload %d bytes", r.Version(), len(r.Payload()))
		}
		// Resumable: a fresh full frame beyond any version the fuzz
		// stream could carry still applies.
		rec := frameRecord(recordMagic, ^uint64(0), []byte("recovery payload"))
		if _, _, err := r.Apply(rec); err != nil {
			t.Fatalf("replay not resumable after fuzz stream: %v", err)
		}
	})
}
