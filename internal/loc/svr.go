package loc

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"iupdater/internal/mat"
)

// SVRConfig tunes the epsilon-insensitive support vector regressor.
type SVRConfig struct {
	// C is the box constraint on the dual coefficients.
	C float64
	// Epsilon is the insensitive-tube half width (in target units).
	Epsilon float64
	// Gamma is the RBF kernel width; <= 0 selects the median heuristic
	// 1/(2*median²) over pairwise training distances.
	Gamma float64
	// MaxIter bounds the coordinate-descent sweeps.
	MaxIter int
	// Tol stops training when the largest coefficient change in a sweep
	// falls below it.
	Tol float64
}

// DefaultSVRConfig returns a configuration that works well on
// standardized RSS features.
func DefaultSVRConfig() SVRConfig {
	return SVRConfig{C: 10, Epsilon: 0.05, Gamma: 0, MaxIter: 500, Tol: 1e-5}
}

// SVR is an RBF-kernel epsilon-SVR trained by dual coordinate descent
// (the two-variable SMO subproblem collapses to a one-variable proximal
// update when the bias is absorbed into the kernel as a +1 offset).
// Features are standardized internally.
type SVR struct {
	cfg     SVRConfig
	x       *mat.Dense // standardized training inputs, one row per sample
	beta    []float64
	mean    []float64
	std     []float64
	gamma   float64
	trained bool
}

// NewSVR creates an untrained SVR.
func NewSVR(cfg SVRConfig) *SVR {
	if cfg.C <= 0 {
		cfg.C = 10
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 500
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-5
	}
	return &SVR{cfg: cfg}
}

// Fit trains on rows of x (n samples by d features) against targets y.
func (s *SVR) Fit(x *mat.Dense, y []float64) error {
	n, d := x.Dims()
	if len(y) != n {
		return fmt.Errorf("loc: SVR has %d samples but %d targets", n, len(y))
	}
	if n < 2 {
		return errors.New("loc: SVR needs at least two samples")
	}

	// Standardize features.
	s.mean = make([]float64, d)
	s.std = make([]float64, d)
	for j := 0; j < d; j++ {
		var m float64
		for i := 0; i < n; i++ {
			m += x.At(i, j)
		}
		m /= float64(n)
		var v float64
		for i := 0; i < n; i++ {
			diff := x.At(i, j) - m
			v += diff * diff
		}
		v = math.Sqrt(v / float64(n))
		if v == 0 {
			v = 1
		}
		s.mean[j], s.std[j] = m, v
	}
	xs := mat.New(n, d)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			xs.Set(i, j, (x.At(i, j)-s.mean[j])/s.std[j])
		}
	}
	s.x = xs

	// Median-heuristic gamma.
	s.gamma = s.cfg.Gamma
	if s.gamma <= 0 {
		s.gamma = medianHeuristicGamma(xs)
	}

	// Precompute the kernel matrix with the +1 bias offset.
	k := mat.New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := s.rbf(xs.Row(i), xs.Row(j)) + 1
			k.Set(i, j, v)
			k.Set(j, i, v)
		}
	}

	// Dual coordinate descent on
	//   min ½βᵀKβ - βᵀy + ε·||β||₁,  |β_i| <= C.
	s.beta = make([]float64, n)
	f := make([]float64, n) // f_i = Σ_j β_j K_ij
	for sweep := 0; sweep < s.cfg.MaxIter; sweep++ {
		var maxDelta float64
		for i := 0; i < n; i++ {
			kii := k.At(i, i)
			if kii <= 0 {
				continue
			}
			g := f[i] - y[i]
			z := s.beta[i] - g/kii
			// Soft threshold at ε/K_ii, clip to the box.
			tau := s.cfg.Epsilon / kii
			var nb float64
			switch {
			case z > tau:
				nb = z - tau
			case z < -tau:
				nb = z + tau
			}
			if nb > s.cfg.C {
				nb = s.cfg.C
			} else if nb < -s.cfg.C {
				nb = -s.cfg.C
			}
			delta := nb - s.beta[i]
			if delta == 0 {
				continue
			}
			s.beta[i] = nb
			for j := 0; j < n; j++ {
				f[j] += delta * k.At(i, j)
			}
			if ad := math.Abs(delta); ad > maxDelta {
				maxDelta = ad
			}
		}
		if maxDelta < s.cfg.Tol {
			break
		}
	}
	s.trained = true
	return nil
}

// Predict evaluates the regressor at the feature vector q.
func (s *SVR) Predict(q []float64) (float64, error) {
	if !s.trained {
		return 0, errors.New("loc: SVR not trained")
	}
	if len(q) != len(s.mean) {
		return 0, fmt.Errorf("loc: query has %d features, model has %d", len(q), len(s.mean))
	}
	qs := make([]float64, len(q))
	for j, v := range q {
		qs[j] = (v - s.mean[j]) / s.std[j]
	}
	var out float64
	n, _ := s.x.Dims()
	for i := 0; i < n; i++ {
		if s.beta[i] == 0 {
			continue
		}
		out += s.beta[i] * (s.rbf(s.x.Row(i), qs) + 1)
	}
	return out, nil
}

// SupportVectors returns the number of non-zero dual coefficients.
func (s *SVR) SupportVectors() int {
	var c int
	for _, b := range s.beta {
		if b != 0 {
			c++
		}
	}
	return c
}

func (s *SVR) rbf(a, b []float64) float64 {
	var d float64
	for i := range a {
		diff := a[i] - b[i]
		d += diff * diff
	}
	return math.Exp(-s.gamma * d)
}

// medianHeuristicGamma returns 1/(2*median²) of the pairwise Euclidean
// distances between rows of x.
func medianHeuristicGamma(x *mat.Dense) float64 {
	n, d := x.Dims()
	dists := make([]float64, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			var s float64
			for c := 0; c < d; c++ {
				diff := x.At(i, c) - x.At(j, c)
				s += diff * diff
			}
			dists = append(dists, math.Sqrt(s))
		}
	}
	if len(dists) == 0 {
		return 1
	}
	sort.Float64s(dists)
	med := dists[len(dists)/2]
	if med == 0 {
		return 1
	}
	return 1 / (2 * med * med)
}
