package loc

import (
	"fmt"
	"math"
	"sort"

	"iupdater/internal/mat"
)

// NearestColumn is the simplest fingerprint matcher: the column with the
// smallest Euclidean distance to the measurement wins.
type NearestColumn struct {
	x *mat.Dense
}

var _ Localizer = (*NearestColumn)(nil)

// NewNearestColumn builds a nearest-column matcher over x.
func NewNearestColumn(x *mat.Dense) *NearestColumn {
	return &NearestColumn{x: x}
}

// Locate implements Localizer.
func (nc *NearestColumn) Locate(y []float64) (int, error) {
	m, n := nc.x.Dims()
	if len(y) != m {
		return 0, fmt.Errorf("loc: measurement has %d links, fingerprints have %d", len(y), m)
	}
	best, bestDist := -1, math.Inf(1)
	for j := 0; j < n; j++ {
		var d float64
		for i := 0; i < m; i++ {
			diff := nc.x.At(i, j) - y[i]
			d += diff * diff
		}
		if d < bestDist {
			best, bestDist = j, d
		}
	}
	return best, nil
}

// KNN is the classic weighted K-nearest-neighbor fingerprint matcher: the
// estimate is the cell among the K closest columns with the largest
// inverse-distance weight mass per cell (here cells are distinct columns,
// so it reduces to the closest of the K columns unless weights are
// aggregated by the caller over repeated measurements).
type KNN struct {
	x *mat.Dense
	k int
}

var _ Localizer = (*KNN)(nil)

// NewKNN builds a K-nearest-neighbor matcher; k <= 0 defaults to 3.
func NewKNN(x *mat.Dense, k int) *KNN {
	if k <= 0 {
		k = 3
	}
	return &KNN{x: x, k: k}
}

// Neighbors returns the k nearest columns and their distances, ascending.
func (kn *KNN) Neighbors(y []float64) ([]int, []float64, error) {
	m, n := kn.x.Dims()
	if len(y) != m {
		return nil, nil, fmt.Errorf("loc: measurement has %d links, fingerprints have %d", len(y), m)
	}
	type cand struct {
		j int
		d float64
	}
	cands := make([]cand, n)
	for j := 0; j < n; j++ {
		var d float64
		for i := 0; i < m; i++ {
			diff := kn.x.At(i, j) - y[i]
			d += diff * diff
		}
		cands[j] = cand{j: j, d: math.Sqrt(d)}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].d < cands[b].d })
	k := kn.k
	if k > n {
		k = n
	}
	idx := make([]int, k)
	dist := make([]float64, k)
	for i := 0; i < k; i++ {
		idx[i], dist[i] = cands[i].j, cands[i].d
	}
	return idx, dist, nil
}

// Locate implements Localizer: inverse-distance-weighted vote over the
// K nearest columns' strip positions, snapped back to the best cell.
func (kn *KNN) Locate(y []float64) (int, error) {
	idx, dist, err := kn.Neighbors(y)
	if err != nil {
		return 0, err
	}
	// Weighted centroid in (strip-major) index space is meaningless when
	// neighbors span strips; use weight-per-cell and return the heaviest.
	best, bestW := idx[0], 0.0
	for i, j := range idx {
		w := 1 / (dist[i] + 1e-9)
		if w > bestW {
			best, bestW = j, w
		}
	}
	return best, nil
}
