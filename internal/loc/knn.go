package loc

import (
	"fmt"
	"math"

	"iupdater/internal/mat"
)

// NearestColumn is the simplest fingerprint matcher: the column with the
// smallest Euclidean distance to the measurement wins (lowest index on
// ties). Queries go through the column index, so candidate columns are
// pruned by the precomputed norm and shard bounds without changing the
// result.
type NearestColumn struct {
	ix *Index
}

var _ Localizer = (*NearestColumn)(nil)

// NewNearestColumn builds a nearest-column matcher over x with default
// (pruned, exact-result) search.
func NewNearestColumn(x *mat.Dense) *NearestColumn {
	return NewNearestColumnIndex(NewIndex(x, 0, IndexConfig{}))
}

// NewNearestColumnIndex builds a nearest-column matcher over a prebuilt
// column index.
func NewNearestColumnIndex(ix *Index) *NearestColumn {
	return &NearestColumn{ix: ix}
}

// Locate implements Localizer.
func (nc *NearestColumn) Locate(y []float64) (int, error) {
	if m, _ := nc.ix.Dims(); len(y) != m {
		return 0, fmt.Errorf("loc: measurement has %d links, fingerprints have %d", len(y), m)
	}
	j, _ := nc.ix.NearestRaw(y)
	return j, nil
}

// KNN is the classic K-nearest-neighbor fingerprint matcher. Neighbors
// reports the K closest columns through a bounded top-k heap (no full
// sort over N candidates); Locate resolves to the single nearest column
// — see its comment for why the inverse-distance vote adds nothing
// here.
type KNN struct {
	ix *Index
	k  int
}

var _ Localizer = (*KNN)(nil)

// NewKNN builds a K-nearest-neighbor matcher; k <= 0 defaults to 3.
func NewKNN(x *mat.Dense, k int) *KNN {
	return NewKNNIndex(NewIndex(x, 0, IndexConfig{}), k)
}

// NewKNNIndex builds a K-nearest-neighbor matcher over a prebuilt
// column index.
func NewKNNIndex(ix *Index, k int) *KNN {
	if k <= 0 {
		k = 3
	}
	return &KNN{ix: ix, k: k}
}

// Neighbors returns the k nearest columns and their distances, in
// ascending (distance, column) order. The only allocations are the two
// result slices; use NeighborsInto to avoid even those.
func (kn *KNN) Neighbors(y []float64) ([]int, []float64, error) {
	_, n := kn.ix.Dims()
	k := kn.k
	if k > n {
		k = n
	}
	idx := make([]int, k)
	dist := make([]float64, k)
	got, err := kn.NeighborsInto(y, idx, dist)
	if err != nil {
		return nil, nil, err
	}
	return idx[:got], dist[:got], nil
}

// NeighborsInto fills idx/dist (each of length >= min(k, n)) with the k
// nearest columns in ascending (distance, column) order and returns how
// many were produced. It performs no allocations in steady state.
func (kn *KNN) NeighborsInto(y []float64, idx []int, dist []float64) (int, error) {
	m, _ := kn.ix.Dims()
	if len(y) != m {
		return 0, fmt.Errorf("loc: measurement has %d links, fingerprints have %d", len(y), m)
	}
	got := kn.ix.TopKRaw(y, kn.k, idx, dist)
	for i := 0; i < got; i++ {
		dist[i] = math.Sqrt(dist[i])
	}
	return got, nil
}

// Locate implements Localizer by returning the nearest column.
//
// In this codebase every fingerprint column is a distinct grid cell, so
// the classic inverse-distance-weighted KNN vote degenerates: each cell
// receives exactly one weight term, the nearest neighbor's weight is by
// construction the largest, and the vote always elects the nearest
// column. (An earlier implementation ran that vote and, inevitably,
// returned idx[0] every time.) Locate therefore asks the index for the
// nearest column directly; callers that want blended estimates across
// repeated measurements aggregate Neighbors output themselves.
func (kn *KNN) Locate(y []float64) (int, error) {
	m, _ := kn.ix.Dims()
	if len(y) != m {
		return 0, fmt.Errorf("loc: measurement has %d links, fingerprints have %d", len(y), m)
	}
	j, _ := kn.ix.NearestRaw(y)
	return j, nil
}
