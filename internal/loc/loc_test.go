package loc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"iupdater/internal/geom"
	"iupdater/internal/mat"
	"iupdater/internal/testbed"
)

// officeScenario builds a fresh office fingerprint database and its
// surveyor.
func officeScenario(seed uint64) (*testbed.Surveyor, *mat.Dense) {
	s := testbed.NewSurveyor(testbed.Office(), seed)
	fp, _ := s.FullSurvey(0, testbed.TraditionalSamples)
	return s, fp.X
}

func TestOMPLocatesCellCenterTargets(t *testing.T) {
	s, x := officeScenario(21)
	omp := NewOMP(x, OMPConfig{})
	g := s.Channel.Grid()
	correct, total := 0, 0
	for _, j := range []int{0, 7, 20, 41, 50, 66, 77, 95} {
		y := s.MeasureOnline(g.Center(j), 600, testbed.IUpdaterSamples)
		got, err := omp.Locate(y)
		if err != nil {
			t.Fatalf("cell %d: %v", j, err)
		}
		total++
		if got == j {
			correct++
			continue
		}
		// Allow near-misses only within 1.5 m.
		if g.Center(got).Distance(g.Center(j)) < 1.5 {
			correct++
		}
	}
	// The online path includes ambient-crowd disturbance, which can
	// defeat one or two matches even against a fresh database.
	if correct < total-2 {
		t.Errorf("OMP located %d/%d targets within 1.5 m", correct, total)
	}
}

func TestOMPRejectsBadDimensions(t *testing.T) {
	_, x := officeScenario(22)
	omp := NewOMP(x, OMPConfig{})
	if _, err := omp.Locate(make([]float64, 5)); err == nil {
		t.Error("wrong measurement length accepted")
	}
}

func TestOMPPursueSelectsDominantFirst(t *testing.T) {
	s, x := officeScenario(23)
	g := s.Channel.Grid()
	omp := NewOMP(x, OMPConfig{MaxSparsity: 3})
	j := g.CellIndex(4, 6)
	y := s.MeasureOnline(g.Center(j), 900, testbed.IUpdaterSamples)
	sel, err := omp.Pursue(y)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) == 0 || len(sel) > 3 {
		t.Fatalf("selected %d columns", len(sel))
	}
	if d := g.Center(sel[0]).Distance(g.Center(j)); d > 1.5 {
		t.Errorf("first selected column %d is %.2f m from the target", sel[0], d)
	}
}

func TestSparseRecoverExactSignals(t *testing.T) {
	// OMP must exactly recover k-sparse signals over a random Gaussian
	// dictionary with high probability (Tropp-Gilbert).
	rng := rand.New(rand.NewSource(24))
	const m, n, k = 24, 64, 3
	a := mat.RandomNormal(m, n, rng)
	supp := []int{5, 17, 40}
	w := map[int]float64{5: 2.0, 17: -1.5, 40: 1.0}
	y := make([]float64, m)
	for _, j := range supp {
		col := a.Col(j)
		for i := range y {
			y[i] += w[j] * col[i]
		}
	}
	sel, coef, err := SparseRecover(a, y, k, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != k {
		t.Fatalf("selected %v", sel)
	}
	found := map[int]float64{}
	for i, j := range sel {
		found[j] = coef[i]
	}
	for _, j := range supp {
		got, ok := found[j]
		if !ok {
			t.Fatalf("support column %d not recovered (got %v)", j, sel)
		}
		if math.Abs(got-w[j]) > 1e-8 {
			t.Errorf("coefficient at %d = %v, want %v", j, got, w[j])
		}
	}
}

func TestSparseRecoverValidation(t *testing.T) {
	a := mat.New(4, 8)
	if _, _, err := SparseRecover(a, make([]float64, 3), 2, 1e-9); err == nil {
		t.Error("dim mismatch accepted")
	}
	if _, _, err := SparseRecover(a, make([]float64, 4), 0, 1e-9); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestNearestColumnExactOnCleanColumns(t *testing.T) {
	_, x := officeScenario(25)
	nc := NewNearestColumn(x)
	for _, j := range []int{0, 13, 47, 95} {
		got, err := nc.Locate(x.Col(j))
		if err != nil {
			t.Fatal(err)
		}
		if got != j {
			t.Errorf("Locate(column %d) = %d", j, got)
		}
	}
}

func TestKNNNeighborsSortedAndLocate(t *testing.T) {
	_, x := officeScenario(26)
	knn := NewKNN(x, 5)
	y := x.Col(30)
	idx, dist, err := knn.Neighbors(y)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 5 {
		t.Fatalf("got %d neighbors", len(idx))
	}
	if idx[0] != 30 || dist[0] > 1e-9 {
		t.Errorf("nearest neighbor of column 30 is %d at %v", idx[0], dist[0])
	}
	for i := 1; i < len(dist); i++ {
		if dist[i] < dist[i-1] {
			t.Error("distances not sorted")
		}
	}
	got, err := knn.Locate(y)
	if err != nil {
		t.Fatal(err)
	}
	if got != 30 {
		t.Errorf("Locate = %d, want 30", got)
	}
}

func TestSVRFitsSmoothFunction(t *testing.T) {
	// y = sin(x0) + 0.5*x1 on [0,3]²; SVR should fit well within epsilon.
	rng := rand.New(rand.NewSource(27))
	const n = 80
	x := mat.New(n, 2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a, b := rng.Float64()*3, rng.Float64()*3
		x.Set(i, 0, a)
		x.Set(i, 1, b)
		y[i] = math.Sin(a) + 0.5*b
	}
	svr := NewSVR(DefaultSVRConfig())
	if err := svr.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	var rmse float64
	for trial := 0; trial < 50; trial++ {
		a, b := rng.Float64()*3, rng.Float64()*3
		pred, err := svr.Predict([]float64{a, b})
		if err != nil {
			t.Fatal(err)
		}
		d := pred - (math.Sin(a) + 0.5*b)
		rmse += d * d
	}
	rmse = math.Sqrt(rmse / 50)
	if rmse > 0.25 {
		t.Errorf("SVR RMSE = %.3f, want < 0.25", rmse)
	}
	if svr.SupportVectors() == 0 {
		t.Error("no support vectors")
	}
}

func TestSVRValidation(t *testing.T) {
	svr := NewSVR(DefaultSVRConfig())
	if err := svr.Fit(mat.New(3, 2), []float64{1, 2}); err == nil {
		t.Error("target length mismatch accepted")
	}
	if _, err := svr.Predict([]float64{1, 2}); err == nil {
		t.Error("prediction before training accepted")
	}
	if err := svr.Fit(mat.NewFromRows([][]float64{{1, 2}}), []float64{1}); err == nil {
		t.Error("single-sample training accepted")
	}
}

func TestSVREpsilonInsensitiveSparsity(t *testing.T) {
	// With a huge epsilon tube every residual fits inside it and all dual
	// coefficients stay zero.
	rng := rand.New(rand.NewSource(28))
	x := mat.RandomNormal(20, 2, rng)
	y := make([]float64, 20)
	for i := range y {
		y[i] = 0.01 * rng.NormFloat64()
	}
	cfg := DefaultSVRConfig()
	cfg.Epsilon = 10
	svr := NewSVR(cfg)
	if err := svr.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if got := svr.SupportVectors(); got != 0 {
		t.Errorf("support vectors = %d, want 0 for huge epsilon", got)
	}
}

func TestRASSLocalizesFreshDatabase(t *testing.T) {
	s, x := officeScenario(29)
	g := s.Channel.Grid()
	rass, err := NewRASS(x, g, DefaultSVRConfig())
	if err != nil {
		t.Fatal(err)
	}
	var sumErr float64
	const trials = 20
	rng := rand.New(rand.NewSource(30))
	for k := 0; k < trials; k++ {
		p := geom.Point{X: rng.Float64() * g.Width, Y: rng.Float64() * g.Height}
		y := s.MeasureOnline(p, 400+float64(k)*30, testbed.IUpdaterSamples)
		pred, err := rass.Predict(y)
		if err != nil {
			t.Fatal(err)
		}
		sumErr += pred.Distance(p)
	}
	mean := sumErr / trials
	// RASS on a fresh database achieves meter-level accuracy (its paper
	// reports ~1 m-class errors on similar testbeds).
	if mean > 2.5 {
		t.Errorf("RASS mean error %.2f m on fresh database, want < 2.5", mean)
	}
}

func TestRASSValidation(t *testing.T) {
	g := geom.NewGrid(12, 9, 8, 12)
	if _, err := NewRASS(mat.New(8, 50), g, DefaultSVRConfig()); err == nil {
		t.Error("mismatched grid accepted")
	}
}

func TestQuickNearestColumnSelfConsistency(t *testing.T) {
	// Any column fed back verbatim must locate to itself (clean argmin).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 3 + rng.Intn(6)
		n := 4 + rng.Intn(20)
		x := mat.RandomNormal(m, n, rng)
		nc := NewNearestColumn(x)
		j := rng.Intn(n)
		got, err := nc.Locate(x.Col(j))
		return err == nil && got == j
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickOMPAlwaysReturnsValidCell(t *testing.T) {
	s, x := officeScenario(31)
	g := s.Channel.Grid()
	omp := NewOMP(x, OMPConfig{})
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := geom.Point{X: rng.Float64() * g.Width, Y: rng.Float64() * g.Height}
		y := s.MeasureOnline(p, rng.Float64()*1e6, 1)
		cell, err := omp.Locate(y)
		return err == nil && cell >= 0 && cell < g.NumCells()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
