package loc

import (
	"math"
	"sync"
	"sync/atomic"

	"iupdater/internal/mat"
)

// SearchMode selects how an Index answers candidate-column searches.
type SearchMode int

const (
	// SearchPruned (the default) returns exactly the same answers as the
	// exhaustive scan — including on ties, which resolve to the lowest
	// column index in both — but skips whole shards and individual
	// columns whose triangle-inequality / Cauchy-Schwarz bounds prove
	// they cannot beat the current best. Fewer columns touched, bit-
	// identical results.
	SearchPruned SearchMode = iota
	// SearchExact is the bit-exact exhaustive reference: every column is
	// evaluated in ascending index order with no bounds machinery. It
	// exists so the pruned and sharded tiers always have a ground truth
	// to be checked against (and for callers that want the paper's
	// original O(M*N) scan back).
	SearchExact
	// SearchSharded is the approximate coarse-to-fine tier: the query is
	// routed to the Fanout most promising shards (by centroid
	// distance/correlation) and only their columns are evaluated. Results
	// can differ from exact when the true best column lives in a shard
	// beyond the fanout; the accuracy budget is measured by the eval
	// tests, not assumed.
	SearchSharded
)

// String names the search tier ("pruned", "exact", "sharded") for
// summaries and metric labels.
func (m SearchMode) String() string {
	switch m {
	case SearchExact:
		return "exact"
	case SearchSharded:
		return "sharded"
	default:
		return "pruned"
	}
}

// IndexConfig tunes an Index.
type IndexConfig struct {
	// Mode selects the search tier; the zero value is SearchPruned.
	Mode SearchMode
	// Fanout is the number of shards examined per query in SearchSharded
	// mode; <= 0 selects the default (4).
	Fanout int
	// BlockSize is the number of grid cells per shard; <= 0 selects
	// ~sqrt(N) clipped to strip boundaries, which balances the coarse
	// routing scan against the fine per-column scan.
	BlockSize int
}

// DefaultShardFanout is the sharded-mode routing width when
// IndexConfig.Fanout is unset.
const DefaultShardFanout = 4

// IndexStats are cumulative counters of the search work an Index has
// performed, read with Index.Stats. ColumnEvals is the number of full
// column evaluations (one length-M inner product or distance each) —
// the quantity the pruned and sharded tiers exist to reduce; the
// exhaustive reference costs N of them per candidate search.
type IndexStats struct {
	// Queries is the number of candidate searches answered.
	Queries uint64
	// ColumnEvals is the number of full column distance/correlation
	// evaluations performed.
	ColumnEvals uint64
	// ShardEvals is the number of shard routing evaluations (one
	// centroid distance/correlation each) performed.
	ShardEvals uint64
}

// SearchInfo accumulates the per-query cost of a single candidate
// search (or pursuit, which runs one search per round). Unlike
// IndexStats — which aggregates across every concurrent query — a
// SearchInfo passed down a query path receives exactly that query's
// counts, so request-scoped traces can attribute cost causally. All
// counters accumulate; zero the struct between queries. A nil
// *SearchInfo is accepted everywhere and recorded nowhere.
type SearchInfo struct {
	// ColumnEvals counts full column correlation evaluations.
	ColumnEvals uint64
	// ShardEvals counts shard routing (bound) evaluations.
	ShardEvals uint64
	// ShardsVisited counts shards actually scanned after pruning.
	ShardsVisited int
	// Rounds counts pursuit rounds (greedy column selections).
	Rounds int
}

// space is one geometric view of the fingerprint columns: the raw
// columns (nearest-column and KNN matching), the mean-centered columns
// (the drift residual), or the centered-and-normalized unit columns
// (OMP correlation). Each carries the per-shard centroid/radius bounds
// and per-column norms for its own metric.
type space struct {
	data  []float64 // column-major m*n
	cents []float64 // shard centroids, m values per shard
	rads  []float64 // shard radii: max distance from centroid to a member
	norms []float64 // per-column Euclidean norms in this space
}

// shardRange is one shard's contiguous column range [lo, hi). Shards
// never cross strip boundaries, so a shard is a spatially contiguous
// run of cells along one link's strip.
type shardRange struct{ lo, hi int }

// Index is a snapshot-time search accelerator over one immutable
// fingerprint matrix. It is built once per published snapshot (on the
// write path) and answers the read path's candidate-column searches:
// nearest raw column (NearestColumn, KNN), nearest centered column (the
// drift residual) and best unit-column correlation (OMP pursuit).
//
// All storage is column-major — the exhaustive reference scan alone is
// already faster than striding a row-major matrix — and all query state
// lives in a pooled per-query scratch, so searches are allocation-free
// in steady state and safe for unlimited concurrent use.
type Index struct {
	m, n int
	cfg  IndexConfig

	raw  space // raw columns
	cen  space // mean-centered columns
	unit space // mean-centered, unit-normalized columns

	colMean []float64 // per-column raw mean
	shards  []shardRange

	queries    atomic.Uint64
	colEvals   atomic.Uint64
	shardEvals atomic.Uint64

	pool sync.Pool // *queryScratch
}

// NewIndex builds an index over the columns of x. stripLen is the
// number of cells per grid strip (geom.Grid.PerStrip) so shards align
// with the spatial layout; <= 0 treats the whole column range as one
// strip.
func NewIndex(x *mat.Dense, stripLen int, cfg IndexConfig) *Index {
	m, n := x.Dims()
	return NewIndexCols(m, n, func(j int, dst []float64) {
		for i := 0; i < m; i++ {
			dst[i] = x.At(i, j)
		}
	}, stripLen, cfg)
}

// NewIndexCols builds an index over n columns of length m read through
// col, which must fill dst (length m) with column j. It avoids
// materializing an intermediate matrix when the caller already stores
// columns contiguously.
func NewIndexCols(m, n int, col func(j int, dst []float64), stripLen int, cfg IndexConfig) *Index {
	if m <= 0 || n <= 0 {
		panic("loc: NewIndex requires positive dimensions")
	}
	if cfg.Fanout <= 0 {
		cfg.Fanout = DefaultShardFanout
	}
	ix := &Index{m: m, n: n, cfg: cfg}
	ix.raw.data = make([]float64, m*n)
	ix.cen.data = make([]float64, m*n)
	ix.unit.data = make([]float64, m*n)
	ix.raw.norms = make([]float64, n)
	ix.cen.norms = make([]float64, n)
	ix.unit.norms = make([]float64, n)
	ix.colMean = make([]float64, n)
	for j := 0; j < n; j++ {
		rawj := ix.raw.data[j*m : (j+1)*m]
		col(j, rawj)
		var mean float64
		for _, v := range rawj {
			mean += v
		}
		mean /= float64(m)
		ix.colMean[j] = mean
		cenj := ix.cen.data[j*m : (j+1)*m]
		unitj := ix.unit.data[j*m : (j+1)*m]
		var rawSq, cenSq float64
		for i, v := range rawj {
			rawSq += v * v
			c := v - mean
			cenj[i] = c
			unitj[i] = c
			cenSq += c * c
		}
		ix.raw.norms[j] = math.Sqrt(rawSq)
		norm := math.Sqrt(cenSq)
		ix.cen.norms[j] = norm
		if norm > 0 {
			for i := range unitj {
				unitj[i] /= norm
			}
			ix.unit.norms[j] = 1
		}
	}
	ix.buildShards(stripLen)
	return ix
}

// buildShards splits the columns into contiguous per-strip blocks and
// precomputes each space's centroid and covering radius per shard.
func (ix *Index) buildShards(stripLen int) {
	if stripLen <= 0 || stripLen > ix.n {
		stripLen = ix.n
	}
	block := ix.cfg.BlockSize
	if block <= 0 {
		block = int(math.Round(math.Sqrt(float64(ix.n))))
	}
	if block < 1 {
		block = 1
	}
	if block > stripLen {
		block = stripLen
	}
	ix.cfg.BlockSize = block
	for lo := 0; lo < ix.n; {
		stripEnd := lo - lo%stripLen + stripLen
		if stripEnd > ix.n {
			stripEnd = ix.n
		}
		hi := lo + block
		if hi > stripEnd {
			hi = stripEnd
		}
		ix.shards = append(ix.shards, shardRange{lo: lo, hi: hi})
		lo = hi
	}
	for _, sp := range []*space{&ix.raw, &ix.cen, &ix.unit} {
		sp.cents = make([]float64, len(ix.shards)*ix.m)
		sp.rads = make([]float64, len(ix.shards))
		for s, sh := range ix.shards {
			cent := sp.cents[s*ix.m : (s+1)*ix.m]
			for j := sh.lo; j < sh.hi; j++ {
				colj := sp.data[j*ix.m : (j+1)*ix.m]
				for i, v := range colj {
					cent[i] += v
				}
			}
			inv := 1 / float64(sh.hi-sh.lo)
			for i := range cent {
				cent[i] *= inv
			}
			var rad float64
			for j := sh.lo; j < sh.hi; j++ {
				colj := sp.data[j*ix.m : (j+1)*ix.m]
				var d float64
				for i, v := range colj {
					diff := v - cent[i]
					d += diff * diff
				}
				if d > rad {
					rad = d
				}
			}
			sp.rads[s] = math.Sqrt(rad)
		}
	}
}

// Dims returns the number of links m and locations n.
func (ix *Index) Dims() (m, n int) { return ix.m, ix.n }

// Mode returns the configured search tier.
func (ix *Index) Mode() SearchMode { return ix.cfg.Mode }

// Stats returns the cumulative search counters. Safe for concurrent
// use; counters are updated once per query, not per column.
func (ix *Index) Stats() IndexStats {
	return IndexStats{
		Queries:     ix.queries.Load(),
		ColumnEvals: ix.colEvals.Load(),
		ShardEvals:  ix.shardEvals.Load(),
	}
}

// rawAt returns the raw fingerprint value of link i at location j.
func (ix *Index) rawAt(i, j int) float64 { return ix.raw.data[j*ix.m+i] }

// rawCol returns location j's raw fingerprint column (a view).
func (ix *Index) rawCol(j int) []float64 { return ix.raw.data[j*ix.m : (j+1)*ix.m] }

// unitCol returns location j's centered, normalized column (a view).
func (ix *Index) unitCol(j int) []float64 { return ix.unit.data[j*ix.m : (j+1)*ix.m] }

// CenteredCol returns location j's mean-centered column (a read-only
// view). Drift attribution reads the best-match column through it to
// break the residual back into per-link errors.
func (ix *Index) CenteredCol(j int) []float64 { return ix.cen.data[j*ix.m : (j+1)*ix.m] }

// colNorms returns the per-column centered norms (a view; do not
// modify — copy before masking).
func (ix *Index) colNorms() []float64 { return ix.cen.norms }

// colMeans returns the per-column raw means (a view).
func (ix *Index) colMeans() []float64 { return ix.colMean }

// queryScratch is the pooled per-query working state: shard routing
// order and keys, the top-k heap, and the OMP pursuit buffers. All
// slices grow to the index's dimensions on first use and are then
// reused, so steady-state queries perform zero allocations.
type queryScratch struct {
	order []int     // shard visit order
	key   []float64 // shard routing key, parallel to order

	heapJ []int     // top-k heap: column indices
	heapD []float64 // top-k heap: squared distances

	yc     []float64 // centered query
	target []float64 // centered query preserved across pursuit rounds
	resid  []float64 // pursuit residual
	qr     []float64 // m x k column-major Householder working copy
	v      []float64 // Householder reflector scratch
	rhs    []float64 // projected right-hand side
	sel    []int     // selected columns
	w      []float64 // least-squares weights
}

func (ix *Index) getScratch() *queryScratch {
	s, _ := ix.pool.Get().(*queryScratch)
	if s == nil {
		s = new(queryScratch)
	}
	return s
}

func (ix *Index) putScratch(s *queryScratch) { ix.pool.Put(s) }

// growF returns v with length n, reusing its backing array when it
// fits.
func growF(v []float64, n int) []float64 {
	if cap(v) < n {
		return make([]float64, n)
	}
	return v[:n]
}

// growI is growF for int slices.
func growI(v []int, n int) []int {
	if cap(v) < n {
		return make([]int, n)
	}
	return v[:n]
}

// pruneSlack and corrSlack back every pruning comparison off by a tiny
// relative margin: the bounds hold exactly over the reals, and the
// slack absorbs the few-ulp rounding of their float evaluation so it
// can never disqualify the true winner. The cost is a vanishing number
// of extra column evaluations near the boundary.
const (
	pruneSlack = 1 - 1e-9 // deflates distance lower bounds
	corrSlack  = 1 + 1e-9 // inflates correlation upper bounds
)

// distSq returns the squared Euclidean distance between a and b.
func distSq(a, b []float64) float64 {
	var d float64
	for i, v := range a {
		diff := v - b[i]
		d += diff * diff
	}
	return d
}

// routeByDistance fills s.order with shard indices sorted by ascending
// lower-bound distance max(0, d(q, centroid) - radius) and s.key with
// that bound, and returns the number of shards. Counted as one shard
// evaluation per shard.
func (ix *Index) routeByDistance(sp *space, q []float64, s *queryScratch) int {
	S := len(ix.shards)
	s.order = growI(s.order, S)
	s.key = growF(s.key, S)
	for si := 0; si < S; si++ {
		cent := sp.cents[si*ix.m : (si+1)*ix.m]
		lb := math.Sqrt(distSq(q, cent)) - sp.rads[si]
		if lb < 0 {
			lb = 0
		}
		s.order[si] = si
		s.key[si] = lb
	}
	sortByKey(s.order, s.key, false)
	return S
}

// sortByKey insertion-sorts order so that key[order[i]] is ascending
// (desc=false) or descending (desc=true). Shard counts are small (about
// sqrt(N)), where insertion sort beats sort.Slice without allocating.
func sortByKey(order []int, key []float64, desc bool) {
	for i := 1; i < len(order); i++ {
		oi := order[i]
		ki := key[oi]
		j := i - 1
		for j >= 0 {
			kj := key[order[j]]
			if desc {
				if kj >= ki {
					break
				}
			} else {
				if kj <= ki {
					break
				}
			}
			order[j+1] = order[j]
			j--
		}
		order[j+1] = oi
	}
}

// nearest returns the column of sp minimizing the squared Euclidean
// distance to q, with ties resolved to the lowest column index, plus
// that squared distance. Exact under SearchExact and SearchPruned;
// under SearchSharded only the Fanout nearest shards are searched.
func (ix *Index) nearest(sp *space, q []float64, mode SearchMode) (int, float64) {
	best, bestJ := math.Inf(1), -1
	var ce, se uint64
	if mode == SearchExact || len(ix.shards) <= 1 {
		for j := 0; j < ix.n; j++ {
			d := distSq(q, sp.data[j*ix.m:(j+1)*ix.m])
			ce++
			if d < best {
				best, bestJ = d, j
			}
		}
	} else {
		s := ix.getScratch()
		var qn float64
		for _, v := range q {
			qn += v * v
		}
		qn = math.Sqrt(qn)
		S := ix.routeByDistance(sp, q, s)
		se = uint64(S)
		visited := 0
		for _, si := range s.order {
			if mode == SearchSharded && visited >= ix.cfg.Fanout {
				break
			}
			lb := s.key[si]
			if lb*lb*pruneSlack > best {
				break // shards are in ascending bound order: all pruned
			}
			visited++
			sh := ix.shards[si]
			for j := sh.lo; j < sh.hi; j++ {
				// Cheap per-column norm bound: d >= (|x_j| - |q|)^2.
				nb := sp.norms[j] - qn
				if nb*nb*pruneSlack > best {
					continue
				}
				d := distSq(q, sp.data[j*ix.m:(j+1)*ix.m])
				ce++
				if d < best || (d == best && j < bestJ) {
					best, bestJ = d, j
				}
			}
		}
		ix.putScratch(s)
	}
	ix.queries.Add(1)
	ix.colEvals.Add(ce)
	if se > 0 {
		ix.shardEvals.Add(se)
	}
	return bestJ, best
}

// topK fills outJ/outD (length >= k) with the k columns of sp nearest
// to q in ascending (squared distance, column) order and returns k.
// Ties resolve to lower column indices. Exactness per mode is as in
// nearest.
func (ix *Index) topK(sp *space, q []float64, k int, outJ []int, outD []float64, mode SearchMode) int {
	if k > ix.n {
		k = ix.n
	}
	if k <= 0 {
		return 0
	}
	s := ix.getScratch()
	s.heapJ = growI(s.heapJ, 0)
	s.heapD = growF(s.heapD, 0)
	var ce, se uint64
	push := func(j int, d float64) {
		if len(s.heapJ) < k {
			s.heapJ = append(s.heapJ, j)
			s.heapD = append(s.heapD, d)
			siftUp(s.heapJ, s.heapD, len(s.heapJ)-1)
			return
		}
		// Replace the root (the worst kept candidate) when (d, j) is
		// lexicographically better.
		if d > s.heapD[0] || (d == s.heapD[0] && j > s.heapJ[0]) {
			return
		}
		s.heapJ[0], s.heapD[0] = j, d
		siftDown(s.heapJ, s.heapD, 0)
	}
	bound := func() float64 {
		if len(s.heapJ) < k {
			return math.Inf(1)
		}
		return s.heapD[0]
	}
	if mode == SearchExact || len(ix.shards) <= 1 {
		for j := 0; j < ix.n; j++ {
			d := distSq(q, sp.data[j*ix.m:(j+1)*ix.m])
			ce++
			push(j, d)
		}
	} else {
		var qn float64
		for _, v := range q {
			qn += v * v
		}
		qn = math.Sqrt(qn)
		S := ix.routeByDistance(sp, q, s)
		se = uint64(S)
		visited := 0
		for _, si := range s.order {
			if mode == SearchSharded && visited >= ix.cfg.Fanout {
				break
			}
			lb := s.key[si]
			if b := bound(); lb*lb*pruneSlack > b {
				break
			}
			visited++
			sh := ix.shards[si]
			for j := sh.lo; j < sh.hi; j++ {
				nb := sp.norms[j] - qn
				if b := bound(); nb*nb*pruneSlack > b {
					continue
				}
				d := distSq(q, sp.data[j*ix.m:(j+1)*ix.m])
				ce++
				push(j, d)
			}
		}
	}
	// Drain the max-heap back to front for ascending output.
	got := len(s.heapJ)
	for i := got - 1; i >= 0; i-- {
		outJ[i], outD[i] = s.heapJ[0], s.heapD[0]
		last := len(s.heapJ) - 1
		s.heapJ[0], s.heapD[0] = s.heapJ[last], s.heapD[last]
		s.heapJ = s.heapJ[:last]
		s.heapD = s.heapD[:last]
		if last > 0 {
			siftDown(s.heapJ, s.heapD, 0)
		}
	}
	ix.putScratch(s)
	ix.queries.Add(1)
	ix.colEvals.Add(ce)
	if se > 0 {
		ix.shardEvals.Add(se)
	}
	return got
}

// heapWorse reports whether entry a is lexicographically worse (larger
// distance, then larger index) than entry b — the max-heap ordering.
func heapWorse(hJ []int, hD []float64, a, b int) bool {
	if hD[a] != hD[b] {
		return hD[a] > hD[b]
	}
	return hJ[a] > hJ[b]
}

func siftUp(hJ []int, hD []float64, i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !heapWorse(hJ, hD, i, p) {
			return
		}
		hJ[i], hJ[p] = hJ[p], hJ[i]
		hD[i], hD[p] = hD[p], hD[i]
		i = p
	}
}

func siftDown(hJ []int, hD []float64, i int) {
	n := len(hJ)
	for {
		l, r := 2*i+1, 2*i+2
		worst := i
		if l < n && heapWorse(hJ, hD, l, worst) {
			worst = l
		}
		if r < n && heapWorse(hJ, hD, r, worst) {
			worst = r
		}
		if worst == i {
			return
		}
		hJ[i], hJ[worst] = hJ[worst], hJ[i]
		hD[i], hD[worst] = hD[worst], hD[i]
		i = worst
	}
}

// NearestRaw returns the raw fingerprint column nearest to y and the
// squared Euclidean distance to it.
func (ix *Index) NearestRaw(y []float64) (int, float64) {
	return ix.nearest(&ix.raw, y, ix.cfg.Mode)
}

// TopKRaw fills outJ/outD with the k raw columns nearest to y in
// ascending (squared distance, column) order and returns how many were
// produced (min(k, n)).
func (ix *Index) TopKRaw(y []float64, k int, outJ []int, outD []float64) int {
	return ix.topK(&ix.raw, y, k, outJ, outD, ix.cfg.Mode)
}

// NearestCentered returns the mean-centered column nearest to the
// already-centered query yc and the squared distance to it. The drift
// residualizer's best-match search is exactly this call — and because
// change detectors are calibrated against the true residual, it never
// uses the approximate sharded tier: a sharded index answers this query
// through the (exact) pruned tier instead.
func (ix *Index) NearestCentered(yc []float64) (int, float64) {
	mode := ix.cfg.Mode
	if mode == SearchSharded {
		mode = SearchPruned
	}
	return ix.nearest(&ix.cen, yc, mode)
}

// bestCorr returns the column maximizing |<unit_j, resid>| over columns
// with norms[j] > 0 and not listed in excluded, plus that absolute
// correlation; (-1, 0) when no column qualifies. Ties resolve to the
// lowest column index. norms is the (possibly masked) centered-norm
// overlay — a column masked to norm 0 is never selected, but the
// precomputed shard bounds remain valid upper bounds.
//
// Pruning uses the centroid decomposition bound
//
//	|<u_j, r>| <= |<c_s, r>| + ||u_j - c_s|| * ||r||
//	           <= |<c_s, r>| + rad_s * ||r||,
//
// so a shard whose bound cannot beat the current best is skipped whole;
// exact under SearchPruned, routed to the Fanout best-bounded shards
// under SearchSharded.
func (ix *Index) bestCorr(resid []float64, norms []float64, excluded []int, mode SearchMode, info *SearchInfo) (int, float64) {
	if norms == nil {
		norms = ix.cen.norms
	}
	skip := func(j int) bool {
		if norms[j] == 0 {
			return true
		}
		for _, e := range excluded {
			if e == j {
				return true
			}
		}
		return false
	}
	eval := func(j int) float64 {
		var c float64
		uj := ix.unit.data[j*ix.m : (j+1)*ix.m]
		for i, v := range uj {
			c += v * resid[i]
		}
		return math.Abs(c)
	}
	best, bestJ := 0.0, -1
	var ce, se uint64
	var visited int
	if mode == SearchExact || len(ix.shards) <= 1 {
		for j := 0; j < ix.n; j++ {
			if skip(j) {
				continue
			}
			a := eval(j)
			ce++
			if a > best {
				best, bestJ = a, j
			}
		}
	} else {
		s := ix.getScratch()
		var rn float64
		for _, v := range resid {
			rn += v * v
		}
		rn = math.Sqrt(rn)
		S := len(ix.shards)
		s.order = growI(s.order, S)
		s.key = growF(s.key, S)
		for si := 0; si < S; si++ {
			cent := ix.unit.cents[si*ix.m : (si+1)*ix.m]
			var c float64
			for i, v := range cent {
				c += v * resid[i]
			}
			s.order[si] = si
			s.key[si] = math.Abs(c) + ix.unit.rads[si]*rn
		}
		se = uint64(S)
		sortByKey(s.order, s.key, true)
		for _, si := range s.order {
			if mode == SearchSharded && visited >= ix.cfg.Fanout {
				break
			}
			if s.key[si]*corrSlack < best {
				break // descending bounds: nothing later can win
			}
			visited++
			sh := ix.shards[si]
			for j := sh.lo; j < sh.hi; j++ {
				if skip(j) {
					continue
				}
				a := eval(j)
				ce++
				if a > best || (a == best && bestJ >= 0 && j < bestJ) {
					best, bestJ = a, j
				}
			}
		}
		ix.putScratch(s)
	}
	ix.queries.Add(1)
	ix.colEvals.Add(ce)
	if se > 0 {
		ix.shardEvals.Add(se)
	}
	if info != nil {
		info.ColumnEvals += ce
		info.ShardEvals += se
		info.ShardsVisited += visited
	}
	return bestJ, best
}

// lsSolve computes the least-squares weights w minimizing
// ||A*w - rhs||2 for the m x k column-major matrix in qr (destroyed),
// destroying rhs, via Householder QR — the same factorization
// mat.LeastSquares uses, restated over caller scratch so the pursuit
// hot path performs no allocations. v is a length-m reflector scratch;
// w receives the k weights.
func lsSolve(qr []float64, m, k int, rhs, v, w []float64) error {
	for c := 0; c < k; c++ {
		col := qr[c*m : (c+1)*m]
		var norm float64
		for i := c; i < m; i++ {
			norm += col[i] * col[i]
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			continue // back-substitution reports the singular diagonal
		}
		alpha := -norm
		if col[c] < 0 {
			alpha = norm
		}
		v[c] = col[c] - alpha
		copy(v[c+1:m], col[c+1:m])
		var vn2 float64
		for i := c; i < m; i++ {
			vn2 += v[i] * v[i]
		}
		if vn2 == 0 {
			continue
		}
		beta := 2 / vn2
		for c2 := c; c2 < k; c2++ {
			col2 := qr[c2*m : (c2+1)*m]
			var s float64
			for i := c; i < m; i++ {
				s += v[i] * col2[i]
			}
			s *= beta
			for i := c; i < m; i++ {
				col2[i] -= s * v[i]
			}
		}
		var s float64
		for i := c; i < m; i++ {
			s += v[i] * rhs[i]
		}
		s *= beta
		for i := c; i < m; i++ {
			rhs[i] -= s * v[i]
		}
	}
	for i := k - 1; i >= 0; i-- {
		s := rhs[i]
		for j := i + 1; j < k; j++ {
			s -= qr[j*m+i] * w[j]
		}
		d := qr[i*m+i]
		if d == 0 {
			return mat.ErrSingular
		}
		w[i] = s / d
	}
	return nil
}
