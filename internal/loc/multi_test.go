package loc

import (
	"math"
	"testing"

	"iupdater/internal/geom"
	"iupdater/internal/testbed"
)

// assignmentError returns the total distance of the best matching between
// estimates and truths (2-target case: both orderings tried).
func assignmentError(est, truth []geom.Point) float64 {
	if len(truth) == 2 && len(est) >= 2 {
		a := est[0].Distance(truth[0]) + est[1].Distance(truth[1])
		b := est[0].Distance(truth[1]) + est[1].Distance(truth[0])
		return math.Min(a, b)
	}
	var total float64
	for _, p := range truth {
		best := math.Inf(1)
		for _, e := range est {
			if d := e.Distance(p); d < best {
				best = d
			}
		}
		total += best
	}
	return total
}

func TestLocateMultipleTwoTargets(t *testing.T) {
	s := testbed.NewSurveyor(testbed.Office(), 41)
	fp, _ := s.FullSurvey(0, testbed.TraditionalSamples)
	g := s.Channel.Grid()
	omp := NewOMPPoint(fp.X, g, OMPConfig{})

	cases := []struct {
		name string
		a, b int // target cells in different strips
	}{
		{"far strips", g.CellIndex(1, 3), g.CellIndex(6, 8)},
		{"middle strips", g.CellIndex(2, 9), g.CellIndex(5, 2)},
		{"edges", g.CellIndex(0, 1), g.CellIndex(7, 10)},
	}
	good := 0
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			truth := []geom.Point{g.Center(tc.a), g.Center(tc.b)}
			y := s.MeasureOnlineMulti(truth, 700, testbed.IUpdaterSamples)
			est, err := omp.LocateMultiple(y, 2, 0)
			if err != nil {
				t.Fatal(err)
			}
			if len(est) == 0 || len(est) > 2 {
				t.Fatalf("%d estimates", len(est))
			}
			if len(est) == 2 && assignmentError(est, truth) < 5 {
				good++
			}
		})
	}
	if good < 2 {
		t.Errorf("only %d/3 two-target cases recovered both targets within tolerance", good)
	}
}

func TestLocateMultipleSingleTargetStaysAccurate(t *testing.T) {
	// With one real target, asking for up to 2 must not hallucinate a
	// distant second target as the primary.
	s := testbed.NewSurveyor(testbed.Office(), 42)
	fp, _ := s.FullSurvey(0, testbed.TraditionalSamples)
	g := s.Channel.Grid()
	omp := NewOMPPoint(fp.X, g, OMPConfig{})
	truth := g.Center(g.CellIndex(4, 6))
	y := s.MeasureOnline(truth, 900, testbed.IUpdaterSamples)
	est, err := omp.LocateMultiple(y, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d := est[0].Distance(truth); d > 2 {
		t.Errorf("primary estimate %.2f m from the single target", d)
	}
}

func TestLocateMultipleValidation(t *testing.T) {
	s := testbed.NewSurveyor(testbed.Office(), 43)
	fp, _ := s.FullSurvey(0, testbed.TraditionalSamples)
	omp := NewOMPPoint(fp.X, s.Channel.Grid(), OMPConfig{})
	if _, err := omp.LocateMultiple(make([]float64, 8), 0, 0); err == nil {
		t.Error("maxTargets=0 accepted")
	}
	if _, err := omp.LocateMultiple(make([]float64, 3), 2, 0); err == nil {
		t.Error("wrong measurement length accepted")
	}
}

func TestSampleAtMultiSuperposition(t *testing.T) {
	// Two targets on different strips must both show in the vector: each
	// affected link reads lower than with only the other target present.
	s := testbed.NewSurveyor(testbed.Office(), 44)
	g := s.Channel.Grid()
	a := g.Center(g.CellIndex(1, 5))
	b := g.Center(g.CellIndex(6, 5))
	const ts = 333
	both := s.Channel.SampleAtMulti(1, []geom.Point{a, b}, ts)
	onlyB := s.Channel.SampleAtMulti(1, []geom.Point{b}, ts)
	if both >= onlyB {
		t.Errorf("link 1 with both targets (%.1f) not below with only far target (%.1f)", both, onlyB)
	}
	// And a single-target multi-sample equals the single-target path.
	single := s.Channel.SampleAt(1, a, ts)
	multi := s.Channel.SampleAtMulti(1, []geom.Point{a}, ts)
	if math.Abs(single-multi) > 1e-9 {
		t.Errorf("single-target paths disagree: %.3f vs %.3f", single, multi)
	}
}
