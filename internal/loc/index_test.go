package loc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"iupdater/internal/geom"
	"iupdater/internal/mat"
	"iupdater/internal/testbed"
)

// syntheticFingerprints builds a smooth large-geometry fingerprint
// matrix over an 8-link grid with perStrip cells per strip: a per-link
// shadowing dip that moves with the cell position plus small seeded
// noise, so neighboring cells correlate the way real RSS fingerprints
// do and shard radii stay meaningful.
func syntheticFingerprints(perStrip int, seed int64) (*mat.Dense, geom.Grid) {
	const links = 8
	g := geom.NewGrid(12, 9, links, perStrip)
	rng := rand.New(rand.NewSource(seed))
	x := mat.New(links, g.NumCells())
	for j := 0; j < g.NumCells(); j++ {
		c := g.Center(j)
		for i := 0; i < links; i++ {
			linkY := (float64(i) + 0.5) * g.Height / links
			d := c.Y - linkY
			val := -42 - 9*math.Exp(-d*d/1.8) - 0.4*math.Sin(0.9*c.X+float64(i)) + 0.15*rng.NormFloat64()
			x.Set(i, j, val)
		}
	}
	return x, g
}

// TestIndexPrunedBitIdenticalToExhaustive is the exactness property:
// for random matrices, shard layouts and queries, every pruned-tier
// query must return bit-identical results (indices AND values) to the
// exhaustive reference, because the pruning bounds only ever skip
// provably non-winning work.
func TestIndexPrunedBitIdenticalToExhaustive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 3 + rng.Intn(8)
		n := 8 + rng.Intn(60)
		x := mat.RandomNormal(m, n, rng)
		stripLen := 1 + rng.Intn(n)
		ixP := NewIndex(x, stripLen, IndexConfig{Mode: SearchPruned, BlockSize: 1 + rng.Intn(8)})
		ixE := NewIndex(x, stripLen, IndexConfig{Mode: SearchExact})
		for q := 0; q < 5; q++ {
			y := make([]float64, m)
			base := x.Col(rng.Intn(n))
			for i := range y {
				y[i] = base[i] + 0.3*rng.NormFloat64()
			}
			jP, dP := ixP.NearestRaw(y)
			jE, dE := ixE.NearestRaw(y)
			if jP != jE || dP != dE {
				return false
			}
			k := 1 + rng.Intn(6)
			outJP, outDP := make([]int, k), make([]float64, k)
			outJE, outDE := make([]int, k), make([]float64, k)
			gotP := ixP.TopKRaw(y, k, outJP, outDP)
			gotE := ixE.TopKRaw(y, k, outJE, outDE)
			if gotP != gotE {
				return false
			}
			for i := 0; i < gotP; i++ {
				if outJP[i] != outJE[i] || outDP[i] != outDE[i] {
					return false
				}
			}
			var mean float64
			for _, v := range y {
				mean += v
			}
			mean /= float64(m)
			yc := make([]float64, m)
			for i, v := range y {
				yc[i] = v - mean
			}
			jP, dP = ixP.NearestCentered(yc)
			jE, dE = ixE.NearestCentered(yc)
			if jP != jE || dP != dE {
				return false
			}
			excl := []int{rng.Intn(n)}
			var info SearchInfo
			bjP, bcP := ixP.bestCorr(yc, nil, excl, SearchPruned, &info)
			bjE, bcE := ixE.bestCorr(yc, nil, excl, SearchExact, nil)
			if info.ColumnEvals == 0 {
				t.Fatalf("per-query SearchInfo recorded no column evals")
			}
			if bjP != bjE || bcP != bcE {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestIndexPrunedTieBreaksMatchExhaustive forces exact distance ties
// with duplicated columns: both tiers must resolve to the lowest column
// index.
func TestIndexPrunedTieBreaksMatchExhaustive(t *testing.T) {
	const m, n = 4, 12
	x := mat.New(m, n)
	rng := rand.New(rand.NewSource(9))
	proto := make([]float64, m)
	for i := range proto {
		proto[i] = rng.NormFloat64()
	}
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			if j == 3 || j == 7 || j == 10 {
				x.Set(i, j, proto[i]) // exact duplicates across shards
			} else {
				x.Set(i, j, rng.NormFloat64()+3)
			}
		}
	}
	ixP := NewIndex(x, 4, IndexConfig{Mode: SearchPruned, BlockSize: 2})
	ixE := NewIndex(x, 4, IndexConfig{Mode: SearchExact})
	jP, dP := ixP.NearestRaw(proto)
	jE, dE := ixE.NearestRaw(proto)
	if jP != 3 || jE != 3 || dP != dE {
		t.Errorf("tie broke to %d/%d (dist %v/%v), want column 3 in both tiers", jP, jE, dP, dE)
	}
	outJ, outD := make([]int, 3), make([]float64, 3)
	if got := ixP.TopKRaw(proto, 3, outJ, outD); got != 3 || outJ[0] != 3 || outJ[1] != 7 || outJ[2] != 10 {
		t.Errorf("pruned top-3 of a 3-way tie = %v (n=%d), want [3 7 10]", outJ, got)
	}
}

// TestOMPPrunedPursuitMatchesExhaustive runs the full greedy pursuit
// over both tiers on realistic office measurements: selections and
// weights must be bit-identical.
func TestOMPPrunedPursuitMatchesExhaustive(t *testing.T) {
	s, x := officeScenario(37)
	g := s.Channel.Grid()
	ompP := NewOMPIndex(NewIndex(x, g.PerStrip, IndexConfig{Mode: SearchPruned}), OMPConfig{})
	ompE := NewOMPIndex(NewIndex(x, g.PerStrip, IndexConfig{Mode: SearchExact}), OMPConfig{})
	rng := rand.New(rand.NewSource(38))
	for trial := 0; trial < 25; trial++ {
		p := geom.Point{X: rng.Float64() * g.Width, Y: rng.Float64() * g.Height}
		y := s.MeasureOnline(p, 400+float64(trial)*37, testbed.IUpdaterSamples)
		selP, wP, errP := ompP.PursueWeighted(y)
		selE, wE, errE := ompE.PursueWeighted(y)
		if (errP == nil) != (errE == nil) {
			t.Fatalf("trial %d: pruned err %v, exhaustive err %v", trial, errP, errE)
		}
		if errP != nil {
			continue
		}
		if len(selP) != len(selE) {
			t.Fatalf("trial %d: pruned selected %v, exhaustive %v", trial, selP, selE)
		}
		for i := range selP {
			if selP[i] != selE[i] || wP[i] != wE[i] {
				t.Fatalf("trial %d: pruned (%v, %v), exhaustive (%v, %v)", trial, selP, wP, selE, wE)
			}
		}
	}
}

// TestShardedSearchAccuracyBudget measures the approximate tier's
// accuracy budget on the office evaluation scenario across three seeds:
// the mean localization error under sharded search (default fanout)
// must stay within 0.1 of the exact tier's.
func TestShardedSearchAccuracyBudget(t *testing.T) {
	for _, seed := range []uint64{41, 42, 43} {
		s, x := officeScenario(seed)
		g := s.Channel.Grid()
		exact := NewOMPPointIndex(NewIndex(x, g.PerStrip, IndexConfig{Mode: SearchExact}), g, OMPConfig{})
		shard := NewOMPPointIndex(NewIndex(x, g.PerStrip, IndexConfig{Mode: SearchSharded}), g, OMPConfig{})
		rng := rand.New(rand.NewSource(int64(seed)))
		const trials = 60
		var exErr, shErr float64
		for k := 0; k < trials; k++ {
			p := geom.Point{X: rng.Float64() * g.Width, Y: rng.Float64() * g.Height}
			y := s.MeasureOnline(p, 400+float64(k)*29, testbed.IUpdaterSamples)
			pe, err := exact.LocatePoint(y)
			if err != nil {
				t.Fatalf("seed %d trial %d exact: %v", seed, k, err)
			}
			ps, err := shard.LocatePoint(y)
			if err != nil {
				t.Fatalf("seed %d trial %d sharded: %v", seed, k, err)
			}
			exErr += pe.Distance(p)
			shErr += ps.Distance(p)
		}
		deg := (shErr - exErr) / trials
		t.Logf("seed %d: exact mean error %.3f m, sharded %.3f m (degradation %.4f)",
			seed, exErr/trials, shErr/trials, deg)
		if deg > 0.1 {
			t.Errorf("seed %d: sharded search degrades mean error by %.3f m, budget 0.1", seed, deg)
		}
	}
}

// TestShardedEvalReductionLargeGrid enforces the scale target: at 100x
// the office grid size, sharded search must evaluate at least 5x fewer
// columns per query than the exhaustive reference. The pruned tier's
// reduction is data-dependent (it is exact), so it is only reported.
func TestShardedEvalReductionLargeGrid(t *testing.T) {
	x, g := syntheticFingerprints(1200, 7) // n = 9600 = 100x office
	exact := NewIndex(x, g.PerStrip, IndexConfig{Mode: SearchExact})
	pruned := NewIndex(x, g.PerStrip, IndexConfig{Mode: SearchPruned})
	shard := NewIndex(x, g.PerStrip, IndexConfig{Mode: SearchSharded})
	rng := rand.New(rand.NewSource(8))
	_, n := x.Dims()
	const queries = 64
	for q := 0; q < queries; q++ {
		base := x.Col(rng.Intn(n))
		y := make([]float64, len(base))
		for i := range y {
			y[i] = base[i] + 0.3*rng.NormFloat64()
		}
		jE, _ := exact.NearestRaw(y)
		jP, _ := pruned.NearestRaw(y)
		if jP != jE {
			t.Fatalf("query %d: pruned nearest %d, exhaustive %d", q, jP, jE)
		}
		shard.NearestRaw(y)
	}
	evalsPerQuery := func(ix *Index) float64 {
		st := ix.Stats()
		return float64(st.ColumnEvals+st.ShardEvals) / float64(st.Queries)
	}
	exactEv, prunedEv, shardEv := evalsPerQuery(exact), evalsPerQuery(pruned), evalsPerQuery(shard)
	t.Logf("evals/query at n=%d: exact %.0f, pruned %.0f (%.1fx), sharded %.0f (%.1fx)",
		n, exactEv, prunedEv, exactEv/prunedEv, shardEv, exactEv/shardEv)
	if ratio := exactEv / shardEv; ratio < 5 {
		t.Errorf("sharded search reduces evals only %.1fx at 100x grid, want >= 5x", ratio)
	}
}

// TestQueryPathAllocFree pins the 0-allocs/op contract of the steady-
// state query hot paths: OMP point localization, nearest-column, KNN
// top-k into caller storage, and the raw index queries.
func TestQueryPathAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("-race makes sync.Pool drop items, so pooled paths allocate")
	}
	x, g := syntheticFingerprints(120, 3) // 10x office keeps the pool honest
	ix := NewIndex(x, g.PerStrip, IndexConfig{})
	omp := NewOMPPointIndex(ix, g, OMPConfig{})
	knn := NewKNNIndex(ix, 5)
	nc := NewNearestColumnIndex(ix)
	_, n := x.Dims()
	y := append([]float64(nil), x.Col(n/3)...)
	idx, dist := make([]int, 5), make([]float64, 5)
	// Warm the scratch pool (the pursuit and its nested search each hold
	// one scratch).
	for i := 0; i < 8; i++ {
		if _, err := omp.Locate(y); err != nil {
			t.Fatal(err)
		}
		if _, err := knn.NeighborsInto(y, idx, dist); err != nil {
			t.Fatal(err)
		}
	}
	checks := []struct {
		name string
		fn   func()
	}{
		{"OMPPoint.Locate", func() { omp.Locate(y) }},
		{"OMPPoint.LocatePoint", func() { omp.LocatePoint(y) }},
		{"NearestColumn.Locate", func() { nc.Locate(y) }},
		{"KNN.Locate", func() { knn.Locate(y) }},
		{"KNN.NeighborsInto", func() { knn.NeighborsInto(y, idx, dist) }},
		{"Index.NearestRaw", func() { ix.NearestRaw(y) }},
	}
	for _, c := range checks {
		if allocs := testing.AllocsPerRun(200, c.fn); allocs > 0 {
			t.Errorf("%s: %.1f allocs/op, want 0", c.name, allocs)
		}
	}
}

// TestKNNLocateIsNearestNeighbor is the regression test for the old
// degenerate inverse-distance vote: with one column per cell the vote
// always elects the nearest neighbor, so Locate must agree with
// Neighbors' first result on every query.
func TestKNNLocateIsNearestNeighbor(t *testing.T) {
	_, x := officeScenario(33)
	knn := NewKNN(x, 5)
	m, n := x.Dims()
	rng := rand.New(rand.NewSource(34))
	for trial := 0; trial < 50; trial++ {
		base := x.Col(rng.Intn(n))
		y := make([]float64, m)
		for i := range y {
			y[i] = base[i] + rng.NormFloat64()
		}
		idx, _, err := knn.Neighbors(y)
		if err != nil {
			t.Fatal(err)
		}
		got, err := knn.Locate(y)
		if err != nil {
			t.Fatal(err)
		}
		if got != idx[0] {
			t.Fatalf("trial %d: Locate = %d, nearest neighbor = %d", trial, got, idx[0])
		}
	}
}

// TestIndexSearchStatsAccumulate sanity-checks the counters: every
// query is counted, and the exhaustive tier reports exactly n column
// evaluations per nearest query.
func TestIndexSearchStatsAccumulate(t *testing.T) {
	x, g := syntheticFingerprints(12, 11)
	ix := NewIndex(x, g.PerStrip, IndexConfig{Mode: SearchExact})
	_, n := x.Dims()
	y := x.Col(5)
	for q := 0; q < 7; q++ {
		ix.NearestRaw(y)
	}
	st := ix.Stats()
	if st.Queries != 7 || st.ColumnEvals != uint64(7*n) {
		t.Errorf("stats = %+v, want 7 queries, %d column evals", st, 7*n)
	}
}

func BenchmarkKNNNeighbors(b *testing.B) {
	x, g := syntheticFingerprints(120, 5) // 10x office
	knn := NewKNNIndex(NewIndex(x, g.PerStrip, IndexConfig{}), 5)
	_, n := x.Dims()
	y := append([]float64(nil), x.Col(n/2)...)
	idx, dist := make([]int, 5), make([]float64, 5)
	if _, err := knn.NeighborsInto(y, idx, dist); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		knn.NeighborsInto(y, idx, dist)
	}
}
