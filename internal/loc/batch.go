package loc

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"iupdater/internal/geom"
)

// PointLocalizer estimates a continuous position from one online RSS
// vector. Implementations must be safe for concurrent use: LocatePoint is
// fanned out over worker goroutines by LocatePoints.
type PointLocalizer interface {
	LocatePoint(y []float64) (geom.Point, error)
}

// LocatePoints localizes every measurement in ys against l, fanning the
// work out over a bounded pool of workers (<= 0 selects GOMAXPROCS).
// Results are returned in input order. The first localization error, or
// the context's error if it is canceled first, aborts the remaining work.
func LocatePoints(ctx context.Context, l PointLocalizer, ys [][]float64, workers int) ([]geom.Point, error) {
	if len(ys) == 0 {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(ys) {
		workers = len(ys)
	}
	out := make([]geom.Point, len(ys))
	if workers == 1 {
		for k, y := range ys {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			p, err := l.LocatePoint(y)
			if err != nil {
				return nil, fmt.Errorf("loc: batch measurement %d: %w", k, err)
			}
			out[k] = p
		}
		return out, nil
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if cctx.Err() != nil {
					return
				}
				k := int(next.Add(1)) - 1
				if k >= len(ys) {
					return
				}
				p, err := l.LocatePoint(ys[k])
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("loc: batch measurement %d: %w", k, err)
					}
					errMu.Unlock()
					cancel()
					return
				}
				out[k] = p
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
