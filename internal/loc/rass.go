package loc

import (
	"fmt"

	"iupdater/internal/geom"
	"iupdater/internal/mat"
)

// RASS reimplements the relevant core of the paper's state-of-the-art
// comparison system (Zhang et al., "RASS: a real-time, accurate and
// scalable system for tracking transceiver-free objects"): a Support
// Vector Regression model mapping an RSS vector to target coordinates,
// trained on the fingerprint database (one sample per grid cell). The
// paper runs RASS both on the original ("RASS w/o rec.") and on the
// iUpdater-reconstructed ("RASS w/ rec.") fingerprint matrix.
type RASS struct {
	grid geom.Grid
	svrX *SVR
	svrY *SVR
}

var _ Localizer = (*RASS)(nil)

// NewRASS trains the two coordinate regressors on the columns of the
// fingerprint matrix x (M links by N cells) laid out on the given grid.
func NewRASS(x *mat.Dense, grid geom.Grid, cfg SVRConfig) (*RASS, error) {
	m, n := x.Dims()
	if n != grid.NumCells() || m != grid.Links {
		return nil, fmt.Errorf("loc: RASS fingerprint %dx%d does not match grid %dx%d",
			m, n, grid.Links, grid.NumCells())
	}
	// One training sample per cell: feature = RSS column, target = cell
	// center coordinates.
	feats := x.T()
	tx := make([]float64, n)
	ty := make([]float64, n)
	for j := 0; j < n; j++ {
		c := grid.Center(j)
		tx[j], ty[j] = c.X, c.Y
	}
	// Epsilon in meters: a quarter cell is a good insensitive band.
	along, across := grid.CellSize()
	if cfg.Epsilon <= 0 {
		cfg.Epsilon = 0.25 * minF(along, across)
	}
	svrX := NewSVR(cfg)
	if err := svrX.Fit(feats, tx); err != nil {
		return nil, fmt.Errorf("loc: training RASS x-regressor: %w", err)
	}
	svrY := NewSVR(cfg)
	if err := svrY.Fit(feats, ty); err != nil {
		return nil, fmt.Errorf("loc: training RASS y-regressor: %w", err)
	}
	return &RASS{grid: grid, svrX: svrX, svrY: svrY}, nil
}

// LocatePoint returns the regressed continuous position (alias of
// Predict, satisfying the continuous-localizer interfaces).
func (r *RASS) LocatePoint(y []float64) (geom.Point, error) { return r.Predict(y) }

// Predict returns the regressed target position, clamped to the area.
func (r *RASS) Predict(y []float64) (geom.Point, error) {
	px, err := r.svrX.Predict(y)
	if err != nil {
		return geom.Point{}, err
	}
	py, err := r.svrY.Predict(y)
	if err != nil {
		return geom.Point{}, err
	}
	p := geom.Point{X: px, Y: py}
	if p.X < 0 {
		p.X = 0
	} else if p.X >= r.grid.Width {
		p.X = r.grid.Width - 1e-9
	}
	if p.Y < 0 {
		p.Y = 0
	} else if p.Y >= r.grid.Height {
		p.Y = r.grid.Height - 1e-9
	}
	return p, nil
}

// Locate implements Localizer by snapping the regressed position to its
// grid cell.
func (r *RASS) Locate(y []float64) (int, error) {
	p, err := r.Predict(y)
	if err != nil {
		return 0, err
	}
	cell := r.grid.CellAt(p)
	if cell < 0 {
		return 0, fmt.Errorf("loc: RASS prediction %v fell outside the area", p)
	}
	return cell, nil
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
