// Package loc implements the Target Localization module of Fig 10: the
// greedy orthogonal-matching-pursuit matcher of Eqns 26-27, plus the
// baselines the paper compares against (K-nearest-neighbor matching and
// the SVR-based RASS system).
//
// All matchers run over a snapshot-time Index of the fingerprint
// columns: precomputed centered norms and per-shard centroid/radius
// bounds prune candidate columns without changing results, an optional
// sharded tier trades a documented accuracy budget for near-constant
// query cost, and a pooled per-query scratch keeps the hot paths
// allocation-free. See Index for the exact-vs-approximate contract.
package loc

import (
	"errors"
	"fmt"
	"math"

	"iupdater/internal/geom"
	"iupdater/internal/mat"
)

// Localizer estimates the grid cell of a target from an online RSS
// vector.
type Localizer interface {
	// Locate returns the estimated grid cell index for the online
	// measurement y (one value per link).
	Locate(y []float64) (int, error)
}

// OMPConfig tunes the OMP matcher.
type OMPConfig struct {
	// Xi is the squared-residual stopping threshold ξ of Eqn 27; <= 0
	// uses a default derived from the measurement dimension.
	Xi float64
	// MaxSparsity bounds the number of selected columns (1 target plus a
	// few correction columns); 0 defaults to 3.
	MaxSparsity int
}

// OMP matches online measurements against the columns of a fingerprint
// matrix by greedy orthogonal matching pursuit. The location estimate is
// the column whose (first, dominant) selection explains the measurement.
//
// Columns are mean-centered and normalized by the underlying Index: raw
// RSS columns all share a large common baseline component, which would
// otherwise make correlation-based greedy selection meaningless. The
// pursuit runs entirely on pooled scratch — Locate performs no
// allocations in steady state.
type OMP struct {
	cfg OMPConfig
	ix  *Index
	// colNorm is the centered-column-norm overlay the pursuit selects
	// against. It aliases the index's own norms by default; masked
	// matchers (see OMPPoint.maskedCopy) carry a copy with excluded
	// columns zeroed, sharing the index itself.
	colNorm []float64
}

// Compile-time interface check.
var _ Localizer = (*OMP)(nil)

// NewOMP builds an OMP matcher over the fingerprint matrix x, indexing
// it with default (pruned, exact-result) search.
func NewOMP(x *mat.Dense, cfg OMPConfig) *OMP {
	return NewOMPIndex(NewIndex(x, 0, IndexConfig{}), cfg)
}

// NewOMPIndex builds an OMP matcher over a prebuilt column index,
// sharing it with any other matchers built from the same index.
func NewOMPIndex(ix *Index, cfg OMPConfig) *OMP {
	if cfg.MaxSparsity <= 0 {
		cfg.MaxSparsity = 3
	}
	return &OMP{cfg: cfg, ix: ix, colNorm: ix.colNorms()}
}

// Index returns the underlying column index.
func (o *OMP) Index() *Index { return o.ix }

// Locate implements Localizer via Eqn 27: greedily select the fingerprint
// columns most correlated with the residual, solve the restricted least
// squares, and stop when the residual falls below ξ. The first selected
// column — the dominant explanation of the measurement — is the location
// estimate.
func (o *OMP) Locate(y []float64) (int, error) {
	s, sel, _, err := o.pursue(y, nil)
	if err != nil {
		return 0, err
	}
	j := sel[0]
	o.ix.putScratch(s)
	return j, nil
}

// Pursue runs the greedy pursuit and returns the selected column indices
// in selection order.
func (o *OMP) Pursue(y []float64) ([]int, error) {
	s, sel, _, err := o.pursue(y, nil)
	if err != nil {
		return nil, err
	}
	out := append([]int(nil), sel...)
	o.ix.putScratch(s)
	return out, nil
}

// PursueWeighted runs the greedy pursuit and returns the selected column
// indices with their final least-squares weights (Eqn 26's nonlinear
// optimization restricted to the selected support).
func (o *OMP) PursueWeighted(y []float64) ([]int, []float64, error) {
	s, sel, w, err := o.pursue(y, nil)
	if err != nil {
		return nil, nil, err
	}
	outSel := append([]int(nil), sel...)
	outW := append([]float64(nil), w...)
	o.ix.putScratch(s)
	return outSel, outW, nil
}

// pursue is the scratch-backed pursuit core. On success it returns the
// scratch (which the caller must release with putScratch once done with
// sel and w), the selected columns in selection order, and their final
// least-squares weights — both views into the scratch. On error the
// scratch is already released.
//
// Each round selects the unselected column most correlated with the
// residual (via the index, so shard bounds prune the scan), re-solves
// the least squares over the selected unit columns with the in-scratch
// Householder QR, and recomputes the residual from the original
// columns. The weights of the final round are exactly the final-support
// solve PursueWeighted needs — no separate re-solve.
//
// info, when non-nil, accumulates this query's exact search cost
// (column/shard evaluations and pursuit rounds) for request-scoped
// tracing.
func (o *OMP) pursue(y []float64, info *SearchInfo) (*queryScratch, []int, []float64, error) {
	m, _ := o.ix.Dims()
	if len(y) != m {
		return nil, nil, nil, fmt.Errorf("loc: measurement has %d links, fingerprints have %d", len(y), m)
	}
	s := o.ix.getScratch()
	// Center the measurement the same way as the columns.
	var mean float64
	for _, v := range y {
		mean += v
	}
	mean /= float64(m)
	s.target = growF(s.target, m)
	s.resid = growF(s.resid, m)
	for i, v := range y {
		s.target[i] = v - mean
		s.resid[i] = s.target[i]
	}

	xi := o.cfg.Xi
	if xi <= 0 {
		// Default: stop once the residual is at the short-term noise
		// floor (~0.6 dB per link), so clean matches resolve to a single
		// column and only ambiguous measurements blend cells.
		xi = 0.35 * float64(m)
	}

	maxK := o.cfg.MaxSparsity
	s.sel = growI(s.sel, maxK)[:0]
	s.qr = growF(s.qr, m*maxK)
	s.v = growF(s.v, m)
	s.rhs = growF(s.rhs, m)
	s.w = growF(s.w, maxK)
	for len(s.sel) < maxK {
		j, corr := o.ix.bestCorr(s.resid, o.colNorm, s.sel, o.ix.cfg.Mode, info)
		if info != nil {
			info.Rounds++
		}
		if j < 0 || corr == 0 {
			break
		}
		s.sel = append(s.sel, j)
		k := len(s.sel)
		// Re-solve the restricted least squares over the selected unit
		// columns; the QR working copy is destroyed by the solve, so the
		// columns are re-copied each round (k <= MaxSparsity, tiny).
		for ki, jj := range s.sel {
			copy(s.qr[ki*m:(ki+1)*m], o.ix.unitCol(jj))
		}
		copy(s.rhs, s.target)
		if err := lsSolve(s.qr[:k*m], m, k, s.rhs, s.v, s.w[:k]); err != nil {
			o.ix.putScratch(s)
			return nil, nil, nil, fmt.Errorf("loc: OMP least squares: %w", err)
		}
		copy(s.resid, s.target)
		for ki, jj := range s.sel {
			wk := s.w[ki]
			for i, uv := range o.ix.unitCol(jj) {
				s.resid[i] -= wk * uv
			}
		}
		if mat.VecNorm2Sq(s.resid) < xi {
			break
		}
	}
	if len(s.sel) == 0 {
		o.ix.putScratch(s)
		return nil, nil, nil, errors.New("loc: OMP selected no columns (zero measurement?)")
	}
	return s, s.sel, s.w[:len(s.sel)], nil
}

// OMPPoint couples an OMP matcher with the deployment grid to produce
// continuous position estimates: the estimate is the weight centroid of
// the pursued cells (negative weights clipped), which degrades gracefully
// when the measurement falls between grid cells or the fingerprints carry
// reconstruction noise.
type OMPPoint struct {
	OMP  *OMP
	Grid geom.Grid
}

// NewOMPPoint builds a continuous-output OMP localizer, indexing x with
// shards aligned to the grid's strips and default (pruned) search.
func NewOMPPoint(x *mat.Dense, grid geom.Grid, cfg OMPConfig) *OMPPoint {
	return NewOMPPointIndex(NewIndex(x, grid.PerStrip, IndexConfig{}), grid, cfg)
}

// NewOMPPointIndex builds a continuous-output OMP localizer over a
// prebuilt column index (typically the one published with a snapshot).
func NewOMPPointIndex(ix *Index, grid geom.Grid, cfg OMPConfig) *OMPPoint {
	return &OMPPoint{OMP: NewOMPIndex(ix, cfg), Grid: grid}
}

// LocatePoint returns the continuous position estimate for y.
func (op *OMPPoint) LocatePoint(y []float64) (geom.Point, error) {
	return op.LocatePointInfo(y, nil)
}

// LocatePointInfo is LocatePoint with per-query search-cost capture:
// when info is non-nil it accumulates exactly this query's column and
// shard evaluation counts and pursuit rounds (see SearchInfo).
func (op *OMPPoint) LocatePointInfo(y []float64, info *SearchInfo) (geom.Point, error) {
	s, sel, w, err := op.OMP.pursue(y, info)
	if err != nil {
		return geom.Point{}, err
	}
	var sumW, sx, sy float64
	for k, j := range sel {
		wk := w[k]
		if wk <= 0 {
			continue
		}
		c := op.Grid.Center(j)
		sumW += wk
		sx += wk * c.X
		sy += wk * c.Y
	}
	var p geom.Point
	if sumW == 0 {
		p = op.Grid.Center(sel[0])
	} else {
		p = geom.Point{X: sx / sumW, Y: sy / sumW}
	}
	op.OMP.ix.putScratch(s)
	return p, nil
}

// Locate implements Localizer by snapping the continuous estimate to its
// grid cell.
func (op *OMPPoint) Locate(y []float64) (int, error) {
	p, err := op.LocatePoint(y)
	if err != nil {
		return 0, err
	}
	if cell := op.Grid.CellAt(p); cell >= 0 {
		return cell, nil
	}
	return op.OMP.Locate(y)
}

var _ Localizer = (*OMPPoint)(nil)

// SparseRecover runs plain OMP sparse recovery for y = A*w with k-sparse
// w over an arbitrary dictionary (no centering). It returns the selected
// column indices and their least-squares coefficients. Exposed for
// property tests and for callers that use OMP as a generic solver. It is
// a one-shot solver over an arbitrary dictionary, so it does not build
// an Index and allocates freely.
func SparseRecover(a *mat.Dense, y []float64, k int, tol float64) ([]int, []float64, error) {
	m, n := a.Dims()
	if len(y) != m {
		return nil, nil, fmt.Errorf("loc: dimension mismatch %d vs %d", len(y), m)
	}
	if k <= 0 || k > n {
		return nil, nil, fmt.Errorf("loc: sparsity %d out of range", k)
	}
	norms := mat.ColNorms(a)
	resid := make([]float64, m)
	copy(resid, y)
	var sel []int
	inSel := make(map[int]bool)
	var coef []float64
	for len(sel) < k {
		best, bestAbs := -1, 0.0
		for j := 0; j < n; j++ {
			if inSel[j] || norms[j] == 0 {
				continue
			}
			var c float64
			for i := 0; i < m; i++ {
				c += a.At(i, j) * resid[i]
			}
			c /= norms[j]
			if ab := math.Abs(c); ab > bestAbs {
				best, bestAbs = j, ab
			}
		}
		if best < 0 {
			break
		}
		sel = append(sel, best)
		inSel[best] = true
		sub := a.SelectCols(sel)
		w, err := mat.LeastSquares(sub, y)
		if err != nil {
			return nil, nil, fmt.Errorf("loc: sparse recovery least squares: %w", err)
		}
		coef = w
		approx := mat.MulVec(sub, w)
		for i := range resid {
			resid[i] = y[i] - approx[i]
		}
		if mat.VecNorm2Sq(resid) < tol {
			break
		}
	}
	if len(sel) == 0 {
		return nil, nil, errors.New("loc: sparse recovery selected nothing")
	}
	return sel, coef, nil
}
