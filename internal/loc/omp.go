// Package loc implements the Target Localization module of Fig 10: the
// greedy orthogonal-matching-pursuit matcher of Eqns 26-27, plus the
// baselines the paper compares against (K-nearest-neighbor matching and
// the SVR-based RASS system).
package loc

import (
	"errors"
	"fmt"
	"math"

	"iupdater/internal/geom"
	"iupdater/internal/mat"
)

// Localizer estimates the grid cell of a target from an online RSS
// vector.
type Localizer interface {
	// Locate returns the estimated grid cell index for the online
	// measurement y (one value per link).
	Locate(y []float64) (int, error)
}

// OMPConfig tunes the OMP matcher.
type OMPConfig struct {
	// Xi is the squared-residual stopping threshold ξ of Eqn 27; <= 0
	// uses a default derived from the measurement dimension.
	Xi float64
	// MaxSparsity bounds the number of selected columns (1 target plus a
	// few correction columns); 0 defaults to 3.
	MaxSparsity int
}

// OMP matches online measurements against the columns of a fingerprint
// matrix by greedy orthogonal matching pursuit. The location estimate is
// the column whose (first, dominant) selection explains the measurement.
//
// Columns are mean-centered and normalized internally: raw RSS columns
// all share a large common baseline component, which would otherwise make
// correlation-based greedy selection meaningless.
type OMP struct {
	x        *mat.Dense // M x N fingerprint matrix
	cfg      OMPConfig
	centered *mat.Dense // per-column centered + normalized copy
	colMean  []float64
	colNorm  []float64
}

// Compile-time interface check.
var _ Localizer = (*OMP)(nil)

// NewOMP builds an OMP matcher over the fingerprint matrix x.
func NewOMP(x *mat.Dense, cfg OMPConfig) *OMP {
	if cfg.MaxSparsity <= 0 {
		cfg.MaxSparsity = 3
	}
	m, n := x.Dims()
	centered := mat.New(m, n)
	colMean := make([]float64, n)
	colNorm := make([]float64, n)
	for j := 0; j < n; j++ {
		var mean float64
		for i := 0; i < m; i++ {
			mean += x.At(i, j)
		}
		mean /= float64(m)
		colMean[j] = mean
		var norm float64
		for i := 0; i < m; i++ {
			v := x.At(i, j) - mean
			centered.Set(i, j, v)
			norm += v * v
		}
		norm = math.Sqrt(norm)
		colNorm[j] = norm
		if norm > 0 {
			for i := 0; i < m; i++ {
				centered.Set(i, j, centered.At(i, j)/norm)
			}
		}
	}
	return &OMP{x: x, cfg: cfg, centered: centered, colMean: colMean, colNorm: colNorm}
}

// Locate implements Localizer via Eqn 27: greedily select the fingerprint
// columns most correlated with the residual, solve the restricted least
// squares, and stop when the residual falls below ξ. The first selected
// column — the dominant explanation of the measurement — is the location
// estimate.
func (o *OMP) Locate(y []float64) (int, error) {
	sel, err := o.Pursue(y)
	if err != nil {
		return 0, err
	}
	return sel[0], nil
}

// PursueWeighted runs the greedy pursuit and returns the selected column
// indices with their final least-squares weights (Eqn 26's nonlinear
// optimization restricted to the selected support).
func (o *OMP) PursueWeighted(y []float64) ([]int, []float64, error) {
	sel, err := o.Pursue(y)
	if err != nil {
		return nil, nil, err
	}
	m, _ := o.x.Dims()
	var mean float64
	for _, v := range y {
		mean += v
	}
	mean /= float64(m)
	a := mat.New(m, len(sel))
	for k, j := range sel {
		for i := 0; i < m; i++ {
			a.Set(i, k, o.centered.At(i, j))
		}
	}
	target := make([]float64, m)
	for i, v := range y {
		target[i] = v - mean
	}
	w, err := mat.LeastSquares(a, target)
	if err != nil {
		return nil, nil, fmt.Errorf("loc: OMP weights: %w", err)
	}
	return sel, w, nil
}

// Pursue runs the greedy pursuit and returns the selected column indices
// in selection order.
func (o *OMP) Pursue(y []float64) ([]int, error) {
	m, _ := o.x.Dims()
	if len(y) != m {
		return nil, fmt.Errorf("loc: measurement has %d links, fingerprints have %d", len(y), m)
	}
	// Center the measurement the same way as the columns.
	var mean float64
	for _, v := range y {
		mean += v
	}
	mean /= float64(m)
	resid := make([]float64, m)
	for i, v := range y {
		resid[i] = v - mean
	}

	xi := o.cfg.Xi
	if xi <= 0 {
		// Default: stop once the residual is at the short-term noise
		// floor (~0.6 dB per link), so clean matches resolve to a single
		// column and only ambiguous measurements blend cells.
		xi = 0.35 * float64(m)
	}

	var selected []int
	inSel := make(map[int]bool)
	for len(selected) < o.cfg.MaxSparsity {
		j, corr := o.bestColumn(resid, inSel)
		if j < 0 || corr == 0 {
			break
		}
		selected = append(selected, j)
		inSel[j] = true
		if err := o.updateResidual(y, mean, selected, resid); err != nil {
			return nil, err
		}
		if mat.VecNorm2Sq(resid) < xi {
			break
		}
	}
	if len(selected) == 0 {
		return nil, errors.New("loc: OMP selected no columns (zero measurement?)")
	}
	return selected, nil
}

// bestColumn returns the unselected column with the largest absolute
// correlation with the residual.
func (o *OMP) bestColumn(resid []float64, excluded map[int]bool) (int, float64) {
	m, n := o.centered.Dims()
	best, bestAbs := -1, 0.0
	for j := 0; j < n; j++ {
		if excluded[j] || o.colNorm[j] == 0 {
			continue
		}
		var c float64
		for i := 0; i < m; i++ {
			c += o.centered.At(i, j) * resid[i]
		}
		if a := math.Abs(c); a > bestAbs {
			best, bestAbs = j, a
		}
	}
	return best, bestAbs
}

// updateResidual orthogonalizes y against the span of the selected
// (centered) columns.
func (o *OMP) updateResidual(y []float64, mean float64, selected []int, resid []float64) error {
	m := len(y)
	a := mat.New(m, len(selected))
	for k, j := range selected {
		for i := 0; i < m; i++ {
			a.Set(i, k, o.centered.At(i, j))
		}
	}
	target := make([]float64, m)
	for i, v := range y {
		target[i] = v - mean
	}
	w, err := mat.LeastSquares(a, target)
	if err != nil {
		return fmt.Errorf("loc: OMP least squares: %w", err)
	}
	approx := mat.MulVec(a, w)
	for i := range resid {
		resid[i] = target[i] - approx[i]
	}
	return nil
}

// OMPPoint couples an OMP matcher with the deployment grid to produce
// continuous position estimates: the estimate is the weight centroid of
// the pursued cells (negative weights clipped), which degrades gracefully
// when the measurement falls between grid cells or the fingerprints carry
// reconstruction noise.
type OMPPoint struct {
	OMP  *OMP
	Grid geom.Grid
}

// NewOMPPoint builds a continuous-output OMP localizer.
func NewOMPPoint(x *mat.Dense, grid geom.Grid, cfg OMPConfig) *OMPPoint {
	return &OMPPoint{OMP: NewOMP(x, cfg), Grid: grid}
}

// LocatePoint returns the continuous position estimate for y.
func (op *OMPPoint) LocatePoint(y []float64) (geom.Point, error) {
	sel, w, err := op.OMP.PursueWeighted(y)
	if err != nil {
		return geom.Point{}, err
	}
	var sumW, sx, sy float64
	for k, j := range sel {
		wk := w[k]
		if wk <= 0 {
			continue
		}
		c := op.Grid.Center(j)
		sumW += wk
		sx += wk * c.X
		sy += wk * c.Y
	}
	if sumW == 0 {
		return op.Grid.Center(sel[0]), nil
	}
	return geom.Point{X: sx / sumW, Y: sy / sumW}, nil
}

// Locate implements Localizer by snapping the continuous estimate to its
// grid cell.
func (op *OMPPoint) Locate(y []float64) (int, error) {
	p, err := op.LocatePoint(y)
	if err != nil {
		return 0, err
	}
	if cell := op.Grid.CellAt(p); cell >= 0 {
		return cell, nil
	}
	return op.OMP.Locate(y)
}

var _ Localizer = (*OMPPoint)(nil)

// SparseRecover runs plain OMP sparse recovery for y = A*w with k-sparse
// w over an arbitrary dictionary (no centering). It returns the selected
// column indices and their least-squares coefficients. Exposed for
// property tests and for callers that use OMP as a generic solver.
func SparseRecover(a *mat.Dense, y []float64, k int, tol float64) ([]int, []float64, error) {
	m, n := a.Dims()
	if len(y) != m {
		return nil, nil, fmt.Errorf("loc: dimension mismatch %d vs %d", len(y), m)
	}
	if k <= 0 || k > n {
		return nil, nil, fmt.Errorf("loc: sparsity %d out of range", k)
	}
	norms := mat.ColNorms(a)
	resid := make([]float64, m)
	copy(resid, y)
	var sel []int
	inSel := make(map[int]bool)
	var coef []float64
	for len(sel) < k {
		best, bestAbs := -1, 0.0
		for j := 0; j < n; j++ {
			if inSel[j] || norms[j] == 0 {
				continue
			}
			var c float64
			for i := 0; i < m; i++ {
				c += a.At(i, j) * resid[i]
			}
			c /= norms[j]
			if ab := math.Abs(c); ab > bestAbs {
				best, bestAbs = j, ab
			}
		}
		if best < 0 {
			break
		}
		sel = append(sel, best)
		inSel[best] = true
		sub := a.SelectCols(sel)
		w, err := mat.LeastSquares(sub, y)
		if err != nil {
			return nil, nil, fmt.Errorf("loc: sparse recovery least squares: %w", err)
		}
		coef = w
		approx := mat.MulVec(sub, w)
		for i := range resid {
			resid[i] = y[i] - approx[i]
		}
		if mat.VecNorm2Sq(resid) < tol {
			break
		}
	}
	if len(sel) == 0 {
		return nil, nil, errors.New("loc: sparse recovery selected nothing")
	}
	return sel, coef, nil
}
