//go:build race

package loc

// raceEnabled reports whether the race detector is active. Under -race
// sync.Pool deliberately drops a fraction of Put items to widen the
// race-detection window, so pooled query paths allocate; strict 0
// allocs/op assertions only hold in a regular build.
const raceEnabled = true
