package loc

import (
	"fmt"

	"iupdater/internal/geom"
)

// LocateMultiple estimates up to maxTargets device-free target positions
// from one online measurement, extending the paper's single-target
// formulation (Eqn 26 with a 1-sparse W) by successive interference
// cancellation:
//
//  1. detection — the dominant fingerprint column is selected by the
//     greedy pursuit, its attenuation pattern (relative to the per-link
//     unobstructed levels) is subtracted from the measurement, and the
//     residual is searched again until it carries no more structure than
//     noise or maxTargets anchors are found;
//  2. refinement — each anchor is re-localized with the full
//     weighted-centroid estimator on a measurement from which all *other*
//     anchors' patterns were cancelled, with candidate columns restricted
//     to the anchor's neighborhood so estimates do not re-blend.
//
// Attenuations superpose in dB for targets blocking different links — the
// regime where device-free multi-target localization is well posed.
// excludeRadius separates anchors (<= 0 selects twice the grid's larger
// cell dimension). Fewer than maxTargets estimates may be returned.
func (op *OMPPoint) LocateMultiple(y []float64, maxTargets int, excludeRadius float64) ([]geom.Point, error) {
	if maxTargets < 1 {
		return nil, fmt.Errorf("loc: maxTargets = %d", maxTargets)
	}
	m, _ := op.OMP.ix.Dims()
	if len(y) != m {
		return nil, fmt.Errorf("loc: measurement has %d links, fingerprints have %d", len(y), m)
	}
	if excludeRadius <= 0 {
		along, across := op.Grid.CellSize()
		excludeRadius = 2 * maxF(along, across)
	}
	base := op.rowMaxima()

	// Phase 1: anchor detection with cancellation.
	work := append([]float64(nil), y...)
	var anchors []int
	for len(anchors) < maxTargets {
		sub := op.excluding(anchors, excludeRadius)
		if sub == nil {
			break
		}
		sel, err := sub.OMP.Pursue(work)
		if err != nil || len(sel) == 0 {
			break
		}
		anchor := sel[0]
		anchors = append(anchors, anchor)
		for i := 0; i < m; i++ {
			if eff := base[i] - op.OMP.ix.rawAt(i, anchor); eff > 0 {
				work[i] += eff
			}
		}
		// Residual structure check: does any link still read well below
		// its unobstructed level?
		var remaining float64
		for i := range work {
			if d := base[i] - work[i]; d > 1.5 {
				remaining += d
			}
		}
		if remaining < 3 {
			break
		}
	}
	if len(anchors) == 0 {
		return nil, fmt.Errorf("loc: no target found")
	}

	// Phase 2: per-anchor refinement.
	out := make([]geom.Point, 0, len(anchors))
	for k, anchor := range anchors {
		cleaned := append([]float64(nil), y...)
		for k2, other := range anchors {
			if k2 == k {
				continue
			}
			for i := 0; i < m; i++ {
				if eff := base[i] - op.OMP.ix.rawAt(i, other); eff > 0 {
					cleaned[i] += eff
				}
			}
		}
		sub := op.restrictedTo(anchor, 2*excludeRadius)
		p, err := sub.LocatePoint(cleaned)
		if err != nil {
			p = op.Grid.Center(anchor)
		}
		out = append(out, p)
	}
	return out, nil
}

// rowMaxima estimates per-link unobstructed levels: the reading is
// highest when the target is far from the link.
func (op *OMPPoint) rowMaxima() []float64 {
	m, n := op.OMP.ix.Dims()
	base := make([]float64, m)
	copy(base, op.OMP.ix.rawCol(0))
	for j := 1; j < n; j++ {
		for i, v := range op.OMP.ix.rawCol(j) {
			if v > base[i] {
				base[i] = v
			}
		}
	}
	return base
}

// excluding returns a matcher with all columns within radius of the
// anchors' cells removed, or nil when nothing remains.
func (op *OMPPoint) excluding(anchors []int, radius float64) *OMPPoint {
	_, n := op.OMP.ix.Dims()
	allowed := make([]bool, n)
	any := false
	for j := 0; j < n; j++ {
		c := op.Grid.Center(j)
		ok := true
		for _, a := range anchors {
			if c.Distance(op.Grid.Center(a)) <= radius {
				ok = false
				break
			}
		}
		allowed[j] = ok
		any = any || ok
	}
	if !any {
		return nil
	}
	return op.maskedCopy(allowed)
}

// restrictedTo returns a matcher keeping only columns within radius of
// the anchor cell.
func (op *OMPPoint) restrictedTo(anchor int, radius float64) *OMPPoint {
	_, n := op.OMP.ix.Dims()
	allowed := make([]bool, n)
	center := op.Grid.Center(anchor)
	for j := 0; j < n; j++ {
		allowed[j] = op.Grid.Center(j).Distance(center) <= radius
	}
	allowed[anchor] = true
	return op.maskedCopy(allowed)
}

// maskedCopy returns an OMPPoint sharing the column index but with
// excluded columns' norm overlay zeroed so the pursuit never selects
// them (the index's shard bounds stay valid upper bounds over the
// masked subset).
func (op *OMPPoint) maskedCopy(allowed []bool) *OMPPoint {
	norms := make([]float64, len(op.OMP.colNorm))
	copy(norms, op.OMP.colNorm)
	for j, ok := range allowed {
		if !ok {
			norms[j] = 0
		}
	}
	return &OMPPoint{
		OMP:  &OMP{cfg: op.OMP.cfg, ix: op.OMP.ix, colNorm: norms},
		Grid: op.Grid,
	}
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
