package eval

import (
	"strings"
	"testing"

	"iupdater/internal/testbed"
)

// The experiment-driver tests assert the paper's qualitative claims (the
// "shape" of each figure) on small seed sets so the suite stays fast.

func seeds1() []uint64 { return []uint64{3} }

func TestFig01Shape(t *testing.T) {
	r := Fig01ShortTermVariation(testbed.Office(), 11)
	if r.SwingDB < 2 || r.SwingDB > 10 {
		t.Errorf("swing = %.1f dB, want ~5", r.SwingDB)
	}
	if len(r.RSS) != 200 {
		t.Errorf("trace length = %d", len(r.RSS))
	}
	if !strings.Contains(r.Render(), "peak-to-peak") {
		t.Error("render missing swing")
	}
}

func TestFig02Shape(t *testing.T) {
	r := Fig02LongTermShift(testbed.Office(), 7)
	if r.Shift45DB <= r.Shift5DB {
		t.Errorf("shift not growing: %.1f @5d vs %.1f @45d", r.Shift5DB, r.Shift45DB)
	}
	if r.Shift5DB < 0.5 || r.Shift5DB > 5 {
		t.Errorf("5-day shift %.1f dB implausible", r.Shift5DB)
	}
	if r.Shift45DB < 3 || r.Shift45DB > 10 {
		t.Errorf("45-day shift %.1f dB implausible", r.Shift45DB)
	}
}

func TestFig05Shape(t *testing.T) {
	r := Fig05SingularValues(testbed.Office(), 3)
	if len(r.Profiles) != 6 {
		t.Fatalf("%d profiles", len(r.Profiles))
	}
	for k, p := range r.Profiles {
		if p[0] != 1 {
			t.Errorf("profile %d not normalized", k)
		}
		// Approximately low rank: the leading value dominates but the
		// others carry visible residual energy (r = M, not r << M).
		if p[1] > 0.6 {
			t.Errorf("second singular value %.2f too large", p[1])
		}
		if p[len(p)-1] <= 0 {
			t.Errorf("smallest singular value vanished (exactly low rank)")
		}
	}
	if r.LeadingShare < 0.5 {
		t.Errorf("leading share %.2f, want dominant", r.LeadingShare)
	}
}

func TestFig06Shape(t *testing.T) {
	r := Fig06DifferenceStability(testbed.Office(), 13)
	if r.NeighborDiffStd >= r.RawStd {
		t.Errorf("neighbor diff std %.2f not below raw %.2f", r.NeighborDiffStd, r.RawStd)
	}
	if r.AdjacentLinkDiffStd >= r.RawStd {
		t.Errorf("adjacent-link diff std %.2f not below raw %.2f", r.AdjacentLinkDiffStd, r.RawStd)
	}
}

func TestFig08Shape(t *testing.T) {
	r := Fig08NLCCDF(testbed.Office(), 3)
	if r.FractionBelow02 < 0.75 {
		t.Errorf("NLC fraction below 0.2 = %.2f, want high (paper >0.9)", r.FractionBelow02)
	}
}

func TestFig09Shape(t *testing.T) {
	r := Fig09ALSCDF(testbed.Office(), 3)
	if r.FractionBelow04 < 0.6 {
		t.Errorf("ALS fraction below 0.4 = %.2f, want high (paper >0.8)", r.FractionBelow04)
	}
}

func TestFig14Shape(t *testing.T) {
	r, err := Fig14ReferenceCount(testbed.Office(), seeds1())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.CDFs) != 4 {
		t.Fatalf("%d arms", len(r.CDFs))
	}
	mic := r.CDFs[0].Median()
	seven := r.CDFs[1].Median()
	plusOne := r.CDFs[2].Median()
	random11 := r.CDFs[3].Median()
	if seven <= mic {
		t.Errorf("7 refs (%.2f) should be worse than 8 MIC (%.2f)", seven, mic)
	}
	if plusOne > mic*1.35 {
		t.Errorf("8+1 refs (%.2f) should be about the same as 8 MIC (%.2f)", plusOne, mic)
	}
	if random11 <= mic {
		t.Errorf("11 random (%.2f) should be worse than 8 MIC (%.2f)", random11, mic)
	}
}

func TestFig16Shape(t *testing.T) {
	// Single timestamp to keep it fast: patch by running the full driver
	// with one seed and checking the ordering at 45 days (index 3).
	r, err := Fig16ConstraintAblation(testbed.Office(), seeds1())
	if err != nil {
		t.Fatal(err)
	}
	for ti := range r.Timestamps {
		if !(r.RSVD[ti] > r.C1[ti]) {
			t.Errorf("%s: RSVD (%.2f) not worse than +C1 (%.2f)", r.Timestamps[ti], r.RSVD[ti], r.C1[ti])
		}
		if !(r.C1[ti] > r.C1C2[ti]) {
			t.Errorf("%s: +C1 (%.2f) not worse than +C1+C2 (%.2f)", r.Timestamps[ti], r.C1[ti], r.C1C2[ti])
		}
	}
}

func TestFig18Shape(t *testing.T) {
	r, err := Fig18ReconstructionCDF(testbed.Office(), seeds1())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.CDFs) != 5 {
		t.Fatalf("%d CDFs", len(r.CDFs))
	}
	first := r.CDFs[0].Median()
	last := r.CDFs[4].Median()
	if last <= first*0.8 {
		t.Errorf("reconstruction error should grow with staleness: %.2f @3d vs %.2f @3mo", first, last)
	}
	for k, c := range r.CDFs {
		if m := c.Median(); m < 0.1 || m > 8 {
			t.Errorf("median[%d] = %.2f dB implausible", k, m)
		}
	}
}

func TestFig20Shape(t *testing.T) {
	r := Fig20LaborScaling()
	if len(r.Points) != 10 {
		t.Fatalf("%d points", len(r.Points))
	}
	last := r.Points[len(r.Points)-1]
	if last.TraditionalHours < 50 {
		t.Errorf("traditional cost at 10x = %.1f h, want ~78", last.TraditionalHours)
	}
	if last.IUpdaterHours > 0.5 {
		t.Errorf("iUpdater cost at 10x = %.2f h, want near zero", last.IUpdaterHours)
	}
}

func TestFig21Shape(t *testing.T) {
	r, err := Fig21LocalizationCDF(testbed.Office(), seeds1())
	if err != nil {
		t.Fatal(err)
	}
	gt := r.Groundtruth.Median()
	iu := r.IUpdater.Median()
	st := r.Stale.Median()
	if !(gt <= iu && iu < st) {
		t.Errorf("ordering violated: GT %.2f, iUpdater %.2f, stale %.2f", gt, iu, st)
	}
	if iu > 2.2 {
		t.Errorf("iUpdater median %.2f m too large (paper: 1.1 m)", iu)
	}
	// The headline: iUpdater improves accuracy substantially over the
	// stale database (paper: ~54%).
	if improvement := 1 - iu/st; improvement < 0.3 {
		t.Errorf("improvement over stale only %.0f%%", 100*improvement)
	}
}

func TestFig23Shape(t *testing.T) {
	// Two seeds: per-deployment drift draws make single-seed RASS
	// comparisons noisy.
	r, err := Fig23RASSComparison(testbed.Office(), []uint64{3, 10})
	if err != nil {
		t.Fatal(err)
	}
	iu := r.IUpdater.Median()
	rec := r.RASSRec.Median()
	stale := r.RASSStale.Median()
	if !(iu < stale && rec < stale) {
		t.Errorf("reconstruction must help both systems: iU %.2f, RASS-rec %.2f, RASS-stale %.2f", iu, rec, stale)
	}
	if iu >= stale {
		t.Errorf("iUpdater (%.2f) should beat stale RASS (%.2f)", iu, stale)
	}
}

func TestLaborSavingsMatchesPaper(t *testing.T) {
	r := LaborSavings()
	if r.SavingVs50Pct < 97.5 || r.SavingVs50Pct > 98.5 {
		t.Errorf("saving vs 50-sample = %.1f%%, paper 97.9%%", r.SavingVs50Pct)
	}
	if r.SavingVs5Pct < 91.5 || r.SavingVs5Pct > 92.7 {
		t.Errorf("saving vs 5-sample = %.1f%%, paper 92.1%%", r.SavingVs5Pct)
	}
	if r.IUpdaterSeconds != 55 {
		t.Errorf("iUpdater update = %.0f s, paper 55 s", r.IUpdaterSeconds)
	}
}

func TestRendersNonEmpty(t *testing.T) {
	// Smoke-test every Render on cheap results.
	outputs := []string{
		Fig01ShortTermVariation(testbed.Office(), 1).Render(),
		Fig02LongTermShift(testbed.Office(), 1).Render(),
		Fig20LaborScaling().Render(),
		LaborSavings().Render(),
	}
	for i, s := range outputs {
		if len(s) < 20 {
			t.Errorf("render %d too short: %q", i, s)
		}
	}
}

func TestFig15Shape(t *testing.T) {
	r, err := Fig15ReferenceCountOverTime(testbed.Office(), seeds1())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Arms) != 4 || len(r.MeanDB[0]) != 5 {
		t.Fatalf("shape %dx%d", len(r.Arms), len(r.MeanDB[0]))
	}
	// The MIC arm must beat the 7-reference and 11-random arms at every
	// update time.
	for ti := range r.Timestamps {
		mic := r.MeanDB[0][ti]
		if r.MeanDB[1][ti] <= mic {
			t.Errorf("%s: 7 refs (%.2f) not worse than MIC (%.2f)", r.Timestamps[ti], r.MeanDB[1][ti], mic)
		}
		if r.MeanDB[3][ti] <= mic {
			t.Errorf("%s: 11 random (%.2f) not worse than MIC (%.2f)", r.Timestamps[ti], r.MeanDB[3][ti], mic)
		}
	}
}

func TestFig17Shape(t *testing.T) {
	r, err := Fig17VariationRobustness(testbed.Office(), seeds1())
	if err != nil {
		t.Fatal(err)
	}
	for ti := range r.Timestamps {
		// Constraint 2 keeps the 80%-data database within 0.5 dB of the
		// fully measured single-shot database...
		if r.DBErr80C2[ti] > r.DBErrMeasured[ti]+0.5 {
			t.Errorf("%s: 80%%+C2 db err %.2f dB vs measured %.2f dB",
				r.Timestamps[ti], r.DBErr80C2[ti], r.DBErrMeasured[ti])
		}
		// ...and localization within 1 m of it at 50-80%% of the labor.
		if r.Data80C2[ti] > r.Measured[ti]+1.0 {
			t.Errorf("%s: 80%%+C2 loc %.2f m vs measured %.2f m",
				r.Timestamps[ti], r.Data80C2[ti], r.Measured[ti])
		}
	}
}

func TestFig19Shape(t *testing.T) {
	r, err := Fig19ReconstructionEnvironments(seeds1())
	if err != nil {
		t.Fatal(err)
	}
	// Environment ordering: hall <= office <= library on the
	// time-averaged error (the paper's Fig 19 message).
	avg := func(v []float64) float64 { return Mean(v) }
	hall, office, library := avg(r.MeanDB[0]), avg(r.MeanDB[1]), avg(r.MeanDB[2])
	if !(hall < office && office < library) {
		t.Errorf("ordering violated: hall %.2f, office %.2f, library %.2f", hall, office, library)
	}
}

func TestFig22Shape(t *testing.T) {
	r, err := Fig22LocalizationEnvironments(seeds1())
	if err != nil {
		t.Fatal(err)
	}
	for e, env := range r.Environments {
		if r.ImprovementPct[e] <= 0 {
			t.Errorf("%s: no improvement over the stale database (%.1f%%)", env, r.ImprovementPct[e])
		}
		for ti := range r.Timestamps {
			if r.IUpdater[e][ti] >= r.Stale[e][ti] {
				t.Errorf("%s/%s: iUpdater %.2f m not below stale %.2f m",
					env, r.Timestamps[ti], r.IUpdater[e][ti], r.Stale[e][ti])
			}
		}
	}
}

func TestFig24Shape(t *testing.T) {
	r, err := Fig24RASSOverTime(testbed.Office(), []uint64{3, 10})
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruction must help RASS at every time, and iUpdater must be
	// competitive with (or beat) reconstructed RASS on average.
	for ti := range r.Timestamps {
		if r.RASSRec[ti] >= r.RASSStale[ti] {
			t.Errorf("%s: RASS w/rec %.2f m not below w/o rec %.2f m",
				r.Timestamps[ti], r.RASSRec[ti], r.RASSStale[ti])
		}
	}
	if Mean(r.IUpdater) > Mean(r.RASSRec)*1.1 {
		t.Errorf("iUpdater mean %.2f m not competitive with RASS w/rec %.2f m",
			Mean(r.IUpdater), Mean(r.RASSRec))
	}
}
