package eval

import "iupdater/internal/testbed"

// Fig20Result holds the labor-scaling curves of Fig 20.
type Fig20Result struct {
	Points []testbed.ScalingPoint
}

// Fig20LaborScaling evaluates the update-time cost as the deployment area
// grows from 2x to 10x the original edge length (office baseline: 94
// locations as the paper counts, 8 links).
func Fig20LaborScaling() Fig20Result {
	return Fig20Result{
		Points: testbed.LaborScaling(94, 8, []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}),
	}
}

// LaborSavingsResult holds the §VI-C labor arithmetic.
type LaborSavingsResult struct {
	TraditionalSeconds50 float64 // 94 locations, 50 samples each
	TraditionalSeconds5  float64 // 94 locations, 5 samples each
	IUpdaterSeconds      float64 // 8 reference locations, 5 samples each
	SavingVs50Pct        float64 // paper: 97.9%
	SavingVs5Pct         float64 // paper: 92.1%
}

// LaborSavings reproduces the §VI-C cost computation.
func LaborSavings() LaborSavingsResult {
	t50 := testbed.TraditionalUpdateSeconds(94, testbed.TraditionalSamples)
	t5 := testbed.TraditionalUpdateSeconds(94, testbed.IUpdaterSamples)
	ours := testbed.IUpdaterUpdateSeconds(8, testbed.IUpdaterSamples)
	return LaborSavingsResult{
		TraditionalSeconds50: t50,
		TraditionalSeconds5:  t5,
		IUpdaterSeconds:      ours,
		SavingVs50Pct:        100 * testbed.SavingFraction(t50, ours),
		SavingVs5Pct:         100 * testbed.SavingFraction(t5, ours),
	}
}
