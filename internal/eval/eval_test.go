package eval

import (
	"math"
	"testing"
)

func TestCDFBasics(t *testing.T) {
	c := NewCDF("x", []float64{3, 1, 2, 4, 5})
	if got := c.Median(); got != 3 {
		t.Errorf("Median = %v, want 3", got)
	}
	if got := c.Mean(); got != 3 {
		t.Errorf("Mean = %v, want 3", got)
	}
	if got := c.Percentile(0); got != 1 {
		t.Errorf("P0 = %v, want 1", got)
	}
	if got := c.Percentile(1); got != 5 {
		t.Errorf("P100 = %v, want 5", got)
	}
	if got := c.FractionBelow(3.5); got != 0.6 {
		t.Errorf("FractionBelow(3.5) = %v, want 0.6", got)
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF("empty", nil)
	if !math.IsNaN(c.Median()) || !math.IsNaN(c.Mean()) {
		t.Error("empty CDF should return NaN")
	}
}

func TestCDFDoesNotAliasInput(t *testing.T) {
	in := []float64{2, 1}
	c := NewCDF("x", in)
	if in[0] != 2 {
		t.Error("NewCDF sorted the caller's slice")
	}
	if c.Sorted[0] != 1 {
		t.Error("CDF not sorted")
	}
}

func TestTableRendering(t *testing.T) {
	tab := Table{
		Title:   "demo",
		Headers: []string{"a", "long-header"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
	}
	s := tab.String()
	if s == "" || len(s) < 10 {
		t.Errorf("table render too short: %q", s)
	}
}

func TestMeanHelper(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
}

func TestDefaultSeeds(t *testing.T) {
	s := DefaultSeeds(4)
	if len(s) != 4 {
		t.Fatalf("len = %d", len(s))
	}
	seen := map[uint64]bool{}
	for _, v := range s {
		if seen[v] {
			t.Error("duplicate seed")
		}
		seen[v] = true
	}
	if len(DefaultSeeds(0)) != 3 {
		t.Error("default seed count should be 3")
	}
}
