package eval

import (
	"math/rand"

	"iupdater/internal/core"
	"iupdater/internal/loc"
	"iupdater/internal/mat"
	"iupdater/internal/testbed"
)

// ompFor builds the standard continuous-output OMP localizer used by all
// localization experiments.
func (sc *Scenario) ompFor(x *mat.Dense) *loc.OMPPoint {
	return loc.NewOMPPoint(x, sc.Surveyor.Channel.Grid(), loc.OMPConfig{})
}

// Fig17Result compares partially-measured reconstructions (with
// Constraint 2 denoising) against the fully measured matrix (Fig 17,
// Claim 3).
type Fig17Result struct {
	Timestamps []string
	// Mean localization errors (m) per update time.
	Data80C2, Data50C2, Measured []float64
	// Mean database errors versus the noise-free truth (dB): the
	// denoising effect of Constraint 2 on the single-shot measurements.
	DBErr80C2, DBErr50C2, DBErrMeasured []float64
}

// Fig17VariationRobustness reconstructs from random 50% / 80% known
// entries with Constraint 2 and compares localization against the 100%
// measured matrix collected with the same per-location sampling.
func Fig17VariationRobustness(env testbed.Environment, seeds []uint64) (Fig17Result, error) {
	times := testbed.UpdateTimestamps()
	res := Fig17Result{
		Timestamps:    testbed.UpdateTimestampLabels(),
		Data80C2:      make([]float64, len(times)),
		Data50C2:      make([]float64, len(times)),
		Measured:      make([]float64, len(times)),
		DBErr80C2:     make([]float64, len(times)),
		DBErr50C2:     make([]float64, len(times)),
		DBErrMeasured: make([]float64, len(times)),
	}
	for ti, tU := range times {
		var e80, e50, eM []float64
		var db80, db50, dbM []float64
		for _, seed := range seeds {
			sc, err := NewScenario(env, seed)
			if err != nil {
				return Fig17Result{}, err
			}
			// Single-shot survey: Claim 3 is about robustness to
			// short-term RSS variation, so the arms are fed raw
			// single-reading measurements and Constraint 2 must do the
			// denoising that sample averaging would otherwise do.
			measured, _ := sc.Surveyor.FullSurvey(tU, 1)
			truth := sc.Surveyor.TrueFingerprint(tU)
			rng := rand.New(rand.NewSource(int64(seed) + 1700))

			for _, arm := range []struct {
				frac float64
				dst  *[]float64
				db   *[]float64
			}{{0.8, &e80, &db80}, {0.5, &e50, &db50}} {
				recon, err := reconstructFromFraction(sc, measured.X, arm.frac, rng)
				if err != nil {
					return Fig17Result{}, err
				}
				errs, err := sc.LocalizationErrors(sc.ompFor(recon), tU+3600, int64(seed))
				if err != nil {
					return Fig17Result{}, err
				}
				*arm.dst = append(*arm.dst, errs...)
				*arm.db = append(*arm.db, meanAbsDB(recon, truth.X))
			}
			errs, err := sc.LocalizationErrors(sc.ompFor(measured.X), tU+3600, int64(seed))
			if err != nil {
				return Fig17Result{}, err
			}
			eM = append(eM, errs...)
			dbM = append(dbM, meanAbsDB(measured.X, truth.X))
		}
		res.Data80C2[ti] = Mean(e80)
		res.Data50C2[ti] = Mean(e50)
		res.Measured[ti] = Mean(eM)
		res.DBErr80C2[ti] = Mean(db80)
		res.DBErr50C2[ti] = Mean(db50)
		res.DBErrMeasured[ti] = Mean(dbM)
	}
	return res, nil
}

// meanAbsDB returns the mean |a-b| over all entries.
func meanAbsDB(a, b *mat.Dense) float64 {
	d := mat.SubM(a, b)
	var sum float64
	for _, v := range d.RawData() {
		if v < 0 {
			v = -v
		}
		sum += v
	}
	r, c := d.Dims()
	return sum / float64(r*c)
}

// reconstructFromFraction keeps a random fraction of the measured entries
// and reconstructs the rest with the Constraint-2-regularized solver.
func reconstructFromFraction(sc *Scenario, measured *mat.Dense, frac float64, rng *rand.Rand) (*mat.Dense, error) {
	m, n := measured.Dims()
	b := mat.New(m, n)
	xb := mat.New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if rng.Float64() < frac {
				b.Set(i, j, 1)
				xb.Set(i, j, measured.At(i, j))
			}
		}
	}
	rc := core.NewReconstructor(
		core.WithWarmStart(true),
		core.WithConstraint1(false),
		core.WithConstraint2(true),
	)
	res, err := rc.Reconstruct(core.Input{
		XB: xb, B: b,
		Links: sc.Original.Links, PerStrip: sc.Original.PerStrip,
	})
	if err != nil {
		return nil, err
	}
	return res.X, nil
}

// LocalizationArms holds the three headline arms of Figs 21 and 22.
type LocalizationArms struct {
	// Groundtruth uses a fresh full 50-sample survey at the update time.
	Groundtruth []float64
	// IUpdater uses the reconstructed matrix.
	IUpdater []float64
	// Stale uses the original (t=0) matrix without reconstruction
	// ("OMP w/o rec.").
	Stale []float64
}

// localizationArms runs the three arms for one scenario at time tU.
func localizationArms(sc *Scenario, tU float64, seed uint64) (LocalizationArms, error) {
	var out LocalizationArms
	gt, _ := sc.Surveyor.FullSurvey(tU, testbed.TraditionalSamples)
	_, rec, err := sc.Update(tU)
	if err != nil {
		return out, err
	}
	tOnline := tU + 3600
	for _, arm := range []struct {
		x   *mat.Dense
		dst *[]float64
	}{
		{gt.X, &out.Groundtruth},
		{rec.X, &out.IUpdater},
		{sc.Original.X, &out.Stale},
	} {
		errs, err := sc.LocalizationErrors(sc.ompFor(arm.x), tOnline, int64(seed))
		if err != nil {
			return out, err
		}
		*arm.dst = errs
	}
	return out, nil
}

// Fig21Result holds the localization-error CDFs at 45 days (Fig 21).
type Fig21Result struct {
	Groundtruth, IUpdater, Stale CDF
}

// Fig21LocalizationCDF runs the three arms in one environment at 45 days.
func Fig21LocalizationCDF(env testbed.Environment, seeds []uint64) (Fig21Result, error) {
	const tU = 45 * testbed.Day
	var gt, iu, st []float64
	for _, seed := range seeds {
		sc, err := NewScenario(env, seed)
		if err != nil {
			return Fig21Result{}, err
		}
		arms, err := localizationArms(sc, tU, seed)
		if err != nil {
			return Fig21Result{}, err
		}
		gt = append(gt, arms.Groundtruth...)
		iu = append(iu, arms.IUpdater...)
		st = append(st, arms.Stale...)
	}
	return Fig21Result{
		Groundtruth: NewCDF("Groundtruth", gt),
		IUpdater:    NewCDF("iUpdater", iu),
		Stale:       NewCDF("OMP w/o rec.", st),
	}, nil
}

// Fig22Result holds mean localization errors for every environment,
// update time and arm (Fig 22).
type Fig22Result struct {
	Environments []string
	Timestamps   []string
	// MeanM[e][t] per arm, in meters.
	Groundtruth, IUpdater, Stale [][]float64
	// ImprovementPct[e] is iUpdater's accuracy improvement over the stale
	// matrix per environment, averaged over times (the paper reports
	// 66.7%, 57.4% and 55.1% for hall, office and library).
	ImprovementPct []float64
}

// Fig22LocalizationEnvironments sweeps environments and update times.
func Fig22LocalizationEnvironments(seeds []uint64) (Fig22Result, error) {
	envs := testbed.Environments()
	times := testbed.UpdateTimestamps()
	res := Fig22Result{Timestamps: testbed.UpdateTimestampLabels()}
	res.Groundtruth = make([][]float64, len(envs))
	res.IUpdater = make([][]float64, len(envs))
	res.Stale = make([][]float64, len(envs))
	res.ImprovementPct = make([]float64, len(envs))
	for e, env := range envs {
		res.Environments = append(res.Environments, env.Name)
		res.Groundtruth[e] = make([]float64, len(times))
		res.IUpdater[e] = make([]float64, len(times))
		res.Stale[e] = make([]float64, len(times))
		var improveSum float64
		for ti, tU := range times {
			var gt, iu, st []float64
			for _, seed := range seeds {
				sc, err := NewScenario(env, seed)
				if err != nil {
					return Fig22Result{}, err
				}
				arms, err := localizationArms(sc, tU, seed)
				if err != nil {
					return Fig22Result{}, err
				}
				gt = append(gt, arms.Groundtruth...)
				iu = append(iu, arms.IUpdater...)
				st = append(st, arms.Stale...)
			}
			res.Groundtruth[e][ti] = Mean(gt)
			res.IUpdater[e][ti] = Mean(iu)
			res.Stale[e][ti] = Mean(st)
			improveSum += 1 - res.IUpdater[e][ti]/res.Stale[e][ti]
		}
		res.ImprovementPct[e] = 100 * improveSum / float64(len(times))
	}
	return res, nil
}

// Fig23Result compares iUpdater with RASS at 45 days (Fig 23).
type Fig23Result struct {
	IUpdater, RASSRec, RASSStale CDF
}

// Fig23RASSComparison runs iUpdater and the two RASS arms at 45 days.
func Fig23RASSComparison(env testbed.Environment, seeds []uint64) (Fig23Result, error) {
	const tU = 45 * testbed.Day
	var iu, rr, rs []float64
	for _, seed := range seeds {
		sc, err := NewScenario(env, seed)
		if err != nil {
			return Fig23Result{}, err
		}
		a, b, c, err := rassArms(sc, tU, seed)
		if err != nil {
			return Fig23Result{}, err
		}
		iu = append(iu, a...)
		rr = append(rr, b...)
		rs = append(rs, c...)
	}
	return Fig23Result{
		IUpdater:  NewCDF("iUpdater", iu),
		RASSRec:   NewCDF("RASS w/ rec.", rr),
		RASSStale: NewCDF("RASS w/o rec.", rs),
	}, nil
}

// rassArms runs iUpdater plus RASS with/without the reconstructed matrix.
func rassArms(sc *Scenario, tU float64, seed uint64) (iu, rassRec, rassStale []float64, err error) {
	_, rec, err := sc.Update(tU)
	if err != nil {
		return nil, nil, nil, err
	}
	tOnline := tU + 3600
	iu, err = sc.LocalizationErrors(sc.ompFor(rec.X), tOnline, int64(seed))
	if err != nil {
		return nil, nil, nil, err
	}
	g := sc.Surveyor.Channel.Grid()
	for _, arm := range []struct {
		x   *mat.Dense
		dst *[]float64
	}{{rec.X, &rassRec}, {sc.Original.X, &rassStale}} {
		r, rerr := loc.NewRASS(arm.x, g, loc.DefaultSVRConfig())
		if rerr != nil {
			return nil, nil, nil, rerr
		}
		errs, rerr := sc.LocalizationErrors(r, tOnline, int64(seed))
		if rerr != nil {
			return nil, nil, nil, rerr
		}
		*arm.dst = errs
	}
	return iu, rassRec, rassStale, nil
}

// Fig24Result holds mean errors over time for the RASS comparison
// (Fig 24).
type Fig24Result struct {
	Timestamps                   []string
	IUpdater, RASSRec, RASSStale []float64
}

// Fig24RASSOverTime sweeps the RASS comparison over the update times.
func Fig24RASSOverTime(env testbed.Environment, seeds []uint64) (Fig24Result, error) {
	times := testbed.UpdateTimestamps()
	res := Fig24Result{
		Timestamps: testbed.UpdateTimestampLabels(),
		IUpdater:   make([]float64, len(times)),
		RASSRec:    make([]float64, len(times)),
		RASSStale:  make([]float64, len(times)),
	}
	for ti, tU := range times {
		var iu, rr, rs []float64
		for _, seed := range seeds {
			sc, err := NewScenario(env, seed)
			if err != nil {
				return Fig24Result{}, err
			}
			a, b, c, err := rassArms(sc, tU, seed)
			if err != nil {
				return Fig24Result{}, err
			}
			iu = append(iu, a...)
			rr = append(rr, b...)
			rs = append(rs, c...)
		}
		res.IUpdater[ti] = Mean(iu)
		res.RASSRec[ti] = Mean(rr)
		res.RASSStale[ti] = Mean(rs)
	}
	return res, nil
}
