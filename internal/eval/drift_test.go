package eval

import (
	"math"
	"testing"

	"iupdater"
)

// TestDriftStationaryNoFalsePositives streams >= 10k queries against an
// unchanged environment: the monitor must never declare drift, never
// survey, and leave the original snapshot serving. (Seeded and
// deterministic; seeds cover a slow-aging and a fast-aging radio fleet.)
func TestDriftStationaryNoFalsePositives(t *testing.T) {
	for _, seed := range []uint64{1, 10} {
		res, err := DriftMonitorRun(DriftRunConfig{
			Seed:    seed,
			Queries: 10_000,
			FlipAt:  0, // never changes
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		s := res.Stats
		if s.Queries != 10_000 {
			t.Fatalf("seed %d: observed %d queries", seed, s.Queries)
		}
		if s.Detections != 0 || s.UpdatesTriggered != 0 {
			t.Errorf("seed %d: %d false detections, %d updates on a stationary run (score %.2f)",
				seed, s.Detections, s.UpdatesTriggered, s.Score)
		}
		if s.SnapshotVersion != 1 {
			t.Errorf("seed %d: snapshot version %d, want untouched 1", seed, s.SnapshotVersion)
		}
	}
}

// TestDriftFlipDetectedAndRepaired flips the environment mid-run and
// checks the whole closed loop: bounded detection delay, an automatic
// update, and a repaired database within 0.5 dB of the one a manual
// update at the flip instant would have produced — while the stale
// database is far worse than either.
func TestDriftFlipDetectedAndRepaired(t *testing.T) {
	for _, seed := range []uint64{1, 2} {
		res, err := DriftMonitorRun(DriftRunConfig{
			Seed:    seed,
			Queries: 1200,
			FlipAt:  600,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		s := res.Stats
		if s.Detections == 0 {
			t.Fatalf("seed %d: environment change never detected (score %.2f)", seed, s.Score)
		}
		// The default detector needs ~a quarter window of drifted
		// residuals plus the hysteresis run; 128 queries (= 64 s of
		// traffic) is a generous ceiling.
		if res.DetectionDelay < 0 || res.DetectionDelay > 128 {
			t.Errorf("seed %d: detection delay %d queries, want within 128", seed, res.DetectionDelay)
		}
		if s.UpdatesCompleted == 0 || s.UpdateErrors != 0 {
			t.Fatalf("seed %d: auto-update did not complete: %+v", seed, s)
		}
		if s.SnapshotVersion < 2 {
			t.Errorf("seed %d: no new snapshot published (version %d)", seed, s.SnapshotVersion)
		}
		if math.IsNaN(res.AutoErrDB) || math.IsNaN(res.ManualErrDB) {
			t.Fatalf("seed %d: missing arm: auto %.3f manual %.3f", seed, res.AutoErrDB, res.ManualErrDB)
		}
		if diff := math.Abs(res.AutoErrDB - res.ManualErrDB); diff > 0.5 {
			t.Errorf("seed %d: auto-update %.3f dB vs manual %.3f dB (diff %.3f, want <= 0.5)",
				seed, res.AutoErrDB, res.ManualErrDB, diff)
		}
		if res.AutoErrDB >= res.StaleErrDB {
			t.Errorf("seed %d: auto-update %.3f dB did not improve on stale %.3f dB",
				seed, res.AutoErrDB, res.StaleErrDB)
		}
	}
}

// TestDriftAdaptiveCooldownBeatsFixed double-flips the environment:
// the first flip triggers an auto-update, and the second lands while a
// fixed-width cooldown would still be counting down. The residual-driven
// adaptive policy (same 1000-query ceiling as the fixed default) must
// trigger the needed second update strictly sooner than the fixed
// policy, with exactly the same number of total updates — faster
// reaction, no extra churn. The stationary control then shows the
// adaptive default raises no false updates either.
func TestDriftAdaptiveCooldownBeatsFixed(t *testing.T) {
	base := DriftRunConfig{
		Seed:         1,
		Queries:      2200,
		FlipAt:       400,
		SecondFlipAt: 1000,
	}
	fixedCfg := base
	fixedCfg.Cooldown = 1000 // the old fixed default, explicitly
	fixed, err := DriftMonitorRun(fixedCfg)
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := DriftMonitorRun(base) // adaptive is the Monitor default
	if err != nil {
		t.Fatal(err)
	}

	if fixed.Stats.UpdatesTriggered < 2 {
		t.Fatalf("fixed arm never reached the second update: %+v", fixed.Stats)
	}
	if adaptive.Stats.UpdatesTriggered < 2 {
		t.Fatalf("adaptive arm never reached the second update: %+v", adaptive.Stats)
	}
	if fixed.SecondUpdateDelay < 0 || adaptive.SecondUpdateDelay < 0 {
		t.Fatalf("second-update delays not recorded: fixed %d adaptive %d",
			fixed.SecondUpdateDelay, adaptive.SecondUpdateDelay)
	}
	t.Logf("second update: adaptive after %d queries, fixed after %d",
		adaptive.SecondUpdateDelay, fixed.SecondUpdateDelay)
	if adaptive.SecondUpdateDelay >= fixed.SecondUpdateDelay {
		t.Errorf("adaptive second update after %d queries, fixed after %d — adaptive must react sooner",
			adaptive.SecondUpdateDelay, fixed.SecondUpdateDelay)
	}
	if adaptive.Stats.UpdatesTriggered != fixed.Stats.UpdatesTriggered {
		t.Errorf("adaptive triggered %d updates vs fixed %d — faster must not mean more",
			adaptive.Stats.UpdatesTriggered, fixed.Stats.UpdatesTriggered)
	}

	// Stationary control under the adaptive default: no false updates.
	still, err := DriftMonitorRun(DriftRunConfig{Seed: 1, Queries: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if still.Stats.Detections != 0 || still.Stats.UpdatesTriggered != 0 {
		t.Errorf("stationary adaptive run: %d detections, %d updates, want none",
			still.Stats.Detections, still.Stats.UpdatesTriggered)
	}
}

// TestDriftRunDeterministic re-runs one flip scenario and requires
// bit-identical outcomes: the whole loop (measurement, residual,
// detection, reference survey, reconstruction) is seeded.
func TestDriftRunDeterministic(t *testing.T) {
	cfg := DriftRunConfig{Seed: 3, Queries: 900, FlipAt: 500}
	a, err := DriftMonitorRun(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DriftMonitorRun(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.DetectionDelay != b.DetectionDelay ||
		a.Stats.Detections != b.Stats.Detections ||
		a.Stats.UpdatesCompleted != b.Stats.UpdatesCompleted ||
		a.AutoErrDB != b.AutoErrDB || a.ManualErrDB != b.ManualErrDB {
		t.Errorf("runs diverge:\n a: %+v (delay %d)\n b: %+v (delay %d)",
			a.Stats, a.DetectionDelay, b.Stats, b.DetectionDelay)
	}
}

// TestDriftPageHinkleyAlsoCloses runs the flip scenario with the
// alternate detector plugged in, demonstrating the Detector seam.
func TestDriftPageHinkleyAlsoCloses(t *testing.T) {
	res, err := DriftMonitorRun(DriftRunConfig{
		Seed:     1,
		Queries:  1200,
		FlipAt:   600,
		Detector: iupdater.NewPageHinkleyDetector(0, 0, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Detections == 0 || res.Stats.UpdatesCompleted == 0 {
		t.Fatalf("Page-Hinkley loop did not close: %+v", res.Stats)
	}
	if res.DetectionDelay < 0 || res.DetectionDelay > 256 {
		t.Errorf("Page-Hinkley detection delay %d, want within 256", res.DetectionDelay)
	}
}
