package eval

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"iupdater/internal/core"
	"iupdater/internal/fingerprint"
	"iupdater/internal/geom"
	"iupdater/internal/loc"
	"iupdater/internal/mat"
	"iupdater/internal/testbed"
)

// Scenario is one deployment run: an environment, its surveyor, the
// original-time database and the update pipeline built from it.
type Scenario struct {
	Env      testbed.Environment
	Surveyor *testbed.Surveyor
	Original fingerprint.Matrix
	Mask     fingerprint.Mask
	Updater  *core.Updater
}

// NewScenario surveys the original database at t=0 and prepares the
// update pipeline. Extra reconstruction options are appended to the
// production defaults.
func NewScenario(env testbed.Environment, seed uint64, opts ...core.Option) (*Scenario, error) {
	s := testbed.NewSurveyor(env, seed)
	fp0, _ := s.FullSurvey(0, testbed.TraditionalSamples)
	cfg := core.DefaultUpdaterConfig()
	cfg.Reconstruction = append(cfg.Reconstruction, opts...)
	up, err := core.NewUpdater(fp0, cfg)
	if err != nil {
		return nil, fmt.Errorf("eval: building updater: %w", err)
	}
	return &Scenario{
		Env:      env,
		Surveyor: s,
		Original: fp0,
		Mask:     s.Mask(),
		Updater:  up,
	}, nil
}

// Update runs the full iUpdater refresh at time t: no-decrease scan plus
// reference survey plus reconstruction.
func (sc *Scenario) Update(t float64) (fingerprint.Matrix, *core.Result, error) {
	xb := sc.Surveyor.NoDecreaseScan(t, testbed.IUpdaterSamples)
	xr, _ := sc.Surveyor.ReferenceSurvey(t, sc.Updater.ReferenceLocations(), testbed.IUpdaterSamples)
	return sc.Updater.Update(xb, sc.Mask, xr, t)
}

// UpdateWithRefs runs a refresh using custom reference locations (the
// Fig 14/15 arms): the correlation matrix is re-learned on those columns
// of the original database.
func (sc *Scenario) UpdateWithRefs(t float64, refs []int, opts ...core.Option) (*mat.Dense, error) {
	xmic := sc.Original.X.SelectCols(refs)
	lrr, err := core.LRR(sc.Original.X, xmic, core.DefaultLRRConfig())
	if err != nil {
		return nil, err
	}
	xb := sc.Surveyor.NoDecreaseScan(t, testbed.IUpdaterSamples)
	xr, _ := sc.Surveyor.ReferenceSurvey(t, refs, testbed.IUpdaterSamples)
	all := append([]core.Option{core.WithWarmStart(true)}, opts...)
	rc := core.NewReconstructor(all...)
	res, err := rc.Reconstruct(core.Input{
		XB: xb, B: sc.Mask.B, XR: xr, Z: lrr.Z,
		Links: sc.Original.Links, PerStrip: sc.Original.PerStrip,
	})
	if err != nil {
		return nil, err
	}
	return res.X, nil
}

// ReconErrors returns the per-entry |reconstruction - ground truth|
// values over the affected (labor-cost) entries — the entries the update
// actually has to predict. Ground truth is the measured ground-truth
// matrix, as in the paper's metric (§VI-A).
func (sc *Scenario) ReconErrors(recon *mat.Dense, t float64) []float64 {
	gt, _ := sc.Surveyor.FullSurvey(t, testbed.TraditionalSamples)
	var out []float64
	m, n := recon.Dims()
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if !sc.Mask.Known(i, j) {
				out = append(out, math.Abs(recon.At(i, j)-gt.X.At(i, j)))
			}
		}
	}
	return out
}

// TestPoints returns the localization test positions: targets standing at
// randomly chosen marked grid locations with bounded standing jitter.
func TestPoints(g geom.Grid, seed int64, n int) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for k := range pts {
		p := g.Center(rng.Intn(g.NumCells()))
		p.X += (rng.Float64()*2 - 1) * StandingJitterM
		p.Y += (rng.Float64()*2 - 1) * StandingJitterM
		pts[k] = p
	}
	return pts
}

// PointLocalizer estimates continuous positions from online measurements.
// Implementations must be safe for concurrent use: the evaluation
// protocol fans localization out over a worker pool.
type PointLocalizer interface {
	LocatePoint(y []float64) (geom.Point, error)
}

// LocalizationErrors runs the standard online protocol against a
// localizer: TargetsPerRun targets, OnlineSamples readings each, Euclid
// distance errors returned. Measurement generation is sequential (the
// simulator stream is seeded per attempt) and the localization calls are
// batched over all CPUs; the result is identical to the serial protocol.
func (sc *Scenario) LocalizationErrors(l PointLocalizer, tOnline float64, seed int64) ([]float64, error) {
	pts := TestPoints(sc.Surveyor.Channel.Grid(), seed, TargetsPerRun)
	ys := make([][]float64, len(pts))
	for k, p := range pts {
		ys[k] = sc.Surveyor.MeasureOnline(p, tOnline+float64(k)*40, OnlineSamples)
	}
	ests, err := loc.LocatePoints(context.Background(), l, ys, 0)
	if err != nil {
		return nil, fmt.Errorf("eval: localization: %w", err)
	}
	errs := make([]float64, len(pts))
	for k, est := range ests {
		errs[k] = est.Distance(pts[k])
	}
	return errs, nil
}

// DefaultSeeds returns the standard seed set for multi-run experiments.
func DefaultSeeds(n int) []uint64 {
	if n <= 0 {
		n = 3
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(3 + 7*i)
	}
	return out
}
