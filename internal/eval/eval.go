// Package eval contains one experiment driver per table and figure of the
// paper's evaluation (Section VI), all running against the simulated
// testbed. Each driver returns plain data that cmd/figgen renders, the
// benchmarks time, and EXPERIMENTS.md records.
package eval

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Protocol constants shared by every experiment, mirroring §VI-A.
const (
	// OnlineSamples is the number of RSS readings averaged per online
	// localization attempt.
	OnlineSamples = 5
	// StandingJitterM is how far a test subject may stand from the marked
	// test location (uniform in each axis).
	StandingJitterM = 0.2
	// TargetsPerRun is the number of online localization attempts per
	// scenario run.
	TargetsPerRun = 50
)

// Series is one labeled line of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// CDF summarizes an empirical distribution.
type CDF struct {
	Name   string
	Sorted []float64
}

// NewCDF copies and sorts values into a CDF.
func NewCDF(name string, values []float64) CDF {
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	return CDF{Name: name, Sorted: s}
}

// Percentile returns the p-quantile (0 <= p <= 1) of the distribution.
func (c CDF) Percentile(p float64) float64 {
	if len(c.Sorted) == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return c.Sorted[0]
	}
	if p >= 1 {
		return c.Sorted[len(c.Sorted)-1]
	}
	idx := p * float64(len(c.Sorted)-1)
	lo := int(idx)
	frac := idx - float64(lo)
	if lo+1 >= len(c.Sorted) {
		return c.Sorted[lo]
	}
	return c.Sorted[lo]*(1-frac) + c.Sorted[lo+1]*frac
}

// Median returns the 50th percentile.
func (c CDF) Median() float64 { return c.Percentile(0.5) }

// Mean returns the mean of the distribution.
func (c CDF) Mean() float64 {
	if len(c.Sorted) == 0 {
		return math.NaN()
	}
	var s float64
	for _, v := range c.Sorted {
		s += v
	}
	return s / float64(len(c.Sorted))
}

// FractionBelow returns the empirical CDF value at x.
func (c CDF) FractionBelow(x float64) float64 {
	n := sort.SearchFloat64s(c.Sorted, x)
	return float64(n) / float64(len(c.Sorted))
}

// Mean returns the arithmetic mean of values.
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	var s float64
	for _, v := range values {
		s += v
	}
	return s / float64(len(values))
}

// Table is a rendered result table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// String renders the table as aligned text.
func (t Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// F formats a float for table cells.
func F(v float64) string { return fmt.Sprintf("%.2f", v) }
