package eval

import (
	"math"

	"iupdater/internal/fingerprint"
	"iupdater/internal/mat"
	"iupdater/internal/rf"
	"iupdater/internal/testbed"
)

// Fig01Result is the short-term RSS trace of Fig 1.
type Fig01Result struct {
	Times []float64
	RSS   []float64
	// SwingDB is the peak-to-peak excursion (the paper observes ≈5 dB).
	SwingDB float64
}

// Fig01ShortTermVariation samples one link for 100 s at the beacon rate.
func Fig01ShortTermVariation(env testbed.Environment, seed uint64) Fig01Result {
	s := testbed.NewSurveyor(env, seed)
	const samples = 200
	res := Fig01Result{
		Times: make([]float64, samples),
		RSS:   make([]float64, samples),
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for k := 0; k < samples; k++ {
		ts := float64(k) * testbed.SampleInterval
		v := s.Channel.Sample(0, rf.NoTarget, ts)
		res.Times[k] = ts
		res.RSS[k] = v
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	res.SwingDB = hi - lo
	return res
}

// Fig02Result captures the long-term RSS shift of Fig 2.
type Fig02Result struct {
	// Histograms of readings at the original time, 5 days and 45 days.
	Original, After5Days, After45Days CDF
	// Shift5DB and Shift45DB are the mean absolute shifts of the average
	// reading (paper: ≈2.5 dB and ≈6 dB), averaged over links.
	Shift5DB, Shift45DB float64
}

// Fig02LongTermShift measures a fixed location's readings at three survey
// times.
func Fig02LongTermShift(env testbed.Environment, seed uint64) Fig02Result {
	s := testbed.NewSurveyor(env, seed)
	collect := func(t float64) []float64 {
		out := make([]float64, 120)
		for k := range out {
			out[k] = s.Channel.Sample(0, 5, t+float64(k)*testbed.SampleInterval)
		}
		return out
	}
	o := collect(0)
	d5 := collect(5 * testbed.Day)
	d45 := collect(45 * testbed.Day)

	// Shift statistics averaged over several deployments: a single
	// deployment's drift is dominated by one correlated draw.
	var s5, s45 float64
	var cnt int
	for sub := uint64(0); sub < 10; sub++ {
		ch := testbed.NewSurveyor(env, seed+1000*sub).Channel
		for i := 0; i < ch.NumLinks(); i++ {
			s5 += math.Abs(ch.Drift(i, 5*testbed.Day) - ch.Drift(i, 0))
			s45 += math.Abs(ch.Drift(i, 45*testbed.Day) - ch.Drift(i, 0))
			cnt++
		}
	}
	return Fig02Result{
		Original:    NewCDF("original", o),
		After5Days:  NewCDF("5 days", d5),
		After45Days: NewCDF("45 days", d45),
		Shift5DB:    s5 / float64(cnt),
		Shift45DB:   s45 / float64(cnt),
	}
}

// Fig05Result holds the normalized singular-value profiles of Fig 5.
type Fig05Result struct {
	// Profiles[k] is the normalized singular-value vector of the
	// fingerprint matrix surveyed at Timestamps()[k].
	Labels   []string
	Profiles [][]float64
	// LeadingShare is the energy fraction of the largest singular value
	// at the original time.
	LeadingShare float64
}

// Fig05SingularValues surveys the six matrices of the three-month study
// and decomposes each.
func Fig05SingularValues(env testbed.Environment, seed uint64) Fig05Result {
	s := testbed.NewSurveyor(env, seed)
	res := Fig05Result{Labels: testbed.TimestampLabels()}
	for _, t := range testbed.Timestamps() {
		fp, _ := s.FullSurvey(t, testbed.TraditionalSamples)
		sv := mat.SingularValues(fp.X)
		norm := make([]float64, len(sv))
		if sv[0] > 0 {
			for i, v := range sv {
				norm[i] = v / sv[0]
			}
		}
		res.Profiles = append(res.Profiles, norm)
	}
	first := res.Profiles[0]
	var total float64
	for _, v := range first {
		total += v
	}
	if total > 0 {
		res.LeadingShare = first[0] / total
	}
	return res
}

// Fig06Result compares raw RSS variation with the variation of the RSS
// differences between neighboring locations and adjacent links (Fig 6).
type Fig06Result struct {
	// Std deviations over a 100 s window, mean-removed.
	RawStd, NeighborDiffStd, AdjacentLinkDiffStd float64
	// Traces for plotting (mean-removed).
	Times                               []float64
	Raw, NeighborDiff, AdjacentLinkDiff []float64
}

// Fig06DifferenceStability samples fingerprint entries over time and
// computes the three traces.
func Fig06DifferenceStability(env testbed.Environment, seed uint64) Fig06Result {
	s := testbed.NewSurveyor(env, seed)
	g := s.Channel.Grid()
	const samples = 200
	link := g.Links / 2
	u := g.PerStrip / 3
	jA := g.CellIndex(link, u)
	jB := g.CellIndex(link, u+1) // neighboring location on the same link
	jC := g.CellIndex(link+1, u) // same relative location on the adjacent link
	res := Fig06Result{Times: make([]float64, samples)}
	raw := make([]float64, samples)
	nd := make([]float64, samples)
	ad := make([]float64, samples)
	for k := 0; k < samples; k++ {
		ts := float64(k) * testbed.SampleInterval
		a := s.Channel.Sample(link, jA, ts)
		b := s.Channel.Sample(link, jB, ts)
		c := s.Channel.Sample(link+1, jC, ts)
		res.Times[k] = ts
		raw[k] = a
		nd[k] = a - b
		ad[k] = a - c
	}
	res.Raw = demean(raw)
	res.NeighborDiff = demean(nd)
	res.AdjacentLinkDiff = demean(ad)
	res.RawStd = std(raw)
	res.NeighborDiffStd = std(nd)
	res.AdjacentLinkDiffStd = std(ad)
	return res
}

// Fig08Result holds the NLC CDFs of Fig 8 (one per survey time).
type Fig08Result struct {
	Labels []string
	CDFs   []CDF
	// FractionBelow02 is the worst-case (over times) fraction of NLC
	// values below 0.2; the paper reports > 90%.
	FractionBelow02 float64
}

// Fig08NLCCDF computes the neighboring-location continuity statistics of
// the six surveyed matrices.
func Fig08NLCCDF(env testbed.Environment, seed uint64) Fig08Result {
	s := testbed.NewSurveyor(env, seed)
	res := Fig08Result{Labels: testbed.TimestampLabels(), FractionBelow02: 1}
	for _, t := range testbed.Timestamps() {
		fp, _ := s.FullSurvey(t, testbed.TraditionalSamples)
		nlc := fingerprint.NLC(fp.LargeDecrease())
		cdf := NewCDF("NLC", flatten(nlc))
		res.CDFs = append(res.CDFs, cdf)
		if f := cdf.FractionBelow(0.2); f < res.FractionBelow02 {
			res.FractionBelow02 = f
		}
	}
	return res
}

// Fig09Result holds the ALS CDFs of Fig 9.
type Fig09Result struct {
	Labels []string
	CDFs   []CDF
	// FractionBelow04 is the worst-case fraction of ALS values below
	// 0.4; the paper reports > 80%.
	FractionBelow04 float64
}

// Fig09ALSCDF computes the adjacent-link similarity statistics of the six
// surveyed matrices.
func Fig09ALSCDF(env testbed.Environment, seed uint64) Fig09Result {
	s := testbed.NewSurveyor(env, seed)
	res := Fig09Result{Labels: testbed.TimestampLabels(), FractionBelow04: 1}
	for _, t := range testbed.Timestamps() {
		fp, _ := s.FullSurvey(t, testbed.TraditionalSamples)
		als := fingerprint.ALS(fp.LargeDecrease())
		cdf := NewCDF("ALS", flatten(als))
		res.CDFs = append(res.CDFs, cdf)
		if f := cdf.FractionBelow(0.4); f < res.FractionBelow04 {
			res.FractionBelow04 = f
		}
	}
	return res
}

func flatten(m *mat.Dense) []float64 {
	r, c := m.Dims()
	out := make([]float64, 0, r*c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			out = append(out, m.At(i, j))
		}
	}
	return out
}

func demean(v []float64) []float64 {
	m := Mean(v)
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = x - m
	}
	return out
}

func std(v []float64) float64 {
	m := Mean(v)
	var s float64
	for _, x := range v {
		s += (x - m) * (x - m)
	}
	return math.Sqrt(s / float64(len(v)))
}
