package eval

import (
	"fmt"
	"strings"
)

// Render functions turn experiment results into the text tables that
// cmd/figgen prints and EXPERIMENTS.md records. Each mirrors the series
// the corresponding paper figure plots.

// Render renders Fig 1.
func (r Fig01Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 1 — short-term RSS variation (100 s, one link)\n")
	fmt.Fprintf(&b, "peak-to-peak swing: %.1f dB (paper: ~5 dB)\n", r.SwingDB)
	fmt.Fprintf(&b, "trace (every 10th sample, dBm):")
	for i := 0; i < len(r.RSS); i += 10 {
		fmt.Fprintf(&b, " %.1f", r.RSS[i])
	}
	b.WriteByte('\n')
	return b.String()
}

// Render renders Fig 2.
func (r Fig02Result) Render() string {
	t := Table{
		Title:   "Fig 2 — long-term RSS shift at a fixed location",
		Headers: []string{"survey", "mean dBm", "p10", "p90"},
		Rows: [][]string{
			{"original", F(r.Original.Mean()), F(r.Original.Percentile(0.1)), F(r.Original.Percentile(0.9))},
			{"5 days", F(r.After5Days.Mean()), F(r.After5Days.Percentile(0.1)), F(r.After5Days.Percentile(0.9))},
			{"45 days", F(r.After45Days.Mean()), F(r.After45Days.Percentile(0.1)), F(r.After45Days.Percentile(0.9))},
		},
	}
	return t.String() + fmt.Sprintf("mean |shift|: %.1f dB @5 days (paper ~2.5), %.1f dB @45 days (paper ~6)\n",
		r.Shift5DB, r.Shift45DB)
}

// Render renders Fig 5.
func (r Fig05Result) Render() string {
	t := Table{
		Title:   "Fig 5 — normalized singular values of the six fingerprint matrices",
		Headers: []string{"survey"},
	}
	for i := range r.Profiles[0] {
		t.Headers = append(t.Headers, fmt.Sprintf("s%d", i+1))
	}
	for k, label := range r.Labels {
		row := []string{label}
		for _, v := range r.Profiles[k] {
			row = append(row, F(v))
		}
		t.Rows = append(t.Rows, row)
	}
	return t.String() + fmt.Sprintf("leading singular value share: %.0f%% (approximately low rank, r = M)\n",
		100*r.LeadingShare)
}

// Render renders Fig 6.
func (r Fig06Result) Render() string {
	return fmt.Sprintf(`Fig 6 — stability of RSS differences (100 s window)
std of raw RSS readings:                 %.2f dB
std of neighboring-location difference:  %.2f dB
std of adjacent-link difference:         %.2f dB
(differences must vary less than raw readings)
`, r.RawStd, r.NeighborDiffStd, r.AdjacentLinkDiffStd)
}

// Render renders Fig 8.
func (r Fig08Result) Render() string {
	t := Table{
		Title:   "Fig 8 — CDF of neighboring-location continuity NLC (normalized)",
		Headers: []string{"survey", "median", "p90", "frac<0.2"},
	}
	for k, label := range r.Labels {
		c := r.CDFs[k]
		t.Rows = append(t.Rows, []string{label, F(c.Median()), F(c.Percentile(0.9)), F(c.FractionBelow(0.2))})
	}
	return t.String() + fmt.Sprintf("worst-case fraction below 0.2: %.0f%% (paper: >90%%)\n", 100*r.FractionBelow02)
}

// Render renders Fig 9.
func (r Fig09Result) Render() string {
	t := Table{
		Title:   "Fig 9 — CDF of adjacent-link similarity ALS (normalized)",
		Headers: []string{"survey", "median", "p90", "frac<0.4"},
	}
	for k, label := range r.Labels {
		c := r.CDFs[k]
		t.Rows = append(t.Rows, []string{label, F(c.Median()), F(c.Percentile(0.9)), F(c.FractionBelow(0.4))})
	}
	return t.String() + fmt.Sprintf("worst-case fraction below 0.4: %.0f%% (paper: >80%%)\n", 100*r.FractionBelow04)
}

// Render renders Fig 14.
func (r Fig14Result) Render() string {
	t := Table{
		Title:   "Fig 14 — reconstruction error vs reference-location choice (45 days)",
		Headers: []string{"arm", "median dB", "mean dB", "p90 dB"},
	}
	for _, c := range r.CDFs {
		t.Rows = append(t.Rows, []string{c.Name, F(c.Median()), F(c.Mean()), F(c.Percentile(0.9))})
	}
	return t.String()
}

// Render renders Fig 15.
func (r Fig15Result) Render() string {
	t := Table{
		Title:   "Fig 15 — mean reconstruction error (dB) vs reference choice over time",
		Headers: append([]string{"arm"}, r.Timestamps...),
	}
	for a, arm := range r.Arms {
		row := []string{arm}
		for _, v := range r.MeanDB[a] {
			row = append(row, F(v))
		}
		t.Rows = append(t.Rows, row)
	}
	return t.String()
}

// Render renders Fig 16.
func (r Fig16Result) Render() string {
	t := Table{
		Title:   "Fig 16 — constraint ablation, mean reconstruction error (dB)",
		Headers: append([]string{"arm"}, r.Timestamps...),
	}
	rows := []struct {
		name string
		v    []float64
	}{
		{"RSVD", r.RSVD},
		{"RSVD + Constraint 1", r.C1},
		{"RSVD + Constraint 1 + Constraint 2", r.C1C2},
	}
	for _, row := range rows {
		cells := []string{row.name}
		for _, v := range row.v {
			cells = append(cells, F(v))
		}
		t.Rows = append(t.Rows, cells)
	}
	return t.String()
}

// Render renders Fig 17.
func (r Fig17Result) Render() string {
	t := Table{
		Title:   "Fig 17 — localization error (m) with partial single-shot data + Constraint 2",
		Headers: append([]string{"arm"}, r.Timestamps...),
	}
	rows := []struct {
		name string
		v    []float64
	}{
		{"80% data + Constraint 2", r.Data80C2},
		{"50% data + Constraint 2", r.Data50C2},
		{"Measured (ground truth)", r.Measured},
	}
	for _, row := range rows {
		cells := []string{row.name}
		for _, v := range row.v {
			cells = append(cells, F(v))
		}
		t.Rows = append(t.Rows, cells)
	}
	t2 := Table{
		Title:   "database error vs noise-free truth (dB) — Constraint 2's denoising",
		Headers: append([]string{"arm"}, r.Timestamps...),
	}
	rows2 := []struct {
		name string
		v    []float64
	}{
		{"80% data + Constraint 2", r.DBErr80C2},
		{"50% data + Constraint 2", r.DBErr50C2},
		{"Measured (100%, single-shot)", r.DBErrMeasured},
	}
	for _, row := range rows2 {
		cells := []string{row.name}
		for _, v := range row.v {
			cells = append(cells, F(v))
		}
		t2.Rows = append(t2.Rows, cells)
	}
	return t.String() + t2.String()
}

// Render renders Fig 18.
func (r Fig18Result) Render() string {
	t := Table{
		Title:   "Fig 18 — reconstruction error CDFs over time (office)",
		Headers: []string{"update time", "median dB", "mean dB", "p90 dB"},
	}
	for k, label := range r.Labels {
		c := r.CDFs[k]
		t.Rows = append(t.Rows, []string{label, F(c.Median()), F(c.Mean()), F(c.Percentile(0.9))})
	}
	return t.String()
}

// Render renders Fig 19.
func (r Fig19Result) Render() string {
	t := Table{
		Title:   "Fig 19 — mean reconstruction error (dB) per environment",
		Headers: append([]string{"environment"}, r.Timestamps...),
	}
	for e, env := range r.Environments {
		row := []string{env}
		for _, v := range r.MeanDB[e] {
			row = append(row, F(v))
		}
		t.Rows = append(t.Rows, row)
	}
	return t.String()
}

// Render renders Fig 20.
func (r Fig20Result) Render() string {
	t := Table{
		Title:   "Fig 20 — database update labor (hours) vs area scale",
		Headers: []string{"edge scale", "traditional", "iUpdater"},
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dx", p.Scale), F(p.TraditionalHours), F(p.IUpdaterHours),
		})
	}
	return t.String()
}

// Render renders Fig 21.
func (r Fig21Result) Render() string {
	t := Table{
		Title:   "Fig 21 — localization error CDFs at 45 days (office)",
		Headers: []string{"arm", "median m", "mean m", "p90 m"},
	}
	for _, c := range []CDF{r.Groundtruth, r.IUpdater, r.Stale} {
		t.Rows = append(t.Rows, []string{c.Name, F(c.Median()), F(c.Mean()), F(c.Percentile(0.9))})
	}
	return t.String()
}

// Render renders Fig 22.
func (r Fig22Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig 22 — mean localization error (m), three environments x five times\n")
	for e, env := range r.Environments {
		t := Table{
			Title:   env,
			Headers: append([]string{"arm"}, r.Timestamps...),
		}
		rows := []struct {
			name string
			v    []float64
		}{
			{"Groundtruth", r.Groundtruth[e]},
			{"iUpdater", r.IUpdater[e]},
			{"OMP w/o rec.", r.Stale[e]},
		}
		for _, row := range rows {
			cells := []string{row.name}
			for _, v := range row.v {
				cells = append(cells, F(v))
			}
			t.Rows = append(t.Rows, cells)
		}
		b.WriteString(t.String())
		fmt.Fprintf(&b, "iUpdater improvement over stale: %.1f%%\n", r.ImprovementPct[e])
	}
	return b.String()
}

// Render renders Fig 23.
func (r Fig23Result) Render() string {
	t := Table{
		Title:   "Fig 23 — comparison with RASS at 45 days (office)",
		Headers: []string{"arm", "median m", "mean m", "p90 m"},
	}
	for _, c := range []CDF{r.IUpdater, r.RASSRec, r.RASSStale} {
		t.Rows = append(t.Rows, []string{c.Name, F(c.Median()), F(c.Mean()), F(c.Percentile(0.9))})
	}
	return t.String()
}

// Render renders Fig 24.
func (r Fig24Result) Render() string {
	t := Table{
		Title:   "Fig 24 — mean localization error (m) vs RASS over time",
		Headers: append([]string{"arm"}, r.Timestamps...),
	}
	rows := []struct {
		name string
		v    []float64
	}{
		{"iUpdater", r.IUpdater},
		{"RASS w/ rec.", r.RASSRec},
		{"RASS w/o rec.", r.RASSStale},
	}
	for _, row := range rows {
		cells := []string{row.name}
		for _, v := range row.v {
			cells = append(cells, F(v))
		}
		t.Rows = append(t.Rows, cells)
	}
	return t.String()
}

// Render renders the labor table.
func (r LaborSavingsResult) Render() string {
	return fmt.Sprintf(`Labor savings (§VI-C, office with 94 locations)
traditional survey, 50 samples/loc: %.0f s (46.9 min)
traditional survey, 5 samples/loc:  %.0f s
iUpdater, 8 references x 5 samples: %.0f s
saving vs 50-sample traditional: %.1f%% (paper: 97.9%%)
saving vs 5-sample traditional:  %.1f%% (paper: 92.1%%)
`, r.TraditionalSeconds50, r.TraditionalSeconds5, r.IUpdaterSeconds,
		r.SavingVs50Pct, r.SavingVs5Pct)
}
