package eval

import (
	"fmt"
	"math/rand"
	"sort"

	"iupdater/internal/core"
	"iupdater/internal/testbed"
)

// ReferenceArm is one x-axis group of Figs 14 and 15.
type ReferenceArm struct {
	Name string
	// Refs returns the reference locations to use for a scenario; nil
	// means the pipeline's own MIC selection.
	Refs func(sc *Scenario, rng *rand.Rand) []int
}

// StandardReferenceArms returns the paper's four arms: the 8 MIC
// locations (iUpdater), 7 of them, 8 plus one random extra, and 11 random
// locations.
func StandardReferenceArms() []ReferenceArm {
	return []ReferenceArm{
		{Name: "8 reference (iUpdater)", Refs: func(sc *Scenario, _ *rand.Rand) []int {
			return sc.Updater.ReferenceLocations()
		}},
		{Name: "7 reference", Refs: func(sc *Scenario, _ *rand.Rand) []int {
			refs := sc.Updater.ReferenceLocations()
			return refs[:len(refs)-1]
		}},
		{Name: "8 reference + 1 random", Refs: func(sc *Scenario, rng *rand.Rand) []int {
			refs := sc.Updater.ReferenceLocations()
			n := sc.Env.NumCells()
			in := make(map[int]bool, len(refs))
			for _, r := range refs {
				in[r] = true
			}
			for {
				extra := rng.Intn(n)
				if !in[extra] {
					out := append(append([]int{}, refs...), extra)
					sort.Ints(out)
					return out
				}
			}
		}},
		{Name: "11 random", Refs: func(sc *Scenario, rng *rand.Rand) []int {
			n := sc.Env.NumCells()
			perm := rng.Perm(n)[:11]
			sort.Ints(perm)
			return perm
		}},
	}
}

// Fig14Result holds the reconstruction-error CDFs per reference arm at 45
// days (Fig 14).
type Fig14Result struct {
	CDFs []CDF
}

// Fig14ReferenceCount runs the four reference arms at 45 days.
func Fig14ReferenceCount(env testbed.Environment, seeds []uint64) (Fig14Result, error) {
	const tU = 45 * testbed.Day
	arms := StandardReferenceArms()
	errsByArm := make([][]float64, len(arms))
	for _, seed := range seeds {
		sc, err := NewScenario(env, seed)
		if err != nil {
			return Fig14Result{}, err
		}
		rng := rand.New(rand.NewSource(int64(seed)))
		for a, arm := range arms {
			refs := arm.Refs(sc, rng)
			recon, err := sc.UpdateWithRefs(tU, refs)
			if err != nil {
				return Fig14Result{}, fmt.Errorf("eval: arm %q: %w", arm.Name, err)
			}
			errsByArm[a] = append(errsByArm[a], sc.ReconErrors(recon, tU)...)
		}
	}
	var res Fig14Result
	for a, arm := range arms {
		res.CDFs = append(res.CDFs, NewCDF(arm.Name, errsByArm[a]))
	}
	return res, nil
}

// Fig15Result holds mean reconstruction errors per arm per timestamp
// (Fig 15).
type Fig15Result struct {
	Timestamps []string
	Arms       []string
	// MeanDB[a][t] is the mean error of arm a at update time t.
	MeanDB [][]float64
}

// Fig15ReferenceCountOverTime sweeps the arms over the five update times.
func Fig15ReferenceCountOverTime(env testbed.Environment, seeds []uint64) (Fig15Result, error) {
	arms := StandardReferenceArms()
	times := testbed.UpdateTimestamps()
	res := Fig15Result{Timestamps: testbed.UpdateTimestampLabels()}
	for _, arm := range arms {
		res.Arms = append(res.Arms, arm.Name)
	}
	res.MeanDB = make([][]float64, len(arms))
	for a := range res.MeanDB {
		res.MeanDB[a] = make([]float64, len(times))
	}
	for ti, tU := range times {
		errsByArm := make([][]float64, len(arms))
		for _, seed := range seeds {
			sc, err := NewScenario(env, seed)
			if err != nil {
				return Fig15Result{}, err
			}
			rng := rand.New(rand.NewSource(int64(seed)))
			for a, arm := range arms {
				recon, err := sc.UpdateWithRefs(tU, arm.Refs(sc, rng))
				if err != nil {
					return Fig15Result{}, err
				}
				errsByArm[a] = append(errsByArm[a], sc.ReconErrors(recon, tU)...)
			}
		}
		for a := range arms {
			res.MeanDB[a][ti] = Mean(errsByArm[a])
		}
	}
	return res, nil
}

// Fig16Result holds the constraint-ablation errors of Fig 16.
type Fig16Result struct {
	Timestamps []string
	// RSVD, C1, C1C2 are mean errors per timestamp for the three arms.
	RSVD, C1, C1C2 []float64
}

// Fig16ConstraintAblation evaluates the three solver arms across the five
// update times. Per Algorithm 1, the solver starts from a random L0
// (cold start), which is where the constraints' contributions are
// visible; the production warm start is ablated separately.
func Fig16ConstraintAblation(env testbed.Environment, seeds []uint64) (Fig16Result, error) {
	times := testbed.UpdateTimestamps()
	res := Fig16Result{
		Timestamps: testbed.UpdateTimestampLabels(),
		RSVD:       make([]float64, len(times)),
		C1:         make([]float64, len(times)),
		C1C2:       make([]float64, len(times)),
	}
	arms := []struct {
		dst  []float64
		opts []core.Option
	}{
		{res.RSVD, []core.Option{core.WithWarmStart(false), core.WithConstraint1(false), core.WithConstraint2(false)}},
		{res.C1, []core.Option{core.WithWarmStart(false), core.WithConstraint2(false)}},
		{res.C1C2, []core.Option{core.WithWarmStart(false)}},
	}
	for ti, tU := range times {
		for _, arm := range arms {
			var errs []float64
			for _, seed := range seeds {
				sc, err := NewScenario(env, seed, arm.opts...)
				if err != nil {
					return Fig16Result{}, err
				}
				_, r, err := sc.Update(tU)
				if err != nil {
					return Fig16Result{}, err
				}
				errs = append(errs, sc.ReconErrors(r.X, tU)...)
			}
			arm.dst[ti] = Mean(errs)
		}
	}
	return res, nil
}

// Fig18Result holds the reconstruction-error CDFs at the five update
// times (Fig 18).
type Fig18Result struct {
	Labels []string
	CDFs   []CDF
}

// Fig18ReconstructionCDF runs the default pipeline at each update time.
func Fig18ReconstructionCDF(env testbed.Environment, seeds []uint64) (Fig18Result, error) {
	res := Fig18Result{Labels: testbed.UpdateTimestampLabels()}
	for _, tU := range testbed.UpdateTimestamps() {
		var errs []float64
		for _, seed := range seeds {
			sc, err := NewScenario(env, seed)
			if err != nil {
				return Fig18Result{}, err
			}
			_, r, err := sc.Update(tU)
			if err != nil {
				return Fig18Result{}, err
			}
			errs = append(errs, sc.ReconErrors(r.X, tU)...)
		}
		res.CDFs = append(res.CDFs, NewCDF("recon", errs))
	}
	return res, nil
}

// Fig19Result holds mean reconstruction errors per environment per update
// time (Fig 19).
type Fig19Result struct {
	Timestamps   []string
	Environments []string
	// MeanDB[e][t] is the mean error of environment e at time t.
	MeanDB [][]float64
}

// Fig19ReconstructionEnvironments sweeps the three environments.
func Fig19ReconstructionEnvironments(seeds []uint64) (Fig19Result, error) {
	envs := testbed.Environments()
	times := testbed.UpdateTimestamps()
	res := Fig19Result{Timestamps: testbed.UpdateTimestampLabels()}
	res.MeanDB = make([][]float64, len(envs))
	for e, env := range envs {
		res.Environments = append(res.Environments, env.Name)
		res.MeanDB[e] = make([]float64, len(times))
		for ti, tU := range times {
			var errs []float64
			for _, seed := range seeds {
				sc, err := NewScenario(env, seed)
				if err != nil {
					return Fig19Result{}, err
				}
				_, r, err := sc.Update(tU)
				if err != nil {
					return Fig19Result{}, err
				}
				errs = append(errs, sc.ReconErrors(r.X, tU)...)
			}
			res.MeanDB[e][ti] = Mean(errs)
		}
	}
	return res, nil
}
