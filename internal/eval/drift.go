package eval

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"iupdater"
)

// DriftRunConfig describes one closed-loop drift-monitor run: a
// Deployment with a Monitor attached serves a stream of online
// localization queries, and at a chosen query index the environment
// "flips" — the deployment's age jumps from PreAge to PostAge, the
// simulated equivalent of furniture being rearranged or seasons turning
// while the database stays frozen. The scenario scores how fast the
// monitor notices and how well its automatic update repairs accuracy
// compared with an operator who triggers the same update by hand.
type DriftRunConfig struct {
	// Env is the simulated environment (default office).
	Env iupdater.Environment
	// Seed fixes the testbed and query stream (deterministic runs).
	Seed uint64
	// Queries is the total number of online queries streamed.
	Queries int
	// FlipAt is the query index at which the environment changes; <= 0
	// runs the stationary control (no change ever).
	FlipAt int
	// SecondFlipAt is an optional second environment change (a query
	// index after FlipAt) at which the age jumps again, to SecondAge —
	// the scenario that scores how fast the monitor reacts to drift
	// landing inside the post-update cooldown window.
	SecondFlipAt int
	// PreAge and PostAge are the deployment ages before and after the
	// flip (defaults 1 h and 45 days); SecondAge is the age after the
	// second flip (default 90 days).
	PreAge, PostAge, SecondAge time.Duration
	// QuerySpacing is the simulated time between queries (default
	// 500 ms, the RSS beacon interval).
	QuerySpacing time.Duration
	// Monitor options; zero values select the Monitor defaults.
	// Cooldown > 0 selects the fixed-width cooldown; otherwise the
	// Monitor's residual-driven adaptive policy runs, tuned by the
	// Adaptive knobs when set.
	Detector             iupdater.DriftDetector
	Hysteresis, Cooldown int
	// AdaptiveFloor, AdaptiveCeiling and AdaptiveSensitivity tune the
	// adaptive cooldown (zero values keep the Monitor defaults);
	// ignored when Cooldown > 0.
	AdaptiveFloor, AdaptiveCeiling int
	AdaptiveSensitivity            float64
}

func (c DriftRunConfig) withDefaults() DriftRunConfig {
	if c.Env == (iupdater.Environment{}) {
		c.Env = iupdater.Office()
	}
	if c.Queries <= 0 {
		c.Queries = 2000
	}
	if c.PreAge <= 0 {
		c.PreAge = time.Hour
	}
	if c.PostAge <= 0 {
		c.PostAge = 45 * 24 * time.Hour
	}
	if c.SecondFlipAt > 0 && c.SecondAge <= 0 {
		c.SecondAge = 90 * 24 * time.Hour
	}
	if c.QuerySpacing <= 0 {
		c.QuerySpacing = 500 * time.Millisecond
	}
	return c
}

// DriftRunResult scores one monitored run.
type DriftRunResult struct {
	// Stats is the monitor's final counter snapshot.
	Stats iupdater.MonitorStats
	// DetectionDelay is the number of queries between the flip and the
	// first detection (-1 if never detected, 0 on the flip query).
	DetectionDelay int
	// SecondUpdateDelay is the number of queries between the second
	// flip and the monitor's second triggered update (-1 when no second
	// flip was configured or it never fired) — the cooldown policy's
	// reaction time to repeat drift.
	SecondUpdateDelay int
	// AutoErrDB, ManualErrDB and StaleErrDB are the mean |database -
	// truth| in dB over the labor-cost entries at the end of the run,
	// for the auto-updated database, a manually updated one (operator
	// triggers Update at the flip instant, same testbed data) and the
	// stale original. NaN for arms that do not apply (e.g. AutoErrDB
	// when nothing was detected).
	AutoErrDB, ManualErrDB, StaleErrDB float64
}

// DriftMonitorRun executes the closed-loop scenario. Everything is
// deterministic for a fixed config: the testbed is hash-seeded, the
// query stream is seeded by cfg.Seed, and the monitor runs with
// synchronous updates so the detection query, the update time and the
// published version sequence are all reproducible.
func DriftMonitorRun(cfg DriftRunConfig) (DriftRunResult, error) {
	cfg = cfg.withDefaults()
	tb := iupdater.NewTestbed(cfg.Env, cfg.Seed)
	d, _, err := tb.Deploy(0, 50)
	if err != nil {
		return DriftRunResult{}, err
	}
	original := d.Snapshot().Fingerprints()

	// The sampler measures at the stream's current simulated time: when
	// the monitor fires mid-stream, the reference survey happens right
	// then, exactly as a dispatched surveyor would.
	var clock time.Duration
	opts := []iupdater.MonitorOption{iupdater.WithSynchronousUpdates()}
	if cfg.Detector != nil {
		opts = append(opts, iupdater.WithDriftDetector(cfg.Detector))
	}
	if cfg.Hysteresis > 0 {
		opts = append(opts, iupdater.WithDriftHysteresis(cfg.Hysteresis))
	}
	if cfg.Cooldown > 0 {
		opts = append(opts, iupdater.WithUpdateCooldown(cfg.Cooldown))
	} else if cfg.AdaptiveFloor > 0 || cfg.AdaptiveCeiling > 0 || cfg.AdaptiveSensitivity > 0 {
		opts = append(opts, iupdater.WithAdaptiveCooldown(cfg.AdaptiveFloor, cfg.AdaptiveCeiling, cfg.AdaptiveSensitivity))
	}
	mon, err := iupdater.NewMonitor(d, tb.Sampler(func() time.Duration { return clock }), opts...)
	if err != nil {
		return DriftRunResult{}, err
	}
	defer mon.Close()

	rng := rand.New(rand.NewSource(int64(cfg.Seed)*7919 + 17))
	res := DriftRunResult{DetectionDelay: -1, SecondUpdateDelay: -1}
	for q := 0; q < cfg.Queries; q++ {
		age := cfg.PreAge
		if cfg.FlipAt > 0 && q >= cfg.FlipAt {
			age = cfg.PostAge
		}
		if cfg.SecondFlipAt > 0 && q >= cfg.SecondFlipAt {
			age = cfg.SecondAge
		}
		clock = age + time.Duration(q)*cfg.QuerySpacing
		cell := rng.Intn(tb.NumCells())
		x, y := tb.CellCenter(cell)
		x += (rng.Float64()*2 - 1) * StandingJitterM
		y += (rng.Float64()*2 - 1) * StandingJitterM
		if err := mon.Observe(tb.MeasureOnline(x, y, clock)); err != nil {
			return DriftRunResult{}, err
		}
		stats := mon.Stats()
		if res.DetectionDelay < 0 && stats.Detections > 0 {
			res.DetectionDelay = q - cfg.FlipAt
		}
		if cfg.SecondFlipAt > 0 && res.SecondUpdateDelay < 0 && q >= cfg.SecondFlipAt && stats.UpdatesTriggered >= 2 {
			res.SecondUpdateDelay = q - cfg.SecondFlipAt
		}
	}
	res.Stats = mon.Stats()

	// Score the end state on the labor-cost entries (the ones an update
	// has to predict) against the noise-free truth at the end of the run.
	res.AutoErrDB, res.ManualErrDB, res.StaleErrDB = math.NaN(), math.NaN(), math.NaN()
	truth := tb.TrueMatrix(clock)
	mask := tb.Mask()
	res.StaleErrDB = laborEntryErrDB(original, truth, mask)
	if res.Stats.UpdatesCompleted > 0 {
		res.AutoErrDB = laborEntryErrDB(d.Snapshot().Fingerprints(), truth, mask)
	}
	if cfg.FlipAt > 0 {
		// Manual arm: a fresh deployment from the identical t=0 survey
		// (the testbed is deterministic), updated by hand the moment the
		// environment changed — the best a diligent operator could do.
		manual, err := manualUpdateErrDB(cfg, tb, truth, mask)
		if err != nil {
			return DriftRunResult{}, fmt.Errorf("eval: manual arm: %w", err)
		}
		res.ManualErrDB = manual
	}
	return res, nil
}

// manualUpdateErrDB runs the manually triggered update arm at the flip
// instant and scores it against the same truth.
func manualUpdateErrDB(cfg DriftRunConfig, tb *iupdater.Testbed, truth iupdater.Matrix, mask iupdater.Mask) (float64, error) {
	d, _, err := tb.Deploy(0, 50)
	if err != nil {
		return 0, err
	}
	refs, err := d.ReferenceLocations()
	if err != nil {
		return 0, err
	}
	at := cfg.PostAge + time.Duration(cfg.FlipAt)*cfg.QuerySpacing
	xr, _ := tb.ReferenceMatrix(at, refs)
	snap, err := d.Update(tb.NoDecreaseMatrix(at), tb.Mask(), xr)
	if err != nil {
		return 0, err
	}
	return laborEntryErrDB(snap.Fingerprints(), truth, mask), nil
}

// laborEntryErrDB returns the mean |fp - truth| in dB over the entries
// that require the target present to measure — the paper's database
// accuracy metric (§VI-A).
func laborEntryErrDB(fp, truth iupdater.Matrix, mask iupdater.Mask) float64 {
	var sum float64
	var cnt int
	rows, cols := truth.Dims()
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if mask.Known(i, j) {
				continue
			}
			sum += math.Abs(fp.At(i, j) - truth.At(i, j))
			cnt++
		}
	}
	return sum / float64(cnt)
}
