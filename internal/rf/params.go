// Package rf models the radio layer of the testbed: log-distance path
// loss, static per-link multipath, the knife-edge diffraction effect of a
// device-free human target, short-term RSS variation (Fig 1 of the paper)
// and long-term drift (Fig 2). All quantities are in dB/dBm and the model
// is fully deterministic given a seed, so every experiment is
// reproducible.
package rf

// Params configures the radio model. The zero value is not useful; start
// from DefaultParams and adjust.
type Params struct {
	// WavelengthM is the carrier wavelength in meters (2.4 GHz Wi-Fi by
	// default).
	WavelengthM float64
	// TXPowerDBm is the transmit power.
	TXPowerDBm float64
	// RefLossDB is the fixed system loss at the 1 m reference distance
	// (free-space reference loss plus antenna/cable losses).
	RefLossDB float64
	// PathLossExp is the log-distance path-loss exponent (≈2 free space,
	// higher indoors).
	PathLossExp float64

	// MultipathSigmaDB is the standard deviation of the static per-link
	// multipath fading offset. Rich-multipath environments are larger.
	MultipathSigmaDB float64
	// OddLinkOffsetDB is an extra RF-gain offset applied to one randomly
	// chosen link per deployment: COTS fleets are rarely homogeneous, and
	// one odd unit is what stretches the adjacent-link difference range
	// in the paper's Fig 9 (see also their footnote 3 on calibrating out
	// hardware differences).
	OddLinkOffsetDB float64

	// TargetRadiusM is the effective obstruction radius of the human
	// target (the paper's target is a 1.72 m person; at 1 m transceiver
	// height the torso cross-section dominates).
	TargetRadiusM float64
	// TargetAsymmetry tilts the target effect along the link: the loss is
	// scaled by (1 + a*(2t-1)) where t is the normalized TX->RX position.
	// Physical links are not symmetric (AP and client antenna patterns
	// differ), which is what makes the along-link position identifiable
	// from a single RSS column.
	TargetAsymmetry float64
	// ShadowWidthM is the Gaussian lateral width of the body-shadowing
	// main lobe (the Wilson-Patwari radio-tomography weighting): how fast
	// the on-line knife-edge depth decays as the target moves off the
	// direct path.
	ShadowWidthM float64
	// ScatterPeakDB is the peak extra attenuation from target-induced
	// scattering for a target standing adjacent to (but not inside) the
	// first Fresnel zone.
	ScatterPeakDB float64
	// ScatterSigmaM is the lateral decay scale of the scattering effect.
	ScatterSigmaM float64
	// TargetPerturbSigmaDB scales the static multipath-dependent
	// perturbation of the target effect (what makes two environments with
	// the same geometry fingerprint differently).
	TargetPerturbSigmaDB float64
	// PerturbCorrLenM is the spatial correlation length of the target
	// perturbation field along the link, in meters. Nearby positions have
	// similar multipath signatures (the physical basis of the paper's
	// Observation 2); positions a cell apart are mostly decorrelated,
	// which is what makes per-cell fingerprints discriminative.
	PerturbCorrLenM float64
	// EffectFloorDB is the magnitude below which a target effect is
	// treated as zero — the "no RSS decrease" class of Fig 4 that can be
	// measured without the target present.
	EffectFloorDB float64

	// NoiseCommonSigmaDB is the std of the common-mode short-term noise
	// shared by all links (interference, rotating fans, people far away).
	NoiseCommonSigmaDB float64
	// NoiseCommonScaleS is the correlation time of the common-mode noise
	// in seconds.
	NoiseCommonScaleS float64
	// NoiseIdioSigmaDB is the std of per-link white measurement noise.
	NoiseIdioSigmaDB float64
	// BurstProb is the probability that any given burst window contains an
	// interference burst.
	BurstProb float64
	// BurstWindowS is the burst window length in seconds.
	BurstWindowS float64
	// BurstDepthDB is the maximum extra attenuation during a burst.
	BurstDepthDB float64
	// AmbientProb is the probability that any given ambient window has an
	// unrelated person moving near one of the links (the paper's testbeds
	// are live environments). The perturbation hits a single random link,
	// which is what occasionally defeats even a fresh fingerprint match.
	AmbientProb float64
	// AmbientWindowS is the ambient event window length in seconds.
	AmbientWindowS float64
	// AmbientDepthDB is the maximum ambient perturbation depth.
	AmbientDepthDB float64

	// DriftSigmaInfDB is the stationary standard deviation of the
	// Ornstein-Uhlenbeck long-term drift per link.
	DriftSigmaInfDB float64
	// TargetDriftSigmaDB is the stationary std of the slow *spatial*
	// drift of the target effect along each link (temperature and
	// humidity reshape the multipath interaction, not just the link
	// gain). It varies smoothly along the strip, which is why RSS
	// *differences* between neighboring locations stay stable while the
	// fingerprints themselves go stale (Observations 2 and 3).
	TargetDriftSigmaDB float64
	// DriftTauHours is the OU relaxation time in hours.
	DriftTauHours float64
	// DriftCorr is the correlation between links' drift processes
	// (temperature and humidity move all links together).
	DriftCorr float64

	// QuantStepDB is the RSS reporting granularity; 0 disables
	// quantization.
	QuantStepDB float64
}

// DefaultParams returns the office-like calibration used throughout the
// paper reproduction. The drift constants are calibrated so that the mean
// absolute RSS shift is ≈2.5 dB after 5 days and ≈6 dB after 45 days
// (Fig 2), and the short-term model produces ≈5 dB peak-to-peak excursions
// over 100 s (Fig 1).
func DefaultParams() Params {
	return Params{
		WavelengthM: 0.125, // 2.4 GHz
		TXPowerDBm:  15,
		RefLossDB:   50,
		PathLossExp: 2.8,

		MultipathSigmaDB: 0.8,
		OddLinkOffsetDB:  7,

		TargetRadiusM:        0.45,
		TargetAsymmetry:      0.25,
		ShadowWidthM:         0.7,
		ScatterPeakDB:        3.0,
		ScatterSigmaM:        1.3,
		TargetPerturbSigmaDB: 1.5,
		PerturbCorrLenM:      1.0,
		EffectFloorDB:        0.5,

		NoiseCommonSigmaDB: 0.85,
		NoiseCommonScaleS:  1.2,
		NoiseIdioSigmaDB:   0.45,
		BurstProb:          0.18,
		BurstWindowS:       10,
		BurstDepthDB:       2.8,
		AmbientProb:        0.2,
		AmbientWindowS:     30,
		AmbientDepthDB:     3,

		// Zero-start OU with tau = 75 days and sigma_inf = 9 gives
		// E|shift| = sqrt(2/pi)*sigma*sqrt(1-exp(-2t/tau)):
		// ≈2.4 dB at 5 days and ≈6.0 dB at 45 days (Fig 2).
		DriftSigmaInfDB:    9.0,
		TargetDriftSigmaDB: 1.0,
		DriftTauHours:      75 * 24,
		DriftCorr:          0.88,

		QuantStepDB: 0.5,
	}
}
