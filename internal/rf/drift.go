package rf

import "math"

// driftChain is a lazily extended Ornstein-Uhlenbeck sample path on an
// hourly lattice. The exact OU transition is used between lattice points,
// so the marginal statistics are exact at hour resolution:
//
//	x[k+1] = x[k]·exp(-dt/tau) + N(0, sigma²·(1-exp(-2dt/tau)))
//
// with x[0] = 0: the original survey is the calibration reference, so
// drift accumulates from it, E[(x_t-x_0)²] = sigma²·(1-exp(-2t/tau)).
// Values between lattice points are linearly interpolated; drift moves on
// the scale of hours and days, so sub-hour interpolation error is
// negligible.
type driftChain struct {
	seed   uint64
	stream uint64
	sigma  float64
	tau    float64 // hours
	values []float64
}

func newDriftChain(seed, stream uint64, sigma, tauHours float64) *driftChain {
	c := &driftChain{seed: seed, stream: stream, sigma: sigma, tau: tauHours}
	c.values = append(c.values, 0)
	return c
}

// at returns the drift value at time t (hours).
func (c *driftChain) at(tHours float64) float64 {
	if tHours < 0 {
		tHours = 0
	}
	k := int(tHours)
	c.extend(k + 1)
	u := tHours - float64(k)
	return c.values[k]*(1-u) + c.values[k+1]*u
}

func (c *driftChain) extend(upto int) {
	decay := math.Exp(-1 / c.tau)
	innov := c.sigma * math.Sqrt(1-decay*decay)
	for k := len(c.values); k <= upto; k++ {
		prev := c.values[k-1]
		c.values = append(c.values, prev*decay+innov*hashNormal(c.seed, c.stream, int64(k)))
	}
}

// driftModel combines one global OU chain shared by all links with one
// idiosyncratic chain per link:
//
//	drift_i(t) = corr·g(t) + sqrt(1-corr²)·l_i(t)
//
// so each link's drift is marginally OU(sigma, tau) while adjacent links
// stay correlated — the physical reason the paper's adjacent-link RSS
// differences are stable over months (Fig 6, Observation 3).
type driftModel struct {
	global *driftChain
	links  []*driftChain
	// bump and bump2 are per-link spatial drift coefficients: the target
	// effect at normalized along-link position x drifts by
	// bump(t)*sin(pi*x) + 0.5*bump2(t)*sin(2*pi*x). Both harmonics vanish
	// at the link ends: the Fresnel zone is widest mid-link, so that is
	// where the environment couples into (and slowly reshapes) the target
	// effect; near the transceivers the effect is dominated by stable
	// direct blockage.
	bump  []*driftChain
	bump2 []*driftChain
	corr  float64
}

func newDriftModel(seed uint64, numLinks int, p Params) *driftModel {
	m := &driftModel{
		global: newDriftChain(seed, 0xd71f7, p.DriftSigmaInfDB, p.DriftTauHours),
		links:  make([]*driftChain, numLinks),
		bump:   make([]*driftChain, numLinks),
		bump2:  make([]*driftChain, numLinks),
		corr:   p.DriftCorr,
	}
	for i := range m.links {
		// The idiosyncratic drift magnitude is heavy-tailed across links:
		// most units age slowly, the odd one drifts hard. This matches
		// measured COTS behavior and is why a stale database's per-link
		// shape goes wrong even when the average drift is modest.
		u := hashUniform(seed, 0x1d105ca1e, int64(i))
		scale := 0.3 + 2.4*u*u*u
		m.links[i] = newDriftChain(seed, 0x11d0+uint64(i)<<8+0x5eed, scale*p.DriftSigmaInfDB, p.DriftTauHours)
		m.bump[i] = newDriftChain(seed, 0xb009+uint64(i)<<8, p.TargetDriftSigmaDB, p.DriftTauHours)
		m.bump2[i] = newDriftChain(seed, 0x7117+uint64(i)<<8, p.TargetDriftSigmaDB, p.DriftTauHours)
	}
	return m
}

// at returns the drift of link i at time t in seconds.
func (m *driftModel) at(link int, tSeconds float64) float64 {
	th := tSeconds / 3600
	g := m.global.at(th)
	l := m.links[link].at(th)
	return m.corr*g + math.Sqrt(1-m.corr*m.corr)*l
}

// spatialAt returns the target-effect drift of link `link` for a target
// at normalized along-link position x in [0, 1] at time t (seconds).
func (m *driftModel) spatialAt(link int, x, tSeconds float64) float64 {
	th := tSeconds / 3600
	return m.bump[link].at(th)*math.Sin(math.Pi*x) +
		0.5*m.bump2[link].at(th)*math.Sin(2*math.Pi*x)
}
