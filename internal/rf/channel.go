package rf

import (
	"math"

	"iupdater/internal/geom"
)

// NoTarget is the location index passed to Sample when no target is
// present in the monitoring area.
const NoTarget = -1

// Channel is the deterministic radio model for one deployment: M parallel
// links over a strip-major grid. It precomputes the static quantities
// (per-link multipath, per-cell target effects) and exposes sampling of
// RSS readings at arbitrary times.
//
// A Channel is deterministic given (grid, params, seed): two channels
// built with the same inputs produce identical samples. It is not safe
// for concurrent use because the drift chains extend lazily.
type Channel struct {
	grid   geom.Grid
	params Params
	seed   uint64

	links     []geom.Link
	baseline  []float64   // per-link no-target RSS at drift=0, noise=0
	effects   [][]float64 // [link][cell] deterministic+static target loss (dB, positive)
	affected  [][]bool    // [link][cell] whether entry needs the target present
	driftProc *driftModel
}

// NewChannel builds the radio model for the given grid.
func NewChannel(grid geom.Grid, params Params, seed uint64) *Channel {
	m := grid.Links
	n := grid.NumCells()
	c := &Channel{
		grid:      grid,
		params:    params,
		seed:      seed,
		links:     make([]geom.Link, m),
		baseline:  make([]float64, m),
		effects:   make([][]float64, m),
		affected:  make([][]bool, m),
		driftProc: newDriftModel(seed, m, params),
	}
	// The odd unit sits at an array edge so it degrades one link pair,
	// matching the single heavy tail of the paper's Fig 9.
	oddLink := 0
	if hashUniform(seed, 0x0dd, 0) < 0.5 {
		oddLink = m - 1
	}
	oddSign := 1.0
	if hashUniform(seed, 0x0dd, 1) < 0.5 {
		oddSign = -1
	}
	for i := 0; i < m; i++ {
		c.links[i] = grid.LinkLine(i)
		d := c.links[i].Length()
		pl := params.RefLossDB + 10*params.PathLossExp*math.Log10(math.Max(d, 1))
		mp := params.MultipathSigmaDB * hashNormal(seed, 0xba5e+uint64(i), 0)
		if i == oddLink {
			mp += oddSign * params.OddLinkOffsetDB
		}
		c.baseline[i] = params.TXPowerDBm - pl + mp

		c.effects[i] = make([]float64, n)
		c.affected[i] = make([]bool, n)
		for j := 0; j < n; j++ {
			loss, affected := c.effectAt(i, grid.Center(j))
			c.effects[i][j] = loss
			c.affected[i][j] = affected
		}
	}
	return c
}

// Grid returns the deployment grid.
func (c *Channel) Grid() geom.Grid { return c.grid }

// Params returns the radio parameters.
func (c *Channel) Params() Params { return c.params }

// NumLinks returns M.
func (c *Channel) NumLinks() int { return len(c.links) }

// NumCells returns N.
func (c *Channel) NumCells() int { return c.grid.NumCells() }

// Affected reports whether link i requires the target to be present to
// measure the fingerprint entry for cell j — i.e. whether the entry is
// outside the "no RSS decrease" class of Fig 4.
func (c *Channel) Affected(i, j int) bool { return c.affected[i][j] }

// TargetEffect returns the deterministic RSS decrease (dB, >= 0) on link i
// from a target at cell j.
func (c *Channel) TargetEffect(i, j int) float64 { return c.effects[i][j] }

// CleanRSS returns the drift-free, noise-free RSS of link i with a target
// at cell j (or NoTarget).
func (c *Channel) CleanRSS(i, j int) float64 {
	rss := c.baseline[i]
	if j != NoTarget {
		rss -= c.effects[i][j]
	}
	return rss
}

// Drift returns the long-term per-link drift of link i at time t
// (seconds).
func (c *Channel) Drift(i int, t float64) float64 {
	return c.driftProc.at(i, t)
}

// TargetDrift returns the slow spatial drift of link i's target effect
// for a target at cell j at time t. It is zero for unaffected entries, so
// the no-decrease mask stays valid over time.
func (c *Channel) TargetDrift(i, j int, t float64) float64 {
	if j == NoTarget || !c.affected[i][j] {
		return 0
	}
	x := (float64(c.grid.PosInStrip(j)) + 0.5) / float64(c.grid.PerStrip)
	coupling := math.Min(1, c.effects[i][j]/3)
	return coupling * c.driftProc.spatialAt(i, x, t)
}

// TrueRSS returns the noise-free RSS of link i at time t with a target at
// cell j (or NoTarget): baseline, per-link drift, target effect and
// target-effect drift — everything except short-term noise and
// quantization. This is the quantity a perfect survey would record.
func (c *Channel) TrueRSS(i, j int, t float64) float64 {
	return c.CleanRSS(i, j) + c.driftProc.at(i, t) - c.TargetDrift(i, j, t)
}

// Sample returns one RSS reading of link i at time t (seconds since the
// original survey) with a target at cell j, or NoTarget for none. The
// reading includes drift, correlated common-mode noise, interference
// bursts, per-link white noise and quantization. Surveys are conducted in
// deliberately quiet conditions, so the ambient-crowd process only
// affects the online path (SampleAt).
func (c *Channel) Sample(i, j int, t float64) float64 {
	rss := c.TrueRSS(i, j, t)
	rss += c.commonNoise(t)
	rss += c.params.NoiseIdioSigmaDB * hashNormal(c.seed, 0x1d10+uint64(i), int64(t/0.5))
	return c.quantize(rss)
}

// effectAt evaluates the full static target effect of a target at point
// p on link i: the deterministic geometry plus the spatially-correlated
// multipath perturbation field. The field varies continuously with p
// (correlation length Params.PerturbCorrLenM), so a person standing a
// step away from a surveyed location produces a nearby signature — the
// physical basis of the paper's Observation 2.
func (c *Channel) effectAt(i int, p geom.Point) (loss float64, affected bool) {
	tg := computeTargetGeometry(c.links[i], p, c.params)
	if !tg.affected {
		return 0, false
	}
	loss = tg.lossDB
	scale := math.Min(1, loss/3)
	corr := c.params.PerturbCorrLenM
	if corr <= 0 {
		corr = 1
	}
	loss += c.params.TargetPerturbSigmaDB * scale *
		valueNoise(c.seed, 0x7a96e7+uint64(i)*0x9e37, p.X/corr)
	if loss < 0 {
		loss = 0
	}
	return loss, true
}

// TargetEffectAt returns the static RSS decrease (dB, >= 0) on link i
// from a target at an arbitrary point p, not necessarily a cell center.
func (c *Channel) TargetEffectAt(i int, p geom.Point) float64 {
	loss, _ := c.effectAt(i, p)
	return loss
}

// SampleAt returns one RSS reading of link i at time t with a target at
// the arbitrary point p (the online measurement of Eqn 25).
func (c *Channel) SampleAt(i int, p geom.Point, t float64) float64 {
	eff := c.TargetEffectAt(i, p)
	rss := c.baseline[i] - eff
	rss += c.driftProc.at(i, t)
	if eff > 0 {
		x := p.X / c.grid.Width
		if x < 0 {
			x = 0
		} else if x > 1 {
			x = 1
		}
		rss -= math.Min(1, eff/3) * c.driftProc.spatialAt(i, x, t)
	}
	rss += c.commonNoise(t)
	rss += c.ambientNoise(i, t)
	rss += c.params.NoiseIdioSigmaDB * hashNormal(c.seed, 0x1d10+uint64(i), int64(t/0.5))
	return c.quantize(rss)
}

// SampleAtMulti returns one RSS reading of link i with several targets
// present simultaneously. Each target's attenuation superposes in dB —
// the standard independent-obstruction approximation for links whose
// dominant path is blocked at distinct points.
func (c *Channel) SampleAtMulti(i int, pts []geom.Point, t float64) float64 {
	rss := c.baseline[i]
	rss += c.driftProc.at(i, t)
	for _, p := range pts {
		eff := c.TargetEffectAt(i, p)
		if eff <= 0 {
			continue
		}
		rss -= eff
		x := p.X / c.grid.Width
		if x < 0 {
			x = 0
		} else if x > 1 {
			x = 1
		}
		rss -= math.Min(1, eff/3) * c.driftProc.spatialAt(i, x, t)
	}
	rss += c.commonNoise(t)
	rss += c.ambientNoise(i, t)
	rss += c.params.NoiseIdioSigmaDB * hashNormal(c.seed, 0x1d10+uint64(i), int64(t/0.5))
	return c.quantize(rss)
}

// SampleMean returns the average of n consecutive readings spaced 0.5 s
// apart starting at time t — the paper's multi-sample averaging used
// during fingerprint collection (50 samples traditional, 5 for iUpdater).
func (c *Channel) SampleMean(i, j int, t float64, n int) float64 {
	if n <= 0 {
		n = 1
	}
	var s float64
	for k := 0; k < n; k++ {
		s += c.Sample(i, j, t+0.5*float64(k))
	}
	return s / float64(n)
}

// ambientNoise models unrelated people moving through the live testbed:
// in some time windows one random link takes a transient hit.
func (c *Channel) ambientNoise(i int, t float64) float64 {
	if c.params.AmbientProb <= 0 {
		return 0
	}
	w := int64(math.Floor(t / c.params.AmbientWindowS))
	if hashUniform(c.seed, 0xa3b1e27, w) >= c.params.AmbientProb {
		return 0
	}
	hit := int(hashUniform(c.seed, 0x11221, w) * float64(len(c.links)))
	if hit != i {
		return 0
	}
	depth := c.params.AmbientDepthDB * hashUniform(c.seed, 0xdee9, w)
	u := t/c.params.AmbientWindowS - float64(w)
	return -depth * math.Sin(math.Pi*u) * math.Sin(math.Pi*u)
}

// commonNoise is the common-mode short-term variation shared by all
// links: smooth correlated wander plus occasional interference bursts.
func (c *Channel) commonNoise(t float64) float64 {
	v := c.params.NoiseCommonSigmaDB * valueNoise(c.seed, 0xc0113c7, t/c.params.NoiseCommonScaleS)

	// Interference bursts: some burst windows carry extra attenuation.
	w := int64(math.Floor(t / c.params.BurstWindowS))
	if hashUniform(c.seed, 0xb13575, w) < c.params.BurstProb {
		depth := c.params.BurstDepthDB * hashUniform(c.seed, 0xd3b7, w)
		// Smooth on/off envelope inside the window.
		u := t/c.params.BurstWindowS - float64(w)
		v -= depth * math.Sin(math.Pi*u) * math.Sin(math.Pi*u)
	}
	return v
}

func (c *Channel) quantize(v float64) float64 {
	if c.params.QuantStepDB <= 0 {
		return v
	}
	return math.Round(v/c.params.QuantStepDB) * c.params.QuantStepDB
}
