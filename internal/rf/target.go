package rf

import (
	"math"

	"iupdater/internal/geom"
)

// KnifeEdgeLossDB returns the knife-edge diffraction loss J(v) in dB for
// Fresnel-Kirchhoff parameter v, using the ITU-R P.526 approximation:
//
//	J(v) = 6.9 + 20·log10(sqrt((v-0.1)² + 1) + v - 0.1)   for v > -0.78
//	J(v) = 0                                              otherwise
//
// J(0) ≈ 6 dB (grazing incidence), growing for deeper obstruction and
// decaying to zero as the obstacle clears the first Fresnel zone. This is
// the physical mechanism behind the paper's three RSS regimes (Fig 4):
// large decrease when the target blocks the link, small decrease inside
// the FFZ, none outside.
func KnifeEdgeLossDB(v float64) float64 {
	if v <= -0.78 {
		return 0
	}
	return 6.9 + 20*math.Log10(math.Sqrt((v-0.1)*(v-0.1)+1)+v-0.1)
}

// targetGeometry captures the deterministic part of the target's effect on
// one link at one cell.
type targetGeometry struct {
	// lossDB is the deterministic attenuation (positive = RSS decrease).
	lossDB float64
	// affected is true when the effect exceeds the measurement floor and
	// the entry therefore requires the target to be present ("labor-cost"
	// measurement per the paper's terminology).
	affected bool
}

// computeTargetGeometry evaluates the deterministic target effect of a
// target at point p on link l.
//
// The on-line depth comes from knife-edge diffraction: a target standing
// on the direct path at normalized position t attenuates by J(v_on),
// where v_on grows near the transceivers (the V-shape behind the paper's
// G-matrix midpoint re-definition). The lateral profile is a Gaussian of
// the body shadowing width, following the radio-tomography shadowing
// models of Wilson-Patwari (the paper's ref [14]) — a human is a
// volumetric scatterer, not a knife edge, so the attenuation decays
// smoothly rather than collapsing at the first Fresnel zone boundary. A
// wider, weaker scattering skirt yields the paper's "small decrease"
// class on adjacent links.
func computeTargetGeometry(l geom.Link, p geom.Point, par Params) targetGeometry {
	t, perp := l.Project(p)
	d := l.Length()
	d1 := math.Max(t*d, 1e-9)
	d2 := math.Max((1-t)*d, 1e-9)
	vOn := par.TargetRadiusM * math.Sqrt(2*(d1+d2)/(par.WavelengthM*d1*d2))
	peak := KnifeEdgeLossDB(vOn)

	w := par.ShadowWidthM
	main := peak * math.Exp(-perp*perp/(2*w*w))
	skirt := par.ScatterPeakDB * math.Exp(-(perp*perp)/(par.ScatterSigmaM*par.ScatterSigmaM))

	// Antenna-pattern asymmetry along the link.
	loss := (main + skirt) * (1 + par.TargetAsymmetry*(2*t-1))
	if loss < 0 {
		loss = 0
	}

	return targetGeometry{
		lossDB:   loss,
		affected: loss > par.EffectFloorDB,
	}
}
