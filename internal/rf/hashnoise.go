package rf

import "math"

// Deterministic hash-based noise primitives. They give O(1) random access
// to reproducible noise values at arbitrary time indices, which keeps the
// channel model stateless for short-term noise (no per-sample caches) and
// bit-identical across runs for a given seed.

// splitmix64 is the SplitMix64 finalizer: a high-quality 64-bit mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashUniform maps (seed, stream, index) to a uniform value in (0, 1).
func hashUniform(seed, stream uint64, index int64) float64 {
	h := splitmix64(seed ^ splitmix64(stream^splitmix64(uint64(index))))
	// Use the top 53 bits for a uniform double, avoiding exact 0.
	return (float64(h>>11) + 0.5) / (1 << 53)
}

// hashNormal maps (seed, stream, index) to a standard normal value using
// the Box-Muller transform on two decorrelated uniforms.
func hashNormal(seed, stream uint64, index int64) float64 {
	u1 := hashUniform(seed, stream, index)
	u2 := hashUniform(seed, stream^0x6a09e667f3bcc909, index)
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// valueNoise returns a smooth stationary noise value at continuous
// position x, built by cubic-smoothstep interpolation between unit normal
// lattice values. Correlation decays over ~1 lattice unit. The marginal
// variance ripples between 0.5 and 1.0 across a cell; varNorm compensates
// on average.
func valueNoise(seed, stream uint64, x float64) float64 {
	k := int64(math.Floor(x))
	u := x - float64(k)
	a := hashNormal(seed, stream, k)
	b := hashNormal(seed, stream, k+1)
	w := u * u * (3 - 2*u) // smoothstep
	v := a*(1-w) + b*w
	return v * varNormValueNoise
}

// varNormValueNoise rescales value noise to unit average variance:
// the average over u of (1-w)² + w² with w = smoothstep(u) is 26/35.
var varNormValueNoise = 1 / math.Sqrt(26.0/35.0)
