package rf

import (
	"math"
	"testing"

	"iupdater/internal/geom"
)

func testGrid() geom.Grid {
	// Office-like: 12 m links, 8 strips across 9 m, 12 cells per strip.
	return geom.NewGrid(12, 9, 8, 12)
}

func testChannel(seed uint64) *Channel {
	return NewChannel(testGrid(), DefaultParams(), seed)
}

func TestKnifeEdgeLossRegimes(t *testing.T) {
	tests := []struct {
		name     string
		v        float64
		min, max float64
	}{
		{"cleared", -2, 0, 0},
		{"boundary", -0.78, 0, 0.3},
		{"grazing", 0, 5.5, 6.5},
		{"blocked v=1", 1, 12, 15},
		{"deep shadow v=2.4", 2.4, 19, 23},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := KnifeEdgeLossDB(tt.v)
			if got < tt.min || got > tt.max {
				t.Errorf("J(%v) = %v, want in [%v, %v]", tt.v, got, tt.min, tt.max)
			}
		})
	}
}

func TestKnifeEdgeLossMonotone(t *testing.T) {
	prev := -1.0
	for v := -0.7; v < 5; v += 0.1 {
		j := KnifeEdgeLossDB(v)
		if j < prev-1e-9 {
			t.Fatalf("J not monotone at v=%v: %v < %v", v, j, prev)
		}
		prev = j
	}
}

func TestChannelDeterministic(t *testing.T) {
	a := testChannel(42)
	b := testChannel(42)
	for i := 0; i < a.NumLinks(); i++ {
		for _, j := range []int{NoTarget, 0, 50, 95} {
			for _, ts := range []float64{0, 100, 86400} {
				if a.Sample(i, j, ts) != b.Sample(i, j, ts) {
					t.Fatalf("samples differ for link %d cell %d t %v", i, j, ts)
				}
			}
		}
	}
}

func TestChannelSeedsDiffer(t *testing.T) {
	a := testChannel(1)
	b := testChannel(2)
	same := 0
	for i := 0; i < a.NumLinks(); i++ {
		if a.CleanRSS(i, NoTarget) == b.CleanRSS(i, NoTarget) {
			same++
		}
	}
	if same == a.NumLinks() {
		t.Error("different seeds produced identical baselines")
	}
}

func TestTargetEffectRegimes(t *testing.T) {
	c := testChannel(7)
	g := c.Grid()
	// Target on link 3's own strip: large decrease.
	ownCell := g.CellIndex(3, 6)
	if eff := c.TargetEffect(3, ownCell); eff < 5 {
		t.Errorf("own-strip effect = %v dB, want >= 5", eff)
	}
	// Target on the adjacent strip: small but present decrease.
	adjCell := g.CellIndex(4, 6)
	adj := c.TargetEffect(3, adjCell)
	if adj <= 0 || adj > 5 {
		t.Errorf("adjacent-strip effect = %v dB, want in (0, 5]", adj)
	}
	// Far strip: no effect at all.
	farCell := g.CellIndex(7, 6)
	if eff := c.TargetEffect(3, farCell); eff != 0 {
		t.Errorf("far-strip effect = %v dB, want 0", eff)
	}
	// Ordering: own >> adjacent >> far.
	if !(c.TargetEffect(3, ownCell) > adj && adj > c.TargetEffect(3, farCell)) {
		t.Error("effect ordering violated")
	}
}

func TestAffectedMatchesEffect(t *testing.T) {
	c := testChannel(7)
	for i := 0; i < c.NumLinks(); i++ {
		for j := 0; j < c.NumCells(); j++ {
			if c.Affected(i, j) != (c.TargetEffect(i, j) > 0) {
				t.Fatalf("Affected(%d,%d) inconsistent with TargetEffect", i, j)
			}
		}
	}
}

func TestAffectedBandStructure(t *testing.T) {
	// Every link must affect its own strip entirely and must not affect
	// strips more than two away (the banded structure of Fig 4).
	c := testChannel(7)
	g := c.Grid()
	for i := 0; i < c.NumLinks(); i++ {
		for j := 0; j < c.NumCells(); j++ {
			d := g.Strip(j) - i
			if d < 0 {
				d = -d
			}
			if d == 0 && !c.Affected(i, j) {
				t.Errorf("link %d does not affect its own cell %d", i, j)
			}
			if d > 2 && c.Affected(i, j) {
				t.Errorf("link %d affects distant cell %d (strip distance %d)", i, j, d)
			}
		}
	}
}

func TestOwnStripVShape(t *testing.T) {
	// Along the direct path the decrease is larger near the transceivers
	// than at the midpoint (the paper's observation behind the G-matrix
	// midpoint re-definition, Eqns 15-16). The per-cell multipath
	// perturbation can locally mask the shape, so assert it on the
	// link-averaged profile, which is what the G design relies on.
	c := testChannel(7)
	g := c.Grid()
	k := g.PerStrip
	avg := make([]float64, k)
	for i := 0; i < g.Links; i++ {
		for u := 0; u < k; u++ {
			avg[u] += c.TargetEffect(i, g.CellIndex(i, u)) / float64(g.Links)
		}
	}
	mid := avg[k/2]
	if !(avg[0] > mid && avg[k-1] > mid) {
		t.Errorf("no averaged V-shape: ends %.1f/%.1f dB vs mid %.1f dB", avg[0], avg[k-1], mid)
	}
	// The minimum lies in the interior, not at the ends.
	minU := 0
	for u := 1; u < k; u++ {
		if avg[u] < avg[minU] {
			minU = u
		}
	}
	if minU == 0 || minU == k-1 {
		t.Errorf("profile minimum at end position %d", minU)
	}
}

func TestBaselinePlausible(t *testing.T) {
	c := testChannel(7)
	for i := 0; i < c.NumLinks(); i++ {
		rss := c.CleanRSS(i, NoTarget)
		if rss > -40 || rss < -90 {
			t.Errorf("link %d baseline %v dBm implausible", i, rss)
		}
	}
}

func TestShortTermVariationMagnitude(t *testing.T) {
	// Fig 1: RSS at a fixed location varies by ~5 dB over 100 s.
	c := testChannel(11)
	var lo, hi = math.Inf(1), math.Inf(-1)
	for k := 0; k < 200; k++ {
		v := c.Sample(0, NoTarget, float64(k)*0.5)
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	swing := hi - lo
	if swing < 2 || swing > 10 {
		t.Errorf("100 s peak-to-peak swing = %.1f dB, want ~5 dB (2..10)", swing)
	}
}

func TestLongTermDriftCalibration(t *testing.T) {
	// Fig 2: mean |shift| ≈ 2.5 dB after 5 days and ≈ 6 dB after 45 days.
	// Average over many seeds and links for a stable estimate.
	const day = 86400.0
	mean := func(days float64) float64 {
		var sum float64
		var n int
		for seed := uint64(0); seed < 40; seed++ {
			c := testChannel(seed)
			for i := 0; i < c.NumLinks(); i++ {
				sum += math.Abs(c.Drift(i, days*day) - c.Drift(i, 0))
				n++
			}
		}
		return sum / float64(n)
	}
	d5 := mean(5)
	if d5 < 1.7 || d5 > 3.3 {
		t.Errorf("mean |drift| @5 days = %.2f dB, want ≈2.5", d5)
	}
	d45 := mean(45)
	if d45 < 4.5 || d45 > 7.5 {
		t.Errorf("mean |drift| @45 days = %.2f dB, want ≈6", d45)
	}
	if d45 <= d5 {
		t.Errorf("drift not growing: %.2f @5 d vs %.2f @45 d", d5, d45)
	}
}

func TestDriftCorrelationAcrossLinks(t *testing.T) {
	// Adjacent links share the global drift component, so their drift
	// difference must be smaller (in RMS) than raw drift.
	const day = 86400.0
	var rawSq, diffSq float64
	var n int
	for seed := uint64(0); seed < 30; seed++ {
		c := testChannel(seed)
		for i := 0; i+1 < c.NumLinks(); i++ {
			a := c.Drift(i, 45*day) - c.Drift(i, 0)
			b := c.Drift(i+1, 45*day) - c.Drift(i+1, 0)
			rawSq += a * a
			diffSq += (a - b) * (a - b)
			n++
		}
	}
	rawRMS := math.Sqrt(rawSq / float64(n))
	diffRMS := math.Sqrt(diffSq / float64(n))
	if diffRMS >= rawRMS*1.15 {
		t.Errorf("adjacent-link drift difference RMS %.2f not damped vs raw %.2f", diffRMS, rawRMS)
	}
}

func TestAdjacentLinkNoiseCancels(t *testing.T) {
	// Fig 6: the common-mode component cancels in cross-link differences,
	// so the difference of two links' readings varies less than a single
	// link's reading around its mean.
	c := testChannel(13)
	var rawVar, diffVar, rawMean, diffMean float64
	const n = 400
	raw := make([]float64, n)
	diff := make([]float64, n)
	for k := 0; k < n; k++ {
		ts := float64(k) * 0.5
		a := c.Sample(2, NoTarget, ts)
		b := c.Sample(3, NoTarget, ts)
		raw[k] = a
		diff[k] = a - b
		rawMean += a
		diffMean += a - b
	}
	rawMean /= n
	diffMean /= n
	for k := 0; k < n; k++ {
		rawVar += (raw[k] - rawMean) * (raw[k] - rawMean)
		diffVar += (diff[k] - diffMean) * (diff[k] - diffMean)
	}
	if diffVar >= rawVar {
		t.Errorf("cross-link difference variance %.3f not below raw variance %.3f", diffVar/n, rawVar/n)
	}
}

func TestSampleMeanReducesNoise(t *testing.T) {
	c := testChannel(17)
	clean := c.CleanRSS(0, NoTarget)
	// The 50-sample mean should be closer to clean+drift than a single
	// sample on average across many windows.
	var errSingle, errMean float64
	for k := 0; k < 50; k++ {
		ts := float64(k) * 120
		truth := clean + c.Drift(0, ts)
		errSingle += math.Abs(c.Sample(0, NoTarget, ts) - truth)
		errMean += math.Abs(c.SampleMean(0, NoTarget, ts, 50) - truth)
	}
	if errMean >= errSingle {
		t.Errorf("50-sample mean error %.3f not below single-sample %.3f", errMean/50, errSingle/50)
	}
}

func TestQuantization(t *testing.T) {
	p := DefaultParams()
	p.QuantStepDB = 0.5
	c := NewChannel(testGrid(), p, 3)
	v := c.Sample(0, NoTarget, 12.25)
	if r := math.Mod(math.Abs(v), 0.5); r > 1e-9 && r < 0.5-1e-9 {
		t.Errorf("sample %v not on 0.5 dB lattice", v)
	}
	p.QuantStepDB = 0
	c2 := NewChannel(testGrid(), p, 3)
	_ = c2.Sample(0, NoTarget, 12.25) // must not panic
}

func TestHashNormalStatistics(t *testing.T) {
	var sum, sumSq float64
	const n = 20000
	for k := 0; k < n; k++ {
		v := hashNormal(99, 1, int64(k))
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Errorf("hashNormal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.1 {
		t.Errorf("hashNormal variance = %v, want ~1", variance)
	}
}

func TestValueNoiseSmoothness(t *testing.T) {
	// Consecutive samples 0.05 lattice units apart must differ far less
	// than samples 5 units apart on average.
	var nearDiff, farDiff float64
	const n = 500
	for k := 0; k < n; k++ {
		x := float64(k) * 0.37
		nearDiff += math.Abs(valueNoise(5, 9, x+0.05) - valueNoise(5, 9, x))
		farDiff += math.Abs(valueNoise(5, 9, x+5) - valueNoise(5, 9, x))
	}
	if nearDiff*5 > farDiff {
		t.Errorf("value noise not smooth: near %.3f vs far %.3f", nearDiff/n, farDiff/n)
	}
}

func TestCleanRSSWithTargetLower(t *testing.T) {
	c := testChannel(19)
	g := c.Grid()
	for i := 0; i < c.NumLinks(); i++ {
		j := g.CellIndex(i, 5)
		if c.CleanRSS(i, j) >= c.CleanRSS(i, NoTarget) {
			t.Errorf("link %d: target on path did not reduce RSS", i)
		}
	}
}
