package mat

import (
	"math/rand"
	"testing"
)

func TestAddSubScale(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {3, 4}})
	b := NewFromRows([][]float64{{10, 20}, {30, 40}})

	sum := AddM(a, b)
	if want := NewFromRows([][]float64{{11, 22}, {33, 44}}); !sum.Equal(want) {
		t.Errorf("AddM =\n%v", sum)
	}
	diff := SubM(b, a)
	if want := NewFromRows([][]float64{{9, 18}, {27, 36}}); !diff.Equal(want) {
		t.Errorf("SubM =\n%v", diff)
	}
	sc := Scale(2, a)
	if want := NewFromRows([][]float64{{2, 4}, {6, 8}}); !sc.Equal(want) {
		t.Errorf("Scale =\n%v", sc)
	}
}

func TestHadamard(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {3, 4}})
	b := NewFromRows([][]float64{{0, 1}, {1, 0}})
	h := Hadamard(a, b)
	if want := NewFromRows([][]float64{{0, 2}, {3, 0}}); !h.Equal(want) {
		t.Errorf("Hadamard =\n%v", h)
	}
}

func TestMul(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	b := NewFromRows([][]float64{{7, 8}, {9, 10}, {11, 12}})
	c := Mul(a, b)
	want := NewFromRows([][]float64{{58, 64}, {139, 154}})
	if !c.Equal(want) {
		t.Errorf("Mul =\n%vwant\n%v", c, want)
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := Random(4, 4, rng)
	if !Mul(a, Identity(4)).EqualApprox(a, 1e-14) {
		t.Error("A*I != A")
	}
	if !Mul(Identity(4), a).EqualApprox(a, 1e-14) {
		t.Error("I*A != A")
	}
}

func TestMulTAMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := Random(5, 3, rng)
	b := Random(5, 4, rng)
	got := MulTA(a, b)
	want := Mul(a.T(), b)
	if !got.EqualApprox(want, 1e-13) {
		t.Errorf("MulTA mismatch:\n%vvs\n%v", got, want)
	}
}

func TestMulTBMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := Random(4, 6, rng)
	b := Random(5, 6, rng)
	got := MulTB(a, b)
	want := Mul(a, b.T())
	if !got.EqualApprox(want, 1e-13) {
		t.Errorf("MulTB mismatch:\n%vvs\n%v", got, want)
	}
}

func TestMulVec(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	got := MulVec(a, []float64{1, -1})
	want := []float64{-1, -1, -1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("MulVec[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestMulVecT(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	got := MulVecT(a, []float64{1, 1, 1})
	want := []float64{9, 12}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("MulVecT[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestOuter(t *testing.T) {
	o := Outer([]float64{1, 2}, []float64{3, 4, 5})
	want := NewFromRows([][]float64{{3, 4, 5}, {6, 8, 10}})
	if !o.Equal(want) {
		t.Errorf("Outer =\n%v", o)
	}
}

func TestStacking(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}})
	b := NewFromRows([][]float64{{3, 4}})
	h := HStack(a, b)
	if want := NewFromRows([][]float64{{1, 2, 3, 4}}); !h.Equal(want) {
		t.Errorf("HStack =\n%v", h)
	}
	v := VStack(a, b)
	if want := NewFromRows([][]float64{{1, 2}, {3, 4}}); !v.Equal(want) {
		t.Errorf("VStack =\n%v", v)
	}
}

func TestApply(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {3, 4}})
	got := a.Apply(func(i, j int, v float64) float64 { return v * v })
	if want := NewFromRows([][]float64{{1, 4}, {9, 16}}); !got.Equal(want) {
		t.Errorf("Apply =\n%v", got)
	}
}

func TestAggregates(t *testing.T) {
	a := NewFromRows([][]float64{{-3, 2}, {1, 4}})
	if got := a.Max(); got != 4 {
		t.Errorf("Max = %v, want 4", got)
	}
	if got := a.Min(); got != -3 {
		t.Errorf("Min = %v, want -3", got)
	}
	if got := a.MaxAbs(); got != 4 {
		t.Errorf("MaxAbs = %v, want 4", got)
	}
	if got := a.Sum(); got != 4 {
		t.Errorf("Sum = %v, want 4", got)
	}
	if got := a.Mean(); got != 1 {
		t.Errorf("Mean = %v, want 1", got)
	}
}

func TestColRowSums(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	cs := a.ColSums()
	for i, want := range []float64{5, 7, 9} {
		if cs[i] != want {
			t.Errorf("ColSums[%d] = %v, want %v", i, cs[i], want)
		}
	}
	rs := a.RowSums()
	for i, want := range []float64{6, 15} {
		if rs[i] != want {
			t.Errorf("RowSums[%d] = %v, want %v", i, rs[i], want)
		}
	}
}

func TestMulPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Mul with mismatched dims did not panic")
		}
	}()
	Mul(New(2, 3), New(2, 3))
}

func TestMulAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := Random(3, 4, rng)
	b := Random(4, 5, rng)
	c := Random(5, 2, rng)
	left := Mul(Mul(a, b), c)
	right := Mul(a, Mul(b, c))
	if !left.EqualApprox(right, 1e-12) {
		t.Error("(AB)C != A(BC)")
	}
}
