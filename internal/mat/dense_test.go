package mat

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestNewZeroInitialized(t *testing.T) {
	m := New(3, 4)
	if r, c := m.Dims(); r != 3 || c != 4 {
		t.Fatalf("Dims() = %d,%d, want 3,4", r, c)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Errorf("At(%d,%d) = %v, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestNewPanicsOnBadDims(t *testing.T) {
	tests := []struct {
		name string
		r, c int
	}{
		{"zero rows", 0, 3},
		{"zero cols", 3, 0},
		{"negative rows", -1, 3},
		{"negative cols", 3, -2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", tt.r, tt.c)
				}
			}()
			New(tt.r, tt.c)
		})
	}
}

func TestNewFromData(t *testing.T) {
	m := NewFromData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	if got := m.At(1, 2); got != 6 {
		t.Errorf("At(1,2) = %v, want 6", got)
	}
	if got := m.At(0, 1); got != 2 {
		t.Errorf("At(0,1) = %v, want 2", got)
	}
}

func TestNewFromDataCopies(t *testing.T) {
	data := []float64{1, 2, 3, 4}
	m := NewFromData(2, 2, data)
	data[0] = 99
	if m.At(0, 0) != 1 {
		t.Error("NewFromData did not copy its input")
	}
}

func TestNewFromDataPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewFromData with wrong length did not panic")
		}
	}()
	NewFromData(2, 2, []float64{1, 2, 3})
}

func TestNewFromRows(t *testing.T) {
	m := NewFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if r, c := m.Dims(); r != 3 || c != 2 {
		t.Fatalf("Dims() = %d,%d, want 3,2", r, c)
	}
	if m.At(2, 1) != 6 {
		t.Errorf("At(2,1) = %v, want 6", m.At(2, 1))
	}
}

func TestNewFromRowsPanicsOnRagged(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ragged NewFromRows did not panic")
		}
	}()
	NewFromRows([][]float64{{1, 2}, {3}})
}

func TestIdentity(t *testing.T) {
	m := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if m.At(i, j) != want {
				t.Errorf("I(%d,%d) = %v, want %v", i, j, m.At(i, j), want)
			}
		}
	}
}

func TestDiagonal(t *testing.T) {
	m := Diagonal([]float64{2, 5, -1})
	if m.At(0, 0) != 2 || m.At(1, 1) != 5 || m.At(2, 2) != -1 {
		t.Error("Diagonal did not place values on the diagonal")
	}
	if m.At(0, 1) != 0 || m.At(2, 0) != 0 {
		t.Error("Diagonal off-diagonal entries are not zero")
	}
}

func TestSetAtRoundTrip(t *testing.T) {
	m := New(4, 5)
	m.Set(2, 3, 7.5)
	if got := m.At(2, 3); got != 7.5 {
		t.Errorf("At after Set = %v, want 7.5", got)
	}
	m.Add(2, 3, 0.5)
	if got := m.At(2, 3); got != 8 {
		t.Errorf("At after Add = %v, want 8", got)
	}
}

func TestIndexPanics(t *testing.T) {
	m := New(2, 2)
	tests := []struct {
		name string
		f    func()
	}{
		{"At row overflow", func() { m.At(2, 0) }},
		{"At col overflow", func() { m.At(0, 2) }},
		{"At negative", func() { m.At(-1, 0) }},
		{"Set overflow", func() { m.Set(0, 5, 1) }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			tt.f()
		})
	}
}

func TestRowColCopies(t *testing.T) {
	m := NewFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	r := m.Row(1)
	if r[0] != 4 || r[2] != 6 {
		t.Errorf("Row(1) = %v", r)
	}
	r[0] = 99
	if m.At(1, 0) != 4 {
		t.Error("Row did not return a copy")
	}
	c := m.Col(2)
	if c[0] != 3 || c[1] != 6 {
		t.Errorf("Col(2) = %v", c)
	}
	c[0] = 99
	if m.At(0, 2) != 3 {
		t.Error("Col did not return a copy")
	}
}

func TestSetRowSetCol(t *testing.T) {
	m := New(2, 3)
	m.SetRow(0, []float64{1, 2, 3})
	m.SetCol(1, []float64{9, 8})
	if m.At(0, 0) != 1 || m.At(0, 1) != 9 || m.At(1, 1) != 8 {
		t.Errorf("unexpected contents:\n%v", m)
	}
}

func TestCloneIndependent(t *testing.T) {
	m := NewFromRows([][]float64{{1, 2}, {3, 4}})
	n := m.Clone()
	n.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Error("Clone shares backing storage")
	}
}

func TestTranspose(t *testing.T) {
	m := NewFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	mt := m.T()
	if r, c := mt.Dims(); r != 3 || c != 2 {
		t.Fatalf("T dims = %d,%d, want 3,2", r, c)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != mt.At(j, i) {
				t.Errorf("T mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestSubmatrix(t *testing.T) {
	m := NewFromRows([][]float64{
		{1, 2, 3, 4},
		{5, 6, 7, 8},
		{9, 10, 11, 12},
	})
	s := m.Submatrix(1, 3, 1, 3)
	want := NewFromRows([][]float64{{6, 7}, {10, 11}})
	if !s.Equal(want) {
		t.Errorf("Submatrix =\n%vwant\n%v", s, want)
	}
}

func TestSelectCols(t *testing.T) {
	m := NewFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	s := m.SelectCols([]int{2, 0})
	want := NewFromRows([][]float64{{3, 1}, {6, 4}})
	if !s.Equal(want) {
		t.Errorf("SelectCols =\n%vwant\n%v", s, want)
	}
}

func TestSelectRows(t *testing.T) {
	m := NewFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	s := m.SelectRows([]int{2, 0})
	want := NewFromRows([][]float64{{5, 6}, {1, 2}})
	if !s.Equal(want) {
		t.Errorf("SelectRows =\n%vwant\n%v", s, want)
	}
}

func TestEqualApprox(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {3, 4}})
	b := NewFromRows([][]float64{{1.0001, 2}, {3, 3.9999}})
	if !a.EqualApprox(b, 1e-3) {
		t.Error("EqualApprox(1e-3) = false, want true")
	}
	if a.EqualApprox(b, 1e-6) {
		t.Error("EqualApprox(1e-6) = true, want false")
	}
	c := New(2, 3)
	if a.EqualApprox(c, 1) {
		t.Error("EqualApprox across dimensions should be false")
	}
}

func TestIsFinite(t *testing.T) {
	m := NewFromRows([][]float64{{1, 2}, {3, 4}})
	if !m.IsFinite() {
		t.Error("finite matrix reported non-finite")
	}
	m.Set(0, 1, math.NaN())
	if m.IsFinite() {
		t.Error("NaN matrix reported finite")
	}
	m.Set(0, 1, math.Inf(1))
	if m.IsFinite() {
		t.Error("Inf matrix reported finite")
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(3, 3, rand.New(rand.NewSource(7)))
	b := Random(3, 3, rand.New(rand.NewSource(7)))
	if !a.Equal(b) {
		t.Error("Random with identical seeds differs")
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if v := a.At(i, j); v < -1 || v >= 1 {
				t.Errorf("Random value %v out of [-1,1)", v)
			}
		}
	}
}

func TestCopyFrom(t *testing.T) {
	a := New(2, 2)
	b := NewFromRows([][]float64{{1, 2}, {3, 4}})
	a.CopyFrom(b)
	if !a.Equal(b) {
		t.Error("CopyFrom did not copy")
	}
}

func TestStringRenders(t *testing.T) {
	m := NewFromRows([][]float64{{1, 2}})
	s := m.String()
	if !strings.Contains(s, "1x2") {
		t.Errorf("String() = %q, missing dimension header", s)
	}
}
