package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// quickMatrix draws a random matrix with bounded dimensions and entries,
// suitable for testing/quick generators.
func quickMatrix(rng *rand.Rand, maxDim int) *Dense {
	r := 1 + rng.Intn(maxDim)
	c := 1 + rng.Intn(maxDim)
	m := New(r, c)
	for i := range m.data {
		m.data[i] = rng.NormFloat64() * 3
	}
	return m
}

func TestQuickTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := quickMatrix(rng, 10)
		return a.T().T().Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickAddCommutative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := quickMatrix(rng, 10)
		b := New(a.rows, a.cols)
		for i := range b.data {
			b.data[i] = rng.NormFloat64()
		}
		return AddM(a, b).EqualApprox(AddM(b, a), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickMulTransposeIdentity(t *testing.T) {
	// (A*B)ᵀ == Bᵀ*Aᵀ
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(8)
		k := 1 + rng.Intn(8)
		n := 1 + rng.Intn(8)
		a := RandomNormal(m, k, rng)
		b := RandomNormal(k, n, rng)
		return Mul(a, b).T().EqualApprox(Mul(b.T(), a.T()), 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickFrobeniusTriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := quickMatrix(rng, 10)
		b := New(a.rows, a.cols)
		for i := range b.data {
			b.data[i] = rng.NormFloat64()
		}
		return FrobeniusNorm(AddM(a, b)) <= FrobeniusNorm(a)+FrobeniusNorm(b)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickNuclearDominatesFrobenius(t *testing.T) {
	// ||A||_* >= ||A||_F for every matrix.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := quickMatrix(rng, 8)
		return NuclearNorm(a) >= FrobeniusNorm(a)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickSVDReconstructs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := quickMatrix(rng, 10)
		return FactorSVD(a).Reconstruct().EqualApprox(a, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickSVDOperatorNormBound(t *testing.T) {
	// ||A x||₂ <= s_max ||x||₂ for all x.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := quickMatrix(rng, 8)
		x := make([]float64, a.cols)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		s := SingularValues(a)
		return VecNorm2(MulVec(a, x)) <= s[0]*VecNorm2(x)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickLUSolveResidual(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := RandomNormal(n, n, rng)
		for i := 0; i < n; i++ {
			a.Add(i, i, float64(2*n)) // well conditioned
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		r := MulVec(a, x)
		for i := range r {
			if math.Abs(r[i]-b[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickSVTNonExpansive(t *testing.T) {
	// Proximal operators are non-expansive:
	// ||prox(A) - prox(B)||F <= ||A - B||F.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 2 + rng.Intn(5)
		c := 2 + rng.Intn(5)
		a := RandomNormal(r, c, rng)
		b := RandomNormal(r, c, rng)
		tau := rng.Float64() * 2
		d1 := FrobeniusNorm(SubM(SVT(a, tau), SVT(b, tau)))
		d2 := FrobeniusNorm(SubM(a, b))
		return d1 <= d2+1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickShrink21NonExpansive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 2 + rng.Intn(5)
		c := 2 + rng.Intn(5)
		a := RandomNormal(r, c, rng)
		b := RandomNormal(r, c, rng)
		tau := rng.Float64() * 2
		d1 := FrobeniusNorm(SubM(ShrinkColumns21(a, tau), ShrinkColumns21(b, tau)))
		d2 := FrobeniusNorm(SubM(a, b))
		return d1 <= d2+1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickRankBoundedByDims(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := quickMatrix(rng, 10)
		r := Rank(a, 0)
		return r >= 0 && r <= minInt(a.rows, a.cols)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// --- destination-passing kernel layer ---
//
// Every *Into kernel must match its value-returning counterpart
// bit-for-bit, including with dst aliasing an operand where the kernel
// documents that as allowed.

// sparsify zeroes a random subset of entries, for the masked kernels.
func sparsify(m *Dense, rng *rand.Rand) {
	for i := range m.data {
		if rng.Float64() < 0.5 {
			m.data[i] = 0
		}
	}
}

func TestQuickElementwiseIntoMatchBitForBit(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := quickMatrix(rng, 10)
		b := RandomNormal(a.rows, a.cols, rng)
		s := rng.NormFloat64()
		dst := New(a.rows, a.cols)
		if !AddInto(dst, a, b).Equal(AddM(a, b)) {
			return false
		}
		if !SubInto(dst, a, b).Equal(SubM(a, b)) {
			return false
		}
		if !ScaleInto(dst, s, a).Equal(Scale(s, a)) {
			return false
		}
		if !HadamardInto(dst, a, b).Equal(Hadamard(a, b)) {
			return false
		}
		if !CopyInto(dst, a).Equal(a) {
			return false
		}
		// axpy: dst += s*a against the composed value form.
		base := RandomNormal(a.rows, a.cols, rng)
		want := AddM(base, Scale(s, a))
		got := base.Clone()
		if !AddScaledInto(got, s, a).Equal(want) {
			return false
		}
		// Documented aliasing: dst == a.
		alias := a.Clone()
		if !AddInto(alias, alias, b).Equal(AddM(a, b)) {
			return false
		}
		alias = a.Clone()
		if !SubInto(alias, b, alias).Equal(SubM(b, a)) {
			return false
		}
		alias = a.Clone()
		if !ScaleInto(alias, s, alias).Equal(Scale(s, a)) {
			return false
		}
		alias = a.Clone()
		if !HadamardInto(alias, alias, b).Equal(Hadamard(a, b)) {
			return false
		}
		alias = a.Clone()
		if !AddScaledInto(alias, s, alias).Equal(AddM(a, Scale(s, a))) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickMultiplyIntoMatchBitForBit(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(8)
		k := 1 + rng.Intn(8)
		n := 1 + rng.Intn(8)
		a := RandomNormal(m, k, rng)
		b := RandomNormal(k, n, rng)
		if !MulInto(New(m, n), a, b).Equal(Mul(a, b)) {
			return false
		}
		at := RandomNormal(k, m, rng)
		if !MulTAInto(New(m, n), at, b).Equal(MulTA(at, b)) {
			return false
		}
		bt := RandomNormal(n, k, rng)
		if !MulTBInto(New(m, n), a, bt).Equal(MulTB(a, bt)) {
			return false
		}
		if !TransposeInto(New(k, m), a).Equal(a.T()) {
			return false
		}
		idx := rng.Perm(k)[:1+rng.Intn(k)]
		if !SelectColsInto(New(m, len(idx)), a, idx).Equal(a.SelectCols(idx)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickMulBlockedMatchesNaive(t *testing.T) {
	// The cache-blocked kernel must equal the naive i-j-k triple loop
	// bit-for-bit (both accumulate each output element in ascending k
	// order), including for middle dimensions larger than one k tile.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(4)
		k := 1 + rng.Intn(3*mulBlockK)
		n := 1 + rng.Intn(6)
		a := RandomNormal(m, k, rng)
		b := RandomNormal(k, n, rng)
		naive := New(m, n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				var s float64
				for q := 0; q < k; q++ {
					s += a.data[i*k+q] * b.data[q*n+j]
				}
				naive.data[i*n+j] = s
			}
		}
		return Mul(a, b).Equal(naive)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickMulSparseMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(8)
		k := 1 + rng.Intn(8)
		n := 1 + rng.Intn(8)
		a := RandomNormal(m, k, rng)
		sparsify(a, rng)
		b := RandomNormal(k, n, rng)
		return MulSparse(a, b).Equal(Mul(a, b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickProximalIntoMatchBitForBit(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := quickMatrix(rng, 8)
		tau := rng.Float64() * 2
		if !SVTInto(New(a.rows, a.cols), a, tau).Equal(SVT(a, tau)) {
			return false
		}
		if !ShrinkColumns21Into(New(a.rows, a.cols), a, tau).Equal(ShrinkColumns21(a, tau)) {
			return false
		}
		// Documented aliasing: ShrinkColumns21Into dst == a.
		alias := a.Clone()
		return ShrinkColumns21Into(alias, alias, tau).Equal(ShrinkColumns21(a, tau))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// spdMatrix builds a random well-conditioned SPD matrix.
func spdMatrix(rng *rand.Rand, n int) *Dense {
	a := RandomNormal(n, n, rng)
	s := MulTA(a, a)
	for i := 0; i < n; i++ {
		s.Add(i, i, float64(n))
	}
	return s
}

func TestQuickFactorIntoReuseMatchesFresh(t *testing.T) {
	// Refactoring through a reused Cholesky/LU must match a fresh
	// factorization bit-for-bit, as must the Into solves.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a1 := spdMatrix(rng, n)
		a2 := spdMatrix(rng, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}

		var reused Cholesky
		if reused.Factor(a1) != nil {
			return false
		}
		if reused.Factor(a2) != nil {
			return false
		}
		fresh, err := FactorCholesky(a2)
		if err != nil {
			return false
		}
		if !reused.L().Equal(fresh.L()) {
			return false
		}
		x := make([]float64, n)
		reused.SolveVecInto(x, b)
		want := fresh.SolveVec(b)
		for i := range x {
			if x[i] != want[i] {
				return false
			}
		}
		// Aliased solve: x == b.
		alias := append([]float64(nil), b...)
		reused.SolveVecInto(alias, alias)
		for i := range alias {
			if alias[i] != want[i] {
				return false
			}
		}
		// Matrix SolveInto against column-wise Solve.
		bm := RandomNormal(n, 2+rng.Intn(4), rng)
		if !reused.SolveInto(New(bm.rows, bm.cols), bm).Equal(fresh.Solve(bm)) {
			return false
		}

		var lu LU
		if lu.Factor(a1) != nil {
			return false
		}
		if lu.Factor(a2) != nil {
			return false
		}
		luFresh, err := FactorLU(a2)
		if err != nil {
			return false
		}
		if lu.Det() != luFresh.Det() {
			return false
		}
		if err := lu.SolveVecInto(x, b); err != nil {
			return false
		}
		luWant, err := luFresh.SolveVec(b)
		if err != nil {
			return false
		}
		for i := range x {
			if x[i] != luWant[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickSolveSymLowerTriangleMatchesFull(t *testing.T) {
	// SolveSymVecInto consumes normal matrices whose upper triangle was
	// never written; it must match SolveSPD on the full symmetric form.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		full := spdMatrix(rng, n)
		lower := full.Clone()
		for c := 0; c < n; c++ {
			for d := c + 1; d < n; d++ {
				lower.Set(c, d, rng.NormFloat64()) // garbage upper
			}
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		want, err := SolveSPD(full, b)
		if err != nil {
			return false
		}
		var s SPDSolver
		x := make([]float64, n)
		if s.SolveSymVecInto(x, lower, b) != nil {
			return false
		}
		for i := range x {
			if x[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestWorkspaceReuseIsZeroedAndShaped(t *testing.T) {
	ws := NewWorkspace()
	a := ws.Dense(4, 6)
	a.Set(2, 3, 7)
	back := a.RawData()
	ws.Free(a)
	// A smaller borrow must reuse the same backing array, zeroed.
	b := ws.Dense(3, 5)
	if r, c := b.Dims(); r != 3 || c != 5 {
		t.Fatalf("borrowed %dx%d, want 3x5", r, c)
	}
	if &b.RawData()[0] != &back[0] {
		t.Error("workspace did not reuse the freed buffer")
	}
	for i, v := range b.RawData() {
		if v != 0 {
			t.Fatalf("reused buffer not zeroed at %d: %v", i, v)
		}
	}
	// A larger borrow allocates fresh.
	c := ws.Dense(10, 10)
	if len(c.RawData()) != 100 {
		t.Fatalf("large borrow has %d elements", len(c.RawData()))
	}
	v := ws.Vec(5)
	v[0] = 3
	ws.FreeVec(v)
	v2 := ws.Vec(4)
	if v2[0] != 0 {
		t.Error("reused vector not zeroed")
	}
}

func TestQuickQRCPWorkspaceMatches(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := quickMatrix(rng, 10)
		ws := NewWorkspace()
		got := FactorQRCPWorkspace(ws, a)
		want := FactorQRCP(a)
		if len(got.Perm) != len(want.Perm) || len(got.RDiag) != len(want.RDiag) {
			return false
		}
		for i := range got.Perm {
			if got.Perm[i] != want.Perm[i] {
				return false
			}
		}
		for i := range got.RDiag {
			if got.RDiag[i] != want.RDiag[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickQRCPRankMatchesSVDRank(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(6)
		n := 2 + rng.Intn(10)
		r := 1 + rng.Intn(minInt(m, n))
		a := Mul(RandomNormal(m, r, rng), RandomNormal(r, n, rng))
		return FactorQRCP(a).Rank(1e-8) == Rank(a, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
