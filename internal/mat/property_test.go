package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// quickMatrix draws a random matrix with bounded dimensions and entries,
// suitable for testing/quick generators.
func quickMatrix(rng *rand.Rand, maxDim int) *Dense {
	r := 1 + rng.Intn(maxDim)
	c := 1 + rng.Intn(maxDim)
	m := New(r, c)
	for i := range m.data {
		m.data[i] = rng.NormFloat64() * 3
	}
	return m
}

func TestQuickTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := quickMatrix(rng, 10)
		return a.T().T().Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickAddCommutative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := quickMatrix(rng, 10)
		b := New(a.rows, a.cols)
		for i := range b.data {
			b.data[i] = rng.NormFloat64()
		}
		return AddM(a, b).EqualApprox(AddM(b, a), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickMulTransposeIdentity(t *testing.T) {
	// (A*B)ᵀ == Bᵀ*Aᵀ
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(8)
		k := 1 + rng.Intn(8)
		n := 1 + rng.Intn(8)
		a := RandomNormal(m, k, rng)
		b := RandomNormal(k, n, rng)
		return Mul(a, b).T().EqualApprox(Mul(b.T(), a.T()), 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickFrobeniusTriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := quickMatrix(rng, 10)
		b := New(a.rows, a.cols)
		for i := range b.data {
			b.data[i] = rng.NormFloat64()
		}
		return FrobeniusNorm(AddM(a, b)) <= FrobeniusNorm(a)+FrobeniusNorm(b)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickNuclearDominatesFrobenius(t *testing.T) {
	// ||A||_* >= ||A||_F for every matrix.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := quickMatrix(rng, 8)
		return NuclearNorm(a) >= FrobeniusNorm(a)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickSVDReconstructs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := quickMatrix(rng, 10)
		return FactorSVD(a).Reconstruct().EqualApprox(a, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickSVDOperatorNormBound(t *testing.T) {
	// ||A x||₂ <= s_max ||x||₂ for all x.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := quickMatrix(rng, 8)
		x := make([]float64, a.cols)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		s := SingularValues(a)
		return VecNorm2(MulVec(a, x)) <= s[0]*VecNorm2(x)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickLUSolveResidual(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := RandomNormal(n, n, rng)
		for i := 0; i < n; i++ {
			a.Add(i, i, float64(2*n)) // well conditioned
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		r := MulVec(a, x)
		for i := range r {
			if math.Abs(r[i]-b[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickSVTNonExpansive(t *testing.T) {
	// Proximal operators are non-expansive:
	// ||prox(A) - prox(B)||F <= ||A - B||F.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 2 + rng.Intn(5)
		c := 2 + rng.Intn(5)
		a := RandomNormal(r, c, rng)
		b := RandomNormal(r, c, rng)
		tau := rng.Float64() * 2
		d1 := FrobeniusNorm(SubM(SVT(a, tau), SVT(b, tau)))
		d2 := FrobeniusNorm(SubM(a, b))
		return d1 <= d2+1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickShrink21NonExpansive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 2 + rng.Intn(5)
		c := 2 + rng.Intn(5)
		a := RandomNormal(r, c, rng)
		b := RandomNormal(r, c, rng)
		tau := rng.Float64() * 2
		d1 := FrobeniusNorm(SubM(ShrinkColumns21(a, tau), ShrinkColumns21(b, tau)))
		d2 := FrobeniusNorm(SubM(a, b))
		return d1 <= d2+1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickRankBoundedByDims(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := quickMatrix(rng, 10)
		r := Rank(a, 0)
		return r >= 0 && r <= minInt(a.rows, a.cols)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickQRCPRankMatchesSVDRank(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(6)
		n := 2 + rng.Intn(10)
		r := 1 + rng.Intn(minInt(m, n))
		a := Mul(RandomNormal(m, r, rng), RandomNormal(r, n, rng))
		return FactorQRCP(a).Rank(1e-8) == Rank(a, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
