package mat

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// denseWire is the serialized form of Dense.
type denseWire struct {
	Rows, Cols int
	Data       []float64
}

// GobEncode implements gob.GobEncoder.
func (m *Dense) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(denseWire{Rows: m.rows, Cols: m.cols, Data: m.data})
	if err != nil {
		return nil, fmt.Errorf("mat: gob encode: %w", err)
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (m *Dense) GobDecode(b []byte) error {
	var w denseWire
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return fmt.Errorf("mat: gob decode: %w", err)
	}
	if w.Rows <= 0 || w.Cols <= 0 || len(w.Data) != w.Rows*w.Cols {
		return fmt.Errorf("mat: gob decode: inconsistent wire data %dx%d with %d values", w.Rows, w.Cols, len(w.Data))
	}
	m.rows, m.cols, m.data = w.Rows, w.Cols, w.Data
	return nil
}
