package mat

import "math"

// FrobeniusNorm returns sqrt(sum of squared elements).
func FrobeniusNorm(m *Dense) float64 {
	// Scaled accumulation avoids overflow for extreme values.
	var scale, ssq float64 = 0, 1
	for _, v := range m.data {
		if v == 0 {
			continue
		}
		av := math.Abs(v)
		if scale < av {
			ssq = 1 + ssq*(scale/av)*(scale/av)
			scale = av
		} else {
			ssq += (av / scale) * (av / scale)
		}
	}
	return scale * math.Sqrt(ssq)
}

// FrobeniusNormSq returns the squared Frobenius norm.
func FrobeniusNormSq(m *Dense) float64 {
	var s float64
	for _, v := range m.data {
		s += v * v
	}
	return s
}

// Norm21 returns the l2,1 norm: the sum over columns of the column
// Euclidean norms. This is the group-sparsity norm used for the error term
// in low-rank representation (Eqn 12 of the paper).
func Norm21(m *Dense) float64 {
	var total float64
	for j := 0; j < m.cols; j++ {
		var s float64
		for i := 0; i < m.rows; i++ {
			v := m.data[i*m.cols+j]
			s += v * v
		}
		total += math.Sqrt(s)
	}
	return total
}

// NuclearNorm returns the sum of the singular values of m.
func NuclearNorm(m *Dense) float64 {
	sv := SingularValues(m)
	var s float64
	for _, v := range sv {
		s += v
	}
	return s
}

// VecNorm2 returns the Euclidean norm of x.
func VecNorm2(x []float64) float64 {
	var scale, ssq float64 = 0, 1
	for _, v := range x {
		if v == 0 {
			continue
		}
		av := math.Abs(v)
		if scale < av {
			ssq = 1 + ssq*(scale/av)*(scale/av)
			scale = av
		} else {
			ssq += (av / scale) * (av / scale)
		}
	}
	return scale * math.Sqrt(ssq)
}

// VecNorm2Sq returns the squared Euclidean norm of x.
func VecNorm2Sq(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return s
}

// Dot returns the inner product of x and y, which must have equal length.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("mat: Dot length mismatch")
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// ColNorms returns the Euclidean norm of every column.
func ColNorms(m *Dense) []float64 {
	out := make([]float64, m.cols)
	for j := 0; j < m.cols; j++ {
		var s float64
		for i := 0; i < m.rows; i++ {
			v := m.data[i*m.cols+j]
			s += v * v
		}
		out[j] = math.Sqrt(s)
	}
	return out
}
