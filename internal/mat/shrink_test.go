package mat

import (
	"math"
	"math/rand"
	"testing"
)

func TestSVTShrinksSingularValues(t *testing.T) {
	a := Diagonal([]float64{5, 3, 1})
	out := SVT(a, 2)
	s := SingularValues(out)
	want := []float64{3, 1, 0}
	for i := range want {
		if math.Abs(s[i]-want[i]) > 1e-10 {
			t.Errorf("s[%d] = %v, want %v", i, s[i], want[i])
		}
	}
}

func TestSVTZeroTauIsIdentityOp(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	a := Random(4, 6, rng)
	if !SVT(a, 0).EqualApprox(a, 1e-9) {
		t.Error("SVT(A, 0) != A")
	}
}

func TestSVTLargeTauGivesZero(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a := Random(4, 6, rng)
	s := SingularValues(a)
	out := SVT(a, s[0]+1)
	if FrobeniusNorm(out) > 1e-12 {
		t.Error("SVT with tau > s_max is not zero")
	}
}

func TestSVTIsProximalMinimizer(t *testing.T) {
	// The SVT output must achieve a lower proximal objective
	// tau*||X||_* + 0.5*||X-A||F² than nearby perturbations.
	rng := rand.New(rand.NewSource(43))
	a := Random(5, 5, rng)
	const tau = 0.3
	x := SVT(a, tau)
	obj := func(m *Dense) float64 {
		return tau*NuclearNorm(m) + 0.5*FrobeniusNormSq(SubM(m, a))
	}
	base := obj(x)
	for trial := 0; trial < 10; trial++ {
		pert := AddM(x, Scale(0.01, Random(5, 5, rng)))
		if obj(pert) < base-1e-9 {
			t.Fatalf("perturbation beats SVT output: %v < %v", obj(pert), base)
		}
	}
}

func TestShrinkColumns21(t *testing.T) {
	a := NewFromRows([][]float64{
		{3, 0.1},
		{4, 0.1},
	})
	out := ShrinkColumns21(a, 1)
	// Column 0 has norm 5 -> scaled by 4/5. Column 1 has norm ~0.141 < 1 -> zero.
	if math.Abs(out.At(0, 0)-2.4) > 1e-12 || math.Abs(out.At(1, 0)-3.2) > 1e-12 {
		t.Errorf("column 0 = (%v, %v), want (2.4, 3.2)", out.At(0, 0), out.At(1, 0))
	}
	if out.At(0, 1) != 0 || out.At(1, 1) != 0 {
		t.Error("small column was not zeroed")
	}
}

func TestShrinkColumns21NormReduction(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	a := Random(6, 8, rng)
	out := ShrinkColumns21(a, 0.2)
	inNorms := ColNorms(a)
	outNorms := ColNorms(out)
	for j := range inNorms {
		wantNorm := inNorms[j] - 0.2
		if wantNorm < 0 {
			wantNorm = 0
		}
		if math.Abs(outNorms[j]-wantNorm) > 1e-10 {
			t.Errorf("col %d: norm %v, want %v", j, outNorms[j], wantNorm)
		}
	}
}

func TestSoftThreshold(t *testing.T) {
	a := NewFromRows([][]float64{{2, -2}, {0.5, -0.5}})
	out := SoftThreshold(a, 1)
	want := NewFromRows([][]float64{{1, -1}, {0, 0}})
	if !out.EqualApprox(want, 1e-14) {
		t.Errorf("SoftThreshold =\n%vwant\n%v", out, want)
	}
}

func TestToeplitzBandMatchesPaperH(t *testing.T) {
	// Eqn 17: central diagonal 1, first lower diagonal -1, rest 0.
	h := ToeplitzBand(4, -1, 1, 0)
	want := NewFromRows([][]float64{
		{1, 0, 0, 0},
		{-1, 1, 0, 0},
		{0, -1, 1, 0},
		{0, 0, -1, 1},
	})
	if !h.Equal(want) {
		t.Errorf("H =\n%vwant\n%v", h, want)
	}
}

func TestToeplitzGeneral(t *testing.T) {
	m := Toeplitz([]float64{1, 2, 3}, []float64{1, 4, 5})
	want := NewFromRows([][]float64{
		{1, 4, 5},
		{2, 1, 4},
		{3, 2, 1},
	})
	if !m.Equal(want) {
		t.Errorf("Toeplitz =\n%vwant\n%v", m, want)
	}
}

func TestToeplitzPanicsOnCornerMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Toeplitz with mismatched corner did not panic")
		}
	}()
	Toeplitz([]float64{1, 2}, []float64{3, 4})
}
