package mat

import (
	"math/rand"
	"testing"
)

func TestRREFFullRankIsIdentityBlock(t *testing.T) {
	a := NewFromRows([][]float64{
		{1, 2, 3},
		{4, 5, 6},
		{7, 8, 10},
	})
	res := RREF(a, 0)
	if len(res.Pivots) != 3 {
		t.Fatalf("pivots = %v, want 3 pivots", res.Pivots)
	}
	if !res.R.EqualApprox(Identity(3), 1e-10) {
		t.Errorf("RREF of full-rank square matrix =\n%v", res.R)
	}
}

func TestRREFPivotsIdentifyIndependentColumns(t *testing.T) {
	// Column 1 = 2*column 0, column 3 = column 0 + column 2.
	a := NewFromRows([][]float64{
		{1, 2, 0, 1},
		{2, 4, 1, 3},
		{3, 6, 0, 3},
	})
	res := RREF(a, 0)
	want := []int{0, 2}
	if len(res.Pivots) != len(want) {
		t.Fatalf("pivots = %v, want %v", res.Pivots, want)
	}
	for i := range want {
		if res.Pivots[i] != want[i] {
			t.Errorf("pivots = %v, want %v", res.Pivots, want)
			break
		}
	}
}

func TestRREFIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a := Random(4, 7, rng)
	first := RREF(a, 0)
	second := RREF(first.R, 0)
	if !first.R.EqualApprox(second.R, 1e-9) {
		t.Error("RREF(RREF(A)) != RREF(A)")
	}
}

func TestRREFZeroMatrix(t *testing.T) {
	res := RREF(New(3, 4), 0)
	if len(res.Pivots) != 0 {
		t.Errorf("zero matrix pivots = %v, want none", res.Pivots)
	}
}

func TestRREFPivotCountEqualsRank(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 15; trial++ {
		m := 3 + rng.Intn(5)
		n := 3 + rng.Intn(10)
		r := 1 + rng.Intn(minInt(m, n))
		a := Mul(Random(m, r, rng), Random(r, n, rng))
		res := RREF(a, 1e-8)
		if len(res.Pivots) != r {
			t.Errorf("trial %d: %d pivots for rank-%d %dx%d matrix", trial, len(res.Pivots), r, m, n)
		}
	}
}

func TestRREFSelectedColumnsSpan(t *testing.T) {
	// Columns selected by RREF pivots must reproduce the full matrix via
	// least squares (they span the column space).
	rng := rand.New(rand.NewSource(33))
	base := Random(6, 3, rng)
	coef := Random(3, 9, rng)
	a := Mul(base, coef)
	res := RREF(a, 1e-8)
	sel := a.SelectCols(res.Pivots)
	// Solve sel * Z = a in the least-squares sense per column.
	var worst float64
	for j := 0; j < a.Cols(); j++ {
		z, err := LeastSquares(sel, a.Col(j))
		if err != nil {
			t.Fatalf("LeastSquares: %v", err)
		}
		recon := MulVec(sel, z)
		col := a.Col(j)
		for i := range col {
			if d := col[i] - recon[i]; d > worst || -d > worst {
				if d < 0 {
					d = -d
				}
				worst = d
			}
		}
	}
	if worst > 1e-8 {
		t.Errorf("pivot columns do not span the matrix: residual %v", worst)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
