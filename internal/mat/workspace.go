package mat

import "sync"

// Workspace is a free-list of matrix and vector buffers for hot loops
// that would otherwise allocate per iteration: borrow with Dense/Vec,
// return with Free/FreeVec, and the backing arrays (and the Dense
// headers themselves) are recycled. Borrowed matrices are always
// zeroed.
//
// A Workspace is not safe for concurrent use; each goroutine should
// hold its own (GetWorkspace hands out pooled instances cheaply).
// Buffers not returned before Release are simply dropped to the garbage
// collector — forgetting a Free leaks nothing, it only costs a future
// allocation.
type Workspace struct {
	mats []*Dense
	vecs [][]float64
}

// workspacePool recycles Workspaces — and, through them, their buffers —
// across solver calls.
var workspacePool = sync.Pool{New: func() any { return new(Workspace) }}

// NewWorkspace returns an empty workspace with no pooled buffers.
func NewWorkspace() *Workspace { return new(Workspace) }

// GetWorkspace borrows a workspace from the process-wide pool. Pair with
// Release.
func GetWorkspace() *Workspace { return workspacePool.Get().(*Workspace) }

// Release returns the workspace — with every buffer currently on its
// free list — to the process-wide pool. The caller must not use w, or
// any matrix still borrowed from it, afterwards.
func (w *Workspace) Release() { workspacePool.Put(w) }

// Dense borrows a zeroed r x c matrix, reusing the smallest pooled
// buffer that fits (the free lists stay short, so a linear best-fit
// scan is cheaper than bucketing).
func (w *Workspace) Dense(r, c int) *Dense {
	if r <= 0 || c <= 0 {
		panic("mat: Workspace.Dense requires positive dimensions")
	}
	need := r * c
	best := -1
	for i, m := range w.mats {
		if cap(m.data) < need {
			continue
		}
		if best < 0 || cap(m.data) < cap(w.mats[best].data) {
			best = i
		}
	}
	if best < 0 {
		return New(r, c)
	}
	m := w.mats[best]
	last := len(w.mats) - 1
	w.mats[best] = w.mats[last]
	w.mats[last] = nil
	w.mats = w.mats[:last]
	m.rows, m.cols = r, c
	m.data = m.data[:need]
	for i := range m.data {
		m.data[i] = 0
	}
	return m
}

// Free returns a matrix borrowed with Dense to the free list. m must not
// be used afterwards. Matrices from other sources may also be donated.
func (w *Workspace) Free(m *Dense) {
	if m == nil || cap(m.data) == 0 {
		return
	}
	w.mats = append(w.mats, m)
}

// Vec borrows a zeroed length-n vector.
func (w *Workspace) Vec(n int) []float64 {
	if n < 0 {
		panic("mat: Workspace.Vec requires non-negative length")
	}
	best := -1
	for i, v := range w.vecs {
		if cap(v) < n {
			continue
		}
		if best < 0 || cap(v) < cap(w.vecs[best]) {
			best = i
		}
	}
	if best < 0 {
		return make([]float64, n)
	}
	v := w.vecs[best][:n]
	last := len(w.vecs) - 1
	w.vecs[best] = w.vecs[last]
	w.vecs[last] = nil
	w.vecs = w.vecs[:last]
	for i := range v {
		v[i] = 0
	}
	return v
}

// FreeVec returns a vector borrowed with Vec to the free list.
func (w *Workspace) FreeVec(v []float64) {
	if cap(v) == 0 {
		return
	}
	w.vecs = append(w.vecs, v)
}
