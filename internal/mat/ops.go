package mat

import "fmt"

// AddM returns a + b.
func AddM(a, b *Dense) *Dense {
	checkSameDims("AddM", a, b)
	return AddInto(New(a.rows, a.cols), a, b)
}

// SubM returns a - b.
func SubM(a, b *Dense) *Dense {
	checkSameDims("SubM", a, b)
	return SubInto(New(a.rows, a.cols), a, b)
}

// Scale returns s * a.
func Scale(s float64, a *Dense) *Dense {
	return ScaleInto(New(a.rows, a.cols), s, a)
}

// Hadamard returns the element-wise product a .* b.
func Hadamard(a, b *Dense) *Dense {
	checkSameDims("Hadamard", a, b)
	return HadamardInto(New(a.rows, a.cols), a, b)
}

// Mul returns the matrix product a * b using the branch-free blocked
// dense kernel. For genuinely sparse operands (0/1 masks, banded
// operators) use MulSparse, which skips zero entries of a.
func Mul(a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mat: Mul dimension mismatch %dx%d * %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	return MulInto(New(a.rows, b.cols), a, b)
}

// MulSparse returns a * b, skipping zero entries of a (the masked
// multiply kernel).
func MulSparse(a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mat: MulSparse dimension mismatch %dx%d * %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	return MulSparseInto(New(a.rows, b.cols), a, b)
}

// MulTA returns aᵀ * b without materializing the transpose.
func MulTA(a, b *Dense) *Dense {
	if a.rows != b.rows {
		panic(fmt.Sprintf("mat: MulTA dimension mismatch %dx%d ᵀ* %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	return MulTAInto(New(a.cols, b.cols), a, b)
}

// MulTB returns a * bᵀ without materializing the transpose.
func MulTB(a, b *Dense) *Dense {
	if a.cols != b.cols {
		panic(fmt.Sprintf("mat: MulTB dimension mismatch %dx%d *ᵀ %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	return MulTBInto(New(a.rows, b.rows), a, b)
}

// MulVec returns the matrix-vector product a * x.
func MulVec(a *Dense, x []float64) []float64 {
	if a.cols != len(x) {
		panic(fmt.Sprintf("mat: MulVec dimension mismatch %dx%d * %d", a.rows, a.cols, len(x)))
	}
	out := make([]float64, a.rows)
	for i := 0; i < a.rows; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		var s float64
		for k, av := range arow {
			s += av * x[k]
		}
		out[i] = s
	}
	return out
}

// MulVecT returns aᵀ * x.
func MulVecT(a *Dense, x []float64) []float64 {
	if a.rows != len(x) {
		panic(fmt.Sprintf("mat: MulVecT dimension mismatch %dx%dᵀ * %d", a.rows, a.cols, len(x)))
	}
	out := make([]float64, a.cols)
	for i := 0; i < a.rows; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		xi := x[i]
		if xi == 0 {
			continue
		}
		for j, av := range arow {
			out[j] += av * xi
		}
	}
	return out
}

// Outer returns the outer product x * yᵀ.
func Outer(x, y []float64) *Dense {
	out := New(len(x), len(y))
	for i, xv := range x {
		for j, yv := range y {
			out.data[i*out.cols+j] = xv * yv
		}
	}
	return out
}

// HStack returns [a | b], the horizontal concatenation of a and b.
func HStack(a, b *Dense) *Dense {
	if a.rows != b.rows {
		panic(fmt.Sprintf("mat: HStack row mismatch %d vs %d", a.rows, b.rows))
	}
	out := New(a.rows, a.cols+b.cols)
	for i := 0; i < a.rows; i++ {
		copy(out.data[i*out.cols:], a.data[i*a.cols:(i+1)*a.cols])
		copy(out.data[i*out.cols+a.cols:], b.data[i*b.cols:(i+1)*b.cols])
	}
	return out
}

// VStack returns the vertical concatenation of a on top of b.
func VStack(a, b *Dense) *Dense {
	if a.cols != b.cols {
		panic(fmt.Sprintf("mat: VStack column mismatch %d vs %d", a.cols, b.cols))
	}
	out := New(a.rows+b.rows, a.cols)
	copy(out.data, a.data)
	copy(out.data[len(a.data):], b.data)
	return out
}

// Apply returns a new matrix whose elements are f(i, j, m[i][j]).
func (m *Dense) Apply(f func(i, j int, v float64) float64) *Dense {
	out := New(m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.data[i*m.cols+j] = f(i, j, m.data[i*m.cols+j])
		}
	}
	return out
}

// Max returns the maximum element value.
func (m *Dense) Max() float64 {
	max := m.data[0]
	for _, v := range m.data[1:] {
		if v > max {
			max = v
		}
	}
	return max
}

// Min returns the minimum element value.
func (m *Dense) Min() float64 {
	min := m.data[0]
	for _, v := range m.data[1:] {
		if v < min {
			min = v
		}
	}
	return min
}

// MaxAbs returns the maximum absolute element value.
func (m *Dense) MaxAbs() float64 {
	var max float64
	for _, v := range m.data {
		if v < 0 {
			v = -v
		}
		if v > max {
			max = v
		}
	}
	return max
}

// Sum returns the sum of all elements.
func (m *Dense) Sum() float64 {
	var s float64
	for _, v := range m.data {
		s += v
	}
	return s
}

// Mean returns the mean of all elements.
func (m *Dense) Mean() float64 { return m.Sum() / float64(len(m.data)) }

// ColSums returns the per-column sums.
func (m *Dense) ColSums() []float64 {
	out := make([]float64, m.cols)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			out[j] += v
		}
	}
	return out
}

// RowSums returns the per-row sums.
func (m *Dense) RowSums() []float64 {
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for _, v := range row {
			s += v
		}
		out[i] = s
	}
	return out
}

func checkSameDims(op string, a, b *Dense) {
	if a.rows != b.rows || a.cols != b.cols {
		panic(fmt.Sprintf("mat: %s dimension mismatch %dx%d vs %dx%d", op, a.rows, a.cols, b.rows, b.cols))
	}
}
