package mat

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"testing"
)

func TestGobRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	in := Random(5, 9, rng)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(in); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var out Dense
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !in.Equal(&out) {
		t.Error("matrix did not round-trip")
	}
}

func TestGobDecodeRejectsInconsistentWire(t *testing.T) {
	// Encode a struct with mismatched dims/data length via the wire type.
	var buf bytes.Buffer
	bad := denseWire{Rows: 2, Cols: 3, Data: []float64{1, 2}}
	if err := gob.NewEncoder(&buf).Encode(bad); err != nil {
		t.Fatal(err)
	}
	var out Dense
	if err := out.GobDecode(buf.Bytes()); err == nil {
		t.Error("inconsistent wire data accepted")
	}
}

func TestGobDecodeRejectsGarbage(t *testing.T) {
	var out Dense
	if err := out.GobDecode([]byte("garbage")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestGobRoundTripInsideStruct(t *testing.T) {
	type wrapper struct {
		Name string
		M    *Dense
	}
	rng := rand.New(rand.NewSource(72))
	in := wrapper{Name: "db", M: Random(3, 4, rng)}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(in); err != nil {
		t.Fatal(err)
	}
	var out wrapper
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Name != "db" || !in.M.Equal(out.M) {
		t.Error("wrapped matrix did not round-trip")
	}
}
