package mat

import (
	"fmt"
	"math"
)

// QR holds a Householder QR factorization A = Q*R with A of size m x n,
// m >= n, Q of size m x n (thin) and R of size n x n upper triangular.
type QR struct {
	q *Dense
	r *Dense
}

// FactorQR computes the thin QR factorization of a (rows >= cols) using
// Householder reflections.
func FactorQR(a *Dense) *QR {
	m, n := a.rows, a.cols
	if m < n {
		panic(fmt.Sprintf("mat: FactorQR requires rows >= cols, got %dx%d", m, n))
	}
	r := a.Clone()
	// Accumulate Q explicitly; matrices here are small.
	q := Identity(m)
	v := make([]float64, m)
	for k := 0; k < n; k++ {
		// Build the Householder vector for column k below the diagonal.
		var norm float64
		for i := k; i < m; i++ {
			norm += r.data[i*n+k] * r.data[i*n+k]
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			continue
		}
		alpha := -norm
		if r.data[k*n+k] < 0 {
			alpha = norm
		}
		for i := 0; i < k; i++ {
			v[i] = 0
		}
		v[k] = r.data[k*n+k] - alpha
		for i := k + 1; i < m; i++ {
			v[i] = r.data[i*n+k]
		}
		vnorm2 := VecNorm2Sq(v[k:])
		if vnorm2 == 0 {
			continue
		}
		beta := 2 / vnorm2
		// R <- (I - beta v vᵀ) R, touching rows k..m-1 only.
		for j := k; j < n; j++ {
			var s float64
			for i := k; i < m; i++ {
				s += v[i] * r.data[i*n+j]
			}
			s *= beta
			for i := k; i < m; i++ {
				r.data[i*n+j] -= s * v[i]
			}
		}
		// Q <- Q (I - beta v vᵀ).
		for i := 0; i < m; i++ {
			var s float64
			for j := k; j < m; j++ {
				s += q.data[i*m+j] * v[j]
			}
			s *= beta
			for j := k; j < m; j++ {
				q.data[i*m+j] -= s * v[j]
			}
		}
	}
	return &QR{
		q: q.Submatrix(0, m, 0, n),
		r: r.Submatrix(0, n, 0, n),
	}
}

// Q returns a copy of the thin orthonormal factor.
func (f *QR) Q() *Dense { return f.q.Clone() }

// R returns a copy of the upper-triangular factor.
func (f *QR) R() *Dense { return f.r.Clone() }

// SolveVec solves the least-squares problem min ||A*x - b||₂ via
// R*x = Qᵀ*b.
func (f *QR) SolveVec(b []float64) ([]float64, error) {
	m, n := f.q.rows, f.q.cols
	if len(b) != m {
		panic(fmt.Sprintf("mat: QR SolveVec length %d, want %d", len(b), m))
	}
	qtb := MulVecT(f.q, b)
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		var s float64
		for j := i + 1; j < n; j++ {
			s += f.r.data[i*n+j] * x[j]
		}
		d := f.r.data[i*n+i]
		if d == 0 {
			return nil, ErrSingular
		}
		x[i] = (qtb[i] - s) / d
	}
	return x, nil
}

// LeastSquares solves min ||a*x - b||₂ for overdetermined a.
func LeastSquares(a *Dense, b []float64) ([]float64, error) {
	return FactorQR(a).SolveVec(b)
}

// QRCP holds a QR factorization with column pivoting: A*P = Q*R where P is
// a column permutation encoded by Perm (Perm[k] is the index of the
// original column in position k).
type QRCP struct {
	Perm     []int
	RDiag    []float64 // |diagonal of R|, non-increasing
	NumRows  int
	NumCols  int
	rangeTol float64
}

// FactorQRCP computes a rank-revealing QR factorization with column
// pivoting. It is the numerically robust way to find a maximum set of
// independent columns of a noisy matrix: the first rank(A) entries of Perm
// index the most independent columns.
func FactorQRCP(a *Dense) *QRCP {
	return FactorQRCPWorkspace(nil, a)
}

// FactorQRCPWorkspace is FactorQRCP with the working copy and scratch
// vectors borrowed from ws; a nil ws allocates them. Only the returned
// permutation and R diagonal stay allocated.
func FactorQRCPWorkspace(ws *Workspace, a *Dense) *QRCP {
	m, n := a.rows, a.cols
	var work *Dense
	var colNorm2, v []float64
	if ws != nil {
		work = CopyInto(ws.Dense(m, n), a)
		colNorm2 = ws.Vec(n)
		v = ws.Vec(m)
		defer func() {
			ws.Free(work)
			ws.FreeVec(colNorm2)
			ws.FreeVec(v)
		}()
	} else {
		work = a.Clone()
		colNorm2 = make([]float64, n)
		v = make([]float64, m)
	}
	perm := make([]int, n)
	for j := range perm {
		perm[j] = j
	}
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			colNorm2[j] += work.data[i*n+j] * work.data[i*n+j]
		}
	}
	steps := m
	if n < m {
		steps = n
	}
	rdiag := make([]float64, steps)
	for k := 0; k < steps; k++ {
		// Pick the column with the largest remaining norm.
		p := k
		for j := k + 1; j < n; j++ {
			if colNorm2[j] > colNorm2[p] {
				p = j
			}
		}
		if p != k {
			perm[k], perm[p] = perm[p], perm[k]
			colNorm2[k], colNorm2[p] = colNorm2[p], colNorm2[k]
			for i := 0; i < m; i++ {
				work.data[i*n+k], work.data[i*n+p] = work.data[i*n+p], work.data[i*n+k]
			}
		}
		var norm float64
		for i := k; i < m; i++ {
			norm += work.data[i*n+k] * work.data[i*n+k]
		}
		norm = math.Sqrt(norm)
		rdiag[k] = norm
		if norm == 0 {
			continue
		}
		alpha := -norm
		if work.data[k*n+k] < 0 {
			alpha = norm
		}
		v[k] = work.data[k*n+k] - alpha
		for i := k + 1; i < m; i++ {
			v[i] = work.data[i*n+k]
		}
		vnorm2 := VecNorm2Sq(v[k:m])
		if vnorm2 == 0 {
			continue
		}
		beta := 2 / vnorm2
		for j := k; j < n; j++ {
			var s float64
			for i := k; i < m; i++ {
				s += v[i] * work.data[i*n+j]
			}
			s *= beta
			for i := k; i < m; i++ {
				work.data[i*n+j] -= s * v[i]
			}
		}
		// Downdate remaining column norms.
		for j := k + 1; j < n; j++ {
			colNorm2[j] -= work.data[k*n+j] * work.data[k*n+j]
			if colNorm2[j] < 0 {
				colNorm2[j] = 0
			}
		}
	}
	return &QRCP{Perm: perm, RDiag: rdiag, NumRows: m, NumCols: n}
}

// Rank estimates the numerical rank using a relative tolerance on the
// R diagonal. A tol of 0 selects a default relative tolerance.
func (f *QRCP) Rank(tol float64) int {
	if len(f.RDiag) == 0 || f.RDiag[0] == 0 {
		return 0
	}
	if tol <= 0 {
		tol = 1e-10 * float64(maxInt(f.NumRows, f.NumCols))
	}
	r := 0
	for _, d := range f.RDiag {
		if d > tol*f.RDiag[0] {
			r++
		}
	}
	return r
}

// IndependentCols returns the indices (in original column numbering) of
// the k most independent columns discovered by the pivoting.
func (f *QRCP) IndependentCols(k int) []int {
	if k <= 0 || k > len(f.RDiag) {
		panic(fmt.Sprintf("mat: IndependentCols k=%d out of range 1..%d", k, len(f.RDiag)))
	}
	out := make([]int, k)
	copy(out, f.Perm[:k])
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
