package mat

// Toeplitz returns the n x n Toeplitz matrix whose first column is col and
// whose first row is row. col[0] must equal row[0].
func Toeplitz(col, row []float64) *Dense {
	if len(col) == 0 || len(row) == 0 || col[0] != row[0] {
		panic("mat: Toeplitz requires non-empty col/row with matching corner")
	}
	n := len(col)
	if len(row) != n {
		panic("mat: Toeplitz requires equal col and row lengths")
	}
	m := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i >= j {
				m.data[i*n+j] = col[i-j]
			} else {
				m.data[i*n+j] = row[j-i]
			}
		}
	}
	return m
}

// ToeplitzBand returns the n x n banded Toeplitz matrix with the given
// sub-diagonal, diagonal and super-diagonal constants. The paper's
// similarity matrix H = Toeplitz(-1, 1, 0) (Eqn 17) is
// ToeplitzBand(n, -1, 1, 0).
func ToeplitzBand(n int, sub, diag, super float64) *Dense {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = diag
		if i > 0 {
			m.data[i*n+i-1] = sub
		}
		if i < n-1 {
			m.data[i*n+i+1] = super
		}
	}
	return m
}
