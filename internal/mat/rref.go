package mat

import "math"

// RREFResult holds a reduced row echelon form and its pivot columns.
type RREFResult struct {
	R      *Dense // the RREF matrix
	Pivots []int  // pivot column indices, one per non-zero row
}

// RREF computes the reduced row echelon form of a with partial pivoting
// and a relative tolerance. The pivot columns of the RREF identify a
// maximum set of linearly independent columns of a — the paper's "maximum
// independent column (MIC) vectors" — because elementary row operations
// preserve column dependence relations.
//
// tol <= 0 selects a default relative tolerance scaled by the largest
// absolute entry of a.
func RREF(a *Dense, tol float64) *RREFResult {
	r := a.Clone()
	m, n := r.rows, r.cols
	if tol <= 0 {
		tol = 1e-10 * float64(maxInt(m, n))
	}
	scale := r.MaxAbs()
	if scale == 0 {
		return &RREFResult{R: r, Pivots: nil}
	}
	thresh := tol * scale

	var pivots []int
	row := 0
	for col := 0; col < n && row < m; col++ {
		// Find the largest entry in this column at or below row.
		p := row
		max := math.Abs(r.data[row*n+col])
		for i := row + 1; i < m; i++ {
			if v := math.Abs(r.data[i*n+col]); v > max {
				max, p = v, i
			}
		}
		if max <= thresh {
			// Column is (numerically) dependent on earlier pivots.
			for i := row; i < m; i++ {
				r.data[i*n+col] = 0
			}
			continue
		}
		if p != row {
			rp := r.data[p*n : (p+1)*n]
			rr := r.data[row*n : (row+1)*n]
			for j := range rp {
				rp[j], rr[j] = rr[j], rp[j]
			}
		}
		// Normalize the pivot row.
		piv := r.data[row*n+col]
		for j := col; j < n; j++ {
			r.data[row*n+j] /= piv
		}
		// Eliminate the column everywhere else.
		for i := 0; i < m; i++ {
			if i == row {
				continue
			}
			factor := r.data[i*n+col]
			if factor == 0 {
				continue
			}
			for j := col; j < n; j++ {
				r.data[i*n+j] -= factor * r.data[row*n+j]
			}
			r.data[i*n+col] = 0
		}
		pivots = append(pivots, col)
		row++
	}
	return &RREFResult{R: r, Pivots: pivots}
}
