package mat

import (
	"math"
	"math/rand"
	"testing"
)

func TestSVDKnownDiagonal(t *testing.T) {
	a := Diagonal([]float64{3, 1, 2})
	s := SingularValues(a)
	want := []float64{3, 2, 1}
	for i := range want {
		if math.Abs(s[i]-want[i]) > 1e-12 {
			t.Errorf("s[%d] = %v, want %v", i, s[i], want[i])
		}
	}
}

func TestSVDReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	shapes := []struct{ m, n int }{
		{4, 4}, {8, 3}, {3, 8}, {8, 94}, {6, 72}, {1, 5}, {5, 1},
	}
	for _, sh := range shapes {
		a := Random(sh.m, sh.n, rng)
		f := FactorSVD(a)
		if !f.Reconstruct().EqualApprox(a, 1e-9) {
			t.Errorf("%dx%d: U S Vᵀ != A", sh.m, sh.n)
		}
	}
}

func TestSVDOrthogonality(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	a := Random(6, 9, rng)
	f := FactorSVD(a)
	k := 6
	if !MulTA(f.U, f.U).EqualApprox(Identity(k), 1e-9) {
		t.Error("UᵀU != I")
	}
	if !MulTA(f.V, f.V).EqualApprox(Identity(k), 1e-9) {
		t.Error("VᵀV != I")
	}
}

func TestSVDSingularValuesSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a := Random(7, 5, rng)
	s := SingularValues(a)
	for i := 1; i < len(s); i++ {
		if s[i] > s[i-1]+1e-15 {
			t.Errorf("singular values not sorted: s[%d]=%v > s[%d]=%v", i, s[i], i-1, s[i-1])
		}
	}
	for _, v := range s {
		if v < 0 {
			t.Errorf("negative singular value %v", v)
		}
	}
}

func TestSVDMatchesFrobenius(t *testing.T) {
	// ||A||F² = sum of squared singular values.
	rng := rand.New(rand.NewSource(24))
	a := Random(5, 8, rng)
	s := SingularValues(a)
	var ssq float64
	for _, v := range s {
		ssq += v * v
	}
	if f := FrobeniusNormSq(a); math.Abs(ssq-f) > 1e-9*f {
		t.Errorf("sum s² = %v, ||A||F² = %v", ssq, f)
	}
}

func TestRankExactLowRank(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	tests := []struct {
		m, n, r int
	}{
		{8, 94, 3}, {8, 94, 8}, {10, 10, 1}, {6, 72, 5},
	}
	for _, tt := range tests {
		l := Random(tt.m, tt.r, rng)
		r := Random(tt.r, tt.n, rng)
		a := Mul(l, r)
		if got := Rank(a, 1e-8); got != tt.r {
			t.Errorf("Rank(%dx%d rank-%d) = %d", tt.m, tt.n, tt.r, got)
		}
	}
}

func TestTruncatedSVDIsBestApproximation(t *testing.T) {
	// Eckart-Young: error of the rank-k truncation equals
	// sqrt(sum of squared discarded singular values).
	rng := rand.New(rand.NewSource(26))
	a := Random(6, 10, rng)
	s := SingularValues(a)
	for k := 1; k < 6; k++ {
		ak := TruncatedSVD(a, k)
		var wantSq float64
		for _, v := range s[k:] {
			wantSq += v * v
		}
		got := FrobeniusNorm(SubM(a, ak))
		if math.Abs(got-math.Sqrt(wantSq)) > 1e-9 {
			t.Errorf("k=%d: ||A-Ak|| = %v, want %v", k, got, math.Sqrt(wantSq))
		}
	}
}

func TestTruncatedSVDFullRankIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	a := Random(4, 7, rng)
	if !TruncatedSVD(a, 10).EqualApprox(a, 1e-9) {
		t.Error("full-rank truncation != A")
	}
}

func TestCond(t *testing.T) {
	if got := Cond(Identity(4)); math.Abs(got-1) > 1e-12 {
		t.Errorf("Cond(I) = %v, want 1", got)
	}
	a := Diagonal([]float64{10, 1, 0.1})
	if got := Cond(a); math.Abs(got-100) > 1e-9 {
		t.Errorf("Cond = %v, want 100", got)
	}
	sing := NewFromRows([][]float64{{1, 1}, {1, 1}})
	if got := Cond(sing); !math.IsInf(got, 1) {
		t.Errorf("Cond(singular) = %v, want +Inf", got)
	}
}

func TestNuclearNorm(t *testing.T) {
	a := Diagonal([]float64{3, 2, 1})
	if got := NuclearNorm(a); math.Abs(got-6) > 1e-10 {
		t.Errorf("NuclearNorm = %v, want 6", got)
	}
}
