package mat

import (
	"fmt"
	"math"
)

// Cholesky holds a lower-triangular Cholesky factor: A = L*Lᵀ. The zero
// value is an empty factorization ready for Factor; refactoring through
// the same value reuses its storage.
type Cholesky struct {
	l       *Dense
	scratch []float64 // column gather buffer for SolveInto
}

// FactorCholesky computes the Cholesky factorization of the symmetric
// positive-definite matrix a. Only the lower triangle of a is read.
// ErrSingular is returned when a is not positive definite.
func FactorCholesky(a *Dense) (*Cholesky, error) {
	c := new(Cholesky)
	if err := c.Factor(a); err != nil {
		return nil, err
	}
	return c, nil
}

// Factor computes the factorization of a in place, reusing the
// receiver's storage when the dimensions match (the factor-into-
// workspace form: no allocation after the first call at a given size).
// On ErrSingular the previous factorization is destroyed.
func (c *Cholesky) Factor(a *Dense) error {
	if a.rows != a.cols {
		panic(fmt.Sprintf("mat: Cholesky Factor requires a square matrix, got %dx%d", a.rows, a.cols))
	}
	n := a.rows
	if c.l == nil || c.l.rows != n {
		c.l = New(n, n)
	}
	// Only the lower triangle is read back (the upper stays zero from
	// New and is never written), and every lower entry is overwritten,
	// so no clearing is needed on reuse.
	l := c.l
	for j := 0; j < n; j++ {
		ljrow := l.data[j*n : j*n+j]
		var d float64
		for _, v := range ljrow {
			d += v * v
		}
		d = a.data[j*n+j] - d
		if d <= 0 {
			return ErrSingular
		}
		ljj := math.Sqrt(d)
		l.data[j*n+j] = ljj
		for i := j + 1; i < n; i++ {
			lirow := l.data[i*n : i*n+j]
			var s float64
			for k, v := range lirow {
				s += v * ljrow[k]
			}
			l.data[i*n+j] = (a.data[i*n+j] - s) / ljj
		}
	}
	return nil
}

// SolveVec solves A*x = b using the factorization.
func (c *Cholesky) SolveVec(b []float64) []float64 {
	x := make([]float64, c.l.rows)
	c.SolveVecInto(x, b)
	return x
}

// SolveVecInto solves A*x = b, writing the solution into x. x may alias
// b.
func (c *Cholesky) SolveVecInto(x, b []float64) {
	n := c.l.rows
	if len(b) != n || len(x) != n {
		panic(fmt.Sprintf("mat: Cholesky SolveVecInto lengths %d/%d, want %d", len(x), len(b), n))
	}
	copy(x, b)
	// Forward: L*y = b.
	for i := 0; i < n; i++ {
		lrow := c.l.data[i*n : i*n+i]
		var s float64
		for j, v := range lrow {
			s += v * x[j]
		}
		x[i] = (x[i] - s) / c.l.data[i*n+i]
	}
	// Backward: Lᵀ*x = y.
	for i := n - 1; i >= 0; i-- {
		var s float64
		for j := i + 1; j < n; j++ {
			s += c.l.data[j*n+i] * x[j]
		}
		x[i] = (x[i] - s) / c.l.data[i*n+i]
	}
}

// Solve solves A*X = B column by column.
func (c *Cholesky) Solve(b *Dense) *Dense {
	return c.SolveInto(New(b.rows, b.cols), b)
}

// SolveInto solves A*X = B column by column into dst, allocating nothing
// after the first call at a given size. dst may alias b.
func (c *Cholesky) SolveInto(dst, b *Dense) *Dense {
	n := c.l.rows
	if b.rows != n {
		panic(fmt.Sprintf("mat: Cholesky SolveInto dimension mismatch %d vs %d", b.rows, n))
	}
	checkSameDims("SolveInto", dst, b)
	if len(c.scratch) < n {
		c.scratch = make([]float64, n)
	}
	col := c.scratch[:n]
	for j := 0; j < b.cols; j++ {
		for i := 0; i < n; i++ {
			col[i] = b.data[i*b.cols+j]
		}
		c.SolveVecInto(col, col)
		for i := 0; i < n; i++ {
			dst.data[i*dst.cols+j] = col[i]
		}
	}
	return dst
}

// L returns a copy of the lower-triangular factor.
func (c *Cholesky) L() *Dense { return c.l.Clone() }

// SolveSPD solves the symmetric positive-definite system a*x = b, falling
// back to LU if a is not numerically positive definite.
func SolveSPD(a *Dense, b []float64) ([]float64, error) {
	var s SPDSolver
	x := make([]float64, len(b))
	if err := s.SolveVecInto(x, a, b); err != nil {
		return nil, err
	}
	return x, nil
}

// SPDSolver is a reusable factor-and-solve for symmetric positive-
// definite normal equations: it owns the Cholesky workspace, so repeated
// solves at one size (the per-row/per-column ALS solves) allocate
// nothing. The zero value is ready to use.
type SPDSolver struct {
	chol Cholesky
}

// SolveVecInto factors a and solves a*x = b into x, falling back to LU
// (which allocates) if a is not numerically positive definite. x may
// alias b.
func (s *SPDSolver) SolveVecInto(x []float64, a *Dense, b []float64) error {
	if err := s.chol.Factor(a); err == nil {
		s.chol.SolveVecInto(x, b)
		return nil
	}
	y, err := Solve(a, b)
	if err != nil {
		return err
	}
	copy(x, y)
	return nil
}

// SolveSymVecInto is SolveVecInto for callers that filled only the
// lower triangle of a (the Cholesky path never reads the upper one).
// The rare non-SPD fallback mirrors the lower triangle up before the LU
// solve.
func (s *SPDSolver) SolveSymVecInto(x []float64, a *Dense, b []float64) error {
	if err := s.chol.Factor(a); err == nil {
		s.chol.SolveVecInto(x, b)
		return nil
	}
	n := a.rows
	for c := 0; c < n; c++ {
		for d := c + 1; d < n; d++ {
			a.data[c*n+d] = a.data[d*n+c]
		}
	}
	y, err := Solve(a, b)
	if err != nil {
		return err
	}
	copy(x, y)
	return nil
}
