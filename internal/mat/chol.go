package mat

import (
	"fmt"
	"math"
)

// Cholesky holds a lower-triangular Cholesky factor: A = L*Lᵀ.
type Cholesky struct {
	l *Dense
}

// FactorCholesky computes the Cholesky factorization of the symmetric
// positive-definite matrix a. Only the lower triangle of a is read.
// ErrSingular is returned when a is not positive definite.
func FactorCholesky(a *Dense) (*Cholesky, error) {
	if a.rows != a.cols {
		panic(fmt.Sprintf("mat: FactorCholesky requires a square matrix, got %dx%d", a.rows, a.cols))
	}
	n := a.rows
	l := New(n, n)
	for j := 0; j < n; j++ {
		var d float64
		for k := 0; k < j; k++ {
			d += l.data[j*n+k] * l.data[j*n+k]
		}
		d = a.data[j*n+j] - d
		if d <= 0 {
			return nil, ErrSingular
		}
		ljj := math.Sqrt(d)
		l.data[j*n+j] = ljj
		for i := j + 1; i < n; i++ {
			var s float64
			for k := 0; k < j; k++ {
				s += l.data[i*n+k] * l.data[j*n+k]
			}
			l.data[i*n+j] = (a.data[i*n+j] - s) / ljj
		}
	}
	return &Cholesky{l: l}, nil
}

// SolveVec solves A*x = b using the factorization.
func (c *Cholesky) SolveVec(b []float64) []float64 {
	n := c.l.rows
	if len(b) != n {
		panic(fmt.Sprintf("mat: Cholesky SolveVec length %d, want %d", len(b), n))
	}
	x := make([]float64, n)
	copy(x, b)
	// Forward: L*y = b.
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < i; j++ {
			s += c.l.data[i*n+j] * x[j]
		}
		x[i] = (x[i] - s) / c.l.data[i*n+i]
	}
	// Backward: Lᵀ*x = y.
	for i := n - 1; i >= 0; i-- {
		var s float64
		for j := i + 1; j < n; j++ {
			s += c.l.data[j*n+i] * x[j]
		}
		x[i] = (x[i] - s) / c.l.data[i*n+i]
	}
	return x
}

// Solve solves A*X = B column by column.
func (c *Cholesky) Solve(b *Dense) *Dense {
	out := New(b.rows, b.cols)
	for j := 0; j < b.cols; j++ {
		out.SetCol(j, c.SolveVec(b.Col(j)))
	}
	return out
}

// L returns a copy of the lower-triangular factor.
func (c *Cholesky) L() *Dense { return c.l.Clone() }

// SolveSPD solves the symmetric positive-definite system a*x = b, falling
// back to LU if a is not numerically positive definite.
func SolveSPD(a *Dense, b []float64) ([]float64, error) {
	if c, err := FactorCholesky(a); err == nil {
		return c.SolveVec(b), nil
	}
	return Solve(a, b)
}
