package mat

import "fmt"

// This file holds the destination-passing ("Into") kernel layer: every
// kernel writes its result into a caller-owned matrix and allocates
// nothing, so hot loops (the ALS reconstruction sweeps, the LRR
// iteration) can run against reusable buffers from a Workspace.
//
// Aliasing rules:
//
//   - element-wise kernels (AddInto, SubInto, ScaleInto, HadamardInto,
//     AddScaledInto, CopyInto) allow dst to alias either operand;
//   - multiply and transpose kernels (MulInto, MulTAInto, MulTBInto,
//     MulSparseInto, TransposeInto) require dst to be distinct from both
//     operands and panic when dst shares a backing array with one.
//
// Each kernel returns dst for call chaining.

// mulBlockK is the middle-dimension tile of the blocked multiply
// kernels: a tile of b rows (mulBlockK x cols) is kept hot in cache
// across the rows of a. Tiles are walked in increasing k order, so the
// per-element accumulation order — and therefore the floating-point
// result — is identical to the naive i-k-j loop.
const mulBlockK = 128

func checkNoAlias(op string, dst, a *Dense) {
	if len(dst.data) > 0 && len(a.data) > 0 && &dst.data[0] == &a.data[0] {
		panic(fmt.Sprintf("mat: %s destination aliases an operand", op))
	}
}

// CopyInto copies a into dst (the chainable spelling of Dense.CopyFrom).
func CopyInto(dst, a *Dense) *Dense {
	dst.CopyFrom(a)
	return dst
}

// AddInto computes dst = a + b. dst may alias a or b.
func AddInto(dst, a, b *Dense) *Dense {
	checkSameDims("AddInto", a, b)
	checkSameDims("AddInto", dst, a)
	for i, av := range a.data {
		dst.data[i] = av + b.data[i]
	}
	return dst
}

// SubInto computes dst = a - b. dst may alias a or b.
func SubInto(dst, a, b *Dense) *Dense {
	checkSameDims("SubInto", a, b)
	checkSameDims("SubInto", dst, a)
	for i, av := range a.data {
		dst.data[i] = av - b.data[i]
	}
	return dst
}

// ScaleInto computes dst = s * a. dst may alias a.
func ScaleInto(dst *Dense, s float64, a *Dense) *Dense {
	checkSameDims("ScaleInto", dst, a)
	for i, av := range a.data {
		dst.data[i] = s * av
	}
	return dst
}

// HadamardInto computes the element-wise product dst = a .* b. dst may
// alias a or b.
func HadamardInto(dst, a, b *Dense) *Dense {
	checkSameDims("HadamardInto", a, b)
	checkSameDims("HadamardInto", dst, a)
	for i, av := range a.data {
		dst.data[i] = av * b.data[i]
	}
	return dst
}

// AddScaledInto computes dst += s * a (the matrix axpy). dst may alias a.
func AddScaledInto(dst *Dense, s float64, a *Dense) *Dense {
	checkSameDims("AddScaledInto", dst, a)
	for i, av := range a.data {
		dst.data[i] += s * av
	}
	return dst
}

// MulInto computes dst = a * b with a cache-blocked, branch-free dense
// kernel. For genuinely sparse operands (0/1 masks) use MulSparseInto,
// which skips zero entries of a.
func MulInto(dst, a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mat: MulInto dimension mismatch %dx%d * %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	if dst.rows != a.rows || dst.cols != b.cols {
		panic(fmt.Sprintf("mat: MulInto destination is %dx%d, want %dx%d", dst.rows, dst.cols, a.rows, b.cols))
	}
	checkNoAlias("MulInto", dst, a)
	checkNoAlias("MulInto", dst, b)
	for i := range dst.data {
		dst.data[i] = 0
	}
	// k-blocked i-k-j order: the inner loop is contiguous for both b and
	// dst, and a mulBlockK-row tile of b stays cache-hot across all rows
	// of a. k increases monotonically per output element, so results are
	// bit-identical to the unblocked loop.
	for k0 := 0; k0 < a.cols; k0 += mulBlockK {
		k1 := k0 + mulBlockK
		if k1 > a.cols {
			k1 = a.cols
		}
		for i := 0; i < a.rows; i++ {
			arow := a.data[i*a.cols : (i+1)*a.cols]
			orow := dst.data[i*dst.cols : (i+1)*dst.cols]
			for k := k0; k < k1; k++ {
				av := arow[k]
				brow := b.data[k*b.cols : (k+1)*b.cols]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	}
	return dst
}

// MulSparseInto computes dst = a * b, skipping zero entries of a. It is
// the masked-multiply kernel for operands that are genuinely sparse —
// 0/1 index masks, banded difference operators — where skipping beats
// the branch-free dense tile. Results equal MulInto for finite inputs.
func MulSparseInto(dst, a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mat: MulSparseInto dimension mismatch %dx%d * %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	if dst.rows != a.rows || dst.cols != b.cols {
		panic(fmt.Sprintf("mat: MulSparseInto destination is %dx%d, want %dx%d", dst.rows, dst.cols, a.rows, b.cols))
	}
	checkNoAlias("MulSparseInto", dst, a)
	checkNoAlias("MulSparseInto", dst, b)
	for i := range dst.data {
		dst.data[i] = 0
	}
	for i := 0; i < a.rows; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		orow := dst.data[i*dst.cols : (i+1)*dst.cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return dst
}

// MulTAInto computes dst = aᵀ * b without materializing the transpose.
func MulTAInto(dst, a, b *Dense) *Dense {
	if a.rows != b.rows {
		panic(fmt.Sprintf("mat: MulTAInto dimension mismatch %dx%d ᵀ* %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	if dst.rows != a.cols || dst.cols != b.cols {
		panic(fmt.Sprintf("mat: MulTAInto destination is %dx%d, want %dx%d", dst.rows, dst.cols, a.cols, b.cols))
	}
	checkNoAlias("MulTAInto", dst, a)
	checkNoAlias("MulTAInto", dst, b)
	for i := range dst.data {
		dst.data[i] = 0
	}
	for k := 0; k < a.rows; k++ {
		arow := a.data[k*a.cols : (k+1)*a.cols]
		brow := b.data[k*b.cols : (k+1)*b.cols]
		for i, av := range arow {
			orow := dst.data[i*dst.cols : (i+1)*dst.cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return dst
}

// MulTBInto computes dst = a * bᵀ without materializing the transpose.
func MulTBInto(dst, a, b *Dense) *Dense {
	if a.cols != b.cols {
		panic(fmt.Sprintf("mat: MulTBInto dimension mismatch %dx%d *ᵀ %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	if dst.rows != a.rows || dst.cols != b.rows {
		panic(fmt.Sprintf("mat: MulTBInto destination is %dx%d, want %dx%d", dst.rows, dst.cols, a.rows, b.rows))
	}
	checkNoAlias("MulTBInto", dst, a)
	checkNoAlias("MulTBInto", dst, b)
	for i := 0; i < a.rows; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		for j := 0; j < b.rows; j++ {
			brow := b.data[j*b.cols : (j+1)*b.cols]
			var s float64
			for k, av := range arow {
				s += av * brow[k]
			}
			dst.data[i*dst.cols+j] = s
		}
	}
	return dst
}

// TransposeInto computes dst = aᵀ.
func TransposeInto(dst, a *Dense) *Dense {
	if dst.rows != a.cols || dst.cols != a.rows {
		panic(fmt.Sprintf("mat: TransposeInto destination is %dx%d, want %dx%d", dst.rows, dst.cols, a.cols, a.rows))
	}
	checkNoAlias("TransposeInto", dst, a)
	for i := 0; i < a.rows; i++ {
		for j := 0; j < a.cols; j++ {
			dst.data[j*dst.cols+i] = a.data[i*a.cols+j]
		}
	}
	return dst
}

// SelectColsInto copies the columns of a listed in idx, in order, into
// dst, which must be a.rows x len(idx).
func SelectColsInto(dst, a *Dense, idx []int) *Dense {
	if len(idx) == 0 {
		panic("mat: SelectColsInto requires at least one column")
	}
	if dst.rows != a.rows || dst.cols != len(idx) {
		panic(fmt.Sprintf("mat: SelectColsInto destination is %dx%d, want %dx%d", dst.rows, dst.cols, a.rows, len(idx)))
	}
	checkNoAlias("SelectColsInto", dst, a)
	for k, j := range idx {
		a.checkIndex(0, j)
		for i := 0; i < a.rows; i++ {
			dst.data[i*dst.cols+k] = a.data[i*a.cols+j]
		}
	}
	return dst
}
