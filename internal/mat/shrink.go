package mat

import "math"

// SVT applies singular value thresholding: the proximal operator of the
// nuclear norm. It returns U * max(S - tau, 0) * Vᵀ, the solution of
//
//	argmin_X  tau*||X||_* + 1/2*||X - a||_F²
//
// which is the J-subproblem of the inexact-ALM solver for low-rank
// representation (Eqn 12 of the paper).
func SVT(a *Dense, tau float64) *Dense {
	return SVTInto(New(a.rows, a.cols), a, tau)
}

// SVTInto writes the singular value thresholding of a into dst. dst must
// not alias a. The SVD itself still allocates; only the reconstruction
// reuses dst.
func SVTInto(dst, a *Dense, tau float64) *Dense {
	checkSameDims("SVTInto", dst, a)
	checkNoAlias("SVTInto", dst, a)
	f := FactorSVD(a)
	for i := range dst.data {
		dst.data[i] = 0
	}
	uc, vc := f.U.cols, f.V.cols
	for t, sv := range f.S {
		shrunk := sv - tau
		if shrunk <= 0 {
			break // singular values are sorted; all later ones shrink to 0
		}
		for i := 0; i < a.rows; i++ {
			ui := f.U.data[i*uc+t]
			if ui == 0 {
				continue
			}
			scale := shrunk * ui
			row := dst.data[i*a.cols : (i+1)*a.cols]
			for j := 0; j < a.cols; j++ {
				row[j] += scale * f.V.data[j*vc+t]
			}
		}
	}
	return dst
}

// ShrinkColumns21 applies the proximal operator of tau*||.||_{2,1}: each
// column c of a is scaled by max(0, 1 - tau/||c||₂). Columns with norm
// below tau collapse to zero. This is the E-subproblem of the inexact-ALM
// solver for low-rank representation.
func ShrinkColumns21(a *Dense, tau float64) *Dense {
	return ShrinkColumns21Into(New(a.rows, a.cols), a, tau)
}

// ShrinkColumns21Into writes the column-wise l2,1 shrinkage of a into
// dst. dst may alias a.
func ShrinkColumns21Into(dst, a *Dense, tau float64) *Dense {
	checkSameDims("ShrinkColumns21Into", dst, a)
	for j := 0; j < a.cols; j++ {
		var norm float64
		for i := 0; i < a.rows; i++ {
			v := a.data[i*a.cols+j]
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm <= tau {
			for i := 0; i < a.rows; i++ {
				dst.data[i*a.cols+j] = 0
			}
			continue
		}
		scale := (norm - tau) / norm
		for i := 0; i < a.rows; i++ {
			dst.data[i*a.cols+j] = a.data[i*a.cols+j] * scale
		}
	}
	return dst
}

// SoftThreshold applies element-wise soft thresholding
// sign(v) * max(|v| - tau, 0), the proximal operator of the l1 norm.
func SoftThreshold(a *Dense, tau float64) *Dense {
	out := New(a.rows, a.cols)
	for i, v := range a.data {
		switch {
		case v > tau:
			out.data[i] = v - tau
		case v < -tau:
			out.data[i] = v + tau
		}
	}
	return out
}
