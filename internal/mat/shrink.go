package mat

import "math"

// SVT applies singular value thresholding: the proximal operator of the
// nuclear norm. It returns U * max(S - tau, 0) * Vᵀ, the solution of
//
//	argmin_X  tau*||X||_* + 1/2*||X - a||_F²
//
// which is the J-subproblem of the inexact-ALM solver for low-rank
// representation (Eqn 12 of the paper).
func SVT(a *Dense, tau float64) *Dense {
	f := FactorSVD(a)
	out := New(a.rows, a.cols)
	for t, sv := range f.S {
		shrunk := sv - tau
		if shrunk <= 0 {
			break // singular values are sorted; all later ones shrink to 0
		}
		ut := f.U.Col(t)
		vt := f.V.Col(t)
		for i := 0; i < a.rows; i++ {
			if ut[i] == 0 {
				continue
			}
			scale := shrunk * ut[i]
			row := out.data[i*a.cols : (i+1)*a.cols]
			for j := 0; j < a.cols; j++ {
				row[j] += scale * vt[j]
			}
		}
	}
	return out
}

// ShrinkColumns21 applies the proximal operator of tau*||.||_{2,1}: each
// column c of a is scaled by max(0, 1 - tau/||c||₂). Columns with norm
// below tau collapse to zero. This is the E-subproblem of the inexact-ALM
// solver for low-rank representation.
func ShrinkColumns21(a *Dense, tau float64) *Dense {
	out := New(a.rows, a.cols)
	for j := 0; j < a.cols; j++ {
		var norm float64
		for i := 0; i < a.rows; i++ {
			v := a.data[i*a.cols+j]
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm <= tau {
			continue
		}
		scale := (norm - tau) / norm
		for i := 0; i < a.rows; i++ {
			out.data[i*a.cols+j] = a.data[i*a.cols+j] * scale
		}
	}
	return out
}

// SoftThreshold applies element-wise soft thresholding
// sign(v) * max(|v| - tau, 0), the proximal operator of the l1 norm.
func SoftThreshold(a *Dense, tau float64) *Dense {
	out := New(a.rows, a.cols)
	for i, v := range a.data {
		switch {
		case v > tau:
			out.data[i] = v - tau
		case v < -tau:
			out.data[i] = v + tau
		}
	}
	return out
}
