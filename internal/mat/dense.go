// Package mat provides the dense linear-algebra substrate used by iUpdater:
// matrix arithmetic, norms, LU/QR/Cholesky factorizations, a one-sided
// Jacobi SVD, reduced row echelon form, and the proximal operators
// (singular-value thresholding, l2,1 shrinkage) needed by the low-rank
// representation solver.
//
// Matrices are small in this domain (at most a few hundred rows or columns:
// the fingerprint matrix is M links x N locations with M <= 8 and
// N <= 120), so the package favors simple, numerically robust algorithms
// over blocked high-performance kernels.
//
// Following the convention of established Go linear-algebra libraries,
// dimension mismatches and out-of-range indices are programmer errors and
// panic; data-dependent failures (singular systems, non-convergence) are
// reported as errors.
package mat

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// Dense is a row-major dense matrix of float64 values.
type Dense struct {
	rows, cols int
	data       []float64
}

// New returns a zero-initialized r x c matrix.
func New(r, c int) *Dense {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("mat: non-positive dimensions %dx%d", r, c))
	}
	return &Dense{rows: r, cols: c, data: make([]float64, r*c)}
}

// NewFromData returns an r x c matrix backed by a copy of data, which must
// hold exactly r*c values in row-major order.
func NewFromData(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: data length %d does not match %dx%d", len(data), r, c))
	}
	m := New(r, c)
	copy(m.data, data)
	return m
}

// NewFromRows returns a matrix whose i-th row is rows[i]. All rows must
// have equal, non-zero length.
func NewFromRows(rows [][]float64) *Dense {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("mat: NewFromRows requires a non-empty row set")
	}
	c := len(rows[0])
	m := New(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("mat: ragged rows: row %d has %d entries, want %d", i, len(row), c))
		}
		copy(m.data[i*c:(i+1)*c], row)
	}
	return m
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Dense {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Diagonal returns a square matrix with d on its main diagonal.
func Diagonal(d []float64) *Dense {
	n := len(d)
	m := New(n, n)
	for i, v := range d {
		m.data[i*n+i] = v
	}
	return m
}

// Random returns an r x c matrix with entries drawn uniformly from
// [-1, 1) using rng.
func Random(r, c int, rng *rand.Rand) *Dense {
	m := New(r, c)
	for i := range m.data {
		m.data[i] = 2*rng.Float64() - 1
	}
	return m
}

// RandomNormal returns an r x c matrix with standard normal entries.
func RandomNormal(r, c int, rng *rand.Rand) *Dense {
	m := New(r, c)
	for i := range m.data {
		m.data[i] = rng.NormFloat64()
	}
	return m
}

// Dims returns the row and column counts.
func (m *Dense) Dims() (r, c int) { return m.rows, m.cols }

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 {
	m.checkIndex(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns v to the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) {
	m.checkIndex(i, j)
	m.data[i*m.cols+j] = v
}

// Add adds v to the element at row i, column j.
func (m *Dense) Add(i, j int, v float64) {
	m.checkIndex(i, j)
	m.data[i*m.cols+j] += v
}

func (m *Dense) checkIndex(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range for %dx%d matrix", i, j, m.rows, m.cols))
	}
}

// Row returns a copy of row i.
func (m *Dense) Row(i int) []float64 {
	m.checkIndex(i, 0)
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Col returns a copy of column j.
func (m *Dense) Col(j int) []float64 {
	m.checkIndex(0, j)
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// SetRow copies v into row i.
func (m *Dense) SetRow(i int, v []float64) {
	m.checkIndex(i, 0)
	if len(v) != m.cols {
		panic(fmt.Sprintf("mat: SetRow length %d, want %d", len(v), m.cols))
	}
	copy(m.data[i*m.cols:(i+1)*m.cols], v)
}

// SetCol copies v into column j.
func (m *Dense) SetCol(j int, v []float64) {
	m.checkIndex(0, j)
	if len(v) != m.rows {
		panic(fmt.Sprintf("mat: SetCol length %d, want %d", len(v), m.rows))
	}
	for i := 0; i < m.rows; i++ {
		m.data[i*m.cols+j] = v[i]
	}
}

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	out := New(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// CopyFrom overwrites m with the contents of src, which must have the same
// dimensions.
func (m *Dense) CopyFrom(src *Dense) {
	if m.rows != src.rows || m.cols != src.cols {
		panic(fmt.Sprintf("mat: CopyFrom dimension mismatch %dx%d vs %dx%d", m.rows, m.cols, src.rows, src.cols))
	}
	copy(m.data, src.data)
}

// T returns a newly allocated transpose of m.
func (m *Dense) T() *Dense {
	out := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.data[j*out.cols+i] = m.data[i*m.cols+j]
		}
	}
	return out
}

// Submatrix returns a copy of the block with rows [r0, r1) and columns
// [c0, c1).
func (m *Dense) Submatrix(r0, r1, c0, c1 int) *Dense {
	if r0 < 0 || r1 > m.rows || c0 < 0 || c1 > m.cols || r0 >= r1 || c0 >= c1 {
		panic(fmt.Sprintf("mat: invalid submatrix [%d:%d, %d:%d] of %dx%d", r0, r1, c0, c1, m.rows, m.cols))
	}
	out := New(r1-r0, c1-c0)
	for i := r0; i < r1; i++ {
		copy(out.data[(i-r0)*out.cols:(i-r0+1)*out.cols], m.data[i*m.cols+c0:i*m.cols+c1])
	}
	return out
}

// SelectCols returns a copy of the columns of m listed in idx, in order.
func (m *Dense) SelectCols(idx []int) *Dense {
	if len(idx) == 0 {
		panic("mat: SelectCols requires at least one column")
	}
	out := New(m.rows, len(idx))
	for k, j := range idx {
		m.checkIndex(0, j)
		for i := 0; i < m.rows; i++ {
			out.data[i*out.cols+k] = m.data[i*m.cols+j]
		}
	}
	return out
}

// SelectRows returns a copy of the rows of m listed in idx, in order.
func (m *Dense) SelectRows(idx []int) *Dense {
	if len(idx) == 0 {
		panic("mat: SelectRows requires at least one row")
	}
	out := New(len(idx), m.cols)
	for k, i := range idx {
		m.checkIndex(i, 0)
		copy(out.data[k*out.cols:(k+1)*out.cols], m.data[i*m.cols:(i+1)*m.cols])
	}
	return out
}

// Equal reports whether m and n have identical dimensions and elements.
func (m *Dense) Equal(n *Dense) bool {
	if m.rows != n.rows || m.cols != n.cols {
		return false
	}
	for i, v := range m.data {
		if v != n.data[i] {
			return false
		}
	}
	return true
}

// EqualApprox reports whether m and n have identical dimensions and all
// elements within tol of each other.
func (m *Dense) EqualApprox(n *Dense, tol float64) bool {
	if m.rows != n.rows || m.cols != n.cols {
		return false
	}
	for i, v := range m.data {
		if math.Abs(v-n.data[i]) > tol {
			return false
		}
	}
	return true
}

// IsFinite reports whether every element is finite (no NaN or Inf).
func (m *Dense) IsFinite() bool {
	for _, v := range m.data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// RawData returns the underlying row-major backing slice. Mutating the
// returned slice mutates the matrix; callers that need isolation should
// Clone first.
func (m *Dense) RawData() []float64 { return m.data }

// String renders the matrix for debugging.
func (m *Dense) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%dx%d\n", m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "% .4f", m.data[i*m.cols+j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
