package mat

import (
	"math"
	"sort"
)

// SVD holds a thin singular value decomposition A = U * diag(S) * Vᵀ with
// A of size m x n, U of size m x k, V of size n x k and k = min(m, n).
// Singular values are sorted in non-increasing order.
type SVD struct {
	U *Dense
	S []float64
	V *Dense
}

const (
	svdMaxSweeps = 60
	svdTol       = 1e-12
)

// FactorSVD computes the thin SVD of a using one-sided Jacobi rotations.
// One-sided Jacobi is slow for huge matrices but extremely robust and
// accurate; fingerprint matrices here are at most 8 x 120, where it is
// more than fast enough.
func FactorSVD(a *Dense) *SVD {
	m, n := a.rows, a.cols
	if m >= n {
		u, s, v := jacobiSVD(a)
		return &SVD{U: u, S: s, V: v}
	}
	// For wide matrices run on the transpose and swap U and V.
	u, s, v := jacobiSVD(a.T())
	return &SVD{U: v, S: s, V: u}
}

// jacobiSVD computes the thin SVD of a tall (m >= n) matrix via one-sided
// Jacobi: orthogonalize the columns of a working copy W = A*V by plane
// rotations; at convergence the column norms are the singular values.
func jacobiSVD(a *Dense) (u *Dense, s []float64, v *Dense) {
	m, n := a.rows, a.cols
	w := a.Clone()
	v = Identity(n)

	for sweep := 0; sweep < svdMaxSweeps; sweep++ {
		off := 0.0
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				// Compute the 2x2 Gram block for columns p, q.
				var app, aqq, apq float64
				for i := 0; i < m; i++ {
					wp := w.data[i*n+p]
					wq := w.data[i*n+q]
					app += wp * wp
					aqq += wq * wq
					apq += wp * wq
				}
				if math.Abs(apq) <= svdTol*math.Sqrt(app*aqq) {
					continue
				}
				off += apq * apq
				// Jacobi rotation that zeroes the off-diagonal entry.
				tau := (aqq - app) / (2 * apq)
				var t float64
				if tau >= 0 {
					t = 1 / (tau + math.Sqrt(1+tau*tau))
				} else {
					t = -1 / (-tau + math.Sqrt(1+tau*tau))
				}
				c := 1 / math.Sqrt(1+t*t)
				sn := c * t
				for i := 0; i < m; i++ {
					wp := w.data[i*n+p]
					wq := w.data[i*n+q]
					w.data[i*n+p] = c*wp - sn*wq
					w.data[i*n+q] = sn*wp + c*wq
				}
				for i := 0; i < n; i++ {
					vp := v.data[i*n+p]
					vq := v.data[i*n+q]
					v.data[i*n+p] = c*vp - sn*vq
					v.data[i*n+q] = sn*vp + c*vq
				}
			}
		}
		if off == 0 {
			break
		}
	}

	// Extract singular values and left vectors.
	s = make([]float64, n)
	u = New(m, n)
	type col struct {
		norm float64
		idx  int
	}
	cols := make([]col, n)
	for j := 0; j < n; j++ {
		var norm float64
		for i := 0; i < m; i++ {
			norm += w.data[i*n+j] * w.data[i*n+j]
		}
		cols[j] = col{norm: math.Sqrt(norm), idx: j}
	}
	sort.Slice(cols, func(i, j int) bool { return cols[i].norm > cols[j].norm })

	vsorted := New(n, n)
	for k, cj := range cols {
		s[k] = cj.norm
		j := cj.idx
		if cj.norm > 0 {
			inv := 1 / cj.norm
			for i := 0; i < m; i++ {
				u.data[i*n+k] = w.data[i*n+j] * inv
			}
		}
		for i := 0; i < n; i++ {
			vsorted.data[i*n+k] = v.data[i*n+j]
		}
	}
	return u, s, vsorted
}

// SingularValues returns the singular values of a in non-increasing order.
func SingularValues(a *Dense) []float64 {
	return FactorSVD(a).S
}

// Rank returns the numerical rank of a: the number of singular values
// above tol * s_max. A tol of 0 selects a default relative tolerance.
func Rank(a *Dense, tol float64) int {
	s := SingularValues(a)
	if len(s) == 0 || s[0] == 0 {
		return 0
	}
	if tol <= 0 {
		tol = 1e-10 * float64(maxInt(a.rows, a.cols))
	}
	r := 0
	for _, v := range s {
		if v > tol*s[0] {
			r++
		}
	}
	return r
}

// Cond returns the 2-norm condition number s_max / s_min of a.
// It returns +Inf when the smallest singular value is zero.
func Cond(a *Dense) float64 {
	s := SingularValues(a)
	if s[len(s)-1] == 0 {
		return math.Inf(1)
	}
	return s[0] / s[len(s)-1]
}

// TruncatedSVD returns the best rank-k approximation of a:
// sum of the k leading singular triplets.
func TruncatedSVD(a *Dense, k int) *Dense {
	f := FactorSVD(a)
	if k > len(f.S) {
		k = len(f.S)
	}
	out := New(a.rows, a.cols)
	for t := 0; t < k; t++ {
		if f.S[t] == 0 {
			break
		}
		ut := f.U.Col(t)
		vt := f.V.Col(t)
		for i := 0; i < a.rows; i++ {
			if ut[i] == 0 {
				continue
			}
			scale := f.S[t] * ut[i]
			row := out.data[i*a.cols : (i+1)*a.cols]
			for j := 0; j < a.cols; j++ {
				row[j] += scale * vt[j]
			}
		}
	}
	return out
}

// Reconstruct rebuilds U * diag(S) * Vᵀ from the decomposition.
func (d *SVD) Reconstruct() *Dense {
	us := d.U.Clone()
	for j, sv := range d.S {
		for i := 0; i < us.rows; i++ {
			us.data[i*us.cols+j] *= sv
		}
	}
	return MulTB(us, d.V)
}
