package mat

import (
	"math"
	"math/rand"
	"testing"
)

func TestLUSolveKnownSystem(t *testing.T) {
	a := NewFromRows([][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	})
	b := []float64{8, -11, -3}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-12 {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestLUSolveRandomResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(8)
		a := Random(n, n, rng)
		// Diagonal dominance guarantees non-singularity.
		for i := 0; i < n; i++ {
			a.Add(i, i, float64(n))
		}
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		b := MulVec(a, xTrue)
		x, err := Solve(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range x {
			if math.Abs(x[i]-xTrue[i]) > 1e-9 {
				t.Fatalf("trial %d: x[%d] = %v, want %v", trial, i, x[i], xTrue[i])
			}
		}
	}
}

func TestLUSingular(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, []float64{1, 2}); err == nil {
		t.Error("Solve on singular matrix returned nil error")
	}
}

func TestInverse(t *testing.T) {
	a := NewFromRows([][]float64{{4, 7}, {2, 6}})
	inv, err := Inverse(a)
	if err != nil {
		t.Fatalf("Inverse: %v", err)
	}
	if !Mul(a, inv).EqualApprox(Identity(2), 1e-12) {
		t.Error("A*A⁻¹ != I")
	}
	if !Mul(inv, a).EqualApprox(Identity(2), 1e-12) {
		t.Error("A⁻¹*A != I")
	}
}

func TestDet(t *testing.T) {
	tests := []struct {
		name string
		m    *Dense
		want float64
	}{
		{"identity", Identity(3), 1},
		{"2x2", NewFromRows([][]float64{{1, 2}, {3, 4}}), -2},
		{"singular", NewFromRows([][]float64{{1, 2}, {2, 4}}), 0},
		{"diag", Diagonal([]float64{2, 3, 4}), 24},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Det(tt.m); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Det = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestCholeskySolve(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(8)
		g := Random(n, n, rng)
		// AᵀA + I is symmetric positive definite.
		a := AddM(MulTA(g, g), Identity(n))
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		b := MulVec(a, xTrue)
		c, err := FactorCholesky(a)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		x := c.SolveVec(b)
		for i := range x {
			if math.Abs(x[i]-xTrue[i]) > 1e-8 {
				t.Fatalf("trial %d: x[%d] = %v, want %v", trial, i, x[i], xTrue[i])
			}
		}
	}
}

func TestCholeskyFactorReconstructs(t *testing.T) {
	a := NewFromRows([][]float64{
		{4, 12, -16},
		{12, 37, -43},
		{-16, -43, 98},
	})
	c, err := FactorCholesky(a)
	if err != nil {
		t.Fatalf("FactorCholesky: %v", err)
	}
	l := c.L()
	if !MulTB(l, l).EqualApprox(a, 1e-10) {
		t.Error("L*Lᵀ != A")
	}
	// Known factor for this classic example.
	wantL := NewFromRows([][]float64{{2, 0, 0}, {6, 1, 0}, {-8, 5, 3}})
	if !l.EqualApprox(wantL, 1e-10) {
		t.Errorf("L =\n%vwant\n%v", l, wantL)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := FactorCholesky(a); err == nil {
		t.Error("FactorCholesky accepted an indefinite matrix")
	}
}

func TestQRReconstructionAndOrthogonality(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		m := 3 + rng.Intn(8)
		n := 1 + rng.Intn(m)
		a := Random(m, n, rng)
		f := FactorQR(a)
		q, r := f.Q(), f.R()
		if !Mul(q, r).EqualApprox(a, 1e-10) {
			t.Fatalf("trial %d: QR != A", trial)
		}
		if !MulTA(q, q).EqualApprox(Identity(n), 1e-10) {
			t.Fatalf("trial %d: QᵀQ != I", trial)
		}
		// R upper triangular.
		for i := 1; i < n; i++ {
			for j := 0; j < i; j++ {
				if math.Abs(r.At(i, j)) > 1e-10 {
					t.Fatalf("trial %d: R(%d,%d) = %v not zero", trial, i, j, r.At(i, j))
				}
			}
		}
	}
}

func TestLeastSquaresRecoversExactSolution(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a := Random(10, 4, rng)
	xTrue := []float64{1, -2, 3, 0.5}
	b := MulVec(a, xTrue)
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatalf("LeastSquares: %v", err)
	}
	for i := range xTrue {
		if math.Abs(x[i]-xTrue[i]) > 1e-9 {
			t.Errorf("x[%d] = %v, want %v", i, x[i], xTrue[i])
		}
	}
}

func TestLeastSquaresResidualOrthogonality(t *testing.T) {
	// The least-squares residual must be orthogonal to the column space.
	rng := rand.New(rand.NewSource(15))
	a := Random(12, 5, rng)
	b := make([]float64, 12)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatalf("LeastSquares: %v", err)
	}
	res := MulVec(a, x)
	for i := range res {
		res[i] = b[i] - res[i]
	}
	proj := MulVecT(a, res)
	for j := range proj {
		if math.Abs(proj[j]) > 1e-9 {
			t.Errorf("Aᵀr[%d] = %v, want ~0", j, proj[j])
		}
	}
}

func TestQRCPRankAndPivots(t *testing.T) {
	// Build a 6x8 matrix of rank 3: only 3 independent columns.
	rng := rand.New(rand.NewSource(16))
	base := Random(6, 3, rng)
	coef := Random(3, 8, rng)
	a := Mul(base, coef)
	f := FactorQRCP(a)
	if got := f.Rank(1e-8); got != 3 {
		t.Errorf("Rank = %d, want 3", got)
	}
	cols := f.IndependentCols(3)
	sel := a.SelectCols(cols)
	if got := Rank(sel, 1e-8); got != 3 {
		t.Errorf("selected columns have rank %d, want 3", got)
	}
}

func TestQRCPPivotsAreDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := Random(5, 9, rng)
	f := FactorQRCP(a)
	seen := make(map[int]bool)
	for _, p := range f.Perm {
		if seen[p] {
			t.Fatalf("duplicate pivot column %d", p)
		}
		seen[p] = true
	}
}

func TestSolveSPDFallsBackToLU(t *testing.T) {
	// Symmetric but indefinite: Cholesky fails, LU succeeds.
	a := NewFromRows([][]float64{{1, 2}, {2, 1}})
	b := []float64{3, 3}
	x, err := SolveSPD(a, b)
	if err != nil {
		t.Fatalf("SolveSPD: %v", err)
	}
	got := MulVec(a, x)
	for i := range b {
		if math.Abs(got[i]-b[i]) > 1e-10 {
			t.Errorf("residual[%d] = %v", i, got[i]-b[i])
		}
	}
}
