package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a factorization or solve encounters a
// numerically singular matrix.
var ErrSingular = errors.New("mat: matrix is singular to working precision")

// LU holds an LU factorization with partial pivoting: P*A = L*U.
type LU struct {
	lu    *Dense // packed L (unit lower) and U
	pivot []int  // row permutation
	signP int    // permutation sign, for determinants
}

// FactorLU computes the LU factorization of the square matrix a with
// partial pivoting.
func FactorLU(a *Dense) (*LU, error) {
	f := new(LU)
	if err := f.Factor(a); err != nil {
		return nil, err
	}
	return f, nil
}

// Factor computes the factorization of a in place, reusing the
// receiver's storage when the dimensions match (the factor-into-
// workspace form: no allocation after the first call at a given size).
// On ErrSingular the previous factorization is destroyed.
func (f *LU) Factor(a *Dense) error {
	if a.rows != a.cols {
		panic(fmt.Sprintf("mat: LU Factor requires a square matrix, got %dx%d", a.rows, a.cols))
	}
	n := a.rows
	lu := f.lu
	if lu == nil || lu.rows != n {
		lu = New(n, n)
	}
	lu.CopyFrom(a)
	pivot := f.pivot
	if len(pivot) != n {
		pivot = make([]int, n)
	}
	sign := 1
	for k := 0; k < n; k++ {
		// Find pivot row.
		p := k
		max := math.Abs(lu.data[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.data[i*n+k]); v > max {
				max, p = v, i
			}
		}
		pivot[k] = p
		if max == 0 {
			f.lu, f.pivot = lu, pivot // keep the storage for reuse
			return ErrSingular
		}
		if p != k {
			sign = -sign
			rk := lu.data[k*n : (k+1)*n]
			rp := lu.data[p*n : (p+1)*n]
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
		}
		pivKK := lu.data[k*n+k]
		for i := k + 1; i < n; i++ {
			lu.data[i*n+k] /= pivKK
			lik := lu.data[i*n+k]
			if lik == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				lu.data[i*n+j] -= lik * lu.data[k*n+j]
			}
		}
	}
	f.lu, f.pivot, f.signP = lu, pivot, sign
	return nil
}

// SolveVec solves A*x = b for x.
func (f *LU) SolveVec(b []float64) ([]float64, error) {
	x := make([]float64, f.lu.rows)
	if err := f.SolveVecInto(x, b); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveVecInto solves A*x = b, writing the solution into x. x may alias
// b.
func (f *LU) SolveVecInto(x, b []float64) error {
	n := f.lu.rows
	if len(b) != n || len(x) != n {
		panic(fmt.Sprintf("mat: LU SolveVecInto lengths %d/%d, want %d", len(x), len(b), n))
	}
	copy(x, b)
	// Apply permutation.
	for k := 0; k < n; k++ {
		if p := f.pivot[k]; p != k {
			x[k], x[p] = x[p], x[k]
		}
	}
	// Forward substitution with unit lower triangle.
	for i := 1; i < n; i++ {
		var s float64
		for j := 0; j < i; j++ {
			s += f.lu.data[i*n+j] * x[j]
		}
		x[i] -= s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		var s float64
		for j := i + 1; j < n; j++ {
			s += f.lu.data[i*n+j] * x[j]
		}
		d := f.lu.data[i*n+i]
		if d == 0 {
			return ErrSingular
		}
		x[i] = (x[i] - s) / d
	}
	return nil
}

// Solve solves A*X = B column by column.
func (f *LU) Solve(b *Dense) (*Dense, error) {
	if b.rows != f.lu.rows {
		panic(fmt.Sprintf("mat: LU Solve dimension mismatch %d vs %d", b.rows, f.lu.rows))
	}
	out := New(b.rows, b.cols)
	for j := 0; j < b.cols; j++ {
		x, err := f.SolveVec(b.Col(j))
		if err != nil {
			return nil, err
		}
		out.SetCol(j, x)
	}
	return out, nil
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	n := f.lu.rows
	det := float64(f.signP)
	for i := 0; i < n; i++ {
		det *= f.lu.data[i*n+i]
	}
	return det
}

// Solve solves the square linear system a*x = b.
func Solve(a *Dense, b []float64) ([]float64, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return f.SolveVec(b)
}

// SolveMatrix solves a*X = B for the square matrix a.
func SolveMatrix(a, b *Dense) (*Dense, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// Inverse returns a⁻¹ for the square matrix a.
func Inverse(a *Dense) (*Dense, error) {
	return SolveMatrix(a, Identity(a.rows))
}

// Det returns the determinant of a square matrix, or 0 if it is exactly
// singular.
func Det(a *Dense) float64 {
	f, err := FactorLU(a)
	if err != nil {
		return 0
	}
	return f.Det()
}
