// Package obs is a zero-dependency observability toolkit: lock-free
// counter, gauge and fixed-bucket histogram primitives cheap enough to
// live on query hot paths (atomic operations only, 0 allocations per
// Observe), plus a hand-rolled Prometheus text-exposition writer
// (version 0.0.4) so a server can expose them on a /metrics route
// without importing a client library.
//
// The primitives are deliberately not a registry: instrumented
// components own their metrics and expose them through their public
// API, and the serving layer assembles one exposition per scrape with a
// Writer. That keeps metric *identity* (names, labels) a serving-layer
// concern — the same Histogram can be labeled per-site by whatever is
// scraping it.
package obs

import (
	"io"
	"math"
	"sort"
	"strconv"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. The zero value is
// ready; all methods are lock-free and safe for concurrent use.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta.
func (c *Counter) Add(delta uint64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a single float64 value that may go up and down. The zero
// value reads 0; all methods are lock-free and safe for concurrent use.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the value by delta (CAS loop).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DefLatencyBuckets are the default histogram bounds for request
// latencies in seconds: 1 µs to 500 ms, roughly logarithmic. The locate
// hot path sits in the single-digit-microsecond decade; the upper
// buckets catch scheduling stalls and cold-cache outliers.
var DefLatencyBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4, 1e-3, 5e-3, 2.5e-2, 1e-1, 5e-1,
}

// Histogram is a lock-free fixed-bucket histogram. Bounds are upper
// bucket boundaries (inclusive, ascending); an implicit +Inf bucket
// catches the overflow. Observe is wait-free apart from the sum's CAS
// loop and performs no allocation, so it can sit directly on a query
// hot path.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	sumBits atomic.Uint64
}

// NewHistogram builds a histogram with the given upper bounds, sorting
// and copying them. At least one bound is required.
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: NewHistogram needs at least one bucket bound")
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value. 0 allocations; safe for concurrent use.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time copy of a Histogram, consumed by
// Writer.Histogram. Counts are per-bucket (not cumulative) with the
// +Inf overflow bucket last; Count is the total number of observations
// (always the sum of Counts, so the exposition's +Inf bucket and _count
// agree even if observations land mid-snapshot).
type HistogramSnapshot struct {
	Bounds []float64
	Counts []uint64
	Sum    float64
	Count  uint64
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	return s
}

// Label is one name="value" pair on a sample.
type Label struct{ Name, Value string }

// Writer emits Prometheus text exposition format (version 0.0.4). Call
// Family once per metric family, then one Sample/Histogram call per
// labeled series; the writer remembers nothing across families. Errors
// from the underlying io.Writer are sticky and reported by Err.
type Writer struct {
	w   io.Writer
	buf []byte
	err error
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w, buf: make([]byte, 0, 256)} }

// Err returns the first error the underlying writer produced, if any.
func (w *Writer) Err() error { return w.err }

func (w *Writer) flush() {
	if w.err == nil {
		_, w.err = w.w.Write(w.buf)
	}
	w.buf = w.buf[:0]
}

// Family writes the # HELP and # TYPE lines for one metric family. typ
// is one of "counter", "gauge", "histogram", "summary" or "untyped".
func (w *Writer) Family(name, typ, help string) {
	w.buf = append(w.buf, "# HELP "...)
	w.buf = append(w.buf, name...)
	w.buf = append(w.buf, ' ')
	w.buf = appendEscaped(w.buf, help, false)
	w.buf = append(w.buf, "\n# TYPE "...)
	w.buf = append(w.buf, name...)
	w.buf = append(w.buf, ' ')
	w.buf = append(w.buf, typ...)
	w.buf = append(w.buf, '\n')
	w.flush()
}

// Sample writes one sample line: name{labels...} value.
func (w *Writer) Sample(name string, value float64, labels ...Label) {
	w.buf = appendSeries(w.buf, name, labels, nil)
	w.buf = append(w.buf, ' ')
	w.buf = appendValue(w.buf, value)
	w.buf = append(w.buf, '\n')
	w.flush()
}

// Histogram writes one histogram series: the cumulative _bucket lines
// (including le="+Inf"), then _sum and _count, all carrying labels.
func (w *Writer) Histogram(name string, s HistogramSnapshot, labels ...Label) {
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		le := "+Inf"
		if i < len(s.Bounds) {
			le = strconv.FormatFloat(s.Bounds[i], 'g', -1, 64)
		}
		w.buf = appendSeries(w.buf, name+"_bucket", labels, &Label{Name: "le", Value: le})
		w.buf = append(w.buf, ' ')
		w.buf = strconv.AppendUint(w.buf, cum, 10)
		w.buf = append(w.buf, '\n')
	}
	w.buf = appendSeries(w.buf, name+"_sum", labels, nil)
	w.buf = append(w.buf, ' ')
	w.buf = appendValue(w.buf, s.Sum)
	w.buf = append(w.buf, '\n')
	w.buf = appendSeries(w.buf, name+"_count", labels, nil)
	w.buf = append(w.buf, ' ')
	w.buf = strconv.AppendUint(w.buf, s.Count, 10)
	w.buf = append(w.buf, '\n')
	w.flush()
}

// appendSeries appends name{l1="v1",...} with proper label-value
// escaping. extra, when non-nil, is appended after labels (the
// histogram "le" label).
func appendSeries(buf []byte, name string, labels []Label, extra *Label) []byte {
	buf = append(buf, name...)
	if len(labels) == 0 && extra == nil {
		return buf
	}
	buf = append(buf, '{')
	for i, l := range labels {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = appendLabel(buf, l)
	}
	if extra != nil {
		if len(labels) > 0 {
			buf = append(buf, ',')
		}
		buf = appendLabel(buf, *extra)
	}
	return append(buf, '}')
}

func appendLabel(buf []byte, l Label) []byte {
	buf = append(buf, l.Name...)
	buf = append(buf, '=', '"')
	buf = appendEscaped(buf, l.Value, true)
	return append(buf, '"')
}

// appendEscaped escapes backslash and newline (HELP text), plus double
// quotes inside label values.
func appendEscaped(buf []byte, s string, label bool) []byte {
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			buf = append(buf, '\\', '\\')
		case '\n':
			buf = append(buf, '\\', 'n')
		case '"':
			if label {
				buf = append(buf, '\\', '"')
			} else {
				buf = append(buf, c)
			}
		default:
			buf = append(buf, c)
		}
	}
	return buf
}

// appendValue formats a float the way Prometheus expects: shortest
// round-trip decimal, with +Inf/-Inf/NaN spelled out.
func appendValue(buf []byte, v float64) []byte {
	switch {
	case math.IsInf(v, 1):
		return append(buf, "+Inf"...)
	case math.IsInf(v, -1):
		return append(buf, "-Inf"...)
	case math.IsNaN(v):
		return append(buf, "NaN"...)
	}
	return strconv.AppendFloat(buf, v, 'g', -1, 64)
}
