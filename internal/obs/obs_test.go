package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	if g.Value() != 0 {
		t.Fatalf("zero gauge reads %v", g.Value())
	}
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram(1, 2, 5)
	for _, v := range []float64{0.5, 1, 1.5, 2, 4, 5, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// Bounds are inclusive upper bounds: 0.5,1 | 1.5,2 | 4,5 | 100.
	want := []uint64{2, 2, 2, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (%+v)", i, s.Counts[i], w, s)
		}
	}
	if s.Count != 7 {
		t.Errorf("count = %d, want 7", s.Count)
	}
	if math.Abs(s.Sum-114) > 1e-9 {
		t.Errorf("sum = %v, want 114", s.Sum)
	}
}

func TestHistogramObserveAllocFree(t *testing.T) {
	h := NewHistogram(DefLatencyBuckets...)
	allocs := testing.AllocsPerRun(1000, func() { h.Observe(3e-6) })
	if allocs != 0 {
		t.Fatalf("Histogram.Observe allocates %.1f/op, want 0", allocs)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(1, 10)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(float64(i % 20))
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != 4000 {
		t.Fatalf("count = %d, want 4000", s.Count)
	}
	var total uint64
	for _, c := range s.Counts {
		total += c
	}
	if total != s.Count {
		t.Fatalf("bucket total %d != count %d", total, s.Count)
	}
}

func TestWriterExposition(t *testing.T) {
	var sb strings.Builder
	w := NewWriter(&sb)
	w.Family("demo_total", "counter", `a "quoted" help with \ and
newline`)
	w.Sample("demo_total", 3, Label{Name: "site", Value: `a"b\c`})
	h := NewHistogram(0.1, 1)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)
	w.Family("demo_seconds", "histogram", "latency")
	w.Histogram("demo_seconds", h.Snapshot(), Label{Name: "site", Value: "x"})
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := "# HELP demo_total a \"quoted\" help with \\\\ and\\nnewline\n" +
		"# TYPE demo_total counter\n" +
		"demo_total{site=\"a\\\"b\\\\c\"} 3\n" +
		"# HELP demo_seconds latency\n" +
		"# TYPE demo_seconds histogram\n" +
		"demo_seconds_bucket{site=\"x\",le=\"0.1\"} 1\n" +
		"demo_seconds_bucket{site=\"x\",le=\"1\"} 2\n" +
		"demo_seconds_bucket{site=\"x\",le=\"+Inf\"} 3\n" +
		"demo_seconds_sum{site=\"x\"} 2.55\n" +
		"demo_seconds_count{site=\"x\"} 3\n"
	if got != want {
		t.Fatalf("exposition mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestWriterSpecialValues(t *testing.T) {
	var sb strings.Builder
	w := NewWriter(&sb)
	w.Sample("g", math.Inf(1))
	w.Sample("g", math.Inf(-1))
	w.Sample("g", math.NaN())
	got := sb.String()
	if got != "g +Inf\ng -Inf\ng NaN\n" {
		t.Fatalf("special values: %q", got)
	}
}
