package obs

import (
	"io"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	if g.Value() != 0 {
		t.Fatalf("zero gauge reads %v", g.Value())
	}
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram(1, 2, 5)
	for _, v := range []float64{0.5, 1, 1.5, 2, 4, 5, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// Bounds are inclusive upper bounds: 0.5,1 | 1.5,2 | 4,5 | 100.
	want := []uint64{2, 2, 2, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (%+v)", i, s.Counts[i], w, s)
		}
	}
	if s.Count != 7 {
		t.Errorf("count = %d, want 7", s.Count)
	}
	if math.Abs(s.Sum-114) > 1e-9 {
		t.Errorf("sum = %v, want 114", s.Sum)
	}
}

func TestHistogramObserveAllocFree(t *testing.T) {
	h := NewHistogram(DefLatencyBuckets...)
	allocs := testing.AllocsPerRun(1000, func() { h.Observe(3e-6) })
	if allocs != 0 {
		t.Fatalf("Histogram.Observe allocates %.1f/op, want 0", allocs)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(1, 10)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(float64(i % 20))
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != 4000 {
		t.Fatalf("count = %d, want 4000", s.Count)
	}
	var total uint64
	for _, c := range s.Counts {
		total += c
	}
	if total != s.Count {
		t.Fatalf("bucket total %d != count %d", total, s.Count)
	}
}

func TestWriterExposition(t *testing.T) {
	var sb strings.Builder
	w := NewWriter(&sb)
	w.Family("demo_total", "counter", `a "quoted" help with \ and
newline`)
	w.Sample("demo_total", 3, Label{Name: "site", Value: `a"b\c`})
	h := NewHistogram(0.1, 1)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)
	w.Family("demo_seconds", "histogram", "latency")
	w.Histogram("demo_seconds", h.Snapshot(), Label{Name: "site", Value: "x"})
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := "# HELP demo_total a \"quoted\" help with \\\\ and\\nnewline\n" +
		"# TYPE demo_total counter\n" +
		"demo_total{site=\"a\\\"b\\\\c\"} 3\n" +
		"# HELP demo_seconds latency\n" +
		"# TYPE demo_seconds histogram\n" +
		"demo_seconds_bucket{site=\"x\",le=\"0.1\"} 1\n" +
		"demo_seconds_bucket{site=\"x\",le=\"1\"} 2\n" +
		"demo_seconds_bucket{site=\"x\",le=\"+Inf\"} 3\n" +
		"demo_seconds_sum{site=\"x\"} 2.55\n" +
		"demo_seconds_count{site=\"x\"} 3\n"
	if got != want {
		t.Fatalf("exposition mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestWriterSpecialValues(t *testing.T) {
	var sb strings.Builder
	w := NewWriter(&sb)
	w.Sample("g", math.Inf(1))
	w.Sample("g", math.Inf(-1))
	w.Sample("g", math.NaN())
	got := sb.String()
	if got != "g +Inf\ng -Inf\ng NaN\n" {
		t.Fatalf("special values: %q", got)
	}
}

// TestWriterLabelValueEscaping pins the exposition escaping of the
// three special characters inside a label value: newline becomes \n,
// a double quote \" and a backslash \\ — each must survive a
// Prometheus parse back to the original value.
func TestWriterLabelValueEscaping(t *testing.T) {
	var sb strings.Builder
	w := NewWriter(&sb)
	w.Sample("m", 1, Label{Name: "v", Value: "a\nb\"c\\d"})
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	want := "m{v=\"a\\nb\\\"c\\\\d\"} 1\n"
	if got := sb.String(); got != want {
		t.Fatalf("label escaping: got %q, want %q", got, want)
	}
}

// TestWriterInfBucket pins the overflow-bucket rendering: an observed
// +Inf lands only in the le="+Inf" bucket (the finite buckets stay
// put), and the sum is spelled +Inf — not a parse-breaking "Inf" or
// "inf".
func TestWriterInfBucket(t *testing.T) {
	h := NewHistogram(1)
	h.Observe(1)
	h.Observe(math.Inf(1))
	var sb strings.Builder
	w := NewWriter(&sb)
	w.Histogram("h", h.Snapshot())
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	want := "h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum +Inf\nh_count 2\n"
	if got := sb.String(); got != want {
		t.Fatalf("+Inf bucket rendering: got %q, want %q", got, want)
	}
}

// TestHistogramScrapeWhileObserve renders snapshots concurrently with
// a storm of observations — the /metrics scrape path racing the hot
// path. Run under -race this proves the snapshot copy is properly
// synchronized; the invariant check proves every snapshot is
// internally consistent (bucket total == count) even mid-storm.
func TestHistogramScrapeWhileObserve(t *testing.T) {
	h := NewHistogram(DefLatencyBuckets...)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					h.Observe(float64(i%100) * 1e-4)
				}
			}
		}(g)
	}
	for i := 0; i < 200; i++ {
		s := h.Snapshot()
		var total uint64
		for _, c := range s.Counts {
			total += c
		}
		if total != s.Count {
			t.Errorf("scrape %d: bucket total %d != count %d", i, total, s.Count)
		}
		w := NewWriter(io.Discard)
		w.Family("h_seconds", "histogram", "concurrent scrape")
		w.Histogram("h_seconds", s, Label{Name: "site", Value: "x"})
		if err := w.Err(); err != nil {
			t.Fatalf("scrape %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
}
