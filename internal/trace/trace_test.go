package trace

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestSpanTree(t *testing.T) {
	tr := New(Config{HeadEvery: 1})
	x := tr.Start("locate", "lab")
	x.Root().SetStr("tier", "pruned")
	sp := x.StartSpan("solve")
	sp.SetInt("column_evals", 42)
	sp.SetFloat("residual", 0.25)
	sp.SetBool("converged", true)
	child := x.StartSpan("ls")
	child.End()
	sp.End()
	x.Finish()

	td, ok := tr.Get(x.ID())
	if !ok {
		t.Fatalf("retained trace not found by ID")
	}
	if td.Path != "locate" || td.Site != "lab" {
		t.Fatalf("path/site = %q/%q", td.Path, td.Site)
	}
	if len(td.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(td.Spans))
	}
	root, solve, ls := td.Spans[0], td.Spans[1], td.Spans[2]
	if root.Name != "locate" || root.ParentID != 0 {
		t.Fatalf("root span = %+v", root)
	}
	if solve.ParentID != root.ID {
		t.Fatalf("solve parent = %d, want root %d", solve.ParentID, root.ID)
	}
	if ls.ParentID != solve.ID {
		t.Fatalf("ls parent = %d, want solve %d", ls.ParentID, solve.ID)
	}
	if len(root.Attrs) != 1 || root.Attrs[0].Key != "tier" || root.Attrs[0].Str != "pruned" {
		t.Fatalf("root attrs = %+v", root.Attrs)
	}
	if len(solve.Attrs) != 3 {
		t.Fatalf("solve attrs = %+v", solve.Attrs)
	}
	if solve.Attrs[0].Int != 42 || solve.Attrs[1].Float != 0.25 || solve.Attrs[2].Int != 1 {
		t.Fatalf("solve attr values = %+v", solve.Attrs)
	}
	if root.Duration <= 0 {
		t.Fatalf("root duration = %v, want > 0", root.Duration)
	}
}

func TestHeadSampling(t *testing.T) {
	tr := New(Config{HeadEvery: 4, DefaultSlow: time.Hour})
	for i := 0; i < 40; i++ {
		x := tr.Start("locate", "")
		x.StartSpan("solve").End()
		x.Finish()
	}
	st := tr.Stats()
	if st.Started != 40 {
		t.Fatalf("started = %d, want 40", st.Started)
	}
	if st.Retained != 10 {
		t.Fatalf("retained = %d, want 10 (1 in 4)", st.Retained)
	}
	if got := len(tr.Recent()); got != 10 {
		t.Fatalf("recent ring has %d, want 10", got)
	}
	if got := len(tr.SlowTraces()); got != 0 {
		t.Fatalf("slow ring has %d, want 0", got)
	}
}

func TestSlowCapture(t *testing.T) {
	tr := New(Config{SlowThreshold: map[string]time.Duration{"locate": time.Nanosecond}, DefaultSlow: time.Hour})
	x := tr.Start("locate", "")
	time.Sleep(time.Millisecond)
	x.Finish()
	// Unsampled but slow: retained in both rings.
	if got := len(tr.Recent()); got != 1 {
		t.Fatalf("recent = %d, want 1", got)
	}
	slow := tr.SlowTraces()
	if len(slow) != 1 || !slow[0].Slow {
		t.Fatalf("slow ring = %+v", slow)
	}
	// A fast path with an hour threshold is dropped.
	y := tr.Start("update", "")
	y.Finish()
	if got := tr.Stats().Retained; got != 1 {
		t.Fatalf("retained = %d, want 1", got)
	}
	if _, ok := tr.Get(y.ID()); ok {
		t.Fatalf("dropped trace still retrievable")
	}
}

func TestForceRetain(t *testing.T) {
	tr := New(Config{DefaultSlow: time.Hour})
	x := tr.Start("update", "lab")
	x.Force()
	if !x.Sampled() {
		t.Fatalf("forced trace not Sampled")
	}
	id := x.ID()
	x.Finish()
	td, ok := tr.Get(id)
	if !ok || !td.Forced {
		t.Fatalf("forced trace not retained: %+v ok=%v", td, ok)
	}
}

func TestRingEviction(t *testing.T) {
	tr := New(Config{RecentSize: 4, HeadEvery: 1, DefaultSlow: time.Hour})
	var ids []ID
	for i := 0; i < 10; i++ {
		x := tr.Start("locate", "")
		ids = append(ids, x.ID())
		x.Finish()
	}
	rec := tr.Recent()
	if len(rec) != 4 {
		t.Fatalf("recent = %d, want ring size 4", len(rec))
	}
	// Oldest-first order, holding the newest four.
	for i, td := range rec {
		if td.ID != ids[6+i] {
			t.Fatalf("ring[%d] = %s, want %s", i, td.ID, ids[6+i])
		}
	}
	if _, ok := tr.Get(ids[0]); ok {
		t.Fatalf("evicted trace still retrievable")
	}
}

func TestSetStartAndStartSpanAt(t *testing.T) {
	tr := New(Config{HeadEvery: 1})
	x := tr.Start("update", "")
	episode := time.Now().Add(-50 * time.Millisecond)
	x.SetStart(episode)
	sp := x.StartSpanAt("detect", episode)
	sp.End()
	x.Finish()
	td, _ := tr.Get(x.ID())
	if td.Duration < 50*time.Millisecond {
		t.Fatalf("trace duration %v does not cover the episode", td.Duration)
	}
	detect := td.Spans[1]
	if detect.Start != 0 {
		t.Fatalf("detect start offset = %v, want 0", detect.Start)
	}
	if detect.Duration < 50*time.Millisecond {
		t.Fatalf("detect duration = %v, want >= 50ms", detect.Duration)
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	x := tr.Start("locate", "")
	if x != nil {
		t.Fatalf("nil tracer started a trace")
	}
	// All of these must no-op without panicking.
	x.Force()
	x.SetStart(time.Now())
	x.SetRemote(ID{1}, 2, true)
	sp := x.StartSpan("solve")
	sp.SetInt("k", 1)
	sp.SetStr("s", "v")
	sp.SetFloat("f", 1.5)
	sp.SetBool("b", true)
	sp.End()
	sp.EndDur(time.Second)
	x.Root().End()
	x.Finish()
	if x.ID() != (ID{}) || x.RootSpanID() != 0 || x.Sampled() {
		t.Fatalf("nil trace leaked state")
	}
	if got := tr.Stats(); got != (Stats{}) {
		t.Fatalf("nil tracer stats = %+v", got)
	}
	if tr.Recent() != nil || tr.SlowTraces() != nil {
		t.Fatalf("nil tracer returned rings")
	}
	if _, ok := tr.Get(ID{1}); ok {
		t.Fatalf("nil tracer resolved an ID")
	}
}

func TestEndDurAgreesWithSpan(t *testing.T) {
	tr := New(Config{HeadEvery: 1})
	x := tr.Start("update", "")
	sp := x.StartSpan("persist")
	want := 123 * time.Millisecond
	sp.EndDur(want)
	x.Finish()
	td, _ := tr.Get(x.ID())
	if got := td.Spans[1].Duration; got != want {
		t.Fatalf("span duration = %v, want externally measured %v", got, want)
	}
}

func TestUnsampledPathAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under -race; 0-alloc holds without it")
	}
	tr := New(Config{HeadEvery: 0, DefaultSlow: time.Hour})
	record := func() {
		x := tr.Start("locate", "lab")
		sp := x.StartSpan("solve")
		sp.SetStr("tier", "pruned")
		sp.SetInt("column_evals", 17)
		sp.End()
		x.Root().SetInt("version", 3)
		x.Finish()
	}
	for i := 0; i < 64; i++ {
		record() // warm the pool and slice capacities
	}
	if avg := testing.AllocsPerRun(400, record); avg != 0 {
		t.Fatalf("unsampled trace path allocates %.1f/op, want 0", avg)
	}
}

func TestConcurrentStartFinish(t *testing.T) {
	tr := New(Config{HeadEvery: 3, RecentSize: 32, DefaultSlow: time.Hour})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				x := tr.Start("locate", "lab")
				sp := x.StartSpan("solve")
				sp.SetInt("i", int64(i))
				sp.End()
				x.Finish()
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			for _, td := range tr.Recent() {
				if td.ID.IsZero() || len(td.Spans) == 0 {
					panic(fmt.Sprintf("corrupt retained trace: %+v", td))
				}
			}
		}
	}()
	wg.Wait()
	<-done
	st := tr.Stats()
	if st.Started != 1600 {
		t.Fatalf("started = %d, want 1600", st.Started)
	}
	if st.Retained == 0 {
		t.Fatalf("no traces retained under head sampling")
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	tr := New(Config{HeadEvery: 1})
	x := tr.Start("http", "")
	hdr := FormatTraceparent(x.ID(), x.RootSpanID(), true)
	id, parent, sampled, ok := ParseTraceparent(hdr)
	if !ok {
		t.Fatalf("round-trip parse failed for %q", hdr)
	}
	if id != x.ID() || parent != x.RootSpanID() || !sampled {
		t.Fatalf("parsed %s/%d/%v, want %s/%d/true", id, parent, sampled, x.ID(), x.RootSpanID())
	}
	x.Finish()
}

func TestParseTraceparentRejects(t *testing.T) {
	bad := []string{
		"",
		"00-abc",
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // zero parent
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // version ff
		"00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // bad separator
		"00-4bf92f3577b34da6a3ce929d0e0e47zz-00f067aa0ba902b7-01", // non-hex
		"0x-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // non-hex version
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-zz", // non-hex flags
	}
	for _, s := range bad {
		if _, _, _, ok := ParseTraceparent(s); ok {
			t.Fatalf("ParseTraceparent(%q) accepted", s)
		}
	}
	// Trailing tracestate-style suffixes after the flags are tolerated.
	id, parent, sampled, ok := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00")
	if !ok || sampled {
		t.Fatalf("canonical unsampled header rejected (ok=%v sampled=%v)", ok, sampled)
	}
	if id.String() != "4bf92f3577b34da6a3ce929d0e0e4736" || parent != 0x00f067aa0ba902b7 {
		t.Fatalf("parsed %s/%x", id, parent)
	}
}

func TestParseID(t *testing.T) {
	if _, ok := ParseID("00000000000000000000000000000000"); ok {
		t.Fatalf("zero ID accepted")
	}
	if _, ok := ParseID("short"); ok {
		t.Fatalf("short ID accepted")
	}
	id, ok := ParseID("4bf92f3577b34da6a3ce929d0e0e4736")
	if !ok || id.String() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("ParseID round trip failed: %v %s", ok, id)
	}
}
