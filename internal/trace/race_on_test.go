//go:build race

package trace

// raceEnabled reports whether the race detector is active. Under -race
// sync.Pool drops items to widen the race-detection window, so pooled
// trace scratch allocates; strict 0-alloc assertions only hold without
// it.
const raceEnabled = true
