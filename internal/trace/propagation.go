package trace

import (
	"context"
	"encoding/hex"
	"strconv"
)

// W3C trace context (traceparent) support, version 00:
//
//	traceparent: 00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>
//
// ParseTraceparent accepts any version except ff (per spec, unknown
// versions are parsed as version 00 when the tail matches); the only
// flag interpreted is 0x01 (sampled).

// ParseTraceparent parses a traceparent header value. ok is false for
// malformed values, the all-zero trace ID, or the all-zero parent ID.
func ParseTraceparent(s string) (id ID, parent uint64, sampled bool, ok bool) {
	if len(s) < 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return ID{}, 0, false, false
	}
	if s[0] == 'f' && s[1] == 'f' {
		return ID{}, 0, false, false
	}
	if _, err := hex.DecodeString(s[:2]); err != nil {
		return ID{}, 0, false, false
	}
	id, idOK := ParseID(s[3:35])
	if !idOK {
		return ID{}, 0, false, false
	}
	p, err := strconv.ParseUint(s[36:52], 16, 64)
	if err != nil || p == 0 {
		return ID{}, 0, false, false
	}
	f, err := strconv.ParseUint(s[53:55], 16, 8)
	if err != nil {
		return ID{}, 0, false, false
	}
	return id, p, f&0x01 != 0, true
}

// FormatTraceparent renders a version-00 traceparent header value.
func FormatTraceparent(id ID, parent uint64, sampled bool) string {
	var b [55]byte
	b[0], b[1], b[2] = '0', '0', '-'
	hex.Encode(b[3:35], id[:])
	b[35] = '-'
	var p [8]byte
	putU64(p[:], parent)
	hex.Encode(b[36:52], p[:])
	b[52] = '-'
	b[53] = '0'
	if sampled {
		b[54] = '1'
	} else {
		b[54] = '0'
	}
	return string(b[:])
}

type ctxKey struct{}

// NewContext returns ctx carrying tr.
func NewContext(ctx context.Context, tr *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, tr)
}

// FromContext returns the Trace carried by ctx, or nil.
func FromContext(ctx context.Context) *Trace {
	tr, _ := ctx.Value(ctxKey{}).(*Trace)
	return tr
}
