// Package trace is a zero-dependency request-scoped span tracer in the
// spirit of internal/obs: no third-party imports, lock-free publication,
// and a hard zero-allocation contract on unsampled hot paths.
//
// A Trace is a flat, pooled recording of one request: a tree of spans
// (name, start offset, duration, typed attributes) flattened into three
// scratch slices that are reused across requests via a sync.Pool. Every
// request on an instrumented path records into pooled scratch — the
// retention decision is deferred to Finish so that a request that turns
// out to be slow can always be captured even when head sampling skipped
// it ("always capture slow"). Retained traces are copied into immutable
// TraceData snapshots and published into two lock-free ring buffers
// (recent and slow); the pooled scratch goes straight back to the pool,
// so the steady-state unsampled path allocates nothing.
//
// Sampling policy, per root path:
//
//   - head sampling: 1 in HeadEvery traces is retained up front;
//   - slow capture: any trace whose total duration reaches the path's
//     slow threshold is retained regardless of head sampling;
//   - forced: callers may pin rare, high-value traces (auto-updates,
//     replica applies) with Trace.Force.
//
// All methods are safe on nil receivers: a nil *Tracer starts nil
// *Traces, and every Span/Trace method no-ops on nil, so call sites do
// not need tracer-enabled branches.
package trace

import (
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"
)

// ID is a 128-bit trace identifier, compatible with the W3C
// traceparent trace-id field (32 lowercase hex digits).
type ID [16]byte

// IsZero reports whether the ID is the invalid all-zero ID.
func (id ID) IsZero() bool { return id == ID{} }

// String renders the ID as 32 lowercase hex digits.
func (id ID) String() string {
	var b [32]byte
	hex.Encode(b[:], id[:])
	return string(b[:])
}

// ParseID parses a 32-hex-digit trace ID. The zero ID is rejected.
func ParseID(s string) (ID, bool) {
	var id ID
	if len(s) != 32 {
		return ID{}, false
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil || id.IsZero() {
		return ID{}, false
	}
	return id, true
}

// AttrKind discriminates the typed attribute payload.
type AttrKind uint8

const (
	KindInt AttrKind = iota
	KindFloat
	KindStr
	KindBool
)

// Attr is one typed key/value attribute attached to a span.
type Attr struct {
	Key   string
	Kind  AttrKind
	Int   int64
	Float float64
	Str   string
}

// attrRec is the scratch-side attribute record; span is the index of
// the owning span in the trace's flat span slice.
type attrRec struct {
	span int32
	a    Attr
}

// spanRec is the scratch-side span record. Parent is the index of the
// parent span in the flat slice (-1 for the root span).
type spanRec struct {
	id     uint64
	parent int32
	name   string
	start  time.Duration // offset from trace start
	dur    time.Duration
	done   bool
}

// Trace is a pooled, mutable recording of one request. It is owned by
// a single goroutine; methods must not be called concurrently.
type Trace struct {
	tr     *Tracer
	id     ID
	path   string
	site   string
	start  time.Time
	slow   time.Duration // slow threshold resolved at Start
	parent uint64        // remote parent span id (0 = none)
	forced bool
	head   bool // retained by head sampling
	cur    int32
	spans  []spanRec
	attrs  []attrRec
}

// Span is a lightweight handle to an open span inside a Trace. The
// zero Span (and any Span of a nil Trace) is a no-op.
type Span struct {
	t   *Trace
	idx int32
}

// SpanData is one immutable span inside a retained TraceData.
type SpanData struct {
	ID       uint64
	ParentID uint64 // 0 for the root span (or the remote parent id)
	Name     string
	Start    time.Duration // offset from trace start
	Duration time.Duration
	Attrs    []Attr
}

// TraceData is the immutable snapshot of a retained trace.
type TraceData struct {
	ID       ID
	Path     string
	Site     string
	Start    time.Time
	Duration time.Duration
	Slow     bool   // met the per-path slow threshold
	Forced   bool   // pinned by Trace.Force
	Remote   uint64 // remote parent span id (0 = locally rooted)
	Spans    []SpanData
	seq      uint64
}

// Config parameterizes a Tracer. The zero value is usable: rings of
// defaultRing entries, head sampling disabled (slow-capture and forced
// traces only), and a 50 ms default slow threshold.
type Config struct {
	// RecentSize and SlowSize are the ring capacities (default 64).
	RecentSize int
	SlowSize   int
	// HeadEvery retains 1 in HeadEvery traces up front; 0 disables
	// head sampling.
	HeadEvery int
	// SlowThreshold maps a root path ("locate", "update", ...) to the
	// latency at or beyond which its traces are always retained.
	// Paths not present use DefaultSlow.
	SlowThreshold map[string]time.Duration
	// DefaultSlow is the threshold for unlisted paths (default 50 ms;
	// negative disables slow capture for unlisted paths).
	DefaultSlow time.Duration
}

const (
	defaultRing = 64
	defaultSlow = 50 * time.Millisecond
)

// Stats is a point-in-time snapshot of tracer activity counters.
type Stats struct {
	Started  uint64 // traces begun (sampled or not)
	Retained uint64 // traces published to the recent ring
	Slow     uint64 // retained traces that met their slow threshold
}

// Tracer owns the sampling policy, the ID generator, the span scratch
// pool and the retained-trace rings. All methods are safe for
// concurrent use, and safe on a nil *Tracer (everything no-ops).
type Tracer struct {
	headEvery uint64
	defSlow   time.Duration
	slowBy    map[string]time.Duration // read-only after New

	headCtr  atomic.Uint64
	idCtr    atomic.Uint64
	seq      atomic.Uint64
	started  atomic.Uint64
	retained atomic.Uint64
	slowCnt  atomic.Uint64

	pool   sync.Pool
	recent ring
	slow   ring
}

// ring is a lock-free bounded buffer of retained traces: writers claim
// a slot with an atomic counter and swap the entry pointer in.
type ring struct {
	pos  atomic.Uint64
	slot []atomic.Pointer[TraceData]
}

func (r *ring) init(n int) {
	if n <= 0 {
		n = defaultRing
	}
	r.slot = make([]atomic.Pointer[TraceData], n)
}

func (r *ring) put(td *TraceData) {
	i := r.pos.Add(1) - 1
	r.slot[i%uint64(len(r.slot))].Store(td)
}

// snapshot returns the live entries, oldest first.
func (r *ring) snapshot() []*TraceData {
	out := make([]*TraceData, 0, len(r.slot))
	for i := range r.slot {
		if td := r.slot[i].Load(); td != nil {
			out = append(out, td)
		}
	}
	// Insertion order via the global sequence stamp.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].seq > out[j].seq; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

func (r *ring) find(id ID) *TraceData {
	for i := range r.slot {
		if td := r.slot[i].Load(); td != nil && td.ID == id {
			return td
		}
	}
	return nil
}

// New builds a Tracer from cfg (see Config for zero-value defaults).
func New(cfg Config) *Tracer {
	t := &Tracer{
		headEvery: uint64(max(cfg.HeadEvery, 0)),
		defSlow:   cfg.DefaultSlow,
		slowBy:    make(map[string]time.Duration, len(cfg.SlowThreshold)),
	}
	if t.defSlow == 0 {
		t.defSlow = defaultSlow
	}
	for p, d := range cfg.SlowThreshold {
		t.slowBy[p] = d
	}
	t.recent.init(cfg.RecentSize)
	t.slow.init(cfg.SlowSize)
	t.pool.New = func() any {
		return &Trace{
			spans: make([]spanRec, 0, 16),
			attrs: make([]attrRec, 0, 32),
		}
	}
	// Seed the ID generator off the wall clock once; IDs then advance
	// through a splitmix64 of a per-tracer counter.
	t.idCtr.Store(uint64(time.Now().UnixNano()))
	return t
}

// splitmix64 is the SplitMix64 output function: a cheap, well-mixed
// bijection of the ID counter so trace IDs look random without any
// locking or crypto dependency.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (t *Tracer) newID() ID {
	var id ID
	c := t.idCtr.Add(2)
	hi, lo := splitmix64(c), splitmix64(c+1)
	if hi == 0 && lo == 0 {
		lo = 1
	}
	putU64(id[:8], hi)
	putU64(id[8:], lo)
	return id
}

func putU64(b []byte, v uint64) {
	_ = b[7]
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (56 - 8*i))
	}
}

func (t *Tracer) slowFor(path string) time.Duration {
	if d, ok := t.slowBy[path]; ok {
		return d
	}
	return t.defSlow
}

// Start begins recording a trace rooted at path for site. It returns
// nil when t is nil. The returned Trace must be closed with Finish
// (typically deferred) to either publish or recycle the scratch.
func (t *Tracer) Start(path, site string) *Trace {
	if t == nil {
		return nil
	}
	t.started.Add(1)
	tr := t.pool.Get().(*Trace)
	tr.tr = t
	tr.id = t.newID()
	tr.path = path
	tr.site = site
	tr.start = time.Now()
	tr.slow = t.slowFor(path)
	tr.parent = 0
	tr.forced = false
	tr.head = t.headEvery > 0 && t.headCtr.Add(1)%t.headEvery == 0
	tr.cur = -1
	tr.spans = tr.spans[:0]
	tr.attrs = tr.attrs[:0]
	// Root span: same name as the path.
	tr.push(path, tr.start)
	return tr
}

// Stats returns the tracer's activity counters (zero for nil).
func (t *Tracer) Stats() Stats {
	if t == nil {
		return Stats{}
	}
	return Stats{
		Started:  t.started.Load(),
		Retained: t.retained.Load(),
		Slow:     t.slowCnt.Load(),
	}
}

// Recent returns immutable snapshots of the recent ring, oldest first.
func (t *Tracer) Recent() []*TraceData {
	if t == nil {
		return nil
	}
	return t.recent.snapshot()
}

// SlowTraces returns immutable snapshots of the slow ring, oldest
// first.
func (t *Tracer) SlowTraces() []*TraceData {
	if t == nil {
		return nil
	}
	return t.slow.snapshot()
}

// Get looks a retained trace up by ID in both rings.
func (t *Tracer) Get(id ID) (*TraceData, bool) {
	if t == nil || id.IsZero() {
		return nil, false
	}
	if td := t.recent.find(id); td != nil {
		return td, true
	}
	if td := t.slow.find(id); td != nil {
		return td, true
	}
	return nil, false
}

// push appends a span starting at ts under the current open span and
// makes it current. Returns its index.
func (tr *Trace) push(name string, ts time.Time) int32 {
	idx := int32(len(tr.spans))
	tr.spans = append(tr.spans, spanRec{
		id:     splitmix64(tr.tr.idCtr.Add(1)),
		parent: tr.cur,
		name:   name,
		start:  ts.Sub(tr.start),
	})
	tr.cur = idx
	return idx
}

// ID returns the trace's identifier (zero for nil).
func (tr *Trace) ID() ID {
	if tr == nil {
		return ID{}
	}
	return tr.id
}

// RootSpanID returns the root span's identifier (0 for nil), for
// emitting the parent-id field of an outgoing traceparent header.
func (tr *Trace) RootSpanID() uint64 {
	if tr == nil || len(tr.spans) == 0 {
		return 0
	}
	return tr.spans[0].id
}

// Sampled reports whether the trace is already certain to be retained
// (head-sampled or forced); slow capture may still retain it later.
func (tr *Trace) Sampled() bool {
	return tr != nil && (tr.head || tr.forced)
}

// Force pins the trace: it will be retained regardless of sampling.
func (tr *Trace) Force() {
	if tr != nil {
		tr.forced = true
	}
}

// SetRemote links the trace to a remote parent: the trace adopts the
// caller-supplied ID (e.g. from an incoming traceparent header) and
// records the remote span as the root's parent. sampled propagates the
// upstream sampling decision.
func (tr *Trace) SetRemote(id ID, parentSpan uint64, sampled bool) {
	if tr == nil || id.IsZero() {
		return
	}
	tr.id = id
	tr.parent = parentSpan
	if sampled {
		tr.forced = true
	}
}

// SetStart rewinds the trace's start to at (for traces whose causal
// beginning predates Start, e.g. a drift episode's first flagged
// observation). The root span's offset stays zero.
func (tr *Trace) SetStart(at time.Time) {
	if tr == nil || at.IsZero() || at.After(tr.start) {
		return
	}
	delta := tr.start.Sub(at)
	tr.start = at
	for i := range tr.spans {
		tr.spans[i].start += delta
	}
}

// StartSpan opens a child span under the currently open span.
func (tr *Trace) StartSpan(name string) Span {
	if tr == nil {
		return Span{}
	}
	return Span{t: tr, idx: tr.push(name, time.Now())}
}

// StartSpanAt opens a child span with an explicit start time (clamped
// to the trace start).
func (tr *Trace) StartSpanAt(name string, at time.Time) Span {
	if tr == nil {
		return Span{}
	}
	if at.Before(tr.start) {
		at = tr.start
	}
	return Span{t: tr, idx: tr.push(name, at)}
}

// Finish closes the trace, retains it when sampled / forced / slow,
// and returns the scratch to the pool. The Trace must not be used
// after Finish.
func (tr *Trace) Finish() {
	if tr == nil {
		return
	}
	dur := time.Since(tr.start)
	// Close every still-open span (root included) at the finish time.
	for i := range tr.spans {
		if !tr.spans[i].done {
			tr.spans[i].dur = dur - tr.spans[i].start
			tr.spans[i].done = true
		}
	}
	t := tr.tr
	if tr.forced || tr.head || (tr.slow >= 0 && dur >= tr.slow) {
		t.retain(tr, dur)
	}
	tr.tr = nil
	t.pool.Put(tr)
}

// retain copies the scratch into an immutable TraceData and publishes
// it. This is the only allocating step, and only retained traces pay
// it.
func (t *Tracer) retain(tr *Trace, dur time.Duration) {
	isSlow := tr.slow >= 0 && dur >= tr.slow
	td := &TraceData{
		ID:       tr.id,
		Path:     tr.path,
		Site:     tr.site,
		Start:    tr.start,
		Duration: dur,
		Slow:     isSlow,
		Forced:   tr.forced,
		Remote:   tr.parent,
		Spans:    make([]SpanData, len(tr.spans)),
		seq:      t.seq.Add(1),
	}
	// Count attributes per span so each span gets one exact-size slice.
	for i := range tr.spans {
		s := &tr.spans[i]
		var pid uint64
		if s.parent >= 0 {
			pid = tr.spans[s.parent].id
		} else {
			pid = tr.parent
		}
		td.Spans[i] = SpanData{
			ID:       s.id,
			ParentID: pid,
			Name:     s.name,
			Start:    s.start,
			Duration: s.dur,
		}
	}
	for i := range tr.attrs {
		a := &tr.attrs[i]
		td.Spans[a.span].Attrs = append(td.Spans[a.span].Attrs, a.a)
	}
	t.retained.Add(1)
	t.recent.put(td)
	if isSlow {
		t.slowCnt.Add(1)
		t.slow.put(td)
	}
}

// End closes the span, recording its duration as time since its start.
// It returns the recorded duration so callers can feed the very same
// number into a histogram (metrics and traces cannot disagree).
func (sp Span) End() time.Duration {
	if sp.t == nil {
		return 0
	}
	s := &sp.t.spans[sp.idx]
	if s.done {
		return s.dur
	}
	d := time.Since(sp.t.start) - s.start
	sp.end(d)
	return d
}

// EndDur closes the span with an externally measured duration (so one
// time.Since result can serve both the span and a histogram).
func (sp Span) EndDur(d time.Duration) {
	if sp.t == nil {
		return
	}
	if !sp.t.spans[sp.idx].done {
		sp.end(d)
	}
}

func (sp Span) end(d time.Duration) {
	s := &sp.t.spans[sp.idx]
	s.dur = d
	s.done = true
	// Pop back to this span's parent; if children were left open they
	// are closed by Finish.
	if sp.t.cur == sp.idx {
		sp.t.cur = s.parent
	}
}

// SetInt attaches an integer attribute to the span.
func (sp Span) SetInt(key string, v int64) {
	if sp.t != nil {
		sp.t.attrs = append(sp.t.attrs, attrRec{span: sp.idx, a: Attr{Key: key, Kind: KindInt, Int: v}})
	}
}

// SetFloat attaches a float attribute to the span.
func (sp Span) SetFloat(key string, v float64) {
	if sp.t != nil {
		sp.t.attrs = append(sp.t.attrs, attrRec{span: sp.idx, a: Attr{Key: key, Kind: KindFloat, Float: v}})
	}
}

// SetStr attaches a string attribute to the span.
func (sp Span) SetStr(key, v string) {
	if sp.t != nil {
		sp.t.attrs = append(sp.t.attrs, attrRec{span: sp.idx, a: Attr{Key: key, Kind: KindStr, Str: v}})
	}
}

// SetBool attaches a boolean attribute to the span.
func (sp Span) SetBool(key string, v bool) {
	if sp.t != nil {
		var i int64
		if v {
			i = 1
		}
		sp.t.attrs = append(sp.t.attrs, attrRec{span: sp.idx, a: Attr{Key: key, Kind: KindBool, Int: i}})
	}
}

// Root returns a handle to the trace's root span for attaching
// request-level attributes.
func (tr *Trace) Root() Span {
	if tr == nil || len(tr.spans) == 0 {
		return Span{}
	}
	return Span{t: tr, idx: 0}
}
