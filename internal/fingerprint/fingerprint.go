// Package fingerprint defines the fingerprint-database structures of the
// paper: the M x N fingerprint matrix X (Definition 1), the no-decrease
// index matrix B (Eqn 8), the largely-decrease matrix X_D (Definition 2),
// the neighbor relationship matrix T (Eqn 4), the continuity matrix G
// (Eqns 14-16), the adjacent-link similarity matrix H (Eqn 17), and the
// NLC/ALS statistics (Eqns 5-6) used to validate Observations 2 and 3.
package fingerprint

import (
	"fmt"

	"iupdater/internal/mat"
)

// Matrix is a fingerprint matrix with deployment metadata. X(i, j) is the
// RSS reading of link i with the target at location j; locations are
// strip-major (location j belongs to link j/PerStrip's strip).
type Matrix struct {
	// X is the M x N matrix of RSS readings in dBm.
	X *mat.Dense
	// Links is M, the number of links (and strips).
	Links int
	// PerStrip is K = N/M, the number of cells along each strip.
	PerStrip int
	// CollectedAt is the survey time in seconds since the original survey.
	CollectedAt float64
}

// New wraps an M x N matrix as a fingerprint matrix. The number of
// columns must be an exact multiple of the number of rows' strips
// (N = links * perStrip).
func New(x *mat.Dense, collectedAt float64) Matrix {
	m, n := x.Dims()
	if n%m != 0 {
		panic(fmt.Sprintf("fingerprint: N=%d not divisible by M=%d", n, m))
	}
	return Matrix{X: x, Links: m, PerStrip: n / m, CollectedAt: collectedAt}
}

// NumCells returns N.
func (f Matrix) NumCells() int { return f.Links * f.PerStrip }

// Clone returns a deep copy.
func (f Matrix) Clone() Matrix {
	out := f
	out.X = f.X.Clone()
	return out
}

// LargeDecrease extracts the largely-decrease matrix X_D (Definition 2):
// the M x K submatrix of entries where the target blocks the direct path,
// X_D(i, u) = X(i, i*K + u).
func (f Matrix) LargeDecrease() *mat.Dense {
	xd := mat.New(f.Links, f.PerStrip)
	for i := 0; i < f.Links; i++ {
		for u := 0; u < f.PerStrip; u++ {
			xd.Set(i, u, f.X.At(i, i*f.PerStrip+u))
		}
	}
	return xd
}

// Relationship returns the K x K neighbor relationship matrix T (Eqn 4):
// T(p, q) = 1 when p and q are neighboring locations along a strip.
func Relationship(k int) *mat.Dense {
	if k <= 0 {
		panic("fingerprint: Relationship requires k > 0")
	}
	t := mat.New(k, k)
	for p := 0; p < k; p++ {
		if p > 0 {
			t.Set(p, p-1, 1)
		}
		if p < k-1 {
			t.Set(p, p+1, 1)
		}
	}
	return t
}

// Continuity returns the K x K continuity matrix G of Eqns 14-16: the
// column-normalized version of T - diag(colsum(T)), with the middle
// column(s) re-defined to penalize asymmetry rather than deviation from
// the neighbor average. The paper re-defines the middle columns because
// the RSS along a link first rises and then falls (the V-shape of the
// knife-edge loss), so the V's bottom would otherwise be penalized as a
// discontinuity.
func Continuity(k int) *mat.Dense {
	if k <= 0 {
		panic("fingerprint: Continuity requires k > 0")
	}
	t := Relationship(k)
	// G* = T - diag(column sums of T).
	gstar := t.Clone()
	colSums := t.ColSums()
	for p := 0; p < k; p++ {
		gstar.Set(p, p, -colSums[p])
	}
	// Column-normalize so each diagonal becomes +1 (divide column p by
	// -G*(p,p), i.e. by the neighbor count).
	g := mat.New(k, k)
	for p := 0; p < k; p++ {
		d := -gstar.At(p, p)
		if d == 0 {
			continue
		}
		for i := 0; i < k; i++ {
			g.Set(i, p, -gstar.At(i, p)/d)
		}
	}
	// Midpoint re-definition (Eqns 15-16). The paper's p is 1-based:
	// p = (K-1)/2 + 1, so the 0-based midpoint is m = (K-1)/2.
	redefine := func(p int) {
		if p < 0 || p >= k {
			return
		}
		for i := 0; i < k; i++ {
			g.Set(i, p, 0)
		}
		if p+1 < k {
			g.Set(p+1, p, 1)
		}
		if p-1 >= 0 {
			g.Set(p-1, p, -1)
		}
	}
	if (k-1)%2 == 0 {
		redefine((k - 1) / 2)
	} else {
		redefine((k - 1) / 2)
		redefine((k-1)/2 + 1)
	}
	return g
}

// Similarity returns the M x M adjacent-link similarity matrix
// H = Toeplitz(-1, 1, 0) of Eqn 17.
func Similarity(m int) *mat.Dense {
	if m <= 0 {
		panic("fingerprint: Similarity requires m > 0")
	}
	return mat.ToeplitzBand(m, -1, 1, 0)
}

// NLC computes the normalized location-continuity values of Eqn 5 for
// every entry of the largely-decrease matrix xd: the absolute difference
// between an entry and the mean of its strip neighbors, normalized by the
// full dynamic range of |xd|. Small values mean the RSS is continuous
// along the link (Observation 2).
func NLC(xd *mat.Dense) *mat.Dense {
	m, k := xd.Dims()
	t := Relationship(k)
	absXD := xd.Apply(func(_, _ int, v float64) float64 {
		if v < 0 {
			return -v
		}
		return v
	})
	rangeAbs := absXD.Max() - absXD.Min()
	if rangeAbs == 0 {
		rangeAbs = 1
	}
	out := mat.New(m, k)
	for i := 0; i < m; i++ {
		for u := 0; u < k; u++ {
			var sum, cnt float64
			for w := 0; w < k; w++ {
				if t.At(w, u) == 1 {
					sum += absXD.At(i, w)
					cnt++
				}
			}
			avg := sum / cnt
			d := absXD.At(i, u) - avg
			if d < 0 {
				d = -d
			}
			out.Set(i, u, d/rangeAbs)
		}
	}
	return out
}

// ALS computes the adjacent-link similarity values of Eqn 6 for rows
// 1..M-1 of the largely-decrease matrix xd: |XD(i,u) - XD(i-1,u)|
// normalized by the largest difference between any two adjacent links.
// Small values mean adjacent links read similarly at the same relative
// location (Observation 3).
func ALS(xd *mat.Dense) *mat.Dense {
	m, k := xd.Dims()
	if m < 2 {
		panic("fingerprint: ALS requires at least two links")
	}
	diffs := mat.New(m-1, k)
	for i := 1; i < m; i++ {
		for u := 0; u < k; u++ {
			d := xd.At(i, u) - xd.At(i-1, u)
			if d < 0 {
				d = -d
			}
			diffs.Set(i-1, u, d)
		}
	}
	maxDiff := diffs.Max()
	if maxDiff == 0 {
		maxDiff = 1
	}
	return mat.Scale(1/maxDiff, diffs)
}
