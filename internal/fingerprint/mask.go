package fingerprint

import (
	"fmt"

	"iupdater/internal/mat"
)

// Mask is the 0/1 index matrix B of Eqn 8: B(i, j) = 1 when entry (i, j)
// is a no-decrease element that can be measured without the target
// present, 0 when the entry requires the target ("labor-cost"
// measurement).
type Mask struct {
	B *mat.Dense
}

// NewMask builds a mask from an affected predicate: affected(i, j)
// reports whether link i's reading changes when the target stands at
// cell j.
func NewMask(links, cells int, affected func(i, j int) bool) Mask {
	b := mat.New(links, cells)
	for i := 0; i < links; i++ {
		for j := 0; j < cells; j++ {
			if !affected(i, j) {
				b.Set(i, j, 1)
			}
		}
	}
	return Mask{B: b}
}

// Known reports whether entry (i, j) is measurable without the target.
func (m Mask) Known(i, j int) bool { return m.B.At(i, j) == 1 }

// KnownCount returns the number of no-decrease entries.
func (m Mask) KnownCount() int {
	var n int
	rows, cols := m.B.Dims()
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if m.B.At(i, j) == 1 {
				n++
			}
		}
	}
	return n
}

// UnknownCount returns the number of entries requiring the target.
func (m Mask) UnknownCount() int {
	rows, cols := m.B.Dims()
	return rows*cols - m.KnownCount()
}

// Project returns B ∘ X: X restricted to the known entries, zero
// elsewhere.
func (m Mask) Project(x *mat.Dense) *mat.Dense {
	return mat.Hadamard(m.B, x)
}

// Complement returns the mask of affected entries (1 - B).
func (m Mask) Complement() Mask {
	return Mask{B: m.B.Apply(func(_, _ int, v float64) float64 { return 1 - v })}
}

// Validate checks structural invariants: entries are exactly 0 or 1.
func (m Mask) Validate() error {
	rows, cols := m.B.Dims()
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if v := m.B.At(i, j); v != 0 && v != 1 {
				return fmt.Errorf("fingerprint: mask entry (%d,%d) = %v, want 0 or 1", i, j, v)
			}
		}
	}
	return nil
}
