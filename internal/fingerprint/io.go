package fingerprint

import (
	"encoding/gob"
	"fmt"
	"io"
)

// Database is the persistent fingerprint database: the latest fingerprint
// matrix plus the mask of no-decrease entries, as maintained by the
// Reconstruction Data Collection module of Fig 10.
type Database struct {
	Fingerprint Matrix
	Mask        Mask
}

// Save serializes the database with encoding/gob.
func (d *Database) Save(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(d); err != nil {
		return fmt.Errorf("fingerprint: save database: %w", err)
	}
	return nil
}

// Load reads a database produced by Save.
func Load(r io.Reader) (*Database, error) {
	var d Database
	if err := gob.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("fingerprint: load database: %w", err)
	}
	m, n := d.Fingerprint.X.Dims()
	if m != d.Fingerprint.Links || n != d.Fingerprint.Links*d.Fingerprint.PerStrip {
		return nil, fmt.Errorf("fingerprint: load database: inconsistent dimensions %dx%d for M=%d K=%d",
			m, n, d.Fingerprint.Links, d.Fingerprint.PerStrip)
	}
	if err := d.Mask.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}
