package fingerprint

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"iupdater/internal/mat"
)

func TestNewValidatesDivisibility(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with N not divisible by M did not panic")
		}
	}()
	New(mat.New(3, 10), 0)
}

func TestLargeDecreaseExtraction(t *testing.T) {
	// 4 links x 12 cells, as in the paper's Fig 7 example.
	x := mat.New(4, 12)
	for i := 0; i < 4; i++ {
		for j := 0; j < 12; j++ {
			x.Set(i, j, float64(100*i+j))
		}
	}
	f := New(x, 0)
	xd := f.LargeDecrease()
	if r, c := xd.Dims(); r != 4 || c != 3 {
		t.Fatalf("XD dims = %dx%d, want 4x3", r, c)
	}
	// XD(i, u) = X(i, i*K + u) with K = 3.
	for i := 0; i < 4; i++ {
		for u := 0; u < 3; u++ {
			want := float64(100*i + 3*i + u)
			if got := xd.At(i, u); got != want {
				t.Errorf("XD(%d,%d) = %v, want %v", i, u, got, want)
			}
		}
	}
}

func TestRelationshipMatchesPaperExample(t *testing.T) {
	// Eqn 14's example for N/M = 3.
	want := mat.NewFromRows([][]float64{
		{0, 1, 0},
		{1, 0, 1},
		{0, 1, 0},
	})
	if got := Relationship(3); !got.Equal(want) {
		t.Errorf("T =\n%vwant\n%v", got, want)
	}
}

func TestRelationshipSymmetric(t *testing.T) {
	for _, k := range []int{2, 3, 7, 12, 15} {
		tm := Relationship(k)
		if !tm.Equal(tm.T()) {
			t.Errorf("T(%d) not symmetric", k)
		}
	}
}

func TestContinuityMatchesPaperExampleStructure(t *testing.T) {
	// For K=3 before midpoint redefinition the paper's G is
	// [1 -0.5 0; -1 1 -1; 0 -0.5 1]; the midpoint column (p=2, 1-based)
	// is then redefined by Eqn 15 to (-1, 0, 1)ᵀ.
	g := Continuity(3)
	want := mat.NewFromRows([][]float64{
		{1, -1, 0},
		{-1, 0, -1},
		{0, 1, 1},
	})
	if !g.EqualApprox(want, 1e-12) {
		t.Errorf("G =\n%vwant\n%v", g, want)
	}
}

func TestContinuityNonMidColumnsAverageNeighbors(t *testing.T) {
	// For a column p far from the midpoint: diagonal 1, neighbors -1/deg.
	g := Continuity(12)
	// Column 0: diag 1, entry (1,0) = -1 (single neighbor).
	if g.At(0, 0) != 1 || g.At(1, 0) != -1 {
		t.Errorf("column 0 = %v,%v", g.At(0, 0), g.At(1, 0))
	}
	// Column 2 (interior, away from mid 5.5): diag 1, neighbors -0.5.
	if g.At(2, 2) != 1 || g.At(1, 2) != -0.5 || g.At(3, 2) != -0.5 {
		t.Errorf("column 2 = %v,%v,%v", g.At(1, 2), g.At(2, 2), g.At(3, 2))
	}
}

func TestContinuityMidpointRedefinitionEven(t *testing.T) {
	// K=12: paper p = (12-1)/2 + 1 = 6.5 (1-based), so 0-based columns 5
	// and 6 are redefined: zero diagonal, +1 below, -1 above.
	g := Continuity(12)
	for _, p := range []int{5, 6} {
		if g.At(p, p) != 0 {
			t.Errorf("G(%d,%d) = %v, want 0", p, p, g.At(p, p))
		}
		if g.At(p+1, p) != 1 {
			t.Errorf("G(%d,%d) = %v, want 1", p+1, p, g.At(p+1, p))
		}
		if g.At(p-1, p) != -1 {
			t.Errorf("G(%d,%d) = %v, want -1", p-1, p, g.At(p-1, p))
		}
	}
}

func TestContinuityMidpointRedefinitionOdd(t *testing.T) {
	// K=15: p = 8 (1-based) is an integer, so only 0-based column 7.
	g := Continuity(15)
	p := 7
	if g.At(p, p) != 0 || g.At(p+1, p) != 1 || g.At(p-1, p) != -1 {
		t.Errorf("mid column = %v,%v,%v", g.At(p-1, p), g.At(p, p), g.At(p+1, p))
	}
	// Its neighbors are regular columns.
	if g.At(5, 5) != 1 {
		t.Errorf("G(5,5) = %v, want 1", g.At(5, 5))
	}
}

func TestContinuityAnnihilatesSmoothVShape(t *testing.T) {
	// A symmetric V-shaped row (linear down then up) should produce a
	// near-zero penalty: linear segments have zero second difference and
	// the redefined midpoint column only checks V symmetry.
	k := 11
	g := Continuity(k)
	row := make([]float64, k)
	for u := 0; u < k; u++ {
		row[u] = math.Abs(float64(u) - 5) // V with bottom at u=5
	}
	xd := mat.NewFromData(1, k, row)
	pen := mat.Mul(xd, g)
	// All interior entries except columns adjacent to the kink are 0.
	for u := 0; u < k; u++ {
		v := math.Abs(pen.At(0, u))
		if u == 0 || u == k-1 || u == 4 || u == 6 {
			continue // edge columns and kink-adjacent columns may be non-zero
		}
		if v > 1e-12 {
			t.Errorf("V-shape penalty at column %d = %v, want 0", u, v)
		}
	}
	// Crucially the bottom of the V (midpoint) itself is not penalized.
	if v := math.Abs(pen.At(0, 5)); v > 1e-12 {
		t.Errorf("V bottom penalized: %v", v)
	}
}

func TestSimilarityMatchesEqn17(t *testing.T) {
	h := Similarity(4)
	want := mat.NewFromRows([][]float64{
		{1, 0, 0, 0},
		{-1, 1, 0, 0},
		{0, -1, 1, 0},
		{0, 0, -1, 1},
	})
	if !h.Equal(want) {
		t.Errorf("H =\n%vwant\n%v", h, want)
	}
}

func TestSimilarityComputesRowDifferences(t *testing.T) {
	h := Similarity(3)
	xd := mat.NewFromRows([][]float64{
		{1, 2},
		{1.5, 2.5},
		{1.4, 2.7},
	})
	prod := mat.Mul(h, xd)
	// Row 1 = XD row 1 - XD row 0, row 2 = XD row 2 - XD row 1.
	if math.Abs(prod.At(1, 0)-0.5) > 1e-12 || math.Abs(prod.At(2, 1)-0.2) > 1e-12 {
		t.Errorf("H*XD =\n%v", prod)
	}
}

func TestNLCSmallForContinuousRows(t *testing.T) {
	// A smooth row must have tiny NLC; a row with a spike must flag it.
	smooth := mat.NewFromData(1, 8, []float64{-70, -71, -72, -73, -74, -75, -76, -77})
	nlc := NLC(smooth)
	for u := 1; u < 7; u++ {
		if nlc.At(0, u) > 0.05 {
			t.Errorf("smooth NLC(%d) = %v", u, nlc.At(0, u))
		}
	}
	spiky := mat.NewFromData(1, 8, []float64{-70, -71, -60, -73, -74, -75, -76, -77})
	ns := NLC(spiky)
	if ns.At(0, 2) < 0.3 {
		t.Errorf("spike NLC = %v, want large", ns.At(0, 2))
	}
}

func TestALSSmallForSimilarLinks(t *testing.T) {
	similar := mat.NewFromRows([][]float64{
		{-70, -72, -74},
		{-70.5, -72.5, -74.2},
		{-80, -60, -74}, // dissimilar third link
	})
	a := ALS(similar)
	if r, c := a.Dims(); r != 2 || c != 3 {
		t.Fatalf("ALS dims = %dx%d", r, c)
	}
	// Row 0 (links 0-1): all small. Row 1 (links 1-2): contains the max.
	for u := 0; u < 3; u++ {
		if a.At(0, u) > 0.1 {
			t.Errorf("similar links ALS(%d) = %v", u, a.At(0, u))
		}
	}
	if a.Max() != 1 {
		t.Errorf("ALS max = %v, want 1 (normalization)", a.Max())
	}
}

func TestMaskCounts(t *testing.T) {
	m := NewMask(2, 4, func(i, j int) bool { return i == 0 && j < 2 })
	if got := m.UnknownCount(); got != 2 {
		t.Errorf("UnknownCount = %d, want 2", got)
	}
	if got := m.KnownCount(); got != 6 {
		t.Errorf("KnownCount = %d, want 6", got)
	}
	if m.Known(0, 0) || !m.Known(1, 0) {
		t.Error("Known() misclassifies")
	}
	if err := m.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestMaskProjectAndComplement(t *testing.T) {
	m := NewMask(2, 2, func(i, j int) bool { return i == j })
	x := mat.NewFromRows([][]float64{{1, 2}, {3, 4}})
	proj := m.Project(x)
	// Affected (i==j) entries are unknown -> zeroed by projection.
	if proj.At(0, 0) != 0 || proj.At(1, 1) != 0 || proj.At(0, 1) != 2 || proj.At(1, 0) != 3 {
		t.Errorf("Project =\n%v", proj)
	}
	comp := m.Complement()
	if comp.KnownCount() != 2 {
		t.Errorf("Complement KnownCount = %d, want 2", comp.KnownCount())
	}
}

func TestDatabaseSaveLoadRoundTrip(t *testing.T) {
	x := mat.NewFromRows([][]float64{
		{-60, -61, -62, -63},
		{-70, -71, -72, -73},
	})
	db := &Database{
		Fingerprint: New(x, 12345),
		Mask:        NewMask(2, 4, func(i, j int) bool { return j == 0 }),
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !got.Fingerprint.X.Equal(db.Fingerprint.X) {
		t.Error("fingerprint matrix did not round-trip")
	}
	if got.Fingerprint.CollectedAt != 12345 {
		t.Errorf("CollectedAt = %v", got.Fingerprint.CollectedAt)
	}
	if !got.Mask.B.Equal(db.Mask.B) {
		t.Error("mask did not round-trip")
	}
}

func TestLoadRejectsCorruptStream(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a gob stream"))); err == nil {
		t.Error("Load accepted garbage")
	}
}

func TestQuickNLCBounded(t *testing.T) {
	// NLC values are always in [0, 1] by construction.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(6)
		k := 2 + rng.Intn(12)
		xd := mat.RandomNormal(m, k, rng)
		nlc := NLC(xd)
		return nlc.Min() >= 0 && nlc.Max() <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickALSBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(6)
		k := 2 + rng.Intn(12)
		xd := mat.RandomNormal(m, k, rng)
		a := ALS(xd)
		return a.Min() >= 0 && a.Max() <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickContinuityColumnStructure(t *testing.T) {
	// Every non-mid column of G sums to zero (a weighted difference), and
	// redefined mid columns also sum to zero.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 3 + rng.Intn(15)
		g := Continuity(k)
		sums := g.ColSums()
		for _, s := range sums {
			if math.Abs(s) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
