package testbed

import (
	"math"
	"testing"

	"iupdater/internal/geom"
	"iupdater/internal/mat"
)

func TestEnvironmentPresetsMatchPaper(t *testing.T) {
	tests := []struct {
		env       Environment
		links     int
		cells     int
		multipath string
	}{
		{Office(), 8, 96, "medium"},
		{Library(), 6, 72, "high"},
		{Hall(), 8, 120, "low"},
	}
	for _, tt := range tests {
		t.Run(tt.env.Name, func(t *testing.T) {
			if got := tt.env.NumLinks(); got != tt.links {
				t.Errorf("links = %d, want %d", got, tt.links)
			}
			if got := tt.env.NumCells(); got != tt.cells {
				t.Errorf("cells = %d, want %d", got, tt.cells)
			}
			if tt.env.Multipath != tt.multipath {
				t.Errorf("multipath = %q, want %q", tt.env.Multipath, tt.multipath)
			}
		})
	}
}

func TestMultipathOrdering(t *testing.T) {
	h, o, l := Hall(), Office(), Library()
	if !(h.Radio.MultipathSigmaDB < o.Radio.MultipathSigmaDB &&
		o.Radio.MultipathSigmaDB < l.Radio.MultipathSigmaDB) {
		t.Error("multipath richness not ordered hall < office < library")
	}
	if !(h.Radio.TargetPerturbSigmaDB < o.Radio.TargetPerturbSigmaDB &&
		o.Radio.TargetPerturbSigmaDB < l.Radio.TargetPerturbSigmaDB) {
		t.Error("target perturbation not ordered hall < office < library")
	}
}

func TestTimestamps(t *testing.T) {
	ts := Timestamps()
	labels := TimestampLabels()
	if len(ts) != 6 || len(labels) != 6 {
		t.Fatalf("want 6 timestamps, got %d/%d", len(ts), len(labels))
	}
	if ts[0] != 0 {
		t.Error("first timestamp must be the original time")
	}
	for i := 1; i < len(ts); i++ {
		if ts[i] <= ts[i-1] {
			t.Error("timestamps not increasing")
		}
	}
	if ts[5] != 90*Day {
		t.Errorf("last timestamp = %v, want 90 days", ts[5])
	}
	if len(UpdateTimestamps()) != 5 || UpdateTimestamps()[0] != 3*Day {
		t.Error("UpdateTimestamps must drop the original time")
	}
}

func TestSurveySecondsMatchesPaperArithmetic(t *testing.T) {
	// §VI-C: traditional 94-location survey with 50 samples:
	// 93*5 + 50*0.5*94 = 2815 s (= 46.9 min).
	if got := SurveySeconds(94, 50); math.Abs(got-2815) > 1e-9 {
		t.Errorf("traditional = %v s, want 2815", got)
	}
	// iUpdater: 8 locations, 5 samples: 7*5 + 5*0.5*8 = 55 s.
	if got := SurveySeconds(8, 5); math.Abs(got-55) > 1e-9 {
		t.Errorf("iUpdater = %v s, want 55", got)
	}
	if got := SurveySeconds(0, 50); got != 0 {
		t.Errorf("empty survey = %v, want 0", got)
	}
}

func TestPaperLaborSavings(t *testing.T) {
	// §VI-C reports 97.9% saving vs the 50-sample traditional survey and
	// 92.1% vs a 5-sample traditional survey.
	trad50 := TraditionalUpdateSeconds(94, 50)
	trad5 := TraditionalUpdateSeconds(94, 5)
	ours := IUpdaterUpdateSeconds(8, 5)
	s50 := SavingFraction(trad50, ours)
	if s50 < 0.975 || s50 > 0.985 {
		t.Errorf("saving vs 50-sample = %.3f, want ≈0.979", s50)
	}
	s5 := SavingFraction(trad5, ours)
	if s5 < 0.915 || s5 > 0.927 {
		t.Errorf("saving vs 5-sample = %.3f, want ≈0.921", s5)
	}
}

func TestLaborScalingShape(t *testing.T) {
	// Fig 20: traditional cost grows ~quadratically to tens of hours;
	// iUpdater stays far below one hour even at 10x edge length.
	pts := LaborScaling(94, 8, []int{2, 4, 6, 8, 10})
	for i, p := range pts {
		if p.IUpdaterHours >= p.TraditionalHours {
			t.Errorf("scale %d: iUpdater %.2f h not below traditional %.2f h",
				p.Scale, p.IUpdaterHours, p.TraditionalHours)
		}
		if i > 0 && (p.TraditionalHours <= pts[i-1].TraditionalHours ||
			p.IUpdaterHours <= pts[i-1].IUpdaterHours) {
			t.Error("costs must grow with area")
		}
	}
	last := pts[len(pts)-1]
	if last.TraditionalHours < 50 || last.TraditionalHours > 100 {
		t.Errorf("traditional at 10x = %.1f h, want ~78 h", last.TraditionalHours)
	}
	if last.IUpdaterHours > 0.5 {
		t.Errorf("iUpdater at 10x = %.2f h, want < 0.5 h", last.IUpdaterHours)
	}
}

func TestFullSurveyShape(t *testing.T) {
	s := NewSurveyor(Office(), 5)
	fp, labor := s.FullSurvey(0, 5)
	m, n := fp.X.Dims()
	if m != 8 || n != 96 {
		t.Fatalf("survey dims = %dx%d", m, n)
	}
	if labor.Locations != 96 || labor.SamplesPerLocation != 5 {
		t.Errorf("labor = %+v", labor)
	}
	if labor.Seconds != SurveySeconds(96, 5) {
		t.Errorf("labor seconds = %v", labor.Seconds)
	}
	if !fp.X.IsFinite() {
		t.Error("survey contains non-finite values")
	}
	// All readings are plausible dBm values.
	if fp.X.Max() > -30 || fp.X.Min() < -110 {
		t.Errorf("implausible RSS range [%v, %v]", fp.X.Min(), fp.X.Max())
	}
}

func TestFullSurveyCloseToTruth(t *testing.T) {
	s := NewSurveyor(Office(), 6)
	fp, _ := s.FullSurvey(0, TraditionalSamples)
	truth := s.TrueFingerprint(0)
	diff := mat.SubM(fp.X, truth.X)
	var sum float64
	m, n := diff.Dims()
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			sum += math.Abs(diff.At(i, j))
		}
	}
	meanAbs := sum / float64(m*n)
	// 50-sample averaging suppresses most but not all short-term noise
	// (the common-mode component is correlated within a dwell).
	if meanAbs > 1.5 {
		t.Errorf("mean |survey - truth| = %.2f dB, want < 1.5", meanAbs)
	}
}

func TestReferenceSurvey(t *testing.T) {
	s := NewSurveyor(Office(), 7)
	refs := []int{6, 18, 30, 42, 54, 66, 78, 90}
	xr, labor := s.ReferenceSurvey(45*Day, refs, IUpdaterSamples)
	m, n := xr.Dims()
	if m != 8 || n != len(refs) {
		t.Fatalf("XR dims = %dx%d", m, n)
	}
	if labor.Locations != len(refs) {
		t.Errorf("labor locations = %d", labor.Locations)
	}
	// Reference columns should be close to the true columns at that time.
	truth := s.TrueFingerprint(45 * Day)
	for k, j := range refs {
		for i := 0; i < m; i++ {
			if d := math.Abs(xr.At(i, k) - truth.X.At(i, j)); d > 5 {
				t.Errorf("ref col %d link %d off truth by %.1f dB", k, i, d)
			}
		}
	}
}

func TestMaskStructure(t *testing.T) {
	s := NewSurveyor(Office(), 8)
	mask := s.Mask()
	if err := mask.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Own-strip entries are always unknown (the target on the direct path
	// certainly changes the reading).
	g := s.Channel.Grid()
	for i := 0; i < g.Links; i++ {
		for u := 0; u < g.PerStrip; u++ {
			if mask.Known(i, g.CellIndex(i, u)) {
				t.Fatalf("own-strip entry (%d, pos %d) marked known", i, u)
			}
		}
	}
	// A sizable fraction of the matrix is known (the whole point of the
	// no-decrease measurements).
	frac := float64(mask.KnownCount()) / float64(8*96)
	if frac < 0.4 || frac > 0.9 {
		t.Errorf("known fraction = %.2f, want 0.4..0.9", frac)
	}
}

func TestNoDecreaseScanMatchesMaskAndBaseline(t *testing.T) {
	s := NewSurveyor(Office(), 9)
	mask := s.Mask()
	xb := s.NoDecreaseScan(5*Day, IUpdaterSamples)
	truth := s.TrueFingerprint(5 * Day)
	m, n := xb.Dims()
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if !mask.Known(i, j) {
				if xb.At(i, j) != 0 {
					t.Fatalf("unknown entry (%d,%d) non-zero", i, j)
				}
				continue
			}
			// Known entries read the current baseline: close to truth
			// because the target effect there is ~0.
			if d := math.Abs(xb.At(i, j) - truth.X.At(i, j)); d > 4 {
				t.Errorf("no-decrease entry (%d,%d) off truth by %.1f dB", i, j, d)
			}
		}
	}
}

func TestMeasureOnline(t *testing.T) {
	s := NewSurveyor(Office(), 10)
	p := geom.Point{X: 6.2, Y: 4.7}
	y := s.MeasureOnline(p, 1000, 5)
	if len(y) != 8 {
		t.Fatalf("len(y) = %d", len(y))
	}
	for i, v := range y {
		if v > -30 || v < -110 {
			t.Errorf("y[%d] = %v dBm implausible", i, v)
		}
	}
	// The links near the target must read lower than their baseline.
	cell := s.Channel.Grid().CellAt(p)
	strip := s.Channel.Grid().Strip(cell)
	base := s.Channel.CleanRSS(strip, -1) + s.Channel.Drift(strip, 1000)
	if y[strip] >= base {
		t.Errorf("own link reading %v not below baseline %v", y[strip], base)
	}
}

func TestSurveyDeterminism(t *testing.T) {
	a, _ := NewSurveyor(Office(), 11).FullSurvey(0, 5)
	b, _ := NewSurveyor(Office(), 11).FullSurvey(0, 5)
	if !a.X.Equal(b.X) {
		t.Error("identical seeds produced different surveys")
	}
}

func TestTrueFingerprintDriftConsistency(t *testing.T) {
	s := NewSurveyor(Office(), 12)
	f0 := s.TrueFingerprint(0)
	f45 := s.TrueFingerprint(45 * Day)
	mask := s.Mask()
	for i := 0; i < 8; i++ {
		linkShift := s.Channel.Drift(i, 45*Day) - s.Channel.Drift(i, 0)
		for j := 0; j < 96; j++ {
			d := f45.X.At(i, j) - f0.X.At(i, j)
			if mask.Known(i, j) {
				// Unaffected entries drift exactly with the link gain, so
				// the no-decrease scan stays a valid measurement of them.
				if math.Abs(d-linkShift) > 1e-9 {
					t.Fatalf("known entry (%d,%d) drift %v != link drift %v", i, j, d, linkShift)
				}
			} else if math.Abs(d-linkShift) > 5 {
				// Affected entries additionally carry the bounded spatial
				// target-effect drift.
				t.Fatalf("affected entry (%d,%d) drift deviation %v too large", i, j, d-linkShift)
			}
		}
	}
}

func TestTrueFingerprintSpatialDriftSmooth(t *testing.T) {
	// The target-effect drift must vary smoothly along a strip: the
	// neighbor-difference of the drift deviation stays well below the
	// deviation itself (Observation 2's physical basis).
	s := NewSurveyor(Office(), 13)
	f0 := s.TrueFingerprint(0)
	f45 := s.TrueFingerprint(45 * Day)
	g := s.Channel.Grid()
	var devSum, diffSum float64
	var devN, diffN int
	for i := 0; i < g.Links; i++ {
		linkShift := s.Channel.Drift(i, 45*Day) - s.Channel.Drift(i, 0)
		var prev float64
		for u := 0; u < g.PerStrip; u++ {
			j := g.CellIndex(i, u)
			dev := f45.X.At(i, j) - f0.X.At(i, j) - linkShift
			devSum += math.Abs(dev)
			devN++
			if u > 0 {
				diffSum += math.Abs(dev - prev)
				diffN++
			}
			prev = dev
		}
	}
	meanDev := devSum / float64(devN)
	meanDiff := diffSum / float64(diffN)
	if meanDev == 0 {
		t.Fatal("no spatial drift present")
	}
	if meanDiff > 0.6*meanDev {
		t.Errorf("spatial drift not smooth: mean neighbor diff %.3f vs mean deviation %.3f", meanDiff, meanDev)
	}
}
