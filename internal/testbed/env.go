// Package testbed simulates the paper's three deployment environments and
// the human survey campaigns that build and refresh fingerprint databases,
// including the labor-cost accounting of Section VI-C.
package testbed

import (
	"fmt"

	"iupdater/internal/geom"
	"iupdater/internal/rf"
)

// Environment describes one deployment: geometry plus radio calibration.
type Environment struct {
	// Name identifies the environment ("office", "library", "hall").
	Name string
	// Multipath is a human-readable multipath richness label.
	Multipath string
	// Grid is the strip-major deployment grid.
	Grid geom.Grid
	// Radio is the calibrated radio parameter set.
	Radio rf.Params
}

// NumLinks returns M.
func (e Environment) NumLinks() int { return e.Grid.Links }

// NumCells returns N.
func (e Environment) NumCells() int { return e.Grid.NumCells() }

// String implements fmt.Stringer.
func (e Environment) String() string {
	return fmt.Sprintf("%s (%s multipath, %d links x %d cells)",
		e.Name, e.Multipath, e.NumLinks(), e.NumCells())
}

// Office returns the paper's office environment: 9 m x 12 m, desks and
// cubicles (medium multipath, mixed LoS/NLoS), 8 links. The paper surveys
// 94 effective grid cells; we use 96 = 8 strips x 12 cells so that
// N = M*(N/M) holds exactly as Definition 2 assumes.
func Office() Environment {
	p := rf.DefaultParams()
	p.PathLossExp = 2.8
	p.MultipathSigmaDB = 0.8
	p.TargetPerturbSigmaDB = 1.5
	p.TargetDriftSigmaDB = 1.0
	p.NoiseCommonSigmaDB = 0.85
	p.NoiseIdioSigmaDB = 0.45
	return Environment{
		Name:      "office",
		Multipath: "medium",
		Grid:      geom.NewGrid(12, 9, 8, 12),
		Radio:     p,
	}
}

// Library returns the paper's library environment: 8 m x 11 m, metal
// bookshelves full of books (high multipath, rich NLoS), 6 links, 72 grid
// cells (6 strips x 12 cells, matching the paper exactly).
func Library() Environment {
	p := rf.DefaultParams()
	p.PathLossExp = 3.3
	p.MultipathSigmaDB = 1.3
	p.TargetPerturbSigmaDB = 2.4
	p.TargetDriftSigmaDB = 1.6
	p.NoiseCommonSigmaDB = 1.0
	p.NoiseIdioSigmaDB = 0.6
	return Environment{
		Name:      "library",
		Multipath: "high",
		Grid:      geom.NewGrid(11, 8, 6, 12),
		Radio:     p,
	}
}

// Hall returns the paper's empty-hall environment: 10 m x 10 m, mostly
// LoS (low multipath), 8 links, 120 grid cells (8 strips x 15 cells,
// matching the paper exactly).
func Hall() Environment {
	p := rf.DefaultParams()
	p.PathLossExp = 2.1
	p.MultipathSigmaDB = 0.5
	p.TargetPerturbSigmaDB = 0.8
	p.TargetDriftSigmaDB = 0.6
	p.NoiseCommonSigmaDB = 0.75
	p.NoiseIdioSigmaDB = 0.35
	return Environment{
		Name:      "hall",
		Multipath: "low",
		Grid:      geom.NewGrid(10, 10, 8, 15),
		Radio:     p,
	}
}

// Environments returns the paper's three environments in evaluation order.
func Environments() []Environment {
	return []Environment{Hall(), Office(), Library()}
}

// Day is one day in seconds, the time unit of the survey schedule.
const Day = 86400.0

// Timestamps returns the six canonical survey times of the paper's
// three-month study: original, 3 days, 5 days, 15 days, 45 days, 3 months.
func Timestamps() []float64 {
	return []float64{0, 3 * Day, 5 * Day, 15 * Day, 45 * Day, 90 * Day}
}

// TimestampLabels returns display labels matching Timestamps.
func TimestampLabels() []string {
	return []string{"original", "3 days", "5 days", "15 days", "45 days", "3 months"}
}

// UpdateTimestamps returns the five post-original survey times used in the
// reconstruction figures (Figs 15-19, 22, 24).
func UpdateTimestamps() []float64 { return Timestamps()[1:] }

// UpdateTimestampLabels returns display labels matching UpdateTimestamps.
func UpdateTimestampLabels() []string { return TimestampLabels()[1:] }
