package testbed

import (
	"iupdater/internal/fingerprint"
	"iupdater/internal/geom"
	"iupdater/internal/mat"
	"iupdater/internal/rf"
)

// Survey timing constants measured in the paper's experiments (§VI-C):
// moving between two adjacent locations takes ~5 s and the RSS beacon
// interval is 0.5 s.
const (
	MoveSeconds    = 5.0
	SampleInterval = 0.5
	// TraditionalSamples is the per-location sample count of traditional
	// fingerprint systems (they average heavily to fight RSS variation).
	TraditionalSamples = 50
	// IUpdaterSamples is the per-location sample count iUpdater needs
	// (the difference-stability constraints replace most of the
	// averaging).
	IUpdaterSamples = 5
)

// Surveyor simulates the human measurement campaigns that build and
// refresh fingerprint databases on a given channel.
type Surveyor struct {
	Channel *rf.Channel
}

// NewSurveyor builds the channel for env with the given seed and wraps it
// in a Surveyor.
func NewSurveyor(env Environment, seed uint64) *Surveyor {
	return &Surveyor{Channel: rf.NewChannel(env.Grid, env.Radio, seed)}
}

// Labor records the human cost of a survey.
type Labor struct {
	// Locations visited with the target present.
	Locations int
	// SamplesPerLocation collected at each visited location.
	SamplesPerLocation int
	// Seconds of human labor: moves between locations plus dwell time.
	Seconds float64
}

// SurveySeconds returns the labor model of §VI-C: (L-1) moves plus
// L*samples collection intervals.
func SurveySeconds(locations, samplesPerLocation int) float64 {
	if locations <= 0 {
		return 0
	}
	return float64(locations-1)*MoveSeconds +
		float64(locations)*float64(samplesPerLocation)*SampleInterval
}

// FullSurvey walks the target through every grid cell starting at time t0
// and records the averaged RSS of every link — the traditional way to
// (re)build the whole fingerprint database.
func (s *Surveyor) FullSurvey(t0 float64, samplesPerLoc int) (fingerprint.Matrix, Labor) {
	ch := s.Channel
	m, n := ch.NumLinks(), ch.NumCells()
	x := mat.New(m, n)
	dwell := float64(samplesPerLoc) * SampleInterval
	for j := 0; j < n; j++ {
		tj := t0 + float64(j)*(MoveSeconds+dwell)
		for i := 0; i < m; i++ {
			x.Set(i, j, ch.SampleMean(i, j, tj, samplesPerLoc))
		}
	}
	labor := Labor{
		Locations:          n,
		SamplesPerLocation: samplesPerLoc,
		Seconds:            SurveySeconds(n, samplesPerLoc),
	}
	return fingerprint.New(x, t0), labor
}

// ReferenceSurvey measures fresh full columns at the given reference
// locations starting at t0: the only labor-cost measurements iUpdater
// needs for an update. It returns the M x len(refs) reference matrix X_R
// (Eqn 13).
func (s *Surveyor) ReferenceSurvey(t0 float64, refs []int, samplesPerLoc int) (*mat.Dense, Labor) {
	ch := s.Channel
	m := ch.NumLinks()
	xr := mat.New(m, len(refs))
	dwell := float64(samplesPerLoc) * SampleInterval
	for k, j := range refs {
		tk := t0 + float64(k)*(MoveSeconds+dwell)
		for i := 0; i < m; i++ {
			xr.Set(i, k, ch.SampleMean(i, j, tk, samplesPerLoc))
		}
	}
	labor := Labor{
		Locations:          len(refs),
		SamplesPerLocation: samplesPerLoc,
		Seconds:            SurveySeconds(len(refs), samplesPerLoc),
	}
	return xr, labor
}

// Mask returns the no-decrease index matrix B for this deployment: entry
// (i, j) is known (1) when link i does not react to a target at cell j.
func (s *Surveyor) Mask() fingerprint.Mask {
	ch := s.Channel
	return fingerprint.NewMask(ch.NumLinks(), ch.NumCells(), ch.Affected)
}

// NoDecreaseScan measures the no-decrease entries at time t without the
// target present (zero human labor): X_B = B ∘ (baseline readings). Each
// known entry of column j receives the link's current target-free reading.
func (s *Surveyor) NoDecreaseScan(t float64, samples int) *mat.Dense {
	ch := s.Channel
	m, n := ch.NumLinks(), ch.NumCells()
	mask := s.Mask()
	// One baseline reading per link, reused across that link's known
	// entries: without a target the reading does not depend on j.
	base := make([]float64, m)
	for i := 0; i < m; i++ {
		base[i] = ch.SampleMean(i, rf.NoTarget, t, samples)
	}
	xb := mat.New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if mask.Known(i, j) {
				xb.Set(i, j, base[i])
			}
		}
	}
	return xb
}

// TrueFingerprint returns the drift-inclusive, noise-free fingerprint
// matrix at time t: the ideal database a perfect survey would record.
func (s *Surveyor) TrueFingerprint(t float64) fingerprint.Matrix {
	ch := s.Channel
	m, n := ch.NumLinks(), ch.NumCells()
	x := mat.New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			x.Set(i, j, ch.TrueRSS(i, j, t))
		}
	}
	return fingerprint.New(x, t)
}

// MeasureOnlineMulti returns the online RSS vector with several targets
// present simultaneously (the multi-target extension).
func (s *Surveyor) MeasureOnlineMulti(pts []geom.Point, t float64, samples int) []float64 {
	ch := s.Channel
	m := ch.NumLinks()
	y := make([]float64, m)
	if samples <= 0 {
		samples = 1
	}
	for i := 0; i < m; i++ {
		var sum float64
		for k := 0; k < samples; k++ {
			sum += ch.SampleAtMulti(i, pts, t+SampleInterval*float64(k))
		}
		y[i] = sum / float64(samples)
	}
	return y
}

// MeasureOnline returns the online RSS vector y (Eqn 25) for a target at
// point p at time t, averaging the given number of samples.
func (s *Surveyor) MeasureOnline(p geom.Point, t float64, samples int) []float64 {
	ch := s.Channel
	m := ch.NumLinks()
	y := make([]float64, m)
	if samples <= 0 {
		samples = 1
	}
	for i := 0; i < m; i++ {
		var sum float64
		for k := 0; k < samples; k++ {
			sum += ch.SampleAt(i, p, t+SampleInterval*float64(k))
		}
		y[i] = sum / float64(samples)
	}
	return y
}
