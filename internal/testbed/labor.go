package testbed

// Labor-cost model of §VI-C and Fig 20. All returns are in seconds unless
// stated otherwise.

// TraditionalUpdateSeconds returns the labor to refresh a whole
// fingerprint database the traditional way: visit all locations and
// collect samplesPerLoc readings at each.
func TraditionalUpdateSeconds(locations, samplesPerLoc int) float64 {
	return SurveySeconds(locations, samplesPerLoc)
}

// IUpdaterUpdateSeconds returns the labor for an iUpdater refresh:
// visit only the reference locations with IUpdater's reduced sampling.
func IUpdaterUpdateSeconds(referenceLocations, samplesPerLoc int) float64 {
	return SurveySeconds(referenceLocations, samplesPerLoc)
}

// SavingFraction returns 1 - ours/baseline, the fraction of labor saved.
func SavingFraction(baselineSeconds, oursSeconds float64) float64 {
	if baselineSeconds <= 0 {
		return 0
	}
	return 1 - oursSeconds/baselineSeconds
}

// ScalingPoint is one x-position of Fig 20: the deployment area scaled to
// `Scale` times the original edge length.
type ScalingPoint struct {
	// Scale is the edge-length multiplier.
	Scale int
	// TraditionalHours is the whole-database update cost of existing
	// systems.
	TraditionalHours float64
	// IUpdaterHours is iUpdater's reference-only update cost.
	IUpdaterHours float64
}

// LaborScaling reproduces Fig 20: update time cost as the deployment area
// grows. Scaling the edge length by k scales the number of grid cells by
// k² and the number of links (hence reference locations) by k.
func LaborScaling(baseLocations, baseLinks int, scales []int) []ScalingPoint {
	out := make([]ScalingPoint, 0, len(scales))
	for _, k := range scales {
		locations := baseLocations * k * k
		refs := baseLinks * k
		out = append(out, ScalingPoint{
			Scale:            k,
			TraditionalHours: TraditionalUpdateSeconds(locations, TraditionalSamples) / 3600,
			IUpdaterHours:    IUpdaterUpdateSeconds(refs, IUpdaterSamples) / 3600,
		})
	}
	return out
}
