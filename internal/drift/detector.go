package drift

import "math"

// Detector is a streaming change detector over the residual sequence.
// Implementations are self-calibrating: they learn the stationary
// residual floor from the first samples after construction or Reset and
// flag when the stream shifts away from it. Implementations need not be
// safe for concurrent use; callers serialize Observe.
type Detector interface {
	// Observe consumes one residual and reports whether drift is
	// flagged at this sample. During calibration it always reports
	// false.
	Observe(residual float64) bool
	// Score returns the current drift statistic normalized by the
	// detection threshold: ~0 at the calibrated floor, >= 1 while
	// flagging. During calibration it returns 0.
	Score() float64
	// Reset discards all state including the calibrated floor; the
	// detector re-calibrates on the samples that follow (e.g. after a
	// database update changes the residual baseline).
	Reset()
}

// baseline accumulates the calibration-phase mean and standard deviation
// of the residual floor.
type baseline struct {
	target     int
	n          int
	sum, sumSq float64
	mu, sigma  float64
}

// observe consumes one calibration sample and reports whether the
// baseline is (now) calibrated.
func (b *baseline) observe(r float64, minSigma float64) bool {
	if b.n >= b.target {
		return true
	}
	b.n++
	b.sum += r
	b.sumSq += r * r
	if b.n < b.target {
		return false
	}
	nf := float64(b.n)
	b.mu = b.sum / nf
	v := b.sumSq/nf - b.mu*b.mu
	if v < 0 {
		v = 0
	}
	b.sigma = math.Max(math.Sqrt(v), minSigma)
	return true
}

func (b *baseline) reset() { *b = baseline{target: b.target} }

// export returns the calibrated floor; ok is false during calibration.
func (b *baseline) export() (mu, sigma float64, ok bool) {
	return b.mu, b.sigma, b.n >= b.target
}

// install skips calibration by marking the baseline complete at the
// given floor (e.g. one persisted from a previous process life).
func (b *baseline) install(mu, sigma float64, minSigma float64) {
	b.reset()
	b.n = b.target
	b.mu = mu
	b.sigma = math.Max(sigma, minSigma)
}

// MeanShiftConfig tunes the sliding-window mean-shift detector. The zero
// value selects the defaults noted per field.
type MeanShiftConfig struct {
	// Baseline is the number of calibration samples used to learn the
	// stationary residual floor (mean and sigma). Default 200.
	Baseline int
	// Window is the sliding-window length whose mean is compared
	// against the floor. Default 64.
	Window int
	// K is the detection threshold in floor-sigma units: drift is
	// flagged when the window mean exceeds mu0 + max(K*sigma0,
	// MinShiftDB). The window mean of W stationary residuals is far
	// tighter than one residual (sigma0/sqrt(W) if they were
	// independent; a few times that in practice, because interference
	// and ambient events correlate neighboring queries), so K well
	// below 1-residual sigma units still rejects noise: on the
	// simulated testbeds the worst stationary 64-window excursion over
	// 12k queries is ~0.9 sigma0 while 45 days of drift lifts the
	// window mean by 1.8 sigma0 or more. Default 1.5.
	K float64
	// MinShiftDB is an absolute lower bound (dB) on the detectable mean
	// shift, protecting against an underestimated sigma0 on very quiet
	// floors. Default 0.4.
	MinShiftDB float64
	// MinSigma floors the learned sigma0 (dB). Default 0.02.
	MinSigma float64
}

func (c MeanShiftConfig) withDefaults() MeanShiftConfig {
	if c.Baseline <= 0 {
		c.Baseline = 200
	}
	if c.Window <= 0 {
		c.Window = 64
	}
	if c.K <= 0 {
		c.K = 1.5
	}
	if c.MinShiftDB <= 0 {
		c.MinShiftDB = 0.4
	}
	if c.MinSigma <= 0 {
		c.MinSigma = 0.02
	}
	return c
}

// MeanShift flags drift when the mean of the last Window residuals
// exceeds the calibrated floor by a threshold: a robust detector for the
// abrupt, persistent shifts an environment change produces. The ring
// buffer is allocated once at construction; Observe is allocation-free.
type MeanShift struct {
	cfg    MeanShiftConfig
	base   baseline
	ring   []float64
	head   int
	filled int
	winSum float64
}

var _ Detector = (*MeanShift)(nil)

// NewMeanShift builds the detector (zero-value config fields select
// defaults).
func NewMeanShift(cfg MeanShiftConfig) *MeanShift {
	cfg = cfg.withDefaults()
	return &MeanShift{
		cfg:  cfg,
		base: baseline{target: cfg.Baseline},
		ring: make([]float64, cfg.Window),
	}
}

// Observe implements Detector.
func (d *MeanShift) Observe(r float64) bool {
	if !d.base.observe(r, d.cfg.MinSigma) {
		return false
	}
	d.winSum += r - d.ring[d.head]
	d.ring[d.head] = r
	d.head++
	if d.head == len(d.ring) {
		d.head = 0
	}
	if d.filled < len(d.ring) {
		d.filled++
		return false
	}
	return d.winSum/float64(d.filled) > d.base.mu+d.threshold()
}

func (d *MeanShift) threshold() float64 {
	return math.Max(d.cfg.K*d.base.sigma, d.cfg.MinShiftDB)
}

// Score implements Detector: the window mean's excess over the floor in
// threshold units.
func (d *MeanShift) Score() float64 {
	if d.filled == 0 || d.base.n < d.base.target {
		return 0
	}
	return (d.winSum/float64(d.filled) - d.base.mu) / d.threshold()
}

// Reset implements Detector.
func (d *MeanShift) Reset() {
	d.base.reset()
	for i := range d.ring {
		d.ring[i] = 0
	}
	d.head, d.filled, d.winSum = 0, 0, 0
}

// Baseline exports the calibrated residual floor for persistence; ok is
// false while the detector is still calibrating.
func (d *MeanShift) Baseline() (mu, sigma float64, ok bool) { return d.base.export() }

// SetBaseline installs a previously exported floor, skipping the
// calibration window entirely: the detector is armed as soon as the
// sliding window refills (Window observations instead of Baseline +
// Window). All streaming state is reset first.
func (d *MeanShift) SetBaseline(mu, sigma float64) {
	d.Reset()
	d.base.install(mu, sigma, d.cfg.MinSigma)
}

// PageHinkleyConfig tunes the Page-Hinkley (one-sided CUSUM) detector.
// The zero value selects the defaults noted per field.
type PageHinkleyConfig struct {
	// Baseline is the number of calibration samples. Default 200.
	Baseline int
	// Delta is the drift allowance in floor-sigma units: deviations
	// below mu0 + Delta*sigma0 decay the statistic instead of growing
	// it. Default 0.5.
	Delta float64
	// Lambda is the detection threshold on the cumulative statistic in
	// floor-sigma units. Default 40.
	Lambda float64
	// MinSigma floors the learned sigma0 (dB). Default 0.02.
	MinSigma float64
}

func (c PageHinkleyConfig) withDefaults() PageHinkleyConfig {
	if c.Baseline <= 0 {
		c.Baseline = 200
	}
	if c.Delta <= 0 {
		c.Delta = 0.5
	}
	if c.Lambda <= 0 {
		c.Lambda = 40
	}
	if c.MinSigma <= 0 {
		c.MinSigma = 0.02
	}
	return c
}

// PageHinkley accumulates the excess of each residual over the
// calibrated floor (minus a drift allowance) and flags when the
// accumulated excess rises Lambda sigmas above its running minimum — the
// classic sequential test for a sustained upward mean change. It detects
// slow ramps that never push a single window over the MeanShift
// threshold, at the cost of a longer delay on abrupt shifts.
type PageHinkley struct {
	cfg  PageHinkleyConfig
	base baseline
	mt   float64
	min  float64
}

var _ Detector = (*PageHinkley)(nil)

// NewPageHinkley builds the detector (zero-value config fields select
// defaults).
func NewPageHinkley(cfg PageHinkleyConfig) *PageHinkley {
	cfg = cfg.withDefaults()
	return &PageHinkley{cfg: cfg, base: baseline{target: cfg.Baseline}}
}

// Observe implements Detector.
func (d *PageHinkley) Observe(r float64) bool {
	if !d.base.observe(r, d.cfg.MinSigma) {
		return false
	}
	d.mt += r - d.base.mu - d.cfg.Delta*d.base.sigma
	if d.mt < d.min {
		d.min = d.mt
	}
	return d.mt-d.min > d.cfg.Lambda*d.base.sigma
}

// Score implements Detector.
func (d *PageHinkley) Score() float64 {
	if d.base.n < d.base.target {
		return 0
	}
	return (d.mt - d.min) / (d.cfg.Lambda * d.base.sigma)
}

// Reset implements Detector.
func (d *PageHinkley) Reset() {
	d.base.reset()
	d.mt, d.min = 0, 0
}

// Baseline exports the calibrated residual floor for persistence; ok is
// false while the detector is still calibrating.
func (d *PageHinkley) Baseline() (mu, sigma float64, ok bool) { return d.base.export() }

// SetBaseline installs a previously exported floor, skipping the
// calibration window entirely: the cumulative statistic restarts at
// zero against the installed floor. All streaming state is reset first.
func (d *PageHinkley) SetBaseline(mu, sigma float64) {
	d.Reset()
	d.base.install(mu, sigma, d.cfg.MinSigma)
}
