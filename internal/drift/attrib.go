package drift

// Attribution maintains per-link drift attribution over a stream of
// per-link shape errors (from Residualizer.ResidualAttributed): an
// exponentially weighted moving average of each link's absolute error,
// so a sustained drift on a subset of links stands out over the
// per-query matching noise. Knowing *which* links drifted diagnoses
// hardware faults (one link's EWMA high, the rest flat) versus
// environment change (broad rise), and gives the sampler a priority
// order over reference locations.
//
// Observe and TopK are allocation-free; callers serialize access (the
// Monitor holds its own lock).
type Attribution struct {
	alpha float64
	ew    []float64
	n     uint64
}

// DefaultAttributionAlpha is the EWMA smoothing factor when
// NewAttribution is given a non-positive alpha: the average spans
// roughly the last 1/alpha observations, matching the detectors'
// sliding-window scale.
const DefaultAttributionAlpha = 0.02

// NewAttribution builds a tracker over links RF links.
func NewAttribution(links int, alpha float64) *Attribution {
	if alpha <= 0 || alpha > 1 {
		alpha = DefaultAttributionAlpha
	}
	return &Attribution{alpha: alpha, ew: make([]float64, links)}
}

// Links returns the number of tracked links.
func (a *Attribution) Links() int { return len(a.ew) }

// Observations returns the number of samples since construction/Reset.
func (a *Attribution) Observations() uint64 { return a.n }

// Observe folds one per-link error vector (length Links()) into the
// averages. The first observation seeds the EWMA directly.
func (a *Attribution) Observe(perLink []float64) {
	if a.n == 0 {
		copy(a.ew, perLink[:len(a.ew)])
	} else {
		for i := range a.ew {
			a.ew[i] += a.alpha * (perLink[i] - a.ew[i])
		}
	}
	a.n++
}

// Reset clears the averages (a new snapshot version re-baselines what
// "error" means, exactly like the detector's floor).
func (a *Attribution) Reset() {
	for i := range a.ew {
		a.ew[i] = 0
	}
	a.n = 0
}

// LinkError returns link i's current EWMA error (dB).
func (a *Attribution) LinkError(i int) float64 { return a.ew[i] }

// TopK writes the worst-offending links in descending EWMA-error order
// into outLink/outErr (parallel slices, both at least as long as the
// wanted k) and returns how many entries were filled: min(k, Links()),
// or 0 before the first observation. No allocation is performed.
func (a *Attribution) TopK(outLink []int, outErr []float64) int {
	k := len(outLink)
	if len(outErr) < k {
		k = len(outErr)
	}
	if k > len(a.ew) {
		k = len(a.ew)
	}
	if k == 0 || a.n == 0 {
		return 0
	}
	filled := 0
	for link, e := range a.ew {
		// Insertion into the descending top-k prefix; ties keep the
		// lower link index first (stable, deterministic output).
		pos := filled
		for pos > 0 && outErr[pos-1] < e {
			pos--
		}
		if pos >= k {
			continue
		}
		last := filled
		if last >= k {
			last = k - 1
		}
		copy(outLink[pos+1:last+1], outLink[pos:last])
		copy(outErr[pos+1:last+1], outErr[pos:last])
		outLink[pos], outErr[pos] = link, e
		if filled < k {
			filled++
		}
	}
	return filled
}
