package drift

import (
	"math"
	"math/rand"
	"testing"
)

// toy fingerprint matrix: 4 links, 3 locations, distinct column shapes.
var toyCols = [][]float64{
	{-50, -60, -55, -45},
	{-70, -48, -52, -58},
	{-44, -66, -61, -49},
}

func toyResidualizer() *Residualizer {
	return NewResidualizer(4, 3, func(i, j int) float64 { return toyCols[j][i] })
}

func TestResidualExactMatchIsZero(t *testing.T) {
	r := toyResidualizer()
	scratch := make([]float64, 4)
	for j, col := range toyCols {
		if got := r.Residual(col, scratch); got > 1e-12 {
			t.Errorf("column %d: residual %g, want 0", j, got)
		}
	}
}

func TestResidualIgnoresCommonMode(t *testing.T) {
	// A constant per-link offset (common-mode drift, TX power wander) must
	// not register as staleness: centering removes it.
	r := toyResidualizer()
	scratch := make([]float64, 4)
	y := make([]float64, 4)
	for i, v := range toyCols[1] {
		y[i] = v + 7.5
	}
	if got := r.Residual(y, scratch); got > 1e-12 {
		t.Errorf("common-mode offset: residual %g, want 0", got)
	}
}

func TestResidualBestMatch(t *testing.T) {
	// A query exactly delta away on one link from its true column must
	// score sqrt(delta^2 * (1 - 1/m)) / sqrt(m)... computed directly: the
	// centered difference is delta on link 0 minus delta/m on every link.
	r := toyResidualizer()
	scratch := make([]float64, 4)
	y := append([]float64(nil), toyCols[0]...)
	const delta = 2.0
	y[0] += delta
	m := 4.0
	want := math.Sqrt(delta * delta * (1 - 1/m) / m)
	if got := r.Residual(y, scratch); math.Abs(got-want) > 1e-12 {
		t.Errorf("one-link deviation: residual %g, want %g", got, want)
	}
	// The best match must still be the true column: a residual against
	// the other columns would be far larger.
	if got := r.Residual(y, scratch); got > 3 {
		t.Errorf("residual %g suggests wrong best-match column", got)
	}
}

func TestResidualAllocationFree(t *testing.T) {
	r := toyResidualizer()
	scratch := make([]float64, 4)
	y := append([]float64(nil), toyCols[2]...)
	if allocs := testing.AllocsPerRun(200, func() {
		r.Residual(y, scratch)
	}); allocs != 0 {
		t.Errorf("Residual allocates %.1f per call, want 0", allocs)
	}
}

// noisyStream yields a deterministic pseudo-residual stream with the
// given mean and sigma.
func noisyStream(seed int64, mu, sigma float64) func() float64 {
	rng := rand.New(rand.NewSource(seed))
	return func() float64 { return mu + sigma*rng.NormFloat64() }
}

func TestMeanShiftDetectsShiftNotNoise(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		d := NewMeanShift(MeanShiftConfig{Baseline: 200, Window: 64, K: 5, MinShiftDB: 0.3})
		next := noisyStream(seed, 1.0, 0.1)
		// Calibration plus a long stationary stretch: no flags.
		for i := 0; i < 5000; i++ {
			if d.Observe(next()) {
				t.Fatalf("seed %d: false positive at stationary sample %d (score %.2f)", seed, i, d.Score())
			}
		}
		if s := d.Score(); s >= 1 {
			t.Fatalf("seed %d: stationary score %.2f >= 1", seed, s)
		}
		// An abrupt persistent shift must flag within ~2 windows.
		shifted := noisyStream(seed+100, 2.0, 0.1)
		flaggedAt := -1
		for i := 0; i < 200; i++ {
			if d.Observe(shifted()) {
				flaggedAt = i
				break
			}
		}
		if flaggedAt < 0 || flaggedAt > 128 {
			t.Fatalf("seed %d: shift flagged at %d, want within 128", seed, flaggedAt)
		}
		if s := d.Score(); s < 1 {
			t.Fatalf("seed %d: flagged but score %.2f < 1", seed, s)
		}
		// Reset re-calibrates on the new level: no flags afterwards.
		d.Reset()
		for i := 0; i < 1000; i++ {
			if d.Observe(shifted()) {
				t.Fatalf("seed %d: flag after re-calibration at %d", seed, i)
			}
		}
	}
}

func TestPageHinkleyDetectsSlowRamp(t *testing.T) {
	d := NewPageHinkley(PageHinkleyConfig{Baseline: 200, Delta: 0.5, Lambda: 40})
	next := noisyStream(7, 1.0, 0.1)
	for i := 0; i < 5000; i++ {
		if d.Observe(next()) {
			t.Fatalf("false positive at stationary sample %d", i)
		}
	}
	// A slow ramp of +0.002 dB per sample: single windows barely move,
	// but the cumulative statistic must cross within a few thousand
	// samples.
	rng := rand.New(rand.NewSource(9))
	flaggedAt := -1
	for i := 0; i < 4000; i++ {
		r := 1.0 + 0.002*float64(i) + 0.1*rng.NormFloat64()
		if d.Observe(r) {
			flaggedAt = i
			break
		}
	}
	if flaggedAt < 0 {
		t.Fatal("slow ramp never flagged")
	}
	d.Reset()
	if s := d.Score(); s != 0 {
		t.Fatalf("score %.2f after Reset, want 0", s)
	}
}

func TestDetectorsAllocationFree(t *testing.T) {
	for _, tc := range []struct {
		name string
		d    Detector
	}{
		{"MeanShift", NewMeanShift(MeanShiftConfig{})},
		{"PageHinkley", NewPageHinkley(PageHinkleyConfig{})},
	} {
		next := noisyStream(11, 1.0, 0.1)
		for i := 0; i < 500; i++ { // past calibration
			tc.d.Observe(next())
		}
		if allocs := testing.AllocsPerRun(200, func() {
			tc.d.Observe(next())
			tc.d.Score()
		}); allocs != 0 {
			t.Errorf("%s: %.1f allocs per observe, want 0", tc.name, allocs)
		}
	}
}

func TestDetectorsDeterministic(t *testing.T) {
	run := func(d Detector) []bool {
		next := noisyStream(3, 1.0, 0.2)
		out := make([]bool, 3000)
		for i := range out {
			r := next()
			if i > 1500 {
				r += 1.5
			}
			out[i] = d.Observe(r)
		}
		return out
	}
	a := run(NewMeanShift(MeanShiftConfig{}))
	b := run(NewMeanShift(MeanShiftConfig{}))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("MeanShift diverges at %d", i)
		}
	}
	c := run(NewPageHinkley(PageHinkleyConfig{}))
	d := run(NewPageHinkley(PageHinkleyConfig{}))
	for i := range c {
		if c[i] != d[i] {
			t.Fatalf("PageHinkley diverges at %d", i)
		}
	}
}

func TestBaselineExportImportSkipsCalibration(t *testing.T) {
	// Calibrate a detector on a stationary stream, export the floor,
	// import it into a fresh detector (a process restart): the restored
	// detector must flag a shift without re-running the 200-sample
	// calibration window, and must not false-positive on the floor.
	next := noisyStream(11, 1.0, 0.1)
	src := NewMeanShift(MeanShiftConfig{Baseline: 200, Window: 64, K: 5, MinShiftDB: 0.3})
	for i := 0; i < 400; i++ {
		src.Observe(next())
	}
	mu, sigma, ok := src.Baseline()
	if !ok {
		t.Fatal("source detector not calibrated after 400 samples")
	}
	if mu < 0.9 || mu > 1.1 {
		t.Fatalf("exported mu %.3f far from the true floor 1.0", mu)
	}

	restored := NewMeanShift(MeanShiftConfig{Baseline: 200, Window: 64, K: 5, MinShiftDB: 0.3})
	if _, _, ok := restored.Baseline(); ok {
		t.Fatal("fresh detector claims to be calibrated")
	}
	restored.SetBaseline(mu, sigma)
	if rmu, _, ok := restored.Baseline(); !ok || rmu != mu {
		t.Fatalf("Baseline after SetBaseline = %.3f ok=%v", rmu, ok)
	}
	// Stationary traffic at the restored floor: no flags.
	for i := 0; i < 1000; i++ {
		if restored.Observe(next()) {
			t.Fatalf("false positive at %d after baseline import", i)
		}
	}
	// A shift flags within ~the window — far sooner than the 200-sample
	// calibration a cold detector would need first.
	shifted := noisyStream(12, 2.0, 0.1)
	flaggedAt := -1
	for i := 0; i < 200; i++ {
		if restored.Observe(shifted()) {
			flaggedAt = i
			break
		}
	}
	if flaggedAt < 0 || flaggedAt > 128 {
		t.Fatalf("restored detector flagged at %d, want within 128", flaggedAt)
	}

	// Same restart contract for Page-Hinkley.
	ph := NewPageHinkley(PageHinkleyConfig{Baseline: 200, Delta: 0.5, Lambda: 40})
	ph.SetBaseline(mu, sigma)
	if _, _, ok := ph.Baseline(); !ok {
		t.Fatal("PageHinkley not calibrated after SetBaseline")
	}
	flaggedAt = -1
	for i := 0; i < 500; i++ {
		if ph.Observe(shifted()) {
			flaggedAt = i
			break
		}
	}
	if flaggedAt < 0 {
		t.Fatal("restored PageHinkley never flagged a 10-sigma shift")
	}
}

func TestSetBaselineFloorsSigma(t *testing.T) {
	d := NewMeanShift(MeanShiftConfig{MinSigma: 0.05})
	d.SetBaseline(1.0, 0) // a zero sigma would make every threshold zero
	if _, sigma, ok := d.Baseline(); !ok || sigma < 0.05 {
		t.Fatalf("sigma %.3f not floored to MinSigma", sigma)
	}
}
