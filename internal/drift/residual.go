// Package drift turns a stream of live localization queries into a
// staleness signal for the fingerprint database, plus streaming change
// detectors over that signal. It is the detection half of the
// detect -> measure -> update loop: the paper shows how to refresh a
// stale database cheaply, this package decides *when* the database has
// gone stale, from the traffic the deployment is already serving.
//
// The per-query staleness residual is the RMS distance (dB) between the
// mean-centered online RSS vector and its best-matching mean-centered
// fingerprint column. A fresh database explains live queries down to the
// short-term noise floor; as the environment drifts, every column's
// per-link shape goes wrong in the same way for every query, so the
// best-match residual rises by the idiosyncratic (non-common-mode) part
// of the drift. Mean-centering both sides removes the common-mode
// component — transmit-power wander and correlated environmental drift —
// which a localizer is equally insensitive to, so the residual tracks
// exactly the staleness that degrades localization.
//
// Everything in this package is allocation-free in steady state: the
// Residualizer scores a query into caller-provided scratch, and the
// detectors run on O(1) or fixed-ring state allocated at construction.
package drift

import (
	"math"

	"iupdater/internal/loc"
)

// Residualizer scores online RSS vectors against one fingerprint
// database version. It runs the best-match search through a loc.Index —
// typically the one already built for the snapshot's localizer, so
// monitoring a new version costs no extra column copies. Residual is
// read-only and safe for concurrent use.
//
// The residual is exact regardless of the index's configured search
// tier: the index answers the centered nearest-column query through its
// pruning bounds (same value as the exhaustive scan, fewer columns
// touched) and never through the approximate sharded routing, because
// change detectors are calibrated against the true residual.
type Residualizer struct {
	m  int
	ix *loc.Index
}

// NewResidualizer builds the scorer for an m-link by n-location
// fingerprint matrix read through at.
func NewResidualizer(m, n int, at func(i, j int) float64) *Residualizer {
	ix := loc.NewIndexCols(m, n, func(j int, dst []float64) {
		for i := range dst {
			dst[i] = at(i, j)
		}
	}, 0, loc.IndexConfig{})
	return NewResidualizerIndex(ix)
}

// NewResidualizerIndex builds the scorer over a prebuilt column index,
// sharing it with the localizers built from the same index.
func NewResidualizerIndex(ix *loc.Index) *Residualizer {
	m, _ := ix.Dims()
	return &Residualizer{m: m, ix: ix}
}

// Links returns the number of links m a query vector must have.
func (r *Residualizer) Links() int { return r.m }

// Residual returns the staleness residual for one online measurement y:
// the RMS distance (dB per link) between the centered query and the
// nearest centered fingerprint column. scratch must have length >=
// Links() and is overwritten; no allocation is performed.
func (r *Residualizer) Residual(y, scratch []float64) float64 {
	m := r.m
	var mean float64
	for _, v := range y[:m] {
		mean += v
	}
	mean /= float64(m)
	yc := scratch[:m]
	for i, v := range y[:m] {
		yc[i] = v - mean
	}
	_, best := r.ix.NearestCentered(yc)
	return math.Sqrt(best / float64(m))
}

// ResidualAttributed is Residual plus per-link attribution: perLink[i]
// receives the absolute shape error |yc[i] - col[i]| (dB) between the
// centered query and its best-matching centered fingerprint column at
// link i — the per-link terms the RMS residual collapses. perLink must
// have length >= Links(); no allocation is performed.
func (r *Residualizer) ResidualAttributed(y, scratch, perLink []float64) float64 {
	m := r.m
	var mean float64
	for _, v := range y[:m] {
		mean += v
	}
	mean /= float64(m)
	yc := scratch[:m]
	for i, v := range y[:m] {
		yc[i] = v - mean
	}
	bestJ, best := r.ix.NearestCentered(yc)
	col := r.ix.CenteredCol(bestJ)
	for i := range yc {
		perLink[i] = math.Abs(yc[i] - col[i])
	}
	return math.Sqrt(best / float64(m))
}
