package drift

import (
	"math"
	"testing"
)

func TestResidualAttributedMatchesResidual(t *testing.T) {
	r := toyResidualizer()
	scratch := make([]float64, 4)
	perLink := make([]float64, 4)
	y := append([]float64(nil), toyCols[0]...)
	y[2] += 3
	plain := r.Residual(y, scratch)
	attr := r.ResidualAttributed(y, scratch, perLink)
	if plain != attr {
		t.Fatalf("attributed residual %g != plain %g", attr, plain)
	}
	// The per-link terms must reassemble the RMS exactly.
	var ss float64
	for _, e := range perLink {
		ss += e * e
	}
	if got := math.Sqrt(ss / 4); math.Abs(got-attr) > 1e-12 {
		t.Fatalf("per-link RMS %g != residual %g (perLink %v)", got, attr, perLink)
	}
}

func TestResidualAttributedBlamesDriftedLink(t *testing.T) {
	r := toyResidualizer()
	scratch := make([]float64, 4)
	perLink := make([]float64, 4)
	y := append([]float64(nil), toyCols[1]...)
	y[3] += 4 // link 3 drifted; centering spreads -1 to the others
	r.ResidualAttributed(y, scratch, perLink)
	for i := 0; i < 3; i++ {
		if perLink[3] <= perLink[i] {
			t.Fatalf("drifted link 3 error %g not dominant over link %d (%g): %v",
				perLink[3], i, perLink[i], perLink)
		}
	}
}

func TestResidualAttributedAllocationFree(t *testing.T) {
	r := toyResidualizer()
	scratch := make([]float64, 4)
	perLink := make([]float64, 4)
	y := append([]float64(nil), toyCols[2]...)
	if allocs := testing.AllocsPerRun(200, func() {
		r.ResidualAttributed(y, scratch, perLink)
	}); allocs != 0 {
		t.Errorf("ResidualAttributed allocates %.1f per call, want 0", allocs)
	}
}

func TestAttributionTopK(t *testing.T) {
	a := NewAttribution(5, 0.5)
	links := make([]int, 3)
	errs := make([]float64, 3)
	if n := a.TopK(links, errs); n != 0 {
		t.Fatalf("TopK before any observation = %d, want 0", n)
	}
	a.Observe([]float64{0.1, 2.0, 0.3, 5.0, 0.2})
	n := a.TopK(links, errs)
	if n != 3 {
		t.Fatalf("TopK filled %d, want 3", n)
	}
	if links[0] != 3 || links[1] != 1 || links[2] != 2 {
		t.Fatalf("top links %v (errs %v), want [3 1 2]", links[:n], errs[:n])
	}
	if !(errs[0] >= errs[1] && errs[1] >= errs[2]) {
		t.Fatalf("errors not descending: %v", errs[:n])
	}
}

func TestAttributionEWMAConvergesAndResets(t *testing.T) {
	a := NewAttribution(2, 0.1)
	sample := []float64{1, 3}
	for i := 0; i < 400; i++ {
		a.Observe(sample)
	}
	if math.Abs(a.LinkError(0)-1) > 1e-6 || math.Abs(a.LinkError(1)-3) > 1e-6 {
		t.Fatalf("EWMA did not converge: %g %g", a.LinkError(0), a.LinkError(1))
	}
	a.Reset()
	if a.Observations() != 0 || a.LinkError(1) != 0 {
		t.Fatalf("Reset left state: n=%d err=%g", a.Observations(), a.LinkError(1))
	}
}

func TestAttributionTopKTiesAreStable(t *testing.T) {
	a := NewAttribution(4, 0.5)
	a.Observe([]float64{2, 2, 2, 2})
	links := make([]int, 4)
	errs := make([]float64, 4)
	n := a.TopK(links, errs)
	if n != 4 {
		t.Fatalf("filled %d, want 4", n)
	}
	for i, l := range links {
		if l != i {
			t.Fatalf("tied links not in index order: %v", links)
		}
	}
}

func TestAttributionObserveAllocationFree(t *testing.T) {
	a := NewAttribution(8, 0)
	sample := make([]float64, 8)
	for i := range sample {
		sample[i] = float64(i)
	}
	a.Observe(sample)
	links := make([]int, 3)
	errs := make([]float64, 3)
	if allocs := testing.AllocsPerRun(200, func() {
		a.Observe(sample)
		a.TopK(links, errs)
	}); allocs != 0 {
		t.Errorf("Observe+TopK allocates %.1f per call, want 0", allocs)
	}
}
