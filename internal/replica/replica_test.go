package replica

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"iupdater/internal/store"
)

// frameSet builds real record frames by round-tripping payloads
// through a store, keyed by version — the tests then serve them from
// scripted handlers.
func frameSet(t *testing.T, versions ...uint64) map[uint64][]byte {
	t.Helper()
	st, err := store.Open(t.TempDir(), store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for _, v := range versions {
		payload := make([]byte, 64)
		for i := range payload {
			payload[i] = byte(v) + byte(i)
		}
		if err := st.Append(v, payload); err != nil {
			t.Fatal(err)
		}
	}
	frames, err := st.RecordFramesFrom(versions[0])
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[uint64][]byte, len(frames))
	for i, f := range frames {
		out[versions[i]] = f
	}
	return out
}

// runTailer starts a tailer against url with test-speed backoff,
// streaming applied versions into the returned channel until cleanup.
func runTailer(t *testing.T, url string) <-chan uint64 {
	t.Helper()
	applied := make(chan uint64, 64)
	tl, err := New(Config{
		URL: url,
		Apply: func(version uint64, _ store.Kind, _ []byte) error {
			applied <- version
			return nil
		},
		Wait:       50 * time.Millisecond,
		MinBackoff: time.Millisecond,
		MaxBackoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		tl.Run(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
	return applied
}

func waitApplied(t *testing.T, ch <-chan uint64, want uint64) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case v := <-ch:
			if v == want {
				return
			}
		case <-deadline:
			t.Fatalf("version %d never applied", want)
		}
	}
}

func TestNewValidatesConfig(t *testing.T) {
	if _, err := New(Config{Apply: func(uint64, store.Kind, []byte) error { return nil }}); err == nil {
		t.Error("missing URL accepted")
	}
	if _, err := New(Config{URL: "http://x/records"}); err == nil {
		t.Error("missing Apply accepted")
	}
}

// TestTailerRetriesTransportErrors: server failures delay, but never
// stop, the tailer; the stream lands once the leader recovers.
func TestTailerRetriesTransportErrors(t *testing.T) {
	frames := frameSet(t, 1)
	var mu sync.Mutex
	reqs := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		reqs++
		n := reqs
		mu.Unlock()
		if n <= 2 {
			http.Error(w, "leader mid-restart", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Iupdater-Leader-Version", "1")
		w.Write(frames[1])
	}))
	defer srv.Close()
	applied := runTailer(t, srv.URL)
	waitApplied(t, applied, 1)
	mu.Lock()
	defer mu.Unlock()
	if reqs < 3 {
		t.Fatalf("only %d requests reached the leader", reqs)
	}
}

// TestTailerRebootstrapsAfter410: a resume point the leader compacted
// away turns into a fresh bootstrap from the newest full record.
func TestTailerRebootstrapsAfter410(t *testing.T) {
	frames := frameSet(t, 3, 8)
	var mu sync.Mutex
	var gone int
	var bootstraps []uint64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		from, _ := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
		mu.Lock()
		defer mu.Unlock()
		switch {
		case from == 0 && len(bootstraps) == 0:
			bootstraps = append(bootstraps, from)
			w.Header().Set("Iupdater-Leader-Version", "3")
			w.Write(frames[3])
		case from == 4:
			// The follower's resume point fell behind the horizon.
			gone++
			w.Header().Set("Iupdater-Oldest-Version", "8")
			http.Error(w, "compacted", http.StatusGone)
		case from == 0:
			bootstraps = append(bootstraps, from)
			w.Header().Set("Iupdater-Leader-Version", "8")
			w.Write(frames[8])
		default:
			// Caught up after the re-bootstrap: empty 200.
			w.WriteHeader(http.StatusOK)
		}
	}))
	defer srv.Close()
	applied := runTailer(t, srv.URL)
	waitApplied(t, applied, 3)
	waitApplied(t, applied, 8)
	mu.Lock()
	defer mu.Unlock()
	if gone == 0 || len(bootstraps) != 2 {
		t.Fatalf("410s %d, bootstraps %v: want a second bootstrap after the 410", gone, bootstraps)
	}
}

// TestTailerRebootstrapsAfterApplyFailureStreak: a frame that keeps
// failing local validation is retried a bounded number of times, then
// the tailer starts over from a full record instead of spinning.
func TestTailerRebootstrapsAfterApplyFailureStreak(t *testing.T) {
	frames := frameSet(t, 1, 7)
	corrupt := append([]byte(nil), frames[7]...)
	corrupt[len(corrupt)-1] ^= 0xFF // payload bit rot: CRC check must reject
	var mu sync.Mutex
	var corruptServes int
	var rebootstrapped bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		from, _ := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
		mu.Lock()
		defer mu.Unlock()
		w.Header().Set("Iupdater-Leader-Version", "7")
		switch {
		case from == 0 && !rebootstrapped:
			w.Write(frames[1])
		case from == 2:
			corruptServes++
			if corruptServes >= applyFailureThreshold {
				rebootstrapped = true
			}
			w.Write(corrupt)
		case from == 0:
			w.Write(frames[7])
		default:
			w.WriteHeader(http.StatusOK)
		}
	}))
	defer srv.Close()
	applied := runTailer(t, srv.URL)
	waitApplied(t, applied, 1)
	waitApplied(t, applied, 7)
	mu.Lock()
	defer mu.Unlock()
	if corruptServes != applyFailureThreshold {
		t.Fatalf("corrupt frame served %d times, want exactly %d before re-bootstrap", corruptServes, applyFailureThreshold)
	}
}

// TestTailerLongPollPicksUpPublish: a caught-up tailer parked in a
// long poll receives a record published mid-wait without a new
// request per version.
func TestTailerLongPollPicksUpPublish(t *testing.T) {
	frames := frameSet(t, 1, 2)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		from, _ := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
		switch from {
		case 0:
			w.Header().Set("Iupdater-Leader-Version", "1")
			w.Write(frames[1])
		case 2:
			// Hold the long poll briefly — the record "publishes"
			// mid-wait and is streamed on the same response.
			select {
			case <-time.After(20 * time.Millisecond):
			case <-r.Context().Done():
				return
			}
			w.Header().Set("Iupdater-Leader-Version", "2")
			w.Write(frames[2])
		default:
			w.WriteHeader(http.StatusOK)
		}
	}))
	defer srv.Close()
	applied := runTailer(t, srv.URL)
	waitApplied(t, applied, 1)
	waitApplied(t, applied, 2)
}
