// Package replica implements the follower side of record-log
// replication: a Tailer keeps a long-poll HTTP request open against a
// leader's records endpoint, splits the response stream back into
// record frames, and applies each one through a store.Replay — the
// same CRC recheck and delta structural validation the store runs
// during Open recovery — before handing the materialized payload to
// the caller.
//
// The wire protocol is deliberately thin: the leader streams raw
// on-disk record frames (see internal/store), so the follower trusts
// nothing about the transport — a torn, corrupted or replayed frame is
// rejected by the Replay without state change, the connection is
// dropped, and the next request resumes from the last applied version.
// A 410 response means the requested resume version precedes the
// leader's compaction horizon; the Tailer then re-bootstraps from the
// leader's newest full record with a fresh Replay.
package replica

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"sync/atomic"
	"time"

	"iupdater/internal/obs"
	"iupdater/internal/store"
	"iupdater/internal/trace"
)

// Config parameterizes a Tailer.
type Config struct {
	// URL is the leader's records endpoint, e.g.
	// http://leader:8080/sites/office/records. Required.
	URL string

	// Apply is invoked once per validated record, in version order,
	// with the fully materialized payload (delta frames are resolved
	// against the follower's state before the call). The payload slice
	// is reused; implementations must copy what they keep. Returning an
	// error drops the connection and counts toward the re-bootstrap
	// streak. Required.
	Apply func(version uint64, kind store.Kind, payload []byte) error

	// Client issues the requests (default http.DefaultClient). It must
	// not impose an overall request timeout shorter than Wait, or every
	// long poll turns into a transport error.
	Client *http.Client

	// Wait is the long-poll duration hint sent to the leader (default
	// 25s): a caught-up leader holds the request open this long waiting
	// for the next publish instead of returning an empty response
	// immediately.
	Wait time.Duration

	// MinBackoff and MaxBackoff bound the capped exponential backoff
	// between failed polls (defaults 100ms and 5s). Each retry doubles
	// the delay up to MaxBackoff, with up to 50% random jitter added so
	// a fleet of followers does not reconnect in lockstep; any
	// successfully processed response resets the delay to MinBackoff.
	MinBackoff, MaxBackoff time.Duration

	// Tracer, when non-nil, records one "replica.poll" trace per poll:
	// a longpoll span covering the leader request plus, per streamed
	// frame, a validate span (the Replay CRC/structural recheck) and an
	// apply span (the caller's Apply). Polls that applied at least one
	// frame — or rejected one — are force-retained; empty caught-up
	// polls follow normal sampling so long-poll idling does not flood
	// the rings. The leader's publish trace ID, when advertised in the
	// Iupdater-Trace-Id response header, is recorded as the root span's
	// leader_trace_id attribute, linking the follower apply back to the
	// leader publish that produced the newest streamed record.
	Tracer *trace.Tracer

	// Site labels the Tracer's traces (the follower's site name).
	Site string
}

// applyFailureThreshold is the number of consecutive apply-side
// rejections after which the Tailer stops retrying the same resume
// version and re-bootstraps from the leader's newest full record. One
// or two rejections are indistinguishable from transport corruption and
// a retry is cheap; a persistent streak means the follower's
// materialized state has diverged from the leader's chain (e.g. the
// follower restarted into a different history), and only a fresh full
// record can re-anchor it.
const applyFailureThreshold = 3

// Tailer tails one leader records endpoint. Construct with New, drive
// with Run; the exported state accessors are safe to call concurrently
// with Run.
type Tailer struct {
	cfg    Config
	replay store.Replay
	next   uint64 // version to request next; 0 = bootstrap

	applied atomic.Uint64 // newest version applied locally
	leader  atomic.Uint64 // newest version the leader advertised

	reconnects   obs.Counter // failed polls (each is followed by a fresh connection)
	rebootstraps obs.Counter // re-bootstraps from the leader's newest full record
}

// New validates the configuration and returns a Tailer ready to Run.
func New(cfg Config) (*Tailer, error) {
	if cfg.URL == "" {
		return nil, errors.New("replica: Config.URL is required")
	}
	if _, err := url.Parse(cfg.URL); err != nil {
		return nil, fmt.Errorf("replica: records URL: %w", err)
	}
	if cfg.Apply == nil {
		return nil, errors.New("replica: Config.Apply is required")
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	if cfg.Wait <= 0 {
		cfg.Wait = 25 * time.Second
	}
	if cfg.MinBackoff <= 0 {
		cfg.MinBackoff = 100 * time.Millisecond
	}
	if cfg.MaxBackoff < cfg.MinBackoff {
		cfg.MaxBackoff = 5 * time.Second
		if cfg.MaxBackoff < cfg.MinBackoff {
			cfg.MaxBackoff = cfg.MinBackoff
		}
	}
	return &Tailer{cfg: cfg}, nil
}

// Applied returns the newest version applied locally, 0 before the
// first record lands.
func (t *Tailer) Applied() uint64 { return t.applied.Load() }

// LeaderVersion returns the newest version the leader has advertised
// in a response header, 0 before the first successful poll. The
// difference against Applied is the replication lag in versions.
func (t *Tailer) LeaderVersion() uint64 { return t.leader.Load() }

// Reconnects counts failed polls — transport errors, non-200 leader
// responses, or rejected frames — each of which drops the connection
// and retries under backoff.
func (t *Tailer) Reconnects() uint64 { return t.reconnects.Value() }

// Rebootstraps counts the times the Tailer discarded its follower state
// and re-requested the leader's newest full record (compaction gap or
// apply-failure streak).
func (t *Tailer) Rebootstraps() uint64 { return t.rebootstraps.Value() }

// errCompacted marks a 410 response: the resume version precedes the
// leader's compaction horizon.
var errCompacted = errors.New("replica: resume version precedes the leader's compaction horizon")

// applyError marks a frame the local Replay (or the Apply callback)
// rejected — the transport delivered bytes fine, but they did not
// validate against local state.
type applyError struct{ err error }

func (e applyError) Error() string { return e.err.Error() }
func (e applyError) Unwrap() error { return e.err }

// Run tails the leader until ctx is canceled, which is the only way it
// returns (with ctx's error). All transport and validation failures
// are retried under the configured backoff; a compacted-away resume
// point or a persistent apply-failure streak triggers a re-bootstrap
// from the leader's newest full record.
func (t *Tailer) Run(ctx context.Context) error {
	backoff := t.cfg.MinBackoff
	streak := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		err := t.poll(ctx)
		if err == nil {
			backoff = t.cfg.MinBackoff
			streak = 0
			continue
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		t.reconnects.Inc()
		if errors.Is(err, errCompacted) {
			// The records we were waiting for are gone for good;
			// re-request the newest full record instead of retrying.
			t.rebootstrap()
		}
		var ae applyError
		if errors.As(err, &ae) {
			if streak++; streak >= applyFailureThreshold {
				// Retrying the same version keeps failing: our
				// materialized state no longer matches the leader's
				// chain. Start over from a full record.
				t.rebootstrap()
				streak = 0
			}
		} else {
			streak = 0
		}
		if !sleep(ctx, jittered(backoff)) {
			return ctx.Err()
		}
		if backoff *= 2; backoff > t.cfg.MaxBackoff {
			backoff = t.cfg.MaxBackoff
		}
	}
}

// rebootstrap forgets all follower state so the next poll requests the
// leader's newest full record (from=0) into a fresh Replay.
func (t *Tailer) rebootstrap() {
	t.next = 0
	t.replay = store.Replay{}
	t.rebootstraps.Inc()
}

// poll issues one records request and applies every frame it returns.
// A nil return means the response was processed completely (possibly
// with zero frames: the follower is caught up). Frames applied before
// a mid-stream error still count — the next poll resumes after them.
func (t *Tailer) poll(ctx context.Context) error {
	tr := t.cfg.Tracer.Start("replica.poll", t.cfg.Site)
	frames := 0
	defer func() {
		root := tr.Root()
		root.SetInt("frames", int64(frames))
		tr.Finish()
	}()
	u := fmt.Sprintf("%s?from=%d&wait=%s", t.cfg.URL, t.next, t.cfg.Wait)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return fmt.Errorf("replica: %w", err)
	}
	lp := tr.StartSpan("longpoll")
	lp.SetInt("from", int64(t.next))
	resp, err := t.cfg.Client.Do(req)
	if err != nil {
		lp.SetBool("error", true)
		lp.End()
		return fmt.Errorf("replica: polling leader: %w", err)
	}
	lp.SetInt("status", int64(resp.StatusCode))
	lp.End()
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		return fmt.Errorf("%w (requested %d)", errCompacted, t.next)
	default:
		return fmt.Errorf("replica: leader returned %s", resp.Status)
	}
	if v, err := strconv.ParseUint(resp.Header.Get("Iupdater-Leader-Version"), 10, 64); err == nil {
		t.leader.Store(v)
	}
	if id := resp.Header.Get("Iupdater-Trace-Id"); id != "" {
		tr.Root().SetStr("leader_trace_id", id)
	}
	for {
		frame, err := store.ReadFrame(resp.Body)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("replica: reading record stream: %w", err)
		}
		// A poll that carried frames — applied or rejected — is the
		// interesting kind; retain its trace unconditionally.
		tr.Force()
		vsp := tr.StartSpan("validate")
		vsp.SetInt("bytes", int64(len(frame)))
		version, kind, err := t.replay.Apply(frame)
		if err != nil {
			vsp.SetBool("error", true)
			vsp.End()
			return applyError{fmt.Errorf("replica: %w", err)}
		}
		vsp.SetInt("version", int64(version))
		vsp.SetStr("kind", kind.String())
		vsp.End()
		asp := tr.StartSpan("apply")
		asp.SetInt("version", int64(version))
		asp.SetStr("kind", kind.String())
		if err := t.cfg.Apply(version, kind, t.replay.Payload()); err != nil {
			asp.SetBool("error", true)
			asp.End()
			return applyError{fmt.Errorf("replica: applying version %d: %w", version, err)}
		}
		asp.End()
		frames++
		t.next = version + 1
		t.applied.Store(version)
	}
}

// jittered spreads d out by up to 50% so followers retrying against
// the same leader desynchronize.
func jittered(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	return d + time.Duration(rand.Int63n(int64(d)/2+1))
}

// sleep waits d or until ctx is done, reporting whether the full wait
// elapsed.
func sleep(ctx context.Context, d time.Duration) bool {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-timer.C:
		return true
	}
}
