package iupdater_test

// One benchmark per table and figure of the paper's evaluation section,
// plus ablations of the design choices called out in DESIGN.md. Each
// benchmark runs the corresponding experiment driver end to end and
// reports the figure's headline metric via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates (a single-seed pass of) the entire evaluation. cmd/figgen
// produces the full multi-seed report.

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"iupdater"
	"iupdater/internal/core"
	"iupdater/internal/eval"
	"iupdater/internal/loc"
	"iupdater/internal/mat"
	"iupdater/internal/testbed"
	"iupdater/internal/trace"
)

func benchSeeds() []uint64 { return []uint64{3} }

func BenchmarkFig01ShortTermVariation(b *testing.B) {
	var swing float64
	for i := 0; i < b.N; i++ {
		r := eval.Fig01ShortTermVariation(testbed.Office(), 11)
		swing = r.SwingDB
	}
	b.ReportMetric(swing, "swing_dB")
}

func BenchmarkFig02LongTermShift(b *testing.B) {
	var s5, s45 float64
	for i := 0; i < b.N; i++ {
		r := eval.Fig02LongTermShift(testbed.Office(), 7)
		s5, s45 = r.Shift5DB, r.Shift45DB
	}
	b.ReportMetric(s5, "shift5d_dB")
	b.ReportMetric(s45, "shift45d_dB")
}

func BenchmarkFig05SingularValues(b *testing.B) {
	var lead float64
	for i := 0; i < b.N; i++ {
		r := eval.Fig05SingularValues(testbed.Office(), 3)
		lead = r.LeadingShare
	}
	b.ReportMetric(lead, "leading_share")
}

func BenchmarkFig06DifferenceStability(b *testing.B) {
	var raw, nd float64
	for i := 0; i < b.N; i++ {
		r := eval.Fig06DifferenceStability(testbed.Office(), 13)
		raw, nd = r.RawStd, r.NeighborDiffStd
	}
	b.ReportMetric(raw, "raw_std_dB")
	b.ReportMetric(nd, "neighbor_diff_std_dB")
}

func BenchmarkFig08NLCCDF(b *testing.B) {
	var frac float64
	for i := 0; i < b.N; i++ {
		frac = eval.Fig08NLCCDF(testbed.Office(), 3).FractionBelow02
	}
	b.ReportMetric(frac, "frac_below_0.2")
}

func BenchmarkFig09ALSCDF(b *testing.B) {
	var frac float64
	for i := 0; i < b.N; i++ {
		frac = eval.Fig09ALSCDF(testbed.Office(), 3).FractionBelow04
	}
	b.ReportMetric(frac, "frac_below_0.4")
}

func BenchmarkFig14ReferenceCount(b *testing.B) {
	var mic, random float64
	for i := 0; i < b.N; i++ {
		r, err := eval.Fig14ReferenceCount(testbed.Office(), benchSeeds())
		if err != nil {
			b.Fatal(err)
		}
		mic = r.CDFs[0].Median()
		random = r.CDFs[3].Median()
	}
	b.ReportMetric(mic, "mic8_median_dB")
	b.ReportMetric(random, "random11_median_dB")
}

func BenchmarkFig15ReferenceCountOverTime(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		r, err := eval.Fig15ReferenceCountOverTime(testbed.Office(), benchSeeds())
		if err != nil {
			b.Fatal(err)
		}
		last = r.MeanDB[0][len(r.MeanDB[0])-1]
	}
	b.ReportMetric(last, "mic8_3mo_mean_dB")
}

func BenchmarkFig16ConstraintAblation(b *testing.B) {
	var rsvd, c1, c12 float64
	for i := 0; i < b.N; i++ {
		r, err := eval.Fig16ConstraintAblation(testbed.Office(), benchSeeds())
		if err != nil {
			b.Fatal(err)
		}
		rsvd, c1, c12 = r.RSVD[3], r.C1[3], r.C1C2[3]
	}
	b.ReportMetric(rsvd, "rsvd_45d_dB")
	b.ReportMetric(c1, "c1_45d_dB")
	b.ReportMetric(c12, "c1c2_45d_dB")
}

func BenchmarkFig17VariationRobustness(b *testing.B) {
	var d80, meas float64
	for i := 0; i < b.N; i++ {
		r, err := eval.Fig17VariationRobustness(testbed.Office(), benchSeeds())
		if err != nil {
			b.Fatal(err)
		}
		d80 = eval.Mean(r.Data80C2)
		meas = eval.Mean(r.Measured)
	}
	b.ReportMetric(d80, "data80_c2_m")
	b.ReportMetric(meas, "measured_m")
}

func BenchmarkFig18ReconstructionCDF(b *testing.B) {
	var m3d, m3mo float64
	for i := 0; i < b.N; i++ {
		r, err := eval.Fig18ReconstructionCDF(testbed.Office(), benchSeeds())
		if err != nil {
			b.Fatal(err)
		}
		m3d = r.CDFs[0].Median()
		m3mo = r.CDFs[4].Median()
	}
	b.ReportMetric(m3d, "median_3d_dB")
	b.ReportMetric(m3mo, "median_3mo_dB")
}

func BenchmarkFig19ReconstructionEnvs(b *testing.B) {
	var hall, library float64
	for i := 0; i < b.N; i++ {
		r, err := eval.Fig19ReconstructionEnvironments(benchSeeds())
		if err != nil {
			b.Fatal(err)
		}
		hall = r.MeanDB[0][3]
		library = r.MeanDB[2][3]
	}
	b.ReportMetric(hall, "hall_45d_dB")
	b.ReportMetric(library, "library_45d_dB")
}

func BenchmarkFig20LaborScaling(b *testing.B) {
	var trad, ours float64
	for i := 0; i < b.N; i++ {
		r := eval.Fig20LaborScaling()
		last := r.Points[len(r.Points)-1]
		trad, ours = last.TraditionalHours, last.IUpdaterHours
	}
	b.ReportMetric(trad, "traditional_10x_h")
	b.ReportMetric(ours, "iupdater_10x_h")
}

func BenchmarkFig21LocalizationCDF(b *testing.B) {
	var gt, iu, stale float64
	for i := 0; i < b.N; i++ {
		r, err := eval.Fig21LocalizationCDF(testbed.Office(), benchSeeds())
		if err != nil {
			b.Fatal(err)
		}
		gt, iu, stale = r.Groundtruth.Median(), r.IUpdater.Median(), r.Stale.Median()
	}
	b.ReportMetric(gt, "groundtruth_median_m")
	b.ReportMetric(iu, "iupdater_median_m")
	b.ReportMetric(stale, "stale_median_m")
}

func BenchmarkFig22LocalizationEnvs(b *testing.B) {
	var hallImp, libImp float64
	for i := 0; i < b.N; i++ {
		r, err := eval.Fig22LocalizationEnvironments(benchSeeds())
		if err != nil {
			b.Fatal(err)
		}
		hallImp = r.ImprovementPct[0]
		libImp = r.ImprovementPct[2]
	}
	b.ReportMetric(hallImp, "hall_improvement_pct")
	b.ReportMetric(libImp, "library_improvement_pct")
}

func BenchmarkFig23RASSCDF(b *testing.B) {
	var iu, rec, stale float64
	for i := 0; i < b.N; i++ {
		r, err := eval.Fig23RASSComparison(testbed.Office(), benchSeeds())
		if err != nil {
			b.Fatal(err)
		}
		iu, rec, stale = r.IUpdater.Median(), r.RASSRec.Median(), r.RASSStale.Median()
	}
	b.ReportMetric(iu, "iupdater_median_m")
	b.ReportMetric(rec, "rass_rec_median_m")
	b.ReportMetric(stale, "rass_stale_median_m")
}

func BenchmarkFig24RASSOverTime(b *testing.B) {
	var iu, rec float64
	for i := 0; i < b.N; i++ {
		r, err := eval.Fig24RASSOverTime(testbed.Office(), benchSeeds())
		if err != nil {
			b.Fatal(err)
		}
		iu = eval.Mean(r.IUpdater)
		rec = eval.Mean(r.RASSRec)
	}
	b.ReportMetric(iu, "iupdater_mean_m")
	b.ReportMetric(rec, "rass_rec_mean_m")
}

func BenchmarkTableLaborSavings(b *testing.B) {
	var vs50, vs5 float64
	for i := 0; i < b.N; i++ {
		r := eval.LaborSavings()
		vs50, vs5 = r.SavingVs50Pct, r.SavingVs5Pct
	}
	b.ReportMetric(vs50, "saving_vs50_pct")
	b.ReportMetric(vs5, "saving_vs5_pct")
}

// --- ablations of design choices (DESIGN.md §6) ---

// ablationScenario builds the standard 45-day update inputs once.
type ablationInputs struct {
	sc    *eval.Scenario
	truth *mat.Dense
}

func newAblationInputs(b *testing.B) ablationInputs {
	b.Helper()
	sc, err := eval.NewScenario(testbed.Office(), 3)
	if err != nil {
		b.Fatal(err)
	}
	truth := sc.Surveyor.TrueFingerprint(45 * testbed.Day)
	return ablationInputs{sc: sc, truth: truth.X}
}

func reconError(sc *eval.Scenario, x *mat.Dense) float64 {
	return eval.Mean(sc.ReconErrors(x, 45*testbed.Day))
}

func BenchmarkAblationMIC(b *testing.B) {
	sc, err := eval.NewScenario(testbed.Office(), 3)
	if err != nil {
		b.Fatal(err)
	}
	var qrcp, rref float64
	for i := 0; i < b.N; i++ {
		for _, m := range []core.MICMethod{core.MICQRCP, core.MICRREF} {
			refs, err := core.MIC(sc.Original.X, 8, m)
			if err != nil {
				b.Fatal(err)
			}
			recon, err := sc.UpdateWithRefs(45*testbed.Day, refs)
			if err != nil {
				b.Fatal(err)
			}
			e := reconError(sc, recon)
			if m == core.MICQRCP {
				qrcp = e
			} else {
				rref = e
			}
		}
	}
	b.ReportMetric(qrcp, "qrcp_mean_dB")
	b.ReportMetric(rref, "rref_mean_dB")
}

func BenchmarkAblationSolverVariant(b *testing.B) {
	in := newAblationInputs(b)
	var gs, paper float64
	for i := 0; i < b.N; i++ {
		for _, v := range []core.Variant{core.VariantGaussSeidel, core.VariantPaper} {
			sc, err := eval.NewScenario(testbed.Office(), 3, core.WithVariant(v))
			if err != nil {
				b.Fatal(err)
			}
			_, r, err := sc.Update(45 * testbed.Day)
			if err != nil {
				b.Fatal(err)
			}
			e := reconError(in.sc, r.X)
			if v == core.VariantGaussSeidel {
				gs = e
			} else {
				paper = e
			}
		}
	}
	b.ReportMetric(gs, "gauss_seidel_mean_dB")
	b.ReportMetric(paper, "paper_variant_mean_dB")
}

func BenchmarkAblationInitialization(b *testing.B) {
	in := newAblationInputs(b)
	var warm, cold float64
	for i := 0; i < b.N; i++ {
		for _, w := range []bool{true, false} {
			sc, err := eval.NewScenario(testbed.Office(), 3, core.WithWarmStart(w))
			if err != nil {
				b.Fatal(err)
			}
			_, r, err := sc.Update(45 * testbed.Day)
			if err != nil {
				b.Fatal(err)
			}
			e := reconError(in.sc, r.X)
			if w {
				warm = e
			} else {
				cold = e
			}
		}
	}
	b.ReportMetric(warm, "warm_start_mean_dB")
	b.ReportMetric(cold, "algorithm1_random_mean_dB")
}

func BenchmarkAblationTermScaling(b *testing.B) {
	in := newAblationInputs(b)
	var auto, raw float64
	for i := 0; i < b.N; i++ {
		for _, on := range []bool{true, false} {
			sc, err := eval.NewScenario(testbed.Office(), 3, core.WithAutoScale(on))
			if err != nil {
				b.Fatal(err)
			}
			_, r, err := sc.Update(45 * testbed.Day)
			if err != nil {
				b.Fatal(err)
			}
			e := reconError(in.sc, r.X)
			if on {
				auto = e
			} else {
				raw = e
			}
		}
	}
	b.ReportMetric(auto, "autoscale_mean_dB")
	b.ReportMetric(raw, "rawweights_mean_dB")
}

func BenchmarkAblationMatcher(b *testing.B) {
	sc, err := eval.NewScenario(testbed.Office(), 3)
	if err != nil {
		b.Fatal(err)
	}
	_, rec, err := sc.Update(45 * testbed.Day)
	if err != nil {
		b.Fatal(err)
	}
	g := sc.Surveyor.Channel.Grid()
	pts := eval.TestPoints(g, 3, 50)
	matchers := map[string]loc.Localizer{
		"omp":     loc.NewOMPPoint(rec.X, g, loc.OMPConfig{}),
		"knn":     loc.NewKNN(rec.X, 3),
		"nearest": loc.NewNearestColumn(rec.X),
	}
	results := map[string]float64{}
	for i := 0; i < b.N; i++ {
		for name, m := range matchers {
			var errs []float64
			for k, p := range pts {
				y := sc.Surveyor.MeasureOnline(p, 45*testbed.Day+3600+float64(k)*40, eval.OnlineSamples)
				cell, err := m.Locate(y)
				if err != nil {
					b.Fatal(err)
				}
				errs = append(errs, g.Center(cell).Distance(p))
			}
			results[name] = eval.NewCDF(name, errs).Median()
		}
	}
	b.ReportMetric(results["omp"], "omp_median_m")
	b.ReportMetric(results["knn"], "knn_median_m")
	b.ReportMetric(results["nearest"], "nearest_median_m")
}

// BenchmarkReconstructSweeps measures the full update path (no-decrease
// scan + reference survey + warm-start reconstruction) with the ALS
// sweeps sharded over GOMAXPROCS workers (core.WithConcurrency(0)).
// Run with `-cpu 1,4` to observe multi-core scaling of the sweep
// sharding; on a single-core host allocs/op is the meaningful metric.
func BenchmarkReconstructSweeps(b *testing.B) {
	for _, arm := range []struct {
		name string
		opts []core.Option
	}{
		{"sequential", []core.Option{core.WithWarmStart(true)}},
		{"gomaxprocs", []core.Option{core.WithWarmStart(true), core.WithConcurrency(0)}},
	} {
		b.Run(arm.name, func(b *testing.B) {
			sc, err := eval.NewScenario(testbed.Office(), 3, arm.opts...)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := sc.Update(45 * testbed.Day); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Deployment serving benchmarks (serial Locate vs LocateBatch) ---

// benchDeployment builds an office Deployment plus a fixed batch of
// online measurements for the serving benchmarks.
func benchDeployment(b *testing.B, workers int, opts ...iupdater.Option) (*iupdater.Deployment, [][]float64) {
	b.Helper()
	tb := iupdater.NewTestbed(iupdater.Office(), 3)
	d, _, err := tb.Deploy(0, 20, append([]iupdater.Option{iupdater.WithWorkers(workers)}, opts...)...)
	if err != nil {
		b.Fatal(err)
	}
	batch := make([][]float64, 256)
	for k := range batch {
		cx, cy := tb.CellCenter(k % tb.NumCells())
		batch[k] = tb.MeasureOnline(cx, cy, time.Duration(k)*time.Minute)
	}
	return d, batch
}

func BenchmarkLocateSerial(b *testing.B) {
	d, batch := benchDeployment(b, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, rss := range batch {
			if _, err := d.Locate(rss); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(batch)), "queries/op")
}

// BenchmarkLocateTraced times the serving hot path with a tracer
// attached, in both retention regimes. The unsampled sub-benchmark
// (head sampling off, slow capture disabled) is the steady-state
// production configuration: the span tree is recorded into pooled
// scratch and dropped at Finish, so it must stay allocation-free
// (<= 2 allocs/op, gated in scripts/bench.sh, 0 measured). The
// sampled sub-benchmark retains every trace (head 1-in-1) and bounds
// the worst case: one copy-on-retain of the span tree per query.
func BenchmarkLocateTraced(b *testing.B) {
	for _, tc := range []struct {
		name string
		cfg  trace.Config
	}{
		{"unsampled", trace.Config{DefaultSlow: -1}},
		{"sampled", trace.Config{HeadEvery: 1}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			tracer := trace.New(tc.cfg)
			d, batch := benchDeployment(b, 1, iupdater.WithTracer(tracer, "bench"))
			// Warm the pooled trace scratch and query scratch so b.N
			// iterations measure the steady state, not pool misses.
			for i := 0; i < 512; i++ {
				if _, err := d.Locate(batch[i%len(batch)]); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := d.Locate(batch[i%len(batch)]); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if s := tracer.Stats(); s.Started == 0 {
				b.Fatal("tracer saw no traces; the locate path bypassed tracing")
			} else if tc.name == "unsampled" && s.Retained != 0 {
				b.Fatalf("unsampled run retained %d traces", s.Retained)
			}
		})
	}
}

// BenchmarkMonitorObserve times the drift-monitor observation hot path:
// one residual scan plus one detector step per served query. The CI
// bench smoke step runs it with -benchmem; the steady-state budget is
// <= 2 allocs per observed query (enforced by
// TestMonitorObserveAllocBudget, measured 0).
func BenchmarkMonitorObserve(b *testing.B) {
	d, batch := benchDeployment(b, 1)
	m, err := iupdater.NewMonitor(d, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	// Warm past detector calibration so b.N iterations measure the
	// steady state.
	for i := 0; i < 512; i++ {
		if err := m.Observe(batch[i%len(batch)]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Observe(batch[i%len(batch)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMonitorObserveAttribution times the observe path plus the
// per-link attribution readout: one residual decomposition, one EWMA
// fold and one top-k extraction per served query — the pattern a
// /metrics scrape alongside live traffic exercises. Same steady-state
// budget as BenchmarkMonitorObserve (<= 2 allocs/op, 0 measured),
// gated in scripts/bench.sh.
func BenchmarkMonitorObserveAttribution(b *testing.B) {
	d, batch := benchDeployment(b, 1)
	m, err := iupdater.NewMonitor(d, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	for i := 0; i < 512; i++ {
		if err := m.Observe(batch[i%len(batch)]); err != nil {
			b.Fatal(err)
		}
	}
	links := make([]int, 3)
	errs := make([]float64, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Observe(batch[i%len(batch)]); err != nil {
			b.Fatal(err)
		}
		m.TopLinksInto(links, errs)
	}
}

// largeGridDeployment builds a synthetic campus-scale deployment (8
// links, perStrip cells per strip — perStrip 120 is 10x the office
// grid's 96 cells, 1200 is 100x) plus a battery of online-like queries:
// a smooth per-link shadowing dip over the cell position with small
// seeded noise, so neighboring columns correlate the way real RSS
// fingerprints do.
func largeGridDeployment(b *testing.B, perStrip int, opts ...iupdater.Option) (*iupdater.Deployment, [][]float64) {
	b.Helper()
	const links = 8
	g := iupdater.Geometry{WidthM: 12, HeightM: 9, Links: links, PerStrip: perStrip}
	n := g.NumCells()
	rows := make([][]float64, links)
	for i := range rows {
		rows[i] = make([]float64, n)
	}
	rng := rand.New(rand.NewSource(17))
	for j := 0; j < n; j++ {
		cx := (float64(j%perStrip) + 0.5) * g.WidthM / float64(perStrip)
		cy := (float64(j/perStrip) + 0.5) * g.HeightM / float64(links)
		for i := 0; i < links; i++ {
			linkY := (float64(i) + 0.5) * g.HeightM / links
			dy := cy - linkY
			rows[i][j] = -42 - 9*math.Exp(-dy*dy/1.8) - 0.4*math.Sin(0.9*cx+float64(i)) + 0.15*rng.NormFloat64()
		}
	}
	m, err := iupdater.MatrixFromRows(rows)
	if err != nil {
		b.Fatal(err)
	}
	d, err := iupdater.NewDeployment(m, g, opts...)
	if err != nil {
		b.Fatal(err)
	}
	queries := make([][]float64, 64)
	for k := range queries {
		j := (k * 149) % n
		y := make([]float64, links)
		for i := range y {
			y[i] = rows[i][j] + 0.3*rng.NormFloat64()
		}
		queries[k] = y
	}
	return d, queries
}

// BenchmarkLocateLargeGrid measures the serving hot path on 10x and
// 100x office-sized grids under each search tier of the snapshot-time
// locate index. Alongside allocs/op (budget <= 2, enforced by
// scripts/bench.sh) it reports col_evals/op — the number of full
// column-distance/correlation evaluations per Locate, read from the
// snapshot's SearchStats counters — so the sub-linear claim is measured,
// not asserted: compare the 100x-sharded and 100x-exact arms.
func BenchmarkLocateLargeGrid(b *testing.B) {
	arms := []struct {
		name     string
		perStrip int
		opts     []iupdater.Option
	}{
		{"10x", 120, nil},
		{"100x", 1200, nil},
		{"100x-sharded", 1200, []iupdater.Option{iupdater.WithShardedSearch(0)}},
		{"100x-exact", 1200, []iupdater.Option{iupdater.WithExactSearch()}},
	}
	for _, arm := range arms {
		b.Run(arm.name, func(b *testing.B) {
			d, queries := largeGridDeployment(b, arm.perStrip, arm.opts...)
			// Warm the per-query scratch pool so b.N iterations measure
			// the steady state.
			for _, y := range queries {
				if _, err := d.Locate(y); err != nil {
					b.Fatal(err)
				}
			}
			start := d.Snapshot().SearchStats()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := d.Locate(queries[i%len(queries)]); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			st := d.Snapshot().SearchStats()
			b.ReportMetric(float64(st.ColumnEvals-start.ColumnEvals)/float64(b.N), "col_evals/op")
		})
	}
}

func BenchmarkLocateBatch(b *testing.B) {
	for _, workers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			d, batch := benchDeployment(b, workers)
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := d.LocateBatch(ctx, batch); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(batch)), "queries/op")
		})
	}
}
