package iupdater

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Fleet is a registry of named site deployments — one Deployment (with
// an optional Monitor and durable Store) per physical site — for
// operators running device-free localization across many rooms,
// buildings or branches. Each site drifts on its own schedule and owns
// its own store directory, monitor and version line; the Fleet gives
// them one lifecycle (Close) and one observability surface (Summaries),
// which cmd/iupdater's serve mode exposes under /sites.
//
// All methods are safe for concurrent use. Sites are added while wiring
// the process up and live until Close; per-site request traffic goes
// straight to the site's own Deployment/Monitor, so the fleet registry
// is never on a query hot path.
type Fleet struct {
	mu     sync.RWMutex
	sites  map[string]*Site
	closed bool
}

// Site is one named deployment registered in a Fleet — a writer added
// with Add, or a read-only follower added with AddReplica.
type Site struct {
	name string
	dep  *Deployment
	mon  *Monitor
	rep  *Replica
}

// Name returns the site's registry name.
func (s *Site) Name() string { return s.name }

// Deployment returns the site's deployment, nil for a replica site
// (whose serving state lives in Replica).
func (s *Site) Deployment() *Deployment { return s.dep }

// Monitor returns the site's drift monitor, nil if the site runs
// without one.
func (s *Site) Monitor() *Monitor { return s.mon }

// Replica returns the site's follower, nil for a writer site.
func (s *Site) Replica() *Replica { return s.rep }

// Summary returns the site's point-in-time serving state.
func (s *Site) Summary() SiteSummary {
	if s.rep != nil {
		status := s.rep.Status()
		sum := SiteSummary{
			Name:    s.name,
			Version: status.Version,
			Replica: &status,
		}
		// Geometry is learned from the first applied snapshot; before
		// that the replica has no serving shape to report.
		if g, ok := s.rep.geometry(); ok {
			sum.Links, sum.Cells = g.Links, g.NumCells()
		}
		if snap := s.rep.Snapshot(); snap != nil {
			sum.Search = &SearchSummary{Tier: snap.SearchTier(), Stats: snap.SearchStats()}
		}
		if st := s.rep.storeRef(); st != nil {
			sum.Durable = true
			sum.StoredVersions = st.Versions()
			sum.StoredRecords = st.Records()
		}
		return sum
	}
	snap := s.dep.Snapshot()
	sum := SiteSummary{
		Name:    s.name,
		Version: s.dep.Version(),
		Links:   s.dep.Geometry().Links,
		Cells:   s.dep.Geometry().NumCells(),
		Search:  &SearchSummary{Tier: snap.SearchTier(), Stats: snap.SearchStats()},
	}
	if st := s.dep.Store(); st != nil {
		sum.Durable = true
		// Versions and Records both return freshly allocated slices, so
		// the summary never aliases store internals — callers may keep
		// or mutate it freely.
		sum.StoredVersions = st.Versions()
		sum.StoredRecords = st.Records()
	}
	if s.mon != nil {
		stats := s.mon.Stats()
		sum.Drift = &stats
	}
	return sum
}

// SiteSummary is the per-site line of the fleet dashboard: identity,
// serving version, durability and drift state.
type SiteSummary struct {
	// Name is the site's registry name.
	Name string
	// Version is the latest published snapshot version.
	Version uint64
	// Links and Cells describe the site's geometry.
	Links, Cells int
	// Durable reports whether a snapshot store is attached.
	Durable bool
	// StoredVersions lists the store's retained versions (ascending),
	// nil for in-memory sites. These are the versions Rollback accepts.
	StoredVersions []uint64
	// StoredRecords describes each retained version's on-disk record
	// (full snapshot or delta, and its byte footprint), nil for
	// in-memory sites.
	StoredRecords []RecordInfo
	// Search carries the serving snapshot's candidate-search tier and
	// cumulative work counters, nil for a replica that has not applied
	// its first snapshot yet. The counters are per snapshot version:
	// every publish starts a fresh index.
	Search *SearchSummary
	// Drift carries the monitor counters, nil for unmonitored sites.
	Drift *MonitorStats
	// Replica carries the replication state (source, applied and leader
	// versions, lag), nil for writer sites.
	Replica *ReplicaStatus
}

// SearchSummary pairs the serving snapshot's candidate-search tier
// ("pruned", "exact" or "sharded") with its cumulative SearchStats.
type SearchSummary struct {
	Tier  string
	Stats SearchStats
}

// NewFleet returns an empty fleet.
func NewFleet() *Fleet {
	return &Fleet{sites: make(map[string]*Site)}
}

// Add registers a site under a unique name (letters, digits, - and _;
// it becomes a URL path segment in serve mode). mon may be nil for an
// unmonitored site. The fleet takes over lifecycle: Close closes the
// site's monitor and store, and a closed fleet rejects further Adds —
// a site registered after Close would never be closed.
func (f *Fleet) Add(name string, d *Deployment, mon *Monitor) (*Site, error) {
	if d == nil {
		return nil, errors.New("iupdater: Fleet.Add: nil deployment")
	}
	if err := checkSiteName(name); err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, errors.New("iupdater: Fleet.Add: fleet is closed")
	}
	if _, ok := f.sites[name]; ok {
		return nil, fmt.Errorf("iupdater: site %q already registered", name)
	}
	site := &Site{name: name, dep: d, mon: mon}
	f.sites[name] = site
	return site, nil
}

// AddReplica registers a read-only follower site under a unique name
// (same naming rule as Add). The fleet takes over lifecycle: Close
// stops the replica's tailer and closes its attached store (if any).
// The replica shows up in Summaries with its replication lag.
func (f *Fleet) AddReplica(name string, r *Replica) (*Site, error) {
	if r == nil {
		return nil, errors.New("iupdater: Fleet.AddReplica: nil replica")
	}
	if err := checkSiteName(name); err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, errors.New("iupdater: Fleet.AddReplica: fleet is closed")
	}
	if _, ok := f.sites[name]; ok {
		return nil, fmt.Errorf("iupdater: site %q already registered", name)
	}
	site := &Site{name: name, rep: r}
	f.sites[name] = site
	return site, nil
}

func checkSiteName(name string) error {
	if name == "" {
		return errors.New("iupdater: empty site name")
	}
	for _, r := range name {
		if (r < 'a' || r > 'z') && (r < 'A' || r > 'Z') && (r < '0' || r > '9') && r != '-' && r != '_' {
			return fmt.Errorf("iupdater: site name %q: use letters, digits, - and _", name)
		}
	}
	return nil
}

// Site looks a site up by name.
func (f *Fleet) Site(name string) (*Site, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	s, ok := f.sites[name]
	return s, ok
}

// Names returns the registered site names in ascending order.
func (f *Fleet) Names() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]string, 0, len(f.sites))
	for name := range f.sites {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Summaries returns every site's summary, ordered by name — the fleet
// dashboard aggregating each site's version and drift state.
func (f *Fleet) Summaries() []SiteSummary {
	f.mu.RLock()
	sites := make([]*Site, 0, len(f.sites))
	for _, s := range f.sites {
		sites = append(sites, s)
	}
	f.mu.RUnlock()
	sort.Slice(sites, func(i, j int) bool { return sites[i].name < sites[j].name })
	out := make([]SiteSummary, len(sites))
	for i, s := range sites {
		// Summary takes per-site locks only; the registry lock is
		// already released so a slow site cannot block Add/Site.
		out[i] = s.Summary()
	}
	return out
}

// Close shuts every site down: monitors first (waiting out in-flight
// auto-updates, persisting their final state), then stores. One site's
// failure never stops the remaining sites from closing; the failures
// are combined with errors.Join (each wrapped with its site name), so
// callers can still reach the underlying values with errors.Is and
// errors.As. A second Close is a no-op, and Add after Close fails.
func (f *Fleet) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	sites := make([]*Site, 0, len(f.sites))
	for _, s := range f.sites {
		sites = append(sites, s)
	}
	f.sites = nil
	f.mu.Unlock()
	sort.Slice(sites, func(i, j int) bool { return sites[i].name < sites[j].name })
	var errs []error
	for _, s := range sites {
		if s.mon != nil {
			s.mon.Close()
		}
		var st *Store
		if s.rep != nil {
			// Stop tailing before closing the store a promotion may have
			// attached to the version line.
			s.rep.Close()
			st = s.rep.storeRef()
		} else {
			st = s.dep.Store()
		}
		if st != nil {
			if err := st.Close(); err != nil {
				errs = append(errs, fmt.Errorf("site %s: %w", s.name, err))
			}
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("iupdater: closing fleet: %w", errors.Join(errs...))
	}
	return nil
}
