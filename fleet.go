package iupdater

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"iupdater/internal/obs"
)

// Fleet is a registry of named site deployments — one Deployment (with
// an optional Monitor and durable Store) per physical site — for
// operators running device-free localization across many rooms,
// buildings or branches. Each site drifts on its own schedule and owns
// its own store directory, monitor and version line; the Fleet gives
// them one lifecycle (AddSite/RemoveSite/Close) and one observability
// surface (Summaries), which cmd/iupdater's serve mode exposes under
// /sites.
//
// Sites can come and go at runtime: AddSite registers a new site while
// traffic flows, RemoveSite shuts one down and closes its monitor and
// store. With WithResidentLimit the fleet also runs a materialized-
// snapshot LRU: when more than the limit of sites hold a live
// Deployment, the least-recently-queried parkable site is parked — its
// in-RAM snapshot, locate index and monitor are released while the
// durable store stays open — and the first query that reaches a parked
// site re-materializes it from the store through the same delta-chain
// resolution a restart uses. Cold sites then cost disk, not RAM, so a
// single process can register thousands of sites while keeping only the
// hot set materialized.
//
// All methods are safe for concurrent use. Per-site request traffic
// goes through Site.Hydrate, which on a hydrated site is a single
// atomic load plus an LRU touch — lock-free and allocation-free — so
// the fleet registry is never on a query hot path.
type Fleet struct {
	mu     sync.RWMutex
	sites  map[string]*Site
	closed bool

	// residentLimit bounds how many sites may hold a materialized
	// Deployment at once; 0 means unlimited (no parking).
	residentLimit int
	// clock is the LRU's logical clock: every Hydrate stamps its site
	// with the next tick, and eviction picks the smallest stamp.
	clock atomic.Int64
	// evictMu serializes eviction sweeps so concurrent rehydrations
	// don't park each other's freshly hydrated sites past the limit.
	evictMu sync.Mutex

	evictions    obs.Counter
	rehydrations obs.Counter
	rehydLat     *obs.Histogram
}

// FleetOption configures a Fleet.
type FleetOption func(*Fleet)

// WithResidentLimit bounds how many sites may keep a materialized
// snapshot (Deployment + locate index + monitor) in RAM at once;
// n <= 0 means unlimited. Only parkable sites — writers with a durable
// store whose monitor (if any) was provided as a factory — count
// toward and are evicted by the limit; replicas and in-memory sites
// are always resident.
func WithResidentLimit(n int) FleetOption {
	return func(f *Fleet) { f.residentLimit = n }
}

// siteLive is the materialized half of a site: what parking releases
// and rehydration rebuilds. The pair swaps atomically so hot-path
// readers never observe a deployment without its monitor.
type siteLive struct {
	dep *Deployment
	mon *Monitor
}

// Site is one named deployment registered in a Fleet — a writer added
// with Add/AddSite, or a read-only follower added with AddReplica.
type Site struct {
	name  string
	fleet *Fleet
	rep   *Replica

	// live is non-nil while the site is hydrated. Queries load it with
	// a single atomic read; parking swaps it to nil.
	live      atomic.Pointer[siteLive]
	lastTouch atomic.Int64

	// hydMu serializes park, rehydrate and remove. Never held while
	// evicting another site (see Fleet.enforceLimit).
	hydMu   sync.Mutex
	removed bool

	// Immutable after AddSite.
	store      *Store
	geo        Geometry
	depCfg     config
	monFactory func(*Deployment) (*Monitor, error)
	parkable   bool
}

// Name returns the site's registry name.
func (s *Site) Name() string { return s.name }

// Deployment returns the site's deployment — nil for a replica site
// (whose serving state lives in Replica) and nil while the site is
// parked. Use Hydrate to get a deployment that is re-materialized on
// demand.
func (s *Site) Deployment() *Deployment {
	if l := s.live.Load(); l != nil {
		return l.dep
	}
	return nil
}

// Monitor returns the site's drift monitor, nil if the site runs
// without one or is parked.
func (s *Site) Monitor() *Monitor {
	if l := s.live.Load(); l != nil {
		return l.mon
	}
	return nil
}

// Replica returns the site's follower, nil for a writer site.
func (s *Site) Replica() *Replica { return s.rep }

// Hydrated reports whether the site currently holds a materialized
// Deployment. Replica sites report true (their serving state is not
// subject to parking).
func (s *Site) Hydrated() bool {
	return s.rep != nil || s.live.Load() != nil
}

// Hydrate returns the site's deployment and monitor, re-materializing
// them from the durable store if the site is parked. On a hydrated
// site this is the query hot path: one atomic load and an LRU touch,
// lock-free and allocation-free. The returned monitor is nil for
// unmonitored sites. Replica and removed sites fail: a replica serves
// through Replica, and a removed site's store is closed.
func (s *Site) Hydrate() (*Deployment, *Monitor, error) {
	if l := s.live.Load(); l != nil {
		s.touch()
		return l.dep, l.mon, nil
	}
	return s.rehydrate()
}

// touch stamps the site with the fleet LRU clock's next tick.
func (s *Site) touch() {
	s.lastTouch.Store(s.fleet.clock.Add(1))
}

// rehydrate re-materializes a parked site: the latest snapshot is
// loaded from the store through the usual delta-chain resolution, the
// locate index rebuilt under the exact config the site was added with,
// and the monitor (if a factory was provided) reconstructed — it
// restores its calibrated baseline from the store's state blob, so
// drift tracking survives parking the same way it survives a restart.
func (s *Site) rehydrate() (*Deployment, *Monitor, error) {
	s.hydMu.Lock()
	if l := s.live.Load(); l != nil {
		// Lost the race to another query: its hydration serves us too.
		s.hydMu.Unlock()
		s.touch()
		return l.dep, l.mon, nil
	}
	if s.removed {
		s.hydMu.Unlock()
		return nil, nil, fmt.Errorf("iupdater: site %q has been removed", s.name)
	}
	if s.rep != nil {
		s.hydMu.Unlock()
		return nil, nil, fmt.Errorf("iupdater: site %q is a replica (serve through Replica)", s.name)
	}
	start := time.Now()
	dep, err := openDeploymentCfg(s.store, s.depCfg)
	if err != nil {
		s.hydMu.Unlock()
		return nil, nil, fmt.Errorf("iupdater: rehydrating site %q: %w", s.name, err)
	}
	var mon *Monitor
	if s.monFactory != nil {
		mon, err = s.monFactory(dep)
		if err != nil {
			s.hydMu.Unlock()
			return nil, nil, fmt.Errorf("iupdater: rehydrating site %q monitor: %w", s.name, err)
		}
	}
	l := &siteLive{dep: dep, mon: mon}
	s.live.Store(l)
	s.touch()
	f := s.fleet
	s.hydMu.Unlock()
	f.rehydrations.Inc()
	f.rehydLat.Observe(time.Since(start).Seconds())
	// Enforce the limit only after releasing our own hydMu: the victim
	// may be any other site, and holding two sites' hydMu at once would
	// deadlock two concurrent rehydrations evicting each other.
	f.enforceLimit(s)
	return l.dep, l.mon, nil
}

// park releases the site's materialized half: the monitor is closed
// first (synchronously waiting out in-flight auto-updates and
// persisting its calibrated baseline to the store), then the live
// pointer swaps to nil. The store stays open — that is the point —
// and queries pinned to the old snapshot finish against it untouched.
// Reports whether anything was released.
func (s *Site) park() bool {
	s.hydMu.Lock()
	defer s.hydMu.Unlock()
	if s.removed || !s.parkable {
		return false
	}
	l := s.live.Load()
	if l == nil {
		return false
	}
	if l.mon != nil {
		l.mon.Close()
	}
	s.live.Store(nil)
	return true
}

// shutdown is the terminal half of RemoveSite and Close: monitor
// first (waiting out in-flight auto-updates, persisting final state),
// then replica tailer, then store.
func (s *Site) shutdown() error {
	s.hydMu.Lock()
	defer s.hydMu.Unlock()
	if s.removed {
		return nil
	}
	s.removed = true
	l := s.live.Load()
	s.live.Store(nil)
	if l != nil && l.mon != nil {
		l.mon.Close()
	}
	var st *Store
	if s.rep != nil {
		// Stop tailing before closing the store a promotion may have
		// attached to the version line.
		s.rep.Close()
		st = s.rep.storeRef()
	} else {
		st = s.store
	}
	if st != nil {
		if err := st.Close(); err != nil {
			return fmt.Errorf("site %s: %w", s.name, err)
		}
	}
	return nil
}

// Summary returns the site's point-in-time serving state.
func (s *Site) Summary() SiteSummary {
	if s.rep != nil {
		status := s.rep.Status()
		sum := SiteSummary{
			Name:     s.name,
			Version:  status.Version,
			Hydrated: true,
			Replica:  &status,
		}
		// Geometry is learned from the first applied snapshot; before
		// that the replica has no serving shape to report.
		if g, ok := s.rep.geometry(); ok {
			sum.Links, sum.Cells = g.Links, g.NumCells()
		}
		if snap := s.rep.Snapshot(); snap != nil {
			sum.Search = &SearchSummary{Tier: snap.SearchTier(), Stats: snap.SearchStats()}
		}
		if st := s.rep.storeRef(); st != nil {
			sum.Durable = true
			sum.StoredVersions = st.Versions()
			sum.StoredRecords = st.Records()
			sum.OldestVersion = st.OldestVersion()
		}
		return sum
	}
	l := s.live.Load()
	if l == nil {
		// Parked (or just removed): everything reportable lives in the
		// store. The version index survives even a closed store, so a
		// summary racing RemoveSite degrades to zeros, never panics.
		sum := SiteSummary{
			Name:  s.name,
			Links: s.geo.Links,
			Cells: s.geo.NumCells(),
		}
		if s.store != nil {
			sum.Durable = true
			sum.Version = s.store.LatestVersion()
			sum.StoredVersions = s.store.Versions()
			sum.StoredRecords = s.store.Records()
			sum.OldestVersion = s.store.OldestVersion()
		}
		return sum
	}
	snap := l.dep.Snapshot()
	sum := SiteSummary{
		Name:     s.name,
		Version:  l.dep.Version(),
		Links:    l.dep.Geometry().Links,
		Cells:    l.dep.Geometry().NumCells(),
		Hydrated: true,
		Search:   &SearchSummary{Tier: snap.SearchTier(), Stats: snap.SearchStats()},
	}
	if st := l.dep.Store(); st != nil {
		sum.Durable = true
		// Versions and Records both return freshly allocated slices, so
		// the summary never aliases store internals — callers may keep
		// or mutate it freely.
		sum.StoredVersions = st.Versions()
		sum.StoredRecords = st.Records()
		sum.OldestVersion = st.OldestVersion()
	}
	if l.mon != nil {
		stats := l.mon.Stats()
		sum.Drift = &stats
	}
	return sum
}

// SiteSummary is the per-site line of the fleet dashboard: identity,
// serving version, durability and drift state.
type SiteSummary struct {
	// Name is the site's registry name.
	Name string
	// Version is the latest published snapshot version (for a parked
	// site, the latest stored version it would rehydrate to).
	Version uint64
	// Links and Cells describe the site's geometry.
	Links, Cells int
	// Hydrated reports whether the site holds a materialized snapshot
	// in RAM. Parked sites are false; their next query rehydrates them.
	Hydrated bool
	// Durable reports whether a snapshot store is attached.
	Durable bool
	// StoredVersions lists the store's retained versions (ascending),
	// nil for in-memory sites. These are the versions Rollback accepts.
	StoredVersions []uint64
	// StoredRecords describes each retained version's on-disk record
	// (full snapshot or delta, and its byte footprint), nil for
	// in-memory sites.
	StoredRecords []RecordInfo
	// OldestVersion is the store's compaction horizon — the oldest
	// retained version — 0 for in-memory sites.
	OldestVersion uint64
	// Search carries the serving snapshot's candidate-search tier and
	// cumulative work counters, nil for a parked site or a replica that
	// has not applied its first snapshot yet. The counters are per
	// snapshot version: every publish starts a fresh index.
	Search *SearchSummary
	// Drift carries the monitor counters, nil for unmonitored or parked
	// sites.
	Drift *MonitorStats
	// Replica carries the replication state (source, applied and leader
	// versions, lag), nil for writer sites.
	Replica *ReplicaStatus
}

// SearchSummary pairs the serving snapshot's candidate-search tier
// ("pruned", "exact" or "sharded") with its cumulative SearchStats.
type SearchSummary struct {
	Tier  string
	Stats SearchStats
}

// FleetStats is the fleet-level lifecycle and LRU state.
type FleetStats struct {
	// Sites is the number of registered sites.
	Sites int
	// Resident is how many sites currently hold a materialized snapshot.
	Resident int
	// Evictions counts sites parked by the resident limit.
	Evictions uint64
	// Rehydrations counts parked sites re-materialized by a query.
	Rehydrations uint64
}

// NewFleet returns an empty fleet.
func NewFleet(opts ...FleetOption) *Fleet {
	f := &Fleet{
		sites:    make(map[string]*Site),
		rehydLat: obs.NewHistogram(obs.DefLatencyBuckets...),
	}
	for _, opt := range opts {
		opt(f)
	}
	return f
}

// SiteConfig describes a site handed to AddSite.
type SiteConfig struct {
	// Deployment is the site's writer; required.
	Deployment *Deployment
	// Monitor optionally attaches an already-running drift monitor.
	Monitor *Monitor
	// MonitorFactory, when set, is how the fleet rebuilds the monitor
	// after a parked site rehydrates (a Monitor is bound to one
	// Deployment, so parking must close it and rehydration needs a
	// fresh one). When Monitor is nil the factory also builds the
	// initial monitor. A site with a Monitor but no factory is never
	// parked — the fleet could not restore its monitoring.
	MonitorFactory func(*Deployment) (*Monitor, error)
}

// Add registers a site under a unique name (letters, digits, - and _;
// it becomes a URL path segment in serve mode). mon may be nil for an
// unmonitored site. The fleet takes over lifecycle: Close closes the
// site's monitor and store, and a closed fleet rejects further Adds —
// a site registered after Close would never be closed. Equivalent to
// AddSite with just Deployment and Monitor set.
func (f *Fleet) Add(name string, d *Deployment, mon *Monitor) (*Site, error) {
	return f.AddSite(name, SiteConfig{Deployment: d, Monitor: mon})
}

// AddSite registers a site under a unique name at any point in the
// fleet's life — serve mode calls it from the PUT /sites/{name}
// lifecycle route. The site is immediately hydrated (it arrives with a
// live Deployment) and, when a resident limit is set, joins the LRU:
// sites with a durable store whose monitoring is restorable (no
// monitor, or a MonitorFactory) are parkable. Adding past the limit
// parks the least-recently-used parkable site.
func (f *Fleet) AddSite(name string, cfg SiteConfig) (*Site, error) {
	d := cfg.Deployment
	if d == nil {
		return nil, errors.New("iupdater: Fleet.AddSite: nil deployment")
	}
	if err := checkSiteName(name); err != nil {
		return nil, err
	}
	mon := cfg.Monitor
	if mon == nil && cfg.MonitorFactory != nil {
		var err error
		mon, err = cfg.MonitorFactory(d)
		if err != nil {
			return nil, fmt.Errorf("iupdater: Fleet.AddSite: building monitor for %q: %w", name, err)
		}
	}
	site := &Site{
		name:       name,
		fleet:      f,
		store:      d.Store(),
		geo:        d.Geometry(),
		depCfg:     d.cfg,
		monFactory: cfg.MonitorFactory,
	}
	site.parkable = site.store != nil && (mon == nil || cfg.MonitorFactory != nil)
	site.live.Store(&siteLive{dep: d, mon: mon})
	site.touch()
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, errors.New("iupdater: Fleet.AddSite: fleet is closed")
	}
	if _, ok := f.sites[name]; ok {
		f.mu.Unlock()
		return nil, fmt.Errorf("iupdater: site %q already registered", name)
	}
	f.sites[name] = site
	f.mu.Unlock()
	f.enforceLimit(site)
	return site, nil
}

// RemoveSite unregisters a site and shuts it down: monitor first
// (waiting out in-flight auto-updates), then replica tailer, then
// store. In-flight queries pinned to the site's last snapshot finish
// against RAM; a later Hydrate on a retained *Site handle fails.
func (f *Fleet) RemoveSite(name string) error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return errors.New("iupdater: Fleet.RemoveSite: fleet is closed")
	}
	s, ok := f.sites[name]
	if !ok {
		f.mu.Unlock()
		return fmt.Errorf("iupdater: site %q not registered", name)
	}
	delete(f.sites, name)
	f.mu.Unlock()
	if err := s.shutdown(); err != nil {
		return fmt.Errorf("iupdater: removing %w", err)
	}
	return nil
}

// AddReplica registers a read-only follower site under a unique name
// (same naming rule as Add). The fleet takes over lifecycle: Close
// stops the replica's tailer and closes its attached store (if any).
// The replica shows up in Summaries with its replication lag. Replica
// sites are never parked: their serving state is the tailer's, not a
// store materialization the fleet could rebuild.
func (f *Fleet) AddReplica(name string, r *Replica) (*Site, error) {
	if r == nil {
		return nil, errors.New("iupdater: Fleet.AddReplica: nil replica")
	}
	if err := checkSiteName(name); err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, errors.New("iupdater: Fleet.AddReplica: fleet is closed")
	}
	if _, ok := f.sites[name]; ok {
		return nil, fmt.Errorf("iupdater: site %q already registered", name)
	}
	site := &Site{name: name, fleet: f, rep: r}
	f.sites[name] = site
	return site, nil
}

func checkSiteName(name string) error {
	if name == "" {
		return errors.New("iupdater: empty site name")
	}
	for _, r := range name {
		if (r < 'a' || r > 'z') && (r < 'A' || r > 'Z') && (r < '0' || r > '9') && r != '-' && r != '_' {
			return fmt.Errorf("iupdater: site name %q: use letters, digits, - and _", name)
		}
	}
	return nil
}

// enforceLimit parks least-recently-used parkable sites until the
// resident count is back within the limit. exempt (the site that just
// hydrated or was just added) is never the victim of its own sweep.
// Sweeps are serialized but each victim is parked under only its own
// hydMu, so a sweep never deadlocks against a concurrent rehydration.
func (f *Fleet) enforceLimit(exempt *Site) {
	if f.residentLimit <= 0 {
		return
	}
	f.evictMu.Lock()
	defer f.evictMu.Unlock()
	for {
		victim := f.evictionVictim(exempt)
		if victim == nil {
			return
		}
		if victim.park() {
			f.evictions.Inc()
		}
		// A failed park means the victim raced into a terminal or
		// already-parked state; the recount on the next pass sees it.
	}
}

// evictionVictim returns the least-recently-touched parkable resident
// site, or nil when the resident count is within the limit (or nothing
// is parkable).
func (f *Fleet) evictionVictim(exempt *Site) *Site {
	f.mu.RLock()
	defer f.mu.RUnlock()
	resident := 0
	var victim *Site
	var victimTouch int64
	for _, s := range f.sites {
		if s.rep != nil || s.live.Load() == nil {
			continue
		}
		resident++
		if s == exempt || !s.parkable {
			continue
		}
		if t := s.lastTouch.Load(); victim == nil || t < victimTouch {
			victim, victimTouch = s, t
		}
	}
	if resident <= f.residentLimit {
		return nil
	}
	return victim
}

// Stats returns the fleet's lifecycle and LRU counters.
func (f *Fleet) Stats() FleetStats {
	f.mu.RLock()
	stats := FleetStats{Sites: len(f.sites)}
	for _, s := range f.sites {
		if s.rep != nil || s.live.Load() != nil {
			stats.Resident++
		}
	}
	f.mu.RUnlock()
	stats.Evictions = f.evictions.Value()
	stats.Rehydrations = f.rehydrations.Value()
	return stats
}

// RehydrationLatency exposes the histogram of park-to-serve latencies:
// how long a cold site's first query waited for the snapshot to
// re-materialize from the store.
func (f *Fleet) RehydrationLatency() *obs.Histogram { return f.rehydLat }

// Site looks a site up by name.
func (f *Fleet) Site(name string) (*Site, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	s, ok := f.sites[name]
	return s, ok
}

// Names returns the registered site names in ascending order.
func (f *Fleet) Names() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]string, 0, len(f.sites))
	for name := range f.sites {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Summaries returns every site's summary, ordered by name — the fleet
// dashboard aggregating each site's version and drift state. Parked
// sites are reported from their store without rehydrating them: a
// dashboard scrape must not defeat the LRU.
func (f *Fleet) Summaries() []SiteSummary {
	f.mu.RLock()
	sites := make([]*Site, 0, len(f.sites))
	for _, s := range f.sites {
		sites = append(sites, s)
	}
	f.mu.RUnlock()
	sort.Slice(sites, func(i, j int) bool { return sites[i].name < sites[j].name })
	out := make([]SiteSummary, len(sites))
	for i, s := range sites {
		// Summary takes per-site locks only; the registry lock is
		// already released so a slow site cannot block Add/Site.
		out[i] = s.Summary()
	}
	return out
}

// Close shuts every site down: monitors first (waiting out in-flight
// auto-updates, persisting their final state), then stores. One site's
// failure never stops the remaining sites from closing; the failures
// are combined with errors.Join (each wrapped with its site name), so
// callers can still reach the underlying values with errors.Is and
// errors.As. A second Close is a no-op, and Add after Close fails.
func (f *Fleet) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	sites := make([]*Site, 0, len(f.sites))
	for _, s := range f.sites {
		sites = append(sites, s)
	}
	f.sites = nil
	f.mu.Unlock()
	sort.Slice(sites, func(i, j int) bool { return sites[i].name < sites[j].name })
	var errs []error
	for _, s := range sites {
		if err := s.shutdown(); err != nil {
			errs = append(errs, err)
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("iupdater: closing fleet: %w", errors.Join(errs...))
	}
	return nil
}
