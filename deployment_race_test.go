package iupdater

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestConcurrentLocateWhileUpdate hammers the query path from several
// goroutines while the write path swaps snapshots, asserting (under
// -race) that no torn state is observable: every estimate is finite and
// every reader sees monotonically non-decreasing snapshot versions.
func TestConcurrentLocateWhileUpdate(t *testing.T) {
	tb := NewTestbed(Office(), 8)
	d, _, err := tb.Deploy(0, 20)
	if err != nil {
		t.Fatal(err)
	}
	refs, err := d.ReferenceLocations()
	if err != nil {
		t.Fatal(err)
	}

	// Precompute update inputs so the writer loop spends its time in
	// Update/Refresh, not in the simulator.
	const updates = 4
	type updateInput struct {
		noDec Matrix
		mask  Mask
		cols  Matrix
	}
	inputs := make([]updateInput, updates)
	for u := range inputs {
		at := time.Duration(u+1) * 10 * day
		cols, _ := tb.ReferenceMatrix(at, refs)
		inputs[u] = updateInput{noDec: tb.NoDecreaseMatrix(at), mask: tb.Mask(), cols: cols}
	}
	cx, cy := tb.CellCenter(42)
	single := tb.MeasureOnline(cx, cy, time.Hour)
	batch := make([][]float64, 8)
	for k := range batch {
		x, y := tb.CellCenter(k * 7 % tb.NumCells())
		batch[k] = tb.MeasureOnline(x, y, time.Duration(k+2)*time.Minute)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	const readers = 8
	errCh := make(chan error, readers+1)

	// Version-rollover observer: versions delivered on the subscription
	// must increase strictly.
	updatesCh, cancel := d.Updates()
	defer cancel()
	var obsWg sync.WaitGroup
	obsWg.Add(1)
	go func() {
		defer obsWg.Done()
		var last uint64
		for snap := range updatesCh {
			if v := snap.Version(); v <= last {
				errCh <- fmt.Errorf("subscription version went backwards: %d after %d", v, last)
				return
			} else {
				last = v
			}
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var lastVersion uint64
			for !stop.Load() {
				// Lock-free single query against the latest snapshot.
				snap := d.Snapshot()
				if v := snap.Version(); v < lastVersion {
					errCh <- fmt.Errorf("reader %d: version went backwards: %d after %d", r, v, lastVersion)
					return
				} else {
					lastVersion = v
				}
				p, err := snap.Locate(single)
				if err != nil {
					errCh <- err
					return
				}
				if math.IsNaN(p.X) || math.IsNaN(p.Y) {
					errCh <- fmt.Errorf("reader %d: NaN estimate", r)
					return
				}
				// Batch query through the deployment.
				if r%2 == 0 {
					if _, err := d.LocateBatch(context.Background(), batch); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(r)
	}

	// Writer: interleave Update and Refresh while the readers run.
	for u := 0; u < updates; u++ {
		if _, err := d.Update(inputs[u].noDec, inputs[u].mask, inputs[u].cols); err != nil {
			t.Fatal(err)
		}
		if u == updates/2 {
			if err := d.Refresh(); err != nil {
				t.Fatal(err)
			}
			// Refresh may re-select references; keep feeding matching
			// columns by re-reading them.
			if refs2, err := d.ReferenceLocations(); err != nil {
				t.Fatal(err)
			} else if len(refs2) != len(refs) {
				t.Fatalf("reference count changed after refresh: %d vs %d", len(refs2), len(refs))
			}
		}
	}
	stop.Store(true)
	wg.Wait()
	cancel()
	obsWg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if v := d.Version(); v != 1+updates {
		t.Errorf("final version = %d, want %d", v, 1+updates)
	}
}
