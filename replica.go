package iupdater

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"iupdater/internal/loc"
	"iupdater/internal/obs"
	"iupdater/internal/replica"
	"iupdater/internal/store"
	"iupdater/internal/trace"
)

// This file is the replication surface: ServeRecords exposes a leader
// deployment's record log as a wire protocol, and Replica is the
// read-only follower that tails it. The wire frame format is exactly
// the store's on-disk record framing — a full snapshot or a
// changed-columns delta, CRC-framed — so the follower re-runs the same
// validation the store runs during crash recovery before any streamed
// byte can influence what Locate serves.

// maxStreamWait caps the leader-side long-poll duration a follower may
// request, bounding how long a caught-up records request can hold a
// connection open.
const maxStreamWait = 30 * time.Second

// ServeRecords returns an http.Handler streaming the deployment's
// snapshot record log to follower replicas. The handler answers GET
// requests with two query parameters:
//
//   - from: the version to resume at (the follower's last applied
//     version + 1). 0, or absent, requests a bootstrap: the stream
//     starts at the newest full record, from which a follower with no
//     prior state can materialize every later version. A from below
//     the compaction horizon gets 410 Gone (plus the oldest retained
//     version in Iupdater-Oldest-Version) — the records are gone and
//     the follower must re-bootstrap.
//   - wait: a long-poll duration (capped at 30s). A caught-up leader
//     holds the request open until the next publish or the deadline
//     instead of returning an empty response immediately.
//
// A 200 response is a raw concatenation of record frames (on-disk
// framing, full and delta records alike) in version order, with the
// leader's newest version in the Iupdater-Leader-Version header; an
// empty body means the follower is caught up. The deployment must
// have a durable store attached — the record log is the store.
//
// The handler only reads the log; serving replicas never blocks the
// leader's write path or changes its durability contract.
func (d *Deployment) ServeRecords() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		st := d.cfg.store
		if st == nil {
			http.Error(w, "iupdater: deployment has no durable store to replicate from", http.StatusNotImplemented)
			return
		}
		var from uint64
		if s := r.URL.Query().Get("from"); s != "" {
			v, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				http.Error(w, fmt.Sprintf("iupdater: from %q: %v", s, err), http.StatusBadRequest)
				return
			}
			from = v
		}
		var wait time.Duration
		if s := r.URL.Query().Get("wait"); s != "" {
			v, err := time.ParseDuration(s)
			if err != nil || v < 0 {
				http.Error(w, fmt.Sprintf("iupdater: wait %q is not a duration", s), http.StatusBadRequest)
				return
			}
			if v > maxStreamWait {
				v = maxStreamWait
			}
			wait = v
		}
		frames, ok := d.framesOr(w, st, from)
		if !ok {
			return
		}
		if len(frames) == 0 && wait > 0 {
			// Subscribe before the re-check so a publish landing between
			// the check and the wait cannot be missed.
			updates, cancel := d.Updates()
			defer cancel()
			if frames, ok = d.framesOr(w, st, from); !ok {
				return
			}
			if len(frames) == 0 {
				timer := time.NewTimer(wait)
				select {
				case <-r.Context().Done():
					timer.Stop()
					return
				case <-timer.C:
				case <-updates:
					timer.Stop()
				}
				if frames, ok = d.framesOr(w, st, from); !ok {
					return
				}
			}
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Iupdater-Leader-Version", strconv.FormatUint(d.Version(), 10))
		if len(frames) > 0 {
			// Advertise the publish trace of the newest streamed record so
			// the follower's apply trace can link back to it (best effort:
			// publishes older than the retained trace window have no ID).
			if id, ok := d.PublishTraceID(st.LatestVersion()); ok {
				w.Header().Set("Iupdater-Trace-Id", id.String())
			}
		}
		for _, frame := range frames {
			if _, err := w.Write(frame); err != nil {
				// The follower vanished mid-stream; it will resume from
				// its last applied version.
				return
			}
		}
	})
}

// framesOr reads the record frames at from, writing the HTTP error
// (410 for a compacted-away resume point, with the horizon in
// Iupdater-Oldest-Version) when it cannot. ok reports whether the
// response is still writable.
func (d *Deployment) framesOr(w http.ResponseWriter, st *Store, from uint64) (frames [][]byte, ok bool) {
	frames, err := st.st.RecordFramesFrom(from)
	if errors.Is(err, store.ErrCompacted) {
		w.Header().Set("Iupdater-Oldest-Version", strconv.FormatUint(st.st.OldestVersion(), 10))
		http.Error(w, "iupdater: "+err.Error(), http.StatusGone)
		return nil, false
	}
	if err != nil {
		http.Error(w, "iupdater: "+err.Error(), http.StatusInternalServerError)
		return nil, false
	}
	return frames, true
}

// ReplicaOption configures a Replica opened with OpenReplica.
type ReplicaOption func(*replicaConfig)

type replicaConfig struct {
	client     *http.Client
	store      *Store
	wait       time.Duration
	minBackoff time.Duration
	maxBackoff time.Duration
	search     loc.IndexConfig
	tracer     *trace.Tracer
	site       string
}

// WithReplicaClient sets the HTTP client used to tail the leader
// (default http.DefaultClient). The client must not impose an overall
// request timeout shorter than the long-poll wait.
func WithReplicaClient(c *http.Client) ReplicaOption {
	return func(cfg *replicaConfig) { cfg.client = c }
}

// WithReplicaStore attaches a durable store to the replica for use at
// promotion time: Promote seeds it with the takeover snapshot (if it
// is not already there) so the promoted writer continues the version
// line durably. While following, the replica does not write to the
// store — the leader owns durability.
func WithReplicaStore(st *Store) ReplicaOption {
	return func(cfg *replicaConfig) { cfg.store = st }
}

// WithReplicaWait sets the long-poll duration hint sent to the leader
// (default 25s; the leader caps it at 30s).
func WithReplicaWait(d time.Duration) ReplicaOption {
	return func(cfg *replicaConfig) { cfg.wait = d }
}

// WithReplicaBackoff bounds the capped exponential retry backoff after
// failed polls (defaults 100ms and 5s).
func WithReplicaBackoff(min, max time.Duration) ReplicaOption {
	return func(cfg *replicaConfig) { cfg.minBackoff, cfg.maxBackoff = min, max }
}

// WithReplicaTracer attaches a span tracer to the replica, as
// WithTracer does for a leader deployment. Every tail poll records a
// "replica.poll" trace (longpoll → per-frame validate → apply); polls
// that carried frames are force-retained, and when the leader
// advertises the publish trace ID of its newest record in the
// Iupdater-Trace-Id response header, the follower trace carries it as
// the root leader_trace_id attribute — the cross-node link from a
// follower apply back to the leader publish that produced it. Replica
// Locate calls record "locate" traces under the same sampling policy.
// site labels the traces (typically the follower's site name).
func WithReplicaTracer(t *trace.Tracer, site string) ReplicaOption {
	return func(cfg *replicaConfig) { cfg.tracer, cfg.site = t, site }
}

// WithReplicaExactSearch forces the replica's snapshots to the
// bit-exact exhaustive locate tier, exactly as WithExactSearch does for
// a leader. A follower configured like its leader serves bit-identical
// Locate results at the same version under every tier; this option
// pins both ends to the reference scan when that identity must hold by
// construction rather than by the pruning proof.
func WithReplicaExactSearch() ReplicaOption {
	return func(cfg *replicaConfig) { cfg.search.Mode = loc.SearchExact }
}

// WithReplicaShardedSearch switches the replica's snapshots to the
// approximate sharded locate tier, exactly as WithShardedSearch does
// for a leader (fanout <= 0 selects the default).
func WithReplicaShardedSearch(fanout int) ReplicaOption {
	return func(cfg *replicaConfig) {
		cfg.search.Mode = loc.SearchSharded
		cfg.search.Fanout = fanout
	}
}

// Replica is a read-only follower of a leader deployment: it tails the
// leader's records endpoint (see ServeRecords), validates every
// streamed record exactly as the store validates its log during crash
// recovery, and publishes each materialized snapshot through the same
// atomic-pointer swap a Deployment uses — Locate on a replica is
// lock-free and bit-identical to the leader at the same version.
//
// The tailer survives disconnects (capped exponential backoff with
// jitter, resuming from the last applied version) and leader
// compaction (a 410 response triggers a re-bootstrap from the leader's
// newest full record). All methods are safe for concurrent use.
//
// Construct with OpenReplica; end the life cycle with Close, or turn
// the replica into a writer with Promote.
type Replica struct {
	source string
	cfg    replicaConfig
	tailer *replica.Tailer

	snap atomic.Pointer[Snapshot]

	// lat mirrors Deployment.lat: the cumulative locate-latency
	// histogram (seconds) of the replica's query paths.
	lat *obs.Histogram

	cancel context.CancelFunc
	done   chan struct{}

	mu       sync.Mutex
	geoKnown bool
	geo      Geometry
	promoted *Deployment
	closed   bool
}

// OpenReplica starts following a leader's records endpoint, e.g.
// http://leader:8080/sites/office/records. It returns immediately —
// the first snapshot arrives asynchronously once the tailer has
// bootstrapped; use WaitVersion to block until the replica has caught
// up to a known version.
func OpenReplica(recordsURL string, opts ...ReplicaOption) (*Replica, error) {
	var cfg replicaConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.wait <= 0 {
		cfg.wait = 25 * time.Second
	}
	r := &Replica{
		source: recordsURL,
		cfg:    cfg,
		done:   make(chan struct{}),
		lat:    obs.NewHistogram(obs.DefLatencyBuckets...),
	}
	t, err := replica.New(replica.Config{
		URL:        recordsURL,
		Apply:      r.apply,
		Client:     cfg.client,
		Wait:       cfg.wait,
		MinBackoff: cfg.minBackoff,
		MaxBackoff: cfg.maxBackoff,
		Tracer:     cfg.tracer,
		Site:       cfg.site,
	})
	if err != nil {
		return nil, fmt.Errorf("iupdater: %w", err)
	}
	r.tailer = t
	ctx, cancel := context.WithCancel(context.Background())
	r.cancel = cancel
	go func() {
		defer close(r.done)
		t.Run(ctx)
	}()
	return r, nil
}

// apply is the tailer's per-record callback: decode the materialized
// snapshot payload (a fresh matrix — the payload buffer is the
// tailer's to reuse) and publish it. It runs on the tailer goroutine;
// an error drops the leader connection and counts toward the tailer's
// re-bootstrap streak.
func (r *Replica) apply(version uint64, _ store.Kind, payload []byte) error {
	fp, g, err := decodeSnapshot(payload)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed || r.promoted != nil {
		return errors.New("replica is no longer following")
	}
	if !r.geoKnown {
		r.geo, r.geoKnown = g, true
	} else if g != r.geo {
		return fmt.Errorf("leader switched geometry to %+v (replica bootstrapped with %+v)", g, r.geo)
	}
	r.snap.Store(newSnapshot(version, fp, g.grid(), r.cfg.search))
	return nil
}

// Source returns the records URL the replica follows.
func (r *Replica) Source() string { return r.source }

// Snapshot returns the latest applied snapshot, nil until the first
// record has been applied. The load is a single atomic pointer read.
func (r *Replica) Snapshot() *Snapshot { return r.snap.Load() }

// Version returns the latest applied snapshot version, 0 before the
// first record.
func (r *Replica) Version() uint64 {
	if s := r.snap.Load(); s != nil {
		return s.version
	}
	return 0
}

// LeaderVersion returns the newest version the leader has advertised,
// 0 before the first successful poll.
func (r *Replica) LeaderVersion() uint64 { return r.tailer.LeaderVersion() }

// Lag returns how many versions the replica trails the leader's last
// advertisement, 0 when caught up (or before the first poll).
func (r *Replica) Lag() uint64 {
	leader, local := r.tailer.LeaderVersion(), r.Version()
	if leader <= local {
		return 0
	}
	return leader - local
}

// ReplicaStatus is a point-in-time view of a replica's replication
// state, surfaced in fleet summaries.
type ReplicaStatus struct {
	// Source is the leader records URL being followed.
	Source string
	// Version is the latest snapshot version applied locally.
	Version uint64
	// LeaderVersion is the newest version the leader advertised, 0
	// before the first successful poll.
	LeaderVersion uint64
	// Lag is max(LeaderVersion-Version, 0) — the replication lag in
	// versions.
	Lag uint64
	// Reconnects counts failed leader polls (each retried over a fresh
	// connection under backoff).
	Reconnects uint64
	// Rebootstraps counts re-bootstraps from the leader's newest full
	// record (compaction gap or apply-failure streak).
	Rebootstraps uint64
	// Promoted reports that Promote has ended following; Version then
	// tracks the promoted deployment.
	Promoted bool
}

// Status returns the replica's current replication state. After
// Promote, Version follows the promoted deployment's publishes.
func (r *Replica) Status() ReplicaStatus {
	r.mu.Lock()
	promoted := r.promoted
	r.mu.Unlock()
	st := ReplicaStatus{
		Source:        r.source,
		Version:       r.Version(),
		LeaderVersion: r.tailer.LeaderVersion(),
		Lag:           r.Lag(),
		Reconnects:    r.tailer.Reconnects(),
		Rebootstraps:  r.tailer.Rebootstraps(),
		Promoted:      promoted != nil,
	}
	if promoted != nil {
		st.Version = promoted.Version()
		st.Lag = 0
	}
	return st
}

// WaitVersion blocks until the replica has applied a snapshot at or
// beyond version, returning that snapshot, or until ctx is done.
func (r *Replica) WaitVersion(ctx context.Context, version uint64) (*Snapshot, error) {
	ticker := time.NewTicker(2 * time.Millisecond)
	defer ticker.Stop()
	for {
		if s := r.snap.Load(); s != nil && s.version >= version {
			return s, nil
		}
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("iupdater: waiting for replica version %d (at %d): %w", version, r.Version(), ctx.Err())
		case <-ticker.C:
		}
	}
}

// LocateLatency returns the replica's cumulative locate-latency
// histogram (seconds), one observation per Locate/LocateCell call. Safe
// for concurrent use; the serve layer exposes it on /metrics.
func (r *Replica) LocateLatency() *obs.Histogram { return r.lat }

// Locate estimates the target position against the replica's latest
// applied snapshot. With WithReplicaTracer attached it records a
// "locate" trace exactly as a leader Deployment does.
func (r *Replica) Locate(rss []float64) (Position, error) {
	s := r.snap.Load()
	if s == nil {
		return Position{}, errors.New("iupdater: replica has not applied a snapshot yet")
	}
	tr := r.cfg.tracer.Start("locate", r.cfg.site)
	start := time.Now()
	if tr == nil {
		p, err := s.Locate(rss)
		r.lat.Observe(time.Since(start).Seconds())
		return p, err
	}
	sp := tr.StartSpan("omp.solve")
	p, st, err := s.LocateWithStats(rss)
	sp.SetStr("tier", st.Tier)
	sp.SetInt("column_evals", int64(st.ColumnEvals))
	sp.SetInt("shard_evals", int64(st.ShardEvals))
	sp.SetInt("shards_visited", int64(st.ShardsVisited))
	sp.SetInt("rounds", int64(st.Rounds))
	sp.End()
	el := time.Since(start)
	r.lat.Observe(el.Seconds())
	root := tr.Root()
	root.SetInt("version", int64(st.Version))
	root.SetBool("error", err != nil)
	root.EndDur(el)
	tr.Finish()
	return p, err
}

// LocateCell estimates the strip-major grid cell index against the
// replica's latest applied snapshot.
func (r *Replica) LocateCell(rss []float64) (int, error) {
	s := r.snap.Load()
	if s == nil {
		return 0, errors.New("iupdater: replica has not applied a snapshot yet")
	}
	start := time.Now()
	cell, err := s.LocateCell(rss)
	r.lat.Observe(time.Since(start).Seconds())
	return cell, err
}

// geometry returns the leader geometry learned from the first applied
// snapshot.
func (r *Replica) geometry() (Geometry, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.geo, r.geoKnown
}

// storeRef returns the store attached with WithReplicaStore, nil
// otherwise. The fleet uses it to take over the store's lifecycle.
func (r *Replica) storeRef() *Store { return r.cfg.store }

// Promote ends following and turns the replica's latest applied
// snapshot into a live writer Deployment that continues the same
// monotone version line: the returned deployment starts at exactly the
// replica's current version, and its next publish is that version + 1.
//
// If a store was attached with WithReplicaStore (or is passed here via
// WithStore), it is seeded with a full snapshot at the takeover
// version when it is behind, so the handover itself is durable; a
// store already holding versions beyond the takeover point is refused
// — it belongs to a different (longer) history. Options are applied as
// in NewDeployment.
//
// Promote is one-way and at-most-once: a second call fails, and the
// replica's query methods keep serving the last applied snapshot (the
// promoted deployment is the live object). The old leader must stop
// publishing before its followers promote; replication has no
// leader-election protocol.
func (r *Replica) Promote(opts ...Option) (*Deployment, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, errors.New("iupdater: Promote: replica is closed")
	}
	if r.promoted != nil {
		return nil, errors.New("iupdater: Promote: replica is already promoted")
	}
	snap := r.snap.Load()
	if snap == nil {
		return nil, errors.New("iupdater: Promote: replica has not applied a snapshot yet")
	}
	// Stop the tailer before constructing the writer so no late frame
	// races the handover. apply also rechecks promoted under mu, but a
	// stopped tailer makes the ordering obvious.
	r.cancel()
	<-r.done
	if r.cfg.store != nil {
		opts = append([]Option{WithStore(r.cfg.store)}, opts...)
	}
	d, err := newDeploymentAt(snap.fp, r.geo, snap.version, opts...)
	if err != nil {
		return nil, err
	}
	r.promoted = d
	return d, nil
}

// Promoted returns the deployment created by Promote, nil while the
// replica is still following.
func (r *Replica) Promoted() *Deployment {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.promoted
}

// Close stops tailing the leader. The last applied snapshot remains
// queryable; an attached store is not closed (its lifecycle belongs to
// the caller, or to the Fleet when the replica is registered in one).
// Close is idempotent and safe after Promote.
func (r *Replica) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	r.mu.Unlock()
	r.cancel()
	<-r.done
	return nil
}
