package iupdater

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"
)

// replicaGeometry is a small but non-trivial layout for replication
// tests: 4 links x 24 cells per strip = 96 fingerprint columns.
var replicaGeometry = Geometry{WidthM: 8, HeightM: 4, Links: 4, PerStrip: 24}

// replicaMatrix builds a deterministic fingerprint matrix for the test
// geometry, varied by seed so successive versions differ.
func replicaMatrix(seed int) Matrix {
	g := replicaGeometry
	rows := make([][]float64, g.Links)
	for i := range rows {
		rows[i] = make([]float64, g.NumCells())
		for j := range rows[i] {
			rows[i][j] = -40 - float64((i*31+j*7+seed*13)%200)/10
		}
	}
	m, err := MatrixFromRows(rows)
	if err != nil {
		panic(err)
	}
	return m
}

// perturbColumn returns m with a single fingerprint column nudged —
// small enough churn that the store persists the publish as a delta
// record.
func perturbColumn(m Matrix, col int, by float64) Matrix {
	out := m.Clone()
	rows := out.ToRows()
	for i := range rows {
		rows[i][col] += by
	}
	p, err := MatrixFromRows(rows)
	if err != nil {
		panic(err)
	}
	return p
}

func openReplicaLeader(t *testing.T) (*Deployment, *httptest.Server) {
	t.Helper()
	st, err := OpenStore(t.TempDir(), WithoutSync())
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDeployment(replicaMatrix(0), replicaGeometry, WithStore(st))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	srv := httptest.NewServer(d.ServeRecords())
	t.Cleanup(srv.Close)
	return d, srv
}

func fastReplica(t *testing.T, url string, opts ...ReplicaOption) *Replica {
	t.Helper()
	opts = append([]ReplicaOption{
		WithReplicaWait(150 * time.Millisecond),
		WithReplicaBackoff(2*time.Millisecond, 25*time.Millisecond),
	}, opts...)
	rep, err := OpenReplica(url, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rep.Close() })
	return rep
}

// TestReplicationEndToEnd is the leader/follower acceptance hammer
// (run under -race in CI): a follower tails a leader through a mixed
// full/delta version line and serves bit-identical snapshots at every
// version, survives a forced mid-line disconnect, and after Promote
// continues the same version line as a writer.
func TestReplicationEndToEnd(t *testing.T) {
	d, srv := openReplicaLeader(t)
	repStore, err := OpenStore(t.TempDir(), WithoutSync())
	if err != nil {
		t.Fatal(err)
	}
	defer repStore.Close()
	rep := fastReplica(t, srv.URL, WithReplicaStore(repStore))

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// checkSync publishes nothing itself: it waits for the follower to
	// reach the leader's version and demands bit-identity.
	checkSync := func(t *testing.T) {
		t.Helper()
		want := d.Snapshot()
		got, err := rep.WaitVersion(ctx, want.Version())
		if err != nil {
			t.Fatal(err)
		}
		if got.Version() != want.Version() {
			t.Fatalf("follower at v%d, leader at v%d", got.Version(), want.Version())
		}
		if !matricesEqual(got.Fingerprints(), want.Fingerprints()) {
			t.Fatalf("follower snapshot v%d is not bit-identical to the leader's", got.Version())
		}
		// Localization, not just the raw matrix, must agree: both sides
		// built their localizer from the same published bits.
		rss := []float64{-48.5, -51.25, -47, -52.125}
		lp, lerr := d.Locate(rss)
		fp, ferr := rep.Locate(rss)
		if lerr != nil || ferr != nil || lp != fp {
			t.Fatalf("Locate diverged: leader (%v, %v) follower (%v, %v)", lp, lerr, fp, ferr)
		}
	}
	checkSync(t)

	// A mixed version line: single-column perturbations persist as
	// delta records, wholesale installs as full records. The follower
	// is checked at every version, concurrently with the next publish
	// being prepared.
	cur := replicaMatrix(0)
	for v := 2; v <= 6; v++ {
		if v == 4 {
			cur = replicaMatrix(v) // wholesale change -> full record
		} else {
			cur = perturbColumn(cur, (v*11)%replicaGeometry.NumCells(), 0.5)
		}
		if _, err := d.Install(cur); err != nil {
			t.Fatal(err)
		}
		checkSync(t)
	}
	kinds := make(map[string]int)
	for _, rec := range d.Store().Records() {
		kinds[rec.Kind]++
	}
	if kinds["full"] < 2 || kinds["delta"] < 2 {
		t.Fatalf("version line was not mixed: %v", kinds)
	}

	// Forced disconnect: kill every follower connection mid-long-poll,
	// publish while the follower is down, and require it to resume.
	srv.CloseClientConnections()
	cur = perturbColumn(cur, 3, -0.25)
	if _, err := d.Install(cur); err != nil {
		t.Fatal(err)
	}
	checkSync(t)

	if lag := rep.Lag(); lag != 0 {
		t.Fatalf("caught-up lag %d", lag)
	}

	// Promote: the old leader stops, the follower takes over the line.
	takeover := rep.Version()
	srv.Close()
	promoted, err := rep.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if promoted.Version() != takeover {
		t.Fatalf("promoted at v%d, follower was at v%d", promoted.Version(), takeover)
	}
	// The handover was made durable in the replica's own store...
	if got := repStore.LatestVersion(); got != takeover {
		t.Fatalf("replica store seeded at v%d, want v%d", got, takeover)
	}
	fp, g, err := repStore.SnapshotAt(takeover)
	if err != nil || g != replicaGeometry || !matricesEqual(fp, d.Snapshot().Fingerprints()) {
		t.Fatalf("seeded takeover snapshot mismatch (err %v)", err)
	}
	// ...and the next publish continues the same monotone line.
	next, err := promoted.Install(perturbColumn(cur, 9, 1))
	if err != nil {
		t.Fatal(err)
	}
	if next.Version() != takeover+1 {
		t.Fatalf("post-promotion publish v%d, want v%d", next.Version(), takeover+1)
	}
	if got := repStore.LatestVersion(); got != takeover+1 {
		t.Fatalf("store after post-promotion publish at v%d", got)
	}
	if _, err := rep.Promote(); err == nil {
		t.Fatal("second Promote succeeded")
	}
	if status := rep.Status(); !status.Promoted || status.Version != takeover+1 {
		t.Fatalf("post-promotion status %+v", status)
	}
}

// TestReplicaSearchParity pins the follower/leader locate-index
// contract: follower snapshots build the same snapshot-time index from
// the replicated bits, so Locate is bit-identical to the leader at the
// same version — both when both ends are pinned to the exhaustive
// reference (WithExactSearch / WithReplicaExactSearch) and when the
// follower runs the default pruned tier, whose results are exact by
// construction.
func TestReplicaSearchParity(t *testing.T) {
	st, err := OpenStore(t.TempDir(), WithoutSync())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	d, err := NewDeployment(replicaMatrix(0), replicaGeometry, WithStore(st), WithExactSearch())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(d.ServeRecords())
	defer srv.Close()
	repExact := fastReplica(t, srv.URL, WithReplicaExactSearch())
	repPruned := fastReplica(t, srv.URL) // default tier: pruned, still exact results

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	queries := func() [][]float64 {
		rows := d.Snapshot().Fingerprints().ToRows()
		out := make([][]float64, 0, 12)
		for q := 0; q < 12; q++ {
			col := (q * 17) % replicaGeometry.NumCells()
			y := make([]float64, replicaGeometry.Links)
			for i := range y {
				y[i] = rows[i][col] + float64(q%5)*0.375 - 0.75
			}
			out = append(out, y)
		}
		return out
	}

	check := func(t *testing.T) {
		t.Helper()
		want := d.Snapshot()
		if _, err := repExact.WaitVersion(ctx, want.Version()); err != nil {
			t.Fatal(err)
		}
		if _, err := repPruned.WaitVersion(ctx, want.Version()); err != nil {
			t.Fatal(err)
		}
		for qi, y := range queries() {
			lp, err := d.Locate(y)
			if err != nil {
				t.Fatalf("query %d: leader: %v", qi, err)
			}
			lc, err := d.LocateCell(y)
			if err != nil {
				t.Fatalf("query %d: leader cell: %v", qi, err)
			}
			for name, rep := range map[string]*Replica{"exact": repExact, "pruned": repPruned} {
				fp, err := rep.Locate(y)
				if err != nil {
					t.Fatalf("query %d: %s follower: %v", qi, name, err)
				}
				if fp != lp {
					t.Fatalf("query %d: %s follower Locate %+v, leader %+v", qi, name, fp, lp)
				}
				fc, err := rep.Snapshot().LocateCell(y)
				if err != nil || fc != lc {
					t.Fatalf("query %d: %s follower cell (%d, %v), leader %d", qi, name, fc, err, lc)
				}
			}
		}
	}
	check(t)

	cur := replicaMatrix(0)
	for v := 2; v <= 4; v++ {
		cur = perturbColumn(cur, (v*13)%replicaGeometry.NumCells(), 0.5)
		if _, err := d.Install(cur); err != nil {
			t.Fatal(err)
		}
		check(t)
	}
	// The exhaustive leader really ran exhaustively: every search
	// evaluated all N columns (minus the few the pursuit had already
	// selected and therefore excluded).
	stats := d.Snapshot().SearchStats()
	if stats.Queries == 0 || stats.ColumnEvals < stats.Queries*uint64(replicaGeometry.NumCells()-3) {
		t.Fatalf("exact-search leader stats %+v, want ~%d column evals per query",
			stats, replicaGeometry.NumCells())
	}
}

// TestReplicaFleetSite registers a follower in a Fleet: the summary
// carries the replication status, and Close tears the tailer down.
func TestReplicaFleetSite(t *testing.T) {
	d, srv := openReplicaLeader(t)
	rep := fastReplica(t, srv.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := rep.WaitVersion(ctx, 1); err != nil {
		t.Fatal(err)
	}

	f := NewFleet()
	site, err := f.AddReplica("branch", rep)
	if err != nil {
		t.Fatal(err)
	}
	if site.Deployment() != nil || site.Replica() != rep {
		t.Fatal("replica site should expose the replica, not a deployment")
	}
	if _, err := f.AddReplica("branch", rep); err == nil {
		t.Fatal("duplicate AddReplica succeeded")
	}
	sums := f.Summaries()
	if len(sums) != 1 || sums[0].Replica == nil {
		t.Fatalf("summaries %+v", sums)
	}
	if sums[0].Replica.Source != srv.URL || sums[0].Version != 1 {
		t.Fatalf("replica summary %+v", sums[0].Replica)
	}
	if sums[0].Links != replicaGeometry.Links || sums[0].Cells != replicaGeometry.NumCells() {
		t.Fatalf("summary geometry %d/%d", sums[0].Links, sums[0].Cells)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// The fleet stopped the tailer; a leader publish no longer
	// propagates.
	if _, err := d.Install(replicaMatrix(9)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if v := rep.Version(); v != 1 {
		t.Fatalf("closed replica advanced to v%d", v)
	}
}

// TestPromoteUnderActiveStream stresses Promote against a tailer that
// is actively applying records: a publisher hammers the leader's
// version line while followers repeatedly connect, sync at least one
// version, and promote mid-stream. Every attempt must complete within
// the deadline — a hang here is the Promote-vs-apply interleaving this
// test exists to pin down.
func TestPromoteUnderActiveStream(t *testing.T) {
	d, srv := openReplicaLeader(t)

	stop := make(chan struct{})
	pubDone := make(chan struct{})
	go func() {
		defer close(pubDone)
		for i := 1; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := d.Install(replicaMatrix(i)); err != nil {
				return
			}
		}
	}()
	defer func() { close(stop); <-pubDone }()

	// Bound the whole stress run, not just each attempt: under -race on
	// a loaded machine 40 attempts can outlast the package timeout.
	deadline := time.Now().Add(30 * time.Second)
	for attempt := 0; attempt < 40 && time.Now().Before(deadline); attempt++ {
		rep, err := OpenReplica(srv.URL,
			WithReplicaWait(100*time.Millisecond),
			WithReplicaBackoff(time.Millisecond, 10*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		for rep.Version() == 0 {
			time.Sleep(200 * time.Microsecond)
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			rep.Promote()
		}()
		select {
		case <-done:
			rep.Close()
		case <-time.After(10 * time.Second):
			t.Fatalf("attempt %d: Promote deadlocked while the tailer was applying records", attempt)
		}
	}
}
