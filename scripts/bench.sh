#!/usr/bin/env bash
# Benchmark smoke for the reconstruction and monitoring hot paths.
#
# Runs the two reconstruction benchmarks that gate solver performance
# (Fig 16 constraint ablation and the initialization ablation) plus the
# drift-monitor observe benchmark (budget: <= 2 allocs per observed
# query, measured 0) with -benchmem, prints the result, and appends one
# JSON line per benchmark to BENCH_recon.json so successive PRs leave a
# comparable trajectory:
#
#	./scripts/bench.sh              # 1 iteration (smoke)
#	BENCHTIME=3x ./scripts/bench.sh # more stable timings
#
# Extra arguments are passed to `go test` (e.g. -cpu 1,4).
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-1x}"
out="$(go test -run '^$' -bench 'Fig16ConstraintAblation|AblationInitialization|MonitorObserve' \
	-benchtime "$benchtime" -benchmem "$@")"
echo "$out"

commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
stamp="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
echo "$out" | awk -v commit="$commit" -v stamp="$stamp" '
/^Benchmark/ {
	name = $1; ns = "null"; bytes = "null"; allocs = "null"
	sub(/-[0-9]+$/, "", name) # strip the GOMAXPROCS suffix: stable keys across hosts
	for (i = 2; i <= NF; i++) {
		if ($i == "ns/op") ns = $(i-1)
		if ($i == "B/op") bytes = $(i-1)
		if ($i == "allocs/op") allocs = $(i-1)
	}
	printf("{\"date\":\"%s\",\"commit\":\"%s\",\"bench\":\"%s\",\"ns_op\":%s,\"b_op\":%s,\"allocs_op\":%s}\n",
		stamp, commit, name, ns, bytes, allocs)
}' >>BENCH_recon.json
echo "appended results to BENCH_recon.json"
