#!/usr/bin/env bash
# Benchmark smoke for the reconstruction, monitoring and persistence hot
# paths.
#
# Runs the two reconstruction benchmarks that gate solver performance
# (Fig 16 constraint ablation and the initialization ablation), the
# drift-monitor observe benchmark, the snapshot-store append+load and
# delta-append benchmarks, the locate-index query benchmarks (10x
# and 100x office-sized grids across search tiers, plus the KNN top-k
# scan), and the fleet LRU query benchmarks (hot resident path and the
# cold park/rehydrate cycle) with -benchmem, prints the result, and
# appends one JSON line
# per benchmark to BENCH_recon.json so successive PRs leave a comparable
# trajectory:
#
#	./scripts/bench.sh              # 1 iteration (smoke)
#	BENCHTIME=3x ./scripts/bench.sh # more stable timings
#
# Extra arguments are passed to `go test` (e.g. -cpu 1,4).
#
# The run FAILS (non-zero exit) when any benchmark's allocs/op regresses
# past its documented budget:
#
#	Fig16ConstraintAblation  <= 100000  (PR-2 kernel layer: ~16k measured;
#	                                     the pre-kernel baseline was 1.94M)
#	AblationInitialization   <=  20000  (~3.3k measured)
#	MonitorObserve           <=      2  (0 measured; also enforced by
#	                                     TestMonitorObserveAllocBudget)
#	MonitorObserveAttribution <=     2  (0 measured: observe + per-link
#	                                     EWMA fold + top-k readout)
#	StoreAppendLoad          <=     12  (2 measured: one record buffer,
#	                                     one payload read buffer)
#	StoreAppendDelta         <=      8  (~1-3 measured: the framed delta
#	                                     record + diff scratch; cache and
#	                                     index growth amortize)
#	ReplicaApply             <=      4  (0 measured: the follower's
#	                                     validate-and-apply path reuses
#	                                     its payload buffer steady-state)
#	LocateLargeGrid/*        <=      2  (0 measured: pooled per-query
#	                                     scratch keeps every search tier
#	                                     allocation-free; the col_evals/op
#	                                     metric tracks the sub-linear
#	                                     candidate-search claim)
#	KNNNeighbors             <=      2  (0 measured: bounded top-k heap
#	                                     into caller-provided slices)
#	LocateTraced/unsampled   <=      2  (0 measured: pooled span scratch
#	                                     keeps tracing off the allocator
#	                                     when a trace is not retained)
#	LocateTraced/sampled     <=     16  (~8 measured: the copy-on-retain
#	                                     of the span tree into the ring
#	                                     when every trace is kept)
#	FleetHotQuery            <=      2  (0 measured: a resident site's
#	                                     Hydrate is one atomic load plus
#	                                     an LRU touch, and the Locate
#	                                     scratch is pooled)
#	FleetColdQuery           <=    200  (~58 measured: every op pays a
#	                                     full park/rehydrate cycle —
#	                                     store read, delta resolution,
#	                                     snapshot + index build)
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-1x}"
out="$(go test -run '^$' -bench 'Fig16ConstraintAblation|AblationInitialization|MonitorObserve|StoreAppendLoad|StoreAppendDelta|ReplicaApply|LocateLargeGrid|KNNNeighbors|LocateTraced|FleetHotQuery|FleetColdQuery' \
	-benchtime "$benchtime" -benchmem "$@" . ./internal/store ./internal/loc)"
echo "$out"

commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
stamp="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
echo "$out" | awk -v commit="$commit" -v stamp="$stamp" '
/^Benchmark/ {
	name = $1; ns = "null"; bytes = "null"; allocs = "null"
	sub(/-[0-9]+$/, "", name) # strip the GOMAXPROCS suffix: stable keys across hosts
	for (i = 2; i <= NF; i++) {
		if ($i == "ns/op") ns = $(i-1)
		if ($i == "B/op") bytes = $(i-1)
		if ($i == "allocs/op") allocs = $(i-1)
	}
	printf("{\"date\":\"%s\",\"commit\":\"%s\",\"bench\":\"%s\",\"ns_op\":%s,\"b_op\":%s,\"allocs_op\":%s}\n",
		stamp, commit, name, ns, bytes, allocs)
}' >>BENCH_recon.json
echo "appended results to BENCH_recon.json"

# Allocation-budget gate: a regression past a documented budget fails
# the smoke loudly instead of only leaving a worse trajectory line.
echo "$out" | awk '
BEGIN {
	budget["BenchmarkFig16ConstraintAblation"] = 100000
	budget["BenchmarkAblationInitialization"] = 20000
	budget["BenchmarkMonitorObserve"] = 2
	budget["BenchmarkMonitorObserveAttribution"] = 2
	budget["BenchmarkStoreAppendLoad"] = 12
	budget["BenchmarkStoreAppendDelta"] = 8
	budget["BenchmarkReplicaApply"] = 4
	budget["BenchmarkLocateLargeGrid/10x"] = 2
	budget["BenchmarkLocateLargeGrid/100x"] = 2
	budget["BenchmarkLocateLargeGrid/100x-sharded"] = 2
	budget["BenchmarkLocateLargeGrid/100x-exact"] = 2
	budget["BenchmarkKNNNeighbors"] = 2
	budget["BenchmarkLocateTraced/unsampled"] = 2
	budget["BenchmarkLocateTraced/sampled"] = 16
	budget["BenchmarkFleetHotQuery"] = 2
	budget["BenchmarkFleetColdQuery"] = 200
	failures = 0
}
/^Benchmark/ {
	name = $1; allocs = -1
	sub(/-[0-9]+$/, "", name)
	for (i = 2; i <= NF; i++) if ($i == "allocs/op") allocs = $(i-1)
	if (name in budget) {
		seen[name] = 1
		if (allocs < 0) {
			printf("FAIL: %s reported no allocs/op (ran without -benchmem?)\n", name)
			failures++
		} else if (allocs + 0 > budget[name]) {
			printf("FAIL: %s allocs/op %d exceeds the documented budget %d\n", name, allocs, budget[name])
			failures++
		}
	}
}
END {
	for (name in budget) if (!(name in seen)) {
		printf("FAIL: budgeted benchmark %s did not run\n", name)
		failures++
	}
	if (failures > 0) exit 1
	print "allocation budgets OK"
}'
