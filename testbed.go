package iupdater

import (
	"time"

	"iupdater/internal/geom"
	"iupdater/internal/testbed"
)

// Environment is a simulated deployment preset. Obtain one from Office,
// Library or Hall.
type Environment struct {
	inner testbed.Environment
}

// Name returns the environment's name.
func (e Environment) Name() string { return e.inner.Name }

// Geometry returns the deployment geometry.
func (e Environment) Geometry() Geometry {
	g := e.inner.Grid
	return Geometry{WidthM: g.Width, HeightM: g.Height, Links: g.Links, PerStrip: g.PerStrip}
}

// Office returns the paper's office testbed: 9 m x 12 m, medium
// multipath, 8 links, 96 grid cells.
func Office() Environment { return Environment{inner: testbed.Office()} }

// Library returns the paper's library testbed: 8 m x 11 m, high
// multipath, 6 links, 72 grid cells.
func Library() Environment { return Environment{inner: testbed.Library()} }

// Hall returns the paper's empty-hall testbed: 10 m x 10 m, low
// multipath, 8 links, 120 grid cells.
func Hall() Environment { return Environment{inner: testbed.Hall()} }

// LaborCost reports the human cost of a survey.
type LaborCost struct {
	// Locations visited with the target present.
	Locations int
	// Duration of the human labor.
	Duration time.Duration
}

// Testbed is a simulated deployment: radio channel, human target, drift
// and survey campaigns, deterministic for a given seed. It is the
// stand-in for the paper's physical testbeds.
type Testbed struct {
	s   *testbed.Surveyor
	env testbed.Environment
}

// NewTestbed builds the simulated deployment.
func NewTestbed(env Environment, seed uint64) *Testbed {
	return &Testbed{s: testbed.NewSurveyor(env.inner, seed), env: env.inner}
}

// Links returns the number of links M.
func (t *Testbed) Links() int { return t.env.NumLinks() }

// PerStrip returns the cells per strip K.
func (t *Testbed) PerStrip() int { return t.env.Grid.PerStrip }

// NumCells returns N = M*K.
func (t *Testbed) NumCells() int { return t.env.NumCells() }

// Geometry returns the deployment geometry for building a Deployment.
func (t *Testbed) Geometry() Geometry {
	g := t.env.Grid
	return Geometry{WidthM: g.Width, HeightM: g.Height, Links: g.Links, PerStrip: g.PerStrip}
}

// SurveyMatrix performs a full human site survey at the given elapsed
// time: the target visits every grid cell while every link collects
// samplesPerLocation readings. This is the traditional (expensive) way to
// build or refresh the database.
func (t *Testbed) SurveyMatrix(at time.Duration, samplesPerLocation int) (Matrix, LaborCost) {
	fp, labor := t.s.FullSurvey(at.Seconds(), samplesPerLocation)
	return matrixFromDense(fp.X), LaborCost{
		Locations: labor.Locations,
		Duration:  time.Duration(labor.Seconds * float64(time.Second)),
	}
}

// Deploy surveys the deployment at the given elapsed time and builds a
// Deployment serving the surveyed database, returning the survey's labor
// cost alongside.
func (t *Testbed) Deploy(at time.Duration, samplesPerLocation int, opts ...Option) (*Deployment, LaborCost, error) {
	m, labor := t.SurveyMatrix(at, samplesPerLocation)
	d, err := NewDeployment(m, t.Geometry(), opts...)
	return d, labor, err
}

// NoDecreaseMatrix measures the no-decrease entries at the given time
// without the target — the zero-labor input to Deployment.Update.
func (t *Testbed) NoDecreaseMatrix(at time.Duration) Matrix {
	return matrixFromDense(t.s.NoDecreaseScan(at.Seconds(), testbed.IUpdaterSamples))
}

// Mask returns the no-decrease index: Known(i, j) is true when link i
// does not react to a target at cell j.
func (t *Testbed) Mask() Mask {
	return maskFromFingerprint(t.s.Mask())
}

// ReferenceMatrix measures fresh full columns at the given locations (the
// reference survey) with the target present — the labor-cost input to
// Deployment.Update — plus the labor accounting for those locations.
func (t *Testbed) ReferenceMatrix(at time.Duration, locations []int) (Matrix, LaborCost) {
	xr, labor := t.s.ReferenceSurvey(at.Seconds(), locations, testbed.IUpdaterSamples)
	return matrixFromDense(xr), LaborCost{
		Locations: labor.Locations,
		Duration:  time.Duration(labor.Seconds * float64(time.Second)),
	}
}

// Sampler returns a ReferenceSampler that takes the fresh measurements
// an automatic update needs from this simulated deployment, at the
// elapsed time reported by now — the testbed standing in for the radio
// frontend of a Monitor. The underlying channel simulator is not safe
// for concurrent use: callers must serialize the returned sampler
// against all other measurements on this Testbed (have now both report
// the clock and take whatever lock guards it, as cmd/iupdater serve
// does, or run the Monitor with WithSynchronousUpdates on a single
// goroutine).
func (t *Testbed) Sampler(now func() time.Duration) ReferenceSampler {
	return SamplerFunc(func(refs []int) (UpdateInputs, error) {
		at := now()
		xr, _ := t.ReferenceMatrix(at, refs)
		return UpdateInputs{
			NoDecrease: t.NoDecreaseMatrix(at),
			Known:      t.Mask(),
			References: xr,
		}, nil
	})
}

// TrueMatrix returns the noise-free fingerprint matrix at the given time:
// the ideal database a perfect survey would record. Useful as a
// ground-truth baseline in evaluations.
func (t *Testbed) TrueMatrix(at time.Duration) Matrix {
	return matrixFromDense(t.s.TrueFingerprint(at.Seconds()).X)
}

// MeasureOnline returns one online RSS vector for a target standing at
// (x, y) meters at the given time — the input to Deployment.Locate.
func (t *Testbed) MeasureOnline(x, y float64, at time.Duration) []float64 {
	return t.s.MeasureOnline(geom.Point{X: x, Y: y}, at.Seconds(), testbed.IUpdaterSamples)
}

// MeasureOnlineMulti returns one online RSS vector with several targets
// present simultaneously — the input to Deployment.LocateMultiple.
func (t *Testbed) MeasureOnlineMulti(positions [][2]float64, at time.Duration) []float64 {
	pts := make([]geom.Point, len(positions))
	for i, p := range positions {
		pts[i] = geom.Point{X: p[0], Y: p[1]}
	}
	return t.s.MeasureOnlineMulti(pts, at.Seconds(), testbed.IUpdaterSamples)
}

// CellCenter returns the center of a grid cell in meters.
func (t *Testbed) CellCenter(cell int) (x, y float64) {
	p := t.env.Grid.Center(cell)
	return p.X, p.Y
}

// Survey is SurveyMatrix with the legacy row-slice return type.
//
// Deprecated: use SurveyMatrix.
func (t *Testbed) Survey(at time.Duration, samplesPerLocation int) ([][]float64, LaborCost) {
	m, labor := t.SurveyMatrix(at, samplesPerLocation)
	return m.ToRows(), labor
}

// NoDecreaseScan is NoDecreaseMatrix with the legacy row-slice return
// type.
//
// Deprecated: use NoDecreaseMatrix.
func (t *Testbed) NoDecreaseScan(at time.Duration) [][]float64 {
	return t.NoDecreaseMatrix(at).ToRows()
}

// KnownMask is Mask with the legacy row-slice return type.
//
// Deprecated: use Mask.
func (t *Testbed) KnownMask() [][]bool {
	return t.Mask().ToRows()
}

// MeasureColumns is ReferenceMatrix with the legacy row-slice return type
// and without the labor accounting.
//
// Deprecated: use ReferenceMatrix.
func (t *Testbed) MeasureColumns(at time.Duration, locations []int) [][]float64 {
	m, _ := t.ReferenceMatrix(at, locations)
	return m.ToRows()
}

// MeasureColumnsLabor is ReferenceMatrix with the legacy row-slice return
// type.
//
// Deprecated: use ReferenceMatrix.
func (t *Testbed) MeasureColumnsLabor(at time.Duration, locations []int) ([][]float64, LaborCost) {
	m, labor := t.ReferenceMatrix(at, locations)
	return m.ToRows(), labor
}

// TrueFingerprints is TrueMatrix with the legacy row-slice return type.
//
// Deprecated: use TrueMatrix.
func (t *Testbed) TrueFingerprints(at time.Duration) [][]float64 {
	return t.TrueMatrix(at).ToRows()
}
