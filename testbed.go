package iupdater

import (
	"time"

	"iupdater/internal/geom"
	"iupdater/internal/testbed"
)

// Environment is a simulated deployment preset. Obtain one from Office,
// Library or Hall.
type Environment struct {
	inner testbed.Environment
}

// Name returns the environment's name.
func (e Environment) Name() string { return e.inner.Name }

// Geometry returns the deployment geometry.
func (e Environment) Geometry() Geometry {
	g := e.inner.Grid
	return Geometry{WidthM: g.Width, HeightM: g.Height, Links: g.Links, PerStrip: g.PerStrip}
}

// Office returns the paper's office testbed: 9 m x 12 m, medium
// multipath, 8 links, 96 grid cells.
func Office() Environment { return Environment{inner: testbed.Office()} }

// Library returns the paper's library testbed: 8 m x 11 m, high
// multipath, 6 links, 72 grid cells.
func Library() Environment { return Environment{inner: testbed.Library()} }

// Hall returns the paper's empty-hall testbed: 10 m x 10 m, low
// multipath, 8 links, 120 grid cells.
func Hall() Environment { return Environment{inner: testbed.Hall()} }

// LaborCost reports the human cost of a survey.
type LaborCost struct {
	// Locations visited with the target present.
	Locations int
	// Duration of the human labor.
	Duration time.Duration
}

// Testbed is a simulated deployment: radio channel, human target, drift
// and survey campaigns, deterministic for a given seed. It is the
// stand-in for the paper's physical testbeds.
type Testbed struct {
	s   *testbed.Surveyor
	env testbed.Environment
}

// NewTestbed builds the simulated deployment.
func NewTestbed(env Environment, seed uint64) *Testbed {
	return &Testbed{s: testbed.NewSurveyor(env.inner, seed), env: env.inner}
}

// Links returns the number of links M.
func (t *Testbed) Links() int { return t.env.NumLinks() }

// PerStrip returns the cells per strip K.
func (t *Testbed) PerStrip() int { return t.env.Grid.PerStrip }

// NumCells returns N = M*K.
func (t *Testbed) NumCells() int { return t.env.NumCells() }

// Geometry returns the deployment geometry for building a Localizer.
func (t *Testbed) Geometry() Geometry {
	g := t.env.Grid
	return Geometry{WidthM: g.Width, HeightM: g.Height, Links: g.Links, PerStrip: g.PerStrip}
}

// Survey performs a full human site survey at the given elapsed time: the
// target visits every grid cell while every link collects
// samplesPerLocation readings. This is the traditional (expensive) way to
// build or refresh the database.
func (t *Testbed) Survey(at time.Duration, samplesPerLocation int) ([][]float64, LaborCost) {
	fp, labor := t.s.FullSurvey(at.Seconds(), samplesPerLocation)
	return fromDense(fp.X), LaborCost{
		Locations: labor.Locations,
		Duration:  time.Duration(labor.Seconds * float64(time.Second)),
	}
}

// NoDecreaseScan measures the no-decrease entries at the given time
// without the target — the zero-labor input to Pipeline.Update.
func (t *Testbed) NoDecreaseScan(at time.Duration) [][]float64 {
	return fromDense(t.s.NoDecreaseScan(at.Seconds(), testbed.IUpdaterSamples))
}

// KnownMask returns the no-decrease index: known[i][j] is true when link
// i does not react to a target at cell j.
func (t *Testbed) KnownMask() [][]bool {
	mask := t.s.Mask()
	out := make([][]bool, t.Links())
	for i := range out {
		out[i] = make([]bool, t.NumCells())
		for j := range out[i] {
			out[i][j] = mask.Known(i, j)
		}
	}
	return out
}

// MeasureColumns measures fresh full columns at the given locations (the
// reference survey), with the target present: the labor-cost input to
// Pipeline.Update. The returned labor covers only these locations.
func (t *Testbed) MeasureColumns(at time.Duration, locations []int) [][]float64 {
	xr, _ := t.s.ReferenceSurvey(at.Seconds(), locations, testbed.IUpdaterSamples)
	return fromDense(xr)
}

// MeasureColumnsLabor is MeasureColumns plus the labor accounting.
func (t *Testbed) MeasureColumnsLabor(at time.Duration, locations []int) ([][]float64, LaborCost) {
	xr, labor := t.s.ReferenceSurvey(at.Seconds(), locations, testbed.IUpdaterSamples)
	return fromDense(xr), LaborCost{
		Locations: labor.Locations,
		Duration:  time.Duration(labor.Seconds * float64(time.Second)),
	}
}

// MeasureOnline returns one online RSS vector for a target standing at
// (x, y) meters at the given time — the input to Localizer.Locate.
func (t *Testbed) MeasureOnline(x, y float64, at time.Duration) []float64 {
	return t.s.MeasureOnline(geom.Point{X: x, Y: y}, at.Seconds(), testbed.IUpdaterSamples)
}

// MeasureOnlineMulti returns one online RSS vector with several targets
// present simultaneously — the input to Localizer.LocateMultiple.
func (t *Testbed) MeasureOnlineMulti(positions [][2]float64, at time.Duration) []float64 {
	pts := make([]geom.Point, len(positions))
	for i, p := range positions {
		pts[i] = geom.Point{X: p[0], Y: p[1]}
	}
	return t.s.MeasureOnlineMulti(pts, at.Seconds(), testbed.IUpdaterSamples)
}

// TrueFingerprints returns the noise-free fingerprint matrix at the given
// time: the ideal database a perfect survey would record. Useful as a
// ground-truth baseline in evaluations.
func (t *Testbed) TrueFingerprints(at time.Duration) [][]float64 {
	return fromDense(t.s.TrueFingerprint(at.Seconds()).X)
}

// CellCenter returns the center of a grid cell in meters.
func (t *Testbed) CellCenter(cell int) (x, y float64) {
	p := t.env.Grid.Center(cell)
	return p.X, p.Y
}
