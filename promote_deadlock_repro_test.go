package iupdater

import (
	"net/http/httptest"
	"testing"
	"time"
)

func TestPromoteUnderActiveStream(t *testing.T) {
	g := Geometry{WidthM: 64, HeightM: 32, Links: 32, PerStrip: 64}
	mk := func(seed int) Matrix {
		rows := make([][]float64, g.Links)
		for i := range rows {
			rows[i] = make([]float64, g.NumCells())
			for j := range rows[i] {
				rows[i][j] = -40 - float64((i*31+j*7+seed*13)%200)/10
			}
		}
		m, err := MatrixFromRows(rows)
		if err != nil {
			panic(err)
		}
		return m
	}
	st, err := OpenStore(t.TempDir(), WithoutSync())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	d, err := NewDeployment(mk(0), g, WithStore(st))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(d.ServeRecords())
	defer srv.Close()

	stop := make(chan struct{})
	pubDone := make(chan struct{})
	go func() {
		defer close(pubDone)
		for i := 1; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := d.Install(mk(i)); err != nil {
				return
			}
		}
	}()
	defer func() { close(stop); <-pubDone }()

	for attempt := 0; attempt < 40; attempt++ {
		rep, err := OpenReplica(srv.URL,
			WithReplicaWait(100*time.Millisecond),
			WithReplicaBackoff(time.Millisecond, 10*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		for rep.Version() == 0 {
			time.Sleep(200 * time.Microsecond)
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			rep.Promote()
		}()
		select {
		case <-done:
			rep.Close()
		case <-time.After(10 * time.Second):
			t.Fatalf("attempt %d: Promote deadlocked while the tailer was applying records", attempt)
		}
	}
}
