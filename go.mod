module iupdater

go 1.24
