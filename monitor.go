package iupdater

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"iupdater/internal/drift"
	"iupdater/internal/trace"
)

// DriftDetector is a streaming change detector over the staleness
// residual sequence, pluggable into a Monitor via WithDriftDetector.
// The built-in implementations (NewMeanShiftDetector,
// NewPageHinkleyDetector) are self-calibrating: they learn the
// stationary residual floor from the first observations after
// construction or Reset. Implementations need not be safe for concurrent
// use; the Monitor serializes all calls.
//
// A detector may additionally implement
//
//	Baseline() (mu, sigma float64, ok bool)
//	SetBaseline(mu, sigma float64)
//
// (as the built-ins do) to make its calibrated floor portable across
// process restarts: a Monitor attached to a Deployment with a durable
// Store persists the floor and re-installs it on the next start, so a
// restarted monitor resumes detection instead of re-running the
// calibration window.
type DriftDetector interface {
	// Observe consumes one residual (dB) and reports whether drift is
	// flagged at this observation.
	Observe(residual float64) bool
	// Score returns the current drift statistic normalized by the
	// detection threshold: ~0 at the calibrated floor, >= 1 while
	// flagging, 0 during calibration.
	Score() float64
	// Reset discards all state including the calibrated floor; the
	// detector re-calibrates on the observations that follow.
	Reset()
}

// NewMeanShiftDetector returns the default sliding-window mean-shift
// detector: drift is flagged when the mean of the last window residuals
// exceeds the calibrated floor by k floor-sigmas. baseline is the number
// of calibration observations, window the sliding-window length; zero or
// negative arguments select the defaults (200, 64, 1.5). It reacts within
// about one window to the abrupt persistent shifts an environment change
// produces.
func NewMeanShiftDetector(baseline, window int, k float64) DriftDetector {
	return drift.NewMeanShift(drift.MeanShiftConfig{Baseline: baseline, Window: window, K: k})
}

// NewPageHinkleyDetector returns a Page-Hinkley (one-sided CUSUM)
// detector: the cumulative excess of the residual over the calibrated
// floor (minus a drift allowance of delta floor-sigmas) is compared
// against lambda floor-sigmas. baseline is the number of calibration
// observations; zero or negative arguments select the defaults (200,
// 0.5, 40). It detects slow ramps that never push a single window over
// the mean-shift threshold.
func NewPageHinkleyDetector(baseline int, delta, lambda float64) DriftDetector {
	return drift.NewPageHinkley(drift.PageHinkleyConfig{Baseline: baseline, Delta: delta, Lambda: lambda})
}

// UpdateInputs carries one set of fresh measurements for
// Deployment.Update: the zero-labor no-decrease matrix with its mask,
// and the reference-location columns.
type UpdateInputs struct {
	NoDecrease Matrix
	Known      Mask
	References Matrix
}

// ReferenceSampler collects the measurements an automatic update needs,
// given the reference locations the Deployment wants surveyed. The
// Testbed implements it for simulation (Testbed.Sampler); real
// deployments feed measured matrices through a MatrixSampler or a
// SamplerFunc bridging their radio frontend. SampleReferences is called
// from the Monitor's update goroutine (or inline under
// WithSynchronousUpdates), never concurrently with itself.
type ReferenceSampler interface {
	SampleReferences(refs []int) (UpdateInputs, error)
}

// SamplerFunc adapts a function to the ReferenceSampler interface.
type SamplerFunc func(refs []int) (UpdateInputs, error)

// SampleReferences implements ReferenceSampler.
func (f SamplerFunc) SampleReferences(refs []int) (UpdateInputs, error) { return f(refs) }

// MatrixSampler is a ReferenceSampler for real deployments: the caller
// pushes the latest raw measurement matrices with Store (e.g. whenever
// the radio frontend completes a no-decrease scan and a reference
// survey), and the Monitor picks them up when drift triggers an update.
// Safe for concurrent use. The zero value is ready; until the first
// Store, SampleReferences fails and the triggered update is recorded as
// an update error.
type MatrixSampler struct {
	mu sync.Mutex
	in UpdateInputs
	ok bool
}

// Store publishes the latest measured update inputs.
func (s *MatrixSampler) Store(in UpdateInputs) {
	s.mu.Lock()
	s.in, s.ok = in, true
	s.mu.Unlock()
}

// SampleReferences implements ReferenceSampler, returning the most
// recently stored measurements.
func (s *MatrixSampler) SampleReferences(refs []int) (UpdateInputs, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ok {
		return UpdateInputs{}, errors.New("iupdater: no measurements stored in MatrixSampler")
	}
	if c := s.in.References.Cols(); c != len(refs) {
		return UpdateInputs{}, fmt.Errorf("iupdater: stored reference matrix has %d columns, deployment wants %d", c, len(refs))
	}
	return s.in, nil
}

// MonitorOption configures a Monitor.
type MonitorOption func(*monitorConfig)

type monitorConfig struct {
	detector   DriftDetector
	hysteresis int
	cooldown   int
	adaptive   bool
	acFloor    int
	acCeil     int
	acSens     float64
	topK       int
	sync       bool
}

// WithDriftDetector replaces the default mean-shift detector. The
// Monitor takes ownership: the detector must not be observed elsewhere.
func WithDriftDetector(det DriftDetector) MonitorOption {
	return func(c *monitorConfig) { c.detector = det }
}

// WithDriftHysteresis sets how many consecutive flagged observations are
// required before a detection is declared (default 4): one-off residual
// spikes from interference bursts or a passer-by never trigger a survey.
func WithDriftHysteresis(n int) MonitorOption {
	return func(c *monitorConfig) { c.hysteresis = n }
}

// WithUpdateCooldown fixes the minimum number of observed queries
// between auto-triggered updates to a constant, disabling the default
// residual-driven adaptive cooldown (see WithAdaptiveCooldown).
// Detections during the cooldown are counted and suppressed,
// rate-limiting the reference surveys (each one costs real human labor)
// no matter how noisy the detector is.
func WithUpdateCooldown(queries int) MonitorOption {
	return func(c *monitorConfig) {
		c.cooldown = queries
		c.adaptive = false
	}
}

// Adaptive-cooldown defaults: the ceiling matches the historical fixed
// cooldown, the floor still spans several detector windows, and the
// sensitivity halves the cooldown four floor-sigmas above the
// calibrated residual floor.
const (
	defaultCooldownFloor   = 100
	defaultCooldownCeiling = 1000
	defaultCooldownSens    = 0.25
)

// WithAdaptiveCooldown tunes the residual-driven adaptive cooldown
// (the default policy): when an update triggers, the next cooldown is
//
//	ceiling / (1 + sensitivity * excess)
//
// clamped to [floor, ceiling], where excess is how many calibrated
// floor-sigmas the triggering residual sits above the detector's
// baseline mean. A mild drift keeps the full ceiling between surveys; a
// violent one (residual many sigmas out, localization actively
// degrading) shortens the wait toward the floor so a follow-up update
// is not blocked behind a rate limit sized for noise. Detectors without
// a calibrated baseline (see DriftDetector) always wait the ceiling.
// Non-positive arguments select the defaults (100, 1000, 0.25);
// WithUpdateCooldown switches back to the fixed policy.
func WithAdaptiveCooldown(floor, ceiling int, sensitivity float64) MonitorOption {
	return func(c *monitorConfig) {
		c.adaptive = true
		if floor > 0 {
			c.acFloor = floor
		}
		if ceiling > 0 {
			c.acCeil = ceiling
		}
		if sensitivity > 0 {
			c.acSens = sensitivity
		}
	}
}

// WithDriftAttributionTopK sets how many worst-offending links
// MonitorStats.TopLinks reports (default 3, capped at the deployment's
// link count).
func WithDriftAttributionTopK(k int) MonitorOption {
	return func(c *monitorConfig) { c.topK = k }
}

// WithSynchronousUpdates makes a triggered update run inline in the
// Observe call that detected the drift, instead of on a background
// goroutine. Evaluation and tests use it for deterministic
// query-counted schedules; production monitors should keep the default
// asynchronous mode so localization traffic is never blocked behind a
// reconstruction.
func WithSynchronousUpdates() MonitorOption {
	return func(c *monitorConfig) { c.sync = true }
}

// LinkDrift attributes drift to one RF link: the exponentially
// weighted moving average of the link's absolute shape error (dB)
// between centered online queries and their best-matching centered
// fingerprint columns. One link dominating while the rest stay flat
// suggests a hardware fault on that link; a broad rise across links is
// environment drift.
type LinkDrift struct {
	Link  int     `json:"link"`
	ErrDB float64 `json:"err_db"`
}

// MonitorStats is a point-in-time snapshot of a Monitor's counters.
type MonitorStats struct {
	// Queries is the number of observations fed to the monitor.
	Queries uint64
	// Residual is the staleness residual (dB) of the last observation.
	Residual float64
	// Score is the detector's current normalized drift statistic
	// (>= 1 while the detector is flagging).
	Score float64
	// Detections counts declared drift episodes (hysteresis satisfied).
	Detections uint64
	// UpdatesTriggered counts auto-updates started.
	UpdatesTriggered uint64
	// UpdatesCompleted counts auto-updates that published a snapshot.
	UpdatesCompleted uint64
	// UpdateErrors counts auto-updates that failed (sampler or solver).
	UpdateErrors uint64
	// Suppressed counts detections not acted on because of the cooldown
	// or a missing sampler.
	Suppressed uint64
	// CooldownRemaining is the number of queries left before another
	// update may trigger.
	CooldownRemaining int
	// TopLinks are the worst-offending links by attributed drift error,
	// descending (empty until the first observation after a snapshot
	// change). See LinkDrift.
	TopLinks []LinkDrift
	// UpdateInFlight reports an asynchronous update still running.
	UpdateInFlight bool
	// SnapshotVersion is the deployment's latest published version.
	SnapshotVersion uint64
	// LastError is the message of the most recent update error, if any.
	LastError string
	// LastUpdateTraceID is the trace ID of the most recent
	// auto-triggered update, when the deployment has a tracer attached
	// (auto-update traces are always retained — retrieve the full
	// detect→sample→reconstruct→persist→swap span tree at /traces/{id}).
	LastUpdateTraceID string
}

// Monitor closes the paper's detect -> measure -> update loop around a
// Deployment: it watches live localization traffic for staleness, and
// when the environment has drifted it collects fresh reference
// measurements through a ReferenceSampler and refreshes the database
// with Deployment.Update — no human in the loop deciding when.
//
// Feed every online RSS vector the deployment serves to Observe. Each
// observation is scored against the current snapshot (the residual: RMS
// distance in dB between the mean-centered query and its best-matching
// mean-centered fingerprint column) and streamed into the drift
// detector. A detection — the detector flagging for a configurable
// number of consecutive queries — triggers Deployment.Update on a
// background goroutine, rate-limited by a query-counted cooldown.
// Snapshot changes from any writer (the monitor itself, or a manual
// Update/Install elsewhere) re-baseline the residual and re-calibrate
// the detector automatically.
//
// Observe is safe for concurrent use and allocation-free in steady
// state (the monitor serializes internally; the residual scan is O(M*N)
// against pre-centered columns). Construct with NewMonitor; call Close
// when done to wait out any in-flight update.
type Monitor struct {
	d       *Deployment
	sampler ReferenceSampler
	cfg     monitorConfig
	bd      baselineDetector // cfg.detector's persistence hooks, nil if absent

	mu         sync.Mutex
	res        *drift.Residualizer
	resVersion uint64
	scratch    []float64
	perLink    []float64
	attr       *drift.Attribution
	consec     int
	cooldown   int
	updating   bool
	closed     bool
	stats      MonitorStats
	// episodeStart is when the current drift episode's first flagged
	// observation arrived; an auto-update trace starts here, so its
	// detect span covers the whole hysteresis window.
	episodeStart time.Time

	// restored carries a persisted calibrated floor until the first
	// Observe decides whether it still applies (same snapshot version).
	restored      monitorState
	restoredOK    bool
	baselineSaved bool

	wg sync.WaitGroup
}

// baselineDetector is the optional persistence interface of a
// DriftDetector (see the DriftDetector docs).
type baselineDetector interface {
	Baseline() (mu, sigma float64, ok bool)
	SetBaseline(mu, sigma float64)
}

// monitorState is the persisted form of a monitor: the cumulative
// counters of MonitorStats plus the detector's calibrated floor and the
// snapshot version it was calibrated against. Stored as JSON in the
// deployment store's "monitor" state blob.
type monitorState struct {
	SnapshotVersion  uint64  `json:"snapshot_version"`
	Queries          uint64  `json:"queries"`
	Detections       uint64  `json:"detections"`
	UpdatesTriggered uint64  `json:"updates_triggered"`
	UpdatesCompleted uint64  `json:"updates_completed"`
	UpdateErrors     uint64  `json:"update_errors"`
	Suppressed       uint64  `json:"suppressed"`
	LastError        string  `json:"last_error,omitempty"`
	BaselineMu       float64 `json:"baseline_mu"`
	BaselineSigma    float64 `json:"baseline_sigma"`
	BaselineOK       bool    `json:"baseline_ok"`
}

// NewMonitor attaches a drift monitor to a deployment. sampler supplies
// the fresh measurements for auto-updates; a nil sampler puts the
// monitor in detect-only mode (detections are counted but never acted
// on).
func NewMonitor(d *Deployment, sampler ReferenceSampler, opts ...MonitorOption) (*Monitor, error) {
	if d == nil {
		return nil, errors.New("iupdater: NewMonitor: nil deployment")
	}
	cfg := monitorConfig{
		hysteresis: 4,
		cooldown:   defaultCooldownCeiling,
		adaptive:   true,
		acFloor:    defaultCooldownFloor,
		acCeil:     defaultCooldownCeiling,
		acSens:     defaultCooldownSens,
		topK:       3,
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.detector == nil {
		cfg.detector = NewMeanShiftDetector(0, 0, 0)
	}
	if cfg.hysteresis < 1 {
		cfg.hysteresis = 1
	}
	if cfg.cooldown < 0 {
		cfg.cooldown = 0
	}
	if cfg.acFloor > cfg.acCeil {
		cfg.acFloor = cfg.acCeil
	}
	if cfg.topK < 1 {
		cfg.topK = 3
	}
	if cfg.topK > d.geo.Links {
		cfg.topK = d.geo.Links
	}
	m := &Monitor{
		d:       d,
		sampler: sampler,
		cfg:     cfg,
		scratch: make([]float64, d.geo.Links),
		perLink: make([]float64, d.geo.Links),
		attr:    drift.NewAttribution(d.geo.Links, 0),
	}
	m.bd, _ = cfg.detector.(baselineDetector)
	if st := d.cfg.store; st != nil {
		// A restarted monitor resumes its previous life: cumulative
		// counters continue, and the calibrated floor is re-installed on
		// the first Observe if the snapshot it was learned on is still
		// the one being served. A missing or corrupt state blob simply
		// starts fresh.
		if blob, ok, err := st.st.LoadState("monitor"); err == nil && ok {
			var ms monitorState
			if json.Unmarshal(blob, &ms) == nil {
				m.stats.Queries = ms.Queries
				m.stats.Detections = ms.Detections
				m.stats.UpdatesTriggered = ms.UpdatesTriggered
				m.stats.UpdatesCompleted = ms.UpdatesCompleted
				m.stats.UpdateErrors = ms.UpdateErrors
				m.stats.Suppressed = ms.Suppressed
				m.stats.LastError = ms.LastError
				m.restored = ms
				m.restoredOK = ms.BaselineOK && m.bd != nil
			}
		}
	}
	return m, nil
}

// saveStateLocked persists the monitor's counters and calibrated floor
// to the deployment store, best-effort (a failed save only costs resume
// fidelity, never a detection). m.mu must be held.
func (m *Monitor) saveStateLocked() {
	st := m.d.cfg.store
	if st == nil {
		return
	}
	ms := monitorState{
		SnapshotVersion:  m.resVersion,
		Queries:          m.stats.Queries,
		Detections:       m.stats.Detections,
		UpdatesTriggered: m.stats.UpdatesTriggered,
		UpdatesCompleted: m.stats.UpdatesCompleted,
		UpdateErrors:     m.stats.UpdateErrors,
		Suppressed:       m.stats.Suppressed,
		LastError:        m.stats.LastError,
	}
	if m.bd != nil {
		ms.BaselineMu, ms.BaselineSigma, ms.BaselineOK = m.bd.Baseline()
	}
	blob, err := json.Marshal(ms)
	if err != nil {
		return
	}
	_ = st.st.SaveState("monitor", blob)
}

// Observe feeds one live online RSS vector (one reading per link) to the
// monitor. It returns an error only for malformed input or a closed
// monitor; detection and update outcomes are reported through Stats.
func (m *Monitor) Observe(rss []float64) error {
	tr := m.d.cfg.tracer.Start("observe", m.d.cfg.site)
	defer tr.Finish()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return errors.New("iupdater: monitor is closed")
	}
	snap := m.d.snap.Load()
	if m.res == nil || snap.version != m.resVersion {
		// A new database version changes the residual baseline: rebind
		// the scorer to the snapshot's locate index (whose centered
		// columns were already built on the publish path) and
		// re-calibrate the detector. This closes the update pipeline —
		// the re-baseline span links back to the publish that caused it
		// (when that publish was traced), so an auto-update's effect on
		// monitoring is causally attributable.
		sp := tr.StartSpan("rebaseline")
		m.res = drift.NewResidualizerIndex(snap.ix)
		m.resVersion = snap.version
		m.cfg.detector.Reset()
		if m.restoredOK && m.restored.SnapshotVersion == snap.version {
			// Restart resume: the persisted floor was calibrated against
			// this very snapshot, so re-install it instead of burning a
			// fresh calibration window. A version mismatch (the database
			// changed while the monitor was down) falls through to
			// normal re-calibration.
			m.bd.SetBaseline(m.restored.BaselineMu, m.restored.BaselineSigma)
			m.baselineSaved = true
		} else {
			m.baselineSaved = false
		}
		m.restoredOK = false
		m.consec = 0
		m.attr.Reset()
		sp.SetInt("version", int64(snap.version))
		if id, ok := m.d.PublishTraceID(snap.version); ok {
			sp.SetStr("publish_trace_id", id.String())
		}
		sp.End()
	}
	if len(rss) != m.res.Links() {
		return fmt.Errorf("iupdater: measurement has %d links, deployment has %d", len(rss), m.res.Links())
	}
	sp := tr.StartSpan("residual")
	r := m.res.ResidualAttributed(rss, m.scratch, m.perLink)
	m.attr.Observe(m.perLink)
	sp.SetFloat("residual_db", r)
	sp.End()
	m.stats.Queries++
	m.stats.Residual = r
	if m.cooldown > 0 {
		m.cooldown--
	}
	if m.cfg.detector.Observe(r) {
		if m.consec == 0 {
			m.episodeStart = time.Now()
		}
		m.consec++
	} else {
		m.consec = 0
	}
	m.stats.Score = m.cfg.detector.Score()
	root := tr.Root()
	root.SetFloat("score", m.stats.Score)
	root.SetInt("consecutive", int64(m.consec))
	// Persist the floor the moment calibration completes — a one-time
	// write per snapshot version, in the same "not the steady state"
	// class as the residualizer rebuild above. Steady-state Observe
	// never touches disk; the counters checkpoint on update completion,
	// Sync and Close, so a hard kill costs at most the stats delta since
	// then, never the calibrated floor.
	if !m.baselineSaved && m.bd != nil {
		if _, _, ok := m.bd.Baseline(); ok {
			m.baselineSaved = true
			m.saveStateLocked()
		}
	}
	if m.consec < m.cfg.hysteresis {
		return nil
	}
	suppressed := m.updating || m.cooldown > 0 || m.sampler == nil
	if m.consec == m.cfg.hysteresis {
		// First crossing of this episode: one detection, however long
		// the detector keeps flagging afterwards.
		m.stats.Detections++
		if suppressed {
			m.stats.Suppressed++
		}
	}
	if suppressed {
		return nil
	}
	m.triggerUpdateLocked()
	return nil
}

// nextCooldownLocked computes the cooldown armed by a triggered update.
// The fixed policy (WithUpdateCooldown) returns its constant; the
// adaptive default shrinks the ceiling toward the floor as the
// triggering residual rises above the detector's calibrated floor —
// see WithAdaptiveCooldown for the formula. m.mu must be held.
func (m *Monitor) nextCooldownLocked() int {
	if !m.cfg.adaptive {
		return m.cfg.cooldown
	}
	excess := 0.0
	if m.bd != nil {
		if mu, sigma, ok := m.bd.Baseline(); ok && sigma > 0 {
			excess = (m.stats.Residual - mu) / sigma
		}
	}
	if excess < 0 {
		excess = 0
	}
	cd := float64(m.cfg.acCeil) / (1 + m.cfg.acSens*excess)
	if cd < float64(m.cfg.acFloor) {
		return m.cfg.acFloor
	}
	return int(cd)
}

// triggerUpdateLocked starts the auto-update. m.mu must be held.
//
// With a tracer attached, the auto-update records a forced (always
// retained) trace whose start is rewound to the drift episode's first
// flagged observation: the detect span covers the whole hysteresis
// window, and the stages that follow — sample, reconstruct, persist,
// swap — land in the same tree, so "where did this update's time go?"
// has one causally complete answer at /traces/{id}.
func (m *Monitor) triggerUpdateLocked() {
	m.updating = true
	m.stats.UpdatesTriggered++
	m.cooldown = m.nextCooldownLocked()
	tr := m.d.cfg.tracer.Start("update", m.d.cfg.site)
	if tr != nil {
		tr.Force()
		tr.SetStart(m.episodeStart)
		sp := tr.StartSpanAt("detect", m.episodeStart)
		sp.SetFloat("residual_db", m.stats.Residual)
		sp.SetFloat("score", m.stats.Score)
		sp.SetInt("consecutive", int64(m.consec))
		sp.SetInt("snapshot_version", int64(m.resVersion))
		sp.End()
		m.stats.LastUpdateTraceID = tr.ID().String()
	}
	if m.cfg.sync {
		// Inline: Observe returns only after the new snapshot (or the
		// failure) is in place. performUpdate takes no monitor state, so
		// holding m.mu is safe — it just blocks concurrent observers,
		// which is the point of synchronous mode.
		m.finishUpdateLocked(m.performUpdate(tr))
		tr.Finish()
		return
	}
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		err := m.performUpdate(tr)
		m.mu.Lock()
		m.finishUpdateLocked(err)
		m.mu.Unlock()
		tr.Root().SetBool("error", err != nil)
		tr.Finish()
	}()
}

// performUpdate samples fresh measurements and runs the deployment
// update, recording the sample stage (reference-point measurement)
// into tr; UpdateTraced records the rest of the pipeline. It touches
// no monitor state (only d and the sampler), so it runs without m.mu
// on the async path.
func (m *Monitor) performUpdate(tr *trace.Trace) error {
	refs, err := m.d.ReferenceLocations()
	if err != nil {
		return err
	}
	sp := tr.StartSpan(StageSample)
	t0 := time.Now()
	in, err := m.sampler.SampleReferences(refs)
	el := time.Since(t0)
	sp.SetInt("references", int64(len(refs)))
	sp.EndDur(el)
	m.d.updLat[StageSample].Observe(el.Seconds())
	if err != nil {
		return err
	}
	_, err = m.d.UpdateTraced(tr, in.NoDecrease, in.Known, in.References)
	return err
}

// finishUpdateLocked records the update outcome and checkpoints the
// counters (an auto-update is the rarest, most valuable transition to
// survive a crash). m.mu must be held.
func (m *Monitor) finishUpdateLocked(err error) {
	m.updating = false
	defer m.saveStateLocked()
	if err != nil {
		m.stats.UpdateErrors++
		m.stats.LastError = err.Error()
		return
	}
	m.stats.UpdatesCompleted++
	// The published snapshot re-baselines the residual on the next
	// Observe (version check); nothing else to do here.
}

// Sync persists the monitor's counters and calibrated floor to the
// deployment's store now (a no-op without one). Close does this
// automatically; long-running servers may also call it on a checkpoint
// schedule of their own.
func (m *Monitor) Sync() {
	m.mu.Lock()
	m.saveStateLocked()
	m.mu.Unlock()
}

// Stats returns a consistent snapshot of the monitor's counters,
// including the top-k drift-attributed links (k set by
// WithDriftAttributionTopK).
func (m *Monitor) Stats() MonitorStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.stats
	s.CooldownRemaining = m.cooldown
	s.UpdateInFlight = m.updating
	s.SnapshotVersion = m.d.Version()
	links := make([]int, m.cfg.topK)
	errs := make([]float64, m.cfg.topK)
	if n := m.attr.TopK(links, errs); n > 0 {
		s.TopLinks = make([]LinkDrift, n)
		for i := 0; i < n; i++ {
			s.TopLinks[i] = LinkDrift{Link: links[i], ErrDB: errs[i]}
		}
	}
	return s
}

// TopLinksInto is the allocation-free form of MonitorStats.TopLinks:
// it fills links/errs (parallel slices; their shared length caps k)
// with the worst drift-attributed links in descending error order and
// returns how many entries were written. Scrape loops reading
// attribution per request use it to stay off the allocator.
func (m *Monitor) TopLinksInto(links []int, errs []float64) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.attr.TopK(links, errs)
}

// Close stops the monitor — subsequent Observe calls fail — and waits
// for any in-flight asynchronous update to finish, so callers can shut
// down knowing no reconstruction is still writing to the deployment.
// With a durable store attached, the final counters and calibrated
// floor are persisted so the next process's monitor resumes here.
func (m *Monitor) Close() {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.wg.Wait()
	m.mu.Lock()
	m.saveStateLocked()
	m.mu.Unlock()
}
