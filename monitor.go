package iupdater

import (
	"errors"
	"fmt"
	"sync"

	"iupdater/internal/drift"
)

// DriftDetector is a streaming change detector over the staleness
// residual sequence, pluggable into a Monitor via WithDriftDetector.
// The built-in implementations (NewMeanShiftDetector,
// NewPageHinkleyDetector) are self-calibrating: they learn the
// stationary residual floor from the first observations after
// construction or Reset. Implementations need not be safe for concurrent
// use; the Monitor serializes all calls.
type DriftDetector interface {
	// Observe consumes one residual (dB) and reports whether drift is
	// flagged at this observation.
	Observe(residual float64) bool
	// Score returns the current drift statistic normalized by the
	// detection threshold: ~0 at the calibrated floor, >= 1 while
	// flagging, 0 during calibration.
	Score() float64
	// Reset discards all state including the calibrated floor; the
	// detector re-calibrates on the observations that follow.
	Reset()
}

// NewMeanShiftDetector returns the default sliding-window mean-shift
// detector: drift is flagged when the mean of the last window residuals
// exceeds the calibrated floor by k floor-sigmas. baseline is the number
// of calibration observations, window the sliding-window length; zero or
// negative arguments select the defaults (200, 64, 1.5). It reacts within
// about one window to the abrupt persistent shifts an environment change
// produces.
func NewMeanShiftDetector(baseline, window int, k float64) DriftDetector {
	return drift.NewMeanShift(drift.MeanShiftConfig{Baseline: baseline, Window: window, K: k})
}

// NewPageHinkleyDetector returns a Page-Hinkley (one-sided CUSUM)
// detector: the cumulative excess of the residual over the calibrated
// floor (minus a drift allowance of delta floor-sigmas) is compared
// against lambda floor-sigmas. baseline is the number of calibration
// observations; zero or negative arguments select the defaults (200,
// 0.5, 40). It detects slow ramps that never push a single window over
// the mean-shift threshold.
func NewPageHinkleyDetector(baseline int, delta, lambda float64) DriftDetector {
	return drift.NewPageHinkley(drift.PageHinkleyConfig{Baseline: baseline, Delta: delta, Lambda: lambda})
}

// UpdateInputs carries one set of fresh measurements for
// Deployment.Update: the zero-labor no-decrease matrix with its mask,
// and the reference-location columns.
type UpdateInputs struct {
	NoDecrease Matrix
	Known      Mask
	References Matrix
}

// ReferenceSampler collects the measurements an automatic update needs,
// given the reference locations the Deployment wants surveyed. The
// Testbed implements it for simulation (Testbed.Sampler); real
// deployments feed measured matrices through a MatrixSampler or a
// SamplerFunc bridging their radio frontend. SampleReferences is called
// from the Monitor's update goroutine (or inline under
// WithSynchronousUpdates), never concurrently with itself.
type ReferenceSampler interface {
	SampleReferences(refs []int) (UpdateInputs, error)
}

// SamplerFunc adapts a function to the ReferenceSampler interface.
type SamplerFunc func(refs []int) (UpdateInputs, error)

// SampleReferences implements ReferenceSampler.
func (f SamplerFunc) SampleReferences(refs []int) (UpdateInputs, error) { return f(refs) }

// MatrixSampler is a ReferenceSampler for real deployments: the caller
// pushes the latest raw measurement matrices with Store (e.g. whenever
// the radio frontend completes a no-decrease scan and a reference
// survey), and the Monitor picks them up when drift triggers an update.
// Safe for concurrent use. The zero value is ready; until the first
// Store, SampleReferences fails and the triggered update is recorded as
// an update error.
type MatrixSampler struct {
	mu sync.Mutex
	in UpdateInputs
	ok bool
}

// Store publishes the latest measured update inputs.
func (s *MatrixSampler) Store(in UpdateInputs) {
	s.mu.Lock()
	s.in, s.ok = in, true
	s.mu.Unlock()
}

// SampleReferences implements ReferenceSampler, returning the most
// recently stored measurements.
func (s *MatrixSampler) SampleReferences(refs []int) (UpdateInputs, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ok {
		return UpdateInputs{}, errors.New("iupdater: no measurements stored in MatrixSampler")
	}
	if c := s.in.References.Cols(); c != len(refs) {
		return UpdateInputs{}, fmt.Errorf("iupdater: stored reference matrix has %d columns, deployment wants %d", c, len(refs))
	}
	return s.in, nil
}

// MonitorOption configures a Monitor.
type MonitorOption func(*monitorConfig)

type monitorConfig struct {
	detector   DriftDetector
	hysteresis int
	cooldown   int
	sync       bool
}

// WithDriftDetector replaces the default mean-shift detector. The
// Monitor takes ownership: the detector must not be observed elsewhere.
func WithDriftDetector(det DriftDetector) MonitorOption {
	return func(c *monitorConfig) { c.detector = det }
}

// WithDriftHysteresis sets how many consecutive flagged observations are
// required before a detection is declared (default 4): one-off residual
// spikes from interference bursts or a passer-by never trigger a survey.
func WithDriftHysteresis(n int) MonitorOption {
	return func(c *monitorConfig) { c.hysteresis = n }
}

// WithUpdateCooldown sets the minimum number of observed queries between
// auto-triggered updates (default 1000). Detections during the cooldown
// are counted and suppressed, rate-limiting the reference surveys (each
// one costs real human labor) no matter how noisy the detector is.
func WithUpdateCooldown(queries int) MonitorOption {
	return func(c *monitorConfig) { c.cooldown = queries }
}

// WithSynchronousUpdates makes a triggered update run inline in the
// Observe call that detected the drift, instead of on a background
// goroutine. Evaluation and tests use it for deterministic
// query-counted schedules; production monitors should keep the default
// asynchronous mode so localization traffic is never blocked behind a
// reconstruction.
func WithSynchronousUpdates() MonitorOption {
	return func(c *monitorConfig) { c.sync = true }
}

// MonitorStats is a point-in-time snapshot of a Monitor's counters.
type MonitorStats struct {
	// Queries is the number of observations fed to the monitor.
	Queries uint64
	// Residual is the staleness residual (dB) of the last observation.
	Residual float64
	// Score is the detector's current normalized drift statistic
	// (>= 1 while the detector is flagging).
	Score float64
	// Detections counts declared drift episodes (hysteresis satisfied).
	Detections uint64
	// UpdatesTriggered counts auto-updates started.
	UpdatesTriggered uint64
	// UpdatesCompleted counts auto-updates that published a snapshot.
	UpdatesCompleted uint64
	// UpdateErrors counts auto-updates that failed (sampler or solver).
	UpdateErrors uint64
	// Suppressed counts detections not acted on because of the cooldown
	// or a missing sampler.
	Suppressed uint64
	// CooldownRemaining is the number of queries left before another
	// update may trigger.
	CooldownRemaining int
	// UpdateInFlight reports an asynchronous update still running.
	UpdateInFlight bool
	// SnapshotVersion is the deployment's latest published version.
	SnapshotVersion uint64
	// LastError is the message of the most recent update error, if any.
	LastError string
}

// Monitor closes the paper's detect -> measure -> update loop around a
// Deployment: it watches live localization traffic for staleness, and
// when the environment has drifted it collects fresh reference
// measurements through a ReferenceSampler and refreshes the database
// with Deployment.Update — no human in the loop deciding when.
//
// Feed every online RSS vector the deployment serves to Observe. Each
// observation is scored against the current snapshot (the residual: RMS
// distance in dB between the mean-centered query and its best-matching
// mean-centered fingerprint column) and streamed into the drift
// detector. A detection — the detector flagging for a configurable
// number of consecutive queries — triggers Deployment.Update on a
// background goroutine, rate-limited by a query-counted cooldown.
// Snapshot changes from any writer (the monitor itself, or a manual
// Update/Install elsewhere) re-baseline the residual and re-calibrate
// the detector automatically.
//
// Observe is safe for concurrent use and allocation-free in steady
// state (the monitor serializes internally; the residual scan is O(M*N)
// against pre-centered columns). Construct with NewMonitor; call Close
// when done to wait out any in-flight update.
type Monitor struct {
	d       *Deployment
	sampler ReferenceSampler
	cfg     monitorConfig

	mu         sync.Mutex
	res        *drift.Residualizer
	resVersion uint64
	scratch    []float64
	consec     int
	cooldown   int
	updating   bool
	closed     bool
	stats      MonitorStats

	wg sync.WaitGroup
}

// NewMonitor attaches a drift monitor to a deployment. sampler supplies
// the fresh measurements for auto-updates; a nil sampler puts the
// monitor in detect-only mode (detections are counted but never acted
// on).
func NewMonitor(d *Deployment, sampler ReferenceSampler, opts ...MonitorOption) (*Monitor, error) {
	if d == nil {
		return nil, errors.New("iupdater: NewMonitor: nil deployment")
	}
	cfg := monitorConfig{hysteresis: 4, cooldown: 1000}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.detector == nil {
		cfg.detector = NewMeanShiftDetector(0, 0, 0)
	}
	if cfg.hysteresis < 1 {
		cfg.hysteresis = 1
	}
	if cfg.cooldown < 0 {
		cfg.cooldown = 0
	}
	return &Monitor{
		d:       d,
		sampler: sampler,
		cfg:     cfg,
		scratch: make([]float64, d.geo.Links),
	}, nil
}

// Observe feeds one live online RSS vector (one reading per link) to the
// monitor. It returns an error only for malformed input or a closed
// monitor; detection and update outcomes are reported through Stats.
func (m *Monitor) Observe(rss []float64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return errors.New("iupdater: monitor is closed")
	}
	snap := m.d.snap.Load()
	if m.res == nil || snap.version != m.resVersion {
		// A new database version changes the residual baseline: rebuild
		// the scorer's centered columns and re-calibrate the detector.
		// Not the steady state, so the allocations here don't count
		// against the per-query budget.
		fp := snap.fp
		m.res = drift.NewResidualizer(fp.rows, fp.cols, fp.At)
		m.resVersion = snap.version
		m.cfg.detector.Reset()
		m.consec = 0
	}
	if len(rss) != m.res.Links() {
		return fmt.Errorf("iupdater: measurement has %d links, deployment has %d", len(rss), m.res.Links())
	}
	r := m.res.Residual(rss, m.scratch)
	m.stats.Queries++
	m.stats.Residual = r
	if m.cooldown > 0 {
		m.cooldown--
	}
	if m.cfg.detector.Observe(r) {
		m.consec++
	} else {
		m.consec = 0
	}
	m.stats.Score = m.cfg.detector.Score()
	if m.consec < m.cfg.hysteresis {
		return nil
	}
	suppressed := m.updating || m.cooldown > 0 || m.sampler == nil
	if m.consec == m.cfg.hysteresis {
		// First crossing of this episode: one detection, however long
		// the detector keeps flagging afterwards.
		m.stats.Detections++
		if suppressed {
			m.stats.Suppressed++
		}
	}
	if suppressed {
		return nil
	}
	m.triggerUpdateLocked()
	return nil
}

// triggerUpdateLocked starts the auto-update. m.mu must be held.
func (m *Monitor) triggerUpdateLocked() {
	m.updating = true
	m.stats.UpdatesTriggered++
	m.cooldown = m.cfg.cooldown
	if m.cfg.sync {
		// Inline: Observe returns only after the new snapshot (or the
		// failure) is in place. performUpdate takes no monitor state, so
		// holding m.mu is safe — it just blocks concurrent observers,
		// which is the point of synchronous mode.
		m.finishUpdateLocked(m.performUpdate())
		return
	}
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		err := m.performUpdate()
		m.mu.Lock()
		m.finishUpdateLocked(err)
		m.mu.Unlock()
	}()
}

// performUpdate samples fresh measurements and runs the deployment
// update. It touches no monitor state (only d and the sampler), so it
// runs without m.mu on the async path.
func (m *Monitor) performUpdate() error {
	refs, err := m.d.ReferenceLocations()
	if err != nil {
		return err
	}
	in, err := m.sampler.SampleReferences(refs)
	if err != nil {
		return err
	}
	_, err = m.d.Update(in.NoDecrease, in.Known, in.References)
	return err
}

// finishUpdateLocked records the update outcome. m.mu must be held.
func (m *Monitor) finishUpdateLocked(err error) {
	m.updating = false
	if err != nil {
		m.stats.UpdateErrors++
		m.stats.LastError = err.Error()
		return
	}
	m.stats.UpdatesCompleted++
	// The published snapshot re-baselines the residual on the next
	// Observe (version check); nothing else to do here.
}

// Stats returns a consistent snapshot of the monitor's counters.
func (m *Monitor) Stats() MonitorStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.stats
	s.CooldownRemaining = m.cooldown
	s.UpdateInFlight = m.updating
	s.SnapshotVersion = m.d.Version()
	return s
}

// Close stops the monitor — subsequent Observe calls fail — and waits
// for any in-flight asynchronous update to finish, so callers can shut
// down knowing no reconstruction is still writing to the deployment.
func (m *Monitor) Close() {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.wg.Wait()
}
