// Package iupdater is a Go implementation of iUpdater, the low-cost RSS
// fingerprint updating system for device-free indoor localization from
//
//	Chang, Xiong, Wang, Chen, Hu, Fang.
//	"iUpdater: Low Cost RSS Fingerprints Updating for Device-Free
//	Localization." IEEE ICDCS 2017.
//
// Device-free localization tracks a person who carries no device, by the
// way their body perturbs the received signal strength (RSS) of wireless
// links crossing a monitored area. Fingerprint approaches record an RSS
// signature per grid location, but the database goes stale within days as
// the environment drifts, and re-surveying the whole grid is prohibitively
// labor intensive.
//
// iUpdater refreshes the entire M-link x N-location fingerprint matrix
// from fresh measurements at only r = M reference locations:
//
//   - the no-decrease entries (target outside a link's sensitive zone) are
//     measured with zero labor, without the target;
//   - the reference locations are the maximum independent columns (MIC) of
//     the previous matrix, tied to all other columns by a low-rank
//     representation (LRR) correlation matrix;
//   - a self-augmented regularized SVD completes the matrix under two
//     structural constraints: RSS continuity between neighboring locations
//     and similarity between adjacent links.
//
// # Public API
//
// The Pipeline type implements the update algorithm on caller-provided
// data; the Localizer type implements the paper's OMP-based target
// localization. The Testbed type provides the full simulated deployment
// (radio propagation, human target, drift, survey campaigns) used by the
// examples and by the experiment reproduction in internal/eval.
//
// A minimal session:
//
//	tb := iupdater.NewTestbed(iupdater.Office(), 1)
//	original, _ := tb.Survey(0, 50)
//	p, _ := iupdater.NewPipeline(original, tb.Links(), tb.PerStrip())
//	// ... 45 days later ...
//	t45 := 45 * 24 * time.Hour
//	fresh, _ := p.Update(
//	    tb.NoDecreaseScan(t45), tb.KnownMask(),
//	    tb.MeasureColumns(t45, p.ReferenceLocations()))
//	loc, _ := iupdater.NewLocalizer(fresh, tb.Geometry())
//	x, y, _ := loc.Locate(tb.MeasureOnline(6.0, 4.5, t45))
package iupdater
