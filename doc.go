// Package iupdater is a Go implementation of iUpdater, the low-cost RSS
// fingerprint updating system for device-free indoor localization from
//
//	Chang, Xiong, Wang, Chen, Hu, Fang.
//	"iUpdater: Low Cost RSS Fingerprints Updating for Device-Free
//	Localization." IEEE ICDCS 2017.
//
// Device-free localization tracks a person who carries no device, by the
// way their body perturbs the received signal strength (RSS) of wireless
// links crossing a monitored area. Fingerprint approaches record an RSS
// signature per grid location, but the database goes stale within days as
// the environment drifts, and re-surveying the whole grid is prohibitively
// labor intensive.
//
// iUpdater refreshes the entire M-link x N-location fingerprint matrix
// from fresh measurements at only r = M reference locations:
//
//   - the no-decrease entries (target outside a link's sensitive zone) are
//     measured with zero labor, without the target;
//   - the reference locations are the maximum independent columns (MIC) of
//     the previous matrix, tied to all other columns by a low-rank
//     representation (LRR) correlation matrix;
//   - a self-augmented regularized SVD completes the matrix under two
//     structural constraints: RSS continuity between neighboring locations
//     and similarity between adjacent links.
//
// # Public API
//
// The Deployment type is the serving API: a long-lived, concurrency-safe
// service for one physical deployment. It owns a versioned fingerprint
// store — every Update or Install publishes an immutable Snapshot swapped
// in behind an atomic pointer — so continuous database refresh runs while
// localization traffic (Locate, LocateCell, LocateMultiple, and the
// worker-pool-backed LocateBatch) reads lock-free. Updates exposes a
// subscription over version rollovers; Snapshot pins one version for
// consistent multi-query reads. Data crosses the API boundary as the
// typed Matrix and Mask values (flat column-major storage, no per-call
// row-slice conversion).
//
// Updates subscriptions never block the write path: each subscriber gets
// a small buffered channel, and a publish that finds the buffer full
// drops that delivery rather than stall (or slow) the snapshot swap. A
// slow consumer therefore sees a gap-free prefix of versions followed by
// gaps, never stale blocking; poll Deployment.Snapshot for the
// authoritative latest version, which is always current regardless of
// what the subscription delivered.
//
// The Testbed type provides the full simulated deployment (radio
// propagation, human target, drift, survey campaigns) used by the
// examples and by the experiment reproduction in internal/eval, and
// cmd/iupdater's serve mode runs a Deployment behind an HTTP/JSON
// interface (profile it live with the -pprof flag, attach a drift
// monitor with -monitor).
//
// # Drift monitoring — the closed loop
//
// The paper makes updating cheap; the Monitor type decides when to
// update, closing the detect -> measure -> update loop with no human
// watching accuracy dashboards. Attach one to a Deployment with
// NewMonitor and feed it every served online measurement via
// Monitor.Observe:
//
//   - Each observation is scored with a staleness residual: the RMS
//     distance (dB) between the mean-centered query and its
//     best-matching mean-centered fingerprint column in the current
//     snapshot. Centering removes common-mode drift (which localization
//     is insensitive to), so the residual rises exactly when the
//     per-link shape of the environment has changed under the database.
//   - The residual stream feeds a pluggable self-calibrating
//     DriftDetector (internal/drift): the default sliding-window
//     mean-shift detector (NewMeanShiftDetector) reacts within about a
//     window to abrupt environment changes; NewPageHinkleyDetector
//     accumulates slow ramps. Both learn the stationary floor from the
//     first observations after every snapshot change.
//   - A detection (the detector flagging for WithDriftHysteresis
//     consecutive queries) triggers Deployment.Update on a background
//     goroutine: the Monitor collects the K reference columns through
//     the ReferenceSampler (Testbed.Sampler in simulation, a
//     MatrixSampler or SamplerFunc bridging a real radio frontend) and
//     publishes the refreshed snapshot. WithUpdateCooldown rate-limits
//     how often the (labor-costing) reference survey may be dispatched;
//     suppressed detections are counted.
//   - Monitor.Stats exposes the loop's counters (queries seen, last
//     residual, drift score, detections, updates triggered/completed,
//     suppressions); cmd/iupdater serve republishes them at GET /drift.
//
// Observe is allocation-free in steady state (~1 µs per query on the
// office testbed), so monitoring adds nothing to the serving tail. The
// end-to-end loop is scored by internal/eval's drift scenario: a mid-run
// environment flip is detected within tens of queries and the
// auto-triggered update restores database accuracy to within 0.1 dB of
// an operator-triggered one, with zero false detections over 10k
// stationary queries.
//
// # Durability and fleet serving
//
// A Deployment is in-memory by default: a restart loses every published
// version and forces the cold re-survey the paper exists to avoid. The
// Store type makes publishing durable. OpenStore opens one directory per
// site holding an append-only, checksummed binary log of snapshot
// records (per record: magic, version, length, CRC32 header, then the
// geometry + column-major fingerprint payload — see internal/store for
// the exact layout). Attach it with WithStore and every publish (the
// initial survey, each Update/Install, every monitor auto-update,
// rollbacks) is written and fsynced before the new snapshot becomes
// visible to queries: any version a query ever observed is on disk.
// Persistence runs on the serialized write path; the lock-free query
// path never touches disk.
//
// Because the paper's premise is low-cost updating, durability is
// priced by what actually changed: on the write path the outgoing
// snapshot is diffed column-wise against the last persisted version,
// and when few columns differ (a typical auto-update refreshes a
// handful of reference columns) the publish is persisted as a delta
// record — the changed column indices and payloads only, roughly an
// order of magnitude smaller than a full snapshot on the office
// geometry — rather than re-serializing the whole matrix. Reads
// (SnapshotAt, warm starts, rollbacks) transparently materialize a
// delta by resolving its chain back to the nearest full record and
// replaying the deltas, so callers never see the encoding. Chains stay
// bounded: WithMaxChain (default 16) forces a fresh full record once a
// chain reaches the bound, and a delta larger than half the full
// payload is written as a full record instead. Compaction re-encodes
// the whole retained suffix against its new base — the first retained
// version becomes a full record and every later one is re-deltaed
// (under the same chain and size bounds), so even records originally
// forced to full by the chain bound shrink back to their churn, and
// post-compaction disk stays proportional to what actually changed.
// Store.Records (surfaced per site by Fleet Summaries and the serve
// API) reports each retained version's record kind and on-disk bytes.
//
// The durability contract is the standard write-ahead one, identical
// for both record kinds: record appends are a single write + fsync
// before the snapshot swap, so a crash leaves at most one torn tail
// record, which the next OpenStore detects (length/CRC) and truncates,
// recovering to the newest durable version instead of failing open —
// and since a delta is only valid over its predecessor, a truncated
// base drops its dependent deltas with it; compaction and auxiliary
// state writes go through temp-file + fsync + rename, so they are
// atomic against crashes.
// OpenDeployment warm-starts a Deployment from a store's latest record
// — same version number, bit-identical localization, no re-survey —
// and a Monitor constructed over a stored Deployment resumes its
// previous life: counters continue and the calibrated detector floor is
// re-installed (when the snapshot version still matches) instead of
// burning a fresh calibration window.
//
// History is append-only and versions strictly increase, which makes
// rollback an ordinary publish: Deployment.Rollback(v) loads a retained
// version and republishes its fingerprints under the next version
// number. WithRetention bounds how many versions a store keeps (older
// records are removed by compaction and leave the rollback window);
// the default keeps everything.
//
// Where those bytes land is a pluggable seam: a Store writes through
// the Backend interface (OpenStore's WithBackend option), whose
// contract is exactly the durability story above — append-only files
// with explicit sync points, atomic temp+sync+rename replace, and
// stable listing. The default backend is the site directory with the
// on-disk format unchanged; NewMemoryBackend keeps the same record log
// and crash-recovery semantics in RAM (sync points are no-ops), which
// is what makes hundred-site fleets cheap in tests and gives ephemeral
// sites full store behavior without touching disk. Backends outside
// the process (object stores) slot into the same seam.
//
// The Fleet type scales this from one site to many: a registry of named
// site deployments (each with its own store directory, monitor and
// version line), with one Close for the whole lifecycle and Summaries
// as the aggregated dashboard. The registry is dynamic — AddSite and
// RemoveSite are safe while queries are in flight, so sites come and
// go without a restart.
//
// Thousands of registered sites do not mean thousands of resident
// snapshot matrices: WithResidentLimit(n) caps how many sites keep a
// materialized Deployment (snapshot, locate index, monitor) in memory.
// Past the cap the least-recently-queried durable site is parked —
// its in-RAM state is released, its store stays open — and the next
// query re-materializes it from the record log via the usual
// delta-chain resolution, bit-identical at the same version (the
// park-to-serve latency is exported as a histogram, see
// Observability). Site.Hydrate is the query-path accessor: on a
// resident site it is one atomic load plus an LRU touch —
// lock-free, allocation-free — and only a parked site pays the
// rehydration. Sites that cannot be restored are never parked:
// in-memory sites (no store) and monitored sites registered without a
// MonitorFactory stay resident regardless of pressure. Summaries
// reports parked sites from their store (version, retained records)
// without rehydrating them — a dashboard scrape never defeats the LRU.
//
// cmd/iupdater serve exposes the fleet over HTTP:
//
//	GET    /sites                        fleet dashboard (version, search tier, drift, hydration per site)
//	GET    /sites/{name}                 one site's summary incl. retained versions
//	PUT    /sites/{name}                 create a site at runtime (JSON: env, seed, token, monitor)
//	DELETE /sites/{name}                 remove a site from the fleet
//	POST   /sites/{name}/locate          localization (single or batch)
//	POST   /sites/{name}/update          database refresh (raw or testbed-driven)
//	GET    /sites/{name}/snapshot        the serving fingerprint database
//	GET    /sites/{name}/drift           monitor counters (404 without -monitor)
//	POST   /sites/{name}/rollback?version=N  republish a retained version
//	GET    /sites/{name}/records         record-log stream for follower replicas
//	GET    /metrics                      fleet-wide Prometheus text exposition
//	GET    /traces                       recent + slow retained traces (see Tracing)
//	GET    /traces/{id}                  one trace's full span tree
//	GET    /healthz                      liveness (serving version + site count)
//
// A site created with a token requires it — as an Authorization:
// Bearer header, compared in constant time — on every mutating route
// (update, rollback, DELETE); reads stay open, and a missing or wrong
// token answers 401 with WWW-Authenticate: Bearer. Lifecycle mutations
// on a replica site answer 409 (a follower is torn down by stopping
// the follow, not through the leader-facing API). Under -data-dir,
// API-created sites are recorded in a fleet manifest — an ordinary
// store at <data-dir>/fleet.manifest, written through the same
// atomic-replace path as any auxiliary state — and the next serve life
// re-creates them warm, tokens included; flag-declared sites win name
// conflicts, and a manifest entry whose store fails to open is logged
// and kept rather than failing boot.
//
// The original single-site routes (/locate, /update, /snapshot, /drift,
// /rollback, /records) remain as aliases for the default site; every
// route answers wrong-method hits with 405 and an Allow header. Sites
// are declared with -sites name=env,...; -data-dir roots the per-site
// stores and makes restarts warm; -retain bounds each store; -resident
// caps how many sites stay materialized (0 = all resident).
//
// # Replication — the record log as a wire protocol
//
// The millions-of-users read path scales out as leader/follower
// replication, and the wire protocol is the store's record log itself:
// Deployment.ServeRecords exposes GET .../records (per site in serve
// mode: GET /sites/{name}/records), which streams the retained record
// frames — full snapshots and changed-column deltas, in their exact
// on-disk framing — from a requested version. The Replica type is the
// follower: OpenReplica tails that endpoint (long-poll, resuming after
// disconnects under capped exponential backoff with jitter), feeds
// every frame through the same CRC recheck and delta structural
// validation the store runs during crash recovery, and publishes each
// materialized snapshot behind the same atomic pointer a Deployment
// uses. Replica.Locate is therefore lock-free and bit-identical to the
// leader's at the same version, and a torn, corrupted or replayed
// frame is rejected without state change — the follower just re-polls
// from its last applied version.
//
// Resume semantics: from=0 bootstraps at the leader's newest full
// record (everything later resolves against it); from=V resumes after
// V-1. A resume point older than the leader's compaction horizon
// answers 410 Gone, telling the follower its chain is gone for good —
// it re-bootstraps from the newest full record, as does a follower
// whose applies keep failing (divergent local state). The leader's
// durability contract is unchanged by replication: followers only read
// the log, fsync-before-visibility still happens on the leader's write
// path, and a follower holds no disk state while following.
//
// A follower registers in a Fleet with AddReplica (replication lag
// shows in Summaries and under GET /sites; mutating routes answer 409),
// and serve mode attaches one with -follow name=url (or the dedicated
// replicate mode). Replica.Promote turns the follower into the writer
// when the leader retires: following stops, and the returned
// Deployment continues the same monotone version line from the exact
// takeover version — seeding an attached store with a full snapshot at
// that version first, so the handover itself is durable. Promotion is
// one-way and at-most-once; there is deliberately no leader election.
//
// # Observability — /metrics, drift attribution, adaptive cooldown
//
// The internal/obs package is a zero-dependency metrics layer: atomic
// counters and gauges, fixed-bucket latency histograms whose Observe is
// lock-free and allocation-free (enforced by testing.AllocsPerRun), and
// a writer for the Prometheus text exposition format 0.0.4 — no client
// library, nothing on the query hot path but a few atomic adds.
// cmd/iupdater serve aggregates every site into one GET /metrics; each
// sample carries a site label, so one scrape covers the whole fleet:
//
//	iupdater_locate_latency_seconds        histogram {site}       end-to-end locate latency
//	iupdater_snapshot_version              gauge     {site}       serving snapshot version
//	iupdater_search_queries_total          counter   {site,tier}  candidate searches answered
//	iupdater_search_column_evals_total     counter   {site,tier}  full column distance evaluations
//	iupdater_search_shard_evals_total      counter   {site,tier}  coarse shard-routing evaluations
//	iupdater_drift_residual_db             gauge     {site}       latest residual (dB)
//	iupdater_drift_score                   gauge     {site}       drift-detector score
//	iupdater_drift_cooldown_remaining      gauge     {site}       queries until the next update may fire
//	iupdater_drift_queries_total           counter   {site}       measurements observed
//	iupdater_drift_detections_total        counter   {site}       post-hysteresis detections
//	iupdater_drift_updates_triggered_total counter   {site}       auto-updates started
//	iupdater_drift_updates_completed_total counter   {site}       auto-updates published
//	iupdater_drift_update_errors_total     counter   {site}       auto-updates failed
//	iupdater_drift_detections_suppressed_total counter {site}     detections eaten by cooldown/in-flight
//	iupdater_drift_link_error_db           gauge     {site,link}  top-k per-link attribution (dB)
//	iupdater_store_bytes                   gauge     {site}       retained record bytes on disk
//	iupdater_store_records                 gauge     {site,kind}  retained records by kind (full/delta)
//	iupdater_store_compactions_total       counter   {site}       history-dropping log rewrites
//	iupdater_sites                         gauge     {state}      registered sites by residency (resident/parked)
//	iupdater_site_evictions_total          counter   {}           sites parked by the resident limit
//	iupdater_site_rehydrations_total       counter   {}           parked sites re-materialized by a query
//	iupdater_site_rehydration_seconds      histogram {}           park-to-serve latency of those queries
//	iupdater_replica_applied_version       gauge     {site}       newest version the follower applied
//	iupdater_replica_leader_version        gauge     {site}       newest version the leader advertised
//	iupdater_replica_lag_versions          gauge     {site}       replication lag in versions
//	iupdater_replica_reconnects_total      counter   {site}       failed leader polls
//	iupdater_replica_rebootstraps_total    counter   {site}       restarts from a full record
//	iupdater_update_duration_seconds       histogram {site,stage} update pipeline stage latency
//	                                                             (sample/reconstruct/persist/swap)
//	iupdater_publish_total                 counter   {site}       snapshot publishes (update/install/rollback)
//	iupdater_traces_started_total          counter   {}           traces started across the fleet
//	iupdater_traces_retained_total         counter   {}           traces retained (sampled/slow/forced)
//	iupdater_traces_slow_total             counter   {}           traces retained for crossing a slow threshold
//	iupdater_build_info                    gauge     {version,goversion} constant 1
//	iupdater_goroutines                    gauge     {}           live goroutines (runtime/metrics)
//	iupdater_heap_bytes                    gauge     {}           live heap object bytes
//	iupdater_gc_pause_seconds_total        counter   {}           cumulative stop-the-world GC pause
//
// The search counters reset whenever a new snapshot version publishes
// (each version carries a fresh index) — an ordinary Prometheus counter
// reset. Families a site has no data for (drift on an unmonitored site,
// replication on a writer) simply carry no sample for that site.
//
// The monitor attributes its residual per link: Observe decomposes each
// measurement's distance to the nearest fingerprint column into
// per-link absolute errors and folds them into an exponentially
// weighted moving average (drift.Attribution), so the top-k offending
// links — the links whose RSS has moved furthest from the database,
// i.e. where the environment changed — are ranked in MonitorStats
// .TopLinks, GET /drift's top_links, and the link-labeled gauge above.
// The EWMA resets on every published snapshot, since a fresh database
// redefines what "offending" means. WithDriftAttributionTopK sets k
// (default 3); Monitor.TopLinksInto is the allocation-free accessor.
//
// Updates are rate-limited by a cooldown, and by default the cooldown
// adapts to how bad the drift is: after each triggered update the next
// cooldown is ceiling/(1 + sensitivity*excess), floor-clamped, where
// excess is how many calibrated baseline standard deviations the
// current residual sits above the detector's mean. Mild drift keeps
// updates ceiling-spaced (1000 queries, the old fixed default); violent
// drift shortens the window toward the floor (100) so the next refresh
// lands sooner — without ever touching the detection path itself, so
// stationary traffic triggers exactly as few updates as before.
// WithAdaptiveCooldown(floor, ceiling, sensitivity) tunes the policy;
// WithUpdateCooldown(n) restores the fixed-width window.
//
// # Tracing — request-scoped spans across locate, update and replication
//
// The internal/trace package is a zero-dependency span tracer built for
// the same hot paths as internal/obs: a Tracer hands out per-request
// Trace values whose span tree records into sync.Pool-backed scratch,
// and the retain-or-drop decision is deferred to Finish — so a request
// that is not retained costs no allocation at all (gated by
// BenchmarkLocateTraced/unsampled in scripts/bench.sh and the
// tracing-enabled run of TestInstrumentedHotPathsAllocFree). A trace is
// retained when any of three policies fires: it was forced (Force, or a
// sampled upstream traceparent), head sampling kept it (1 in
// HeadEvery), or its duration crossed the per-path slow threshold
// (SlowThreshold/DefaultSlow; a negative threshold opts a path out, how
// the long-poll routes avoid flooding the slow ring). Retained traces
// are copied once into immutable TraceData and published to two
// lock-free rings — recent and slow — that scrapes read without
// touching writers.
//
// WithTracer attaches a tracer to a Deployment (and Monitor), WithReplicaTracer
// to a follower. Three pipelines are instrumented end to end:
//
//   - locate: a root span per query with version/tier attrs and an
//     omp.solve child carrying column_evals/shard_evals/shards_visited/
//     rounds from the index's per-query search stats;
//   - update: detect (spanning the hysteresis window on auto-updates) →
//     sample → reconstruct → snapshot.build → persist (record kind) →
//     swap; MonitorStats.LastUpdateTraceID and GET /drift's
//     last_update_trace name the trace of the newest auto-update;
//   - replication: the follower's replica.poll trace (longpoll →
//     validate → apply per frame) is forced whenever frames arrive and
//     records the leader's publish trace ID — propagated in the
//     Iupdater-Trace-Id header on /records — as a leader_trace_id attr,
//     linking a follower apply back to the exact leader update that
//     produced it.
//
// The iupdater_update_duration_seconds stage histograms are fed the
// identical measured durations as the update spans (one time.Since
// feeds both), so metrics and traces never disagree about a stage.
//
// In serve mode every route runs under a trace (path http.<route>),
// W3C traceparent is accepted on requests (a sampled flag forces
// retention) and emitted on responses alongside Iupdater-Trace-Id, and
// GET /traces / GET /traces/{id} expose the rings and full span trees
// as JSON. -trace-head sets the head-sampling rate (default 1 in 100;
// 0 disables), and -access-log enables a structured access log whose
// every line carries the request's trace ID.
//
// # Query-path performance — the snapshot-time locate index
//
// Every Snapshot carries a precomputed locate index (internal/loc's
// Index type), built once on the serialized publish path and published
// behind the same atomic pointer as the fingerprints, so queries read
// it lock-free and never pay index construction. The index stores three
// views of the M x N matrix — raw columns (nearest-column and KNN
// matching), mean-centered columns (the drift residual), and centered
// unit-norm columns (OMP correlation) — each with per-column norms and
// per-shard centroid/radius summaries over contiguous strip-aligned
// column blocks.
//
// Three search tiers share that layout:
//
//   - The default pruned tier returns bit-identical results to an
//     exhaustive scan (including tie-breaks: lowest column index wins),
//     but skips candidates using triangle-inequality bounds on the
//     shard summaries and per-column norms — a shard whose best-case
//     distance cannot beat the current best is never entered, a column
//     whose norm bound cannot win is never evaluated. Exactness is a
//     contract, not a heuristic: a property test drives random
//     geometries through both paths and demands identical indices and
//     float-identical values.
//   - WithExactSearch forces the exhaustive reference scan — the
//     bit-exact baseline the pruned tier is tested against, useful for
//     audits and A/B comparison (Snapshot.SearchStats counts column and
//     shard evaluations per tier).
//   - WithShardedSearch trades a bounded accuracy budget for speed: the
//     query visits only the Fanout nearest shards (default 4) by
//     centroid distance. On campus-scale grids (100x the office
//     geometry) this cuts column-distance evaluations by >20x; the
//     accuracy budget — mean localization error within 0.1 m of the
//     exact tier on smoothly-varying fingerprints — is pinned by tests
//     across multiple seeds (measured degradation is under 0.002 m).
//
// The approximate tier only ever affects localization: the drift
// residual (Monitor.Observe) always runs at least the pruned tier,
// because the detector's self-calibrated floor is learned from true
// residuals and an approximate nearest-centered-column would inflate
// the stream it is calibrated against. Replication carries the
// configuration per end: a follower builds its own index from the
// replicated bits (WithReplicaExactSearch / WithReplicaShardedSearch),
// and at the exact or pruned tier follower Locate is bit-identical to
// the leader's at the same version.
//
// All query entry points — Locate, LocateCell, KNN.Neighbors via
// NeighborsInto, and Observe's residual — run allocation-free in steady
// state on a sync.Pool-backed per-query scratch, enforced by
// testing.AllocsPerRun tests and the benchmark budget gate
// (BenchmarkLocateLargeGrid, BenchmarkKNNNeighbors in
// scripts/bench.sh).
//
// # Update-path performance
//
// The reconstruction solver is built on an allocation-free kernel layer
// (internal/mat's destination-passing *Into kernels and reusable
// Cholesky/LU factorizations) and a per-call buffer Workspace, so one
// Update performs a few hundred allocations end to end — independent of
// iteration count — and a deployment can refresh continuously under
// live localization traffic without GC pressure. The allocation budget
// is regression-tested by the benchmark smoke step in CI
// (scripts/bench.sh records the trajectory in BENCH_recon.json).
//
// The ALS sweeps of the solver can additionally be sharded over a
// bounded worker pool with WithUpdateConcurrency: the per-row/column
// solves of one sweep are independent, results are deterministic for
// every worker count, and without Constraint-2 couplings the parallel
// sweep is bit-identical to the sequential one (under the default
// Gauss-Seidel variant it reads the couplings from a pre-sweep
// snapshot; see core.WithConcurrency). The default remains sequential,
// the bit-exact reference.
//
// A minimal session:
//
//	tb := iupdater.NewTestbed(iupdater.Office(), 1)
//	dep, _, _ := tb.Deploy(0, 50)
//	refs, _ := dep.ReferenceLocations()
//	// ... 45 days later, refresh from 8 reference columns ...
//	t45 := 45 * 24 * time.Hour
//	cols, _ := tb.ReferenceMatrix(t45, refs)
//	snap, _ := dep.Update(tb.NoDecreaseMatrix(t45), tb.Mask(), cols)
//	fmt.Println("serving fingerprint database v", snap.Version())
//	pos, _ := dep.Locate(tb.MeasureOnline(6.0, 4.5, t45))
//
// The deprecated Pipeline and Localizer types are thin shims over
// Deployment kept for callers of the original one-shot [][]float64 API.
package iupdater
