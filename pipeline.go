package iupdater

import "fmt"

// Pipeline is the legacy one-shot facade over the iUpdater fingerprint
// update algorithm, operating on raw [][]float64 row slices.
//
// Deprecated: use Deployment, which serves concurrent localization
// traffic from versioned snapshots and accepts the typed Matrix/Mask API.
// Pipeline is a thin shim kept so existing callers compile.
type Pipeline struct {
	d *Deployment
}

// NewPipeline builds the pipeline from the original (or latest updated)
// fingerprint matrix: original[i][j] is the RSS of link i with the target
// at location j, with locations strip-major (location j belongs to link
// j/perStrip). links*perStrip must match the matrix shape.
//
// Deprecated: use NewDeployment.
func NewPipeline(original [][]float64, links, perStrip int, opts ...PipelineOption) (*Pipeline, error) {
	m, err := MatrixFromRows(original)
	if err != nil {
		return nil, fmt.Errorf("iupdater: original matrix: %w", err)
	}
	// The pipeline never produced metric positions, so a synthetic
	// unit-cell geometry stands in for the unknown physical layout.
	g := Geometry{WidthM: float64(perStrip), HeightM: float64(links), Links: links, PerStrip: perStrip}
	d, err := NewDeployment(m, g, opts...)
	if err != nil {
		return nil, err
	}
	// The legacy constructor acquired the correlation state eagerly and
	// surfaced its errors here; force the lazy initialization now.
	if _, err := d.ReferenceLocations(); err != nil {
		return nil, err
	}
	return &Pipeline{d: d}, nil
}

// ReferenceLocations returns the location indices (ascending) where fresh
// full-column measurements must be taken for each update.
//
// Deprecated: use Deployment.ReferenceLocations.
func (p *Pipeline) ReferenceLocations() []int {
	refs, err := p.d.ReferenceLocations()
	if err != nil {
		return nil
	}
	return refs
}

// Update reconstructs the current fingerprint matrix from the zero-labor
// no-decrease scan, its known mask, and fresh measurements at
// ReferenceLocations().
//
// Deprecated: use Deployment.Update.
func (p *Pipeline) Update(noDecrease [][]float64, known [][]bool, references [][]float64) ([][]float64, error) {
	xb, err := MatrixFromRows(noDecrease)
	if err != nil {
		return nil, fmt.Errorf("iupdater: no-decrease matrix: %w", err)
	}
	mask, err := MaskFromRows(known)
	if err != nil {
		return nil, fmt.Errorf("iupdater: known mask: %w", err)
	}
	xr, err := MatrixFromRows(references)
	if err != nil {
		return nil, fmt.Errorf("iupdater: reference matrix: %w", err)
	}
	snap, err := p.d.Update(xb, mask, xr)
	if err != nil {
		return nil, err
	}
	return snap.Fingerprints().ToRows(), nil
}

// Refresh re-runs reference selection and correlation acquisition on a
// newly updated (or freshly surveyed) matrix, so that subsequent updates
// track the latest database state.
//
// Deprecated: use Deployment.Install.
func (p *Pipeline) Refresh(latest [][]float64) error {
	m, err := MatrixFromRows(latest)
	if err != nil {
		return fmt.Errorf("iupdater: latest matrix: %w", err)
	}
	_, err = p.d.Install(m)
	return err
}
