package iupdater

import (
	"errors"
	"fmt"

	"iupdater/internal/core"
	"iupdater/internal/fingerprint"
	"iupdater/internal/mat"
)

// Pipeline is the iUpdater fingerprint-update pipeline bound to one
// deployment: it holds the reference locations (MIC of the latest
// fingerprint matrix) and the inherent correlation matrix Z, and
// reconstructs fresh fingerprint matrices from cheap measurements.
//
// Construct with NewPipeline; the zero value is not usable.
type Pipeline struct {
	updater  *core.Updater
	links    int
	perStrip int
}

// PipelineOption configures NewPipeline.
type PipelineOption func(*pipelineConfig)

type pipelineConfig struct {
	numRefs   int
	paperInit bool
	noC1      bool
	noC2      bool
}

// WithReferenceCount overrides the number of reference locations (default:
// the number of links, the paper's minimal choice).
func WithReferenceCount(n int) PipelineOption {
	return func(c *pipelineConfig) { c.numRefs = n }
}

// WithPaperInitialization switches the solver to Algorithm 1's random
// initialization instead of the default truncated-SVD warm start.
func WithPaperInitialization() PipelineOption {
	return func(c *pipelineConfig) { c.paperInit = true }
}

// WithoutReferenceConstraint disables Constraint 1 (for ablation).
func WithoutReferenceConstraint() PipelineOption {
	return func(c *pipelineConfig) { c.noC1 = true }
}

// WithoutStabilityConstraint disables Constraint 2 (for ablation).
func WithoutStabilityConstraint() PipelineOption {
	return func(c *pipelineConfig) { c.noC2 = true }
}

// NewPipeline builds the pipeline from the original (or latest updated)
// fingerprint matrix: original[i][j] is the RSS of link i with the target
// at location j, with locations strip-major (location j belongs to link
// j/perStrip). links*perStrip must match the matrix shape.
func NewPipeline(original [][]float64, links, perStrip int, opts ...PipelineOption) (*Pipeline, error) {
	var cfg pipelineConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	x, err := toDense(original)
	if err != nil {
		return nil, fmt.Errorf("iupdater: original matrix: %w", err)
	}
	m, n := x.Dims()
	if m != links || n != links*perStrip {
		return nil, fmt.Errorf("iupdater: matrix is %dx%d, want %dx%d", m, n, links, links*perStrip)
	}
	ucfg := core.DefaultUpdaterConfig()
	ucfg.NumReferences = cfg.numRefs
	if cfg.paperInit {
		ucfg.Reconstruction = []core.Option{core.WithWarmStart(false)}
	}
	if cfg.noC1 {
		ucfg.Reconstruction = append(ucfg.Reconstruction, core.WithConstraint1(false))
	}
	if cfg.noC2 {
		ucfg.Reconstruction = append(ucfg.Reconstruction, core.WithConstraint2(false))
	}
	up, err := core.NewUpdater(fingerprint.New(x, 0), ucfg)
	if err != nil {
		return nil, fmt.Errorf("iupdater: %w", err)
	}
	return &Pipeline{updater: up, links: links, perStrip: perStrip}, nil
}

// ReferenceLocations returns the location indices (ascending) where fresh
// full-column measurements must be taken for each update — the maximum
// independent columns of the latest fingerprint matrix.
func (p *Pipeline) ReferenceLocations() []int {
	return p.updater.ReferenceLocations()
}

// Update reconstructs the current fingerprint matrix from:
//
//   - noDecrease: the zero-labor measurements; noDecrease[i][j] is link
//     i's fresh target-free reading where known[i][j] is true, ignored
//     elsewhere;
//   - known: the no-decrease index (true = measurable without target);
//   - references: fresh measurements at ReferenceLocations();
//     references[i][k] is link i's reading with the target at the k-th
//     reference location.
func (p *Pipeline) Update(noDecrease [][]float64, known [][]bool, references [][]float64) ([][]float64, error) {
	xbRaw, err := toDense(noDecrease)
	if err != nil {
		return nil, fmt.Errorf("iupdater: no-decrease matrix: %w", err)
	}
	mask, err := toMask(known)
	if err != nil {
		return nil, fmt.Errorf("iupdater: known mask: %w", err)
	}
	xr, err := toDense(references)
	if err != nil {
		return nil, fmt.Errorf("iupdater: reference matrix: %w", err)
	}
	// Zero out the unknown entries so B ∘ X̂ = X_B holds exactly.
	xb := mask.Project(xbRaw)
	updated, _, err := p.updater.Update(xb, mask, xr, 0)
	if err != nil {
		return nil, fmt.Errorf("iupdater: %w", err)
	}
	return fromDense(updated.X), nil
}

// Refresh re-runs reference selection and correlation acquisition on a
// newly updated (or freshly surveyed) matrix, so that subsequent updates
// track the latest database state.
func (p *Pipeline) Refresh(latest [][]float64) error {
	x, err := toDense(latest)
	if err != nil {
		return fmt.Errorf("iupdater: latest matrix: %w", err)
	}
	if m, n := x.Dims(); m != p.links || n != p.links*p.perStrip {
		return fmt.Errorf("iupdater: matrix is %dx%d, want %dx%d", m, n, p.links, p.links*p.perStrip)
	}
	if err := p.updater.Refresh(fingerprint.New(x, 0)); err != nil {
		return fmt.Errorf("iupdater: %w", err)
	}
	return nil
}

func toDense(rows [][]float64) (*mat.Dense, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, errors.New("empty matrix")
	}
	c := len(rows[0])
	for i, r := range rows {
		if len(r) != c {
			return nil, fmt.Errorf("ragged row %d: %d values, want %d", i, len(r), c)
		}
	}
	return mat.NewFromRows(rows), nil
}

func fromDense(m *mat.Dense) [][]float64 {
	r, _ := m.Dims()
	out := make([][]float64, r)
	for i := range out {
		out[i] = m.Row(i)
	}
	return out
}

func toMask(known [][]bool) (fingerprint.Mask, error) {
	if len(known) == 0 || len(known[0]) == 0 {
		return fingerprint.Mask{}, errors.New("empty mask")
	}
	cols := len(known[0])
	for i, r := range known {
		if len(r) != cols {
			return fingerprint.Mask{}, fmt.Errorf("ragged mask row %d", i)
		}
	}
	return fingerprint.NewMask(len(known), cols, func(i, j int) bool {
		return !known[i][j]
	}), nil
}
