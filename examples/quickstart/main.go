// Quickstart: build a fingerprint database, let the environment drift for
// 45 days, refresh the database with iUpdater's 8 reference measurements,
// and localize a device-free target.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"iupdater"
)

func main() {
	// A simulated office deployment: 8 parallel Wi-Fi links over a
	// 12 m x 9 m room divided into 96 grid cells.
	tb := iupdater.NewTestbed(iupdater.Office(), 1)

	// Day 0: the original (expensive) site survey — a person stands at
	// every grid cell while all links record RSS.
	original, labor := tb.Survey(0, 50)
	fmt.Printf("original survey: %d locations, %s of labor\n",
		labor.Locations, labor.Duration.Round(time.Second))

	// Build the update pipeline: it selects the reference locations and
	// learns the correlation between them and the whole database.
	pipeline, err := iupdater.NewPipeline(original, tb.Links(), tb.PerStrip())
	if err != nil {
		log.Fatal(err)
	}
	refs := pipeline.ReferenceLocations()
	fmt.Printf("reference locations for future updates: %v\n", refs)

	// Day 45: the RSS landscape has drifted several dB. Refresh the
	// whole database from a zero-labor scan plus 8 reference columns.
	at := 45 * 24 * time.Hour
	columns, refLabor := tb.MeasureColumnsLabor(at, refs)
	fresh, err := pipeline.Update(tb.NoDecreaseScan(at), tb.KnownMask(), columns)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("update labor: %s (%.1f%% below a full re-survey)\n",
		refLabor.Duration.Round(time.Second),
		100*(1-refLabor.Duration.Seconds()/labor.Duration.Seconds()))

	// How much did the update help? Compare both databases against the
	// current noise-free truth on the entries that need the target.
	truth := tb.TrueFingerprints(at)
	known := tb.KnownMask()
	var freshErr, staleErr float64
	var n int
	for i := range truth {
		for j := range truth[i] {
			if known[i][j] {
				continue
			}
			freshErr += math.Abs(fresh[i][j] - truth[i][j])
			staleErr += math.Abs(original[i][j] - truth[i][j])
			n++
		}
	}
	fmt.Printf("database error: %.2f dB refreshed vs %.2f dB stale\n",
		freshErr/float64(n), staleErr/float64(n))

	// Localize a person standing near the middle of the room.
	localizer, err := iupdater.NewLocalizer(fresh, tb.Geometry())
	if err != nil {
		log.Fatal(err)
	}
	const tx, ty = 6.2, 4.4
	rss := tb.MeasureOnline(tx, ty, at+time.Hour)
	x, y, err := localizer.Locate(rss)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("target at (%.1f, %.1f) m -> estimated (%.2f, %.2f) m, error %.2f m\n",
		tx, ty, x, y, math.Hypot(x-tx, y-ty))
}
