// Multi-site fleet with durable snapshot stores: two deployments, one
// drifts, the auto-update persists, and a process restart warm-starts.
//
// Every snapshot a Deployment publishes normally lives only in RAM, so
// a crash or redeploy throws the refreshed database away and forces the
// cold re-survey iUpdater exists to avoid. This walkthrough runs two
// office sites ("hq" and "annex") under one Fleet, each with its own
// on-disk store and drift monitor. The annex is rearranged mid-run: its
// monitor detects the drift and publishes an auto-update, durably. Then
// the whole process "restarts" — every handle is closed and rebuilt
// from the store directories — and both sites come back at their exact
// published versions with bit-identical localization and resumed (not
// reset) monitor counters. Finally the annex is rolled back to its
// original database, which is itself just another durable version.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"iupdater"
)

const day = 24 * time.Hour

type siteRun struct {
	name  string
	tb    *iupdater.Testbed
	dep   *iupdater.Deployment
	mon   *iupdater.Monitor
	clock time.Duration
}

// open wires one durable, monitored site: a store under root/name, a
// deployment publishing through it (warm-started if the store already
// holds versions), and a synchronous monitor for a deterministic
// walkthrough.
func open(root, name string, seed uint64) *siteRun {
	st, err := iupdater.OpenStore(filepath.Join(root, name))
	if err != nil {
		log.Fatal(err)
	}
	s := &siteRun{name: name, tb: iupdater.NewTestbed(iupdater.Office(), seed)}
	if st.LatestVersion() > 0 {
		if s.dep, err = iupdater.OpenDeployment(st); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s: warm restart at snapshot v%d (no re-survey)\n", name, s.dep.Version())
	} else {
		var labor iupdater.LaborCost
		if s.dep, labor, err = s.tb.Deploy(0, 50, iupdater.WithStore(st)); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s: surveyed (%s of labor), snapshot v1 persisted to %s\n",
			name, labor.Duration.Round(time.Second), st.Dir())
	}
	s.mon, err = iupdater.NewMonitor(s.dep,
		s.tb.Sampler(func() time.Duration { return s.clock }),
		iupdater.WithSynchronousUpdates())
	if err != nil {
		log.Fatal(err)
	}
	return s
}

// serve pushes n localization queries through the site at the given
// deployment age, feeding the monitor like a production server would.
func (s *siteRun) serve(rng *rand.Rand, n int, age time.Duration) {
	for q := 0; q < n; q++ {
		s.clock = age + time.Duration(q)*500*time.Millisecond
		cx, cy := s.tb.CellCenter(rng.Intn(s.tb.NumCells()))
		rss := s.tb.MeasureOnline(cx, cy, s.clock)
		if _, err := s.dep.Locate(rss); err != nil {
			log.Fatal(err)
		}
		if err := s.mon.Observe(rss); err != nil {
			log.Fatal(err)
		}
	}
}

func main() {
	root, err := os.MkdirTemp("", "iupdater-fleet")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)
	fmt.Printf("fleet data dir: %s\n\nfirst process life:\n", root)

	fleet := iupdater.NewFleet()
	hq, annex := open(root, "hq", 7), open(root, "annex", 8)
	for _, s := range []*siteRun{hq, annex} {
		if _, err := fleet.Add(s.name, s.dep, s.mon); err != nil {
			log.Fatal(err)
		}
	}

	// Both sites serve stationary traffic; then the annex is rearranged
	// overnight (45 days of drift land at once) and keeps serving until
	// its monitor repairs it. The hq never changes and must stay quiet.
	rng := rand.New(rand.NewSource(1))
	hq.serve(rng, 600, time.Hour)
	annex.serve(rng, 600, time.Hour)
	fmt.Println("\nthe annex is rearranged overnight; hq is untouched...")
	annex.serve(rng, 400, 45*day)
	hq.serve(rng, 400, time.Hour+5*time.Minute)

	for _, sum := range fleet.Summaries() {
		fmt.Printf("  %s: v%d, %d stored version(s), %d detection(s), %d auto-update(s)\n",
			sum.Name, sum.Version, len(sum.StoredVersions), sum.Drift.Detections, sum.Drift.UpdatesCompleted)
	}
	if annex.mon.Stats().UpdatesCompleted == 0 {
		log.Fatal("annex monitor never repaired its database")
	}

	// Remember exactly what each site serves, then kill the process
	// (close every monitor and store).
	probe := annex.tb.MeasureOnline(6.0, 4.5, 45*day+time.Hour)
	beforeRestart, err := annex.dep.Locate(probe)
	if err != nil {
		log.Fatal(err)
	}
	annexQueries := annex.mon.Stats().Queries
	annexVersion := annex.dep.Version()
	if err := fleet.Close(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nprocess restarts — every site reopens from its store:")
	fleet2 := iupdater.NewFleet()
	hq2, annex2 := open(root, "hq", 7), open(root, "annex", 8)
	for _, s := range []*siteRun{hq2, annex2} {
		if _, err := fleet2.Add(s.name, s.dep, s.mon); err != nil {
			log.Fatal(err)
		}
	}
	defer fleet2.Close()
	if annex2.dep.Version() != annexVersion {
		log.Fatalf("annex restarted at v%d, want v%d", annex2.dep.Version(), annexVersion)
	}
	afterRestart, err := annex2.dep.Locate(probe)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  annex estimate for the same probe: (%.3f, %.3f) before, (%.3f, %.3f) after — bit-identical: %v\n",
		beforeRestart.X, beforeRestart.Y, afterRestart.X, afterRestart.Y, beforeRestart == afterRestart)
	fmt.Printf("  annex monitor resumes at %d queries (was %d) with its calibrated floor intact\n",
		annex2.mon.Stats().Queries, annexQueries)

	// Rollback: the annex's original database is still version 1 in the
	// store; republishing it is one call and itself durable.
	rolled, err := annex2.dep.Rollback(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nannex rolled back to v1's database, published durably as v%d\n", rolled.Version())
	for _, sum := range fleet2.Summaries() {
		fmt.Printf("  %s: v%d, stored versions %v\n", sum.Name, sum.Version, sum.StoredVersions)
	}
}
