// Large-scale deployment planning: the paper's Fig 20 argument that
// iUpdater is what makes fingerprint maintenance feasible in airports and
// shopping malls.
//
// The example scales the office deployment to larger venues, computes the
// weekly database-maintenance labor for a traditional full re-survey
// versus iUpdater's reference-only refresh (§VI-C cost model), and then
// demonstrates one actual refresh on the base deployment to show the
// accuracy the saved labor buys.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"iupdater"
)

// Labor model of §VI-C: 5 s to move between locations, 0.5 s per RSS
// sample, 50 samples per location traditionally vs 5 for iUpdater.
const (
	moveSeconds    = 5.0
	sampleInterval = 0.5
)

func surveySeconds(locations, samples int) float64 {
	if locations <= 0 {
		return 0
	}
	return float64(locations-1)*moveSeconds + float64(locations)*float64(samples)*sampleInterval
}

func main() {
	// The paper's office: 94 effective locations, 8 links. Scaling the
	// edge length by k scales locations by k² and links by k.
	const baseLocations, baseLinks = 94, 8
	venues := []struct {
		name  string
		scale int
	}{
		{"office (baseline)", 1},
		{"supermarket", 3},
		{"department store", 5},
		{"shopping mall", 8},
		{"airport terminal", 10},
	}
	fmt.Println("weekly maintenance labor, traditional vs iUpdater")
	fmt.Println("venue               area        traditional   iUpdater")
	for _, v := range venues {
		locations := baseLocations * v.scale * v.scale
		refs := baseLinks * v.scale
		trad := surveySeconds(locations, 50) / 3600
		ours := surveySeconds(refs, 5) / 3600
		fmt.Printf("%-18s  %4dx%4d m  %8.1f h    %6.2f h\n",
			v.name, 12*v.scale, 9*v.scale, trad, ours)
	}

	// One concrete refresh on the base deployment to show what the saved
	// labor buys: accuracy within a few percent of a full re-survey.
	fmt.Println("\nbase-deployment refresh after 30 days:")
	tb := iupdater.NewTestbed(iupdater.Office(), 21)
	dep, fullLabor, err := tb.Deploy(0, 50)
	if err != nil {
		log.Fatal(err)
	}
	refs, err := dep.ReferenceLocations()
	if err != nil {
		log.Fatal(err)
	}
	at := 30 * 24 * time.Hour
	columns, refLabor := tb.ReferenceMatrix(at, refs)
	snap, err := dep.Update(tb.NoDecreaseMatrix(at), tb.Mask(), columns)
	if err != nil {
		log.Fatal(err)
	}
	fresh := snap.Fingerprints()
	truth := tb.TrueMatrix(at)
	known := tb.Mask()
	var freshErr float64
	var n int
	for i := 0; i < truth.Rows(); i++ {
		for j := 0; j < truth.Cols(); j++ {
			if !known.Known(i, j) {
				freshErr += math.Abs(fresh.At(i, j) - truth.At(i, j))
				n++
			}
		}
	}
	fmt.Printf("labor %s vs %s full survey; database error %.2f dB\n",
		refLabor.Duration.Round(time.Second), fullLabor.Duration.Round(time.Second),
		freshErr/float64(n))
}
