// Self-updating deployment: the detect -> measure -> update loop.
//
// The paper makes refreshing a fingerprint database cheap; this example
// removes the remaining human decision — noticing that the database has
// gone stale. A Monitor watches the live localization traffic an office
// deployment is already serving. While the environment matches the
// database the residual sits at the noise floor and nothing happens. The
// day the office is rearranged (simulated by jumping the deployment's
// age to 45 days of accumulated drift) the per-query residual jumps, the
// detector flags, and the monitor dispatches the 8-location reference
// survey and publishes a refreshed snapshot — all mid-traffic, visible
// here through the Updates subscription and the monitor's counters.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"iupdater"
)

const day = 24 * time.Hour

func main() {
	tb := iupdater.NewTestbed(iupdater.Office(), 7)
	dep, labor, err := tb.Deploy(0, 50)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployed office testbed: initial survey took %s of labor\n",
		labor.Duration.Round(time.Second))

	// The monitor's sampler measures at the stream's current simulated
	// time — when drift is detected the reference survey happens right
	// then. Synchronous mode keeps this walkthrough deterministic; a
	// production server would keep the default asynchronous updates.
	var clock time.Duration
	mon, err := iupdater.NewMonitor(dep,
		tb.Sampler(func() time.Duration { return clock }),
		iupdater.WithSynchronousUpdates())
	if err != nil {
		log.Fatal(err)
	}
	defer mon.Close()

	updates, cancelUpdates := dep.Updates()
	defer cancelUpdates()

	// Live traffic: people being localized at random cells. The first
	// stretch serves a fresh environment; at the flip query the office
	// is rearranged overnight — the deployment wakes up 45 days stale.
	rng := rand.New(rand.NewSource(7))
	serve := func(q int, age time.Duration) {
		clock = age + time.Duration(q)*500*time.Millisecond
		cx, cy := tb.CellCenter(rng.Intn(tb.NumCells()))
		cx += (rng.Float64() - 0.5) * 0.4
		cy += (rng.Float64() - 0.5) * 0.4
		rss := tb.MeasureOnline(cx, cy, clock)
		if _, err := dep.Locate(rss); err != nil {
			log.Fatal(err)
		}
		if err := mon.Observe(rss); err != nil {
			log.Fatal(err)
		}
	}

	const flipAt = 600
	fmt.Printf("\nserving %d queries in the original environment...\n", flipAt)
	for q := 0; q < flipAt; q++ {
		serve(q, time.Hour)
	}
	s := mon.Stats()
	fmt.Printf("  residual floor %.2f dB, drift score %.2f, detections %d (database v%d)\n",
		s.Residual, s.Score, s.Detections, s.SnapshotVersion)

	fmt.Println("\novernight the office is rearranged (45 days of drift land at once)...")
	detectedAt := -1
	for q := flipAt; q < flipAt+400; q++ {
		serve(q, 45*day)
		if detectedAt < 0 && mon.Stats().Detections > 0 {
			detectedAt = q - flipAt
			s = mon.Stats()
			fmt.Printf("  drift detected after %d queries (%.0f s of traffic), score %.2f\n",
				detectedAt, float64(detectedAt)*0.5, s.Score)
			select {
			case snap := <-updates:
				fmt.Printf("  auto-update published database v%d (8 reference locations, no full re-survey)\n",
					snap.Version())
			default:
			}
		}
	}
	s = mon.Stats()
	if s.UpdatesCompleted == 0 {
		log.Fatal("monitor never repaired the database")
	}
	fmt.Printf("  post-update drift score %.2f (last residual %.2f dB) — re-calibrated at the refreshed floor\n",
		s.Score, s.Residual)

	// How much did closing the loop matter? Compare localization error
	// of the auto-updated database against the stale one.
	stale, err := iupdater.NewDeployment(tb.TrueMatrix(0), tb.Geometry())
	if err != nil {
		log.Fatal(err)
	}
	var autoSum, staleSum float64
	const probes = 40
	for k := 0; k < probes; k++ {
		cx, cy := tb.CellCenter(rng.Intn(tb.NumCells()))
		rss := tb.MeasureOnline(cx, cy, 45*day+time.Duration(k+1)*time.Minute)
		a, err := dep.Locate(rss)
		if err != nil {
			log.Fatal(err)
		}
		st, err := stale.Locate(rss)
		if err != nil {
			log.Fatal(err)
		}
		autoSum += math.Hypot(a.X-cx, a.Y-cy)
		staleSum += math.Hypot(st.X-cx, st.Y-cy)
	}
	fmt.Printf("\nmean localization error over %d probes in the changed environment:\n", probes)
	fmt.Printf("  auto-updated database: %.2f m\n", autoSum/probes)
	fmt.Printf("  stale database:        %.2f m\n", staleSum/probes)
	fmt.Printf("\nmonitor counters: %d queries, %d detection(s), %d update(s), %d suppressed\n",
		s.Queries, s.Detections, s.UpdatesCompleted, s.Suppressed)
}
