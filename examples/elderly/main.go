// Elderly monitoring over three months: the paper's long-term scenario.
//
// A monitored flat (modeled by the office environment) runs for 90 days
// as a long-lived Deployment service. Without updates the fingerprint
// database goes stale and localization degrades; with iUpdater, a
// caregiver refreshes it at each visit by standing at 8 reference spots —
// under a minute of extra work. Each refresh publishes a new fingerprint
// snapshot (observed here through the Updates subscription) while
// localization queries keep flowing; the example follows accuracy at each
// checkpoint and raises a (simulated) alert when the resident dwells in a
// watched zone.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"iupdater"
)

const day = 24 * time.Hour

func main() {
	tb := iupdater.NewTestbed(iupdater.Office(), 11)
	dep, _, err := tb.Deploy(0, 50)
	if err != nil {
		log.Fatal(err)
	}
	refs, err := dep.ReferenceLocations()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("caregiver refresh spots: %v\n\n", refs)

	// The stale baseline keeps serving the original snapshot.
	stale, err := iupdater.NewDeployment(dep.Snapshot().Fingerprints(), tb.Geometry())
	if err != nil {
		log.Fatal(err)
	}

	// Watch the database versions roll over as the caregiver refreshes.
	updates, cancel := dep.Updates()
	defer cancel()

	g := tb.Geometry()
	// Watched zone: the far corner of the flat (e.g. the bathroom).
	zoneX, zoneY := g.WidthM-1.5, g.HeightM-1.5

	fmt.Println("checkpoint   refreshed-db error   stale-db error   zone alert")
	rng := rand.New(rand.NewSource(42))
	checkpoints := []int{15, 30, 45, 60, 75, 90}
	for _, d := range checkpoints {
		at := time.Duration(d) * day

		// Caregiver visit: refresh the database (8 reference columns).
		// Queries served concurrently never see a torn database — the new
		// snapshot is swapped in atomically.
		cols, _ := tb.ReferenceMatrix(at, refs)
		if _, err := dep.Update(tb.NoDecreaseMatrix(at), tb.Mask(), cols); err != nil {
			log.Fatal(err)
		}

		// The resident dwells at their usual spots (chair, bed, kitchen
		// counter — modeled as grid cells with a little standing jitter);
		// measure accuracy at twenty dwell events with one batch query.
		const positions = 20
		targets := make([][2]float64, positions)
		batch := make([][]float64, positions)
		for k := 0; k < positions; k++ {
			cx, cy := tb.CellCenter(rng.Intn(tb.NumCells()))
			tx := cx + (rng.Float64()-0.5)*0.4
			ty := cy + (rng.Float64()-0.5)*0.4
			targets[k] = [2]float64{tx, ty}
			batch[k] = tb.MeasureOnline(tx, ty, at+time.Duration(k+1)*10*time.Minute)
		}
		freshEst, err := dep.LocateBatch(context.Background(), batch)
		if err != nil {
			log.Fatal(err)
		}
		staleEst, err := stale.LocateBatch(context.Background(), batch)
		if err != nil {
			log.Fatal(err)
		}
		var freshSum, staleSum float64
		for k := range targets {
			freshSum += math.Hypot(freshEst[k].X-targets[k][0], freshEst[k].Y-targets[k][1])
			staleSum += math.Hypot(staleEst[k].X-targets[k][0], staleEst[k].Y-targets[k][1])
		}

		// Evening: the resident dwells in the watched zone; does the
		// refreshed system notice?
		rss := tb.MeasureOnline(zoneX, zoneY, at+8*time.Hour)
		z, err := dep.Locate(rss)
		if err != nil {
			log.Fatal(err)
		}
		alert := "-"
		if math.Hypot(z.X-zoneX, z.Y-zoneY) < 2.0 {
			alert = "raised"
		}
		version := uint64(0)
		select {
		case snap := <-updates:
			version = snap.Version()
		default:
		}
		fmt.Printf("day %3d      %.2f m               %.2f m           %-8s (db v%d)\n",
			d, freshSum/positions, staleSum/positions, alert, version)
	}

	// Keep the deployment tracking the latest database state for the next
	// quarter (Fig 10's feedback loop).
	if err := dep.Refresh(); err != nil {
		log.Fatal(err)
	}
	nextRefs, err := dep.ReferenceLocations()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnext-quarter refresh spots: %v\n", nextRefs)
}
