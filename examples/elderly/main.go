// Elderly monitoring over three months: the paper's long-term scenario.
//
// A monitored flat (modeled by the office environment) runs for 90 days.
// Without updates the fingerprint database goes stale and localization
// degrades; with iUpdater, a caregiver refreshes it at each visit by
// standing at 8 reference spots — under a minute of extra work. The
// example follows localization accuracy at each checkpoint and raises a
// (simulated) alert when the resident dwells in a watched zone.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"iupdater"
)

const day = 24 * time.Hour

func main() {
	tb := iupdater.NewTestbed(iupdater.Office(), 11)
	original, _ := tb.Survey(0, 50)
	pipeline, err := iupdater.NewPipeline(original, tb.Links(), tb.PerStrip())
	if err != nil {
		log.Fatal(err)
	}
	refs := pipeline.ReferenceLocations()
	fmt.Printf("caregiver refresh spots: %v\n\n", refs)

	g := tb.Geometry()
	// Watched zone: the far corner of the flat (e.g. the bathroom).
	zoneX, zoneY := g.WidthM-1.5, g.HeightM-1.5

	fmt.Println("checkpoint   refreshed-db error   stale-db error   zone alert")
	rng := rand.New(rand.NewSource(42))
	checkpoints := []int{15, 30, 45, 60, 75, 90}
	latest := original
	for _, d := range checkpoints {
		at := time.Duration(d) * day

		// Caregiver visit: refresh the database (8 reference columns).
		fresh, err := pipeline.Update(
			tb.NoDecreaseScan(at), tb.KnownMask(), tb.MeasureColumns(at, refs))
		if err != nil {
			log.Fatal(err)
		}
		latest = fresh

		freshLoc, err := iupdater.NewLocalizer(fresh, g)
		if err != nil {
			log.Fatal(err)
		}
		staleLoc, err := iupdater.NewLocalizer(original, g)
		if err != nil {
			log.Fatal(err)
		}

		// The resident dwells at their usual spots (chair, bed, kitchen
		// counter — modeled as grid cells with a little standing jitter);
		// measure accuracy at twenty dwell events.
		var freshSum, staleSum float64
		const positions = 20
		for k := 0; k < positions; k++ {
			cx, cy := tb.CellCenter(rng.Intn(tb.NumCells()))
			tx := cx + (rng.Float64()-0.5)*0.4
			ty := cy + (rng.Float64()-0.5)*0.4
			rss := tb.MeasureOnline(tx, ty, at+time.Duration(k+1)*10*time.Minute)
			fx, fy, err := freshLoc.Locate(rss)
			if err != nil {
				log.Fatal(err)
			}
			sx, sy, err := staleLoc.Locate(rss)
			if err != nil {
				log.Fatal(err)
			}
			freshSum += math.Hypot(fx-tx, fy-ty)
			staleSum += math.Hypot(sx-tx, sy-ty)
		}

		// Evening: the resident dwells in the watched zone; does the
		// refreshed system notice?
		rss := tb.MeasureOnline(zoneX, zoneY, at+8*time.Hour)
		zx, zy, err := freshLoc.Locate(rss)
		if err != nil {
			log.Fatal(err)
		}
		alert := "-"
		if math.Hypot(zx-zoneX, zy-zoneY) < 2.0 {
			alert = "raised"
		}
		fmt.Printf("day %3d      %.2f m               %.2f m           %s\n",
			d, freshSum/positions, staleSum/positions, alert)
	}

	// Keep the pipeline tracking the latest database state for the next
	// quarter (Fig 10's feedback loop).
	if err := pipeline.Refresh(latest); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnext-quarter refresh spots: %v\n", pipeline.ReferenceLocations())
}
