// Intruder detection in an empty hall: the paper's motivating scenario
// where the target cannot be asked to carry a device.
//
// The hall's fingerprint database is 30 days old. The example refreshes
// it with iUpdater, then tracks an intruder walking a diagonal path
// through the monitored area, comparing the track quality against the
// stale database a traditional deployment would be stuck with.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"iupdater"
)

func main() {
	tb := iupdater.NewTestbed(iupdater.Hall(), 7)
	g := tb.Geometry()
	fmt.Printf("monitoring a %.0f m x %.0f m hall with %d links\n",
		g.WidthM, g.HeightM, g.Links)

	// The database was surveyed a month ago.
	original, _ := tb.Survey(0, 50)
	pipeline, err := iupdater.NewPipeline(original, tb.Links(), tb.PerStrip())
	if err != nil {
		log.Fatal(err)
	}

	// Tonight, before arming the system, refresh the database: a guard
	// walks to the 8 reference spots (under a minute of work).
	now := 30 * 24 * time.Hour
	fresh, err := pipeline.Update(
		tb.NoDecreaseScan(now), tb.KnownMask(),
		tb.MeasureColumns(now, pipeline.ReferenceLocations()))
	if err != nil {
		log.Fatal(err)
	}

	freshLoc, err := iupdater.NewLocalizer(fresh, tb.Geometry())
	if err != nil {
		log.Fatal(err)
	}
	staleLoc, err := iupdater.NewLocalizer(original, tb.Geometry())
	if err != nil {
		log.Fatal(err)
	}

	// 2 a.m.: an intruder crosses the hall on a diagonal, one step per
	// two seconds.
	fmt.Println("\n t(s)   true (m)      fresh estimate    stale estimate")
	const steps = 12
	var freshSum, staleSum float64
	for k := 0; k <= steps; k++ {
		frac := float64(k) / steps
		tx := 0.8 + frac*(g.WidthM-1.6)
		ty := 0.8 + frac*(g.HeightM-1.6)
		at := now + 2*time.Hour + time.Duration(2*k)*time.Second

		rss := tb.MeasureOnline(tx, ty, at)
		fx, fy, err := freshLoc.Locate(rss)
		if err != nil {
			log.Fatal(err)
		}
		sx, sy, err := staleLoc.Locate(rss)
		if err != nil {
			log.Fatal(err)
		}
		fe := math.Hypot(fx-tx, fy-ty)
		se := math.Hypot(sx-tx, sy-ty)
		freshSum += fe
		staleSum += se
		fmt.Printf("%4d   (%4.1f,%4.1f)   (%4.1f,%4.1f) %4.1fm   (%4.1f,%4.1f) %4.1fm\n",
			2*k, tx, ty, fx, fy, fe, sx, sy, se)
	}
	fmt.Printf("\nmean tracking error: %.2f m refreshed vs %.2f m stale\n",
		freshSum/(steps+1), staleSum/(steps+1))
}
