// Intruder detection in an empty hall: the paper's motivating scenario
// where the target cannot be asked to carry a device.
//
// The hall's fingerprint database is 30 days old. The example refreshes
// it through a Deployment — the long-lived serving API — then tracks an
// intruder walking a diagonal path through the monitored area with one
// LocateBatch call, comparing the track quality against the stale
// database a traditional deployment would be stuck with.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"time"

	"iupdater"
)

func main() {
	tb := iupdater.NewTestbed(iupdater.Hall(), 7)
	g := tb.Geometry()
	fmt.Printf("monitoring a %.0f m x %.0f m hall with %d links\n",
		g.WidthM, g.HeightM, g.Links)

	// The database was surveyed a month ago. The live deployment gets
	// refreshed; a second deployment keeps serving the stale snapshot for
	// comparison.
	dep, _, err := tb.Deploy(0, 50)
	if err != nil {
		log.Fatal(err)
	}
	stale, err := iupdater.NewDeployment(dep.Snapshot().Fingerprints(), g)
	if err != nil {
		log.Fatal(err)
	}

	// Tonight, before arming the system, refresh the database: a guard
	// walks to the 8 reference spots (under a minute of work).
	now := 30 * 24 * time.Hour
	refs, err := dep.ReferenceLocations()
	if err != nil {
		log.Fatal(err)
	}
	cols, _ := tb.ReferenceMatrix(now, refs)
	snap, err := dep.Update(tb.NoDecreaseMatrix(now), tb.Mask(), cols)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("database refreshed: snapshot v%d\n", snap.Version())

	// 2 a.m.: an intruder crosses the hall on a diagonal, one step per
	// two seconds. The camera-style track is one batch query.
	const steps = 12
	truth := make([][2]float64, steps+1)
	batch := make([][]float64, steps+1)
	for k := 0; k <= steps; k++ {
		frac := float64(k) / steps
		tx := 0.8 + frac*(g.WidthM-1.6)
		ty := 0.8 + frac*(g.HeightM-1.6)
		at := now + 2*time.Hour + time.Duration(2*k)*time.Second
		truth[k] = [2]float64{tx, ty}
		batch[k] = tb.MeasureOnline(tx, ty, at)
	}
	freshEst, err := dep.LocateBatch(context.Background(), batch)
	if err != nil {
		log.Fatal(err)
	}
	staleEst, err := stale.LocateBatch(context.Background(), batch)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n t(s)   true (m)      fresh estimate    stale estimate")
	var freshSum, staleSum float64
	for k := 0; k <= steps; k++ {
		tx, ty := truth[k][0], truth[k][1]
		f, s := freshEst[k], staleEst[k]
		fe := math.Hypot(f.X-tx, f.Y-ty)
		se := math.Hypot(s.X-tx, s.Y-ty)
		freshSum += fe
		staleSum += se
		fmt.Printf("%4d   (%4.1f,%4.1f)   (%4.1f,%4.1f) %4.1fm   (%4.1f,%4.1f) %4.1fm\n",
			2*k, tx, ty, f.X, f.Y, fe, s.X, s.Y, se)
	}
	fmt.Printf("\nmean tracking error: %.2f m refreshed vs %.2f m stale\n",
		freshSum/(steps+1), staleSum/(steps+1))
}
