// Leader/follower replication: a read-only replica tails a leader's
// record log, serves bit-identical localization, survives a disconnect,
// and finally takes over the version line.
//
// iUpdater keeps fingerprint updates cheap; this walkthrough makes the
// read path cheap to scale the same way. A leader office site publishes
// its snapshot record log over HTTP (the wire format IS the on-disk
// record format — full snapshots and changed-column deltas, CRC-framed).
// A follower opens a Replica against that endpoint, validates every
// streamed record exactly like the store's own crash recovery, and
// swaps materialized snapshots behind the same atomic pointer a
// Deployment uses — so Locate on the replica is lock-free and
// bit-identical to the leader at the same version. The leader then
// drifts and updates (a delta on the wire), the follower's connections
// are all severed and it resumes on its own, and at the end the
// follower is promoted: it continues the leader's version line as a
// writer, durably, in its own store.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"path/filepath"
	"time"

	"iupdater"
)

const day = 24 * time.Hour

func main() {
	root, err := os.MkdirTemp("", "iupdater-replica-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)

	// --- Leader: a durable office site, serving its record log. -------
	leaderStore, err := iupdater.OpenStore(filepath.Join(root, "leader"))
	if err != nil {
		log.Fatal(err)
	}
	defer leaderStore.Close()
	tb := iupdater.NewTestbed(iupdater.Office(), 1)
	leader, _, err := tb.Deploy(0, 50, iupdater.WithStore(leaderStore))
	if err != nil {
		log.Fatal(err)
	}
	srv := httptest.NewServer(leader.ServeRecords())
	fmt.Printf("leader: office surveyed, snapshot v%d, records endpoint %s\n",
		leader.Version(), srv.URL)

	// --- Follower: a replica tailing that endpoint. -------------------
	// Its store is only used at promotion time; while following, the
	// leader owns durability.
	followerStore, err := iupdater.OpenStore(filepath.Join(root, "follower"))
	if err != nil {
		log.Fatal(err)
	}
	defer followerStore.Close()
	rep, err := iupdater.OpenReplica(srv.URL,
		iupdater.WithReplicaStore(followerStore),
		iupdater.WithReplicaWait(500*time.Millisecond),
		iupdater.WithReplicaBackoff(10*time.Millisecond, 250*time.Millisecond))
	if err != nil {
		log.Fatal(err)
	}
	defer rep.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := rep.WaitVersion(ctx, leader.Version()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("follower: bootstrapped at v%d (lag %d)\n", rep.Version(), rep.Lag())

	// Same measurement, both sides: the replica answers queries without
	// ever talking to the leader's query path.
	cx, cy := tb.CellCenter(42)
	rss := tb.MeasureOnline(cx, cy, time.Hour)
	lp, _ := leader.Locate(rss)
	fp, _ := rep.Locate(rss)
	fmt.Printf("locate on both: leader (%.2f, %.2f) follower (%.2f, %.2f) — identical: %v\n",
		lp.X, lp.Y, fp.X, fp.Y, lp == fp)

	// --- Drift and update: a delta record crosses the wire. -----------
	refs, err := leader.ReferenceLocations()
	if err != nil {
		log.Fatal(err)
	}
	xr, _ := tb.ReferenceMatrix(30*day, refs)
	snap, err := leader.Update(tb.NoDecreaseMatrix(30*day), tb.Mask(), xr)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := rep.WaitVersion(ctx, snap.Version()); err != nil {
		log.Fatal(err)
	}
	recs := leaderStore.Records()
	last := recs[len(recs)-1]
	fmt.Printf("leader updated to v%d (%s record, %d bytes on the wire); follower at v%d\n",
		snap.Version(), last.Kind, last.Bytes, rep.Version())

	// A tiny recalibration — one fingerprint column touched — persists
	// and replicates as a changed-columns delta record, an order of
	// magnitude smaller than the full snapshot.
	rows := snap.Fingerprints().ToRows()
	for i := range rows {
		rows[i][10] += 0.5
	}
	tweaked, err := iupdater.MatrixFromRows(rows)
	if err != nil {
		log.Fatal(err)
	}
	if snap, err = leader.Install(tweaked); err != nil {
		log.Fatal(err)
	}
	if _, err := rep.WaitVersion(ctx, snap.Version()); err != nil {
		log.Fatal(err)
	}
	recs = leaderStore.Records()
	last = recs[len(recs)-1]
	fmt.Printf("recalibration published v%d (%s record, %d bytes on the wire); follower at v%d\n",
		snap.Version(), last.Kind, last.Bytes, rep.Version())

	// --- Disconnect: every follower connection is severed. ------------
	// The tailer reconnects with capped, jittered backoff and resumes
	// from its last applied version; records published while it was
	// down are streamed on the next poll.
	srv.CloseClientConnections()
	xr2, _ := tb.ReferenceMatrix(60*day, refs)
	snap, err = leader.Update(tb.NoDecreaseMatrix(60*day), tb.Mask(), xr2)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := rep.WaitVersion(ctx, snap.Version()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after forced disconnect: follower resumed to v%d (lag %d)\n",
		rep.Version(), rep.Lag())

	// --- Promotion: the follower becomes the writer. ------------------
	// The old leader retires; Promote seeds the follower's own store
	// with the takeover snapshot and returns a Deployment whose next
	// publish continues the same monotone version line.
	srv.Close()
	promoted, err := rep.Promote()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("promoted at v%d; follower store now holds %v\n",
		promoted.Version(), followerStore.Versions())
	xr3, _ := tb.ReferenceMatrix(90*day, refs)
	snap, err = promoted.Update(tb.NoDecreaseMatrix(90*day), tb.Mask(), xr3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("post-promotion update published v%d — the line continued without a gap\n",
		snap.Version())
}
