package iupdater

import "fmt"

// Localizer is the legacy one-shot facade over the paper's OMP-based
// target localization, operating on raw [][]float64 row slices.
//
// Deprecated: use Deployment (or query a pinned Snapshot directly), which
// shares one localizer across calls and supports batch queries. Localizer
// is a thin shim kept so existing callers compile.
type Localizer struct {
	d *Deployment
}

// NewLocalizer builds a localizer over the fingerprint matrix
// (fingerprints[i][j] = RSS of link i, target at location j) laid out on
// the given geometry.
//
// Deprecated: use NewDeployment.
func NewLocalizer(fingerprints [][]float64, g Geometry) (*Localizer, error) {
	m, err := MatrixFromRows(fingerprints)
	if err != nil {
		return nil, fmt.Errorf("iupdater: fingerprint matrix: %w", err)
	}
	d, err := NewDeployment(m, g)
	if err != nil {
		return nil, err
	}
	return &Localizer{d: d}, nil
}

// Locate returns the estimated target position in meters for the online
// measurement rss (one averaged reading per link).
func (l *Localizer) Locate(rss []float64) (x, y float64, err error) {
	p, err := l.d.Locate(rss)
	if err != nil {
		return 0, 0, err
	}
	return p.X, p.Y, nil
}

// LocateCell returns the estimated grid cell index (strip-major) for the
// online measurement.
func (l *Localizer) LocateCell(rss []float64) (int, error) {
	return l.d.LocateCell(rss)
}

// CellCenter returns the position of a grid cell's center in meters.
func (l *Localizer) CellCenter(cell int) (x, y float64) {
	p := l.d.CellCenter(cell)
	return p.X, p.Y
}

// LocateMultiple estimates up to maxTargets simultaneous device-free
// targets from one online measurement.
func (l *Localizer) LocateMultiple(rss []float64, maxTargets int) ([]Position, error) {
	return l.d.LocateMultiple(rss, maxTargets)
}
