package iupdater

import (
	"fmt"

	"iupdater/internal/geom"
	"iupdater/internal/loc"
)

// Geometry describes the deployment layout needed to turn fingerprint
// column indices into positions: the area dimensions and the strip-major
// grid shape.
type Geometry struct {
	// WidthM is the extent along the links (TX->RX), meters.
	WidthM float64
	// HeightM is the extent across the links, meters.
	HeightM float64
	// Links is the number of parallel links M.
	Links int
	// PerStrip is the number of grid cells along each link K (N = M*K).
	PerStrip int
}

func (g Geometry) grid() geom.Grid {
	return geom.NewGrid(g.WidthM, g.HeightM, g.Links, g.PerStrip)
}

// Localizer estimates device-free target positions by matching online RSS
// vectors against a fingerprint matrix with the paper's greedy orthogonal
// matching pursuit (Eqns 26-27).
type Localizer struct {
	omp *loc.OMPPoint
	g   geom.Grid
}

// NewLocalizer builds a localizer over the fingerprint matrix
// (fingerprints[i][j] = RSS of link i, target at location j) laid out on
// the given geometry.
func NewLocalizer(fingerprints [][]float64, g Geometry) (*Localizer, error) {
	x, err := toDense(fingerprints)
	if err != nil {
		return nil, fmt.Errorf("iupdater: fingerprint matrix: %w", err)
	}
	grid := g.grid()
	if m, n := x.Dims(); m != g.Links || n != grid.NumCells() {
		return nil, fmt.Errorf("iupdater: matrix is %dx%d, want %dx%d", m, n, g.Links, grid.NumCells())
	}
	return &Localizer{omp: loc.NewOMPPoint(x, grid, loc.OMPConfig{}), g: grid}, nil
}

// Locate returns the estimated target position in meters for the online
// measurement rss (one averaged reading per link).
func (l *Localizer) Locate(rss []float64) (x, y float64, err error) {
	p, err := l.omp.LocatePoint(rss)
	if err != nil {
		return 0, 0, fmt.Errorf("iupdater: %w", err)
	}
	return p.X, p.Y, nil
}

// LocateCell returns the estimated grid cell index (strip-major) for the
// online measurement.
func (l *Localizer) LocateCell(rss []float64) (int, error) {
	cell, err := l.omp.Locate(rss)
	if err != nil {
		return 0, fmt.Errorf("iupdater: %w", err)
	}
	return cell, nil
}

// CellCenter returns the position of a grid cell's center in meters.
func (l *Localizer) CellCenter(cell int) (x, y float64) {
	p := l.g.Center(cell)
	return p.X, p.Y
}

// Position is a point estimate in meters.
type Position struct {
	X, Y float64
}

// LocateMultiple estimates up to maxTargets simultaneous device-free
// targets from one online measurement by successive interference
// cancellation on the OMP matcher (an extension beyond the paper's
// single-target formulation). Fewer estimates are returned when the
// measurement does not support more.
func (l *Localizer) LocateMultiple(rss []float64, maxTargets int) ([]Position, error) {
	pts, err := l.omp.LocateMultiple(rss, maxTargets, 0)
	if err != nil {
		return nil, fmt.Errorf("iupdater: %w", err)
	}
	out := make([]Position, len(pts))
	for i, p := range pts {
		out[i] = Position{X: p.X, Y: p.Y}
	}
	return out, nil
}
