//go:build race

package iupdater

// raceEnabled reports whether the race detector is active. Under -race
// sync.Pool drops items to widen the race-detection window, so pooled
// query paths allocate; strict 0-alloc assertions only hold without it.
const raceEnabled = true
