package iupdater

import (
	"math"
	"testing"
	"time"
)

const day = 24 * time.Hour

func TestPublicAPIEndToEnd(t *testing.T) {
	tb := NewTestbed(Office(), 1)
	original, labor := tb.Survey(0, 50)
	if len(original) != 8 || len(original[0]) != 96 {
		t.Fatalf("survey shape %dx%d", len(original), len(original[0]))
	}
	if labor.Locations != 96 || labor.Duration <= 0 {
		t.Errorf("labor = %+v", labor)
	}

	p, err := NewPipeline(original, tb.Links(), tb.PerStrip())
	if err != nil {
		t.Fatal(err)
	}
	refs := p.ReferenceLocations()
	if len(refs) != 8 {
		t.Fatalf("reference count = %d", len(refs))
	}

	at := 45 * day
	fresh, err := p.Update(tb.NoDecreaseScan(at), tb.KnownMask(), tb.MeasureColumns(at, refs))
	if err != nil {
		t.Fatal(err)
	}

	// The refreshed database must be much closer to the current truth
	// than the stale original on the labor-cost entries.
	truth := tb.TrueFingerprints(at)
	known := tb.KnownMask()
	var errFresh, errStale float64
	var cnt int
	for i := range truth {
		for j := range truth[i] {
			if known[i][j] {
				continue
			}
			errFresh += math.Abs(fresh[i][j] - truth[i][j])
			errStale += math.Abs(original[i][j] - truth[i][j])
			cnt++
		}
	}
	errFresh /= float64(cnt)
	errStale /= float64(cnt)
	if errFresh >= errStale {
		t.Errorf("update did not help: fresh %.2f dB vs stale %.2f dB", errFresh, errStale)
	}
	if errFresh > 3 {
		t.Errorf("fresh error %.2f dB too large", errFresh)
	}

	// Localize a target with the refreshed database.
	loc, err := NewLocalizer(fresh, tb.Geometry())
	if err != nil {
		t.Fatal(err)
	}
	cx, cy := tb.CellCenter(42)
	var sum float64
	const trials = 10
	for k := 0; k < trials; k++ {
		rss := tb.MeasureOnline(cx, cy, at+time.Duration(k)*time.Minute)
		x, y, err := loc.Locate(rss)
		if err != nil {
			t.Fatal(err)
		}
		sum += math.Hypot(x-cx, y-cy)
	}
	if mean := sum / trials; mean > 2.5 {
		t.Errorf("mean localization error %.2f m at a known cell", mean)
	}
}

func TestPipelineValidation(t *testing.T) {
	if _, err := NewPipeline(nil, 8, 12); err == nil {
		t.Error("nil matrix accepted")
	}
	if _, err := NewPipeline([][]float64{{1, 2}, {3}}, 2, 1); err == nil {
		t.Error("ragged matrix accepted")
	}
	if _, err := NewPipeline([][]float64{{1, 2}, {3, 4}}, 2, 3); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestPipelineOptions(t *testing.T) {
	tb := NewTestbed(Office(), 2)
	original, _ := tb.Survey(0, 50)
	p, err := NewPipeline(original, tb.Links(), tb.PerStrip(), WithReferenceCount(5))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(p.ReferenceLocations()); got != 5 {
		t.Errorf("reference count = %d, want 5", got)
	}
	// Ablation options must still produce working pipelines.
	for _, opts := range [][]PipelineOption{
		{WithPaperInitialization()},
		{WithoutReferenceConstraint()},
		{WithoutStabilityConstraint()},
	} {
		p, err := NewPipeline(original, tb.Links(), tb.PerStrip(), opts...)
		if err != nil {
			t.Fatal(err)
		}
		at := 5 * day
		if _, err := p.Update(tb.NoDecreaseScan(at), tb.KnownMask(),
			tb.MeasureColumns(at, p.ReferenceLocations())); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPipelineRefresh(t *testing.T) {
	tb := NewTestbed(Office(), 3)
	original, _ := tb.Survey(0, 50)
	p, err := NewPipeline(original, tb.Links(), tb.PerStrip())
	if err != nil {
		t.Fatal(err)
	}
	at := 15 * day
	fresh, err := p.Update(tb.NoDecreaseScan(at), tb.KnownMask(), tb.MeasureColumns(at, p.ReferenceLocations()))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Refresh(fresh); err != nil {
		t.Fatal(err)
	}
	if err := p.Refresh([][]float64{{1}}); err == nil {
		t.Error("bad refresh shape accepted")
	}
}

func TestLocalizerValidation(t *testing.T) {
	g := Geometry{WidthM: 12, HeightM: 9, Links: 8, PerStrip: 12}
	if _, err := NewLocalizer(nil, g); err == nil {
		t.Error("nil fingerprints accepted")
	}
	short := make([][]float64, 8)
	for i := range short {
		short[i] = make([]float64, 10)
	}
	if _, err := NewLocalizer(short, g); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestLocalizerCellHelpers(t *testing.T) {
	tb := NewTestbed(Hall(), 4)
	original, _ := tb.Survey(0, 50)
	l, err := NewLocalizer(original, tb.Geometry())
	if err != nil {
		t.Fatal(err)
	}
	x, y := l.CellCenter(0)
	if x <= 0 || y <= 0 {
		t.Errorf("CellCenter(0) = %v,%v", x, y)
	}
	rss := tb.MeasureOnline(x, y, time.Hour)
	cell, err := l.LocateCell(rss)
	if err != nil {
		t.Fatal(err)
	}
	if cell < 0 || cell >= tb.NumCells() {
		t.Errorf("cell %d out of range", cell)
	}
}

func TestEnvironmentPresets(t *testing.T) {
	tests := []struct {
		env   Environment
		links int
		cells int
	}{
		{Office(), 8, 96},
		{Library(), 6, 72},
		{Hall(), 8, 120},
	}
	for _, tt := range tests {
		g := tt.env.Geometry()
		if g.Links != tt.links || g.Links*g.PerStrip != tt.cells {
			t.Errorf("%s: %d links, %d cells", tt.env.Name(), g.Links, g.Links*g.PerStrip)
		}
	}
}

func TestTestbedDeterminism(t *testing.T) {
	a, _ := NewTestbed(Office(), 9).Survey(0, 5)
	b, _ := NewTestbed(Office(), 9).Survey(0, 5)
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("same seed, different surveys")
			}
		}
	}
}

func TestLocateMultiplePublicAPI(t *testing.T) {
	tb := NewTestbed(Office(), 5)
	original, _ := tb.Survey(0, 50)
	l, err := NewLocalizer(original, tb.Geometry())
	if err != nil {
		t.Fatal(err)
	}
	ax, ay := tb.CellCenter(33) // strip 2
	bx, by := tb.CellCenter(69) // strip 5
	rss := tb.MeasureOnlineMulti([][2]float64{{ax, ay}, {bx, by}}, time.Hour)
	est, err := l.LocateMultiple(rss, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(est) == 0 || len(est) > 2 {
		t.Fatalf("%d estimates", len(est))
	}
	// At least one estimate lands near one of the true targets.
	near := func(p Position, x, y float64) bool {
		return math.Hypot(p.X-x, p.Y-y) < 2.5
	}
	found := false
	for _, p := range est {
		if near(p, ax, ay) || near(p, bx, by) {
			found = true
		}
	}
	if !found {
		t.Errorf("no estimate near either target: %v", est)
	}
}
