package iupdater

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"iupdater/internal/store"
)

// StoreOption configures a Store opened with OpenStore.
type StoreOption func(*storeConfig)

type storeConfig struct {
	retain   int
	noSync   bool
	maxChain int
	backend  Backend
}

// Backend is the pluggable storage namespace a Store lives in — a flat
// set of named files holding the record log and auxiliary state blobs.
// The default is a local directory; NewMemoryBackend backs the same
// durability contract with RAM. See the internal store package docs for
// the exact guarantees an implementation must provide (atomic rename,
// inode-style open-handle semantics, fsync-before-swap).
type Backend = store.Backend

// BackendFile is one open file inside a Backend's namespace.
type BackendFile = store.File

// NewMemoryBackend returns an empty in-memory Backend: the store's full
// record format and recovery machinery running against RAM. Content
// lives exactly as long as the Backend value — reopening a store over
// the same Backend is the in-memory analogue of a process restart —
// making it the right base for tests, benchmarks and ephemeral sites
// that should not cost disk.
func NewMemoryBackend() Backend { return store.NewMemory() }

// WithRetention keeps only the newest n snapshot versions on disk
// (default 0: keep every version forever). Older versions are removed by
// compaction — triggered automatically as the log grows and on demand
// via Store.Compact — and stop being available to Rollback.
func WithRetention(n int) StoreOption {
	return func(c *storeConfig) { c.retain = n }
}

// WithoutSync skips the fsync after each write. Only for tests and
// benchmarks; production stores must keep the default, which makes every
// published snapshot durable before it becomes visible.
func WithoutSync() StoreOption {
	return func(c *storeConfig) { c.noSync = true }
}

// WithMaxChain bounds how many consecutive delta records the store may
// stack on one full snapshot record before a publish is forced to write
// a full record again (default 16). Longer chains make small updates
// cheaper on disk but cost more record reads to materialize an old
// version; n <= 0 disables delta records entirely, so every publish
// persists a full snapshot.
func WithMaxChain(n int) StoreOption {
	if n <= 0 {
		n = -1
	}
	return func(c *storeConfig) { c.maxChain = n }
}

// WithBackend opens the store inside the given Backend namespace
// instead of a local directory; the dir argument of OpenStore is then
// ignored. The on-disk record format, recovery, compaction and the
// fsync-before-swap durability contract are identical across backends —
// only where the bytes land changes.
func WithBackend(b Backend) StoreOption {
	return func(c *storeConfig) { c.backend = b }
}

// Store is a durable, versioned snapshot store: one directory holding an
// append-only checksummed record log of every snapshot a Deployment
// publishes, plus small auxiliary state (the drift monitor's calibrated
// baseline). Attach one to a new Deployment with WithStore, or warm-start
// a Deployment from an existing directory with OpenDeployment.
//
// Durability model: a snapshot is written and fsynced before the
// Deployment swaps it in, so a version that was ever visible to queries
// is on disk. A crash mid-append leaves at most one torn tail record,
// which the next OpenStore truncates back to the last good record — the
// store recovers to the newest durable version instead of failing open.
// See the internal/store package documentation for the record format.
//
// To keep durability proportional to what actually changed — the
// paper's low-cost premise applied to the disk — a publish whose
// fingerprints differ from the previous version in only a few columns
// is persisted as a delta record (the changed columns only, ~an order
// of magnitude smaller than a full snapshot for a typical auto-update)
// instead of re-serializing the whole matrix. Reads transparently
// resolve delta chains back to their base full record, chains are
// bounded by WithMaxChain, and Records reports each retained version's
// record kind and on-disk footprint.
//
// All methods are safe for concurrent use. A Store must be attached to
// at most one live Deployment at a time (two writers would race on the
// version sequence; the loser's append fails).
type Store struct {
	st *store.Store
	// closeErr, when non-nil, is returned by Close after the underlying
	// store closed — a test seam for fleet lifecycle fault injection.
	closeErr error
}

// OpenStore opens (creating if needed) a snapshot store directory and
// recovers its record index, truncating any corrupted suffix.
func OpenStore(dir string, opts ...StoreOption) (*Store, error) {
	var cfg storeConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	iopts := store.Options{Retain: cfg.retain, NoSync: cfg.noSync, MaxChain: cfg.maxChain}
	var st *store.Store
	var err error
	if cfg.backend != nil {
		st, err = store.OpenBackend(cfg.backend, iopts)
	} else {
		st, err = store.Open(dir, iopts)
	}
	if err != nil {
		return nil, fmt.Errorf("iupdater: %w", err)
	}
	return &Store{st: st}, nil
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.st.Dir() }

// Versions returns the retained snapshot versions in ascending order.
// The returned slice is the caller's to keep.
func (s *Store) Versions() []uint64 { return s.st.Versions() }

// RecordInfo describes how one retained snapshot version sits on disk:
// as a full snapshot record or as a delta record holding only the
// columns changed versus the previous version, and how many bytes the
// record occupies (framing header included). Either way, reads return
// the complete snapshot.
type RecordInfo struct {
	Version uint64 `json:"version"`
	// Kind is "full" or "delta".
	Kind string `json:"kind"`
	// Bytes is the on-disk record size, header included.
	Bytes int64 `json:"bytes"`
}

// Records returns, per retained version in ascending order, the record
// kind and on-disk footprint — the observable durability cost of each
// publish. The returned slice is the caller's to keep.
func (s *Store) Records() []RecordInfo {
	recs := s.st.Records()
	out := make([]RecordInfo, len(recs))
	for i, r := range recs {
		out[i] = RecordInfo{Version: r.Version, Kind: r.Kind.String(), Bytes: r.Bytes}
	}
	return out
}

// LatestVersion returns the newest stored version, 0 when the store is
// empty.
func (s *Store) LatestVersion() uint64 { return s.st.LastVersion() }

// OldestVersion returns the compaction horizon — the oldest retained
// version — or 0 when the store is empty. Rollback and replication
// resume cannot reach below it.
func (s *Store) OldestVersion() uint64 { return s.st.OldestVersion() }

// SnapshotAt reads the stored snapshot at the given version: the
// fingerprint matrix and the geometry it was published under.
func (s *Store) SnapshotAt(version uint64) (Matrix, Geometry, error) {
	payload, err := s.st.At(version)
	if err != nil {
		return Matrix{}, Geometry{}, fmt.Errorf("iupdater: %w", err)
	}
	fp, g, err := decodeSnapshot(payload)
	if err != nil {
		return Matrix{}, Geometry{}, fmt.Errorf("iupdater: snapshot v%d: %w", version, err)
	}
	return fp, g, nil
}

// SaveState atomically replaces the named auxiliary state blob stored
// alongside the snapshot log (write-temp, fsync, rename): either the
// previous blob or the new one survives a crash, never a torn mix. The
// drift monitor persists its calibrated baseline this way under
// "monitor"; serve mode keeps its fleet manifest under "manifest".
// Names must be non-empty and must not contain path separators.
func (s *Store) SaveState(name string, payload []byte) error {
	if err := s.st.SaveState(name, payload); err != nil {
		return fmt.Errorf("iupdater: %w", err)
	}
	return nil
}

// LoadState reads the named auxiliary state blob. A missing or
// corrupted blob reports ok=false with no error — state blobs are
// best-effort caches and advisory records, never required for recovery.
func (s *Store) LoadState(name string) (payload []byte, ok bool, err error) {
	payload, ok, err = s.st.LoadState(name)
	if err != nil {
		return nil, false, fmt.Errorf("iupdater: %w", err)
	}
	return payload, ok, nil
}

// Compactions returns how many log rewrites dropped history this store
// life — manual Compact calls and the automatic post-append retention
// policy alike.
func (s *Store) Compactions() uint64 { return s.st.Compactions() }

// Compact applies the retention policy now (see WithRetention).
func (s *Store) Compact() error {
	if err := s.st.Compact(); err != nil {
		return fmt.Errorf("iupdater: %w", err)
	}
	return nil
}

// Close releases the store. The owning Deployment must not publish
// afterwards.
func (s *Store) Close() error {
	err := s.st.Close()
	if err != nil {
		err = fmt.Errorf("iupdater: %w", err)
	}
	if s.closeErr != nil {
		// Join rather than replace, so an injected failure never masks a
		// real one.
		return errors.Join(s.closeErr, err)
	}
	return err
}

// appendSnapshot persists one published snapshot. The store diffs the
// encoded payload column-wise against the previous retained version and
// writes a delta record when few columns changed, a full record
// otherwise; either way the append is fsynced before it returns. The
// returned kind ("full" or "delta") is what the publish trace's
// persist span reports as the durability cost class of the publish.
func (s *Store) appendSnapshot(version uint64, g Geometry, fp Matrix) (string, error) {
	layout := store.Layout{HeaderLen: snapshotHeaderLen, ChunkSize: fp.rows * 8}
	kind, err := s.st.AppendDelta(version, encodeSnapshot(g, fp), layout)
	if err != nil {
		return "", fmt.Errorf("iupdater: persisting snapshot v%d: %w", version, err)
	}
	return kind.String(), nil
}

// latestSnapshot loads the newest stored snapshot.
func (s *Store) latestSnapshot() (version uint64, fp Matrix, g Geometry, err error) {
	version, payload, err := s.st.Latest()
	if err != nil {
		if errors.Is(err, store.ErrEmpty) {
			return 0, Matrix{}, Geometry{}, errors.New("iupdater: store holds no snapshots (create the deployment with NewDeployment and WithStore first)")
		}
		return 0, Matrix{}, Geometry{}, fmt.Errorf("iupdater: %w", err)
	}
	fp, g, err = decodeSnapshot(payload)
	if err != nil {
		return 0, Matrix{}, Geometry{}, fmt.Errorf("iupdater: snapshot v%d: %w", version, err)
	}
	return version, fp, g, nil
}

// Snapshot payload format v1 (all little-endian):
//
//	offset  size       field
//	0       1          format version (1)
//	1       8          geometry WidthM (float64 bits)
//	9       8          geometry HeightM (float64 bits)
//	17      4          geometry Links (uint32)
//	21      4          geometry PerStrip (uint32)
//	25      4          matrix rows (uint32)
//	29      4          matrix cols (uint32)
//	33      rows*cols*8  fingerprints, column-major float64 bits
//
// The 33-byte prefix and the rows*8-byte column stride double as the
// store's delta layout: a delta record re-states the prefix and only
// the columns whose bits changed.
const (
	snapshotFormatV1  = 1
	snapshotHeaderLen = 33
)

func encodeSnapshot(g Geometry, fp Matrix) []byte {
	buf := make([]byte, snapshotHeaderLen+len(fp.data)*8)
	buf[0] = snapshotFormatV1
	binary.LittleEndian.PutUint64(buf[1:], math.Float64bits(g.WidthM))
	binary.LittleEndian.PutUint64(buf[9:], math.Float64bits(g.HeightM))
	binary.LittleEndian.PutUint32(buf[17:], uint32(g.Links))
	binary.LittleEndian.PutUint32(buf[21:], uint32(g.PerStrip))
	binary.LittleEndian.PutUint32(buf[25:], uint32(fp.rows))
	binary.LittleEndian.PutUint32(buf[29:], uint32(fp.cols))
	for i, v := range fp.data {
		binary.LittleEndian.PutUint64(buf[snapshotHeaderLen+i*8:], math.Float64bits(v))
	}
	return buf
}

func decodeSnapshot(b []byte) (Matrix, Geometry, error) {
	if len(b) < snapshotHeaderLen {
		return Matrix{}, Geometry{}, fmt.Errorf("payload of %d bytes is too short", len(b))
	}
	if b[0] != snapshotFormatV1 {
		return Matrix{}, Geometry{}, fmt.Errorf("unknown snapshot format %d", b[0])
	}
	g := Geometry{
		WidthM:   math.Float64frombits(binary.LittleEndian.Uint64(b[1:])),
		HeightM:  math.Float64frombits(binary.LittleEndian.Uint64(b[9:])),
		Links:    int(binary.LittleEndian.Uint32(b[17:])),
		PerStrip: int(binary.LittleEndian.Uint32(b[21:])),
	}
	rows := int(binary.LittleEndian.Uint32(b[25:]))
	cols := int(binary.LittleEndian.Uint32(b[29:]))
	if rows <= 0 || cols <= 0 || rows != g.Links || cols != g.NumCells() {
		return Matrix{}, Geometry{}, fmt.Errorf("matrix %dx%d inconsistent with geometry %+v", rows, cols, g)
	}
	if want := snapshotHeaderLen + rows*cols*8; len(b) != want {
		return Matrix{}, Geometry{}, fmt.Errorf("payload is %d bytes, want %d for %dx%d", len(b), want, rows, cols)
	}
	m := Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
	for i := range m.data {
		m.data[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[snapshotHeaderLen+i*8:]))
	}
	return m, g, nil
}
