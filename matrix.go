package iupdater

import (
	"errors"
	"fmt"

	"iupdater/internal/fingerprint"
	"iupdater/internal/mat"
)

// Matrix is the public fingerprint-matrix type: an M-link by N-location
// table of RSS readings backed by flat column-major storage. Columns are
// the unit of work everywhere in iUpdater (a column is one location's
// fingerprint), so ColView exposes a column as a contiguous slice without
// copying.
//
// A Matrix value shares its backing storage with copies of itself; use
// Clone for an independent matrix. Matrices handed to or returned from a
// Deployment must not be mutated afterwards — the Deployment publishes
// them in immutable snapshots read concurrently by query traffic.
type Matrix struct {
	rows, cols int
	data       []float64 // column-major: data[j*rows+i]
}

// NewMatrix returns a zero-initialized rows x cols matrix.
func NewMatrix(rows, cols int) (Matrix, error) {
	if rows <= 0 || cols <= 0 {
		return Matrix{}, fmt.Errorf("iupdater: non-positive matrix dimensions %dx%d", rows, cols)
	}
	return Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}, nil
}

// MatrixFromRows builds a Matrix from row slices (rows[i][j] = link i,
// location j). All rows must have equal non-zero length.
func MatrixFromRows(rows [][]float64) (Matrix, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return Matrix{}, errors.New("iupdater: empty matrix")
	}
	c := len(rows[0])
	for i, r := range rows {
		if len(r) != c {
			return Matrix{}, fmt.Errorf("iupdater: ragged row %d: %d values, want %d", i, len(r), c)
		}
	}
	m := Matrix{rows: len(rows), cols: c, data: make([]float64, len(rows)*c)}
	for i, r := range rows {
		for j, v := range r {
			m.data[j*m.rows+i] = v
		}
	}
	return m, nil
}

// matrixFromDense converts an internal row-major dense matrix.
func matrixFromDense(d *mat.Dense) Matrix {
	r, c := d.Dims()
	m := Matrix{rows: r, cols: c, data: make([]float64, r*c)}
	raw := d.RawData()
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			m.data[j*r+i] = raw[i*c+j]
		}
	}
	return m
}

// dense converts to the internal row-major representation (one copy).
func (m Matrix) dense() *mat.Dense {
	d := mat.New(m.rows, m.cols)
	raw := d.RawData()
	for j := 0; j < m.cols; j++ {
		col := m.data[j*m.rows : (j+1)*m.rows]
		for i, v := range col {
			raw[i*m.cols+j] = v
		}
	}
	return d
}

// IsZero reports whether m is the zero Matrix (no storage).
func (m Matrix) IsZero() bool { return m.rows == 0 }

// Dims returns the number of links (rows) and locations (columns).
func (m Matrix) Dims() (rows, cols int) { return m.rows, m.cols }

// Rows returns the number of links.
func (m Matrix) Rows() int { return m.rows }

// Cols returns the number of locations.
func (m Matrix) Cols() int { return m.cols }

// At returns the RSS of link i at location j.
func (m Matrix) At(i, j int) float64 {
	m.checkIndex(i, j)
	return m.data[j*m.rows+i]
}

// Set assigns the RSS of link i at location j. Do not call Set on a
// matrix that has been handed to a Deployment.
func (m Matrix) Set(i, j int, v float64) {
	m.checkIndex(i, j)
	m.data[j*m.rows+i] = v
}

func (m Matrix) checkIndex(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("iupdater: index (%d,%d) out of range for %dx%d matrix", i, j, m.rows, m.cols))
	}
}

// ColView returns location j's fingerprint as a view into the backing
// storage — no allocation. The caller must not modify the returned slice.
func (m Matrix) ColView(j int) []float64 {
	m.checkIndex(0, j)
	return m.data[j*m.rows : (j+1)*m.rows]
}

// Col returns a copy of location j's fingerprint.
func (m Matrix) Col(j int) []float64 {
	out := make([]float64, m.rows)
	copy(out, m.ColView(j))
	return out
}

// Row returns a copy of link i's readings across all locations.
func (m Matrix) Row(i int) []float64 {
	m.checkIndex(i, 0)
	out := make([]float64, m.cols)
	for j := 0; j < m.cols; j++ {
		out[j] = m.data[j*m.rows+i]
	}
	return out
}

// ToRows converts to row slices for interoperation with the deprecated
// [][]float64 API.
func (m Matrix) ToRows() [][]float64 {
	out := make([][]float64, m.rows)
	for i := range out {
		out[i] = m.Row(i)
	}
	return out
}

// Clone returns a deep copy with independent storage.
func (m Matrix) Clone() Matrix {
	out := Matrix{rows: m.rows, cols: m.cols, data: make([]float64, len(m.data))}
	copy(out.data, m.data)
	return out
}

// Mask is the public no-decrease index (the paper's matrix B): Known(i, j)
// reports that link i's reading at location j can be measured without the
// target present (zero labor). Like Matrix it is backed by flat
// column-major storage and shares that storage across copies.
type Mask struct {
	rows, cols int
	known      []bool // column-major: known[j*rows+i]
}

// MaskFromRows builds a Mask from row slices of known flags.
func MaskFromRows(rows [][]bool) (Mask, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return Mask{}, errors.New("iupdater: empty mask")
	}
	c := len(rows[0])
	for i, r := range rows {
		if len(r) != c {
			return Mask{}, fmt.Errorf("iupdater: ragged mask row %d", i)
		}
	}
	k := Mask{rows: len(rows), cols: c, known: make([]bool, len(rows)*c)}
	for i, r := range rows {
		for j, v := range r {
			k.known[j*k.rows+i] = v
		}
	}
	return k, nil
}

// maskFromFingerprint converts the internal mask representation.
func maskFromFingerprint(fm fingerprint.Mask) Mask {
	rows, cols := fm.B.Dims()
	k := Mask{rows: rows, cols: cols, known: make([]bool, rows*cols)}
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			k.known[j*rows+i] = fm.Known(i, j)
		}
	}
	return k
}

// fingerprintMask converts to the internal representation.
func (k Mask) fingerprintMask() fingerprint.Mask {
	return fingerprint.NewMask(k.rows, k.cols, func(i, j int) bool {
		return !k.known[j*k.rows+i]
	})
}

// IsZero reports whether k is the zero Mask.
func (k Mask) IsZero() bool { return k.rows == 0 }

// Dims returns the number of links and locations.
func (k Mask) Dims() (rows, cols int) { return k.rows, k.cols }

// Known reports whether entry (i, j) is measurable without the target.
func (k Mask) Known(i, j int) bool {
	if i < 0 || i >= k.rows || j < 0 || j >= k.cols {
		panic(fmt.Sprintf("iupdater: index (%d,%d) out of range for %dx%d mask", i, j, k.rows, k.cols))
	}
	return k.known[j*k.rows+i]
}

// KnownCount returns the number of zero-labor entries.
func (k Mask) KnownCount() int {
	var n int
	for _, v := range k.known {
		if v {
			n++
		}
	}
	return n
}

// ToRows converts to row slices for interoperation with the deprecated
// [][]bool API.
func (k Mask) ToRows() [][]bool {
	out := make([][]bool, k.rows)
	for i := range out {
		out[i] = make([]bool, k.cols)
		for j := 0; j < k.cols; j++ {
			out[i][j] = k.known[j*k.rows+i]
		}
	}
	return out
}
